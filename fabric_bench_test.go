// Fabric-manager benchmarks: the control-plane costs of dynamic
// capacity. BenchmarkFabricRebalance is in the tier-1 tracked set of
// the CI bench-regression gate; BenchmarkFabricGrowShrink supplies the
// grow/shrink latency figures quoted in EXPERIMENTS.md.
package cxlpmem

import (
	"testing"

	"cxlpmem/internal/cluster"
	"cxlpmem/internal/units"
)

// benchElastic assembles the benchmark fabric: 4 tenants on a 32 MiB
// pool, 4 MiB starting capacity each, 1 MiB granule.
func benchElastic(b *testing.B) *cluster.Elastic {
	b.Helper()
	e, err := cluster.NewElastic(cluster.ElasticConfig{
		Hosts:   4,
		Pool:    32 * units.MiB,
		Quota:   16 * units.MiB,
		Initial: 4 * units.MiB,
		Granule: units.MiB,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFabricRebalance measures one full capacity rebalance: 4 MiB
// moves from one tenant to another through the complete control plane
// — release-request events, mailbox releases with scrub-on-free,
// extent coalescing, re-grant, add-capacity events and mailbox
// accepts. SetBytes reports rebalance throughput as capacity
// reassigned per second.
func BenchmarkFabricRebalance(b *testing.B) {
	e := benchElastic(b)
	targets := [2][]units.Size{
		{8 * units.MiB, 4 * units.MiB, 2 * units.MiB, 2 * units.MiB},
		{4 * units.MiB, 8 * units.MiB, 2 * units.MiB, 2 * units.MiB},
	}
	// Settle on the first layout so every timed iteration moves the
	// same 4 MiB back and forth.
	if err := e.Rebalance(targets[0]); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * units.MiB))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Rebalance(targets[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricGrowShrink measures one grow+shrink round trip of a
// single 1 MiB extent: grant, add-capacity event, mailbox accept,
// release request, mailbox release, scrub, coalesce.
func BenchmarkFabricGrowShrink(b *testing.B) {
	e := benchElastic(b)
	b.SetBytes(int64(units.MiB))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Grow(0, units.MiB); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Shrink(0, units.MiB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricDrive measures the data-plane cost of the elastic
// path: maximal bursts through a root port against extent-mapped
// tenant media, unthrottled (the QoS budget is the modelled hardware
// pipeline, far above simulator speed).
func BenchmarkFabricDrive(b *testing.B) {
	e := benchElastic(b)
	// Warm the path once.
	if _, err := e.Drive(0, 256*units.KiB); err != nil {
		b.Fatal(err)
	}
	const chunk = 256 * units.KiB
	b.SetBytes(int64(chunk))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Drive(0, chunk); err != nil {
			b.Fatal(err)
		}
	}
}
