// Package numa provides the placement machinery the paper's methodology
// uses: numactl-style memory binding (`numactl --membind=N`, Figures 2
// and 9) and OpenMP-style thread affinity. Class 1.c of the evaluation
// compares two affinity methods: "The close method populates an entire
// socket first and then adds cores from the second socket. The spread
// method, on the opposite, adds cores alternately from both sockets."
package numa

import (
	"fmt"

	"cxlpmem/internal/topology"
)

// Affinity selects a thread-placement strategy.
type Affinity int

const (
	// Close fills socket 0 completely before using socket 1.
	Close Affinity = iota
	// Spread alternates cores between the sockets.
	Spread
)

func (a Affinity) String() string {
	switch a {
	case Close:
		return "close"
	case Spread:
		return "spread"
	default:
		return fmt.Sprintf("Affinity(%d)", int(a))
	}
}

// PlaceThreads returns the cores the first n OpenMP threads land on
// under the given affinity across all sockets of m.
func PlaceThreads(m *topology.Machine, n int, a Affinity) ([]topology.Core, error) {
	total := len(m.Cores())
	if n <= 0 || n > total {
		return nil, fmt.Errorf("numa: thread count %d outside 1..%d", n, total)
	}
	switch a {
	case Close:
		return m.Cores()[:n], nil
	case Spread:
		var lists [][]topology.Core
		for _, s := range m.Sockets {
			lists = append(lists, s.Cores)
		}
		out := make([]topology.Core, 0, n)
		for i := 0; len(out) < n; i++ {
			for _, l := range lists {
				if i < len(l) {
					out = append(out, l[i])
					if len(out) == n {
						break
					}
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("numa: unknown affinity %d", a)
	}
}

// PlaceOnSocket pins the first n threads to one socket, the single-
// socket configuration of test groups 1.a, 1.b and 2.a.
func PlaceOnSocket(m *topology.Machine, socket topology.SocketID, n int) ([]topology.Core, error) {
	cores := m.CoresOn(socket)
	if cores == nil {
		return nil, fmt.Errorf("numa: no socket %d", socket)
	}
	if n <= 0 || n > len(cores) {
		return nil, fmt.Errorf("numa: thread count %d outside 1..%d on socket %d", n, len(cores), socket)
	}
	return cores[:n], nil
}

// PolicyKind enumerates memory policies.
type PolicyKind int

const (
	// Membind restricts allocation to an explicit node set and fails
	// if they cannot satisfy it (numactl --membind).
	Membind PolicyKind = iota
	// Interleave round-robins pages across a node set
	// (numactl --interleave).
	Interleave
	// Preferred tries one node first and falls back to any other
	// (numactl --preferred).
	Preferred
)

func (k PolicyKind) String() string {
	switch k {
	case Membind:
		return "membind"
	case Interleave:
		return "interleave"
	case Preferred:
		return "preferred"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Policy is a memory placement policy over NUMA nodes.
type Policy struct {
	Kind  PolicyKind
	Nodes []topology.NodeID

	next int // interleave cursor
}

// NewMembind builds a --membind=nodes policy.
func NewMembind(nodes ...topology.NodeID) *Policy {
	return &Policy{Kind: Membind, Nodes: nodes}
}

// NewInterleave builds a --interleave=nodes policy.
func NewInterleave(nodes ...topology.NodeID) *Policy {
	return &Policy{Kind: Interleave, Nodes: nodes}
}

// NewPreferred builds a --preferred=node policy.
func NewPreferred(node topology.NodeID) *Policy {
	return &Policy{Kind: Preferred, Nodes: []topology.NodeID{node}}
}

// Validate checks the policy against a machine.
func (p *Policy) Validate(m *topology.Machine) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("numa: %s policy with no nodes", p.Kind)
	}
	if p.Kind == Preferred && len(p.Nodes) != 1 {
		return fmt.Errorf("numa: preferred policy needs exactly one node, got %d", len(p.Nodes))
	}
	for _, id := range p.Nodes {
		if _, err := m.Node(id); err != nil {
			return err
		}
	}
	return nil
}

// Pick returns the node the next allocation should land on, advancing
// the interleave cursor. sizeAvailable reports whether a node can hold
// the allocation; Membind fails when none of its nodes can, Preferred
// falls back across the whole machine.
func (p *Policy) Pick(m *topology.Machine, sizeAvailable func(*topology.Node) bool) (*topology.Node, error) {
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	switch p.Kind {
	case Membind:
		for _, id := range p.Nodes {
			n, err := m.Node(id)
			if err != nil {
				return nil, err
			}
			if sizeAvailable == nil || sizeAvailable(n) {
				return n, nil
			}
		}
		return nil, fmt.Errorf("numa: membind=%v cannot satisfy allocation", p.Nodes)
	case Interleave:
		for range p.Nodes {
			id := p.Nodes[p.next%len(p.Nodes)]
			p.next++
			n, err := m.Node(id)
			if err != nil {
				return nil, err
			}
			if sizeAvailable == nil || sizeAvailable(n) {
				return n, nil
			}
		}
		return nil, fmt.Errorf("numa: interleave=%v cannot satisfy allocation", p.Nodes)
	case Preferred:
		n, err := m.Node(p.Nodes[0])
		if err != nil {
			return nil, err
		}
		if sizeAvailable == nil || sizeAvailable(n) {
			return n, nil
		}
		for _, cand := range m.Nodes {
			if sizeAvailable(cand) {
				return cand, nil
			}
		}
		return nil, fmt.Errorf("numa: preferred=%d cannot satisfy allocation anywhere", p.Nodes[0])
	default:
		return nil, fmt.Errorf("numa: unknown policy kind %d", p.Kind)
	}
}

func (p *Policy) String() string {
	return fmt.Sprintf("--%s=%v", p.Kind, p.Nodes)
}
