package numa

import (
	"testing"

	"cxlpmem/internal/topology"
)

func machine(t *testing.T) *topology.Machine {
	t.Helper()
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func ids(cores []topology.Core) []int {
	out := make([]int, len(cores))
	for i, c := range cores {
		out[i] = int(c.ID)
	}
	return out
}

func TestPlaceThreadsClose(t *testing.T) {
	m := machine(t)
	cores, err := PlaceThreads(m, 12, Close)
	if err != nil {
		t.Fatal(err)
	}
	// Close: fill socket0 (0..9) then socket1 (10, 11).
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	got := ids(cores)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("close placement = %v, want %v", got, want)
		}
	}
	// All of socket0 first: thread 10 is the first remote one.
	if cores[9].Socket != 0 || cores[10].Socket != 1 {
		t.Error("close did not populate an entire socket first")
	}
}

func TestPlaceThreadsSpread(t *testing.T) {
	m := machine(t)
	cores, err := PlaceThreads(m, 6, Spread)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 10, 1, 11, 2, 12}
	got := ids(cores)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spread placement = %v, want %v", got, want)
		}
	}
	// Alternating sockets.
	for i, c := range cores {
		if int(c.Socket) != i%2 {
			t.Errorf("thread %d on socket %d, want %d", i, c.Socket, i%2)
		}
	}
}

func TestPlaceThreadsFullMachineIdenticalSets(t *testing.T) {
	// At the full core count, close and spread use the same core set —
	// the §4 Class 1.c convergence precondition.
	m := machine(t)
	c, err := PlaceThreads(m, 20, Close)
	if err != nil {
		t.Fatal(err)
	}
	s, err := PlaceThreads(m, 20, Spread)
	if err != nil {
		t.Fatal(err)
	}
	inClose := map[topology.CoreID]bool{}
	for _, x := range c {
		inClose[x.ID] = true
	}
	for _, x := range s {
		if !inClose[x.ID] {
			t.Fatalf("spread uses core %d that close does not", x.ID)
		}
	}
}

func TestPlaceThreadsValidation(t *testing.T) {
	m := machine(t)
	if _, err := PlaceThreads(m, 0, Close); err == nil {
		t.Error("accepted 0 threads")
	}
	if _, err := PlaceThreads(m, 21, Close); err == nil {
		t.Error("accepted more threads than cores")
	}
	if _, err := PlaceThreads(m, 4, Affinity(9)); err == nil {
		t.Error("accepted unknown affinity")
	}
}

func TestPlaceOnSocket(t *testing.T) {
	m := machine(t)
	cores, err := PlaceOnSocket(m, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 11, 12, 13}
	got := ids(cores)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("socket placement = %v, want %v", got, want)
		}
	}
	if _, err := PlaceOnSocket(m, 5, 1); err == nil {
		t.Error("accepted missing socket")
	}
	if _, err := PlaceOnSocket(m, 0, 11); err == nil {
		t.Error("accepted too many threads for one socket")
	}
	if _, err := PlaceOnSocket(m, 0, 0); err == nil {
		t.Error("accepted zero threads")
	}
}

func TestMembindPick(t *testing.T) {
	m := machine(t)
	p := NewMembind(2)
	n, err := p.Pick(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 2 {
		t.Errorf("picked node %d, want 2", n.ID)
	}
	// Membind fails when the node cannot satisfy the request.
	_, err = p.Pick(m, func(*topology.Node) bool { return false })
	if err == nil {
		t.Error("membind fell back despite strict binding")
	}
}

func TestInterleaveRoundRobins(t *testing.T) {
	m := machine(t)
	p := NewInterleave(0, 1, 2)
	var got []topology.NodeID
	for i := 0; i < 6; i++ {
		n, err := p.Pick(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, n.ID)
	}
	want := []topology.NodeID{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave sequence = %v, want %v", got, want)
		}
	}
	// Skips full nodes.
	p2 := NewInterleave(0, 1)
	n, err := p2.Pick(m, func(n *topology.Node) bool { return n.ID != 0 })
	if err != nil || n.ID != 1 {
		t.Errorf("interleave skip = %v, %v", n, err)
	}
}

func TestPreferredFallsBack(t *testing.T) {
	m := machine(t)
	p := NewPreferred(2)
	n, err := p.Pick(m, nil)
	if err != nil || n.ID != 2 {
		t.Fatalf("preferred pick = %v, %v", n, err)
	}
	// Falls back anywhere when the preferred node is full.
	n, err = p.Pick(m, func(n *topology.Node) bool { return n.ID == 0 })
	if err != nil || n.ID != 0 {
		t.Errorf("preferred fallback = %v, %v", n, err)
	}
	// Fails when nothing fits.
	if _, err := p.Pick(m, func(*topology.Node) bool { return false }); err == nil {
		t.Error("preferred succeeded with no capacity anywhere")
	}
}

func TestPolicyValidation(t *testing.T) {
	m := machine(t)
	if err := (&Policy{Kind: Membind}).Validate(m); err == nil {
		t.Error("empty node list accepted")
	}
	if err := NewMembind(7).Validate(m); err == nil {
		t.Error("missing node accepted")
	}
	if err := (&Policy{Kind: Preferred, Nodes: []topology.NodeID{0, 1}}).Validate(m); err == nil {
		t.Error("multi-node preferred accepted")
	}
	if _, err := (&Policy{Kind: PolicyKind(9), Nodes: []topology.NodeID{0}}).Pick(m, nil); err == nil {
		t.Error("unknown policy kind accepted")
	}
}

func TestStringers(t *testing.T) {
	if Close.String() != "close" || Spread.String() != "spread" {
		t.Error("affinity strings")
	}
	if Affinity(5).String() == "" {
		t.Error("unknown affinity string")
	}
	if Membind.String() != "membind" || Interleave.String() != "interleave" || Preferred.String() != "preferred" {
		t.Error("policy kind strings")
	}
	if PolicyKind(9).String() == "" {
		t.Error("unknown policy kind string")
	}
	if s := NewMembind(2).String(); s != "--membind=[2]" {
		t.Errorf("policy string = %q", s)
	}
}
