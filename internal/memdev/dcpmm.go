package memdev

import (
	"fmt"

	"cxlpmem/internal/units"
)

// Published single-module Optane DCPMM figures the paper compares against
// (§1.4, citing Izraelevitz et al.): max read 6.6 GB/s, max write 2.3
// GB/s, with read latency around 300 ns for random access.
const (
	DCPMMReadPeakGBps  = 6.6
	DCPMMWritePeakGBps = 2.3
	DCPMMIdleLatencyNs = 305
)

// DCPMMConfig describes an Optane DC Persistent Memory module set.
type DCPMMConfig struct {
	Name     string
	Modules  int
	Capacity units.Size // per module
	// Interleaved module sets scale bandwidth nearly linearly; the
	// paper's single-module comparison uses Modules=1.
}

// DCPMM models an Optane module set. It is genuinely non-volatile: it
// survives PowerCycle without a battery.
type DCPMM struct {
	*baseDevice
	cfg DCPMMConfig
}

// NewDCPMM builds a DCPMM device.
func NewDCPMM(cfg DCPMMConfig) (*DCPMM, error) {
	if cfg.Modules <= 0 {
		return nil, fmt.Errorf("memdev: %s: modules must be positive, got %d", cfg.Name, cfg.Modules)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("memdev: %s: capacity must be positive", cfg.Name)
	}
	n := float64(cfg.Modules)
	prof := Profile{
		ReadPeak:    units.GBps(DCPMMReadPeakGBps * n),
		WritePeak:   units.GBps(DCPMMWritePeakGBps * n),
		IdleLatency: units.Nanoseconds(DCPMMIdleLatencyNs),
		Kind:        KindDCPMM,
	}
	total := units.Size(int64(cfg.Capacity) * int64(cfg.Modules))
	return &DCPMM{
		baseDevice: newBaseDevice(cfg.Name, total, true, prof),
		cfg:        cfg,
	}, nil
}

// Config returns the construction parameters.
func (d *DCPMM) Config() DCPMMConfig { return d.cfg }

func (d *DCPMM) String() string {
	return fmt.Sprintf("%s: %dx%s Optane DCPMM", d.name, d.cfg.Modules, d.cfg.Capacity)
}
