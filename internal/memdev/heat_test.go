package memdev

import (
	"sync"
	"testing"

	"cxlpmem/internal/units"
)

func TestHeatWindowedEpochs(t *testing.T) {
	var s Stats
	h, err := s.EnableHeat(8*units.MiB, 2*units.MiB.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.Regions() != 4 || h.Granule() != 2*units.MiB.Bytes() {
		t.Fatalf("regions=%d granule=%d", h.Regions(), h.Granule())
	}
	// Touches accumulate in the current window, not the epoch snapshot.
	h.Touch(0, 64)
	h.Touch(64, 64)
	h.Touch(2*units.MiB.Bytes(), 64)
	if got := h.Current(0); got != 2 {
		t.Errorf("current[0] = %d, want 2", got)
	}
	if got := h.EpochCount(0); got != 0 {
		t.Errorf("epoch count before any epoch = %d, want 0", got)
	}
	if n := h.AdvanceEpoch(); n != 1 {
		t.Errorf("first epoch = %d, want 1", n)
	}
	if got := h.EpochCount(0); got != 2 {
		t.Errorf("retired count[0] = %d, want 2", got)
	}
	if got := h.EpochCount(2 * units.MiB.Bytes()); got != 1 {
		t.Errorf("retired count[1] = %d, want 1", got)
	}
	if got := h.Current(0); got != 0 {
		t.Errorf("current window not reset: %d", got)
	}
	// A quiet epoch retires to zero.
	h.AdvanceEpoch()
	if got := h.EpochCount(0); got != 0 {
		t.Errorf("count after quiet epoch = %d, want 0", got)
	}
	if h.Epochs() != 2 {
		t.Errorf("epochs = %d", h.Epochs())
	}
}

func TestHeatSpanningTouch(t *testing.T) {
	var s Stats
	h, err := s.EnableHeat(8*units.MiB, 2*units.MiB.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// A transfer crossing a region boundary counts in both regions.
	h.Touch(2*units.MiB.Bytes()-32, 64)
	h.AdvanceEpoch()
	if a, b := h.EpochCount(0), h.EpochCount(2*units.MiB.Bytes()); a != 1 || b != 1 {
		t.Errorf("boundary touch counted %d/%d, want 1/1", a, b)
	}
	// Out-of-range touches are dropped, not panics.
	h.Touch(-1, 64)
	h.Touch(1<<40, 64)
	if h.EpochCount(-1) != 0 || h.Current(1<<40) != 0 {
		t.Error("out-of-range reads not zero")
	}
}

func TestEnableHeatIdempotent(t *testing.T) {
	var s Stats
	if s.Heat() != nil {
		t.Fatal("heat enabled before EnableHeat")
	}
	s.TouchHeat(0, 64) // no-op while disabled
	h1, err := s.EnableHeat(4*units.MiB, 2*units.MiB.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.EnableHeat(4*units.MiB, 2*units.MiB.Bytes())
	if err != nil || h2 != h1 {
		t.Errorf("re-enable returned %p (%v), want the original map", h2, err)
	}
	if _, err := s.EnableHeat(4*units.MiB, units.MiB.Bytes()); err == nil {
		t.Error("granule mismatch accepted")
	}
	if _, err := s.EnableHeat(4*units.MiB, 0); err == nil {
		t.Error("zero granule accepted")
	}
}

// TestDeviceAccessFeedsHeat: every ReadAt/WriteAt a device serves lands
// in the heat map — observation at the media, whatever path delivered
// the access.
func TestDeviceAccessFeedsHeat(t *testing.T) {
	d, err := NewDRAM(DRAMConfig{Name: "heat-dimm", Rate: 4800, Channels: 1, CapacityPerChannel: 8 * units.MiB})
	if err != nil {
		t.Fatal(err)
	}
	h, err := d.Stats().EnableHeat(d.Capacity(), 2*units.MiB.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 2*units.MiB.Bytes()); err != nil {
		t.Fatal(err)
	}
	h.AdvanceEpoch()
	if got := h.EpochCount(0); got != 2 {
		t.Errorf("region 0 heat = %d, want 2", got)
	}
	if got := h.EpochCount(2 * units.MiB.Bytes()); got != 1 {
		t.Errorf("region 1 heat = %d, want 1", got)
	}
}

// TestHeatConcurrent: the hot path (Touch) races AdvanceEpoch and the
// readers without losing counts overall.
func TestHeatConcurrent(t *testing.T) {
	var s Stats
	h, err := s.EnableHeat(4*units.MiB, 2*units.MiB.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Touch(0, 64)
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.AdvanceEpoch()
				h.EpochCount(0)
				h.Current(0)
			}
		}
	}()
	wg.Wait()
	close(stop)
	h.AdvanceEpoch()
	// Every touch landed in exactly one retired window; the final
	// total is split across epochs but conserved. Re-sum by touching
	// nothing more: last window + what previous epochs retired is not
	// directly observable, so just assert the final retire did not
	// over-count.
	if got := h.EpochCount(0); got > 4*perWorker {
		t.Errorf("over-counted: %d touches retired, only %d issued", got, 4*perWorker)
	}
}
