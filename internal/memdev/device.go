// Package memdev models the byte-addressable memory media the paper
// attaches to its two experimental hosts: on-node DDR4 and DDR5 DIMMs,
// the DDR4 modules on the CXL FPGA prototype, and — as the published
// comparison baseline — an Intel Optane DCPMM module.
//
// A device stores real bytes (sparsely, so a 64 GiB DIMM costs nothing
// until touched) and carries a performance profile consumed by the
// analytic bandwidth engine in internal/perf. Media persistence is a
// property of the device: battery-backed or otherwise non-volatile
// devices survive PowerCycle, plain DRAM does not (paper §1.4: the CXL
// module sits outside the node and can be battery-backed once for all
// compute nodes).
package memdev

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/units"
)

// Kind classifies the media technology of a device.
type Kind int

const (
	// KindDRAM is a conventional volatile DIMM (DDR4 or DDR5).
	KindDRAM Kind = iota
	// KindCXLHDM is host-managed device memory behind a CXL endpoint
	// (the paper's FPGA-attached DDR4, battery-backed).
	KindCXLHDM
	// KindDCPMM is an Intel Optane DC Persistent Memory module.
	KindDCPMM
)

func (k Kind) String() string {
	switch k {
	case KindDRAM:
		return "DRAM"
	case KindCXLHDM:
		return "CXL-HDM"
	case KindDCPMM:
		return "DCPMM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Profile is the raw performance envelope of the media itself, before any
// fabric (UPI/CXL) costs. internal/perf layers link latency and caps on
// top of this.
type Profile struct {
	// ReadPeak and WritePeak are the sustainable media bandwidths.
	// Symmetric for DRAM; strongly asymmetric for DCPMM (6.6 vs 2.3
	// GB/s published, paper §1.4).
	ReadPeak  units.Bandwidth
	WritePeak units.Bandwidth
	// IdleLatency is the unloaded media access latency.
	IdleLatency units.Latency
	// Kind of the underlying technology.
	Kind Kind
}

// StreamPeak returns the sustainable bandwidth for a traffic mix with the
// given read fraction in [0,1]. Reads and writes share the media in
// proportion to the mix; the combined rate is the harmonic composition of
// the two peaks, which reproduces the strong write penalty of DCPMM while
// leaving symmetric DRAM unchanged.
func (p Profile) StreamPeak(readFrac float64) units.Bandwidth {
	if readFrac < 0 {
		readFrac = 0
	}
	if readFrac > 1 {
		readFrac = 1
	}
	r := float64(p.ReadPeak)
	w := float64(p.WritePeak)
	if r <= 0 || w <= 0 {
		return 0
	}
	inv := readFrac/r + (1-readFrac)/w
	if inv <= 0 {
		return 0
	}
	return units.Bandwidth(1 / inv)
}

// Stats counts accesses to a device. All fields are updated atomically and
// may be read concurrently.
//
// The RAS counters are the health state machine's raw inputs
// (internal/ras): Correctable counts errors caught and repaired before a
// demand access consumed them (latent poison a patrol scrub localised,
// link CRC errors the retry machinery recovered are counted separately
// in LinkRetries); Uncorrectable counts errors that reached a consumer —
// demand poison hits and link errors that exhausted their retries.
// LinkRetries counts CRC retransmissions the owning port attributed to
// this device.
type Stats struct {
	Reads      atomic.Int64
	Writes     atomic.Int64
	BytesRead  atomic.Int64
	BytesWrite atomic.Int64

	Correctable   atomic.Int64
	Uncorrectable atomic.Int64
	LinkRetries   atomic.Int64
	// CommandTimeouts counts mailbox commands whose deadline expired
	// before the device answered — the command-plane health input.
	CommandTimeouts atomic.Int64

	// heat, when enabled, holds the windowed per-region hotness
	// counters the tiering policy daemon reads (heat.go).
	heat atomic.Pointer[Heat]
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() (reads, writes, bytesRead, bytesWritten int64) {
	return s.Reads.Load(), s.Writes.Load(), s.BytesRead.Load(), s.BytesWrite.Load()
}

// RASCounters is a plain-value copy of the error counters.
type RASCounters struct {
	Correctable     int64
	Uncorrectable   int64
	LinkRetries     int64
	CommandTimeouts int64
}

// RAS returns a plain-value copy of the error counters.
func (s *Stats) RAS() RASCounters {
	return RASCounters{
		Correctable:     s.Correctable.Load(),
		Uncorrectable:   s.Uncorrectable.Load(),
		LinkRetries:     s.LinkRetries.Load(),
		CommandTimeouts: s.CommandTimeouts.Load(),
	}
}

// Range is a contiguous committed span of a device's address space.
type Range struct {
	Base uint64
	Size uint64
}

// RangeLister is implemented by devices that can enumerate their
// committed (ever-written or currently mapped) address ranges. The
// patrol scrubber walks these instead of the full capacity, so an
// almost-empty 64 GiB device costs almost nothing to scrub.
type RangeLister interface {
	Committed() []Range
}

// Device is a byte-addressable memory medium.
type Device interface {
	// Name identifies the device (e.g. "ddr5-socket0", "cxl-hdm").
	Name() string
	// Capacity is the addressable size in bytes.
	Capacity() units.Size
	// Persistent reports whether contents survive PowerCycle.
	Persistent() bool
	// Profile returns the media performance envelope.
	Profile() Profile
	// ReadAt copies len(p) bytes from offset off into p.
	ReadAt(p []byte, off int64) error
	// WriteAt copies p to offset off.
	WriteAt(p []byte, off int64) error
	// PowerCycle simulates a power loss and restore. Volatile devices
	// lose all contents; persistent devices retain them.
	PowerCycle()
	// Stats exposes access counters.
	Stats() *Stats
}

// AddrError reports an out-of-range access.
type AddrError struct {
	Device string
	Off    int64
	Len    int
	Cap    units.Size
}

func (e *AddrError) Error() string {
	return fmt.Sprintf("memdev: %s: access [%d, %d) outside capacity %d",
		e.Device, e.Off, e.Off+int64(e.Len), e.Cap.Bytes())
}

// pageSize is the sparse-storage granule. 2 MiB mirrors the huge pages a
// DAX mapping would use and keeps the page map small.
const pageSize = 2 << 20

// storePage is one materialised 2 MiB page: its own content lock plus
// the backing bytes. Per-page locking is what lets different hosts'
// MLD partitions (disjoint pages of one appliance media) read and
// write genuinely in parallel, while access to any single line — which
// never spans a page — stays linearizable.
type storePage struct {
	mu  sync.RWMutex
	buf []byte
}

// sparseStore is a lazily allocated byte store. Untouched regions read
// as zero. It is safe for concurrent use: the page index is a sync.Map
// (pages materialise once and are then read-mostly, the map's ideal
// case), so page lookup — and the zero-fill path for untouched pages —
// is lock-free; materialised page content is guarded by the page's own
// read-write lock. Accesses confined to one page (every CXL line
// transaction, and every burst that does not cross a 2 MiB boundary)
// are linearizable; multi-page accesses commit page by page, exactly
// as a multi-channel memory controller commits a multi-beat transfer.
type sparseStore struct {
	pages sync.Map // page index (int64) -> *storePage
	cap   int64
}

func newSparseStore(capacity units.Size) *sparseStore {
	return &sparseStore{cap: capacity.Bytes()}
}

func (s *sparseStore) check(off int64, n int) bool {
	return off >= 0 && n >= 0 && off+int64(n) <= s.cap
}

func (s *sparseStore) readAt(p []byte, off int64) {
	for len(p) > 0 {
		idx := off / pageSize
		po := off % pageSize
		n := pageSize - po
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		if v, ok := s.pages.Load(idx); ok {
			pg := v.(*storePage)
			pg.mu.RLock()
			copy(p[:n], pg.buf[po:po+n])
			pg.mu.RUnlock()
		} else {
			for i := range p[:n] {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
}

// page returns the materialised page idx, creating it on first touch.
func (s *sparseStore) page(idx int64) *storePage {
	if v, ok := s.pages.Load(idx); ok {
		return v.(*storePage)
	}
	v, _ := s.pages.LoadOrStore(idx, &storePage{buf: make([]byte, pageSize)})
	return v.(*storePage)
}

func (s *sparseStore) writeAt(p []byte, off int64) {
	for len(p) > 0 {
		idx := off / pageSize
		po := off % pageSize
		n := pageSize - po
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		pg := s.page(idx)
		pg.mu.Lock()
		copy(pg.buf[po:po+n], p[:n])
		pg.mu.Unlock()
		p = p[n:]
		off += n
	}
}

func (s *sparseStore) clear() {
	s.pages.Clear()
}

// touchedPages reports how many pages have been materialised (test hook).
func (s *sparseStore) touchedPages() int {
	n := 0
	s.pages.Range(func(any, any) bool { n++; return true })
	return n
}

// committed enumerates the materialised pages as sorted, coalesced
// ranges. Pages materialise on first write and are never dropped short
// of PowerCycle, so this is the "ever-written" footprint.
func (s *sparseStore) committed() []Range {
	var idx []int64
	s.pages.Range(func(k, _ any) bool {
		idx = append(idx, k.(int64))
		return true
	})
	if len(idx) == 0 {
		return nil
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	var out []Range
	for _, i := range idx {
		base := uint64(i) * pageSize
		size := uint64(pageSize)
		if end := uint64(s.cap); base+size > end {
			size = end - base
		}
		if n := len(out); n > 0 && out[n-1].Base+out[n-1].Size == base {
			out[n-1].Size += size
		} else {
			out = append(out, Range{Base: base, Size: size})
		}
	}
	return out
}

// baseDevice implements the storage and bookkeeping shared by all device
// models.
type baseDevice struct {
	name       string
	capacity   units.Size
	persistent bool
	profile    Profile
	store      *sparseStore
	stats      Stats
}

func newBaseDevice(name string, capacity units.Size, persistent bool, profile Profile) *baseDevice {
	return &baseDevice{
		name:       name,
		capacity:   capacity,
		persistent: persistent,
		profile:    profile,
		store:      newSparseStore(capacity),
	}
}

// Committed implements RangeLister: the materialised (ever-written)
// ranges of the sparse store.
func (d *baseDevice) Committed() []Range { return d.store.committed() }

func (d *baseDevice) Name() string         { return d.name }
func (d *baseDevice) Capacity() units.Size { return d.capacity }
func (d *baseDevice) Persistent() bool     { return d.persistent }
func (d *baseDevice) Profile() Profile     { return d.profile }
func (d *baseDevice) Stats() *Stats        { return &d.stats }

func (d *baseDevice) ReadAt(p []byte, off int64) error {
	if !d.store.check(off, len(p)) {
		return &AddrError{Device: d.name, Off: off, Len: len(p), Cap: d.capacity}
	}
	d.store.readAt(p, off)
	d.stats.Reads.Add(1)
	d.stats.BytesRead.Add(int64(len(p)))
	d.stats.TouchHeat(off, len(p))
	return nil
}

func (d *baseDevice) WriteAt(p []byte, off int64) error {
	if !d.store.check(off, len(p)) {
		return &AddrError{Device: d.name, Off: off, Len: len(p), Cap: d.capacity}
	}
	d.store.writeAt(p, off)
	d.stats.Writes.Add(1)
	d.stats.BytesWrite.Add(int64(len(p)))
	d.stats.TouchHeat(off, len(p))
	return nil
}

func (d *baseDevice) PowerCycle() {
	if !d.persistent {
		d.store.clear()
	}
}
