package memdev

import (
	"fmt"

	"cxlpmem/internal/units"
)

// DRAMConfig describes a set of DIMMs behind one memory controller.
type DRAMConfig struct {
	// Name identifies the module set (e.g. "ddr5-socket0").
	Name string
	// Rate is the DIMM signalling rate (DDR4-2666 => 2666).
	Rate units.TransferRate
	// Channels is the populated channel count.
	Channels int
	// CapacityPerChannel is the DIMM capacity on each channel.
	CapacityPerChannel units.Size
	// IdleLatency is the unloaded access latency of the media.
	IdleLatency units.Latency
	// Efficiency derates the theoretical channel peak to a sustainable
	// STREAM-class figure (row-buffer misses, refresh, turnarounds).
	// Zero means the default of 0.78, which puts one DDR5-4800 channel
	// at ~30 GB/s raw and the paper's single-DIMM SPR socket in the
	// right regime for the observed 20-22 GB/s App-Direct saturation.
	Efficiency float64
	// BatteryBacked marks the module set persistent, like the
	// battery-backed DIMMs the paper positions the CXL module as a
	// successor to (§1.2, §1.4).
	BatteryBacked bool
}

// defaultDRAMEfficiency is the fraction of theoretical channel bandwidth
// sustainable by streaming access.
const defaultDRAMEfficiency = 0.78

// DRAM is a conventional DIMM set.
type DRAM struct {
	*baseDevice
	cfg DRAMConfig
}

// NewDRAM builds a DRAM device from cfg.
func NewDRAM(cfg DRAMConfig) (*DRAM, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("memdev: %s: channels must be positive, got %d", cfg.Name, cfg.Channels)
	}
	if cfg.CapacityPerChannel <= 0 {
		return nil, fmt.Errorf("memdev: %s: capacity per channel must be positive", cfg.Name)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("memdev: %s: transfer rate must be positive", cfg.Name)
	}
	eff := cfg.Efficiency
	if eff == 0 {
		eff = defaultDRAMEfficiency
	}
	if eff < 0 || eff > 1 {
		return nil, fmt.Errorf("memdev: %s: efficiency %v outside (0,1]", cfg.Name, eff)
	}
	peak := units.Bandwidth(float64(units.DDRPeak(cfg.Rate)) * float64(cfg.Channels) * eff)
	lat := cfg.IdleLatency
	if lat == 0 {
		lat = units.Nanoseconds(90)
	}
	prof := Profile{
		ReadPeak:    peak,
		WritePeak:   peak,
		IdleLatency: lat,
		Kind:        KindDRAM,
	}
	total := units.Size(int64(cfg.CapacityPerChannel) * int64(cfg.Channels))
	return &DRAM{
		baseDevice: newBaseDevice(cfg.Name, total, cfg.BatteryBacked, prof),
		cfg:        cfg,
	}, nil
}

// Config returns the construction parameters.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// String describes the module set (e.g. "ddr5-socket0: 1x64GiB DDR-4800").
func (d *DRAM) String() string {
	return fmt.Sprintf("%s: %dx%s DDR-%d", d.name, d.cfg.Channels, d.cfg.CapacityPerChannel, d.cfg.Rate)
}
