package memdev

import "testing"

func BenchmarkStoreRead4K(b *testing.B) {
	d, err := NewDRAM(DRAMConfig{Name: "bench", Rate: 3200, Channels: 1, CapacityPerChannel: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := d.WriteAt(buf, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ReadAt(buf, int64(i%2048)*4096); err != nil {
			b.Fatal(err)
		}
	}
}
