package memdev

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/units"
)

// Heat is a windowed per-region access counter attached to a device's
// Stats — the device-side hotness telemetry a tiering policy daemon
// consumes. The device address space is split into fixed-size regions
// (typically one 2 MiB migration granule each); every ReadAt/WriteAt
// the device serves bumps the counter of each region it touches, so
// hotness is observed at the media itself, no matter which path (line,
// burst, ring submission, direct) delivered the access.
//
// Counters are windowed into epochs: the current window accumulates
// atomically on the access path, and AdvanceEpoch retires it — the
// retired window is what policy reads (EpochCount), while a fresh
// window starts accumulating. Retiring is the daemon's cold path; the
// hot path is one atomic add per touched region.
type Heat struct {
	granule int64
	cur     []atomic.Uint64

	// mu guards the retired window and the epoch counter (cold path:
	// AdvanceEpoch and the EpochCount readers).
	mu     sync.Mutex
	prev   []uint64
	epochs uint64
}

// newHeat sizes a heat map for a device capacity.
func newHeat(capacity units.Size, granule int64) *Heat {
	n := (capacity.Bytes() + granule - 1) / granule
	return &Heat{
		granule: granule,
		cur:     make([]atomic.Uint64, n),
		prev:    make([]uint64, n),
	}
}

// Granule reports the region size in bytes.
func (h *Heat) Granule() int64 { return h.granule }

// Regions reports the number of tracked regions.
func (h *Heat) Regions() int { return len(h.cur) }

// Touch records one access covering [off, off+n). Accesses confined to
// one region — every CXL line and every burst below the granule — cost
// a single atomic add.
func (h *Heat) Touch(off int64, n int) {
	if off < 0 || n <= 0 {
		return
	}
	first := off / h.granule
	last := (off + int64(n) - 1) / h.granule
	if first < 0 || first >= int64(len(h.cur)) {
		return
	}
	if last >= int64(len(h.cur)) {
		last = int64(len(h.cur)) - 1
	}
	for i := first; i <= last; i++ {
		h.cur[i].Add(1)
	}
}

// AdvanceEpoch retires the current window: per-region counts move into
// the readable epoch snapshot and a fresh window starts. Returns the
// new epoch number (the first AdvanceEpoch returns 1).
func (h *Heat) AdvanceEpoch() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.cur {
		h.prev[i] = h.cur[i].Swap(0)
	}
	h.epochs++
	return h.epochs
}

// Epochs reports how many windows have been retired.
func (h *Heat) Epochs() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epochs
}

// EpochCount returns the retired-window access count of the region
// containing off (0 before the first AdvanceEpoch or out of range).
func (h *Heat) EpochCount(off int64) uint64 {
	i := off / h.granule
	if off < 0 || i >= int64(len(h.prev)) {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.prev[i]
}

// Current returns the accumulating-window count of the region
// containing off — a live peek, monotone within the epoch.
func (h *Heat) Current(off int64) uint64 {
	i := off / h.granule
	if off < 0 || i >= int64(len(h.cur)) {
		return 0
	}
	return h.cur[i].Load()
}

// EnableHeat attaches a windowed per-region heat map to the stats,
// sized for the given capacity at the given region granule, and
// returns it. Idempotent: a second call with the same granule returns
// the existing map (counts preserved); a different granule is an
// error. Until enabled, the access-path cost is one atomic load.
func (s *Stats) EnableHeat(capacity units.Size, granule int64) (*Heat, error) {
	if granule <= 0 {
		return nil, fmt.Errorf("memdev: heat granule %d not positive", granule)
	}
	for {
		if h := s.heat.Load(); h != nil {
			if h.granule != granule {
				return nil, fmt.Errorf("memdev: heat already enabled at granule %d, asked %d", h.granule, granule)
			}
			return h, nil
		}
		h := newHeat(capacity, granule)
		if s.heat.CompareAndSwap(nil, h) {
			return h, nil
		}
	}
}

// Heat returns the attached heat map, or nil when disabled.
func (s *Stats) Heat() *Heat { return s.heat.Load() }

// TouchHeat records an access against the heat map, if one is
// attached. Device implementations call this next to the Reads/Writes
// counters on their access paths; when heat is disabled it is one
// atomic pointer load.
func (s *Stats) TouchHeat(off int64, n int) {
	if h := s.heat.Load(); h != nil {
		h.Touch(off, n)
	}
}
