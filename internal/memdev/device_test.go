package memdev

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"cxlpmem/internal/units"
)

func mustDRAM(t *testing.T, cfg DRAMConfig) *DRAM {
	t.Helper()
	d, err := NewDRAM(cfg)
	if err != nil {
		t.Fatalf("NewDRAM: %v", err)
	}
	return d
}

func testDRAM(t *testing.T) *DRAM {
	return mustDRAM(t, DRAMConfig{
		Name:               "test-ddr5",
		Rate:               4800,
		Channels:           1,
		CapacityPerChannel: 64 * units.MiB,
	})
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := testDRAM(t)
	in := []byte("the quick brown fox jumps over the lazy dog")
	if err := d.WriteAt(in, 12345); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	out := make([]byte, len(in))
	if err := d.ReadAt(out, 12345); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Errorf("round trip mismatch: got %q", out)
	}
}

func TestUntouchedReadsZero(t *testing.T) {
	d := testDRAM(t)
	out := make([]byte, 256)
	for i := range out {
		out[i] = 0xFF
	}
	if err := d.ReadAt(out, 1<<20); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i, b := range out {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	d := testDRAM(t)
	// Straddle a 2 MiB page boundary.
	off := int64(pageSize) - 100
	in := make([]byte, 300)
	for i := range in {
		in[i] = byte(i)
	}
	if err := d.WriteAt(in, off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	out := make([]byte, 300)
	if err := d.ReadAt(out, off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Error("cross-page round trip mismatch")
	}
	if got := d.store.touchedPages(); got != 2 {
		t.Errorf("touchedPages = %d, want 2", got)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	d := testDRAM(t)
	capBytes := d.Capacity().Bytes()
	cases := []struct {
		off int64
		n   int
	}{
		{-1, 4},
		{capBytes, 1},
		{capBytes - 2, 4},
		{0, int(capBytes) + 1},
	}
	for _, c := range cases {
		err := d.WriteAt(make([]byte, c.n), c.off)
		var ae *AddrError
		if !errors.As(err, &ae) {
			t.Errorf("WriteAt(off=%d, n=%d): err = %v, want AddrError", c.off, c.n, err)
			continue
		}
		if ae.Device != "test-ddr5" {
			t.Errorf("AddrError.Device = %q", ae.Device)
		}
		if err := d.ReadAt(make([]byte, c.n), c.off); !errors.As(err, &ae) {
			t.Errorf("ReadAt(off=%d, n=%d): err = %v, want AddrError", c.off, c.n, err)
		}
	}
	if s := (&AddrError{Device: "x", Off: 5, Len: 3, Cap: 4}).Error(); s == "" {
		t.Error("empty AddrError string")
	}
}

func TestBoundaryAccessAtCapacity(t *testing.T) {
	d := testDRAM(t)
	capBytes := d.Capacity().Bytes()
	buf := []byte{1, 2, 3, 4}
	if err := d.WriteAt(buf, capBytes-4); err != nil {
		t.Fatalf("write at tail: %v", err)
	}
	out := make([]byte, 4)
	if err := d.ReadAt(out, capBytes-4); err != nil {
		t.Fatalf("read at tail: %v", err)
	}
	if !bytes.Equal(buf, out) {
		t.Error("tail round trip mismatch")
	}
}

func TestVolatileDRAMLosesDataOnPowerCycle(t *testing.T) {
	d := testDRAM(t)
	if d.Persistent() {
		t.Fatal("plain DRAM should be volatile")
	}
	if err := d.WriteAt([]byte{42}, 0); err != nil {
		t.Fatal(err)
	}
	d.PowerCycle()
	out := make([]byte, 1)
	if err := d.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Errorf("after power cycle byte = %d, want 0", out[0])
	}
}

func TestBatteryBackedDRAMSurvivesPowerCycle(t *testing.T) {
	d := mustDRAM(t, DRAMConfig{
		Name:               "bbu-dimm",
		Rate:               2666,
		Channels:           1,
		CapacityPerChannel: units.MiB,
		BatteryBacked:      true,
	})
	if !d.Persistent() {
		t.Fatal("battery-backed DRAM should be persistent")
	}
	if err := d.WriteAt([]byte{42}, 100); err != nil {
		t.Fatal(err)
	}
	d.PowerCycle()
	out := make([]byte, 1)
	if err := d.ReadAt(out, 100); err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Errorf("after power cycle byte = %d, want 42", out[0])
	}
}

func TestDCPMMSurvivesPowerCycle(t *testing.T) {
	d, err := NewDCPMM(DCPMMConfig{Name: "pmem", Modules: 1, Capacity: units.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Persistent() {
		t.Fatal("DCPMM should be persistent")
	}
	if err := d.WriteAt([]byte("persist"), 0); err != nil {
		t.Fatal(err)
	}
	d.PowerCycle()
	out := make([]byte, 7)
	if err := d.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if string(out) != "persist" {
		t.Errorf("after power cycle = %q", out)
	}
}

func TestDRAMPeakBandwidth(t *testing.T) {
	d := testDRAM(t)
	// 4800 MT/s * 8 B * 0.78 = 29.952 GB/s.
	got := d.Profile().ReadPeak.GBps()
	if got < 29.9 || got > 30.0 {
		t.Errorf("DDR5-4800 1ch sustained peak = %v GB/s, want ~29.95", got)
	}
	if d.Profile().ReadPeak != d.Profile().WritePeak {
		t.Error("DRAM peaks should be symmetric")
	}
	if d.Profile().Kind != KindDRAM {
		t.Errorf("Kind = %v", d.Profile().Kind)
	}
}

func TestDCPMMAsymmetry(t *testing.T) {
	d, err := NewDCPMM(DCPMMConfig{Name: "pmem", Modules: 1, Capacity: 128 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Profile()
	if got := p.ReadPeak.GBps(); got != 6.6 {
		t.Errorf("read peak = %v, want 6.6", got)
	}
	if got := p.WritePeak.GBps(); got != 2.3 {
		t.Errorf("write peak = %v, want 2.3", got)
	}
	if p.Kind != KindDCPMM {
		t.Errorf("Kind = %v", p.Kind)
	}
	// Six interleaved modules scale up.
	d6, err := NewDCPMM(DCPMMConfig{Name: "pmem6", Modules: 6, Capacity: 128 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	if got := d6.Profile().ReadPeak.GBps(); got < 39.5 || got > 39.7 {
		t.Errorf("6-module read peak = %v, want ~39.6", got)
	}
	if got := d6.Capacity(); got != 768*units.GiB {
		t.Errorf("capacity = %v", got)
	}
}

func TestStreamPeakMix(t *testing.T) {
	p := Profile{ReadPeak: units.GBps(6.6), WritePeak: units.GBps(2.3)}
	// Pure read and pure write hit the respective peaks.
	if got := p.StreamPeak(1).GBps(); got != 6.6 {
		t.Errorf("read-only mix = %v", got)
	}
	if got := p.StreamPeak(0).GBps(); got != 2.3 {
		t.Errorf("write-only mix = %v", got)
	}
	// Copy (1R:1W) is the harmonic mean region: between the two,
	// closer to the write peak.
	mid := p.StreamPeak(0.5).GBps()
	if mid <= 2.3 || mid >= 6.6 {
		t.Errorf("50/50 mix = %v, want in (2.3, 6.6)", mid)
	}
	if mid >= (6.6+2.3)/2 {
		t.Errorf("50/50 mix = %v, want below arithmetic mean (write-bound)", mid)
	}
	// Out-of-range fractions clamp.
	if got := p.StreamPeak(2); got != p.StreamPeak(1) {
		t.Error("frac > 1 should clamp to 1")
	}
	if got := p.StreamPeak(-1); got != p.StreamPeak(0) {
		t.Error("frac < 0 should clamp to 0")
	}
	// Degenerate profile.
	if got := (Profile{}).StreamPeak(0.5); got != 0 {
		t.Errorf("zero profile = %v, want 0", got)
	}
}

func TestStreamPeakSymmetricUnchanged(t *testing.T) {
	p := Profile{ReadPeak: units.GBps(20), WritePeak: units.GBps(20)}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := p.StreamPeak(f).GBps(); got < 19.999 || got > 20.001 {
			t.Errorf("symmetric mix frac=%v = %v, want 20", f, got)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	d := testDRAM(t)
	if err := d.WriteAt(make([]byte, 128), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(make([]byte, 64), 64); err != nil {
		t.Fatal(err)
	}
	r, w, br, bw := d.Stats().Snapshot()
	if r != 2 || w != 1 || br != 128 || bw != 128 {
		t.Errorf("stats = (%d, %d, %d, %d), want (2, 1, 128, 128)", r, w, br, bw)
	}
	// Failed accesses do not count.
	_ = d.ReadAt(make([]byte, 1), -1)
	r2, _, _, _ := d.Stats().Snapshot()
	if r2 != 2 {
		t.Errorf("failed read counted: %d", r2)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := testDRAM(t)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 1 << 20
			buf := []byte{byte(w), byte(w + 1), byte(w + 2), byte(w + 3)}
			for i := 0; i < perWorker; i++ {
				off := base + int64(i)*8
				if err := d.WriteAt(buf, off); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				out := make([]byte, 4)
				if err := d.ReadAt(out, off); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !bytes.Equal(buf, out) {
					t.Errorf("worker %d: read %v, want %v", w, out, buf)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: any sequence of writes followed by reads of the same ranges
// returns exactly what was written (no aliasing between pages).
func TestSparseStoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newSparseStore(16 * units.MiB)
		type chunk struct {
			off  int64
			data []byte
		}
		var chunks []chunk
		// Non-overlapping chunks in distinct 4 KiB slots.
		slots := rng.Perm(4096)[:32]
		for _, slot := range slots {
			n := rng.Intn(2048) + 1
			data := make([]byte, n)
			rng.Read(data)
			off := int64(slot) * 4096
			s.writeAt(data, off)
			chunks = append(chunks, chunk{off, data})
		}
		for _, c := range chunks {
			out := make([]byte, len(c.data))
			s.readAt(out, c.off)
			if !bytes.Equal(out, c.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNewDRAMValidation(t *testing.T) {
	bad := []DRAMConfig{
		{Name: "x", Rate: 4800, Channels: 0, CapacityPerChannel: units.MiB},
		{Name: "x", Rate: 4800, Channels: -1, CapacityPerChannel: units.MiB},
		{Name: "x", Rate: 4800, Channels: 1, CapacityPerChannel: 0},
		{Name: "x", Rate: 0, Channels: 1, CapacityPerChannel: units.MiB},
		{Name: "x", Rate: 4800, Channels: 1, CapacityPerChannel: units.MiB, Efficiency: 1.5},
		{Name: "x", Rate: 4800, Channels: 1, CapacityPerChannel: units.MiB, Efficiency: -0.5},
	}
	for i, cfg := range bad {
		if _, err := NewDRAM(cfg); err == nil {
			t.Errorf("case %d: NewDRAM accepted invalid config %+v", i, cfg)
		}
	}
}

func TestNewDCPMMValidation(t *testing.T) {
	if _, err := NewDCPMM(DCPMMConfig{Name: "x", Modules: 0, Capacity: units.MiB}); err == nil {
		t.Error("accepted zero modules")
	}
	if _, err := NewDCPMM(DCPMMConfig{Name: "x", Modules: 1, Capacity: 0}); err == nil {
		t.Error("accepted zero capacity")
	}
}

func TestKindString(t *testing.T) {
	if KindDRAM.String() != "DRAM" || KindCXLHDM.String() != "CXL-HDM" || KindDCPMM.String() != "DCPMM" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string")
	}
}

func TestStringers(t *testing.T) {
	d := mustDRAM(t, DRAMConfig{Name: "ddr5-socket0", Rate: 4800, Channels: 1, CapacityPerChannel: 64 * units.GiB})
	if got := d.String(); got != "ddr5-socket0: 1x64GiB DDR-4800" {
		t.Errorf("DRAM.String = %q", got)
	}
	p, err := NewDCPMM(DCPMMConfig{Name: "opt", Modules: 2, Capacity: 128 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "opt: 2x128GiB Optane DCPMM" {
		t.Errorf("DCPMM.String = %q", got)
	}
	if d.Config().Rate != 4800 || p.Config().Modules != 2 {
		t.Error("Config accessors mismatch")
	}
}
