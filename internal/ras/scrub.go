package ras

import (
	"fmt"

	"cxlpmem/internal/memdev"
)

// lineSize mirrors the CXL line size without importing internal/cxl
// (ras sits below the protocol layer so fabric and cxl can both use
// it).
const lineSize = 64

// zeroChunk is the shared scrub source (WriteAt never mutates its
// input); a package-level buffer keeps scrubbing allocation-free under
// concurrent reclaim.
var zeroChunk [1 << 20]byte

// ZeroFill zeroes [base, base+size) on media in bounded chunks. It is
// the single scrub-to-zero implementation: the fabric manager's
// free/forced-reclaim scrub and any RAS repair path share it, so the
// two can never diverge.
func ZeroFill(media memdev.Device, base, size uint64) error {
	for off := uint64(0); off < size; {
		n := uint64(len(zeroChunk))
		if off+n > size {
			n = size - off
		}
		if err := media.WriteAt(zeroChunk[:n], int64(base+off)); err != nil {
			return fmt.Errorf("ras: scrub %s [%#x+%#x): %w", media.Name(), base, size, err)
		}
		off += n
	}
	return nil
}

// rangesFor resolves the committed spans patrol walks for d: the
// caller's hook, the media's own RangeLister, or — neither — the full
// capacity.
func rangesFor(d *device) []memdev.Range {
	if d.opts.Ranges != nil {
		return d.opts.Ranges()
	}
	if rl, ok := d.media.(memdev.RangeLister); ok {
		return rl.Committed()
	}
	return []memdev.Range{{Base: 0, Size: uint64(d.media.Capacity().Bytes())}}
}

// readStripe fetches [dpa, dpa+n) through the configured path.
func (d *device) readStripe(dpa uint64, n int) error {
	if d.opts.Read != nil {
		return d.opts.Read(dpa, d.buf[:n])
	}
	return d.media.ReadAt(d.buf[:n], int64(dpa))
}

// probeLine reads the single line at dpa.
func (d *device) probeLine(dpa uint64) error {
	if d.opts.Probe != nil {
		return d.opts.Probe(dpa)
	}
	if d.opts.Read != nil {
		return d.opts.Read(dpa, d.buf[:lineSize])
	}
	return d.media.ReadAt(d.buf[:lineSize], int64(dpa))
}

// scanStripeLocked runs the post-read error check over one stripe: with
// a poison source, every line is checked against it (the stand-in for
// the media ECC check a real patrol read performs); without one, a
// failed stripe read is localised line by line with Probe. Newly found
// bad lines count as Correctable — patrol caught them before a demand
// access — and emit a poison event.
func (p *Plane) scanStripeLocked(d *device, dpa uint64, n int, readErr error) {
	checkLine := func(la uint64) bool {
		if d.opts.Poisoned != nil {
			return d.opts.Poisoned(la)
		}
		// No poison source: only a failed stripe justifies probing,
		// and only a failing line is suspect.
		return readErr != nil && d.probeLine(la) != nil
	}
	if d.opts.Poisoned == nil && readErr == nil {
		return
	}
	end := dpa + uint64(n)
	for la := dpa - dpa%lineSize; la < end; la += lineSize {
		if !checkLine(la) {
			continue
		}
		if _, dup := d.seen[la]; dup {
			continue
		}
		d.seen[la] = struct{}{}
		d.poisonedLines++
		d.media.Stats().Correctable.Add(1)
		p.emitLocked(Event{Device: d.name, Kind: EventScrubPoison, DPA: la})
	}
}

// ScrubStep advances the patrol scrub of name by up to budget bytes
// (at least one stripe). It returns the bytes scrubbed and whether a
// full pass over the committed footprint completed during this step.
// Steady state allocates nothing: the stripe buffer is preallocated
// and the committed-range walk reuses the pass's cached slice.
func (p *Plane) ScrubStep(name string, budget int64) (scrubbed int64, passDone bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.devs[name]
	if d == nil {
		return 0, false, fmt.Errorf("ras: unknown device %s", name)
	}
	if st := d.health.Load().State; st == Offline {
		return 0, false, nil
	}
	if d.ranges == nil {
		d.ranges = rangesFor(d)
		d.ri, d.off = 0, 0
	}
	for scrubbed < budget || scrubbed == 0 {
		if d.ri >= len(d.ranges) {
			// Pass complete: report, then rebuild the range list next
			// step so newly committed media joins the patrol.
			d.passes++
			p.emitLocked(Event{
				Device: d.name, Kind: EventScrubPass,
				Detail: fmt.Sprintf("pass %d, %d bytes lifetime", d.passes, d.scrubbedBytes),
			})
			d.ranges = nil
			d.publishLocked(d.health.Load().State)
			return scrubbed, true, nil
		}
		r := d.ranges[d.ri]
		if d.off < r.Base {
			d.off = r.Base
		}
		if d.off >= r.Base+r.Size {
			d.ri++
			d.off = 0
			continue
		}
		n := uint64(len(d.buf))
		if rem := r.Base + r.Size - d.off; rem < n {
			n = rem
		}
		readErr := d.readStripe(d.off, int(n))
		p.scanStripeLocked(d, d.off, int(n), readErr)
		d.off += n
		d.scrubbedBytes += int64(n)
		scrubbed += int64(n)
	}
	// The health snapshot is republished only at pass boundaries; a
	// mid-pass step stays allocation-free.
	return scrubbed, false, nil
}

// ScrubPass runs one complete patrol pass over name's committed media
// and returns the bytes scrubbed.
func (p *Plane) ScrubPass(name string) (int64, error) {
	var total int64
	for {
		n, done, err := p.ScrubStep(name, 1<<20)
		total += n
		if err != nil || done {
			return total, err
		}
		if n == 0 {
			// Offline device or empty footprint: a zero-byte step that
			// did not complete a pass means patrol is suspended.
			return total, nil
		}
	}
}
