// Package ras is the reliability/availability/serviceability control
// plane for the memory pool: it closes the loop from fault detection to
// recovery. A patrol scrubber (scrub.go) walks each registered device's
// committed media in the background and surfaces latent poison before a
// demand access can consume it; per-device error counters
// (memdev.Stats) feed a health state machine that walks a device
// through Healthy → Degraded → Evacuating → Offline; structured events
// record every detection and transition for operators (fabricctl
// watch-events) and tests.
//
// The package deliberately knows nothing about CXL topology: callers
// register a device with closures describing how to read its media (the
// striped burst path, a tenant window, or the raw device), how to probe
// a single line, and how to consult its poison list. The fabric manager
// and cluster wiring own the recovery actions (evacuation, hot-remove,
// hot-add); ras owns detection, accounting and policy.
package ras

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/telemetry"
	"cxlpmem/internal/units"
)

// State is a device's position in the health state machine.
type State int32

const (
	// Healthy — error counters below every threshold.
	Healthy State = iota
	// Degraded — a threshold tripped; the device still serves traffic
	// but should be drained.
	Degraded
	// Evacuating — the fabric/interleave layer is migrating data off
	// the device while traffic continues.
	Evacuating
	// Offline — drained and removed; no traffic reaches the device.
	Offline
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Evacuating:
		return "evacuating"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// legalTransitions is the state machine's edge set. Evaluate only ever
// takes the Healthy→Degraded edge; the rest are operator/fabric
// actions.
var legalTransitions = map[State][]State{
	Healthy:    {Degraded, Evacuating},
	Degraded:   {Evacuating, Healthy},
	Evacuating: {Offline, Healthy},
	Offline:    {Healthy},
}

// Thresholds are the health state machine's trip points, evaluated
// against the error deltas accumulated since the device last entered
// Healthy. A zero field disables that input.
type Thresholds struct {
	// MaxCorrectable trips on latent errors the patrol scrub caught
	// (poison found before a demand access).
	MaxCorrectable int64
	// MaxUncorrectable trips on errors that reached a consumer: demand
	// poison hits and link errors that exhausted their retries.
	MaxUncorrectable int64
	// MaxLinkRetries trips on CRC retry storms attributed to the
	// device by its owning port.
	MaxLinkRetries int64
	// MaxCommandTimeouts trips on mailbox commands whose deadline
	// expired — an unresponsive command plane usually precedes an
	// unresponsive data plane.
	MaxCommandTimeouts int64
}

// DefaultThresholds: one uncorrectable is already data loss at a
// consumer, so it degrades immediately; a handful of scrub-caught
// latent errors or a burst of link retries indicate dying media or a
// flaky link.
var DefaultThresholds = Thresholds{
	MaxCorrectable:     4,
	MaxUncorrectable:   1,
	MaxLinkRetries:     64,
	MaxCommandTimeouts: 4,
}

// EventKind classifies a RAS event.
type EventKind int

const (
	// EventScrubPoison — patrol scrub localised a latent poisoned line.
	EventScrubPoison EventKind = iota
	// EventScrubPass — a full patrol pass over a device completed.
	EventScrubPass
	// EventStateChange — the device moved in the health state machine.
	EventStateChange
)

func (k EventKind) String() string {
	switch k {
	case EventScrubPoison:
		return "scrub-poison"
	case EventScrubPass:
		return "scrub-pass"
	case EventStateChange:
		return "state-change"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one structured RAS occurrence.
type Event struct {
	Seq    int64
	Device string
	Kind   EventKind
	// DPA is the device-local address for poison events.
	DPA uint64
	// From/To carry the transition for state-change events.
	From, To State
	Detail   string
	// Flits is the flight-recorder dump captured at a Degraded or
	// Evacuating transition — the wire history that preceded the health
	// event (nil when no recorder is attached to the device).
	Flits []telemetry.FlitRecord
}

func (e Event) String() string {
	switch e.Kind {
	case EventScrubPoison:
		return fmt.Sprintf("ras#%d %s: latent poison at dpa %#x", e.Seq, e.Device, e.DPA)
	case EventScrubPass:
		return fmt.Sprintf("ras#%d %s: patrol pass complete (%s)", e.Seq, e.Device, e.Detail)
	case EventStateChange:
		if len(e.Flits) > 0 {
			return fmt.Sprintf("ras#%d %s: %s -> %s (%s) [%d flits captured]", e.Seq, e.Device, e.From, e.To, e.Detail, len(e.Flits))
		}
		return fmt.Sprintf("ras#%d %s: %s -> %s (%s)", e.Seq, e.Device, e.From, e.To, e.Detail)
	default:
		return fmt.Sprintf("ras#%d %s: %s %s", e.Seq, e.Device, e.Kind, e.Detail)
	}
}

// Health is the published snapshot of one device's RAS standing. Like
// link state, it is an immutable value behind an atomic pointer:
// readers never block the scrubber or the state machine.
type Health struct {
	Device string
	State  State
	// Counters are the raw lifetime error counters from memdev.Stats.
	Counters memdev.RASCounters
	// PoisonedLines is how many distinct latent-poisoned lines patrol
	// scrub has localised on this device.
	PoisonedLines int64
	// ScrubbedBytes and Passes describe patrol progress.
	ScrubbedBytes int64
	Passes        int64
}

// DeviceOptions describe how the plane reaches one device's media. All
// hooks are optional; nil fields fall back to the raw memdev interface.
type DeviceOptions struct {
	// Read fetches a stripe [dpa, dpa+len(p)) through whatever path
	// the caller wants patrol traffic to ride (the striped burst path
	// for interleave legs, the tenant window for pool slices). Nil
	// reads the media directly.
	Read func(dpa uint64, p []byte) error
	// Probe reads one line at dpa, for localising a failed stripe.
	// Nil probes via Read.
	Probe func(dpa uint64) error
	// Retries returns the owning port's CRC retry count attributed to
	// this device. Nil uses the media's LinkRetries counter (which the
	// port updates when attached directly).
	Retries func() int64
	// Poisoned reports whether the device's poison list covers dpa
	// (the mailbox's IsPoisoned). Nil means no poison source.
	Poisoned func(dpa uint64) bool
	// Ranges enumerates the committed spans patrol should walk. Nil
	// falls back to the media's RangeLister, then to full capacity.
	Ranges func() []memdev.Range
}

// ScrubConfig tunes the patrol scrubber.
type ScrubConfig struct {
	// Stripe is the bytes fetched per media access (default 4 KiB —
	// one maximal burst, so patrol costs one access per stripe).
	Stripe int
	// Throttle caps patrol bandwidth for the background loop. Zero
	// means unthrottled.
	Throttle units.Bandwidth
}

// DefaultStripe matches the burst path's maximal payload.
const DefaultStripe = 4096

// device is the plane's per-device record.
type device struct {
	name  string
	media memdev.Device
	opts  DeviceOptions

	// dump, when attached, snapshots the owning port's flight recorder;
	// transitions into Degraded/Evacuating capture it into the event.
	dump func() []telemetry.FlitRecord

	health atomic.Pointer[Health]

	// Patrol state, guarded by the plane mutex: the stripe buffer is
	// preallocated so steady-state scrubbing is allocation-free.
	buf    []byte
	ranges []memdev.Range
	ri     int
	off    uint64
	// seen records poisoned lines already counted, so repeat passes
	// over the same latent fault do not inflate Correctable.
	seen map[uint64]struct{}
	// base is the counter snapshot taken when the device last entered
	// Healthy; Evaluate thresholds the delta since then.
	base          memdev.RASCounters
	basePoisoned  int64
	poisonedLines int64
	scrubbedBytes int64
	passes        int64
}

// Plane is the RAS control plane: a registry of devices, their patrol
// scrub state, the health state machine and the event feed.
type Plane struct {
	mu         sync.Mutex
	devs       map[string]*device
	order      []string
	thresholds Thresholds
	cfg        ScrubConfig

	seq    atomic.Int64
	events []Event // bounded ring, oldest dropped

	stop chan struct{}
	wg   sync.WaitGroup
}

// maxEvents bounds the event ring.
const maxEvents = 1024

// NewPlane builds a control plane with the given thresholds and scrub
// configuration (zero values take defaults).
func NewPlane(th Thresholds, cfg ScrubConfig) *Plane {
	if th == (Thresholds{}) {
		th = DefaultThresholds
	}
	if cfg.Stripe <= 0 {
		cfg.Stripe = DefaultStripe
	}
	return &Plane{devs: make(map[string]*device), thresholds: th, cfg: cfg}
}

// Register adds a device to the plane under name. The name keys health
// lookups and events; registering an existing name is an error.
func (p *Plane) Register(name string, media memdev.Device, opts DeviceOptions) error {
	if media == nil {
		return fmt.Errorf("ras: %s: nil media", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.devs[name]; ok {
		return fmt.Errorf("ras: device %s already registered", name)
	}
	d := &device{
		name:  name,
		media: media,
		opts:  opts,
		buf:   make([]byte, p.cfg.Stripe),
		seen:  make(map[uint64]struct{}),
	}
	d.base = d.counters()
	d.publishLocked(Healthy)
	p.devs[name] = d
	p.order = append(p.order, name)
	return nil
}

// Unregister removes a device (hot-remove).
func (p *Plane) Unregister(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.devs[name]; !ok {
		return
	}
	delete(p.devs, name)
	for i, n := range p.order {
		if n == name {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// counters folds the optional port-retry hook into the media counters.
func (d *device) counters() memdev.RASCounters {
	c := d.media.Stats().RAS()
	if d.opts.Retries != nil {
		c.LinkRetries = d.opts.Retries()
	}
	return c
}

// publishLocked stores a fresh immutable health snapshot. Callers hold
// the plane mutex (or are inside Register before the device is
// visible).
func (d *device) publishLocked(st State) {
	d.health.Store(&Health{
		Device:        d.name,
		State:         st,
		Counters:      d.counters(),
		PoisonedLines: d.poisonedLines,
		ScrubbedBytes: d.scrubbedBytes,
		Passes:        d.passes,
	})
}

// Health returns the device's current snapshot, or a zero Health with
// Offline state for unknown names.
func (p *Plane) Health(name string) Health {
	p.mu.Lock()
	d := p.devs[name]
	p.mu.Unlock()
	if d == nil {
		return Health{Device: name, State: Offline}
	}
	return *d.health.Load()
}

// Devices lists registered device names in registration order.
func (p *Plane) Devices() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.order...)
}

// emitLocked appends an event to the bounded ring.
func (p *Plane) emitLocked(e Event) {
	e.Seq = p.seq.Add(1)
	if len(p.events) >= maxEvents {
		copy(p.events, p.events[1:])
		p.events = p.events[:len(p.events)-1]
	}
	p.events = append(p.events, e)
}

// Events drains and returns the pending event feed.
func (p *Plane) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.events
	p.events = nil
	return out
}

// transitionLocked moves d to next if the edge is legal, publishing the
// snapshot and emitting the event.
func (p *Plane) transitionLocked(d *device, next State, detail string) error {
	cur := d.health.Load().State
	if cur == next {
		return nil
	}
	legal := false
	for _, s := range legalTransitions[cur] {
		if s == next {
			legal = true
			break
		}
	}
	if !legal {
		return fmt.Errorf("ras: %s: illegal transition %s -> %s", d.name, cur, next)
	}
	if next == Healthy {
		// Re-baseline so old error history does not immediately
		// re-degrade a repaired or replaced device.
		d.base = d.counters()
		d.basePoisoned = d.poisonedLines
	}
	d.publishLocked(next)
	e := Event{Device: d.name, Kind: EventStateChange, From: cur, To: next, Detail: detail}
	// A device entering Degraded or Evacuating is the moment the wire
	// history matters: snapshot the attached flight recorder so the
	// event carries what preceded the health change.
	if (next == Degraded || next == Evacuating) && d.dump != nil {
		e.Flits = d.dump()
	}
	p.emitLocked(e)
	return nil
}

// AttachFlightRecorder wires a flight-recorder dump hook to a device:
// every transition into Degraded or Evacuating captures dump() into the
// state-change event. Typically dump is the Dump method of the owning
// port's recorder (cxl.RootPort.FlightRecorder).
func (p *Plane) AttachFlightRecorder(name string, dump func() []telemetry.FlitRecord) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.devs[name]
	if d == nil {
		return fmt.Errorf("ras: unknown device %s", name)
	}
	d.dump = dump
	return nil
}

// RegisterMetrics exposes every registered device's health state,
// lifetime error counters, and patrol progress through the registry.
func (p *Plane) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		for _, name := range p.Devices() {
			h := p.Health(name)
			labels := telemetry.Labels("dev", name)
			e.Gauge("ras_health_state", labels, float64(h.State))
			e.Counter("ras_correctable_total", labels, h.Counters.Correctable)
			e.Counter("ras_uncorrectable_total", labels, h.Counters.Uncorrectable)
			e.Counter("ras_link_retries_total", labels, h.Counters.LinkRetries)
			e.Counter("ras_command_timeouts_total", labels, h.Counters.CommandTimeouts)
			e.Gauge("ras_poisoned_lines", labels, float64(h.PoisonedLines))
			e.Counter("ras_scrubbed_bytes_total", labels, h.ScrubbedBytes)
			e.Counter("ras_scrub_passes_total", labels, h.Passes)
		}
	})
}

// Evaluate runs the threshold policy for one device: a Healthy device
// whose error deltas (since it last entered Healthy) exceed any
// threshold becomes Degraded. Returns the resulting state.
func (p *Plane) Evaluate(name string) (State, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.devs[name]
	if d == nil {
		return Offline, fmt.Errorf("ras: unknown device %s", name)
	}
	cur := d.health.Load().State
	if cur != Healthy {
		return cur, nil
	}
	c := d.counters()
	th := p.thresholds
	var reason string
	switch {
	case th.MaxUncorrectable > 0 && c.Uncorrectable-d.base.Uncorrectable >= th.MaxUncorrectable:
		reason = fmt.Sprintf("uncorrectable errors %d >= %d", c.Uncorrectable-d.base.Uncorrectable, th.MaxUncorrectable)
	case th.MaxCorrectable > 0 && c.Correctable-d.base.Correctable >= th.MaxCorrectable:
		reason = fmt.Sprintf("correctable errors %d >= %d", c.Correctable-d.base.Correctable, th.MaxCorrectable)
	case th.MaxLinkRetries > 0 && c.LinkRetries-d.base.LinkRetries >= th.MaxLinkRetries:
		reason = fmt.Sprintf("link retries %d >= %d", c.LinkRetries-d.base.LinkRetries, th.MaxLinkRetries)
	case th.MaxCommandTimeouts > 0 && c.CommandTimeouts-d.base.CommandTimeouts >= th.MaxCommandTimeouts:
		reason = fmt.Sprintf("command timeouts %d >= %d", c.CommandTimeouts-d.base.CommandTimeouts, th.MaxCommandTimeouts)
	default:
		d.publishLocked(Healthy) // refresh counters in the snapshot
		return Healthy, nil
	}
	if err := p.transitionLocked(d, Degraded, reason); err != nil {
		return cur, err
	}
	return Degraded, nil
}

// EvaluateAll runs Evaluate over every device and returns the names now
// Degraded (newly or already).
func (p *Plane) EvaluateAll() []string {
	var out []string
	for _, name := range p.Devices() {
		if st, err := p.Evaluate(name); err == nil && st != Healthy && st != Offline {
			out = append(out, name)
		}
	}
	return out
}

// MarkEvacuating records that recovery has started draining the device.
func (p *Plane) MarkEvacuating(name, detail string) error {
	return p.mark(name, Evacuating, detail)
}

// MarkOffline records that the device has been drained and removed.
func (p *Plane) MarkOffline(name, detail string) error {
	return p.mark(name, Offline, detail)
}

// MarkHealthy returns a device to service (hot-add of a replacement, or
// an operator clearing a false alarm), re-baselining its counters.
func (p *Plane) MarkHealthy(name, detail string) error {
	return p.mark(name, Healthy, detail)
}

func (p *Plane) mark(name string, st State, detail string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.devs[name]
	if d == nil {
		return fmt.Errorf("ras: unknown device %s", name)
	}
	return p.transitionLocked(d, st, detail)
}

// Start launches the background patrol loop: every interval it scrubs
// a throttle-sized step of each device and re-evaluates thresholds.
// Stop waits for the loop to exit.
func (p *Plane) Start(interval time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	step := int64(0)
	if p.cfg.Throttle > 0 {
		step = int64(float64(p.cfg.Throttle) * interval.Seconds())
	}
	p.stop = make(chan struct{})
	stop := p.stop
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, name := range p.Devices() {
					budget := step
					if budget <= 0 {
						budget = int64(p.cfg.Stripe)
					}
					p.ScrubStep(name, budget)
					p.Evaluate(name)
				}
			}
		}
	}()
}

// Stop halts the background patrol loop.
func (p *Plane) Stop() {
	p.mu.Lock()
	stop := p.stop
	p.stop = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		p.wg.Wait()
	}
}
