package ras

import (
	"testing"
	"time"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func testMedia(t *testing.T) memdev.Device {
	t.Helper()
	d, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               "ras-test-dram",
		Rate:               3200,
		Channels:           1,
		CapacityPerChannel: 8 * units.MiB,
		IdleLatency:        units.Nanoseconds(90),
		Efficiency:         0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestZeroFill(t *testing.T) {
	m := testMedia(t)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xAB
	}
	if err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := ZeroFill(m, 1024, 2048); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		want := byte(0xAB)
		if i >= 1024 && i < 1024+2048 {
			want = 0
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestHealthStateMachine(t *testing.T) {
	p := NewPlane(Thresholds{}, ScrubConfig{})
	m := testMedia(t)
	if err := p.Register("dev", m, DeviceOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := p.Health("dev").State; st != Healthy {
		t.Fatalf("fresh device state %s, want healthy", st)
	}
	// Healthy -> Offline is illegal.
	if err := p.MarkOffline("dev", "skip evacuation"); err == nil {
		t.Fatal("healthy -> offline transition allowed")
	}
	// Threshold trip: uncorrectable errors degrade.
	m.Stats().Uncorrectable.Add(DefaultThresholds.MaxUncorrectable)
	st, err := p.Evaluate("dev")
	if err != nil || st != Degraded {
		t.Fatalf("Evaluate = %s, %v; want degraded", st, err)
	}
	if err := p.MarkEvacuating("dev", "draining"); err != nil {
		t.Fatal(err)
	}
	if err := p.MarkOffline("dev", "drained"); err != nil {
		t.Fatal(err)
	}
	// Offline devices are not re-degraded and not scrubbed.
	if n, done, err := p.ScrubStep("dev", 4096); n != 0 || done || err != nil {
		t.Fatalf("offline scrub step = %d, %v, %v", n, done, err)
	}
	// Hot-add: back to healthy re-baselines the counters so the old
	// error history does not immediately re-trip.
	if err := p.MarkHealthy("dev", "replaced"); err != nil {
		t.Fatal(err)
	}
	if st, err := p.Evaluate("dev"); err != nil || st != Healthy {
		t.Fatalf("post-replacement Evaluate = %s, %v; want healthy", st, err)
	}
	evs := p.Events()
	if len(evs) < 4 {
		t.Fatalf("expected >= 4 state-change events, got %d: %v", len(evs), evs)
	}
	for _, e := range evs {
		if e.Kind != EventStateChange {
			t.Fatalf("unexpected event kind %s", e.Kind)
		}
	}
}

func TestPatrolScrubFindsLatentPoison(t *testing.T) {
	p := NewPlane(Thresholds{MaxCorrectable: 3, MaxUncorrectable: 100, MaxLinkRetries: 1 << 30}, ScrubConfig{})
	m := testMedia(t)
	// Commit some media so patrol has a footprint to walk.
	buf := make([]byte, 64*1024)
	if err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	poison := map[uint64]bool{0x1000: true, 0x2040: true, 0x8000: true}
	if err := p.Register("dev", m, DeviceOptions{
		Poisoned: func(dpa uint64) bool { return poison[dpa] },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ScrubPass("dev"); err != nil {
		t.Fatal(err)
	}
	h := p.Health("dev")
	if h.PoisonedLines != 3 {
		t.Fatalf("poisoned lines = %d, want 3", h.PoisonedLines)
	}
	if got := m.Stats().RAS().Correctable; got != 3 {
		t.Fatalf("correctable = %d, want 3", got)
	}
	// A second pass over the same latent faults must not double count.
	if _, err := p.ScrubPass("dev"); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().RAS().Correctable; got != 3 {
		t.Fatalf("correctable after second pass = %d, want 3", got)
	}
	poisonEvents := 0
	for _, e := range p.Events() {
		if e.Kind == EventScrubPoison {
			poisonEvents++
			if !poison[e.DPA] {
				t.Fatalf("poison event at unpoisoned dpa %#x", e.DPA)
			}
		}
	}
	if poisonEvents != 3 {
		t.Fatalf("poison events = %d, want 3", poisonEvents)
	}
	// Density above threshold degrades the device.
	if st, err := p.Evaluate("dev"); err != nil || st != Degraded {
		t.Fatalf("Evaluate = %s, %v; want degraded", st, err)
	}
}

// TestScrubStepAllocs is the satellite alloc guard: a mid-pass patrol
// step on a clean device allocates nothing.
func TestScrubStepAllocs(t *testing.T) {
	p := NewPlane(Thresholds{}, ScrubConfig{Stripe: 4096})
	m := testMedia(t)
	buf := make([]byte, 4<<20)
	if err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("dev", m, DeviceOptions{
		Poisoned: func(uint64) bool { return false },
	}); err != nil {
		t.Fatal(err)
	}
	// Prime the pass so the range walk is cached.
	if _, _, err := p.ScrubStep("dev", 4096); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := p.ScrubStep("dev", 4096); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("patrol scrub steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestBackgroundPatrolLoop(t *testing.T) {
	p := NewPlane(Thresholds{}, ScrubConfig{Stripe: 4096, Throttle: units.MBps(64)})
	m := testMedia(t)
	if err := m.WriteAt(make([]byte, 64*1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("dev", m, DeviceOptions{}); err != nil {
		t.Fatal(err)
	}
	p.Start(time.Millisecond)
	defer p.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Health("dev").Passes > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("background patrol made no complete pass; health %+v", p.Health("dev"))
}

// TestEventAndStateStrings pins the human-readable forms the CLI and
// logs print, and drives the event ring past its cap so overflow drops
// the oldest entry rather than growing without bound.
func TestEventAndStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		Healthy: "healthy", Degraded: "degraded",
		Evacuating: "evacuating", Offline: "offline",
		State(99): "State(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), got, want)
		}
	}
	for k, want := range map[EventKind]string{
		EventScrubPoison: "scrub-poison", EventScrubPass: "scrub-pass",
		EventStateChange: "state-change", EventKind(7): "EventKind(7)",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind.String() = %q, want %q", got, want)
		}
	}
	for _, e := range []Event{
		{Seq: 1, Device: "d", Kind: EventScrubPoison, DPA: 0x40},
		{Seq: 2, Device: "d", Kind: EventScrubPass, Detail: "pass 1"},
		{Seq: 3, Device: "d", Kind: EventStateChange, From: Healthy, To: Degraded, Detail: "why"},
		{Seq: 4, Device: "d", Kind: EventKind(7), Detail: "x"},
	} {
		if e.String() == "" {
			t.Errorf("event %+v has empty String", e)
		}
	}

	p := NewPlane(DefaultThresholds, ScrubConfig{})
	for i := 0; i < maxEvents+8; i++ {
		p.emitLocked(Event{Device: "ring", Kind: EventScrubPass})
	}
	evs := p.Events()
	if len(evs) != maxEvents {
		t.Fatalf("ring drained %d events, want cap %d", len(evs), maxEvents)
	}
	if evs[0].Seq != 9 { // the first 8 were dropped
		t.Errorf("oldest surviving seq = %d, want 9", evs[0].Seq)
	}
	if len(p.Events()) != 0 {
		t.Error("drain did not clear the ring")
	}
}
