package stream

import (
	"encoding/binary"
	"fmt"

	"cxlpmem/internal/pmem"
)

// STREAM-PMem array allocation (paper Listing 2): the three arrays live
// as pmemobj objects inside a pool; a root object records their OIDs
// and length so a reopened pool finds them again.

// Layout is the pool layout name STREAM-PMem uses.
const Layout = "stream-pmem"

// root object layout: [n u64][aOff u64][bOff u64][cOff u64].
const rootSize = 32

// PmemArrays is the persistent STREAM triple.
type PmemArrays struct {
	pool       *pmem.Pool
	n          int
	oa, ob, oc pmem.OID
	a, b, c    []float64
}

// AllocPmemArrays creates the three persistent arrays in pool — the
// POBJ_ALLOC calls of Listing 2's initiate().
func AllocPmemArrays(pool *pmem.Pool, n int) (*PmemArrays, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: pmem array length %d must be positive", n)
	}
	root, err := pool.Root(rootSize)
	if err != nil {
		return nil, err
	}
	if v, err := pool.GetUint64(root, 0); err != nil {
		return nil, err
	} else if v != 0 {
		return nil, fmt.Errorf("stream: pool already holds STREAM arrays (n=%d); use OpenPmemArrays", v)
	}
	p := &PmemArrays{pool: pool, n: n}
	var slices []*[]float64
	var oids []*pmem.OID
	slices = append(slices, &p.a, &p.b, &p.c)
	oids = append(oids, &p.oa, &p.ob, &p.oc)
	for i := range oids {
		oid, s, err := pool.AllocFloat64s(n)
		if err != nil {
			return nil, err
		}
		*oids[i] = oid
		*slices[i] = s
	}
	// Record the layout transactionally in the root: either all three
	// arrays are discoverable after a crash, or none are.
	err = pool.Update(root, 0, rootSize, func(b []byte) error {
		binary.LittleEndian.PutUint64(b[0:], uint64(n))
		binary.LittleEndian.PutUint64(b[8:], p.oa.Off)
		binary.LittleEndian.PutUint64(b[16:], p.ob.Off)
		binary.LittleEndian.PutUint64(b[24:], p.oc.Off)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// OpenPmemArrays rediscovers arrays previously allocated in pool.
func OpenPmemArrays(pool *pmem.Pool) (*PmemArrays, error) {
	root, err := pool.Root(rootSize)
	if err != nil {
		return nil, err
	}
	b, err := pool.View(root, rootSize)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint64(b[0:]))
	if n <= 0 {
		return nil, fmt.Errorf("stream: pool holds no STREAM arrays")
	}
	p := &PmemArrays{
		pool: pool,
		n:    n,
		oa:   pmem.OID{PoolID: pool.PoolID(), Off: binary.LittleEndian.Uint64(b[8:])},
		ob:   pmem.OID{PoolID: pool.PoolID(), Off: binary.LittleEndian.Uint64(b[16:])},
		oc:   pmem.OID{PoolID: pool.PoolID(), Off: binary.LittleEndian.Uint64(b[24:])},
	}
	if p.a, err = pool.Float64s(p.oa, n); err != nil {
		return nil, err
	}
	if p.b, err = pool.Float64s(p.ob, n); err != nil {
		return nil, err
	}
	if p.c, err = pool.Float64s(p.oc, n); err != nil {
		return nil, err
	}
	return p, nil
}

// A returns the persistent a[] view.
func (p *PmemArrays) A() []float64 { return p.a }

// B returns the persistent b[] view.
func (p *PmemArrays) B() []float64 { return p.b }

// C returns the persistent c[] view.
func (p *PmemArrays) C() []float64 { return p.c }

// N returns the array length.
func (p *PmemArrays) N() int { return p.n }

// OIDs exposes the three object identities.
func (p *PmemArrays) OIDs() (a, b, c pmem.OID) { return p.oa, p.ob, p.oc }

// Persist flushes all three arrays to the pool's media and fences.
func (p *PmemArrays) Persist() error {
	for _, oid := range []pmem.OID{p.oa, p.ob, p.oc} {
		if err := p.pool.PersistFloat64s(oid, 0, p.n); err != nil {
			return err
		}
	}
	p.pool.Drain()
	return nil
}
