package stream

import (
	"math"
	"strings"
	"testing"

	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/pmem"
	"cxlpmem/internal/topology"
)

func TestOpBasics(t *testing.T) {
	if Copy.String() != "Copy" || Triad.String() != "Triad" || Op(9).String() == "" {
		t.Error("op strings")
	}
	if Copy.BytesPerElement() != 16 || Add.BytesPerElement() != 24 || Op(9).BytesPerElement() != 0 {
		t.Error("bytes per element")
	}
	if Copy.Mix().ReadFrac != 0.5 {
		t.Error("copy mix")
	}
	if m := Add.Mix(); m.ReadFrac < 0.66 || m.ReadFrac > 0.67 {
		t.Error("add mix")
	}
	if len(Ops) != 4 {
		t.Error("Ops order")
	}
}

func TestKernelsComputeCorrectValues(t *testing.T) {
	arr, err := NewVolatileArrays(1000)
	if err != nil {
		t.Fatal(err)
	}
	Init(arr)
	// After Init: a=2, b=2, c=0.
	if arr.A()[0] != 2 || arr.B()[500] != 2 || arr.C()[999] != 0 {
		t.Fatal("init values wrong")
	}
	if err := Execute(Copy, arr, DefaultScalar, 4); err != nil {
		t.Fatal(err)
	}
	if arr.C()[123] != 2 {
		t.Errorf("copy: c = %v, want 2", arr.C()[123])
	}
	if err := Execute(Scale, arr, DefaultScalar, 4); err != nil {
		t.Fatal(err)
	}
	if arr.B()[321] != 6 {
		t.Errorf("scale: b = %v, want 6", arr.B()[321])
	}
	if err := Execute(Add, arr, DefaultScalar, 4); err != nil {
		t.Fatal(err)
	}
	if arr.C()[77] != 8 {
		t.Errorf("add: c = %v, want 8", arr.C()[77])
	}
	if err := Execute(Triad, arr, DefaultScalar, 4); err != nil {
		t.Fatal(err)
	}
	if arr.A()[42] != 30 {
		t.Errorf("triad: a = %v, want 30", arr.A()[42])
	}
}

func TestValidateAfterNIterations(t *testing.T) {
	arr, err := NewVolatileArrays(4096)
	if err != nil {
		t.Fatal(err)
	}
	Init(arr)
	const ntimes = 10
	for k := 0; k < ntimes; k++ {
		for _, op := range Ops {
			if err := Execute(op, arr, DefaultScalar, 8); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := Validate(arr, ntimes, DefaultScalar); err != nil {
		t.Errorf("validation failed: %v", err)
	}
	// A corrupted element fails validation.
	arr.A()[100] = math.Pi * 1e6
	if err := Validate(arr, ntimes, DefaultScalar); err == nil {
		t.Error("corruption passed validation")
	}
}

func TestExecuteValidation(t *testing.T) {
	arr, _ := NewVolatileArrays(16)
	if err := Execute(Op(99), arr, 3, 1); err == nil {
		t.Error("unknown op accepted")
	}
	bad := &VolatileArrays{a: make([]float64, 4), b: make([]float64, 5), c: make([]float64, 4)}
	if err := Execute(Copy, bad, 3, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewVolatileArrays(0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestSingleWorkerAndManyWorkersAgree(t *testing.T) {
	run := func(workers int) []float64 {
		arr, _ := NewVolatileArrays(10000)
		Init(arr)
		for k := 0; k < 3; k++ {
			for _, op := range Ops {
				if err := Execute(op, arr, DefaultScalar, workers); err != nil {
					t.Fatal(err)
				}
			}
		}
		return arr.A()
	}
	a1, a8 := run(1), run(8)
	for i := range a1 {
		if a1[i] != a8[i] {
			t.Fatalf("worker-count divergence at %d: %v vs %v", i, a1[i], a8[i])
		}
	}
}

func testPool(t *testing.T, size int) *pmem.Pool {
	t.Helper()
	r := newTestRegion(size)
	p, err := pmem.Create(r, Layout)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPmemArraysAllocAndRun(t *testing.T) {
	pool := testPool(t, 8<<20)
	arr, err := AllocPmemArrays(pool, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if arr.N() != 10000 {
		t.Error("N mismatch")
	}
	Init(arr)
	const ntimes = 5
	for k := 0; k < ntimes; k++ {
		for _, op := range Ops {
			if err := Execute(op, arr, DefaultScalar, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := Validate(arr, ntimes, DefaultScalar); err != nil {
		t.Errorf("STREAM-PMem validation failed: %v", err)
	}
	if err := arr.Persist(); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Persists.Load() == 0 {
		t.Error("persist did not reach the pool")
	}
}

func TestPmemArraysSurviveReopen(t *testing.T) {
	r := newTestRegion(8 << 20)
	pool, err := pmem.Create(r, Layout)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := AllocPmemArrays(pool, 5000)
	if err != nil {
		t.Fatal(err)
	}
	Init(arr)
	if err := Execute(Copy, arr, DefaultScalar, 2); err != nil {
		t.Fatal(err)
	}
	if err := arr.Persist(); err != nil {
		t.Fatal(err)
	}
	pool.SimulateCrash()

	pool2, err := pmem.Open(r, Layout)
	if err != nil {
		t.Fatal(err)
	}
	arr2, err := OpenPmemArrays(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if arr2.N() != 5000 {
		t.Fatalf("N after reopen = %d", arr2.N())
	}
	// a was doubled by Init (2.0), c holds the Copy of a.
	if arr2.A()[4999] != 2.0 || arr2.C()[0] != 2.0 || arr2.B()[100] != 2.0 {
		t.Errorf("array contents lost: a=%v b=%v c=%v", arr2.A()[4999], arr2.B()[100], arr2.C()[0])
	}
	oa, ob, oc := arr2.OIDs()
	if oa.IsNull() || ob.IsNull() || oc.IsNull() {
		t.Error("OIDs null after reopen")
	}
}

func TestPmemArraysGuards(t *testing.T) {
	pool := testPool(t, 8<<20)
	if _, err := AllocPmemArrays(pool, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := OpenPmemArrays(pool); err == nil {
		t.Error("open before alloc accepted")
	}
	if _, err := AllocPmemArrays(pool, 100); err != nil {
		t.Fatal(err)
	}
	// Double alloc refused: the pool already carries arrays.
	if _, err := AllocPmemArrays(pool, 100); err == nil {
		t.Error("double alloc accepted")
	}
	// Pool too small for the arrays.
	small := testPool(t, 1<<20)
	if _, err := AllocPmemArrays(small, 1<<20); err == nil {
		t.Error("oversized arrays accepted")
	}
}

func benchFor(t *testing.T, node topology.NodeID, mode perf.AccessMode, threads int) *Bench {
	t.Helper()
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	cores, err := numa.PlaceOnSocket(m, 0, threads)
	if err != nil {
		t.Fatal(err)
	}
	return &Bench{Engine: perf.New(m), Cores: cores, Node: node, Mode: mode}
}

func TestBenchModelOnly(t *testing.T) {
	b := benchFor(t, 0, perf.AppDirect, 10)
	results, err := b.Run(nil, Config{ModelOnly: true, N: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		// The paper's headline: local DDR5 App-Direct saturates
		// 20-22 GB/s across all four operations.
		got := r.BestRate.GBps()
		if got < 19.5 || got > 22.5 {
			t.Errorf("%s best rate = %.2f GB/s, want ~20-22", r.Op, got)
		}
		if r.MinTime > r.AvgTime || r.AvgTime > r.MaxTime {
			t.Errorf("%s time ordering broken: %v %v %v", r.Op, r.MinTime, r.AvgTime, r.MaxTime)
		}
		if r.Bytes <= 0 {
			t.Error("bytes not recorded")
		}
	}
	// Triad reports slightly above Copy, the usual STREAM shape.
	if results[3].BestRate <= results[0].BestRate {
		t.Error("Triad should edge out Copy")
	}
}

func TestBenchRealDataOnPmem(t *testing.T) {
	b := benchFor(t, 2, perf.AppDirect, 4)
	pool := testPool(t, 8<<20)
	arr, err := AllocPmemArrays(pool, 20000)
	if err != nil {
		t.Fatal(err)
	}
	results, err := b.Run(arr, Config{NTimes: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatal("missing results")
	}
	// The real pass persisted through the pool.
	if pool.Stats().Persists.Load() == 0 {
		t.Error("no persists recorded")
	}
}

func TestBenchDeterminism(t *testing.T) {
	b := benchFor(t, 2, perf.MemoryMode, 5)
	r1, err := b.Run(nil, Config{ModelOnly: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(nil, Config{ModelOnly: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("non-deterministic result for %s", r1[i].Op)
		}
	}
}

func TestBenchValidation(t *testing.T) {
	b := benchFor(t, 0, perf.MemoryMode, 2)
	b2 := *b
	b2.Engine = nil
	if _, err := b2.Run(nil, Config{ModelOnly: true}); err == nil {
		t.Error("nil engine accepted")
	}
	b3 := *b
	b3.Cores = nil
	if _, err := b3.Run(nil, Config{ModelOnly: true}); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := b.Run(nil, Config{}); err == nil {
		t.Error("real run without arrays accepted")
	}
}

func TestRateAndHeader(t *testing.T) {
	b := benchFor(t, 0, perf.MemoryMode, 10)
	rate, err := b.Rate(Triad)
	if err != nil {
		t.Fatal(err)
	}
	if rate.GBps() < 20 {
		t.Errorf("rate = %v", rate)
	}
	if !strings.Contains(Header(), "BestMB/s") {
		t.Error("header")
	}
	r, _ := b.Run(nil, Config{ModelOnly: true})
	if s := r[0].String(); !strings.Contains(s, "Copy") {
		t.Errorf("result string = %q", s)
	}
}

// TestStripedStreamScaling wires STREAM to the interleaved Setup #1
// variants: the same Bench against an N-way-striped CXL node reports
// the scaled rate for every kernel, giving the EXPERIMENTS.md 1/2/4/8
// curve in one call.
func TestStripedStreamScaling(t *testing.T) {
	triad := func(ways int) float64 {
		m, _, err := topology.Setup1(topology.Setup1Options{InterleaveWays: ways})
		if err != nil {
			t.Fatal(err)
		}
		if n2, err := m.Node(2); err == nil && n2.Stripe != nil {
			t.Cleanup(n2.Stripe.Close)
		}
		cores, err := numa.PlaceOnSocket(m, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		b := &Bench{Engine: perf.New(m), Cores: cores, Node: 2, Mode: perf.AppDirect}
		r, err := b.Rate(Triad)
		if err != nil {
			t.Fatal(err)
		}
		return r.GBps()
	}
	w1, w2, w4 := triad(1), triad(2), triad(4)
	if ratio := w2 / w1; ratio < 1.95 || ratio > 2.05 {
		t.Errorf("2-way STREAM Triad ratio = %.2f, want ~2.0", ratio)
	}
	if ratio := w4 / w1; ratio < 2.5 {
		t.Errorf("4-way STREAM Triad ratio = %.2f, want >= 2.5", ratio)
	}
	// The full Bench.Run report works over a striped node too (model
	// plus real data movement and validation).
	m, _, err := topology.Setup1(topology.Setup1Options{InterleaveWays: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n2, err := m.Node(2); err == nil && n2.Stripe != nil {
		t.Cleanup(n2.Stripe.Close)
	}
	cores, err := numa.PlaceOnSocket(m, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := &Bench{Engine: perf.New(m), Cores: cores, Node: 2, Mode: perf.AppDirect}
	arr, err := NewVolatileArrays(20000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(arr, Config{NTimes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Ops) {
		t.Fatalf("striped bench returned %d results", len(res))
	}
	for _, r := range res {
		if r.BestRate <= 0 {
			t.Errorf("%s: non-positive striped rate", r.Op)
		}
	}
}
