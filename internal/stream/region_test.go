package stream

import (
	"errors"
	"sync"
)

// testRegion is a minimal in-memory pmem.Region for this package's
// tests (the production Region is a pmemfs.File wired by internal/core).
type testRegion struct {
	mu   sync.Mutex
	data []byte
}

func newTestRegion(size int) *testRegion {
	return &testRegion{data: make([]byte, size)}
}

func (r *testRegion) ReadAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("testRegion: out of range")
	}
	copy(p, r.data[off:])
	return nil
}

func (r *testRegion) WriteAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("testRegion: out of range")
	}
	copy(r.data[off:], p)
	return nil
}

func (r *testRegion) Size() int64      { return int64(len(r.data)) }
func (r *testRegion) Persistent() bool { return true }
