// Package stream implements the paper's measurement instruments: the
// STREAM benchmark (McCalpin) with its Copy, Scale, Add and Triad
// kernels, and STREAM-PMem, the PMDK variant whose three working arrays
// are persistent objects allocated from a pmemobj pool (paper §3.1,
// Listings 1-2).
//
// Data movement is real — the kernels run over actual float64 slices,
// and for STREAM-PMem those slices map persistent pool memory, so the
// full validation pass and the persistence machinery are exercised. Time
// is modelled: the analytic engine in internal/perf supplies the
// sustained rate for each (cores, node, kernel, mode) combination and
// the runner derives STREAM's best/avg/min/max statistics from it with a
// deterministic per-iteration spread.
package stream

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"cxlpmem/internal/perf"
	"cxlpmem/internal/units"
)

// Op is one STREAM kernel.
type Op int

const (
	// Copy: c[i] = a[i].
	Copy Op = iota
	// Scale: b[i] = scalar*c[i].
	Scale
	// Add: c[i] = a[i] + b[i].
	Add
	// Triad: a[i] = b[i] + scalar*c[i].
	Triad
)

// Ops lists the kernels in STREAM's execution order.
var Ops = []Op{Copy, Scale, Add, Triad}

func (o Op) String() string {
	switch o {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// BytesPerElement is the traffic STREAM accounts per element: two
// words for Copy/Scale, three for Add/Triad.
func (o Op) BytesPerElement() int {
	switch o {
	case Copy, Scale:
		return 16
	case Add, Triad:
		return 24
	default:
		return 0
	}
}

// Mix maps the kernel onto the performance engine's traffic model:
// Copy and Scale are one read + one write per element, Add and Triad
// two reads + one write. The small factors reflect the usual STREAM
// pattern of Add/Triad reporting slightly higher rates than Copy/Scale
// (write-combining amortises better over the three-operand kernels).
func (o Op) Mix() perf.Mix {
	switch o {
	case Copy:
		return perf.Mix{ReadFrac: 0.5, Factor: 1.00}
	case Scale:
		return perf.Mix{ReadFrac: 0.5, Factor: 0.99}
	case Add:
		return perf.Mix{ReadFrac: 2.0 / 3.0, Factor: 1.02}
	case Triad:
		return perf.Mix{ReadFrac: 2.0 / 3.0, Factor: 1.03}
	default:
		return perf.Mix{ReadFrac: 0.5}
	}
}

// DefaultScalar is STREAM's scalar constant.
const DefaultScalar = 3.0

// DefaultN is the paper's array length: "STREAM executions with 100M
// array elements" (§3.2).
const DefaultN = 100_000_000

// Arrays is the triple STREAM operates on. Implementations are the
// volatile static arrays of Listing 1 and the pmemobj-backed arrays of
// Listing 2.
type Arrays interface {
	A() []float64
	B() []float64
	C() []float64
	// Persist flushes the arrays to their durability domain; a no-op
	// for volatile arrays.
	Persist() error
}

// VolatileArrays is the original STREAM allocation (Listing 1's static
// double arrays).
type VolatileArrays struct {
	a, b, c []float64
}

// NewVolatileArrays allocates the triple.
func NewVolatileArrays(n int) (*VolatileArrays, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: array length %d must be positive", n)
	}
	return &VolatileArrays{
		a: make([]float64, n),
		b: make([]float64, n),
		c: make([]float64, n),
	}, nil
}

// A returns the first array.
func (v *VolatileArrays) A() []float64 { return v.a }

// B returns the second array.
func (v *VolatileArrays) B() []float64 { return v.b }

// C returns the third array.
func (v *VolatileArrays) C() []float64 { return v.c }

// Persist is a no-op: DRAM arrays have no durability domain.
func (v *VolatileArrays) Persist() error { return nil }

// Init fills the arrays with STREAM's canonical initial values
// (a=1, b=2, c=0, then a *= 2 as the original main() does before the
// timed loop).
func Init(arr Arrays) {
	a, b, c := arr.A(), arr.B(), arr.C()
	for i := range a {
		a[i] = 1.0
		b[i] = 2.0
		c[i] = 0.0
	}
	for i := range a {
		a[i] = 2.0 * a[i]
	}
}

// workerCount bounds real parallelism for the data pass.
func workerCount(requested int) int {
	max := runtime.GOMAXPROCS(0)
	if requested <= 0 || requested > max {
		return max
	}
	return requested
}

// parallelFor splits [0, n) into contiguous chunks, one per worker —
// OpenMP static scheduling, the paradigm STREAM uses (§3.1).
func parallelFor(n, workers int, body func(lo, hi int)) {
	if workers <= 1 || n < 1024 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Execute runs one kernel over the arrays with the given scalar,
// really moving the data.
func Execute(op Op, arr Arrays, scalar float64, workers int) error {
	a, b, c := arr.A(), arr.B(), arr.C()
	n := len(a)
	if len(b) != n || len(c) != n {
		return fmt.Errorf("stream: array lengths differ: %d/%d/%d", len(a), len(b), len(c))
	}
	w := workerCount(workers)
	switch op {
	case Copy:
		parallelFor(n, w, func(lo, hi int) {
			copy(c[lo:hi], a[lo:hi])
		})
	case Scale:
		parallelFor(n, w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				b[i] = scalar * c[i]
			}
		})
	case Add:
		parallelFor(n, w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = a[i] + b[i]
			}
		})
	case Triad:
		parallelFor(n, w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = b[i] + scalar*c[i]
			}
		})
	default:
		return fmt.Errorf("stream: unknown op %d", op)
	}
	return nil
}

// Validate reproduces STREAM's checkSTREAMresults: it replays the
// arithmetic scalar-wise for ntimes iterations and compares against the
// arrays within the double-precision epsilon.
func Validate(arr Arrays, ntimes int, scalar float64) error {
	aj, bj, cj := 1.0, 2.0, 0.0
	aj = 2.0 * aj
	for k := 0; k < ntimes; k++ {
		cj = aj
		bj = scalar * cj
		cj = aj + bj
		aj = bj + scalar*cj
	}
	const epsilon = 1e-13
	a, b, c := arr.A(), arr.B(), arr.C()
	var aErr, bErr, cErr float64
	for i := range a {
		aErr += math.Abs(a[i] - aj)
		bErr += math.Abs(b[i] - bj)
		cErr += math.Abs(c[i] - cj)
	}
	n := float64(len(a))
	aErr, bErr, cErr = aErr/n, bErr/n, cErr/n
	if math.Abs(aErr/aj) > epsilon {
		return fmt.Errorf("stream: validation failed on a[]: avg error %g (expected %g)", aErr, aj)
	}
	if math.Abs(bErr/bj) > epsilon {
		return fmt.Errorf("stream: validation failed on b[]: avg error %g (expected %g)", bErr, bj)
	}
	if math.Abs(cErr/cj) > epsilon {
		return fmt.Errorf("stream: validation failed on c[]: avg error %g (expected %g)", cErr, cj)
	}
	return nil
}

// Result is one kernel's report line, mirroring STREAM's output
// ("Function  Best Rate MB/s  Avg time  Min time  Max time").
type Result struct {
	Op       Op
	BestRate units.Bandwidth
	AvgTime  time.Duration
	MinTime  time.Duration
	MaxTime  time.Duration
	// Bytes moved per iteration.
	Bytes units.Size
}

func (r Result) String() string {
	return fmt.Sprintf("%-6s %12.1f %11.6f %11.6f %11.6f",
		r.Op, r.BestRate.MBps(), r.AvgTime.Seconds(), r.MinTime.Seconds(), r.MaxTime.Seconds())
}

// timesFromRate derives ntimes iteration durations from a modelled
// sustained rate with a deterministic spread: the best iteration runs
// at the modelled rate, the others a few permille slower (page-table
// warmth, scheduling), seeded for reproducibility.
func timesFromRate(bytes units.Size, rate units.Bandwidth, ntimes int, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, ntimes)
	base := units.TimeFor(bytes, rate)
	for i := range out {
		slow := 1.0 + rng.Float64()*0.015
		if i == ntimes/2 {
			slow = 1.0 // the best iteration
		}
		out[i] = time.Duration(float64(base) * slow)
	}
	return out
}

// summarize folds iteration times into a Result.
func summarize(op Op, bytes units.Size, times []time.Duration) Result {
	min, max := times[0], times[0]
	var sum time.Duration
	for _, t := range times {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
		sum += t
	}
	return Result{
		Op:       op,
		BestRate: units.RateOf(bytes, min),
		AvgTime:  sum / time.Duration(len(times)),
		MinTime:  min,
		MaxTime:  max,
		Bytes:    bytes,
	}
}
