package stream

import (
	"fmt"

	"cxlpmem/internal/perf"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// Bench runs the STREAM methodology of §3.2 against one machine
// configuration: a set of compute cores (placed by internal/numa), a
// target memory node, and an access mode (Memory Mode or App-Direct).
type Bench struct {
	// Engine supplies modelled rates.
	Engine *perf.Engine
	// Cores the OpenMP threads are pinned to.
	Cores []topology.Core
	// Node is the memory target (the paper's pmem#/numa# annotation).
	Node topology.NodeID
	// Mode selects Memory Mode (numa#) or App-Direct (pmem#).
	Mode perf.AccessMode
}

// Config controls one STREAM run.
type Config struct {
	// N is the per-array element count (DefaultN if zero).
	N int
	// NTimes is the iteration count (STREAM default 10).
	NTimes int
	// Scalar for Scale/Triad (DefaultScalar if zero).
	Scalar float64
	// Workers bounds the real goroutines used for the data pass
	// (0 = GOMAXPROCS).
	Workers int
	// ModelOnly skips the real data movement: the figures' wide
	// parameter sweeps only need the modelled times.
	ModelOnly bool
	// Seed makes the iteration-time spread reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = DefaultN
	}
	if c.NTimes == 0 {
		c.NTimes = 10
	}
	if c.Scalar == 0 {
		c.Scalar = DefaultScalar
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Run executes the four kernels ntimes each over arr and reports one
// Result per kernel in STREAM order. When cfg.ModelOnly is false the
// data movement is real and the arrays are validated afterwards.
func (b *Bench) Run(arr Arrays, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	if b.Engine == nil {
		return nil, fmt.Errorf("stream: bench has no engine")
	}
	if len(b.Cores) == 0 {
		return nil, fmt.Errorf("stream: bench has no cores")
	}
	n := cfg.N
	if !cfg.ModelOnly {
		if arr == nil {
			return nil, fmt.Errorf("stream: real run needs arrays")
		}
		n = len(arr.A())
		Init(arr)
	}

	results := make([]Result, 0, len(Ops))
	for _, op := range Ops {
		r, err := b.Engine.StreamBandwidth(b.Cores, b.Node, op.Mix(), b.Mode)
		if err != nil {
			return nil, err
		}
		bytes := units.Size(int64(op.BytesPerElement()) * int64(n))
		times := timesFromRate(bytes, r.Total, cfg.NTimes, cfg.Seed+int64(op))
		results = append(results, summarize(op, bytes, times))
	}

	if !cfg.ModelOnly {
		for k := 0; k < cfg.NTimes; k++ {
			for _, op := range Ops {
				if err := Execute(op, arr, cfg.Scalar, cfg.Workers); err != nil {
					return nil, err
				}
			}
		}
		if err := Validate(arr, cfg.NTimes, cfg.Scalar); err != nil {
			return nil, err
		}
		if err := arr.Persist(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Rate returns just the modelled sustained bandwidth for one kernel —
// the quantity the paper's figures plot.
func (b *Bench) Rate(op Op) (units.Bandwidth, error) {
	r, err := b.Engine.StreamBandwidth(b.Cores, b.Node, op.Mix(), b.Mode)
	if err != nil {
		return 0, err
	}
	return r.Total, nil
}

// Header returns STREAM's report header line.
func Header() string {
	return fmt.Sprintf("%-6s %12s %11s %11s %11s", "Func", "BestMB/s", "AvgTime", "MinTime", "MaxTime")
}
