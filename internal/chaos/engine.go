package chaos

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cxlpmem/internal/cxl"
)

// Per-action default durations, used when a rule leaves Delay zero.
const (
	defaultDelay = 200 * time.Microsecond
	defaultFlap  = time.Millisecond
	defaultStall = time.Millisecond
)

// Synthetic kind bytes for non-flit fire records.
const (
	kindMailbox = 0xFE
	kindMedia   = 0xFD
)

// maxSchedule bounds the fire log; fires beyond it are counted but not
// recorded.
const maxSchedule = 1 << 16

// Fire is one entry of the fault schedule: which rule fired, on which
// match ordinal, against which event.
type Fire struct {
	Seq    uint64
	Rule   int
	Site   Site
	Action Action
	// Match is the rule's 1-based match ordinal that fired.
	Match uint64
	// Kind is the wire flit kind byte (kindMailbox/kindMedia for
	// command/media fires).
	Kind uint8
	// Addr is the event address (flit HPA, mailbox opcode, poison DPA).
	Addr uint64
}

func (f Fire) String() string {
	return fmt.Sprintf("#%d r%d %s/%s m%d k%02x @%#x", f.Seq, f.Rule, f.Site, f.Action, f.Match, f.Kind, f.Addr)
}

// ruleState is one rule's live counters plus the reorder hold buffer.
type ruleState struct {
	idx int
	r   Rule

	matches   atomic.Uint64
	fired     atomic.Uint64
	exhausted atomic.Bool

	mu      sync.Mutex
	held    cxl.Flit
	heldSet bool

	// atts lists the attachments carrying this rule, for live-rule
	// accounting (guarded by Engine.mu).
	atts []*attachment
}

// attachment tracks one armed hook: how many of its rules can still
// fire, and how to take the hook back out when none can.
type attachment struct {
	live      atomic.Int32
	uninstall func()
}

// mediaAttach is one media site: its poison injector and rules, fired
// by Pulse.
type mediaAttach struct {
	name   string
	poison func(dpa uint64) error
	rules  []*ruleState
}

// Engine compiles a Plan and arms it against live components. Attach
// everything before starting traffic; hooks themselves are safe to fire
// concurrently from any number of transactions.
type Engine struct {
	plan  Plan
	rules []*ruleState

	mu    sync.Mutex
	fires []Fire
	nfire uint64
	atts  []*attachment
	media []*mediaAttach
}

// NewEngine validates the plan and compiles its rule state.
func NewEngine(plan Plan) (*Engine, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{plan: Plan{Seed: plan.Seed, Rules: append([]Rule(nil), plan.Rules...)}}
	for i := range e.plan.Rules {
		e.rules = append(e.rules, &ruleState{idx: i, r: e.plan.Rules[i]})
	}
	return e, nil
}

// Plan returns the compiled plan.
func (e *Engine) Plan() Plan {
	return Plan{Seed: e.plan.Seed, Rules: append([]Rule(nil), e.plan.Rules...)}
}

// decide consumes one match ordinal for the rule and reports whether it
// fires — a pure function of (seed, rule index, ordinal), so the same
// event stream replays the same schedule.
func (e *Engine) decide(rs *ruleState) (uint64, bool) {
	m := rs.matches.Add(1)
	t := &rs.r.Trigger
	var fire bool
	switch {
	case t.Nth > 0 && t.Every > 0:
		fire = m >= t.Nth && (m-t.Nth)%t.Every == 0
	case t.Nth > 0:
		fire = m == t.Nth
	case t.Every > 0:
		fire = m%t.Every == 0
	default:
		fire = unit(e.plan.Seed, uint64(rs.idx), m) < t.Prob
	}
	oneShot := t.Nth > 0 && t.Every == 0
	if !fire {
		if oneShot && m >= t.Nth {
			e.exhaust(rs)
		}
		return m, false
	}
	if t.Count > 0 {
		n := rs.fired.Add(1)
		if n > t.Count {
			e.exhaust(rs)
			return m, false
		}
		if n == t.Count {
			e.exhaust(rs)
		}
	} else if oneShot {
		e.exhaust(rs)
	}
	return m, true
}

// exhaust retires a rule; an attachment whose last live rule retires
// uninstalls its hook, restoring the exact pre-chaos data path.
func (e *Engine) exhaust(rs *ruleState) {
	if !rs.exhausted.CompareAndSwap(false, true) {
		return
	}
	e.mu.Lock()
	atts := append([]*attachment(nil), rs.atts...)
	e.mu.Unlock()
	for _, at := range atts {
		if at.live.Add(-1) == 0 {
			at.uninstall()
		}
	}
}

// record appends one fire to the schedule log.
func (e *Engine) record(rs *ruleState, m uint64, kind uint8, addr uint64) {
	e.mu.Lock()
	seq := e.nfire
	e.nfire++
	if len(e.fires) < maxSchedule {
		e.fires = append(e.fires, Fire{Seq: seq, Rule: rs.idx, Site: rs.r.Site, Action: rs.r.Action, Match: m, Kind: kind, Addr: addr})
	}
	e.mu.Unlock()
}

// Schedule returns a copy of the fire log so far.
func (e *Engine) Schedule() []Fire {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Fire(nil), e.fires...)
}

// ScheduleString renders the fire log one fire per line — the replay
// determinism witness (two runs with the same seed and event stream
// produce byte-identical strings).
func (e *Engine) ScheduleString() string {
	fires := e.Schedule()
	var b strings.Builder
	for _, f := range fires {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fires returns the total number of fires (recorded or not).
func (e *Engine) Fires() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nfire
}

// rulesFor selects the live rules for an attachment and registers it
// for live-rule accounting. Returns nil when nothing can fire there.
func (e *Engine) rulesFor(target string, uninstall func(), sites ...Site) ([]*ruleState, *attachment) {
	var rules []*ruleState
	for _, rs := range e.rules {
		siteOK := false
		for _, s := range sites {
			if rs.r.Site == s {
				siteOK = true
				break
			}
		}
		if !siteOK || (rs.r.Target != "" && rs.r.Target != target) {
			continue
		}
		rules = append(rules, rs)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	at := &attachment{uninstall: uninstall}
	live := int32(0)
	e.mu.Lock()
	for _, rs := range rules {
		if !rs.exhausted.Load() {
			rs.atts = append(rs.atts, at)
			live++
		}
	}
	e.mu.Unlock()
	if live == 0 {
		return nil, nil
	}
	at.live.Store(live)
	e.mu.Lock()
	e.atts = append(e.atts, at)
	e.mu.Unlock()
	return rules, at
}

// AttachPort arms the plan's port and link rules against a root port
// (its SetFault slot — the engine supersedes ad-hoc fault hooks there).
func (e *Engine) AttachPort(rp *cxl.RootPort) {
	rules, _ := e.rulesFor(rp.Name(), func() { rp.SetFault(nil) }, SitePort, SiteLink)
	if rules == nil {
		return
	}
	rp.SetFault(e.portHook(rp, rules))
}

// portHook builds the per-flit hook for one port.
func (e *Engine) portHook(rp *cxl.RootPort, rules []*ruleState) func(cxl.Flit) cxl.Flit {
	return func(f cxl.Flit) cxl.Flit {
		for _, rs := range rules {
			if rs.exhausted.Load() {
				continue
			}
			t := &rs.r.Trigger
			if t.Kind != 0 && uint8(t.Kind-1) != f.PeekKind() {
				continue
			}
			if t.AddrHi > 0 {
				if a := f.PeekAddr(); a < t.AddrLo || a >= t.AddrHi {
					continue
				}
			}
			m, fire := e.decide(rs)
			if !fire {
				continue
			}
			e.record(rs, m, f.PeekKind(), f.PeekAddr())
			switch rs.r.Action {
			case ActCorrupt:
				f.FlipBit(uint(mix(e.plan.Seed ^ (uint64(rs.idx)<<32 + m))))
			case ActDrop:
				f.Erase()
			case ActDelay:
				time.Sleep(delayOr(rs.r.Delay, defaultDelay))
			case ActReorder:
				rs.mu.Lock()
				if rs.heldSet {
					f, rs.held = rs.held, f
				} else {
					rs.held, rs.heldSet = f, true
				}
				rs.mu.Unlock()
			case ActFlap:
				if rp.StartRetrain() == nil {
					time.AfterFunc(delayOr(rs.r.Delay, defaultFlap), func() { rp.CompleteRetrain(true) })
				}
			case ActRemove:
				rp.Detach()
			}
		}
		return f
	}
}

// AttachSwitch arms the plan's snoop rules against a switch's
// back-invalidate channel.
func (e *Engine) AttachSwitch(sw *cxl.Switch) {
	rules, _ := e.rulesFor(sw.Name(), func() { sw.SetSnoopFault(nil) }, SiteSnoop)
	if rules == nil {
		return
	}
	sw.SetSnoopFault(func(f cxl.Flit) cxl.Flit {
		for _, rs := range rules {
			if rs.exhausted.Load() {
				continue
			}
			t := &rs.r.Trigger
			if t.Kind != 0 && uint8(t.Kind-1) != f.PeekKind() {
				continue
			}
			if t.AddrHi > 0 {
				if a := f.PeekAddr(); a < t.AddrLo || a >= t.AddrHi {
					continue
				}
			}
			m, fire := e.decide(rs)
			if !fire {
				continue
			}
			e.record(rs, m, f.PeekKind(), f.PeekAddr())
			switch rs.r.Action {
			case ActCorrupt:
				f.FlipBit(uint(mix(e.plan.Seed ^ (uint64(rs.idx)<<32 + m))))
			case ActDrop:
				f.Erase()
			case ActDelay:
				time.Sleep(delayOr(rs.r.Delay, defaultDelay))
			}
		}
		return f
	})
}

// AttachMailbox arms the plan's mailbox and fabric rules against a
// device command mailbox. Fabric rules only match the dynamic-capacity
// opcodes (the fabric manager's tenant command plane).
func (e *Engine) AttachMailbox(name string, mb *cxl.Mailbox) {
	rules, _ := e.rulesFor(name, func() { mb.SetFault(nil) }, SiteMailbox, SiteFabric)
	if rules == nil {
		return
	}
	mb.SetFault(func(op cxl.MailboxOpcode) (cxl.MailboxStatus, bool) {
		for _, rs := range rules {
			if rs.exhausted.Load() {
				continue
			}
			if rs.r.Site == SiteFabric && (op < cxl.OpGetDCDConfig || op > cxl.OpReleaseDCD) {
				continue
			}
			t := &rs.r.Trigger
			if t.Op != 0 && cxl.MailboxOpcode(t.Op) != op {
				continue
			}
			m, fire := e.decide(rs)
			if !fire {
				continue
			}
			e.record(rs, m, kindMailbox, uint64(op))
			switch rs.r.Action {
			case ActStall:
				time.Sleep(delayOr(rs.r.Delay, defaultStall))
			case ActGarble:
				return cxl.MboxInternalError, true
			}
		}
		return 0, false
	})
}

// AttachMedia arms the plan's media rules against one device, with
// poison planting latent corruption at a line-aligned DPA. Media rules
// have no event stream of their own; Pulse advances them.
func (e *Engine) AttachMedia(name string, poison func(dpa uint64) error) {
	var rules []*ruleState
	for _, rs := range e.rules {
		if rs.r.Site == SiteMedia && (rs.r.Target == "" || rs.r.Target == name) {
			rules = append(rules, rs)
		}
	}
	if len(rules) == 0 {
		return
	}
	e.mu.Lock()
	e.media = append(e.media, &mediaAttach{name: name, poison: poison, rules: rules})
	e.mu.Unlock()
}

// Pulse advances every media rule by one match, planting poison for the
// ones that fire. The injection DPA is a pure function of (seed, rule,
// ordinal) inside the rule's address window.
func (e *Engine) Pulse() {
	e.mu.Lock()
	media := append([]*mediaAttach(nil), e.media...)
	e.mu.Unlock()
	for _, ma := range media {
		for _, rs := range ma.rules {
			if rs.exhausted.Load() {
				continue
			}
			m, fire := e.decide(rs)
			if !fire {
				continue
			}
			t := &rs.r.Trigger
			lines := (t.AddrHi - t.AddrLo) / 64
			if lines == 0 {
				lines = 1
			}
			dpa := (t.AddrLo + (mix(e.plan.Seed^(uint64(rs.idx)<<32+m))%lines)*64) &^ 63
			e.record(rs, m, kindMedia, dpa)
			_ = ma.poison(dpa)
		}
	}
}

// Disarm uninstalls every hook the engine armed, regardless of rule
// exhaustion. Safe to call more than once.
func (e *Engine) Disarm() {
	e.mu.Lock()
	atts := e.atts
	e.atts = nil
	e.mu.Unlock()
	for _, at := range atts {
		at.uninstall()
	}
}

func delayOr(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}
