// Package chaos is the fabric's seeded, deterministic fault-injection
// engine: the successor of the ad-hoc per-port SetFault hooks scattered
// through the test suite. A fault Plan is a list of Rules, each a
// (site, trigger, action) triple: the site names where in the stack the
// fault lands (port flit path, link state machine, mailbox, snoop
// channel, device media, fabric command plane), the trigger decides
// which matching events fire as a pure function of a seeded PRNG and
// the event's ordinal/predicate — so the same seed replays the
// identical fault schedule, byte for byte, under -race and across
// machines — and the action is what breaks (corrupt, drop, delay,
// reorder, flap, surprise-remove, stall, garble, latent poison).
//
// The Engine compiles a Plan and arms it against live components
// (AttachPort, AttachSwitch, AttachMailbox, AttachMedia). Every fire is
// appended to a bounded schedule log (Schedule), which is both the
// replay-determinism witness and the operator's view of what the plan
// did. When every rule of an attachment is exhausted the engine
// uninstalls its hooks, so a drained plan costs the data path nothing —
// the property the CI no-fault-overhead gate pins.
package chaos

import (
	"fmt"
	"time"
)

// Site names the layer a rule's faults land in.
type Site uint8

const (
	// SitePort — the CXL.mem flit path of a root port (corrupt, drop,
	// delay, reorder; detected by CRC/tag checks, recovered by the LRSM
	// retry budget).
	SitePort Site = iota
	// SiteLink — the link state machine (flap into Retraining,
	// surprise-remove mid-flight; recovered by park-and-replay or
	// ErrLinkDown completion draining).
	SiteLink
	// SiteMailbox — the device command plane (stall, garbled response;
	// bounded by ExecuteTimeout command deadlines).
	SiteMailbox
	// SiteSnoop — the switch's back-invalidate channel (corrupt, drop,
	// delay; recovered by the directory's force-invalidate policy).
	SiteSnoop
	// SiteMedia — device media (latent stuck-at poison, surfaced by
	// patrol scrub or a demand read; fired by Engine.Pulse).
	SiteMedia
	// SiteFabric — the fabric manager's tenant command plane: mailbox
	// faults restricted to the dynamic-capacity opcodes, modelling an
	// unresponsive tenant (recovered by command deadlines feeding RAS
	// health thresholds).
	SiteFabric
)

func (s Site) String() string {
	switch s {
	case SitePort:
		return "port"
	case SiteLink:
		return "link"
	case SiteMailbox:
		return "mailbox"
	case SiteSnoop:
		return "snoop"
	case SiteMedia:
		return "media"
	case SiteFabric:
		return "fabric"
	default:
		return fmt.Sprintf("Site(%d)", uint8(s))
	}
}

// ParseSite resolves a site name (as printed by String).
func ParseSite(s string) (Site, error) {
	for _, c := range []Site{SitePort, SiteLink, SiteMailbox, SiteSnoop, SiteMedia, SiteFabric} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown site %q", s)
}

// Action is what a fired rule does to its site.
type Action uint8

const (
	// ActCorrupt flips one bit of the flit (single-event upset): the
	// receiver's CRC catches it and the LRSM retransmits.
	ActCorrupt Action = iota
	// ActDrop zeroes the flit (lost on the wire): decode fails outright,
	// driving the same retry path with nothing recoverable in flight.
	ActDrop
	// ActDelay holds the flit for the rule's Delay before passing it on.
	ActDelay
	// ActReorder swaps the flit with the previously held matching flit:
	// a transient protocol violation the tag/sequence checks detect.
	ActReorder
	// ActFlap drops the link into Retraining for the rule's Delay, then
	// brings it back up; in-flight descriptors park and replay.
	ActFlap
	// ActRemove surprise-removes the endpoint (Detach) mid-flight:
	// queued descriptors complete with ErrLinkDown.
	ActRemove
	// ActStall sleeps the rule's Delay before letting the command
	// execute (a slow mailbox; command deadlines bound the damage).
	ActStall
	// ActGarble answers the command with an internal error in the
	// device's stead.
	ActGarble
	// ActPoison plants latent poison at a deterministic address inside
	// the rule's [AddrLo, AddrHi) window (fired by Pulse).
	ActPoison
)

func (a Action) String() string {
	switch a {
	case ActCorrupt:
		return "corrupt"
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	case ActReorder:
		return "reorder"
	case ActFlap:
		return "flap"
	case ActRemove:
		return "remove"
	case ActStall:
		return "stall"
	case ActGarble:
		return "garble"
	case ActPoison:
		return "poison"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// ParseAction resolves an action name (as printed by String).
func ParseAction(s string) (Action, error) {
	for _, c := range []Action{ActCorrupt, ActDrop, ActDelay, ActReorder, ActFlap, ActRemove, ActStall, ActGarble, ActPoison} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown action %q", s)
}

// siteActions is the site/action compatibility matrix Validate enforces.
var siteActions = map[Site][]Action{
	SitePort:    {ActCorrupt, ActDrop, ActDelay, ActReorder},
	SiteLink:    {ActFlap, ActRemove},
	SiteMailbox: {ActStall, ActGarble},
	SiteSnoop:   {ActCorrupt, ActDrop, ActDelay},
	SiteMedia:   {ActPoison},
	SiteFabric:  {ActStall, ActGarble},
}

// Trigger decides which matching events fire. The match stream is the
// site's event stream (flits for port/link/snoop, commands for
// mailbox/fabric, Pulse ticks for media); each rule counts its own
// matches, and the fire decision is a pure function of the plan seed,
// the rule index and the match ordinal — no wall clock, no global RNG.
type Trigger struct {
	// Nth fires on the Nth matching event (1-based). With Every it is
	// the phase: fire on Nth, Nth+Every, Nth+2·Every, …
	Nth uint64
	// Every fires on every Every-th match (when Nth is 0: Every,
	// 2·Every, …).
	Every uint64
	// Prob fires each match with this probability, decided by the
	// seeded PRNG; used when Nth and Every are both 0.
	Prob float64
	// Count caps total fires (0 = unlimited). A rule at its cap is
	// exhausted; when all of an attachment's rules are exhausted its
	// hooks are uninstalled.
	Count uint64
	// Kind filters flit kinds: 0 matches any; otherwise 1 + the wire
	// kind byte (use FilterKind).
	Kind int16
	// Op filters mailbox opcodes (0 = any).
	Op uint16
	// AddrLo/AddrHi filter the event address to [AddrLo, AddrHi) when
	// AddrHi > 0. For SiteMedia, this is the poison placement window.
	AddrLo, AddrHi uint64
}

// FilterKind builds a Trigger.Kind filter for a wire flit kind byte.
func FilterKind(kind uint8) int16 { return int16(kind) + 1 }

// Rule arms one fault: Action at Site when Trigger fires. Delay is the
// action duration where one applies (delay/stall length, flap retrain
// time); zero takes a per-action default. Target restricts the rule to
// one named attachment ("" = all).
type Rule struct {
	Site    Site
	Action  Action
	Trigger Trigger
	Delay   time.Duration
	Target  string
}

// Plan is a complete fault schedule: a seed and the rules it drives.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Validate checks site/action compatibility and trigger sanity.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		ok := false
		for _, a := range siteActions[r.Site] {
			if a == r.Action {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("chaos: rule %d: action %s invalid at site %s", i, r.Action, r.Site)
		}
		t := r.Trigger
		if t.Prob < 0 || t.Prob > 1 {
			return fmt.Errorf("chaos: rule %d: probability %v outside [0,1]", i, t.Prob)
		}
		if t.Nth == 0 && t.Every == 0 && t.Prob == 0 {
			return fmt.Errorf("chaos: rule %d: trigger never fires (set Nth, Every or Prob)", i)
		}
		if t.AddrHi > 0 && t.AddrHi <= t.AddrLo {
			return fmt.Errorf("chaos: rule %d: empty address window [%#x, %#x)", i, t.AddrLo, t.AddrHi)
		}
		if r.Site == SiteMedia && t.AddrHi == 0 {
			return fmt.Errorf("chaos: rule %d: media poison needs an address window", i)
		}
		if r.Delay < 0 {
			return fmt.Errorf("chaos: rule %d: negative delay", i)
		}
	}
	return nil
}

// mix is the splitmix64 finalizer: the engine's only source of
// randomness, keyed purely by (seed, rule, ordinal).
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// unit maps (seed, rule, match) to a uniform float in [0, 1).
func unit(seed, rule, match uint64) float64 {
	h := mix(seed ^ mix(rule*0x9e3779b97f4a7c15+match))
	return float64(h>>11) / float64(1<<53)
}
