package chaos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// chaosPort builds a trained port over a 16 MiB Type-3 device with one
// HDM window at base 0 — the chaos tests' fixture.
func chaosPort(tb testing.TB, name string) (*cxl.RootPort, *cxl.Type3Device) {
	tb.Helper()
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               name + "-ddr4",
		Rate:               1333,
		Channels:           2,
		CapacityPerChannel: 8 * units.MiB,
		BatteryBacked:      true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	dev, err := cxl.NewType3(name, 0x8086, 0x0D93, media)
	if err != nil {
		tb.Fatal(err)
	}
	if err := dev.ProgramDecoder(&cxl.HDMDecoder{Base: 0, Size: 1 << 24}); err != nil {
		tb.Fatal(err)
	}
	link, err := interconnect.NewPCIe(name+"-pcie", interconnect.KindPCIe5, 16, 0)
	if err != nil {
		tb.Fatal(err)
	}
	rp := cxl.NewRootPort(name+"-rp", link)
	if err := rp.Attach(dev); err != nil {
		tb.Fatal(err)
	}
	return rp, dev
}

// replayRun arms the plan on a fresh topology, drives a fixed
// single-threaded workload, and returns everything observable: the fire
// schedule, the per-op error strings, and the port counter deltas.
func replayRun(t *testing.T, plan Plan) (sched string, opErrs []string, stats cxl.PortStats) {
	t.Helper()
	rp, _ := chaosPort(t, "replay")
	eng, err := NewEngine(plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachPort(rp)
	defer eng.Disarm()

	var line [cxl.LineSize]byte
	for i := 0; i < 400; i++ {
		addr := uint64((i%64)*cxl.LineSize)
		for j := range line {
			line[j] = byte(i + j)
		}
		var err error
		if i%3 == 2 {
			err = rp.ReadLine(addr, &line)
		} else {
			err = rp.WriteLine(addr, &line)
		}
		if err != nil {
			opErrs = append(opErrs, fmt.Sprintf("op%d: %v", i, err))
		}
	}
	return eng.ScheduleString(), opErrs, rp.Stats()
}

// TestChaosReplayDeterminism: the same seed and the same event stream
// replay a byte-identical fault schedule, the same op-level outcomes,
// and identical counter deltas — on two completely fresh topologies.
func TestChaosReplayDeterminism(t *testing.T) {
	plan := Plan{
		Seed: 0xC0FFEE,
		Rules: []Rule{
			{Site: SitePort, Action: ActCorrupt, Trigger: Trigger{Every: 23}},
			{Site: SitePort, Action: ActDrop, Trigger: Trigger{Nth: 17}},
			{Site: SitePort, Action: ActCorrupt, Trigger: Trigger{Prob: 0.01}},
			{Site: SitePort, Action: ActReorder, Trigger: Trigger{Nth: 101, Every: 211, Count: 2}},
		},
	}
	s1, e1, st1 := replayRun(t, plan)
	s2, e2, st2 := replayRun(t, plan)
	if s1 != s2 {
		t.Fatalf("fault schedules diverged:\nrun1:\n%srun2:\n%s", s1, s2)
	}
	if s1 == "" {
		t.Fatal("plan fired nothing; the workload should trip every rule family")
	}
	if fmt.Sprint(e1) != fmt.Sprint(e2) {
		t.Fatalf("op outcomes diverged:\nrun1: %v\nrun2: %v", e1, e2)
	}
	if st1.Retries != st2.Retries || st1.Timeouts != st2.Timeouts || st1.Retrains != st2.Retrains {
		t.Fatalf("counter deltas diverged: run1 %+v run2 %+v", st1, st2)
	}
	if st1.Retries == 0 {
		t.Error("corrupt/drop fires produced no link retries")
	}

	// A different seed must change the probabilistic part of the plan.
	plan.Seed = 0xBEEF
	s3, _, _ := replayRun(t, plan)
	if s3 == s1 {
		t.Error("different seed replayed the identical schedule")
	}
}

// TestChaosCountExhaustion: a Count-capped rule stops firing at its
// cap, and once every rule of the attachment is exhausted the hook is
// uninstalled — further traffic neither fires nor counts matches.
func TestChaosCountExhaustion(t *testing.T) {
	rp, _ := chaosPort(t, "exhaust")
	eng, err := NewEngine(Plan{
		Seed:  1,
		Rules: []Rule{{Site: SitePort, Action: ActCorrupt, Trigger: Trigger{Every: 3, Count: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachPort(rp)

	var line [cxl.LineSize]byte
	for i := 0; i < 200; i++ {
		if err := rp.WriteLine(uint64((i%8)*cxl.LineSize), &line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := eng.Fires(); got != 4 {
		t.Fatalf("fires = %d, want the Count cap 4", got)
	}
	matches := eng.rules[0].matches.Load()
	retries := rp.Stats().Retries
	for i := 0; i < 200; i++ {
		if err := rp.WriteLine(uint64((i%8)*cxl.LineSize), &line); err != nil {
			t.Fatalf("post-exhaustion write %d: %v", i, err)
		}
	}
	if got := eng.rules[0].matches.Load(); got != matches {
		t.Errorf("exhausted rule still counting matches (%d -> %d): hook not uninstalled", matches, got)
	}
	if got := rp.Stats().Retries; got != retries {
		t.Errorf("retries moved %d -> %d after exhaustion", retries, got)
	}
}

// TestChaosMailbox: garble answers in the device's stead, stall defers
// execution past a command deadline, and fabric rules only touch the
// dynamic-capacity opcodes.
func TestChaosMailbox(t *testing.T) {
	_, dev := chaosPort(t, "mbox")
	mb, err := cxl.NewMailbox(dev, "chaos-fw")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Plan{
		Seed: 7,
		Rules: []Rule{
			{Site: SiteMailbox, Action: ActGarble, Trigger: Trigger{Nth: 1}},
			{Site: SiteFabric, Action: ActGarble, Trigger: Trigger{Every: 1, Count: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachMailbox(dev.Name(), mb)
	defer eng.Disarm()

	// First command eats the one-shot mailbox garble.
	if _, st := mb.Execute(cxl.OpIdentifyMemDevice, nil); st != cxl.MboxInternalError {
		t.Fatalf("garbled command status = %v, want internal error", st)
	}
	// The fabric rule must ignore non-DCD opcodes entirely.
	if _, st := mb.Execute(cxl.OpIdentifyMemDevice, nil); st != cxl.MboxSuccess {
		t.Fatalf("clean command status = %v, want success", st)
	}
	// ...and fire on the first DCD opcode it sees.
	if _, st := mb.Execute(cxl.OpGetDCDConfig, nil); st != cxl.MboxInternalError {
		t.Fatalf("fabric-garbled DCD command status = %v, want internal error", st)
	}

	// Stall vs command deadline: the deadline expires, the caller gets
	// MboxTimeout, and the device's RAS counter records it.
	eng2, err := NewEngine(Plan{
		Seed:  8,
		Rules: []Rule{{Site: SiteMailbox, Action: ActStall, Trigger: Trigger{Every: 1}, Delay: 200 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2.AttachMailbox(dev.Name(), mb)
	defer eng2.Disarm()
	before := dev.Media().Stats().CommandTimeouts.Load()
	if _, st := mb.ExecuteTimeout(cxl.OpIdentifyMemDevice, nil, 5*time.Millisecond); st != cxl.MboxTimeout {
		t.Fatalf("stalled command status = %v, want timeout", st)
	}
	if got := dev.Media().Stats().CommandTimeouts.Load(); got != before+1 {
		t.Errorf("command timeouts = %d, want %d", got, before+1)
	}
}

// TestChaosMediaPulse: poison placement is a pure function of the seed
// — two engines over the same plan plant the same line-aligned DPAs
// inside the rule's window.
func TestChaosMediaPulse(t *testing.T) {
	plant := func(seed uint64) []uint64 {
		eng, err := NewEngine(Plan{
			Seed: seed,
			Rules: []Rule{{
				Site: SiteMedia, Action: ActPoison,
				Trigger: Trigger{Every: 2, Count: 3, AddrLo: 1 << 12, AddrHi: 1 << 14},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var dpas []uint64
		eng.AttachMedia("dev0", func(dpa uint64) error {
			dpas = append(dpas, dpa)
			return nil
		})
		for i := 0; i < 10; i++ {
			eng.Pulse()
		}
		return dpas
	}
	a, b := plant(42), plant(42)
	if len(a) != 3 {
		t.Fatalf("planted %d poisons, want Count=3", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("poison placement diverged: %v vs %v", a, b)
	}
	for _, dpa := range a {
		if dpa%64 != 0 {
			t.Errorf("poison DPA %#x not line-aligned", dpa)
		}
		if dpa < 1<<12 || dpa >= 1<<14 {
			t.Errorf("poison DPA %#x outside window", dpa)
		}
	}
	if c := plant(43); fmt.Sprint(c) == fmt.Sprint(a) {
		t.Error("different seed planted identical poison")
	}
}

// TestChaosLinkFlap: a flap parks the next transaction in Retraining
// and replays it when the link comes back — no error ever surfaces.
func TestChaosLinkFlap(t *testing.T) {
	rp, _ := chaosPort(t, "flap")
	eng, err := NewEngine(Plan{
		Seed:  3,
		Rules: []Rule{{Site: SiteLink, Action: ActFlap, Trigger: Trigger{Nth: 2}, Delay: 2 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachPort(rp)
	defer eng.Disarm()

	var line [cxl.LineSize]byte
	for i := range line {
		line[i] = byte(i * 3)
	}
	for i := 0; i < 50; i++ {
		if err := rp.WriteLine(uint64(i*cxl.LineSize), &line); err != nil {
			t.Fatalf("write %d across flap: %v", i, err)
		}
	}
	if got := rp.Stats().Retrains; got == 0 {
		t.Error("flap fired but no retrain was counted")
	}
	var out [cxl.LineSize]byte
	if err := rp.ReadLine(0, &out); err != nil {
		t.Fatal(err)
	}
	if out != line {
		t.Error("line written across the flap did not round-trip")
	}
	if rp.State() != cxl.LinkUp {
		t.Errorf("link state %v after recovered flap, want up", rp.State())
	}
}

// TestChaosSurpriseRemove: a mid-traffic surprise removal downs the
// link; every subsequent op fails fast with ErrLinkDown instead of
// wedging.
func TestChaosSurpriseRemove(t *testing.T) {
	rp, _ := chaosPort(t, "remove")
	eng, err := NewEngine(Plan{
		Seed:  4,
		Rules: []Rule{{Site: SiteLink, Action: ActRemove, Trigger: Trigger{Nth: 7}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachPort(rp)
	defer eng.Disarm()

	var line [cxl.LineSize]byte
	sawDown := false
	for i := 0; i < 50; i++ {
		if err := rp.WriteLine(uint64(i*cxl.LineSize), &line); err != nil {
			if !errors.Is(err, cxl.ErrLinkDown) {
				t.Fatalf("write %d: %v, want ErrLinkDown", i, err)
			}
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("surprise remove never surfaced ErrLinkDown")
	}
	if rp.State() != cxl.LinkDown {
		t.Errorf("link state %v after surprise remove, want down", rp.State())
	}
}

// TestChaosValidate rejects the malformed plans the fuzzer would
// otherwise feed the engine.
func TestChaosValidate(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Site: SitePort, Action: ActFlap, Trigger: Trigger{Nth: 1}}}},
		{Rules: []Rule{{Site: SiteMedia, Action: ActPoison, Trigger: Trigger{Nth: 1}}}},
		{Rules: []Rule{{Site: SitePort, Action: ActCorrupt}}},
		{Rules: []Rule{{Site: SitePort, Action: ActCorrupt, Trigger: Trigger{Prob: 1.5}}}},
		{Rules: []Rule{{Site: SitePort, Action: ActCorrupt, Trigger: Trigger{Nth: 1, AddrLo: 8, AddrHi: 8}}}},
		{Rules: []Rule{{Site: SitePort, Action: ActDelay, Trigger: Trigger{Nth: 1}, Delay: -time.Second}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
	good := Plan{Rules: []Rule{
		{Site: SiteLink, Action: ActFlap, Trigger: Trigger{Prob: 0.5}},
		{Site: SiteMedia, Action: ActPoison, Trigger: Trigger{Nth: 1, AddrHi: 4096}},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

// TestChaosParseRoundTrip: every site and action name parses back to
// itself — the contract fabricctl inject relies on.
func TestChaosParseRoundTrip(t *testing.T) {
	for _, s := range []Site{SitePort, SiteLink, SiteMailbox, SiteSnoop, SiteMedia, SiteFabric} {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s.String(), got, err)
		}
	}
	for _, a := range []Action{ActCorrupt, ActDrop, ActDelay, ActReorder, ActFlap, ActRemove, ActStall, ActGarble, ActPoison} {
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAction(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseSite("bogus"); err == nil {
		t.Error("bogus site parsed")
	}
	if _, err := ParseAction("bogus"); err == nil {
		t.Error("bogus action parsed")
	}
}
