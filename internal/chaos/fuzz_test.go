package chaos

import (
	"encoding/binary"
	"testing"
	"time"

	"cxlpmem/internal/cxl"
)

// decodePlan turns arbitrary fuzz bytes into a plan — deliberately NOT
// forced valid, so the fuzzer exercises both Validate's rejections and
// the engine's behaviour under every plan that survives them. Delays
// are clamped so a surviving plan always runs in bounded time.
func decodePlan(data []byte) Plan {
	p := Plan{}
	if len(data) < 8 {
		return p
	}
	p.Seed = binary.LittleEndian.Uint64(data)
	data = data[8:]
	const ruleBytes = 16
	for len(data) >= ruleBytes && len(p.Rules) < 4 {
		b := data[:ruleBytes]
		data = data[ruleBytes:]
		r := Rule{
			Site:   Site(b[0] % 8),    // may exceed the valid range
			Action: Action(b[1] % 12), // ditto
			Trigger: Trigger{
				Nth:    uint64(b[2] % 8),
				Every:  uint64(b[3] % 8),
				Prob:   float64(b[4]) / 255,
				Count:  uint64(b[5] % 5),
				Kind:   int16(b[6]%8) - 1,
				Op:     binary.LittleEndian.Uint16(b[7:9]),
				AddrLo: uint64(binary.LittleEndian.Uint16(b[9:11])) &^ 63,
			},
			Delay: time.Duration(b[13]%3) * 500 * time.Microsecond,
		}
		if span := uint64(binary.LittleEndian.Uint16(b[11:13])); span > 0 {
			r.Trigger.AddrHi = r.Trigger.AddrLo + (span &^ 63) + 64
		}
		p.Rules = append(p.Rules, r)
	}
	return p
}

// FuzzChaosPlan: any plan that passes Validate must run a small
// workload to completion — no panic, no deadlock, no error other than
// the fault-induced ones — and replay deterministically.
func FuzzChaosPlan(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 8+2*16)
	binary.LittleEndian.PutUint64(seed, 0xC0FFEE)
	seed[8] = 0     // SitePort
	seed[9] = 0     // ActCorrupt
	seed[11] = 3    // Every=3
	seed[8+16] = 1  // SiteLink
	seed[9+16] = 4  // ActFlap
	seed[10+16] = 2 // Nth=2
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		plan := decodePlan(data)
		if err := plan.Validate(); err != nil {
			return
		}
		if len(plan.Rules) == 0 {
			return
		}

		done := make(chan string, 1)
		go func() {
			eng, err := NewEngine(plan)
			if err != nil {
				done <- "engine: " + err.Error()
				return
			}
			rp, dev := chaosPort(t, "fuzz")
			mb, err := cxl.NewMailbox(dev, "fuzz-fw")
			if err != nil {
				done <- "mailbox: " + err.Error()
				return
			}
			eng.AttachPort(rp)
			eng.AttachMailbox(dev.Name(), mb)
			eng.AttachMedia(dev.Name(), func(dpa uint64) error { return nil })
			defer eng.Disarm()

			var line [cxl.LineSize]byte
			for i := 0; i < 30; i++ {
				// Fault-induced errors are fine; hangs and panics are not.
				_ = rp.WriteLine(uint64((i%16)*cxl.LineSize), &line)
				if i%10 == 0 {
					_, _ = mb.ExecuteTimeout(cxl.OpGetHealthInfo, nil, 20*time.Millisecond)
					eng.Pulse()
				}
			}
			done <- ""
		}()
		select {
		case msg := <-done:
			if msg != "" {
				t.Fatal(msg)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("chaos plan wedged the workload: watchdog expired")
		}
	})
}
