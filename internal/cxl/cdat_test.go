package cxl

import (
	"testing"
	"testing/quick"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func TestCDATBuildFromDevice(t *testing.T) {
	dev := testType3(t)
	c := BuildCDAT(dev)
	if len(c.Ranges) != 1 || len(c.Perf) != 4 {
		t.Fatalf("cdat = %d ranges, %d perf", len(c.Ranges), len(c.Perf))
	}
	r := c.Ranges[0]
	if !r.NonVolatile {
		t.Error("battery-backed device should advertise non-volatile")
	}
	if r.DPALength != uint64(dev.Media().Capacity().Bytes()) {
		t.Errorf("range length = %d", r.DPALength)
	}
	// The advertised numbers equal the model's profile — the OS view
	// and the perf engine agree by construction.
	p := dev.Media().Profile()
	if v, ok := c.Lookup(0, DSLBISReadLatency); !ok || v != uint64(p.IdleLatency.Ns()) {
		t.Errorf("read latency = %d, %v", v, ok)
	}
	if v, ok := c.Lookup(0, DSLBISReadBandwidth); !ok || v != uint64(p.ReadPeak.MBps()) {
		t.Errorf("read bandwidth = %d", v)
	}
	if v, ok := c.Lookup(0, DSLBISWriteBandwidth); !ok || v != uint64(p.WritePeak.MBps()) {
		t.Errorf("write bandwidth = %d", v)
	}
	if _, ok := c.Lookup(9, DSLBISReadLatency); ok {
		t.Error("lookup of unknown handle succeeded")
	}
}

func TestCDATEncodeDecodeRoundTrip(t *testing.T) {
	dev := testType3(t)
	c := BuildCDAT(dev)
	enc := c.Encode()
	back, err := DecodeCDAT(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ranges) != len(c.Ranges) || len(back.Perf) != len(c.Perf) {
		t.Fatal("record counts changed")
	}
	if back.Ranges[0] != c.Ranges[0] {
		t.Errorf("DSMAS mismatch: %+v vs %+v", back.Ranges[0], c.Ranges[0])
	}
	for i := range c.Perf {
		if back.Perf[i] != c.Perf[i] {
			t.Errorf("DSLBIS %d mismatch", i)
		}
	}
}

func TestCDATDecodeValidation(t *testing.T) {
	if _, err := DecodeCDAT([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := DecodeCDAT([]byte{9, 0, 8, 0, 1, 2, 3, 4}); err == nil {
		t.Error("unknown record type accepted")
	}
	// Bad length field.
	if _, err := DecodeCDAT([]byte{0, 0, 2, 0}); err == nil {
		t.Error("undersized length accepted")
	}
	if _, err := DecodeCDAT([]byte{0, 0, 255, 0, 1}); err == nil {
		t.Error("oversized length accepted")
	}
	// DSMAS with wrong payload size.
	bad := []byte{CDATDsmas, 0, 10, 0, 1, 2, 3, 4, 5, 6}
	if _, err := DecodeCDAT(bad); err == nil {
		t.Error("short DSMAS accepted")
	}
}

// Property: arbitrary well-formed tables survive the codec.
func TestCDATRoundTripProperty(t *testing.T) {
	f := func(handle, dt uint8, base, length, value uint64, nv bool) bool {
		c := CDAT{
			Ranges: []DSMAS{{Handle: handle, NonVolatile: nv, DPABase: base, DPALength: length}},
			Perf:   []DSLBIS{{Handle: handle, DataType: dt % 4, Value: value}},
		}
		back, err := DecodeCDAT(c.Encode())
		if err != nil {
			return false
		}
		return back.Ranges[0] == c.Ranges[0] && back.Perf[0] == c.Perf[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDATVolatileDevice(t *testing.T) {
	// A device over plain (non-battery) DRAM advertises volatile.
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "vol-media", Rate: 1333, Channels: 1, CapacityPerChannel: units.MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewType3("vol", 0x8086, 0x0D99, media)
	if err != nil {
		t.Fatal(err)
	}
	c := BuildCDAT(dev)
	if c.Ranges[0].NonVolatile {
		t.Error("volatile media advertised as non-volatile")
	}
}
