package cxl

import (
	"bytes"
	"strings"
	"testing"

	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func testMedia(t *testing.T, name string) memdev.Device {
	t.Helper()
	d, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               name,
		Rate:               1333,
		Channels:           2,
		CapacityPerChannel: 8 * units.MiB,
		BatteryBacked:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testType3(t *testing.T) *Type3Device {
	t.Helper()
	dev, err := NewType3("cxl-mem0", 0x8086, 0x0D93, testMedia(t, "fpga-ddr4"))
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func trainedPort(t *testing.T, ep Endpoint) *RootPort {
	t.Helper()
	link, err := interconnect.NewPCIe("pcie5x16", interconnect.KindPCIe5, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRootPort("rp0", link)
	if err := rp.Attach(ep); err != nil {
		t.Fatal(err)
	}
	return rp
}

func TestType3MemReadWrite(t *testing.T) {
	dev := testType3(t)
	dec := &HDMDecoder{Base: 0x10_0000_0000, Size: 8 << 20}
	if err := dev.ProgramDecoder(dec); err != nil {
		t.Fatal(err)
	}
	var in [LineSize]byte
	for i := range in {
		in[i] = byte(i + 1)
	}
	resp := dev.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0x10_0000_0040, Data: in, Tag: 3})
	if resp.Opcode != RespCmp || resp.Tag != 3 {
		t.Fatalf("write resp = %+v", resp)
	}
	resp = dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x10_0000_0040, Tag: 4})
	if resp.Opcode != RespMemData || resp.Tag != 4 {
		t.Fatalf("read resp = %+v", resp)
	}
	if !bytes.Equal(resp.Data[:], in[:]) {
		t.Error("data mismatch through HDM")
	}
	r, w := dev.Stats().Reads.Load(), dev.Stats().Writes.Load()
	if r != 1 || w != 1 {
		t.Errorf("stats = %d reads %d writes", r, w)
	}
}

func TestType3PartialWrite(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	var full [LineSize]byte
	for i := range full {
		full[i] = 0xAA
	}
	dev.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0, Data: full})
	// Overwrite bytes 4..8 only.
	var req MemReq
	req.Opcode = OpMemWrPtl
	req.Addr = 0
	req.Data[4], req.Data[5], req.Data[6], req.Data[7] = 1, 2, 3, 4
	req.Mask = 0xF0
	if resp := dev.HandleMem(req); resp.Opcode != RespCmp {
		t.Fatalf("partial write resp = %v", resp.Opcode)
	}
	resp := dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0})
	want := full
	want[4], want[5], want[6], want[7] = 1, 2, 3, 4
	if !bytes.Equal(resp.Data[:], want[:]) {
		t.Errorf("after partial write:\n got %v\nwant %v", resp.Data[:8], want[:8])
	}
	if dev.Stats().PartialWrites.Load() != 1 {
		t.Error("partial write not counted")
	}
}

func TestType3UnmappedAddress(t *testing.T) {
	dev := testType3(t)
	resp := dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x40})
	if resp.Opcode != RespErr {
		t.Errorf("unmapped read resp = %v, want RespErr", resp.Opcode)
	}
	if dev.Stats().Errors.Load() != 1 {
		t.Error("error not counted")
	}
}

func TestType3MemInv(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	resp := dev.HandleMem(MemReq{Opcode: OpMemInv, Addr: 0})
	if resp.Opcode != RespCmp {
		t.Errorf("MemInv resp = %v", resp.Opcode)
	}
	if dev.Stats().Invalidates.Load() != 1 {
		t.Error("invalidate not counted")
	}
}

func TestProgramDecoderOverCapacity(t *testing.T) {
	dev := testType3(t) // 16 MiB media
	err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 64 << 20})
	if err == nil {
		t.Error("oversized decoder accepted")
	}
	if got := len(dev.Decoders()); got != 0 {
		t.Errorf("decoders = %d, want 0", got)
	}
}

func TestTwoWindowsOneDevice(t *testing.T) {
	// §2.2: "the same far memory segment can be made available to two
	// distinct NUMA nodes" — two HPA windows, one media.
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0x10_0000_0000, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0x20_0000_0000, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	line[0] = 0x42
	if resp := dev.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0x10_0000_0000, Data: line}); resp.Opcode != RespCmp {
		t.Fatal("write via window 1 failed")
	}
	resp := dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x20_0000_0000})
	if resp.Opcode != RespMemData || resp.Data[0] != 0x42 {
		t.Error("windows do not alias the same media")
	}
}

func TestRootPortLinkTraining(t *testing.T) {
	link, _ := interconnect.NewPCIe("p", interconnect.KindPCIe5, 16, 0)
	rp := NewRootPort("rp0", link)
	if rp.State() != LinkDown {
		t.Error("fresh port should be down")
	}
	if err := rp.Attach(nil); err == nil {
		t.Error("attached nil endpoint")
	}
	dev := testType3(t)
	if err := rp.Attach(dev); err != nil {
		t.Fatal(err)
	}
	if rp.State() != LinkUp || rp.Endpoint() != Endpoint(dev) {
		t.Error("training did not bring link up")
	}
	if err := rp.Attach(dev); err == nil {
		t.Error("double attach accepted")
	}
	rp.Detach()
	if rp.State() != LinkDown || rp.Endpoint() != nil {
		t.Error("detach did not bring link down")
	}
	if rp.Name() != "rp0" || rp.Link() != link {
		t.Error("accessors mismatch")
	}
}

// nonCXLEndpoint has no DVSEC: training must fail.
type nonCXLEndpoint struct{ cfg ConfigSpace }

func (d *nonCXLEndpoint) Name() string           { return "plain-pcie" }
func (d *nonCXLEndpoint) DeviceType() DeviceType { return Type3 }
func (d *nonCXLEndpoint) Config() *ConfigSpace   { return &d.cfg }
func (d *nonCXLEndpoint) HandleMem(req MemReq) MemResp {
	return MemResp{Tag: req.Tag, Opcode: RespErr}
}

func TestTrainingRejectsNonCXL(t *testing.T) {
	link, _ := interconnect.NewPCIe("p", interconnect.KindPCIe5, 16, 0)
	rp := NewRootPort("rp0", link)
	if err := rp.Attach(&nonCXLEndpoint{}); err == nil {
		t.Error("trained against a device without CXL DVSEC")
	}
	if rp.State() != LinkDown {
		t.Error("failed training left link up")
	}
}

func TestRootPortLineOps(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	var in, out [LineSize]byte
	for i := range in {
		in[i] = byte(i)
	}
	if err := rp.WriteLine(128, &in); err != nil {
		t.Fatal(err)
	}
	if err := rp.ReadLine(128, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Error("line round trip mismatch")
	}
	if err := rp.WriteLine(130, &in); err == nil {
		t.Error("unaligned WriteLine accepted")
	}
	if err := rp.ReadLine(130, &out); err == nil {
		t.Error("unaligned ReadLine accepted")
	}
}

func TestRootPortBulkUnaligned(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	payload := []byte("unaligned payload spanning multiple CXL lines with head and tail fragments!")
	if err := rp.WriteAt(payload, 61); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(payload))
	if err := rp.ReadAt(out, 61); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, out) {
		t.Errorf("bulk round trip mismatch: %q", out)
	}
	// Partial writes must not clobber neighbours.
	probe := make([]byte, 2)
	if err := rp.ReadAt(probe, 59); err != nil {
		t.Fatal(err)
	}
	if probe[0] != 0 || probe[1] != 0 {
		t.Error("head partial write clobbered preceding bytes")
	}
	if dev.Stats().PartialWrites.Load() == 0 {
		t.Error("expected MemWrPtl for unaligned edges")
	}
}

func TestRootPortDownLinkFails(t *testing.T) {
	link, _ := interconnect.NewPCIe("p", interconnect.KindPCIe5, 16, 0)
	rp := NewRootPort("rp0", link)
	var line [LineSize]byte
	err := rp.ReadLine(0, &line)
	if err == nil {
		t.Fatal("read over down link succeeded")
	}
	var pe *PortError
	if pe, _ = err.(*PortError); pe == nil || !strings.Contains(pe.Error(), "link down") {
		t.Errorf("err = %v, want PortError(link down)", err)
	}
}

func TestRootPortFlitTrace(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	var flits int
	rp.SetFlitTrace(func(Flit) { flits++ })
	var line [LineSize]byte
	if err := rp.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	if flits != 2 { // one request, one response
		t.Errorf("traced %d flits, want 2", flits)
	}
}

func TestType1RejectsMem(t *testing.T) {
	d := NewType1("accel", 0x8086, 0x0001)
	if d.DeviceType() != Type1 {
		t.Error("wrong type")
	}
	if resp := d.HandleMem(MemReq{Opcode: OpMemRd}); resp.Opcode != RespErr {
		t.Error("Type1 serviced CXL.mem")
	}
	info, ok := d.Config().FindCXLDVSEC()
	if !ok || info.Caps&CapMem != 0 || info.Caps&CapCache == 0 {
		t.Errorf("Type1 DVSEC caps = %v", info.Caps)
	}
}

func TestType2HasMemAndCache(t *testing.T) {
	d, err := NewType2("accel-mem", 0x8086, 0x0002, testMedia(t, "t2-media"))
	if err != nil {
		t.Fatal(err)
	}
	if d.DeviceType() != Type2 {
		t.Error("wrong type")
	}
	info, ok := d.Config().FindCXLDVSEC()
	if !ok || info.Caps != CapCache|CapIO|CapMem {
		t.Errorf("Type2 caps = %v", info.Caps)
	}
	if err := d.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	line[0] = 9
	if resp := d.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0, Data: line}); resp.Opcode != RespCmp {
		t.Error("Type2 write failed")
	}
}

func TestNewType3Validation(t *testing.T) {
	if _, err := NewType3("x", 0, 0, nil); err == nil {
		t.Error("accepted nil media")
	}
}

func TestDeviceStrings(t *testing.T) {
	dev := testType3(t)
	if s := dev.String(); !strings.Contains(s, "Type3") {
		t.Errorf("String = %q", s)
	}
	if Type1.String() != "Type1" || Type3.String() != "Type3" {
		t.Error("DeviceType strings")
	}
	if LinkUp.String() != "up" || LinkDown.String() != "down" {
		t.Error("LinkState strings")
	}
}
