package cxl

import (
	"errors"
	"fmt"
)

// Sentinel errors for the CXL.mem data path. Every transaction-level
// failure surfaced by RootPort, InterleaveSet or the MemIO adapters is
// a *PortError wrapping exactly one of these, so callers classify
// failures with errors.Is instead of string matching:
//
//	if errors.Is(err, cxl.ErrLinkDown) { ... }
//
// The address shapes are uniform across the whole I/O surface (see the
// MemIO contract in memio.go): line/burst/submit entry points take a
// host physical address as uint64; ReadAt/WriteAt take a byte offset
// as int64.
var (
	// ErrLinkDown — the port has no trained endpoint.
	ErrLinkDown = errors.New("link down")
	// ErrUnaligned — a line op at a non-line-aligned HPA, or a burst
	// whose address/length is not line-granular.
	ErrUnaligned = errors.New("unaligned access")
	// ErrOutsideWindow — a striped transfer outside the interleave
	// set's HPA window.
	ErrOutsideWindow = errors.New("outside interleave window")
	// ErrUncorrectable — link-level retry budget exhausted: the flit
	// never crossed the wire intact.
	ErrUncorrectable = errors.New("uncorrectable link error")
	// ErrBadResponse — the endpoint answered with an unexpected or
	// error response opcode (unmapped address, poisoned line, device
	// fault).
	ErrBadResponse = errors.New("error response")
	// ErrTagMismatch — a response or data flit carried a tag/sequence
	// that does not match the request (protocol violation).
	ErrTagMismatch = errors.New("tag mismatch")
	// ErrRingFull — the virtual channel's submission queue is full and
	// completions are not being consumed; Wait or Harvest outstanding
	// tokens, then resubmit.
	ErrRingFull = errors.New("submission ring full")
	// ErrTimeout — a bounded wait expired: a descriptor deadline
	// (Completion.WaitTimeout), a retrain that never completed, or a
	// command deadline. The operation's outcome is unknown; the caller
	// decides whether to requeue or fail.
	ErrTimeout = errors.New("operation timed out")
)

// PortError reports a transaction-level failure at a port. It wraps a
// sentinel (Err) classifying the failure; Why carries the human detail.
type PortError struct {
	Port string
	Op   string
	Addr uint64
	Why  string
	// Err is the sentinel this failure classifies as (errors.Is target).
	Err error
}

func (e *PortError) Error() string {
	return fmt.Sprintf("cxl: %s: %s @%#x: %s", e.Port, e.Op, e.Addr, e.Why)
}

// Unwrap exposes the sentinel for errors.Is/errors.As chains.
func (e *PortError) Unwrap() error { return e.Err }

// portErr builds a PortError wrapping sentinel with a detail string.
func portErr(port, op string, addr uint64, sentinel error, why string) *PortError {
	return &PortError{Port: port, Op: op, Addr: addr, Why: why, Err: sentinel}
}
