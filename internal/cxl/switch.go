package cxl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// CXL 2.0 switching and pooling (paper §1.3: "CXL 2.0 expands the
// specification – among other capabilities – to memory pools using CXL
// switches on a device level"). A Switch exposes virtual PCIe-to-PCIe
// bridges (vPPBs) upstream — one per host — and binds each to a
// downstream endpoint, or to one logical device of a Multi-Logical
// Device (MLD) whose capacity is partitioned among hosts.

// Switch is a CXL 2.0 switch. Binding mutations (Bind/Unbind/Rebind,
// AddDownstream) are serialised by a mutex and publish an immutable
// routing snapshot; EndpointFor — the per-transaction lookup — reads
// the snapshot lock-free, so rebinding one vPPB never stalls traffic
// flowing through the others.
type Switch struct {
	name string

	mu         sync.Mutex
	downstream map[string]Endpoint // port name -> device
	bindings   map[string]string   // vPPB (host port) -> downstream port
	// shared marks downstream ports bound with BindShared: many vPPBs
	// may reach them at once (CXL 3.0 shared-FAM semantics), unlike the
	// exclusive single-logical-device bindings Bind enforces.
	shared map[string]bool
	// view is the published vPPB -> endpoint routing table.
	view atomic.Pointer[map[string]Endpoint]
	// snoopers is the published vPPB -> host snoop handler table for the
	// CXL 3.0 back-invalidate channel (see Snoop).
	snoopers atomic.Pointer[map[string]Snooper]
	// snoopTrace, when set, observes every BISnp/BIRsp flit crossing the
	// switch — the telemetry plane's always-on snoop capture.
	snoopTrace atomic.Pointer[func(Flit)]
	// snoopFault, when set, may corrupt, delay or drop a back-invalidate
	// flit in flight (fault injection on the snoop channel, the BI-path
	// twin of RootPort.SetFault). A mangled flit fails decode and Snoop
	// returns the error to the directory, which owns the recovery policy.
	snoopFault atomic.Pointer[func(Flit) Flit]
}

// NewSwitch builds an empty switch.
func NewSwitch(name string) *Switch {
	sw := &Switch{
		name:       name,
		downstream: make(map[string]Endpoint),
		bindings:   make(map[string]string),
		shared:     make(map[string]bool),
	}
	sw.publish()
	return sw
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.name }

// publish rebuilds the lock-free routing snapshot; callers hold sw.mu.
func (sw *Switch) publish() {
	v := make(map[string]Endpoint, len(sw.bindings))
	for vppb, port := range sw.bindings {
		if ep, ok := sw.downstream[port]; ok {
			v[vppb] = ep
		}
	}
	sw.view.Store(&v)
}

// AddDownstream attaches an endpoint to a named downstream port.
func (sw *Switch) AddDownstream(port string, ep Endpoint) error {
	if ep == nil {
		return fmt.Errorf("cxl: switch %s: nil endpoint", sw.name)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.downstream[port]; ok {
		return fmt.Errorf("cxl: switch %s: downstream port %s already populated", sw.name, port)
	}
	sw.downstream[port] = ep
	return nil
}

// RemoveDownstream detaches a downstream port. The port must not be
// bound to any vPPB.
func (sw *Switch) RemoveDownstream(port string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.downstream[port]; !ok {
		return fmt.Errorf("cxl: switch %s: no downstream port %s", sw.name, port)
	}
	for v, d := range sw.bindings {
		if d == port {
			return fmt.Errorf("cxl: switch %s: downstream %s still bound to vPPB %s", sw.name, port, v)
		}
	}
	delete(sw.downstream, port)
	return nil
}

// bindLocked connects vppb to downstreamPort; callers hold sw.mu.
func (sw *Switch) bindLocked(vppb, downstreamPort string) error {
	if _, ok := sw.downstream[downstreamPort]; !ok {
		return fmt.Errorf("cxl: switch %s: no downstream port %s", sw.name, downstreamPort)
	}
	if existing, ok := sw.bindings[vppb]; ok {
		return fmt.Errorf("cxl: switch %s: vPPB %s already bound to %s", sw.name, vppb, existing)
	}
	if sw.shared[downstreamPort] {
		return fmt.Errorf("cxl: switch %s: downstream %s is shared; use BindShared", sw.name, downstreamPort)
	}
	for v, d := range sw.bindings {
		if d == downstreamPort {
			return fmt.Errorf("cxl: switch %s: downstream %s already bound to vPPB %s", sw.name, downstreamPort, v)
		}
	}
	sw.bindings[vppb] = downstreamPort
	return nil
}

// BindShared connects a host-facing vPPB to a downstream port that many
// vPPBs may reach at once — the CXL 3.0 shared-FAM binding a
// coherent shared-HDM segment needs (every host's root port resolves to
// the SAME Type-3 device; the device's directory arbitrates line
// ownership via the back-invalidate channel). The first BindShared
// marks the downstream shared; an exclusively bound downstream cannot
// be re-bound shared without unbinding it first.
func (sw *Switch) BindShared(vppb, downstreamPort string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.downstream[downstreamPort]; !ok {
		return fmt.Errorf("cxl: switch %s: no downstream port %s", sw.name, downstreamPort)
	}
	if existing, ok := sw.bindings[vppb]; ok {
		return fmt.Errorf("cxl: switch %s: vPPB %s already bound to %s", sw.name, vppb, existing)
	}
	if !sw.shared[downstreamPort] {
		for v, d := range sw.bindings {
			if d == downstreamPort {
				return fmt.Errorf("cxl: switch %s: downstream %s exclusively bound to vPPB %s", sw.name, downstreamPort, v)
			}
		}
	}
	sw.shared[downstreamPort] = true
	sw.bindings[vppb] = downstreamPort
	sw.publish()
	return nil
}

// Bind connects a host-facing vPPB to a downstream port. A downstream
// device may be bound to at most one vPPB at a time (single-logical-
// device semantics; MLDs are partitioned first, then each logical device
// is bound independently).
func (sw *Switch) Bind(vppb, downstreamPort string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if err := sw.bindLocked(vppb, downstreamPort); err != nil {
		return err
	}
	sw.publish()
	return nil
}

// Unbind releases a vPPB, returning its device to the pool. The last
// unbind from a shared downstream clears its shared mark, so it can be
// bound exclusively again. Any snooper registered on the vPPB is
// deregistered with it.
func (sw *Switch) Unbind(vppb string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	port, ok := sw.bindings[vppb]
	if !ok {
		return fmt.Errorf("cxl: switch %s: vPPB %s not bound", sw.name, vppb)
	}
	delete(sw.bindings, vppb)
	if sw.shared[port] {
		still := false
		for _, d := range sw.bindings {
			if d == port {
				still = true
				break
			}
		}
		if !still {
			delete(sw.shared, port)
		}
	}
	if cur := sw.snoopers.Load(); cur != nil {
		if _, ok := (*cur)[vppb]; ok {
			next := make(map[string]Snooper, len(*cur))
			for k, v := range *cur {
				if k != vppb {
					next[k] = v
				}
			}
			sw.snoopers.Store(&next)
		}
	}
	sw.publish()
	return nil
}

// Rebind atomically moves a vPPB to a different downstream port: other
// vPPBs never observe an intermediate state, and lookups through this
// one see either the old endpoint or the new, never nothing. The vPPB
// must currently be bound; the target port must exist and be free.
// Transactions already in flight complete against the endpoint they
// resolved at issue time, exactly as with Unbind.
func (sw *Switch) Rebind(vppb, downstreamPort string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	old, ok := sw.bindings[vppb]
	if !ok {
		return fmt.Errorf("cxl: switch %s: vPPB %s not bound", sw.name, vppb)
	}
	if old == downstreamPort {
		return nil
	}
	delete(sw.bindings, vppb)
	if err := sw.bindLocked(vppb, downstreamPort); err != nil {
		sw.bindings[vppb] = old // roll back; snapshot never saw the gap
		return err
	}
	sw.publish()
	return nil
}

// EndpointFor resolves the endpoint visible through a vPPB. It reads
// the published routing snapshot without taking the switch lock — the
// data-plane path stays wait-free while the control plane rebinds.
func (sw *Switch) EndpointFor(vppb string) (Endpoint, bool) {
	v := sw.view.Load()
	if v == nil {
		return nil, false
	}
	ep, ok := (*v)[vppb]
	return ep, ok
}

// Snooper is a host-side handler for the CXL 3.0 back-invalidate
// channel: the coherent cache behind one vPPB. HandleBISnp must write
// any dirty copy of the snooped line back through the host's own
// CXL.mem path before returning (the response carries state, not data).
type Snooper interface {
	HandleBISnp(BISnp) BIRsp
}

// RegisterSnooper attaches a back-invalidate handler to a bound vPPB.
// The device-side directory reaches the host through Snoop; hosts that
// never register simply cannot cache shared lines coherently.
func (sw *Switch) RegisterSnooper(vppb string, s Snooper) error {
	if s == nil {
		return fmt.Errorf("cxl: switch %s: nil snooper", sw.name)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.bindings[vppb]; !ok {
		return fmt.Errorf("cxl: switch %s: vPPB %s not bound", sw.name, vppb)
	}
	next := make(map[string]Snooper)
	if cur := sw.snoopers.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[vppb] = s
	sw.snoopers.Store(&next)
	return nil
}

// SetSnoopTrace installs (or, with nil, removes) a hook observing every
// back-invalidate flit the switch routes. Safe to swap while snoops are
// in flight — each snoop sees the hook it loaded at entry.
func (sw *Switch) SetSnoopTrace(f func(Flit)) {
	if f == nil {
		sw.snoopTrace.Store(nil)
		return
	}
	sw.snoopTrace.Store(&f)
}

// SetSnoopFault installs (or, with nil, removes) the hook that may
// mangle a back-invalidate flit in flight. Applied to both directions
// of every snoop, before the trace hook, like the port's fault slot.
func (sw *Switch) SetSnoopFault(f func(Flit) Flit) {
	if f == nil {
		sw.snoopFault.Store(nil)
		return
	}
	sw.snoopFault.Store(&f)
}

// Snoop routes one back-invalidate snoop upstream through a vPPB and
// returns the host's response. Both messages genuinely round-trip the
// flit codec — encode, wire, CRC check, decode — so the snoop channel
// is as observable (and as corruptible in fault tests) as the CXL.mem
// data path. The registry is read from a published snapshot, keeping
// the snoop path lock-free against concurrent control-plane changes.
func (sw *Switch) Snoop(vppb string, req BISnp) (BIRsp, error) {
	m := sw.snoopers.Load()
	if m == nil {
		return BIRsp{}, fmt.Errorf("cxl: switch %s: no snooper on vPPB %s", sw.name, vppb)
	}
	s, ok := (*m)[vppb]
	if !ok {
		return BIRsp{}, fmt.Errorf("cxl: switch %s: no snooper on vPPB %s", sw.name, vppb)
	}
	tr := sw.snoopTrace.Load()
	ft := sw.snoopFault.Load()
	var f Flit
	EncodeBISnpInto(&f, &req)
	if ft != nil {
		f = (*ft)(f)
	}
	if tr != nil {
		(*tr)(f)
	}
	var decoded BISnp
	if err := DecodeBISnpInto(&decoded, &f); err != nil {
		return BIRsp{}, fmt.Errorf("cxl: switch %s: snoop to %s: %w", sw.name, vppb, err)
	}
	resp := s.HandleBISnp(decoded)
	resp.Tag = decoded.Tag
	EncodeBIRspInto(&f, &resp)
	if ft != nil {
		f = (*ft)(f)
	}
	if tr != nil {
		(*tr)(f)
	}
	var out BIRsp
	if err := DecodeBIRspInto(&out, &f); err != nil {
		return BIRsp{}, fmt.Errorf("cxl: switch %s: snoop response from %s: %w", sw.name, vppb, err)
	}
	if out.Tag != req.Tag {
		return BIRsp{}, fmt.Errorf("cxl: switch %s: snoop response tag %d, want %d", sw.name, out.Tag, req.Tag)
	}
	return out, nil
}

// Bindings returns a copy of the current vPPB map.
func (sw *Switch) Bindings() map[string]string {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make(map[string]string, len(sw.bindings))
	for k, v := range sw.bindings {
		out[k] = v
	}
	return out
}

// MLD is a Multi-Logical Device: one physical Type-3 device whose
// capacity is partitioned into logical devices, each presentable to a
// different host. This is CXL 2.0's device-level pooling mechanism —
// made elastic here: partitions and raw extents can be released back to
// the pool and re-carved (first-fit with coalescing), which is the
// substrate the fabric manager's dynamic-capacity model stands on.
type MLD struct {
	name  string
	media memdev.Device

	mu         sync.Mutex
	alloc      *ExtentAllocator
	partitions []*LogicalDevice
}

// NewMLD wraps media as a poolable multi-logical device.
func NewMLD(name string, media memdev.Device) (*MLD, error) {
	if media == nil {
		return nil, fmt.Errorf("cxl: mld %s: nil media", name)
	}
	alloc, err := NewExtentAllocator(media.Capacity())
	if err != nil {
		return nil, fmt.Errorf("cxl: mld %s: %w", name, err)
	}
	return &MLD{name: name, media: media, alloc: alloc}, nil
}

// Name returns the MLD name.
func (m *MLD) Name() string { return m.name }

// Media exposes the backing device. The fabric manager maps tenant
// extents directly onto it; data-plane isolation comes from the extent
// tables, not from hiding the media.
func (m *MLD) Media() memdev.Device { return m.media }

// Remaining reports unreserved capacity: what neither a carved
// partition nor an allocated extent currently holds.
func (m *MLD) Remaining() units.Size {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alloc.Remaining()
}

// FreeExtents snapshots the free list (sorted by base).
func (m *MLD) FreeExtents() []Extent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alloc.FreeExtents()
}

// AllocExtent reserves a contiguous raw extent of exactly size bytes
// (first-fit). Raw extents carry no endpoint; the fabric manager maps
// them into tenant devices.
func (m *MLD) AllocExtent(size units.Size) (Extent, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ext, err := m.alloc.Alloc(size)
	if err != nil {
		return Extent{}, fmt.Errorf("cxl: mld %s: %w", m.name, err)
	}
	return ext, nil
}

// AllocExtentAny reserves the lowest free extent, clipped to max bytes
// — the fragmented-pool path (see ExtentAllocator.AllocAny).
func (m *MLD) AllocExtentAny(max units.Size) (Extent, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alloc.AllocAny(max)
}

// ReleaseExtent returns a raw extent to the pool, coalescing free
// neighbours. Double releases are refused.
func (m *MLD) ReleaseExtent(ext Extent) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.alloc.Free(ext); err != nil {
		return fmt.Errorf("cxl: mld %s: %w", m.name, err)
	}
	return nil
}

// Carve allocates a logical device of the given size from the pool. The
// returned LogicalDevice is a full CXL Type-3 endpoint restricted to its
// partition (dynamic capacity in CXL 2.0/3.0 terms). A carve that fails
// after reserving its extent rolls the reservation back — no capacity
// leaks, Remaining() is exact across any sequence of failed carves.
func (m *MLD) Carve(name string, size units.Size) (*LogicalDevice, error) {
	if size <= 0 || size%units.CacheLine != 0 {
		return nil, fmt.Errorf("cxl: mld %s: invalid partition size %d", m.name, size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ext, err := m.alloc.Alloc(size)
	if err != nil {
		return nil, fmt.Errorf("cxl: mld %s: partition %s: %w", m.name, size, err)
	}
	ld := &LogicalDevice{
		mld:  m,
		base: ext.Base,
		size: ext.Size,
	}
	ld.view = &partitionView{m: m, base: ext.Base, size: ext.Size}
	ld.Type3Device, err = newType3FromView(name, ld.view)
	if err != nil {
		// Roll back the reservation: the extent was just carved from
		// the free list, so returning it cannot fail.
		if ferr := m.alloc.Free(ext); ferr != nil {
			panic(fmt.Sprintf("cxl: mld %s: carve rollback failed: %v", m.name, ferr))
		}
		return nil, err
	}
	m.partitions = append(m.partitions, ld)
	return ld, nil
}

// Release returns a carved partition to the pool. The logical device is
// detached first — in-flight and subsequent accesses through it fail —
// and its extent is then freed and coalesced, so a released partition's
// bytes are immediately re-carvable. Releasing a device twice, or one
// belonging to another MLD, is refused.
func (m *MLD) Release(ld *LogicalDevice) error {
	if ld == nil || ld.mld != m {
		return fmt.Errorf("cxl: mld %s: release of foreign logical device", m.name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := -1
	for i, p := range m.partitions {
		if p == ld {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("cxl: mld %s: logical device %s not carved here (double release?)", m.name, ld.Name())
	}
	// Detach, then drain accesses that passed the detached check before
	// it flipped — only then is the extent safe to hand back, or a
	// straggling write could land on bytes already re-carved for a new
	// partition.
	ld.view.detached.Store(true)
	ld.view.drain()
	if err := m.alloc.Free(Extent{Base: ld.base, Size: ld.size}); err != nil {
		ld.view.detached.Store(false)
		return fmt.Errorf("cxl: mld %s: %w", m.name, err)
	}
	m.partitions = append(m.partitions[:idx], m.partitions[idx+1:]...)
	return nil
}

// Partitions snapshots the currently carved logical devices.
func (m *MLD) Partitions() []*LogicalDevice {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*LogicalDevice, len(m.partitions))
	copy(out, m.partitions)
	return out
}

// LogicalDevice is one partition of an MLD, usable as an Endpoint.
type LogicalDevice struct {
	*Type3Device
	mld  *MLD
	base uint64
	size uint64
	view *partitionView
}

// Partition reports the device-local window inside the MLD.
func (ld *LogicalDevice) Partition() (base, size uint64) { return ld.base, ld.size }

// partitionView restricts a media device to a sub-range, implementing
// memdev.Device so the Type-3 machinery — including the burst path,
// which lands one multi-line ReadAt/WriteAt per burst here rather than
// one per line — is reused unchanged. A detached view (its partition
// was released back to the pool) refuses all access.
type partitionView struct {
	m        *MLD
	base     uint64
	size     uint64
	stats    memdev.Stats
	detached atomic.Bool
	// inflight counts accesses between the detached check and media
	// completion; Release drains it after flipping detached so no
	// access outlives the partition (see drain).
	inflight atomic.Int64
}

// drain blocks until accesses that began before detached flipped have
// completed — a grace period. Accesses never take the MLD lock, so
// draining under it cannot deadlock; the wait is bounded by one media
// access.
func (v *partitionView) drain() {
	for v.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

func (v *partitionView) Name() string { return v.m.media.Name() + "-part" }
func (v *partitionView) Capacity() units.Size {
	return units.Size(v.size)
}
func (v *partitionView) Persistent() bool        { return v.m.media.Persistent() }
func (v *partitionView) Profile() memdev.Profile { return v.m.media.Profile() }
func (v *partitionView) Stats() *memdev.Stats    { return &v.stats }
func (v *partitionView) PowerCycle()             { v.m.media.PowerCycle() }

func (v *partitionView) ReadAt(p []byte, off int64) error {
	v.inflight.Add(1)
	defer v.inflight.Add(-1)
	if v.detached.Load() {
		return fmt.Errorf("cxl: %s: partition released", v.Name())
	}
	if off < 0 || uint64(off)+uint64(len(p)) > v.size {
		return &memdev.AddrError{Device: v.Name(), Off: off, Len: len(p), Cap: v.Capacity()}
	}
	if err := v.m.media.ReadAt(p, int64(v.base)+off); err != nil {
		return err
	}
	v.stats.Reads.Add(1)
	v.stats.BytesRead.Add(int64(len(p)))
	return nil
}

func (v *partitionView) WriteAt(p []byte, off int64) error {
	v.inflight.Add(1)
	defer v.inflight.Add(-1)
	if v.detached.Load() {
		return fmt.Errorf("cxl: %s: partition released", v.Name())
	}
	if off < 0 || uint64(off)+uint64(len(p)) > v.size {
		return &memdev.AddrError{Device: v.Name(), Off: off, Len: len(p), Cap: v.Capacity()}
	}
	if err := v.m.media.WriteAt(p, int64(v.base)+off); err != nil {
		return err
	}
	v.stats.Writes.Add(1)
	v.stats.BytesWrite.Add(int64(len(p)))
	return nil
}

// newType3FromView builds a Type-3 endpoint over a partition view with a
// generic vendor identity.
func newType3FromView(name string, view memdev.Device) (*Type3Device, error) {
	return NewType3(name, CXLVendorID, 0x0D93, view)
}
