package cxl

import (
	"fmt"
	"sync"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// CXL 2.0 switching and pooling (paper §1.3: "CXL 2.0 expands the
// specification – among other capabilities – to memory pools using CXL
// switches on a device level"). A Switch exposes virtual PCIe-to-PCIe
// bridges (vPPBs) upstream — one per host — and binds each to a
// downstream endpoint, or to one logical device of a Multi-Logical
// Device (MLD) whose capacity is partitioned among hosts.

// Switch is a CXL 2.0 switch.
type Switch struct {
	name string

	mu         sync.RWMutex
	downstream map[string]Endpoint // port name -> device
	bindings   map[string]string   // vPPB (host port) -> downstream port
}

// NewSwitch builds an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{
		name:       name,
		downstream: make(map[string]Endpoint),
		bindings:   make(map[string]string),
	}
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.name }

// AddDownstream attaches an endpoint to a named downstream port.
func (sw *Switch) AddDownstream(port string, ep Endpoint) error {
	if ep == nil {
		return fmt.Errorf("cxl: switch %s: nil endpoint", sw.name)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.downstream[port]; ok {
		return fmt.Errorf("cxl: switch %s: downstream port %s already populated", sw.name, port)
	}
	sw.downstream[port] = ep
	return nil
}

// Bind connects a host-facing vPPB to a downstream port. A downstream
// device may be bound to at most one vPPB at a time (single-logical-
// device semantics; MLDs are partitioned first, then each logical device
// is bound independently).
func (sw *Switch) Bind(vppb, downstreamPort string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.downstream[downstreamPort]; !ok {
		return fmt.Errorf("cxl: switch %s: no downstream port %s", sw.name, downstreamPort)
	}
	if existing, ok := sw.bindings[vppb]; ok {
		return fmt.Errorf("cxl: switch %s: vPPB %s already bound to %s", sw.name, vppb, existing)
	}
	for v, d := range sw.bindings {
		if d == downstreamPort {
			return fmt.Errorf("cxl: switch %s: downstream %s already bound to vPPB %s", sw.name, downstreamPort, v)
		}
	}
	sw.bindings[vppb] = downstreamPort
	return nil
}

// Unbind releases a vPPB, returning its device to the pool.
func (sw *Switch) Unbind(vppb string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, ok := sw.bindings[vppb]; !ok {
		return fmt.Errorf("cxl: switch %s: vPPB %s not bound", sw.name, vppb)
	}
	delete(sw.bindings, vppb)
	return nil
}

// EndpointFor resolves the endpoint visible through a vPPB.
func (sw *Switch) EndpointFor(vppb string) (Endpoint, bool) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	port, ok := sw.bindings[vppb]
	if !ok {
		return nil, false
	}
	ep, ok := sw.downstream[port]
	return ep, ok
}

// Bindings returns a copy of the current vPPB map.
func (sw *Switch) Bindings() map[string]string {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	out := make(map[string]string, len(sw.bindings))
	for k, v := range sw.bindings {
		out[k] = v
	}
	return out
}

// MLD is a Multi-Logical Device: one physical Type-3 device whose
// capacity is partitioned into logical devices, each presentable to a
// different host. This is CXL 2.0's device-level pooling mechanism.
type MLD struct {
	name  string
	media memdev.Device

	mu         sync.Mutex
	partitions []*LogicalDevice
	nextDPA    uint64
}

// NewMLD wraps media as a poolable multi-logical device.
func NewMLD(name string, media memdev.Device) (*MLD, error) {
	if media == nil {
		return nil, fmt.Errorf("cxl: mld %s: nil media", name)
	}
	return &MLD{name: name, media: media}, nil
}

// Name returns the MLD name.
func (m *MLD) Name() string { return m.name }

// Remaining reports unpartitioned capacity.
func (m *MLD) Remaining() units.Size {
	m.mu.Lock()
	defer m.mu.Unlock()
	return units.Size(uint64(m.media.Capacity().Bytes()) - m.nextDPA)
}

// Carve allocates a logical device of the given size from the pool. The
// returned LogicalDevice is a full CXL Type-3 endpoint restricted to its
// partition (dynamic capacity in CXL 2.0/3.0 terms).
func (m *MLD) Carve(name string, size units.Size) (*LogicalDevice, error) {
	if size <= 0 || size%units.CacheLine != 0 {
		return nil, fmt.Errorf("cxl: mld %s: invalid partition size %d", m.name, size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nextDPA+uint64(size) > uint64(m.media.Capacity().Bytes()) {
		return nil, fmt.Errorf("cxl: mld %s: partition %s exceeds remaining capacity", m.name, size)
	}
	ld := &LogicalDevice{
		mld:  m,
		base: m.nextDPA,
		size: uint64(size),
	}
	var err error
	ld.view = &partitionView{m: m, base: m.nextDPA, size: uint64(size)}
	ld.Type3Device, err = newType3FromView(name, ld.view)
	if err != nil {
		return nil, err
	}
	m.nextDPA += uint64(size)
	m.partitions = append(m.partitions, ld)
	return ld, nil
}

// LogicalDevice is one partition of an MLD, usable as an Endpoint.
type LogicalDevice struct {
	*Type3Device
	mld  *MLD
	base uint64
	size uint64
	view *partitionView
}

// Partition reports the device-local window inside the MLD.
func (ld *LogicalDevice) Partition() (base, size uint64) { return ld.base, ld.size }

// partitionView restricts a media device to a sub-range, implementing
// memdev.Device so the Type-3 machinery — including the burst path,
// which lands one multi-line ReadAt/WriteAt per burst here rather than
// one per line — is reused unchanged.
type partitionView struct {
	m     *MLD
	base  uint64
	size  uint64
	stats memdev.Stats
}

func (v *partitionView) Name() string { return v.m.media.Name() + "-part" }
func (v *partitionView) Capacity() units.Size {
	return units.Size(v.size)
}
func (v *partitionView) Persistent() bool        { return v.m.media.Persistent() }
func (v *partitionView) Profile() memdev.Profile { return v.m.media.Profile() }
func (v *partitionView) Stats() *memdev.Stats    { return &v.stats }
func (v *partitionView) PowerCycle()             { v.m.media.PowerCycle() }

func (v *partitionView) ReadAt(p []byte, off int64) error {
	if off < 0 || uint64(off)+uint64(len(p)) > v.size {
		return &memdev.AddrError{Device: v.Name(), Off: off, Len: len(p), Cap: v.Capacity()}
	}
	if err := v.m.media.ReadAt(p, int64(v.base)+off); err != nil {
		return err
	}
	v.stats.Reads.Add(1)
	v.stats.BytesRead.Add(int64(len(p)))
	return nil
}

func (v *partitionView) WriteAt(p []byte, off int64) error {
	if off < 0 || uint64(off)+uint64(len(p)) > v.size {
		return &memdev.AddrError{Device: v.Name(), Off: off, Len: len(p), Cap: v.Capacity()}
	}
	if err := v.m.media.WriteAt(p, int64(v.base)+off); err != nil {
		return err
	}
	v.stats.Writes.Add(1)
	v.stats.BytesWrite.Add(int64(len(p)))
	return nil
}

// newType3FromView builds a Type-3 endpoint over a partition view with a
// generic vendor identity.
func newType3FromView(name string, view memdev.Device) (*Type3Device, error) {
	return NewType3(name, CXLVendorID, 0x0D93, view)
}
