package cxl

import (
	"fmt"

	"cxlpmem/internal/units"
)

// HDMDecoder translates host physical addresses (HPA) into device
// physical addresses (DPA). A Type-3 device exposes its memory through
// one or more decoders programmed by system software during enumeration;
// with interleaving, consecutive interleave granules of the HPA window
// rotate across a set of targets (CXL 2.0 switch-level pooling uses the
// same structure).
type HDMDecoder struct {
	// Base is the first HPA covered by this decoder.
	Base uint64
	// Size is the window length in bytes.
	Size uint64
	// InterleaveWays is the number of targets the window rotates
	// across (1 = no interleave).
	InterleaveWays int
	// InterleaveGranule is the rotation unit in bytes (256 B typical).
	InterleaveGranule uint64
	// TargetIndex is this device's position in the interleave set.
	TargetIndex int
	// DPABase is added to the decoded device-local offset.
	DPABase uint64

	committed bool
}

// Commit validates and locks the decoder, mirroring the lock-on-commit
// behaviour of real HDM decoder registers.
func (d *HDMDecoder) Commit() error {
	if d.Size == 0 {
		return fmt.Errorf("cxl: hdm: zero-size window")
	}
	if d.Base%uint64(units.CacheLine) != 0 {
		return fmt.Errorf("cxl: hdm: base %#x not line-aligned", d.Base)
	}
	if d.InterleaveWays <= 0 {
		d.InterleaveWays = 1
	}
	if d.InterleaveWays > 1 {
		if d.InterleaveGranule == 0 {
			d.InterleaveGranule = 256
		}
		if d.InterleaveGranule%uint64(units.CacheLine) != 0 {
			return fmt.Errorf("cxl: hdm: granule %d not a multiple of the line size", d.InterleaveGranule)
		}
		if d.TargetIndex < 0 || d.TargetIndex >= d.InterleaveWays {
			return fmt.Errorf("cxl: hdm: target index %d outside %d ways", d.TargetIndex, d.InterleaveWays)
		}
		if d.Size%(uint64(d.InterleaveWays)*d.InterleaveGranule) != 0 {
			return fmt.Errorf("cxl: hdm: size %d not a multiple of ways*granule", d.Size)
		}
	}
	d.committed = true
	return nil
}

// Committed reports whether the decoder has been committed.
func (d *HDMDecoder) Committed() bool { return d.committed }

// Share returns the number of bytes of the window this target backs:
// Size for a plain decoder, Size/ways for an interleaved one. The
// target's owned lines, taken in HPA order, enumerate the DPA range
// [DPABase, DPABase+Share()) contiguously — the property the strided
// burst path relies on.
func (d *HDMDecoder) Share() uint64 {
	if d.InterleaveWays <= 1 {
		return d.Size
	}
	return d.Size / uint64(d.InterleaveWays)
}

// Contains reports whether hpa falls inside the window and, for
// interleaved windows, belongs to this target.
func (d *HDMDecoder) Contains(hpa uint64) bool {
	if !d.committed || hpa < d.Base || hpa >= d.Base+d.Size {
		return false
	}
	if d.InterleaveWays <= 1 {
		return true
	}
	off := hpa - d.Base
	way := (off / d.InterleaveGranule) % uint64(d.InterleaveWays)
	return int(way) == d.TargetIndex
}

// Decode translates hpa into a DPA. ok is false when the address is
// outside the window or belongs to another interleave target.
func (d *HDMDecoder) Decode(hpa uint64) (dpa uint64, ok bool) {
	if !d.Contains(hpa) {
		return 0, false
	}
	off := hpa - d.Base
	if d.InterleaveWays <= 1 {
		return d.DPABase + off, true
	}
	g := d.InterleaveGranule
	chunk := off / (g * uint64(d.InterleaveWays)) // rotation round
	within := off % g
	return d.DPABase + chunk*g + within, true
}

// Encode is the inverse of Decode: it maps a device-local DPA back into
// the HPA space. ok is false if dpa is outside the decoder's share.
func (d *HDMDecoder) Encode(dpa uint64) (hpa uint64, ok bool) {
	if !d.committed {
		return 0, false
	}
	if dpa < d.DPABase {
		return 0, false
	}
	local := dpa - d.DPABase
	if d.InterleaveWays <= 1 {
		if local >= d.Size {
			return 0, false
		}
		return d.Base + local, true
	}
	g := d.InterleaveGranule
	share := d.Size / uint64(d.InterleaveWays)
	if local >= share {
		return 0, false
	}
	chunk := local / g
	within := local % g
	off := chunk*(g*uint64(d.InterleaveWays)) + uint64(d.TargetIndex)*g + within
	return d.Base + off, true
}

func (d *HDMDecoder) String() string {
	if d.InterleaveWays > 1 {
		return fmt.Sprintf("hdm[%#x+%#x, %d-way@%dB target %d]", d.Base, d.Size, d.InterleaveWays, d.InterleaveGranule, d.TargetIndex)
	}
	return fmt.Sprintf("hdm[%#x+%#x]", d.Base, d.Size)
}
