package cxl

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Submission/completion rings: the io_uring-shaped small-op data path.
//
// Every virtual channel owns one SQ/CQ ring pair. Callers enqueue
// fixed-size descriptors into the SQ lock-free (SubmitRead/SubmitWrite,
// and the synchronous methods, which are submit+flush+wait over the
// same path — there is exactly one data path through a port). A
// doorbell (Flush, or the first waiter) claims the queued span with a
// single CAS and moves the whole batch across the link in one VC
// acquisition: session and hook snapshots are loaded once, header-only
// submissions pack four to a CRC-protected flit (see flitKindSQ),
// data-bearing messages ride one flit per line, the endpoint services
// the decoded batch through one QueueHandler call (coalescing adjacent
// lines into single media accesses), and completions return packed four
// to a flit. Per-flit CRC/retry/trace/fault semantics are identical to
// the pre-ring path — a fault injected on one descriptor's flit retries
// that flit alone and never disturbs the rest of the batch.
//
// Ring discipline (slot states are per-position sequence numbers, the
// classic bounded-MPMC scheme, so wraparound is explicit and tested):
//
//	seq == pos            free: a producer may claim position pos
//	seq == pos+1          published: descriptor written, awaiting flush
//	seq == pos+2          done: completion filled in, awaiting consumption
//	seq == pos+RingSlots  consumed: free for the next lap's producer
//
// Head (flushHead) and tail are published with atomics; flushers claim
// disjoint [head, tail) spans by CAS, so concurrent submitters on one
// VC flush in parallel without a lock on the hot path. Every completion
// must be consumed exactly once — either Wait the token or drain it via
// Harvest; a submission stream that consumes neither eventually fills
// the ring and Submit* reports ErrRingFull.
const (
	// RingSlots is the per-VC submission-queue depth (power of two).
	RingSlots = 64
	ringMask  = RingSlots - 1
	// cqSlots is the per-VC completion-queue depth. Twice the SQ depth
	// absorbs entries left behind by Wait-consumed tokens (they are
	// dropped lazily; see postLocked).
	cqSlots = 2 * RingSlots
	cqMask  = cqSlots - 1
	// vcStride is how many consecutive lines share one VC in the
	// address-based dispatch (ringFor): batches of neighbouring
	// submissions stay VC-local (one doorbell, device-side run
	// coalescing) while sustained load still spreads across all NumVCs
	// rings.
	vcStride = 32
)

// descriptor kinds.
const (
	descLine  = uint8(iota) // MemRd / MemWr / MemWrPtl / MemInv
	descBurst               // MemRdBurst / MemWrBurst over d.p
)

// ringDesc is one fixed-size submission-queue descriptor.
type ringDesc struct {
	op   MemOpcode
	kind uint8
	// noCQ suppresses the CQ record: synchronous submissions are always
	// consumed by their waiter, so posting them would only leave stale
	// entries for Harvest to skip (io_uring's CQE-skip, applied to the
	// whole sync path).
	noCQ bool
	addr uint64
	mask uint64          // MemWrPtl byte mask
	out  *[LineSize]byte // MemRd destination (caller-owned, live until consumption)
	p    []byte          // burst payload (caller-owned, live until consumption)
	data [LineSize]byte  // MemWr/MemWrPtl payload, staged at submit
}

// Completion is a pooled completion token: submission returns one, and
// the caller consumes it exactly once — Wait, or implicitly by draining
// it with Harvest (then Wait must not be called). Tokens live in the
// ring's fixed slot pool; consuming one recycles its slot, so the
// steady state allocates nothing.
type Completion struct {
	ring *vcRing // nil for immediately-completed (adapter) tokens
	pos  uint64
	tag  uint16
	err  error
}

// Tag returns the wire tag the descriptor carried.
func (c *Completion) Tag() uint16 { return c.tag }

// immediatePool feeds tokens for data paths that complete at submit
// time (DeviceIO, evacuation reroutes): no ring is involved, Wait just
// reports the stored error and recycles the token.
var immediatePool = sync.Pool{New: func() any { return new(Completion) }}

func immediateCompletion(op MemOpcode, addr uint64, err error) *Completion {
	_ = op // the token carries only its outcome; op/addr context is in err
	_ = addr
	c := immediatePool.Get().(*Completion)
	c.ring, c.pos, c.tag, c.err = nil, 0, 0, err
	return c
}

// Wait blocks until the descriptor completes (flushing its ring if
// nobody else has rung the doorbell yet) and returns the transaction's
// error. It consumes the token: the caller must not touch it again.
func (c *Completion) Wait() error {
	r := c.ring
	if r == nil {
		err := c.err
		c.err = nil
		immediatePool.Put(c)
		return err
	}
	slot := &r.slots[c.pos&ringMask]
	if slot.seq.Load() < c.pos+2 {
		r.rp.flushVC(r)
		for slot.seq.Load() < c.pos+2 {
			runtime.Gosched()
		}
	}
	err := c.err
	slot.seq.CompareAndSwap(c.pos+2, c.pos+RingSlots)
	return err
}

// WaitTimeout is Wait with a per-descriptor deadline. On expiry it
// returns ErrTimeout and abandons the token: whoever eventually
// completes the descriptor consumes the slot, so the ring keeps
// cycling. The transaction's real outcome is then unknown and its
// completion is discarded (it never surfaces through Harvest either);
// the caller decides whether to requeue the operation or fail. A
// non-positive d degenerates to Wait.
func (c *Completion) WaitTimeout(d time.Duration) error {
	r := c.ring
	if r == nil || d <= 0 {
		return c.Wait()
	}
	slot := &r.slots[c.pos&ringMask]
	if slot.seq.Load() < c.pos+2 {
		r.rp.flushVC(r)
		deadline := time.Now().Add(d)
		for slot.seq.Load() < c.pos+2 {
			if time.Now().After(deadline) {
				return c.abandon(slot)
			}
			runtime.Gosched()
		}
	}
	err := c.err
	slot.seq.CompareAndSwap(c.pos+2, c.pos+RingSlots)
	return err
}

// abandon marks the slot so its completer self-consumes it, then
// double-checks for a completion that raced the deadline — if one
// landed, it is claimed as a normal wait would.
func (c *Completion) abandon(slot *sqSlot) error {
	slot.abandoned.Store(c.pos + 1)
	if slot.seq.Load() >= c.pos+2 {
		if slot.seq.CompareAndSwap(c.pos+2, c.pos+RingSlots) {
			slot.abandoned.CompareAndSwap(c.pos+1, 0)
			return c.err
		}
		// Someone else consumed it (the completer's abandoned sweep);
		// clear our mark if it is still ours.
		slot.abandoned.CompareAndSwap(c.pos+1, 0)
	}
	rp := c.ring.rp
	rp.timeouts.Add(1)
	return portErr(rp.name, "WaitTimeout", 0, ErrTimeout, "descriptor deadline exceeded; completion abandoned")
}

// Completed is one harvested completion-queue entry.
type Completed struct {
	// Tag is the wire tag of the completed descriptor.
	Tag uint16
	// Op is the submitted opcode.
	Op MemOpcode
	// Addr is the descriptor's HPA.
	Addr uint64
	// Err is the transaction outcome (nil on success).
	Err error
}

// cqRec is one CQ ring entry: the public record plus the slot position
// whose consumption it drives.
type cqRec struct {
	c   Completed
	pos uint64
}

// sqSlot is one SQ ring slot: the descriptor, its embedded completion
// token, and the position-based state word. abandoned carries pos+1
// when the waiter for that position gave up (WaitTimeout); the
// completer consumes such a slot itself so the ring never wedges on a
// departed waiter. The value is generation-tagged (not a bool) so a
// stale mark from a previous lap can never discard a live descriptor.
type sqSlot struct {
	seq       atomic.Uint64
	abandoned atomic.Uint64
	comp      Completion
	desc      ringDesc
}

// vcRing is one virtual channel's SQ/CQ pair plus its per-VC counters
// (the successor of the PR-2 virtualChannel: the tag sequence is now
// the ring position). Hot-path words are padded apart so producer,
// flusher and stats traffic do not false-share.
type vcRing struct {
	rp  *RootPort
	idx uint32
	_   [48]byte
	// tail is the next SQ position a producer claims.
	tail atomic.Uint64
	_    [56]byte
	// flushHead is the start of the next flush claim; [flushHead, tail)
	// is the queued-but-unclaimed span.
	flushHead atomic.Uint64
	_         [56]byte
	retries   atomic.Int64
	overflows atomic.Int64
	_         [48]byte

	// cqMu guards the completion queue; it is taken once per flushed
	// batch and once per Harvest call, never per descriptor. cqN mirrors
	// cqTail-cqHead (maintained under cqMu, read racily) so Harvest can
	// skip empty rings without taking their locks.
	cqMu   sync.Mutex
	cqHead uint64
	cqTail uint64
	cqN    atomic.Int64
	cq     [cqSlots]cqRec

	slots [RingSlots]sqSlot
}

func (r *vcRing) init(rp *RootPort, idx int) {
	r.rp = rp
	r.idx = uint32(idx)
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
		r.slots[i].comp.ring = r
	}
}

// tagAt derives a descriptor's wire tag from its ring position: VC
// index in the high bits, the position's low bits as the sequence. Two
// in-flight descriptors always differ in VC bits or sequence bits
// (RingSlots ≪ 2^vcTagBits), across any number of ring laps.
func (r *vcRing) tagAt(pos uint64) uint16 {
	return uint16(r.idx)<<vcTagBits | uint16(pos)&vcSeqMask
}

// submit claims one SQ slot and publishes the descriptor. errRingFull
// (unwrapped) reports a full ring; callers wrap or flush-and-retry.
func (r *vcRing) submit(kind uint8, noCQ bool, op MemOpcode, addr, mask uint64, out *[LineSize]byte, data *[LineSize]byte, p []byte) (*Completion, error) {
	for {
		t := r.tail.Load()
		slot := &r.slots[t&ringMask]
		seq := slot.seq.Load()
		if seq != t {
			if seq < t {
				// The slot's previous-lap occupant has not been consumed:
				// the ring is full.
				return nil, ErrRingFull
			}
			continue // tail moved under us; reload
		}
		if !r.tail.CompareAndSwap(t, t+1) {
			continue
		}
		d := &slot.desc
		d.kind, d.noCQ, d.op, d.addr, d.mask, d.out, d.p = kind, noCQ, op, addr, mask, out, p
		if data != nil {
			d.data = *data
		}
		slot.comp.pos, slot.comp.tag, slot.comp.err = t, r.tagAt(t), nil
		slot.seq.Store(t + 1)
		return &slot.comp, nil
	}
}

// complete fills a descriptor's token and publishes the done state.
// The CQ record is posted separately (postLocked) so a batch pays one
// lock, not one per descriptor. A slot whose waiter abandoned it
// (WaitTimeout expired) is consumed on the spot: the waiter is gone,
// and its stale CQ record, if any, will be skipped by Harvest.
func (r *vcRing) complete(slot *sqSlot, pos uint64, err error) {
	slot.comp.err = err
	slot.seq.Store(pos + 2)
	if slot.abandoned.Load() == pos+1 && slot.seq.CompareAndSwap(pos+2, pos+RingSlots) {
		slot.abandoned.CompareAndSwap(pos+1, 0)
	}
}

// postLocked appends completion records to the CQ under cqMu. A full CQ
// first drops entries whose slots were already consumed via Wait
// (stale, silent), then — only if genuinely out of space — drops the
// oldest live entry and counts the overflow, io_uring style: the ring
// never blocks on an unharvested CQ.
func (r *vcRing) postLocked(recs []cqRec) {
	r.cqMu.Lock()
	// Make room up front (rare): evict until the whole batch fits, so
	// the common full-space case pays no per-record capacity check.
	for int(r.cqTail-r.cqHead) > cqSlots-len(recs) {
		old := &r.cq[r.cqHead&cqMask]
		if r.slots[old.pos&ringMask].seq.Load() == old.pos+2 {
			r.overflows.Add(1)
		}
		old.c.Err = nil
		r.cqHead++
	}
	for i := range recs {
		r.cq[r.cqTail&cqMask] = recs[i]
		r.cqTail++
	}
	r.cqN.Store(int64(r.cqTail - r.cqHead))
	r.cqMu.Unlock()
}

// finish completes one descriptor and posts its CQ record (the
// single-descriptor form of complete+postLocked).
func (r *vcRing) finish(slot *sqSlot, pos uint64, err error) {
	if slot.desc.noCQ {
		r.complete(slot, pos, err)
		return
	}
	rec := cqRec{c: Completed{Tag: slot.comp.tag, Op: slot.desc.op, Addr: slot.desc.addr, Err: err}, pos: pos}
	r.complete(slot, pos, err)
	r.postLocked([]cqRec{rec})
}

// harvest drains up to len(dst) completions into dst, consuming their
// slots. Entries already consumed via Wait are skipped.
func (r *vcRing) harvest(dst []Completed) int {
	if len(dst) == 0 {
		return 0
	}
	n := 0
	r.cqMu.Lock()
	for r.cqHead != r.cqTail && n < len(dst) {
		rec := &r.cq[r.cqHead&cqMask]
		r.cqHead++
		if r.slots[rec.pos&ringMask].seq.CompareAndSwap(rec.pos+2, rec.pos+RingSlots) {
			dst[n] = rec.c
			n++
		}
		rec.c.Err = nil
	}
	r.cqN.Store(int64(r.cqTail - r.cqHead))
	r.cqMu.Unlock()
	return n
}

// pending reports whether the ring has queued-but-unflushed work.
func (r *vcRing) pending() bool { return r.flushHead.Load() != r.tail.Load() }

// flushScratch is the pooled working set of one flush: decoded
// requests/responses for the device batch, plus flit-packing staging.
type flushScratch struct {
	reqs  [RingSlots]MemReq
	resps [RingSlots]MemResp
	pos   [RingSlots]uint64
	slotp [RingSlots]*sqSlot
	errs  [RingSlots]error
	post  [RingSlots]cqRec
	sqes  [SQEntriesPerFlit]SQE
	sqIdx [SQEntriesPerFlit]int
	cqes  [CQEntriesPerFlit]CQE
	cqIdx [CQEntriesPerFlit]int
	dec   [SQEntriesPerFlit]SQE
	decCQ [CQEntriesPerFlit]CQE
}

var flushScratchPool = sync.Pool{New: func() any { return new(flushScratch) }}

// flushVC rings the doorbell on one VC: claim the queued span with a
// CAS and process it, repeating until the SQ drains. Concurrent callers
// claim disjoint spans and proceed in parallel.
func (rp *RootPort) flushVC(r *vcRing) {
	for {
		h := r.flushHead.Load()
		t := r.tail.Load()
		if h == t {
			return
		}
		if !r.flushHead.CompareAndSwap(h, t) {
			continue
		}
		rp.processSpan(r, h, t)
	}
}

// processSpan moves the claimed descriptor span [h, t) across the link:
// line descriptors accumulate into batches (flushed in order around any
// burst descriptor), bursts stream through the chunked burst path.
func (rp *RootPort) processSpan(r *vcRing, h, t uint64) {
	rp.doorbells.Add(1)
	s, serr := rp.ringSession()
	hk, hist, t0 := rp.tapPick(h, rp.hooks.Load(), descLine, OpMemRd, true)
	if hist != nil {
		defer hist.RecordSince(t0)
	}
	if t == h+1 {
		// Single descriptor (the synchronous submit+flush+wait shape):
		// process on the stack, skipping the batch scratch entirely.
		slot := &r.slots[h&ringMask]
		for slot.seq.Load() != h+1 {
			runtime.Gosched()
		}
		d := &slot.desc
		switch {
		case serr != nil:
			r.finish(slot, h, portErr(rp.name, d.op.String(), d.addr, serr, serr.Error()))
		case d.kind == descBurst:
			r.finish(slot, h, rp.ringBurst(s, hk, r, d, slot.comp.tag))
		default:
			r.finish(slot, h, rp.processSingle(r, slot, h, s, hk, slot.comp.tag))
		}
		return
	}
	sc := flushScratchPool.Get().(*flushScratch)
	n := 0
	for pos := h; pos < t; pos++ {
		slot := &r.slots[pos&ringMask]
		for slot.seq.Load() != pos+1 {
			// The producer claimed this position but has not published
			// yet; yield rather than spin so a preempted submitter can
			// finish its three stores.
			runtime.Gosched()
		}
		d := &slot.desc
		if serr != nil {
			r.finish(slot, pos, portErr(rp.name, d.op.String(), d.addr, serr, serr.Error()))
			continue
		}
		if d.kind == descBurst {
			if n > 0 {
				rp.runLineBatch(r, s, hk, sc, n)
				n = 0
			}
			r.finish(slot, pos, rp.ringBurst(s, hk, r, d, slot.comp.tag))
			continue
		}
		sc.pos[n] = pos
		sc.slotp[n] = slot
		n++
	}
	if n > 0 {
		rp.runLineBatch(r, s, hk, sc, n)
	}
	flushScratchPool.Put(sc)
}

// runLineBatch moves one batch of line descriptors: submissions across
// the wire in descriptor order (header-only entries packed four to a
// flit, data-bearing ones a flit each), one device queue call, then
// completions back (read data a flit each, statuses packed four to a
// flit). Wire faults are isolated per flit: a CRC retry re-sends only
// the failed flit, and an exhausted retry budget fails only the
// descriptors that flit carried.
func (rp *RootPort) runLineBatch(r *vcRing, s *portSession, hk *portHooks, sc *flushScratch, n int) {
	var f Flit

	// Phase 1: submissions out. nErr counts link-failed descriptors so
	// the clean (overwhelmingly common) batch skips every per-line error
	// probe downstream.
	nErr := 0
	pk := 0
	flushPack := func() {
		if pk == 0 {
			return
		}
		_, err := rp.moveSQ(s, hk, r, &f, sc.sqes[:pk], &sc.dec)
		for j := 0; j < pk; j++ {
			i := sc.sqIdx[j]
			if err != nil {
				d := &sc.slotp[i].desc
				sc.errs[i] = portErr(rp.name, d.op.String(), d.addr, ErrUncorrectable, "uncorrectable link error: "+err.Error())
				nErr++
				continue
			}
			e := &sc.dec[j]
			q := &sc.reqs[i]
			q.Opcode, q.Addr, q.Tag, q.Mask, q.Lines = e.Op, e.Addr, e.Tag, 0, 0
		}
		pk = 0
	}
	for i := 0; i < n; i++ {
		slot := sc.slotp[i]
		d := &slot.desc
		sc.errs[i] = nil
		switch d.op {
		case OpMemRd, OpMemInv:
			sc.sqes[pk] = SQE{Op: d.op, Tag: slot.comp.tag, Addr: d.addr}
			sc.sqIdx[pk] = i
			pk++
			if pk == SQEntriesPerFlit {
				flushPack()
			}
		default: // OpMemWr, OpMemWrPtl: payload rides a full request flit.
			flushPack()
			if err := rp.moveReq(s, hk, r, &f, d, slot.comp.tag, &sc.reqs[i]); err != nil {
				sc.errs[i] = portErr(rp.name, d.op.String(), d.addr, ErrUncorrectable, "uncorrectable link error: "+err.Error())
				nErr++
			}
		}
	}
	flushPack()

	// Phase 2: the endpoint services the decoded batch in one call.
	clean := nErr == 0
	if clean && s.queue != nil {
		s.queue.HandleMemQueue(sc.reqs[:n], sc.resps[:n])
	} else {
		for i := 0; i < n; i++ {
			if sc.errs[i] == nil {
				sc.resps[i] = s.endpoint.HandleMem(sc.reqs[i])
			}
		}
	}

	// Phase 3: completions back, in descriptor order.
	postN := 0
	done := func(i int, err error) {
		pos := sc.pos[i]
		slot := sc.slotp[i]
		if !slot.desc.noCQ {
			sc.post[postN] = cqRec{c: Completed{Tag: slot.comp.tag, Op: slot.desc.op, Addr: slot.desc.addr, Err: err}, pos: pos}
			postN++
		}
		r.complete(slot, pos, err)
	}
	pk = 0
	flushCQ := func() {
		if pk == 0 {
			return
		}
		_, err := rp.moveCQ(s, hk, r, &f, sc.cqes[:pk], &sc.decCQ)
		for j := 0; j < pk; j++ {
			i := sc.cqIdx[j]
			slot := sc.slotp[i]
			d := &slot.desc
			if err != nil {
				done(i, portErr(rp.name, d.op.String(), d.addr, ErrUncorrectable, "uncorrectable link error: "+err.Error()))
				continue
			}
			e := &sc.decCQ[j]
			if e.Tag != slot.comp.tag {
				done(i, portErr(rp.name, d.op.String(), d.addr, ErrTagMismatch, "completion tag mismatch"))
				continue
			}
			want := RespCmp
			if d.op == OpMemRd {
				want = RespMemData
			}
			if e.Status != want {
				done(i, portErr(rp.name, d.op.String(), d.addr, ErrBadResponse, "response "+e.Status.String()))
				continue
			}
			done(i, nil)
		}
		pk = 0
	}
	for i := 0; i < n; i++ {
		if nErr != 0 && sc.errs[i] != nil {
			flushCQ()
			done(i, sc.errs[i])
			sc.errs[i] = nil
			continue
		}
		slot := sc.slotp[i]
		d := &slot.desc
		resp := &sc.resps[i]
		if d.op == OpMemRd && resp.Opcode == RespMemData {
			// Read data returns in its own flit, decoded straight into
			// the caller's buffer.
			flushCQ()
			done(i, rp.moveRData(s, hk, r, &f, slot.comp.tag, uint32(sc.pos[i]), &resp.Data, d.out))
			continue
		}
		sc.cqes[pk] = CQE{Status: resp.Opcode, Tag: resp.Tag, Addr: d.addr}
		sc.cqIdx[pk] = i
		pk++
		if pk == CQEntriesPerFlit {
			flushCQ()
		}
	}
	flushCQ()
	if postN > 0 {
		r.postLocked(sc.post[:postN])
		for i := 0; i < postN; i++ {
			sc.post[i].c.Err = nil
		}
	}
}

// processSingle moves one line descriptor on the caller's stack — the
// synchronous path's shape — and returns its outcome; the caller
// finishes or frees the slot. Wire semantics match runLineBatch exactly
// (reads/invalidates as one packed SQ entry, writes as a full request
// flit, completions as read-data or one packed CQ entry).
func (rp *RootPort) processSingle(r *vcRing, slot *sqSlot, pos uint64, s *portSession, hk *portHooks, tag uint16) error {
	d := &slot.desc
	var f Flit
	var req MemReq
	var err error
	switch d.op {
	case OpMemRd, OpMemInv:
		var dec [SQEntriesPerFlit]SQE
		if _, e := rp.moveSQ(s, hk, r, &f, []SQE{{Op: d.op, Tag: tag, Addr: d.addr}}, &dec); e != nil {
			err = portErr(rp.name, d.op.String(), d.addr, ErrUncorrectable, "uncorrectable link error: "+e.Error())
		} else {
			req = MemReq{Opcode: dec[0].Op, Addr: dec[0].Addr, Tag: dec[0].Tag}
		}
	default: // OpMemWr, OpMemWrPtl
		if e := rp.moveReq(s, hk, r, &f, d, tag, &req); e != nil {
			err = portErr(rp.name, d.op.String(), d.addr, ErrUncorrectable, "uncorrectable link error: "+e.Error())
		}
	}
	if err == nil {
		resp := s.endpoint.HandleMem(req)
		if d.op == OpMemRd && resp.Opcode == RespMemData {
			err = rp.moveRData(s, hk, r, &f, tag, uint32(pos), &resp.Data, d.out)
		} else {
			var dec [CQEntriesPerFlit]CQE
			if _, e := rp.moveCQ(s, hk, r, &f, []CQE{{Status: resp.Opcode, Tag: resp.Tag, Addr: d.addr}}, &dec); e != nil {
				err = portErr(rp.name, d.op.String(), d.addr, ErrUncorrectable, "uncorrectable link error: "+e.Error())
			} else if dec[0].Tag != tag {
				err = portErr(rp.name, d.op.String(), d.addr, ErrTagMismatch, "completion tag mismatch")
			} else {
				want := RespCmp
				if d.op == OpMemRd {
					want = RespMemData
				}
				if dec[0].Status != want {
					err = portErr(rp.name, d.op.String(), d.addr, ErrBadResponse, "response "+dec[0].Status.String())
				}
			}
		}
	}
	return err
}

// moveSQ pushes one packed submission flit over the wire with
// link-level retry, returning the decoded entries the device would see.
func (rp *RootPort) moveSQ(s *portSession, h *portHooks, r *vcRing, f *Flit, entries []SQE, dst *[SQEntriesPerFlit]SQE) (int, error) {
	for attempt := 0; ; attempt++ {
		EncodeSQInto(f, entries)
		rp.moveFlit(h, f)
		n, err := DecodeSQInto(dst, f)
		if err == nil {
			return n, nil
		}
		h.flitErr(f)
		cfg := rp.cfg.Load()
		if attempt >= cfg.MaxLinkRetries {
			s.uncorrectable()
			return 0, err
		}
		s.retry(r)
		rp.backoff(cfg, attempt, entries[0].Addr)
	}
}

// moveCQ pushes one packed completion flit over the wire with retry.
func (rp *RootPort) moveCQ(s *portSession, h *portHooks, r *vcRing, f *Flit, entries []CQE, dst *[CQEntriesPerFlit]CQE) (int, error) {
	for attempt := 0; ; attempt++ {
		EncodeCQInto(f, entries)
		rp.moveFlit(h, f)
		n, err := DecodeCQInto(dst, f)
		if err == nil {
			return n, nil
		}
		h.flitErr(f)
		cfg := rp.cfg.Load()
		if attempt >= cfg.MaxLinkRetries {
			s.uncorrectable()
			return 0, err
		}
		s.retry(r)
		rp.backoff(cfg, attempt, entries[0].Addr)
	}
}

// moveReq pushes one full request flit (payload-carrying submission)
// over the wire with retry, encoding straight from the descriptor —
// the payload crosses the wire without an intermediate MemReq copy —
// and decoding into dst.
func (rp *RootPort) moveReq(s *portSession, h *portHooks, r *vcRing, f *Flit, d *ringDesc, tag uint16, dst *MemReq) error {
	for attempt := 0; ; attempt++ {
		EncodeReqFieldsInto(f, d.op, tag, d.addr, d.mask, &d.data)
		rp.moveFlit(h, f)
		err := DecodeReqInto(dst, f)
		if err == nil {
			return nil
		}
		h.flitErr(f)
		cfg := rp.cfg.Load()
		if attempt >= cfg.MaxLinkRetries {
			s.uncorrectable()
			return err
		}
		s.retry(r)
		rp.backoff(cfg, attempt, d.addr)
	}
}

// moveRData pushes one read-data return flit over the wire with retry,
// decoding the payload straight into the caller's line buffer. On error
// the buffer contents are undefined.
func (rp *RootPort) moveRData(s *portSession, h *portHooks, r *vcRing, f *Flit, tag uint16, seq uint32, src, dst *[LineSize]byte) error {
	for attempt := 0; ; attempt++ {
		EncodeDataInto(f, tag, seq, src)
		rp.moveFlit(h, f)
		gotTag, gotSeq, err := DecodeDataInto(dst, f)
		if err == nil && gotTag == tag && gotSeq == seq {
			return nil
		}
		if err == nil {
			// Reordered delivery: NAK and retransmit, like a CRC failure.
			err = portErr(rp.name, "MemRd", 0, ErrTagMismatch, "data flit tag/seq mismatch")
		}
		h.flitErr(f)
		cfg := rp.cfg.Load()
		if attempt >= cfg.MaxLinkRetries {
			s.uncorrectable()
			return portErr(rp.name, "MemRd", 0, ErrUncorrectable, "uncorrectable link error on data flit: "+err.Error())
		}
		s.retry(r)
		rp.backoff(cfg, attempt, uint64(tag))
	}
}

// ringBurst streams one burst descriptor through the chunked burst
// path, reusing the descriptor's tag for every chunk (chunks are
// strictly sequential, so the tag is never ambiguous in flight).
func (rp *RootPort) ringBurst(s *portSession, hk *portHooks, r *vcRing, d *ringDesc, tag uint16) error {
	hpa, p := d.addr, d.p
	write := d.op == OpMemWrBurst
	for len(p) > 0 {
		n := len(p)
		if n > maxBurstBytes {
			n = maxBurstBytes
		}
		var err error
		if write {
			err = rp.writeBurstChunk(s, hk, r, tag, hpa, p[:n])
		} else {
			err = rp.readBurstChunk(s, hk, r, tag, hpa, p[:n])
		}
		if err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	return nil
}
