package cxl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// DeviceType is the CXL 1.1 device taxonomy (§1.3): accelerators with
// cache only (Type 1), cache with attached memory (Type 2), and memory
// expansion (Type 3).
type DeviceType int

const (
	// Type1 is a caching accelerator without HDM.
	Type1 DeviceType = 1
	// Type2 is an accelerator with attached device memory.
	Type2 DeviceType = 2
	// Type3 is a memory-expansion device — the paper's prototype.
	Type3 DeviceType = 3
)

func (t DeviceType) String() string { return fmt.Sprintf("Type%d", int(t)) }

// Endpoint is any CXL device that can be attached to a root port (or a
// switch downstream port).
type Endpoint interface {
	// Name identifies the endpoint.
	Name() string
	// DeviceType returns the CXL device class.
	DeviceType() DeviceType
	// Config exposes the CXL.io configuration space.
	Config() *ConfigSpace
	// HandleMem services one CXL.mem request. Type 1 devices return
	// RespErr for all of them.
	HandleMem(MemReq) MemResp
}

// MemStats counts CXL.mem transactions at an endpoint.
type MemStats struct {
	Reads         atomic.Int64
	Writes        atomic.Int64
	PartialWrites atomic.Int64
	Invalidates   atomic.Int64
	Errors        atomic.Int64
}

// Type3Device is a CXL memory-expansion endpoint backed by a media
// device (the prototype's DDR4 "HDM subsystem", §2.2).
type Type3Device struct {
	name  string
	media memdev.Device
	cfg   ConfigSpace
	stats MemStats

	mu       sync.RWMutex
	decoders []*HDMDecoder
	poisoned func(dpa uint64) bool
}

// NewType3 builds a memory-expansion endpoint over the given media. The
// config space is initialised with the CXL class code and a device DVSEC
// advertising CXL.io + CXL.mem.
func NewType3(name string, vendor, deviceID uint16, media memdev.Device) (*Type3Device, error) {
	if media == nil {
		return nil, fmt.Errorf("cxl: %s: nil media", name)
	}
	d := &Type3Device{name: name, media: media}
	d.cfg.InitIdentity(vendor, deviceID, ClassMemoryCXL)
	d.cfg.InstallCXLDVSEC(CapIO|CapMem, uint64(media.Capacity().Bytes()))
	return d, nil
}

// Name implements Endpoint.
func (d *Type3Device) Name() string { return d.name }

// DeviceType implements Endpoint.
func (d *Type3Device) DeviceType() DeviceType { return Type3 }

// Config implements Endpoint.
func (d *Type3Device) Config() *ConfigSpace { return &d.cfg }

// Media exposes the backing device (e.g. for battery/persistence checks).
func (d *Type3Device) Media() memdev.Device { return d.media }

// Stats exposes transaction counters.
func (d *Type3Device) Stats() *MemStats { return &d.stats }

// ProgramDecoder installs and commits an HDM decoder. Multiple decoders
// may cover disjoint HPA windows (the prototype exposes the same memory
// volume to two NUMA nodes through two windows, §2.2).
func (d *Type3Device) ProgramDecoder(dec *HDMDecoder) error {
	if err := dec.Commit(); err != nil {
		return err
	}
	maxDPA := dec.DPABase + dec.Size/uint64(dec.InterleaveWays)
	if dec.InterleaveWays <= 1 {
		maxDPA = dec.DPABase + dec.Size
	}
	if maxDPA > uint64(d.media.Capacity().Bytes()) {
		return fmt.Errorf("cxl: %s: decoder %v exceeds media capacity %v", d.name, dec, d.media.Capacity())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.decoders = append(d.decoders, dec)
	return nil
}

// Decoders returns the committed decoders.
func (d *Type3Device) Decoders() []*HDMDecoder {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*HDMDecoder, len(d.decoders))
	copy(out, d.decoders)
	return out
}

// decode finds the decoder owning hpa.
func (d *Type3Device) decode(hpa uint64) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, dec := range d.decoders {
		if dpa, ok := dec.Decode(hpa); ok {
			return dpa, true
		}
	}
	return 0, false
}

// HandleMem implements the CXL.mem transaction layer for a Type-3
// endpoint: it turns M2S requests into HDM accesses against the media.
func (d *Type3Device) HandleMem(req MemReq) MemResp {
	resp := MemResp{Tag: req.Tag}
	dpa, ok := d.decode(req.Addr)
	if !ok {
		d.stats.Errors.Add(1)
		resp.Opcode = RespErr
		return resp
	}
	if d.poisonCheck(dpa) {
		// Poisoned line: real CXL returns the data with poison
		// signalling; we surface it as an error response the host
		// must handle (RAS path).
		d.stats.Errors.Add(1)
		resp.Opcode = RespErr
		return resp
	}
	switch req.Opcode {
	case OpMemRd:
		if err := d.media.ReadAt(resp.Data[:], int64(dpa)); err != nil {
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		d.stats.Reads.Add(1)
		resp.Opcode = RespMemData
	case OpMemWr:
		if err := d.media.WriteAt(req.Data[:], int64(dpa)); err != nil {
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		d.stats.Writes.Add(1)
		resp.Opcode = RespCmp
	case OpMemWrPtl:
		// Read-modify-write under the byte mask.
		var line [LineSize]byte
		if err := d.media.ReadAt(line[:], int64(dpa)); err != nil {
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		for i := 0; i < LineSize; i++ {
			if req.Mask&(1<<uint(i)) != 0 {
				line[i] = req.Data[i]
			}
		}
		if err := d.media.WriteAt(line[:], int64(dpa)); err != nil {
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		d.stats.PartialWrites.Add(1)
		resp.Opcode = RespCmp
	case OpMemInv:
		d.stats.Invalidates.Add(1)
		resp.Opcode = RespCmp
	default:
		d.stats.Errors.Add(1)
		resp.Opcode = RespErr
	}
	return resp
}

// SetPoisonChecker installs the RAS hook consulted on every HDM access
// (the device Mailbox registers its poison list here).
func (d *Type3Device) SetPoisonChecker(f func(dpa uint64) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.poisoned = f
}

func (d *Type3Device) poisonCheck(dpa uint64) bool {
	d.mu.RLock()
	f := d.poisoned
	d.mu.RUnlock()
	return f != nil && f(dpa)
}

func (d *Type3Device) String() string {
	return fmt.Sprintf("%s: CXL Type3, %s HDM (%s)", d.name, d.media.Capacity(), d.media.Name())
}

// Type1Device is a caching accelerator: CXL.cache + CXL.io, no HDM. It
// exists so enumeration can classify mixed hierarchies; the paper's
// experiments use Type 3 only.
type Type1Device struct {
	name string
	cfg  ConfigSpace
}

// NewType1 builds a cache-only accelerator endpoint.
func NewType1(name string, vendor, deviceID uint16) *Type1Device {
	d := &Type1Device{name: name}
	d.cfg.InitIdentity(vendor, deviceID, 0x120000) // processing accelerator
	d.cfg.InstallCXLDVSEC(CapIO|CapCache, 0)
	return d
}

// Name implements Endpoint.
func (d *Type1Device) Name() string { return d.name }

// DeviceType implements Endpoint.
func (d *Type1Device) DeviceType() DeviceType { return Type1 }

// Config implements Endpoint.
func (d *Type1Device) Config() *ConfigSpace { return &d.cfg }

// HandleMem always fails: Type 1 devices expose no HDM.
func (d *Type1Device) HandleMem(req MemReq) MemResp {
	return MemResp{Tag: req.Tag, Opcode: RespErr}
}

// Type2Device is an accelerator with attached memory: it embeds the
// Type-3 HDM machinery and additionally advertises CXL.cache.
type Type2Device struct {
	*Type3Device
}

// NewType2 builds an accelerator-with-memory endpoint.
func NewType2(name string, vendor, deviceID uint16, media memdev.Device) (*Type2Device, error) {
	t3, err := NewType3(name, vendor, deviceID, media)
	if err != nil {
		return nil, err
	}
	d := &Type2Device{Type3Device: t3}
	d.cfg.InstallCXLDVSEC(CapIO|CapCache|CapMem, uint64(media.Capacity().Bytes()))
	return d, nil
}

// DeviceType implements Endpoint.
func (d *Type2Device) DeviceType() DeviceType { return Type2 }

// lineAligned reports whether an access is aligned to the CXL line size.
func lineAligned(addr uint64) bool { return addr%uint64(units.CacheLine) == 0 }
