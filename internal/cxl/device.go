package cxl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// DeviceType is the CXL 1.1 device taxonomy (§1.3): accelerators with
// cache only (Type 1), cache with attached memory (Type 2), and memory
// expansion (Type 3).
type DeviceType int

const (
	// Type1 is a caching accelerator without HDM.
	Type1 DeviceType = 1
	// Type2 is an accelerator with attached device memory.
	Type2 DeviceType = 2
	// Type3 is a memory-expansion device — the paper's prototype.
	Type3 DeviceType = 3
)

func (t DeviceType) String() string { return fmt.Sprintf("Type%d", int(t)) }

// Endpoint is any CXL device that can be attached to a root port (or a
// switch downstream port).
type Endpoint interface {
	// Name identifies the endpoint.
	Name() string
	// DeviceType returns the CXL device class.
	DeviceType() DeviceType
	// Config exposes the CXL.io configuration space.
	Config() *ConfigSpace
	// HandleMem services one CXL.mem request. Type 1 devices return
	// RespErr for all of them.
	HandleMem(MemReq) MemResp
}

// BurstHandler is implemented by endpoints that service multi-line burst
// requests (OpMemRdBurst/OpMemWrBurst) natively: one HDM media access
// for the whole burst instead of one per line. payload holds
// req.Lines×LineSize bytes — the data to store for a write burst, the
// buffer the device fills for a read burst. Ports fall back to per-line
// HandleMem calls for endpoints that do not implement it.
type BurstHandler interface {
	HandleMemBurst(req MemReq, payload []byte) MemResp
}

// QueueHandler is implemented by endpoints that service a flushed ring
// batch in one call: len(reqs) == len(resps), resps[i] answers reqs[i].
// Requests are independent line transactions (a failing request fails
// alone), but the device may exploit batch shape — Type3Device
// coalesces runs of adjacent same-opcode lines into single media
// accesses and charges its counters once per batch instead of once per
// line. Ports fall back to per-request HandleMem calls for endpoints
// that do not implement it.
type QueueHandler interface {
	HandleMemQueue(reqs []MemReq, resps []MemResp)
}

// MemStats counts CXL.mem transactions at an endpoint. Reads/Writes
// count single-line requests; bursts are counted separately (one
// ReadBursts/WriteBursts increment per burst header, with BurstLines
// accumulating the data-flit total). LineFallbacks counts bursts that
// could not use a single media access and degraded to per-line decode —
// a span crossing decoder windows. A persistently non-zero rate under
// bulk traffic means a misconfigured window is silently costing ~50×;
// interleaved windows served by the strided path do not count here.
type MemStats struct {
	Reads         atomic.Int64
	Writes        atomic.Int64
	PartialWrites atomic.Int64
	Invalidates   atomic.Int64
	Errors        atomic.Int64
	ReadBursts    atomic.Int64
	WriteBursts   atomic.Int64
	BurstLines    atomic.Int64
	LineFallbacks atomic.Int64
}

// Type3Device is a CXL memory-expansion endpoint backed by a media
// device (the prototype's DDR4 "HDM subsystem", §2.2).
type Type3Device struct {
	name  string
	media memdev.Device
	cfg   ConfigSpace
	stats MemStats

	mu           sync.RWMutex
	decoders     []*HDMDecoder
	poisoned     func(dpa uint64) bool
	poisonedSpan func(dpa, n uint64) bool
	// snap caches an immutable copy of the decoder list and RAS hook:
	// HandleMem runs on every line transaction and must not pay a
	// read-lock round trip for configuration that changes only at
	// enumeration time.
	snap atomic.Pointer[deviceSnapshot]
}

// deviceSnapshot is the immutable hot-path view of the device config.
type deviceSnapshot struct {
	decoders     []*HDMDecoder
	poisoned     func(dpa uint64) bool
	poisonedSpan func(dpa, n uint64) bool
}

// publish refreshes the hot-path snapshot; callers hold d.mu.
func (d *Type3Device) publish() {
	d.snap.Store(&deviceSnapshot{decoders: d.decoders, poisoned: d.poisoned, poisonedSpan: d.poisonedSpan})
}

// snapshot returns the current hot-path view, which may be empty.
func (d *Type3Device) snapshot() *deviceSnapshot {
	if s := d.snap.Load(); s != nil {
		return s
	}
	return &deviceSnapshot{}
}

// NewType3 builds a memory-expansion endpoint over the given media. The
// config space is initialised with the CXL class code and a device DVSEC
// advertising CXL.io + CXL.mem.
func NewType3(name string, vendor, deviceID uint16, media memdev.Device) (*Type3Device, error) {
	if media == nil {
		return nil, fmt.Errorf("cxl: %s: nil media", name)
	}
	d := &Type3Device{name: name, media: media}
	d.cfg.InitIdentity(vendor, deviceID, ClassMemoryCXL)
	d.cfg.InstallCXLDVSEC(CapIO|CapMem, uint64(media.Capacity().Bytes()))
	return d, nil
}

// Name implements Endpoint.
func (d *Type3Device) Name() string { return d.name }

// DeviceType implements Endpoint.
func (d *Type3Device) DeviceType() DeviceType { return Type3 }

// Config implements Endpoint.
func (d *Type3Device) Config() *ConfigSpace { return &d.cfg }

// Media exposes the backing device (e.g. for battery/persistence checks).
func (d *Type3Device) Media() memdev.Device { return d.media }

// Stats exposes transaction counters.
func (d *Type3Device) Stats() *MemStats { return &d.stats }

// ProgramDecoder installs and commits an HDM decoder. Multiple decoders
// may cover disjoint HPA windows (the prototype exposes the same memory
// volume to two NUMA nodes through two windows, §2.2).
func (d *Type3Device) ProgramDecoder(dec *HDMDecoder) error {
	if err := dec.Commit(); err != nil {
		return err
	}
	maxDPA := dec.DPABase + dec.Size/uint64(dec.InterleaveWays)
	if dec.InterleaveWays <= 1 {
		maxDPA = dec.DPABase + dec.Size
	}
	if maxDPA > uint64(d.media.Capacity().Bytes()) {
		return fmt.Errorf("cxl: %s: decoder %v exceeds media capacity %v", d.name, dec, d.media.Capacity())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.decoders = append(d.decoders, dec)
	d.publish()
	return nil
}

// RemoveDecoder uninstalls a previously programmed decoder (matched by
// identity) and republishes the hot-path snapshot. Hot-add uses this to
// tear down the temporary spare windows an evacuation programmed, so a
// later evacuation onto the same device starts from a clean decoder
// list. In-flight transactions that already resolved an address through
// the removed decoder complete normally — they hold the old snapshot.
func (d *Type3Device) RemoveDecoder(dec *HDMDecoder) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, have := range d.decoders {
		if have == dec {
			d.decoders = append(append([]*HDMDecoder{}, d.decoders[:i]...), d.decoders[i+1:]...)
			d.publish()
			return nil
		}
	}
	return fmt.Errorf("cxl: %s: decoder %v not programmed here", d.name, dec)
}

// Decoders returns the committed decoders.
func (d *Type3Device) Decoders() []*HDMDecoder {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*HDMDecoder, len(d.decoders))
	copy(out, d.decoders)
	return out
}

// decode finds the decoder owning hpa.
func (d *Type3Device) decode(hpa uint64) (uint64, bool) {
	for _, dec := range d.snapshot().decoders {
		if dpa, ok := dec.Decode(hpa); ok {
			return dpa, true
		}
	}
	return 0, false
}

// lookup resolves hpa and fetches the RAS hook from the lock-free
// snapshot — the per-transaction fast path.
func (d *Type3Device) lookup(hpa uint64) (dpa uint64, poisoned func(uint64) bool, ok bool) {
	s := d.snapshot()
	for _, dec := range s.decoders {
		if dpa, ok = dec.Decode(hpa); ok {
			poisoned = s.poisoned
			break
		}
	}
	return
}

// decodeSpan resolves a [hpa, hpa+n) span that maps to one contiguous
// DPA range through one decoder, fetching the RAS hook from the same
// snapshot. The decoder is chosen exactly as per-line decode() would
// choose it (first match in programming order), so burst and line
// transactions always agree on the target DPA. Two shapes qualify:
//
//   - a plain decoder whose window covers the whole HPA span, and
//   - an interleaved decoder, where a burst names n/LineSize
//     consecutive *target-owned* lines starting at hpa (granule-strided
//     in HPA space). Owned lines enumerate the target's DPA share in
//     order, so the burst is one contiguous media access — this is what
//     keeps interleaved windows off the per-line path entirely.
//
// ok is false only when the span overruns the window (or the target's
// share) — callers then fall back to per-line decode, counting the
// fallback.
func (d *Type3Device) decodeSpan(hpa, n uint64) (dpa uint64, s *deviceSnapshot, ok bool) {
	s = d.snapshot()
	for _, dec := range s.decoders {
		if candidate, hit := dec.Decode(hpa); hit {
			if dec.InterleaveWays <= 1 {
				if hpa+n <= dec.Base+dec.Size {
					dpa, ok = candidate, true
				}
			} else if candidate+n <= dec.DPABase+dec.Share() {
				dpa, ok = candidate, true
			}
			return
		}
	}
	return
}

// linePool recycles line staging buffers so HandleMem can call the media
// interface without forcing its request/response to escape to the heap —
// the single-line data path is allocation-free in steady state.
var linePool = sync.Pool{New: func() any { return new([LineSize]byte) }}

// HandleMem implements the CXL.mem transaction layer for a Type-3
// endpoint: it turns M2S requests into HDM accesses against the media.
func (d *Type3Device) HandleMem(req MemReq) MemResp {
	resp := MemResp{Tag: req.Tag}
	dpa, poisoned, ok := d.lookup(req.Addr)
	if !ok {
		d.stats.Errors.Add(1)
		resp.Opcode = RespErr
		return resp
	}
	if poisoned != nil && poisoned(dpa) {
		// Poisoned line: real CXL returns the data with poison
		// signalling; we surface it as an error response the host
		// must handle (RAS path). A demand access consumed the error,
		// so it counts as uncorrectable.
		d.media.Stats().Uncorrectable.Add(1)
		d.stats.Errors.Add(1)
		resp.Opcode = RespErr
		return resp
	}
	switch req.Opcode {
	case OpMemRd:
		// The line stages through a pooled buffer rather than
		// resp.Data directly: handing resp.Data[:] to the media
		// interface would force resp onto the heap.
		line := linePool.Get().(*[LineSize]byte)
		if err := d.media.ReadAt(line[:], int64(dpa)); err != nil {
			linePool.Put(line)
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		resp.Data = *line
		linePool.Put(line)
		d.stats.Reads.Add(1)
		resp.Opcode = RespMemData
	case OpMemWr:
		line := linePool.Get().(*[LineSize]byte)
		*line = req.Data
		if err := d.media.WriteAt(line[:], int64(dpa)); err != nil {
			linePool.Put(line)
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		linePool.Put(line)
		d.stats.Writes.Add(1)
		resp.Opcode = RespCmp
	case OpMemWrPtl:
		// Read-modify-write under the byte mask.
		line := linePool.Get().(*[LineSize]byte)
		if err := d.media.ReadAt(line[:], int64(dpa)); err != nil {
			linePool.Put(line)
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		for i := 0; i < LineSize; i++ {
			if req.Mask&(1<<uint(i)) != 0 {
				line[i] = req.Data[i]
			}
		}
		if err := d.media.WriteAt(line[:], int64(dpa)); err != nil {
			linePool.Put(line)
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		linePool.Put(line)
		d.stats.PartialWrites.Add(1)
		resp.Opcode = RespCmp
	case OpMemInv:
		d.stats.Invalidates.Add(1)
		resp.Opcode = RespCmp
	default:
		// Burst opcodes carry their payload in dedicated data flits and
		// must arrive through HandleMemBurst; seeing one here is a
		// protocol error, as is any unknown opcode.
		d.stats.Errors.Add(1)
		resp.Opcode = RespErr
	}
	return resp
}

// snapDecode resolves hpa through a fixed snapshot (one consistent view
// for a whole queued batch).
func snapDecode(s *deviceSnapshot, hpa uint64) (uint64, bool) {
	for _, dec := range s.decoders {
		if dpa, ok := dec.Decode(hpa); ok {
			return dpa, true
		}
	}
	return 0, false
}

// HandleMemQueue implements QueueHandler: it services one flushed ring
// batch against a single decoder/RAS snapshot. Runs of adjacent
// same-opcode MemRd/MemWr lines (contiguous in DPA space) collapse into
// one media access staged through the burst buffer pool, and the
// read/write counters are charged once per run — the device-side half
// of doorbell batching. Everything else (MemWrPtl, MemInv, unmapped or
// poisoned lines, run breaks) falls through to the per-request path
// with identical semantics.
func (d *Type3Device) HandleMemQueue(reqs []MemReq, resps []MemResp) {
	if len(reqs) == 1 {
		resps[0] = d.HandleMem(reqs[0])
		return
	}
	s := d.snapshot()
	var nRd, nWr int64
	i := 0
	for i < len(reqs) {
		req := &reqs[i]
		op := req.Opcode
		if op != OpMemRd && op != OpMemWr {
			resps[i] = d.HandleMem(*req)
			i++
			continue
		}
		dpa, ok := snapDecode(s, req.Addr)
		if !ok {
			resps[i] = d.HandleMem(*req) // per-request path counts the error
			i++
			continue
		}
		// Extend the run while the next request is the same opcode on
		// the next DPA line. Poison is probed once for the whole run
		// below, not per line here.
		j := i + 1
		for j < len(reqs) && j-i < MaxBurstLines {
			r2 := &reqs[j]
			if r2.Opcode != op {
				break
			}
			dpa2, ok2 := snapDecode(s, r2.Addr)
			if !ok2 || dpa2 != dpa+uint64((j-i)*LineSize) {
				break
			}
			j++
		}
		n := j - i
		// One span-granular RAS probe covers the run; a hit drops the
		// whole run to the per-request path, which re-checks line by
		// line and charges errors exactly as before.
		dirty := false
		switch {
		case s.poisonedSpan != nil:
			dirty = s.poisonedSpan(dpa, uint64(n*LineSize))
		case s.poisoned != nil:
			for k := 0; k < n; k++ {
				if s.poisoned(dpa + uint64(k*LineSize)) {
					dirty = true
					break
				}
			}
		}
		if n == 1 || dirty {
			resps[i] = d.HandleMem(*req)
			i++
			continue
		}
		buf := burstBufPool.Get().(*[maxBurstBytes]byte)
		span := buf[:n*LineSize]
		var err error
		if op == OpMemRd {
			err = d.media.ReadAt(span, int64(dpa))
		} else {
			for k := 0; k < n; k++ {
				copy(span[k*LineSize:(k+1)*LineSize], reqs[i+k].Data[:])
			}
			err = d.media.WriteAt(span, int64(dpa))
		}
		for k := 0; k < n; k++ {
			r := &resps[i+k]
			r.Tag = reqs[i+k].Tag
			switch {
			case err != nil:
				r.Opcode = RespErr
				d.stats.Errors.Add(1)
			case op == OpMemRd:
				copy(r.Data[:], span[k*LineSize:(k+1)*LineSize])
				r.Opcode = RespMemData
			default:
				r.Opcode = RespCmp
			}
		}
		burstBufPool.Put(buf)
		if err == nil {
			if op == OpMemRd {
				nRd += int64(n)
			} else {
				nWr += int64(n)
			}
		}
		i = j
	}
	if nRd > 0 {
		d.stats.Reads.Add(nRd)
	}
	if nWr > 0 {
		d.stats.Writes.Add(nWr)
	}
}

// HandleMemBurst implements BurstHandler: it services a multi-line burst
// with a single media access when the span maps to one contiguous DPA
// range through one HDM decoder — plain windows and interleaved windows
// alike (an interleaved burst names consecutive target-owned lines; see
// decodeSpan) — falling back to per-line accesses only across decoder
// boundaries, and counting each such fallback in MemStats.LineFallbacks.
// Poison (RAS) checks still run per line, and a burst touching any
// poisoned or unmapped line fails whole — no partial effects reach the
// media.
func (d *Type3Device) HandleMemBurst(req MemReq, payload []byte) MemResp {
	resp := MemResp{Tag: req.Tag}
	lines := int(req.Lines)
	if req.Opcode != OpMemRdBurst && req.Opcode != OpMemWrBurst ||
		lines < 1 || lines > MaxBurstLines ||
		len(payload) != lines*LineSize || !lineAligned(req.Addr) {
		d.stats.Errors.Add(1)
		resp.Opcode = RespErr
		return resp
	}
	span := uint64(len(payload))
	dpa, snap, contiguous := d.decodeSpan(req.Addr, span)
	poisoned := snap.poisoned

	// RAS check. On the contiguous fast path a span-granular checker
	// (the mailbox's — one atomic load while the poison list is empty)
	// covers the whole burst; otherwise the per-line hook runs per
	// line, same as single-line transactions.
	if contiguous && snap.poisonedSpan != nil {
		if snap.poisonedSpan(dpa, span) {
			d.media.Stats().Uncorrectable.Add(1)
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
		poisoned = nil
	}

	// Validate every line before touching the media — decode (when the
	// span is not contiguous) and poison — so a failing burst has no
	// partial effects. Line DPAs are kept on the stack for the access
	// loop; the fast path never fills them.
	if !contiguous {
		d.stats.LineFallbacks.Add(1)
	}
	var lineDPAs [MaxBurstLines]uint64
	if !contiguous || poisoned != nil {
		for i := 0; i < lines; i++ {
			lineDPA := dpa + uint64(i*LineSize)
			if !contiguous {
				var ok bool
				if lineDPA, ok = d.decode(req.Addr + uint64(i*LineSize)); !ok {
					d.stats.Errors.Add(1)
					resp.Opcode = RespErr
					return resp
				}
				lineDPAs[i] = lineDPA
			}
			if poisoned != nil && poisoned(lineDPA) {
				d.media.Stats().Uncorrectable.Add(1)
				d.stats.Errors.Add(1)
				resp.Opcode = RespErr
				return resp
			}
		}
	}

	if contiguous {
		var err error
		if req.Opcode == OpMemRdBurst {
			err = d.media.ReadAt(payload, int64(dpa))
		} else {
			err = d.media.WriteAt(payload, int64(dpa))
		}
		if err != nil {
			d.stats.Errors.Add(1)
			resp.Opcode = RespErr
			return resp
		}
	} else {
		for i := 0; i < lines; i++ {
			line := payload[i*LineSize : (i+1)*LineSize]
			var err error
			if req.Opcode == OpMemRdBurst {
				err = d.media.ReadAt(line, int64(lineDPAs[i]))
			} else {
				err = d.media.WriteAt(line, int64(lineDPAs[i]))
			}
			if err != nil {
				d.stats.Errors.Add(1)
				resp.Opcode = RespErr
				return resp
			}
		}
	}
	d.stats.BurstLines.Add(int64(lines))
	if req.Opcode == OpMemRdBurst {
		d.stats.ReadBursts.Add(1)
		resp.Opcode = RespMemData
	} else {
		d.stats.WriteBursts.Add(1)
		resp.Opcode = RespCmp
	}
	return resp
}

// SetPoisonChecker installs the RAS hook consulted on every HDM access
// (the device Mailbox registers its poison list here).
func (d *Type3Device) SetPoisonChecker(f func(dpa uint64) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.poisoned = f
	// The span checker is a companion of the per-line hook it was
	// installed with; a new per-line hook invalidates it, otherwise a
	// contiguous burst would consult the stale span hook and skip the
	// new checker entirely. Callers wanting the fast path back install
	// a matching span checker after this call.
	d.poisonedSpan = nil
	d.publish()
}

// SetPoisonSpanChecker installs an optional span-granular companion to
// the per-line RAS hook: it must report whether any line of
// [dpa, dpa+n) is poisoned. Burst transactions over a contiguous span
// consult it once instead of calling the per-line hook per line.
func (d *Type3Device) SetPoisonSpanChecker(f func(dpa, n uint64) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.poisonedSpan = f
	d.publish()
}

func (d *Type3Device) String() string {
	return fmt.Sprintf("%s: CXL Type3, %s HDM (%s)", d.name, d.media.Capacity(), d.media.Name())
}

// Type1Device is a caching accelerator: CXL.cache + CXL.io, no HDM. It
// exists so enumeration can classify mixed hierarchies; the paper's
// experiments use Type 3 only.
type Type1Device struct {
	name string
	cfg  ConfigSpace
}

// NewType1 builds a cache-only accelerator endpoint.
func NewType1(name string, vendor, deviceID uint16) *Type1Device {
	d := &Type1Device{name: name}
	d.cfg.InitIdentity(vendor, deviceID, 0x120000) // processing accelerator
	d.cfg.InstallCXLDVSEC(CapIO|CapCache, 0)
	return d
}

// Name implements Endpoint.
func (d *Type1Device) Name() string { return d.name }

// DeviceType implements Endpoint.
func (d *Type1Device) DeviceType() DeviceType { return Type1 }

// Config implements Endpoint.
func (d *Type1Device) Config() *ConfigSpace { return &d.cfg }

// HandleMem always fails: Type 1 devices expose no HDM.
func (d *Type1Device) HandleMem(req MemReq) MemResp {
	return MemResp{Tag: req.Tag, Opcode: RespErr}
}

// Type2Device is an accelerator with attached memory: it embeds the
// Type-3 HDM machinery and additionally advertises CXL.cache.
type Type2Device struct {
	*Type3Device
}

// NewType2 builds an accelerator-with-memory endpoint.
func NewType2(name string, vendor, deviceID uint16, media memdev.Device) (*Type2Device, error) {
	t3, err := NewType3(name, vendor, deviceID, media)
	if err != nil {
		return nil, err
	}
	d := &Type2Device{Type3Device: t3}
	d.cfg.InstallCXLDVSEC(CapIO|CapCache|CapMem, uint64(media.Capacity().Bytes()))
	return d, nil
}

// DeviceType implements Endpoint.
func (d *Type2Device) DeviceType() DeviceType { return Type2 }

// lineAligned reports whether an access is aligned to the CXL line size.
func lineAligned(addr uint64) bool { return addr%uint64(units.CacheLine) == 0 }
