package cxl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Live evacuation of one interleave leg. When a member device degrades,
// the set sheds it without stopping traffic:
//
//  1. BeginEvacuation programs a plain spare HDM decoder on every
//     healthy leg — carved from the headroom InterleaveOptions.Share
//     leaves above the striped share — and publishes the evacuation
//     state to the data path.
//  2. EvacuateStep copies the dying leg's granules onto the spare
//     windows, round-robin across the healthy legs, while reads and
//     writes keep flowing: each granule's home (old leg vs spare) is a
//     published atomic, writers serialise against the copier through a
//     striped granule lock, readers run a seqlock (re-check the home
//     after the read, retry on a move).
//  3. DetachEvacuated hands back the drained port for hot-remove; the
//     set runs degraded at N-1 devices, the dead leg's granules served
//     from the spares.
//  4. Reattach binds a replacement into the leg (hot-add) and
//     RestripeStep migrates the granules back, restoring full width and
//     releasing the spare decoders.
//
// Geometry never changes: ways, granule, share and the HPA window are
// fixed for the set's lifetime, so the other legs' addressing — and
// every address a caller holds — stays valid throughout.

// granule home states, published per granule in evacuation.state.
const (
	granOnLeg   = uint32(0) // served by the (old or reattached) leg
	granOnSpare = uint32(1) // served by a healthy leg's spare window
)

// evacLockStripes is the size of the striped granule-lock table: large
// enough that a writer and the copier rarely collide on different
// granules, small enough to embed in the evacuation record.
const evacLockStripes = 128

// spareWindow is one healthy leg's slice of the evacuated capacity.
type spareWindow struct {
	port *RootPort
	dec  *HDMDecoder
	base uint64 // first HPA of the spare window
}

// evacuation is the published state of one in-progress leg evacuation.
// The data path reads leg, spares and state lock-free; the cursors and
// staging buffer belong to the control plane (guarded by evacMu).
type evacuation struct {
	leg    int
	spares []spareWindow // one per healthy leg, ascending leg order
	nGran  uint64        // granules per leg (share / granule)
	state  []atomic.Uint32
	locks  [evacLockStripes]sync.Mutex

	next       uint64 // first granule not yet moved to a spare
	back       uint64 // first granule not yet restriped home
	buf        []byte // one-granule staging buffer for the migrator
	detached   bool
	reattached bool
}

func (ev *evacuation) lockFor(k uint64) *sync.Mutex { return &ev.locks[k%evacLockStripes] }

// granHPA returns the window HPA of the evacuating leg's k-th granule.
func (s *InterleaveSet) granHPA(ev *evacuation, k uint64) uint64 {
	return s.base + k*s.granule*uint64(s.ways) + uint64(ev.leg)*s.granule
}

// spareHome returns the port and HPA serving granule k when it lives on
// a spare window: granules round-robin across the healthy legs.
func (s *InterleaveSet) spareHome(ev *evacuation, k uint64) (*RootPort, uint64) {
	healthy := uint64(s.ways - 1)
	sp := &ev.spares[k%healthy]
	return sp.port, sp.base + (k/healthy)*s.granule
}

// evacOwned reports whether hpa falls in a granule owned by the
// evacuating leg. Line and sub-line accesses never span a granule, so
// the start address decides.
func (s *InterleaveSet) evacOwned(ev *evacuation, hpa uint64) bool {
	if hpa < s.base || hpa >= s.base+s.size {
		return false
	}
	return ((hpa-s.base)/s.granule)%uint64(s.ways) == uint64(ev.leg)
}

// evacHome resolves granule k's current port and the translated address
// for window HPA hpa under home state st. granOnLeg always resolves
// through the live slice, so a reattached replacement takes over
// transparently.
func (s *InterleaveSet) evacHome(ev *evacuation, k uint64, hpa uint64, st uint32) (*RootPort, uint64) {
	if st == granOnLeg {
		return s.legs()[ev.leg], hpa
	}
	rp, base := s.spareHome(ev, k)
	return rp, base + (hpa - s.granHPA(ev, k))
}

// evacSmall serves a line or sub-line access inside one evacuating-leg
// granule: writes serialise with the migrator through the granule lock,
// reads seqlock against a concurrent move.
func (s *InterleaveSet) evacSmall(ev *evacuation, write bool, hpa uint64, p []byte) error {
	k := (hpa - s.base) / (s.granule * uint64(s.ways))
	if write {
		mu := ev.lockFor(k)
		mu.Lock()
		defer mu.Unlock()
		rp, addr := s.evacHome(ev, k, hpa, ev.state[k].Load())
		return rp.WriteAt(p, int64(addr))
	}
	for {
		st := ev.state[k].Load()
		rp, addr := s.evacHome(ev, k, hpa, st)
		err := rp.ReadAt(p, int64(addr))
		if ev.state[k].Load() != st {
			// The granule moved mid-read: the bytes (or the error — the
			// old home's decoder may be mid-removal) may be stale. Retry
			// against the new home.
			continue
		}
		return err
	}
}

// runLegEvac is runLeg for the evacuating leg: each owned piece of the
// span is contiguous at its current home, so pieces burst zero-copy
// from the caller's buffer with per-granule routing.
func (s *InterleaveSet) runLegEvac(ev *evacuation, write bool, hpa uint64, p []byte) error {
	g := s.granule
	stride := g * uint64(s.ways)
	off := hpa - s.base
	end := off + uint64(len(p))
	legOff := uint64(ev.leg) * g

	var k uint64
	if off > legOff {
		k = (off - legOff) / stride
		if k*stride+legOff+g <= off {
			k++
		}
	}
	for {
		gs := k*stride + legOff
		if gs >= end {
			return nil
		}
		lo, hi := gs, gs+g
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if err := s.evacPiece(ev, write, k, s.base+lo, p[lo-off:hi-off]); err != nil {
			return err
		}
		k++
	}
}

// evacPiece moves one granule-bounded, line-aligned piece to or from
// granule k's current home.
func (s *InterleaveSet) evacPiece(ev *evacuation, write bool, k uint64, hpa uint64, p []byte) error {
	if write {
		mu := ev.lockFor(k)
		mu.Lock()
		defer mu.Unlock()
		rp, addr := s.evacHome(ev, k, hpa, ev.state[k].Load())
		return rp.WriteBurst(addr, p)
	}
	for {
		st := ev.state[k].Load()
		rp, addr := s.evacHome(ev, k, hpa, st)
		err := rp.ReadBurst(addr, p)
		if ev.state[k].Load() != st {
			continue
		}
		return err
	}
}

// enter registers a transfer on the current epoch's inflight counter
// and returns the epoch to release. The re-check after the increment
// closes the race with a concurrent flip: a transfer that registered on
// an epoch the grace period already waited out backs off and re-enters
// on the new one.
func (s *InterleaveSet) enter() int {
	for {
		e := int(s.epoch.Load() & 1)
		s.inflight[e].Add(1)
		if int(s.epoch.Load()&1) == e {
			return e
		}
		s.inflight[e].Add(-1)
	}
}

func (s *InterleaveSet) exit(e int) { s.inflight[e].Add(-1) }

// gracePeriod flips the epoch and blocks until every transfer that
// registered under the previous one has completed. Transfers beginning
// after the flip land on the new epoch and observe all state published
// before the call; the wait never requires foreground traffic to
// quiesce. Transfers never take evacMu, so waiting under it cannot
// deadlock.
func (s *InterleaveSet) gracePeriod() {
	old := int(s.epoch.Add(1)-1) & 1
	for s.inflight[old].Load() != 0 {
		runtime.Gosched()
	}
}

// Evacuating reports the leg currently under evacuation, if any.
func (s *InterleaveSet) Evacuating() (leg int, active bool) {
	if ev := s.evac.Load(); ev != nil {
		return ev.leg, true
	}
	return 0, false
}

// BeginEvacuation starts evacuating the given leg: it programs a plain
// spare decoder on every healthy leg's endpoint (rolled back on
// failure — a member without Share headroom rejects the program, which
// is the "no spare capacity" error) and publishes the evacuation to the
// data path. No data moves yet; drive EvacuateStep or EvacuateDrain.
func (s *InterleaveSet) BeginEvacuation(leg int) error {
	s.evacMu.Lock()
	defer s.evacMu.Unlock()
	if s.evac.Load() != nil {
		return fmt.Errorf("cxl: %s: evacuation already in progress", s.name)
	}
	if s.ways < 2 {
		return fmt.Errorf("cxl: %s: cannot evacuate a 1-way set", s.name)
	}
	if leg < 0 || leg >= s.ways {
		return fmt.Errorf("cxl: %s: no leg %d in %d-way set", s.name, leg, s.ways)
	}

	g := s.granule
	nGran := s.share / g
	healthy := uint64(s.ways - 1)
	// Each healthy leg absorbs every (ways-1)-th granule; its window is
	// slot-addressed, so it must hold ceil(nGran / healthy) slots.
	slots := (nGran + healthy - 1) / healthy
	w := slots * g

	type programmer interface{ ProgramDecoder(*HDMDecoder) error }
	type remover interface{ RemoveDecoder(*HDMDecoder) error }
	ev := &evacuation{leg: leg, nGran: nGran, buf: make([]byte, g)}
	ev.state = make([]atomic.Uint32, nGran)
	h := 0
	for i, rp := range s.legs() {
		if i == leg {
			continue
		}
		dec := &HDMDecoder{
			// Spare windows live above the striped window, one disjoint
			// plain range per healthy leg, backed by the DPA headroom
			// above the leg's striped share.
			Base:    s.base + s.size + uint64(h)*w,
			Size:    w,
			DPABase: s.share,
		}
		if err := rp.Endpoint().(programmer).ProgramDecoder(dec); err != nil {
			for _, sp := range ev.spares {
				if rmErr := sp.port.Endpoint().(remover).RemoveDecoder(sp.dec); rmErr != nil {
					panic(fmt.Sprintf("cxl: %s: spare decoder rollback: %v", s.name, rmErr))
				}
			}
			return fmt.Errorf("cxl: %s: leg %d (%s) cannot host spare window: %w", s.name, i, rp.Name(), err)
		}
		ev.spares = append(ev.spares, spareWindow{port: rp, dec: dec, base: dec.Base})
		h++
	}
	s.evac.Store(ev)
	// Grace period: transfers that resolved the leg before the publish
	// finish on the old direct path; everything after routes per-granule
	// and takes the locks the migrator honours.
	s.gracePeriod()
	return nil
}

// EvacuateStep migrates up to n granules of the evacuating leg onto the
// spare windows and reports whether the leg is fully drained. Foreground
// traffic proceeds throughout; each granule is unavailable to writers
// only for its own copy.
func (s *InterleaveSet) EvacuateStep(n int) (done bool, err error) {
	s.evacMu.Lock()
	defer s.evacMu.Unlock()
	ev := s.evac.Load()
	if ev == nil {
		return false, fmt.Errorf("cxl: %s: no evacuation in progress", s.name)
	}
	if ev.detached {
		return true, nil
	}
	src := s.legs()[ev.leg]
	for ; n > 0 && ev.next < ev.nGran; n-- {
		k := ev.next
		mu := ev.lockFor(k)
		mu.Lock()
		if ev.state[k].Load() == granOnLeg {
			hpa := s.granHPA(ev, k)
			if err := src.ReadBurst(hpa, ev.buf); err != nil {
				mu.Unlock()
				return false, fmt.Errorf("cxl: %s: evacuating granule %d: %w", s.name, k, err)
			}
			dst, addr := s.spareHome(ev, k)
			if err := dst.WriteBurst(addr, ev.buf); err != nil {
				mu.Unlock()
				return false, fmt.Errorf("cxl: %s: evacuating granule %d: %w", s.name, k, err)
			}
			ev.state[k].Store(granOnSpare)
		}
		mu.Unlock()
		ev.next++
	}
	return ev.next >= ev.nGran, nil
}

// EvacuateDrain runs EvacuateStep until the leg is empty.
func (s *InterleaveSet) EvacuateDrain() error {
	for {
		done, err := s.EvacuateStep(64)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// DetachEvacuated completes the hot-remove: once every granule has left
// the leg, it returns the drained member port so the caller can detach
// it and remove the device from the switch. The set keeps running
// degraded — the leg's granules served from the spare windows — until
// Reattach/RestripeStep restore full width.
func (s *InterleaveSet) DetachEvacuated() (*RootPort, error) {
	s.evacMu.Lock()
	defer s.evacMu.Unlock()
	ev := s.evac.Load()
	if ev == nil {
		return nil, fmt.Errorf("cxl: %s: no evacuation in progress", s.name)
	}
	if ev.detached {
		return nil, fmt.Errorf("cxl: %s: leg %d already detached", s.name, ev.leg)
	}
	if ev.next < ev.nGran {
		return nil, fmt.Errorf("cxl: %s: leg %d still holds %d of %d granules", s.name, ev.leg, ev.nGran-ev.next, ev.nGran)
	}
	ev.detached = true
	return s.legs()[ev.leg], nil
}

// Reattach binds a replacement port into the evacuated leg (hot-add):
// the replacement's endpoint must pass the same checks as a construction
// member, gets the leg's interleaved decoder programmed (skipped if an
// identical decoder is already committed — re-adding the same card),
// and is published to the data path. Granules stay on the spares until
// RestripeStep moves them home.
func (s *InterleaveSet) Reattach(rp *RootPort) error {
	s.evacMu.Lock()
	defer s.evacMu.Unlock()
	ev := s.evac.Load()
	if ev == nil {
		return fmt.Errorf("cxl: %s: no evacuation in progress", s.name)
	}
	if !ev.detached {
		return fmt.Errorf("cxl: %s: leg %d not detached", s.name, ev.leg)
	}
	if ev.reattached {
		return fmt.Errorf("cxl: %s: leg %d already reattached", s.name, ev.leg)
	}
	ep := rp.Endpoint()
	if ep == nil || rp.State() != LinkUp {
		return fmt.Errorf("cxl: %s: replacement %s: link down", s.name, rp.Name())
	}
	if _, ok := ep.(BurstHandler); !ok {
		return fmt.Errorf("cxl: %s: replacement endpoint %s cannot service bursts natively", s.name, ep.Name())
	}
	want := HDMDecoder{
		Base:              s.base,
		Size:              s.size,
		InterleaveWays:    s.ways,
		InterleaveGranule: s.granule,
		TargetIndex:       ev.leg,
	}
	programmed := false
	if lister, ok := ep.(interface{ Decoders() []*HDMDecoder }); ok {
		for _, dec := range lister.Decoders() {
			if *dec == want {
				programmed = true
				break
			}
		}
	}
	if !programmed {
		p, ok := ep.(interface{ ProgramDecoder(*HDMDecoder) error })
		if !ok {
			return fmt.Errorf("cxl: %s: replacement endpoint %s cannot program decoders", s.name, ep.Name())
		}
		dec := want
		if err := p.ProgramDecoder(&dec); err != nil {
			return fmt.Errorf("cxl: %s: replacement %s: %w", s.name, rp.Name(), err)
		}
	}
	legs := append([]*RootPort(nil), s.legs()...)
	legs[ev.leg] = rp
	s.live.Store(&legs)
	// Grace period: transfers still holding the old slice target only
	// spare windows (every granule is granOnSpare), so nothing reaches
	// the removed device; the drain just bounds the swap.
	s.gracePeriod()
	ev.reattached = true
	return nil
}

// RestripeStep moves up to n granules from the spare windows back onto
// the reattached leg and reports completion. On the last granule it
// retires the evacuation: the data path returns to the plain striped
// route and the spare decoders are released.
func (s *InterleaveSet) RestripeStep(n int) (done bool, err error) {
	s.evacMu.Lock()
	defer s.evacMu.Unlock()
	ev := s.evac.Load()
	if ev == nil {
		return true, nil
	}
	if !ev.reattached {
		return false, fmt.Errorf("cxl: %s: leg %d has no reattached device to restripe onto", s.name, ev.leg)
	}
	dst := s.legs()[ev.leg]
	for ; n > 0 && ev.back < ev.nGran; n-- {
		k := ev.back
		mu := ev.lockFor(k)
		mu.Lock()
		if ev.state[k].Load() == granOnSpare {
			src, addr := s.spareHome(ev, k)
			if err := src.ReadBurst(addr, ev.buf); err != nil {
				mu.Unlock()
				return false, fmt.Errorf("cxl: %s: restriping granule %d: %w", s.name, k, err)
			}
			if err := dst.WriteBurst(s.granHPA(ev, k), ev.buf); err != nil {
				mu.Unlock()
				return false, fmt.Errorf("cxl: %s: restriping granule %d: %w", s.name, k, err)
			}
			ev.state[k].Store(granOnLeg)
		}
		mu.Unlock()
		ev.back++
	}
	if ev.back < ev.nGran {
		return false, nil
	}
	// Retire: unpublish first, then wait out accesses that still hold
	// the evacuation (they resolve granOnLeg → the live leg, which is
	// correct), and only then drop the spare decoders.
	s.evac.Store(nil)
	s.gracePeriod()
	type remover interface{ RemoveDecoder(*HDMDecoder) error }
	for _, sp := range ev.spares {
		if err := sp.port.Endpoint().(remover).RemoveDecoder(sp.dec); err != nil {
			return true, fmt.Errorf("cxl: %s: releasing spare window on %s: %w", s.name, sp.port.Name(), err)
		}
	}
	return true, nil
}

// RestripeDrain runs RestripeStep until the set is back at full width.
func (s *InterleaveSet) RestripeDrain() error {
	for {
		done, err := s.RestripeStep(64)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}
