package cxl

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// testInterleaveSet builds a ways-wide striped path over fresh Type-3
// devices (16 MiB media each) and returns the set plus its endpoints.
func testInterleaveSet(t *testing.T, ways int, granule uint64) (*InterleaveSet, []*Type3Device) {
	t.Helper()
	ports := make([]*RootPort, ways)
	devs := make([]*Type3Device, ways)
	for i := range ports {
		dev, err := NewType3(fmt.Sprintf("stripe-dev%d", i), 0x8086, 0x0D93,
			testMedia(t, fmt.Sprintf("stripe-ddr%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
		ports[i] = trainedPort(t, dev)
	}
	s, err := NewInterleaveSet("ils0", 0x10_0000_0000, granule, ports...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, devs
}

// assertNoLineFallbacks enforces the tentpole invariant: striped traffic
// over interleaved windows must never degrade to the per-line path.
func assertNoLineFallbacks(t *testing.T, devs []*Type3Device) {
	t.Helper()
	for i, d := range devs {
		if n := d.Stats().LineFallbacks.Load(); n != 0 {
			t.Errorf("device %d took %d burst→line fallbacks, want 0", i, n)
		}
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		for _, granule := range []uint64{256, 1024, 4096, 8192} {
			t.Run(fmt.Sprintf("ways=%d/granule=%d", ways, granule), func(t *testing.T) {
				s, devs := testInterleaveSet(t, ways, granule)
				// Spans chosen to cross granule and chunk boundaries at
				// awkward offsets.
				for _, n := range []int{LineSize, 3 * LineSize, int(granule), int(granule) + LineSize, 3*int(granule) + 5*LineSize, 64 << 10} {
					in := make([]byte, n)
					for i := range in {
						in[i] = byte(i*31 + n)
					}
					hpa := s.Base() + 2*uint64(LineSize)
					if err := s.WriteBurst(hpa, in); err != nil {
						t.Fatalf("WriteBurst(%d): %v", n, err)
					}
					out := make([]byte, n)
					if err := s.ReadBurst(hpa, out); err != nil {
						t.Fatalf("ReadBurst(%d): %v", n, err)
					}
					if !bytes.Equal(in, out) {
						for i := range in {
							if in[i] != out[i] {
								t.Fatalf("n=%d: first mismatch at byte %d (got %#x want %#x)", n, i, out[i], in[i])
							}
						}
					}
				}
				assertNoLineFallbacks(t, devs)
			})
		}
	}
}

// TestInterleaveSpreadsTraffic checks the point of the exercise: every
// leg carries its share of a large transfer, as bursts, not lines.
func TestInterleaveSpreadsTraffic(t *testing.T) {
	const ways = 4
	s, devs := testInterleaveSet(t, ways, 256)
	n := 1 << 20
	buf := make([]byte, n)
	if err := s.WriteBurst(s.Base(), buf); err != nil {
		t.Fatal(err)
	}
	for i, d := range devs {
		lines := d.Stats().BurstLines.Load()
		if want := int64(n / ways / LineSize); lines != want {
			t.Errorf("device %d moved %d burst lines, want %d", i, lines, want)
		}
		// A 4 KiB-chunked leg never issues per-line transactions.
		if w := d.Stats().Writes.Load(); w != 0 {
			t.Errorf("device %d saw %d per-line writes on the striped path", i, w)
		}
	}
	assertNoLineFallbacks(t, devs)
}

// TestInterleaveAgainstLinearReference drives randomized unaligned
// ReadAt/WriteAt spans and checks every byte against a reference image
// — the striped analogue of TestReadWriteAtEdgeCases.
func TestInterleaveAgainstLinearReference(t *testing.T) {
	for _, granule := range []uint64{256, 4096} {
		t.Run(fmt.Sprintf("granule=%d", granule), func(t *testing.T) {
			s, devs := testInterleaveSet(t, 4, granule)
			const arena = 64 << 10
			ref := make([]byte, arena)
			rng := rand.New(rand.NewSource(7))
			base := int64(s.Base())
			for iter := 0; iter < 150; iter++ {
				off := rng.Intn(arena - 1)
				n := 1 + rng.Intn(arena-off-1)
				if n > 20*int(granule) {
					n = 1 + rng.Intn(20*int(granule))
				}
				span := make([]byte, n)
				rng.Read(span)
				copy(ref[off:off+n], span)
				if err := s.WriteAt(span, base+int64(off)); err != nil {
					t.Fatalf("WriteAt(%d, %d): %v", off, n, err)
				}
			}
			got := make([]byte, arena)
			if err := s.ReadAt(got, base); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("first mismatch at byte %d: got %#x want %#x", i, got[i], ref[i])
					}
				}
			}
			// Line-granular spot checks through the routed line path.
			for iter := 0; iter < 50; iter++ {
				off := rng.Intn(arena-LineSize) &^ (LineSize - 1)
				var line [LineSize]byte
				if err := s.ReadLine(uint64(base)+uint64(off), &line); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(line[:], ref[off:off+LineSize]) {
					t.Fatalf("ReadLine(%d) disagrees with striped writes", off)
				}
			}
			assertNoLineFallbacks(t, devs)
		})
	}
}

func TestInterleaveWindowBounds(t *testing.T) {
	s, _ := testInterleaveSet(t, 2, 256)
	buf := make([]byte, 2*LineSize)
	if err := s.WriteBurst(s.Base()+3, buf); err == nil {
		t.Error("unaligned striped burst accepted")
	}
	if err := s.ReadBurst(s.Base(), buf[:LineSize+1]); err == nil {
		t.Error("non-line-multiple striped burst accepted")
	}
	if err := s.WriteBurst(s.Base()+s.Size()-uint64(LineSize), buf); err == nil {
		t.Error("striped burst overrunning the window accepted")
	}
	if err := s.WriteBurst(s.Base()-uint64(LineSize), buf); err == nil {
		t.Error("striped burst below the window accepted")
	}
}

func TestInterleaveGeometryValidation(t *testing.T) {
	mk := func(n int) []*RootPort {
		ports := make([]*RootPort, n)
		for i := range ports {
			dev, err := NewType3(fmt.Sprintf("g-dev%d", i), 0x8086, 0x0D93,
				testMedia(t, fmt.Sprintf("g-ddr%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			ports[i] = trainedPort(t, dev)
		}
		return ports
	}
	if _, err := NewInterleaveSet("bad", 0, 0); err == nil {
		t.Error("zero-way set accepted")
	}
	if _, err := NewInterleaveSet("bad", 0, 96, mk(2)...); err == nil {
		t.Error("non-line-multiple granule accepted")
	}
	if _, err := NewInterleaveSet("bad", 0x140, 256, mk(2)...); err == nil {
		t.Error("granule-unaligned base accepted")
	}
	down := NewRootPort("down", nil)
	if _, err := NewInterleaveSet("bad", 0, 256, down); err == nil {
		t.Error("untrained leg accepted")
	}
	// Mixed-capacity members: the share is the smallest HDM.
	small, err := NewType3("small", 0x8086, 0x0D93, testMedia(t, "small-ddr"))
	if err != nil {
		t.Fatal(err)
	}
	ports := append(mk(1), trainedPort(t, small))
	s, err := NewInterleaveSet("mixed", 0, 256, ports...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cap := uint64(16 << 20) // testMedia capacity
	if s.Size() != 2*cap {
		t.Errorf("mixed set size = %d, want %d", s.Size(), 2*cap)
	}
}

// TestInterleaveLegFaultIsolation injects transient corruption on one
// leg's link: the striped transfer must succeed via that leg's LRSM
// retry, and the retry accounting must stay on the faulted leg alone.
func TestInterleaveLegFaultIsolation(t *testing.T) {
	s, devs := testInterleaveSet(t, 4, 256)
	const faulted = 2
	var mu sync.Mutex
	n := 0
	s.Ports()[faulted].SetFault(func(f Flit) Flit {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n%5 == 3 { // transient, recoverable
			return f.Corrupt(13)
		}
		return f
	})
	in := make([]byte, 32<<10)
	for i := range in {
		in[i] = byte(i * 17)
	}
	if err := s.WriteBurst(s.Base(), in); err != nil {
		t.Fatalf("striped write with transient leg corruption: %v", err)
	}
	out := make([]byte, len(in))
	if err := s.ReadBurst(s.Base(), out); err != nil {
		t.Fatalf("striped read with transient leg corruption: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Error("data corrupted despite per-leg retry")
	}
	for i, rp := range s.Ports() {
		r := rp.Stats().Retries
		if i == faulted && r == 0 {
			t.Error("faulted leg recorded no retries")
		}
		if i != faulted && r != 0 {
			t.Errorf("healthy leg %d recorded %d retries", i, r)
		}
	}
	assertNoLineFallbacks(t, devs)
}

// TestInterleavePersistentLegFault: a leg whose link corrupts every
// data flit must fail the striped transfer with that leg's port error;
// the other legs' windows remain readable.
func TestInterleavePersistentLegFault(t *testing.T) {
	s, _ := testInterleaveSet(t, 2, 256)
	s.Ports()[1].SetFault(func(f Flit) Flit {
		if f.raw[0] == flitKindData {
			return f.Corrupt(50)
		}
		return f
	})
	err := s.WriteBurst(s.Base(), make([]byte, 4<<10))
	if err == nil {
		t.Fatal("persistent leg corruption not reported")
	}
	if _, ok := err.(*PortError); !ok {
		t.Errorf("err = %T, want *PortError", err)
	}
	s.Ports()[1].SetFault(nil)
	// Leg 0's granules are still individually accessible.
	var line [LineSize]byte
	if err := s.ReadLine(s.Base(), &line); err != nil {
		t.Errorf("healthy leg unreadable after sibling fault: %v", err)
	}
}

// TestInterleaveConcurrentStripes is the race-mode suite: many
// goroutines drive striped reads and writes over disjoint regions while
// one leg suffers transient corruption. Every region must read back its
// own writes exactly (per-line linearizability on disjoint data),
// retries must stay on the faulted leg, and no burst may fall back to
// the line path.
func TestInterleaveConcurrentStripes(t *testing.T) {
	s, devs := testInterleaveSet(t, 4, 256)
	const (
		workers     = 8
		regionBytes = 64 << 10
		rounds      = 6
	)
	const faulted = 1
	var mu sync.Mutex
	n := 0
	s.Ports()[faulted].SetFault(func(f Flit) Flit {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n%97 == 0 {
			return f.Corrupt(7)
		}
		return f
	})

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := s.Base() + uint64(w)*regionBytes
			in := make([]byte, regionBytes)
			out := make([]byte, regionBytes)
			for r := 0; r < rounds; r++ {
				for i := range in {
					in[i] = byte(i + w*31 + r*7)
				}
				if err := s.WriteBurst(base, in); err != nil {
					errs[w] = fmt.Errorf("worker %d round %d write: %w", w, r, err)
					return
				}
				if err := s.ReadBurst(base, out); err != nil {
					errs[w] = fmt.Errorf("worker %d round %d read: %w", w, r, err)
					return
				}
				if !bytes.Equal(in, out) {
					errs[w] = fmt.Errorf("worker %d round %d: readback mismatch", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, rp := range s.Ports() {
		if i != faulted && rp.Stats().Retries != 0 {
			t.Errorf("healthy leg %d recorded %d retries", i, rp.Stats().Retries)
		}
	}
	assertNoLineFallbacks(t, devs)
}

// TestInterleaveZeroAllocSteadyState guards the striped path's
// allocation discipline: leg fan-out (pooled call frames + persistent
// workers) and gather/scatter staging (pooled burst buffers) must not
// allocate per operation, for both the narrow-granule gather path and
// the wide-granule zero-copy path.
func TestInterleaveZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector")
	}
	for _, granule := range []uint64{256, 4096} {
		t.Run(fmt.Sprintf("granule=%d", granule), func(t *testing.T) {
			s, _ := testInterleaveSet(t, 4, granule)
			buf := make([]byte, 32<<10)
			if err := s.WriteBurst(s.Base(), buf); err != nil { // warm pools + pages
				t.Fatal(err)
			}
			cases := map[string]func(){
				"WriteBurst": func() { _ = s.WriteBurst(s.Base(), buf) },
				"ReadBurst":  func() { _ = s.ReadBurst(s.Base(), buf) },
			}
			for name, fn := range cases {
				if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
					t.Errorf("%s: %v allocs/op, want 0", name, allocs)
				}
			}
		})
	}
}

// TestInterleaveCloseStopsWorkers pins the worker lifecycle: Close
// (idempotent) stops the per-leg workers, so striped topologies torn
// down deterministically leak nothing.
func TestInterleaveCloseStopsWorkers(t *testing.T) {
	// Wait for the goroutine count to stop moving (workers of earlier
	// tests, closed via t.Cleanup, may still be exiting).
	stable := func() int {
		prev := runtime.NumGoroutine()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			if n := runtime.NumGoroutine(); n == prev {
				return n
			} else {
				prev = n
			}
		}
		return prev
	}
	before := stable()
	s, _ := testInterleaveSet(t, 4, 256)
	if err := s.WriteBurst(s.Base(), make([]byte, 4<<10)); err != nil {
		t.Fatal(err)
	}
	if n := runtime.NumGoroutine(); n < before+3 {
		t.Fatalf("expected 3 leg workers running, goroutines %d -> %d", before, n)
	}
	s.Close()
	s.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before {
		t.Errorf("leg workers leaked: goroutines %d -> %d after Close", before, n)
	}
}

// TestStridedBurstSemantics exercises the endpoint half in isolation: a
// burst addressed into an interleaved window names consecutive
// target-owned lines, crosses granule boundaries without fallback, and
// lands exactly where per-line transactions say it should.
func TestStridedBurstSemantics(t *testing.T) {
	dev := testType3(t)
	// This device owns the even 256 B granules of [0, 1 MiB).
	if err := dev.ProgramDecoder(&HDMDecoder{
		Base: 0, Size: 1 << 20, InterleaveWays: 2, InterleaveGranule: 256, TargetIndex: 0,
	}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	// 12 lines from HPA 0: granule 0 holds lines at HPA 0..192, the
	// next owned granule starts at HPA 512, then 1024.
	in := make([]byte, 12*LineSize)
	for i := range in {
		in[i] = byte(i + 1)
	}
	if err := rp.WriteBurst(0, in); err != nil {
		t.Fatalf("strided burst: %v", err)
	}
	if n := dev.Stats().LineFallbacks.Load(); n != 0 {
		t.Errorf("strided burst took %d line fallbacks, want 0", n)
	}
	// Per-line reads at the strided HPAs must observe the payload in
	// owned-line order.
	for i := 0; i < 12; i++ {
		chunk, within := i/4, i%4 // 4 lines per 256 B granule
		hpa := uint64(chunk)*512 + uint64(within)*uint64(LineSize)
		var line [LineSize]byte
		if err := rp.ReadLine(hpa, &line); err != nil {
			t.Fatalf("ReadLine(%#x): %v", hpa, err)
		}
		if !bytes.Equal(line[:], in[i*LineSize:(i+1)*LineSize]) {
			t.Fatalf("owned line %d (hpa %#x): strided burst landed wrong", i, hpa)
		}
	}
	// Overrunning the target's share must fail whole, not wrap.
	share := uint64(1<<20) / 2
	lastOwned := share - uint64(LineSize) // DPA of the last owned line
	dec := dev.Decoders()[0]
	hpaLast, ok := dec.Encode(lastOwned)
	if !ok {
		t.Fatal("Encode(last owned line) failed")
	}
	if err := rp.WriteBurst(hpaLast, make([]byte, 2*LineSize)); err == nil {
		t.Error("strided burst overrunning the share accepted")
	}
}

// TestLineFallbackCounter pins the satellite: a burst that genuinely
// cannot map to one DPA span (window seam) is still served, but counted.
func TestLineFallbackCounter(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 1 << 20, Size: 1 << 20, DPABase: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	in := make([]byte, 8*LineSize)
	start := uint64(1<<20) - 4*uint64(LineSize)
	if err := rp.WriteBurst(start, in); err != nil {
		t.Fatal(err)
	}
	if n := dev.Stats().LineFallbacks.Load(); n != 1 {
		t.Errorf("seam-crossing burst counted %d fallbacks, want 1", n)
	}
	// In-window bursts stay on the fast path.
	if err := rp.WriteBurst(0, in); err != nil {
		t.Fatal(err)
	}
	if n := dev.Stats().LineFallbacks.Load(); n != 1 {
		t.Errorf("contiguous burst incremented the fallback counter (now %d)", n)
	}
}
