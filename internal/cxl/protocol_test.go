package cxl

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFlitReqRoundTrip(t *testing.T) {
	var req MemReq
	req.Opcode = OpMemWr
	req.Addr = 0x10_0000_0040
	req.Tag = 0xBEEF
	req.Mask = 0xFFFF_0000_FFFF_0000
	for i := range req.Data {
		req.Data[i] = byte(i * 3)
	}
	got, err := DecodeReq(EncodeReq(req))
	if err != nil {
		t.Fatalf("DecodeReq: %v", err)
	}
	if got != req {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
}

func TestFlitRespRoundTrip(t *testing.T) {
	var resp MemResp
	resp.Opcode = RespMemData
	resp.Tag = 7
	for i := range resp.Data {
		resp.Data[i] = byte(255 - i)
	}
	got, err := DecodeResp(EncodeResp(resp))
	if err != nil {
		t.Fatalf("DecodeResp: %v", err)
	}
	if got != resp {
		t.Errorf("round trip mismatch")
	}
}

// Property: every well-formed request survives encode/decode.
func TestFlitReqRoundTripProperty(t *testing.T) {
	f := func(op uint8, addr uint64, tag uint16, mask uint64, seed byte) bool {
		var req MemReq
		req.Opcode = MemOpcode(op % 4)
		req.Addr = addr
		req.Tag = tag
		req.Mask = mask
		for i := range req.Data {
			req.Data[i] = seed + byte(i)
		}
		got, err := DecodeReq(EncodeReq(req))
		return err == nil && got == req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorruptedFlitDetected(t *testing.T) {
	req := MemReq{Opcode: OpMemRd, Addr: 0x40}
	f := EncodeReq(req)
	bad := f.Corrupt(13)
	if _, err := DecodeReq(bad); err == nil {
		t.Error("corrupted flit decoded without error")
	}
	// Every single-bit payload corruption must be caught.
	for bit := 0; bit < 64*8; bit += 37 {
		if _, err := DecodeReq(f.Corrupt(bit)); err == nil {
			t.Errorf("bit %d corruption not detected", bit)
		}
	}
}

func TestDecodeKindMismatch(t *testing.T) {
	req := EncodeReq(MemReq{Opcode: OpMemRd})
	if _, err := DecodeResp(req); err == nil {
		t.Error("decoded request flit as response")
	}
	resp := EncodeResp(MemResp{Opcode: RespCmp})
	if _, err := DecodeReq(resp); err == nil {
		t.Error("decoded response flit as request")
	}
}

func TestDecodeZeroFlit(t *testing.T) {
	// A never-encoded (all-zero) flit carries no valid checksum and must
	// be rejected, the value-type analogue of the old truncated-flit
	// case.
	var e *ErrFlit
	_, err := DecodeReq(Flit{})
	if err == nil {
		t.Fatal("empty flit accepted")
	}
	var ok bool
	e, ok = err.(*ErrFlit)
	if !ok || e.Error() == "" {
		t.Errorf("err = %v, want *ErrFlit", err)
	}
	if _, err := DecodeResp(Flit{}); err == nil {
		t.Error("empty response flit accepted")
	}
}

func TestWireCosts(t *testing.T) {
	if WireFlits(false) != 1 || WireFlits(true) != 2 {
		t.Error("WireFlits mismatch")
	}
	// Read: 1 req flit + 2 data flits = 3*68.
	if got := WireBytes(OpMemRd); got != 3*FlitSize {
		t.Errorf("read wire bytes = %d, want %d", got, 3*FlitSize)
	}
	if got := WireBytes(OpMemWr); got != 3*FlitSize {
		t.Errorf("write wire bytes = %d, want %d", got, 3*FlitSize)
	}
	if got := WireBytes(OpMemInv); got != 2*FlitSize {
		t.Errorf("inv wire bytes = %d, want %d", got, 2*FlitSize)
	}
	eff := ProtocolEfficiency()
	if eff <= 0.4 || eff >= 0.5 {
		t.Errorf("protocol efficiency = %v, want in (0.4, 0.5): 64/136", eff)
	}
}

func TestOpcodeStrings(t *testing.T) {
	for _, o := range []MemOpcode{OpMemInv, OpMemRd, OpMemWr, OpMemWrPtl, MemOpcode(9)} {
		if o.String() == "" {
			t.Errorf("empty string for %d", o)
		}
	}
	for _, o := range []RespOpcode{RespCmp, RespMemData, RespErr, RespOpcode(9)} {
		if o.String() == "" {
			t.Errorf("empty string for %d", o)
		}
	}
}

func TestConfigSpaceIdentity(t *testing.T) {
	var cs ConfigSpace
	cs.InitIdentity(0x8086, 0x0DDD, ClassMemoryCXL)
	if cs.VendorID() != 0x8086 {
		t.Errorf("vendor = %#x", cs.VendorID())
	}
	if cs.DeviceID() != 0x0DDD {
		t.Errorf("device = %#x", cs.DeviceID())
	}
	if cs.ClassCode() != ClassMemoryCXL {
		t.Errorf("class = %#x", cs.ClassCode())
	}
}

func TestConfigSpaceDVSEC(t *testing.T) {
	var cs ConfigSpace
	if _, ok := cs.FindCXLDVSEC(); ok {
		t.Error("empty config space reported a DVSEC")
	}
	cs.InstallCXLDVSEC(CapIO|CapMem, 16<<30)
	info, ok := cs.FindCXLDVSEC()
	if !ok {
		t.Fatal("installed DVSEC not found")
	}
	if info.Caps != CapIO|CapMem {
		t.Errorf("caps = %v", info.Caps)
	}
	if info.HDMSize != 16<<30 {
		t.Errorf("hdm size = %d", info.HDMSize)
	}
}

func TestConfigSpaceRegisterAccess(t *testing.T) {
	var cs ConfigSpace
	if err := cs.Write32(0x200, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := cs.Read32(0x200)
	if err != nil || v != 0xDEADBEEF {
		t.Errorf("Read32 = %#x, %v", v, err)
	}
	if _, err := cs.Read32(ConfigSpaceSize - 2); err == nil {
		t.Error("read past end accepted")
	}
	if err := cs.Write32(-4, 0); err == nil {
		t.Error("negative offset accepted")
	}
	var ce *ConfigError
	_, err = cs.Read32(ConfigSpaceSize)
	if ce, _ = err.(*ConfigError); ce == nil || ce.Error() == "" {
		t.Errorf("err = %v, want *ConfigError", err)
	}
}

func TestCapabilityBitsString(t *testing.T) {
	cases := map[CapabilityBits]string{
		0:                         "none",
		CapIO:                     "io",
		CapIO | CapMem:            "io+mem",
		CapCache | CapIO | CapMem: "cache+io+mem",
	}
	for caps, want := range cases {
		if got := caps.String(); got != want {
			t.Errorf("caps %d = %q, want %q", caps, got, want)
		}
	}
}

func TestBurstHeaderRoundTrip(t *testing.T) {
	req := MemReq{Opcode: OpMemWrBurst, Addr: 0x40_0000, Tag: 0x1234, Lines: MaxBurstLines}
	got, err := DecodeReq(EncodeReq(req))
	if err != nil {
		t.Fatalf("DecodeReq: %v", err)
	}
	if got != req {
		t.Errorf("burst header round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
	if OpMemRdBurst.String() != "MemRdBurst" || OpMemWrBurst.String() != "MemWrBurst" {
		t.Error("burst opcode strings")
	}
}

func TestDataFlitRoundTrip(t *testing.T) {
	var payload [LineSize]byte
	for i := range payload {
		payload[i] = byte(i ^ 0xC3)
	}
	var f Flit
	EncodeDataInto(&f, 0xBEEF, 41, &payload)
	var out [LineSize]byte
	tag, seq, err := DecodeDataInto(&out, &f)
	if err != nil {
		t.Fatalf("DecodeDataInto: %v", err)
	}
	if tag != 0xBEEF || seq != 41 {
		t.Errorf("tag/seq = %#x/%d", tag, seq)
	}
	if out != payload {
		t.Error("data beat payload mismatch")
	}
	// Data flits are not decodable as requests or responses.
	if _, err := DecodeReq(f); err == nil {
		t.Error("data flit decoded as request")
	}
	if _, err := DecodeResp(f); err == nil {
		t.Error("data flit decoded as response")
	}
	// Single-bit corruption on a data beat is caught.
	for bit := 0; bit < LineSize*8; bit += 41 {
		bad := f.Corrupt(bit)
		if _, _, err := DecodeDataInto(&out, &bad); err == nil {
			t.Errorf("bit %d corruption not detected on data flit", bit)
		}
	}
}

func TestBurstWireCosts(t *testing.T) {
	// An n-line burst costs a header, n data beats and a completion.
	if got := BurstWireBytes(1); got != 3*FlitSize {
		t.Errorf("1-line burst = %d, want %d", got, 3*FlitSize)
	}
	if got := BurstWireBytes(MaxBurstLines); got != (MaxBurstLines+2)*FlitSize {
		t.Errorf("full burst = %d", got)
	}
	// Efficiency approaches LineSize/FlitSize as the burst grows and
	// always beats the per-line framing.
	if e := BurstProtocolEfficiency(MaxBurstLines); e <= 0.9 || e >= float64(LineSize)/FlitSize {
		t.Errorf("burst efficiency = %v", e)
	}
	if BurstProtocolEfficiency(1) <= ProtocolEfficiency()/2 {
		t.Error("tiny burst efficiency collapsed")
	}
	if BurstProtocolEfficiency(0) != BurstProtocolEfficiency(1) {
		t.Error("lines < 1 not clamped")
	}
}

func TestPayloadIntegrityThroughFlits(t *testing.T) {
	// A payload pushed through encode/decode twice is bit-identical.
	var data [LineSize]byte
	for i := range data {
		data[i] = byte(i ^ 0x5A)
	}
	req := MemReq{Opcode: OpMemWr, Addr: 0x1000, Data: data}
	d1, err := DecodeReq(EncodeReq(req))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeReq(EncodeReq(d1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d2.Data[:], data[:]) {
		t.Error("payload corrupted through double encode")
	}
}
