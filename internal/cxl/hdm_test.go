package cxl

import (
	"testing"
	"testing/quick"
)

func TestHDMSimpleDecode(t *testing.T) {
	d := &HDMDecoder{Base: 0x10_0000_0000, Size: 16 << 30}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if !d.Committed() {
		t.Fatal("not committed")
	}
	dpa, ok := d.Decode(0x10_0000_0000)
	if !ok || dpa != 0 {
		t.Errorf("Decode(base) = %d, %v", dpa, ok)
	}
	dpa, ok = d.Decode(0x10_0000_0040)
	if !ok || dpa != 0x40 {
		t.Errorf("Decode(base+64) = %d, %v", dpa, ok)
	}
	if _, ok := d.Decode(0x10_0000_0000 - 1); ok {
		t.Error("decoded below base")
	}
	if _, ok := d.Decode(0x10_0000_0000 + 16<<30); ok {
		t.Error("decoded past end")
	}
}

func TestHDMDPABase(t *testing.T) {
	d := &HDMDecoder{Base: 0x1000, Size: 0x1000, DPABase: 0x8000}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	dpa, ok := d.Decode(0x1040)
	if !ok || dpa != 0x8040 {
		t.Errorf("Decode = %#x, %v; want 0x8040", dpa, ok)
	}
}

func TestHDMCommitValidation(t *testing.T) {
	cases := []*HDMDecoder{
		{Base: 0, Size: 0},    // zero size
		{Base: 7, Size: 4096}, // unaligned base
		{Base: 0, Size: 4096, InterleaveWays: 2, InterleaveGranule: 100},       // granule not line multiple
		{Base: 0, Size: 4096, InterleaveWays: 2, TargetIndex: 2},               // target out of range
		{Base: 0, Size: 4096 + 256, InterleaveWays: 2, InterleaveGranule: 256}, // size not ways*granule multiple
		{Base: 0, Size: 1000, InterleaveWays: 4, InterleaveGranule: 256},       // ditto
	}
	for i, d := range cases {
		if err := d.Commit(); err == nil {
			t.Errorf("case %d: Commit accepted invalid decoder %+v", i, d)
		}
	}
	// Uncommitted decoders decode nothing.
	un := &HDMDecoder{Base: 0, Size: 4096}
	if _, ok := un.Decode(0); ok {
		t.Error("uncommitted decoder decoded")
	}
	if _, ok := un.Encode(0); ok {
		t.Error("uncommitted decoder encoded")
	}
}

func TestHDMInterleave(t *testing.T) {
	// 2-way interleave at 256 B granule: even granules to target 0,
	// odd to target 1.
	mk := func(target int) *HDMDecoder {
		d := &HDMDecoder{Base: 0, Size: 4096, InterleaveWays: 2, InterleaveGranule: 256, TargetIndex: target}
		if err := d.Commit(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	d0, d1 := mk(0), mk(1)
	if !d0.Contains(0) || d1.Contains(0) {
		t.Error("granule 0 should belong to target 0")
	}
	if d0.Contains(256) || !d1.Contains(256) {
		t.Error("granule 1 should belong to target 1")
	}
	// DPA packing: target 0 sees granules 0,2,4.. packed contiguously.
	dpa, ok := d0.Decode(512) // granule 2 -> second granule on target 0
	if !ok || dpa != 256 {
		t.Errorf("Decode(512) on t0 = %d, %v; want 256", dpa, ok)
	}
	dpa, ok = d1.Decode(256 + 17)
	if !ok || dpa != 17 {
		t.Errorf("Decode(273) on t1 = %d, %v; want 17", dpa, ok)
	}
}

// Property: Decode and Encode are mutually inverse over the decoder's
// address space, and every HPA in the window belongs to exactly one
// target of an interleave set.
func TestHDMBijectivityProperty(t *testing.T) {
	f := func(waysRaw uint8, offRaw uint32) bool {
		ways := int(waysRaw%4) + 1 // 1..4
		granule := uint64(256)
		size := uint64(ways) * granule * 64
		decs := make([]*HDMDecoder, ways)
		for i := range decs {
			decs[i] = &HDMDecoder{
				Base: 0x4000, Size: size,
				InterleaveWays: ways, InterleaveGranule: granule, TargetIndex: i,
			}
			if err := decs[i].Commit(); err != nil {
				return false
			}
		}
		hpa := 0x4000 + uint64(offRaw)%size
		owners := 0
		for _, d := range decs {
			if dpa, ok := d.Decode(hpa); ok {
				owners++
				back, ok2 := d.Encode(dpa)
				if !ok2 || back != hpa {
					return false
				}
			}
		}
		return owners == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHDMEncodeOutOfRange(t *testing.T) {
	d := &HDMDecoder{Base: 0x1000, Size: 0x1000, DPABase: 0x100}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Encode(0x50); ok {
		t.Error("encoded DPA below DPABase")
	}
	if _, ok := d.Encode(0x100 + 0x1000); ok {
		t.Error("encoded DPA past share")
	}
	hpa, ok := d.Encode(0x100)
	if !ok || hpa != 0x1000 {
		t.Errorf("Encode(DPABase) = %#x, %v", hpa, ok)
	}
}

func TestHDMString(t *testing.T) {
	d := &HDMDecoder{Base: 0, Size: 4096}
	if d.String() == "" {
		t.Error("empty string")
	}
	di := &HDMDecoder{Base: 0, Size: 4096, InterleaveWays: 2, InterleaveGranule: 256}
	_ = di.Commit()
	if di.String() == "" {
		t.Error("empty string")
	}
}
