package cxl

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// evacSet builds a ways-wide set with Share headroom left on every
// member for spare windows.
func evacSet(t *testing.T, ways int, granule, share uint64) (*InterleaveSet, []*Type3Device) {
	t.Helper()
	ports := make([]*RootPort, ways)
	devs := make([]*Type3Device, ways)
	for i := range ports {
		dev, err := NewType3(fmt.Sprintf("evac-dev%d", i), 0x8086, 0x0D93,
			testMedia(t, fmt.Sprintf("evac-ddr%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
		ports[i] = trainedPort(t, dev)
	}
	s, err := NewInterleaveSetOpts("evac0",
		InterleaveOptions{Granule: granule, Share: share}, ports...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, devs
}

// replacementFor builds a fresh trained device/port pair suitable for
// Reattach.
func replacementFor(t *testing.T, name string) (*RootPort, *Type3Device) {
	t.Helper()
	dev, err := NewType3(name, 0x8086, 0x0D93, testMedia(t, name+"-ddr"))
	if err != nil {
		t.Fatal(err)
	}
	return trainedPort(t, dev), dev
}

// TestEvacuationLifecycleUnderTraffic drives the full hot-swap arc —
// evacuate → detach → reattach → restripe — while a foreground writer
// keeps mutating its window with read-own-write checks, then verifies
// every byte of the window.
func TestEvacuationLifecycleUnderTraffic(t *testing.T) {
	const ways = 3
	const granule = 4096
	const share = 1 << 20
	s, devs := evacSet(t, ways, granule, share)

	want := make([]byte, s.Size())
	for i := range want {
		want[i] = byte(i*13 + 7)
	}
	if err := s.WriteBurst(s.Base(), want); err != nil {
		t.Fatal(err)
	}

	// Foreground window: spans many granules of every leg.
	const fgOff = 256 * 1024
	const fgLen = 128 * 1024
	var stopFg atomic.Bool
	started := make(chan struct{})
	var startedOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, fgLen)
		got := make([]byte, fgLen)
		for round := byte(1); !stopFg.Load(); round++ {
			for i := range buf {
				buf[i] = round ^ byte(i)
			}
			if err := s.WriteAt(buf, int64(s.Base()+fgOff)); err != nil {
				t.Errorf("foreground write: %v", err)
				return
			}
			if err := s.ReadAt(got, int64(s.Base()+fgOff)); err != nil {
				t.Errorf("foreground read: %v", err)
				return
			}
			if !bytes.Equal(got, buf) {
				t.Errorf("foreground round %d read back torn", round)
				return
			}
			startedOnce.Do(func() { close(started) })
		}
	}()
	<-started

	const victim = 1
	if err := s.BeginEvacuation(victim); err != nil {
		t.Fatalf("BeginEvacuation: %v", err)
	}
	if leg, active := s.Evacuating(); !active || leg != victim {
		t.Fatalf("Evacuating() = %d,%v", leg, active)
	}
	if err := s.EvacuateDrain(); err != nil {
		t.Fatalf("EvacuateDrain: %v", err)
	}
	old, err := s.DetachEvacuated()
	if err != nil {
		t.Fatalf("DetachEvacuated: %v", err)
	}
	old.Detach()

	// Degraded: the set keeps serving the victim leg's granules from
	// the spare windows with the old device gone.
	probe := make([]byte, 64*1024)
	if err := s.ReadBurst(s.Base(), probe); err != nil {
		t.Fatalf("degraded read: %v", err)
	}

	rp, _ := replacementFor(t, "evac-spare-dev")
	if err := s.Reattach(rp); err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if err := s.RestripeDrain(); err != nil {
		t.Fatalf("RestripeDrain: %v", err)
	}
	if _, active := s.Evacuating(); active {
		t.Fatal("evacuation still active after restripe")
	}
	stopFg.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Full width restored with the replacement in the victim slot.
	if s.Ways() != ways {
		t.Fatalf("Ways() = %d after hot-add, want %d", s.Ways(), ways)
	}
	if got := s.Ports()[victim]; got != rp {
		t.Fatalf("leg %d is %s, want replacement", victim, got.Name())
	}
	// Spare windows released: every surviving member is back to one
	// decoder (its interleaved target).
	for i, d := range devs {
		if i == victim {
			continue
		}
		if n := len(d.Decoders()); n != 1 {
			t.Errorf("device %d holds %d decoders after restripe, want 1", i, n)
		}
	}

	// Byte-exact readback: static regions unchanged, foreground window a
	// self-consistent round pattern.
	got := make([]byte, len(want))
	if err := s.ReadBurst(s.Base(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:fgOff], want[:fgOff]) {
		t.Fatal("static prefix corrupted by evacuation cycle")
	}
	if !bytes.Equal(got[fgOff+fgLen:], want[fgOff+fgLen:]) {
		t.Fatal("static suffix corrupted by evacuation cycle")
	}
	fg := got[fgOff : fgOff+fgLen]
	round := fg[0]
	for i, b := range fg {
		if b != round^byte(i) {
			t.Fatalf("foreground window torn at %d: %#x, want round %#x pattern", i, b, round)
		}
	}
}

// TestEvacuationDegradedWrites checks that data written while the set
// runs at N-1 width — including into the evacuated leg's granules —
// survives the restripe back to full width.
func TestEvacuationDegradedWrites(t *testing.T) {
	const granule = 256 // narrow granules exercise the gather path on healthy legs
	s, _ := evacSet(t, 2, granule, 512*1024)

	if err := s.BeginEvacuation(0); err != nil {
		t.Fatal(err)
	}
	if err := s.EvacuateDrain(); err != nil {
		t.Fatal(err)
	}
	old, err := s.DetachEvacuated()
	if err != nil {
		t.Fatal(err)
	}
	old.Detach()

	// Every granule of the window is writable degraded, leg-0 granules
	// included (they land on the healthy leg's spare window).
	in := make([]byte, 64*1024)
	for i := range in {
		in[i] = byte(i*3 + 11)
	}
	if err := s.WriteBurst(s.Base(), in); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	out := make([]byte, len(in))
	if err := s.ReadBurst(s.Base(), out); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("degraded round trip mismatch")
	}
	// Unaligned spans too: head/tail fragments route per-granule.
	frag := []byte{1, 2, 3, 4, 5}
	if err := s.WriteAt(frag, int64(s.Base()+granule*2+17)); err != nil {
		t.Fatalf("degraded unaligned write: %v", err)
	}

	rp, _ := replacementFor(t, "evac2-spare")
	if err := s.Reattach(rp); err != nil {
		t.Fatal(err)
	}
	if err := s.RestripeDrain(); err != nil {
		t.Fatal(err)
	}

	if err := s.ReadBurst(s.Base(), out); err != nil {
		t.Fatal(err)
	}
	copy(in[granule*2+17:], frag)
	if !bytes.Equal(in, out) {
		t.Fatal("degraded-era writes lost in restripe")
	}
}

// TestBeginEvacuationNeedsHeadroom: a set striped over the full member
// HDM has nowhere to put spare windows; BeginEvacuation must fail
// cleanly and leave no half-programmed decoders behind.
func TestBeginEvacuationNeedsHeadroom(t *testing.T) {
	s, devs := testInterleaveSet(t, 2, 4096) // Share unset → full HDM
	if err := s.BeginEvacuation(0); err == nil {
		t.Fatal("BeginEvacuation succeeded with zero headroom")
	}
	if _, active := s.Evacuating(); active {
		t.Fatal("failed BeginEvacuation left evacuation active")
	}
	for i, d := range devs {
		if n := len(d.Decoders()); n != 1 {
			t.Errorf("device %d holds %d decoders after failed begin, want 1", i, n)
		}
	}
	// The set still works.
	buf := []byte{9, 8, 7}
	if err := s.WriteAt(buf, int64(s.Base())); err != nil {
		t.Fatal(err)
	}
}

// TestEvacuationSmallAccesses exercises every sub-burst access shape
// against a half-migrated leg: single lines and unaligned fragments on
// granules still home on the victim AND on granules already moved to a
// spare, plus ReadAt/WriteAt spans whose head/tail fragments cross the
// evacuating leg. All of it must land wherever the granule currently
// lives and read back after the restripe.
func TestEvacuationSmallAccesses(t *testing.T) {
	const (
		ways    = 2
		granule = uint64(256)
		share   = uint64(512) << 10
	)
	s, _ := evacSet(t, ways, granule, share)
	if s.Name() != "evac0" || s.Share() != share || s.Granule() != granule {
		t.Fatalf("set identity %s/%d/%d", s.Name(), s.Share(), s.Granule())
	}
	if s.String() == "" {
		t.Error("empty Stringer")
	}

	seed := make([]byte, ways*share)
	for i := range seed {
		seed[i] = byte(i*11 + 5)
	}
	if err := s.WriteBurst(s.Base(), seed); err != nil {
		t.Fatal(err)
	}

	const victim = 1
	if err := s.BeginEvacuation(victim); err != nil {
		t.Fatal(err)
	}
	// Move only the front half so both granule states are live.
	if _, err := s.EvacuateStep(int(share / granule / 2)); err != nil {
		t.Fatal(err)
	}

	// Victim-owned line on a granule already moved to a spare (k=0)
	// and on one still home on the leg (the last victim granule).
	movedHPA := s.Base() + victim*granule
	homeHPA := s.Base() + (share/granule-1)*granule*ways + victim*granule
	for _, hpa := range []uint64{movedHPA, homeHPA} {
		var line [LineSize]byte
		for i := range line {
			line[i] = byte(hpa>>8) ^ byte(i)
		}
		if err := s.WriteLine(hpa, &line); err != nil {
			t.Fatalf("WriteLine %#x mid-evacuation: %v", hpa, err)
		}
		var got [LineSize]byte
		if err := s.ReadLine(hpa, &got); err != nil {
			t.Fatalf("ReadLine %#x mid-evacuation: %v", hpa, err)
		}
		if got != line {
			t.Fatalf("line %#x did not read back mid-evacuation", hpa)
		}
		copy(seed[hpa-s.Base():], line[:])
	}

	// Unaligned span with head and tail fragments crossing both legs.
	frag := make([]byte, 3*granule)
	for i := range frag {
		frag[i] = byte(i*29 + 1)
	}
	fragOff := int64(s.Base() + granule/2 + granule*ways*4 + 17)
	if err := s.WriteAt(frag, fragOff); err != nil {
		t.Fatalf("WriteAt mid-evacuation: %v", err)
	}
	back := make([]byte, len(frag))
	if err := s.ReadAt(back, fragOff); err != nil {
		t.Fatalf("ReadAt mid-evacuation: %v", err)
	}
	if !bytes.Equal(frag, back) {
		t.Fatal("unaligned span did not read back mid-evacuation")
	}
	copy(seed[uint64(fragOff)-s.Base():], frag)

	// Finish the swap and verify nothing written mid-flight was lost.
	if err := s.EvacuateDrain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DetachEvacuated(); err != nil {
		t.Fatal(err)
	}
	rp, _ := replacementFor(t, "evac-small-repl")
	if err := s.Reattach(rp); err != nil {
		t.Fatal(err)
	}
	if err := s.RestripeDrain(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(seed))
	if err := s.ReadBurst(s.Base(), out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seed, out) {
		t.Fatal("window diverged after small-access evacuation cycle")
	}
}

// TestEvacuationControlPlaneGuards pins the orderings the control
// plane refuses: detaching before the drain finishes, reattaching
// before detach, double-starting, bad leg indexes, and the idle
// no-ops.
func TestEvacuationControlPlaneGuards(t *testing.T) {
	s, _ := evacSet(t, 2, 256, 64<<10)

	if done, err := s.RestripeStep(8); err != nil || !done {
		t.Errorf("idle RestripeStep = (%v, %v), want (true, nil)", done, err)
	}
	if _, err := s.DetachEvacuated(); err == nil {
		t.Error("DetachEvacuated with no evacuation succeeded")
	}
	rp, _ := replacementFor(t, "evac-guard-repl")
	if err := s.Reattach(rp); err == nil {
		t.Error("Reattach with no detached leg succeeded")
	}
	if err := s.BeginEvacuation(-1); err == nil {
		t.Error("BeginEvacuation(-1) succeeded")
	}
	if err := s.BeginEvacuation(2); err == nil {
		t.Error("BeginEvacuation past the last leg succeeded")
	}

	if err := s.BeginEvacuation(0); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginEvacuation(1); err == nil {
		t.Error("second BeginEvacuation while one is active succeeded")
	}
	if _, err := s.DetachEvacuated(); err == nil {
		t.Error("DetachEvacuated before the drain completed succeeded")
	}
	if err := s.EvacuateDrain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DetachEvacuated(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DetachEvacuated(); err == nil {
		t.Error("double DetachEvacuated succeeded")
	}
	if err := s.Reattach(rp); err != nil {
		t.Fatal(err)
	}
	if err := s.Reattach(rp); err == nil {
		t.Error("double Reattach succeeded")
	}
	if err := s.RestripeDrain(); err != nil {
		t.Fatal(err)
	}
	if leg, active := s.Evacuating(); active {
		t.Errorf("still evacuating leg %d after restripe", leg)
	}
}
