package cxl

import (
	"fmt"

	"cxlpmem/internal/units"
)

// Extent management for dynamic capacity. CXL 2.0 carves an MLD once;
// CXL 3.0's Dynamic Capacity Device (DCD) model lets a fabric manager
// grant and reclaim capacity as *extents* while hosts run. Both sit on
// the same substrate: a device-physical address space from which
// line-aligned ranges are reserved and returned. ExtentAllocator is
// that substrate — a first-fit free-list allocator with coalescing on
// release, used by the MLD for its partitions/extents and by the fabric
// manager for each tenant's device address space.

// Extent is a half-open device-physical range [Base, Base+Size).
type Extent struct {
	Base uint64
	Size uint64
}

// End returns the first address past the extent.
func (e Extent) End() uint64 { return e.Base + e.Size }

func (e Extent) String() string { return fmt.Sprintf("[%#x+%#x)", e.Base, e.Size) }

// ExtentAllocator hands out line-aligned extents from a fixed-capacity
// address space. Allocation is first-fit (lowest base wins); release
// coalesces with free neighbours, so a fully released space always
// collapses back to one extent and Remaining returns to its initial
// value. The allocator does no locking: the MLD and the fabric manager
// each guard their allocator with their own mutex.
type ExtentAllocator struct {
	capacity uint64
	free     []Extent // sorted by Base, no two adjacent or overlapping
}

// NewExtentAllocator builds an allocator over [0, capacity).
func NewExtentAllocator(capacity units.Size) (*ExtentAllocator, error) {
	if capacity <= 0 || capacity%units.CacheLine != 0 {
		return nil, fmt.Errorf("cxl: extent allocator: invalid capacity %d", capacity)
	}
	return &ExtentAllocator{
		capacity: uint64(capacity),
		free:     []Extent{{Base: 0, Size: uint64(capacity)}},
	}, nil
}

// Capacity reports the size of the managed address space.
func (a *ExtentAllocator) Capacity() units.Size { return units.Size(a.capacity) }

// Remaining sums the free extents.
func (a *ExtentAllocator) Remaining() units.Size {
	var n uint64
	for _, e := range a.free {
		n += e.Size
	}
	return units.Size(n)
}

// FreeExtents returns a copy of the free list (sorted by base).
func (a *ExtentAllocator) FreeExtents() []Extent {
	out := make([]Extent, len(a.free))
	copy(out, a.free)
	return out
}

// Alloc reserves a contiguous extent of exactly size bytes, first-fit.
// It fails when size is invalid or no single free extent is large
// enough, even if the fragmented total would suffice — callers that can
// live with a scattered grant use AllocAny in a loop instead.
func (a *ExtentAllocator) Alloc(size units.Size) (Extent, error) {
	if size <= 0 || size%units.CacheLine != 0 {
		return Extent{}, fmt.Errorf("cxl: extent alloc: invalid size %d", size)
	}
	want := uint64(size)
	for i, e := range a.free {
		if e.Size < want {
			continue
		}
		out := Extent{Base: e.Base, Size: want}
		if e.Size == want {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = Extent{Base: e.Base + want, Size: e.Size - want}
		}
		return out, nil
	}
	return Extent{}, fmt.Errorf("cxl: extent alloc: no free extent holds %v (remaining %v)", size, a.Remaining())
}

// AllocAny reserves the lowest free extent, clipped to at most max
// bytes. ok is false when the space is exhausted or max is not a
// positive line multiple. Looping AllocAny until a demand is met walks
// a fragmented space chunk by chunk.
func (a *ExtentAllocator) AllocAny(max units.Size) (Extent, bool) {
	if max <= 0 || max%units.CacheLine != 0 || len(a.free) == 0 {
		return Extent{}, false
	}
	e := a.free[0]
	got := e.Size
	if got > uint64(max) {
		got = uint64(max)
	}
	out := Extent{Base: e.Base, Size: got}
	if e.Size == got {
		a.free = a.free[1:]
	} else {
		a.free[0] = Extent{Base: e.Base + got, Size: e.Size - got}
	}
	return out, true
}

// Free returns an extent to the pool, coalescing with free neighbours.
// A release that is unaligned, escapes the address space, or overlaps
// the free list (double release) is refused with no state change.
func (a *ExtentAllocator) Free(ext Extent) error {
	if ext.Size == 0 || ext.Base%uint64(units.CacheLine) != 0 || ext.Size%uint64(units.CacheLine) != 0 {
		return fmt.Errorf("cxl: extent free: invalid extent %v", ext)
	}
	if ext.End() < ext.Base || ext.End() > a.capacity {
		return fmt.Errorf("cxl: extent free: %v outside capacity %#x", ext, a.capacity)
	}
	// Find the insertion point: first free extent at or after ext.
	i := 0
	for i < len(a.free) && a.free[i].Base < ext.Base {
		i++
	}
	if i > 0 && a.free[i-1].End() > ext.Base {
		return fmt.Errorf("cxl: extent free: %v overlaps free %v (double release?)", ext, a.free[i-1])
	}
	if i < len(a.free) && ext.End() > a.free[i].Base {
		return fmt.Errorf("cxl: extent free: %v overlaps free %v (double release?)", ext, a.free[i])
	}
	// Coalesce with the left and/or right neighbour.
	mergeLeft := i > 0 && a.free[i-1].End() == ext.Base
	mergeRight := i < len(a.free) && a.free[i].Base == ext.End()
	switch {
	case mergeLeft && mergeRight:
		a.free[i-1].Size += ext.Size + a.free[i].Size
		a.free = append(a.free[:i], a.free[i+1:]...)
	case mergeLeft:
		a.free[i-1].Size += ext.Size
	case mergeRight:
		a.free[i].Base = ext.Base
		a.free[i].Size += ext.Size
	default:
		a.free = append(a.free, Extent{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = ext
	}
	return nil
}
