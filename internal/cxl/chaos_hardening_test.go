package cxl

import (
	"errors"
	"testing"
	"time"
)

// withWatchdog fails the test if fn does not return within d — the
// chaos-hardening tests' hang detector (before the Detach drain fix,
// several of these scenarios wedged forever).
func withWatchdog(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("watchdog expired: scenario wedged")
	}
}

// TestDetachCompletesPublishedDescriptors is the surprise-removal
// regression test: descriptors submitted (published, unflushed) before
// a Detach must complete with ErrLinkDown instead of leaving their
// waiters and harvesters blocked forever. Without the drainRings call
// in Detach this test hangs.
func TestDetachCompletesPublishedDescriptors(t *testing.T) {
	rp := ringPort(t)
	var bufs [8][LineSize]byte
	var tokens []*Completion
	for i := 0; i < 8; i++ {
		c, err := rp.SubmitRead(vcBlock(i)+uint64(i*LineSize), &bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		tokens = append(tokens, c)
	}
	// No Flush: the descriptors are published but nothing has moved.
	rp.Detach()
	withWatchdog(t, 10*time.Second, func() {
		for i, c := range tokens {
			if err := c.Wait(); !errors.Is(err, ErrLinkDown) {
				t.Errorf("token %d: %v, want ErrLinkDown", i, err)
			}
		}
	})
	// The rings must stay usable as error sources, not wedge: a
	// post-detach submission publishes fine (link state is a flush-time
	// property) and completes with ErrLinkDown.
	var line [LineSize]byte
	c, err := rp.SubmitRead(0, &line)
	if err != nil {
		t.Fatalf("post-detach submit: %v", err)
	}
	withWatchdog(t, 10*time.Second, func() {
		if err := c.Wait(); !errors.Is(err, ErrLinkDown) {
			t.Errorf("post-detach completion: %v, want ErrLinkDown", err)
		}
	})
}

// TestFailedRetrainDrainsDescriptors: CompleteRetrain(false) is a
// surprise removal from the Retraining state — queued descriptors
// complete with ErrLinkDown, parked transactions unblock.
func TestFailedRetrainDrainsDescriptors(t *testing.T) {
	rp := ringPort(t)
	if err := rp.StartRetrain(); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	c, err := rp.SubmitWrite(0, &line)
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() {
		var l [LineSize]byte
		parked <- rp.WriteLine(uint64(LineSize), &l)
	}()
	time.Sleep(2 * time.Millisecond) // let the sync op park
	rp.CompleteRetrain(false)
	withWatchdog(t, 10*time.Second, func() {
		if err := c.Wait(); !errors.Is(err, ErrLinkDown) {
			t.Errorf("queued descriptor: %v, want ErrLinkDown", err)
		}
		if err := <-parked; !errors.Is(err, ErrLinkDown) {
			t.Errorf("parked transaction: %v, want ErrLinkDown", err)
		}
	})
	if rp.State() != LinkDown {
		t.Errorf("state %v after failed retrain, want down", rp.State())
	}
}

// TestRetrainParkAndReplay: transactions arriving while the link
// retrains park and replay when it comes back up — no error surfaces
// and the data round-trips.
func TestRetrainParkAndReplay(t *testing.T) {
	rp := ringPort(t)
	if err := rp.StartRetrain(); err != nil {
		t.Fatal(err)
	}
	if got := rp.State(); got != Retraining {
		t.Fatalf("state %v after StartRetrain, want retraining", got)
	}
	time.AfterFunc(5*time.Millisecond, func() { rp.CompleteRetrain(true) })
	var line [LineSize]byte
	for i := range line {
		line[i] = byte(i ^ 0x5A)
	}
	start := time.Now()
	withWatchdog(t, 10*time.Second, func() {
		if err := rp.WriteLine(0, &line); err != nil {
			t.Errorf("parked write: %v", err)
		}
	})
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("write completed in %v: did not park across the retrain", elapsed)
	}
	var out [LineSize]byte
	if err := rp.ReadLine(0, &out); err != nil {
		t.Fatal(err)
	}
	if out != line {
		t.Error("replayed write did not round-trip")
	}
	if got := rp.Stats().Retrains; got != 1 {
		t.Errorf("retrains = %d, want 1", got)
	}
}

// TestRetrainTimeout: a retrain that never completes bounds the parked
// transaction at RetrainTimeout with ErrTimeout, counts it, and the
// port recovers fully once the link finally trains.
func TestRetrainTimeout(t *testing.T) {
	rp := ringPort(t)
	rp.SetOptions(PortOptions{RetrainTimeout: 10 * time.Millisecond})
	if err := rp.StartRetrain(); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	withWatchdog(t, 10*time.Second, func() {
		if err := rp.WriteLine(0, &line); !errors.Is(err, ErrTimeout) {
			t.Errorf("parked write past deadline: %v, want ErrTimeout", err)
		}
	})
	if got := rp.Stats().Timeouts; got == 0 {
		t.Error("expired retrain park not counted in Timeouts")
	}
	rp.CompleteRetrain(true)
	if err := rp.WriteLine(0, &line); err != nil {
		t.Errorf("write after recovered retrain: %v", err)
	}
}

// TestWaitTimeoutAbandon: a waiter whose deadline expires while another
// flusher is stuck mid-span gets ErrTimeout; when the completion lands
// late, the completer self-consumes the abandoned slot and the ring
// keeps working for several more laps.
func TestWaitTimeoutAbandon(t *testing.T) {
	rp := ringPort(t)
	block := make(chan struct{})
	var gated bool
	rp.SetFault(func(f Flit) Flit {
		if !gated {
			gated = true
			<-block // strand the flusher mid-transaction
		}
		return f
	})
	var line [LineSize]byte
	c, err := rp.SubmitWrite(0, &line)
	if err != nil {
		t.Fatal(err)
	}
	flushed := make(chan struct{})
	go func() {
		rp.Flush() // claims the span, blocks in the fault hook
		close(flushed)
	}()
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	err = c.WaitTimeout(5 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitTimeout = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("WaitTimeout took %v: deadline not honoured", elapsed)
	}
	if got := rp.Stats().Timeouts; got == 0 {
		t.Error("abandoned wait not counted in Timeouts")
	}
	close(block)
	<-flushed
	rp.SetFault(nil)
	// The abandoned slot must have been self-consumed: the same VC runs
	// several full laps without wedging.
	withWatchdog(t, 10*time.Second, func() {
		for i := 0; i < 3*RingSlots; i++ {
			if err := rp.WriteLine(0, &line); err != nil {
				t.Fatalf("post-abandon write %d: %v", i, err)
			}
		}
	})
}

// TestWaitTimeoutCompletedFast: a deadline far in the future degrades
// to a normal wait and returns the real completion.
func TestWaitTimeoutCompletedFast(t *testing.T) {
	rp := ringPort(t)
	var line [LineSize]byte
	c, err := rp.SubmitWrite(0, &line)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("WaitTimeout with ample deadline: %v", err)
	}
	if got := rp.Stats().Timeouts; got != 0 {
		t.Errorf("successful wait counted as timeout (%d)", got)
	}
}

// TestRetryBackoffBudget: PortOptions govern the retransmission budget
// and pace retries with exponential backoff — a permanently corrupted
// link burns the enlarged budget, takes at least the deterministic
// minimum backoff time, and reports ErrUncorrectable.
func TestRetryBackoffBudget(t *testing.T) {
	rp := ringPort(t)
	rp.SetOptions(PortOptions{MaxLinkRetries: 5, RetryBackoff: time.Millisecond})
	if got := rp.Options().MaxLinkRetries; got != 5 {
		t.Fatalf("MaxLinkRetries = %d after SetOptions, want 5", got)
	}
	rp.SetFault(func(f Flit) Flit { return f.Corrupt(9) })
	var line [LineSize]byte
	start := time.Now()
	err := rp.WriteLine(0, &line)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("hard-corrupted write: %v, want ErrUncorrectable", err)
	}
	if got := rp.Stats().Retries; got != 5 {
		t.Errorf("retries = %d, want the budget 5", got)
	}
	// Five attempts back off 1+2+4+8+8 ms (capped at 8×), jittered down
	// at most 25%: ≥ ~17ms in the worst case.
	if elapsed < 15*time.Millisecond {
		t.Errorf("budget burned in %v: backoff not applied", elapsed)
	}
	rp.SetFault(nil)
	if err := rp.WriteLine(0, &line); err != nil {
		t.Errorf("clean write after budget exhaustion: %v", err)
	}
}

// TestPortTimeoutTelemetry: the new Timeouts/Retrains counters surface
// through the registry as cxl_port_timeouts_total / cxl_port_retrains_total.
func TestPortTimeoutTelemetry(t *testing.T) {
	rp, reg, _ := telemetryPort(t)
	rp.SetOptions(PortOptions{RetrainTimeout: 5 * time.Millisecond})
	if err := rp.StartRetrain(); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	if err := rp.WriteLine(0, &line); !errors.Is(err, ErrTimeout) {
		t.Fatalf("parked write: %v, want ErrTimeout", err)
	}
	rp.CompleteRetrain(true)
	want := map[string]float64{"cxl_port_timeouts_total": 1, "cxl_port_retrains_total": 1}
	for _, s := range reg.Gather() {
		if exp, ok := want[s.Name]; ok {
			if s.Value != exp {
				t.Errorf("%s = %v, want %v", s.Name, s.Value, exp)
			}
			delete(want, s.Name)
		}
	}
	for name := range want {
		t.Errorf("metric %s not gathered", name)
	}
}
