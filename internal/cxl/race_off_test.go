//go:build !race

package cxl

// raceEnabled reports whether the race detector is active. Allocation
// guards skip under it: sync.Pool deliberately drops a fraction of Puts
// when race-instrumented, so pooled paths show spurious allocations
// that say nothing about the production build.
const raceEnabled = false
