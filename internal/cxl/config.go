package cxl

import (
	"encoding/binary"
	"fmt"
)

// CXL.io configuration model. Real CXL devices are enumerated over the
// PCIe configuration mechanism and identified by a Designated Vendor-
// Specific Extended Capability (DVSEC) with the CXL vendor ID. We model a
// 4 KiB config space per endpoint with the standard header fields and the
// CXL device DVSEC, which is what Enumerate walks.

// ConfigSpaceSize is the PCIe extended configuration space size.
const ConfigSpaceSize = 4096

// Standard configuration offsets.
const (
	cfgVendorID  = 0x00 // u16
	cfgDeviceID  = 0x02 // u16
	cfgClassCode = 0x09 // u24 (we store the 3 bytes at 0x09..0x0C)
	cfgExtCapPtr = 0x100
)

// CXLVendorID is the CXL consortium vendor ID used in the DVSEC header.
const CXLVendorID = 0x1E98

// DVSEC IDs for CXL capability structures (subset).
const (
	// DVSECCXLDevice identifies the "PCIe DVSEC for CXL Devices"
	// structure carrying device capabilities.
	DVSECCXLDevice = 0x0000
)

// Extended capability ID for DVSEC.
const extCapIDDVSEC = 0x0023

// DVSEC layout within extended config space (offsets relative to the
// capability base):
//
//	0x0  u32 header: cap ID (16) | version (4) | next ptr (12)
//	0x4  u32 DVSEC header1: vendor ID (16) | rev (4) | length (12)
//	0x8  u16 DVSEC ID
//	0xA  u16 capability bits: bit0 cache, bit1 io, bit2 mem
//	0xC  u64 HDM size hint (non-standard convenience field)
const dvsecLen = 0x14

// CapabilityBits advertise which CXL protocols the endpoint speaks.
type CapabilityBits uint16

const (
	// CapCache — the device can issue CXL.cache (Type 1 and 2).
	CapCache CapabilityBits = 1 << 0
	// CapIO — CXL.io is mandatory for every CXL device.
	CapIO CapabilityBits = 1 << 1
	// CapMem — the device exposes HDM via CXL.mem (Type 2 and 3).
	CapMem CapabilityBits = 1 << 2
)

func (c CapabilityBits) String() string {
	s := ""
	if c&CapCache != 0 {
		s += "cache+"
	}
	if c&CapIO != 0 {
		s += "io+"
	}
	if c&CapMem != 0 {
		s += "mem+"
	}
	if s == "" {
		return "none"
	}
	return s[:len(s)-1]
}

// ConfigSpace is one endpoint's PCIe/CXL configuration space.
type ConfigSpace struct {
	data [ConfigSpaceSize]byte
}

// ConfigError reports an invalid config-space access.
type ConfigError struct {
	Off int
	Len int
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("cxl: config access [%d,%d) outside 4KiB space", e.Off, e.Off+e.Len)
}

// Read32 reads a 32-bit register.
func (c *ConfigSpace) Read32(off int) (uint32, error) {
	if off < 0 || off+4 > ConfigSpaceSize {
		return 0, &ConfigError{Off: off, Len: 4}
	}
	return binary.LittleEndian.Uint32(c.data[off:]), nil
}

// Write32 writes a 32-bit register.
func (c *ConfigSpace) Write32(off int, v uint32) error {
	if off < 0 || off+4 > ConfigSpaceSize {
		return &ConfigError{Off: off, Len: 4}
	}
	binary.LittleEndian.PutUint32(c.data[off:], v)
	return nil
}

// VendorID returns the PCI vendor ID.
func (c *ConfigSpace) VendorID() uint16 { return binary.LittleEndian.Uint16(c.data[cfgVendorID:]) }

// DeviceID returns the PCI device ID.
func (c *ConfigSpace) DeviceID() uint16 { return binary.LittleEndian.Uint16(c.data[cfgDeviceID:]) }

// ClassCode returns the 24-bit class code.
func (c *ConfigSpace) ClassCode() uint32 {
	return uint32(c.data[cfgClassCode]) | uint32(c.data[cfgClassCode+1])<<8 | uint32(c.data[cfgClassCode+2])<<16
}

// ClassMemoryCXL is the class code for a CXL memory device (05h base
// class = memory controller, 02h sub-class = CXL).
const ClassMemoryCXL = 0x050210

// InitIdentity programs the identity registers.
func (c *ConfigSpace) InitIdentity(vendor, device uint16, class uint32) {
	binary.LittleEndian.PutUint16(c.data[cfgVendorID:], vendor)
	binary.LittleEndian.PutUint16(c.data[cfgDeviceID:], device)
	c.data[cfgClassCode] = byte(class)
	c.data[cfgClassCode+1] = byte(class >> 8)
	c.data[cfgClassCode+2] = byte(class >> 16)
}

// InstallCXLDVSEC writes the CXL device DVSEC at the first extended
// capability slot, advertising caps and an HDM size hint.
func (c *ConfigSpace) InstallCXLDVSEC(caps CapabilityBits, hdmSize uint64) {
	base := cfgExtCapPtr
	// Extended capability header: DVSEC id, version 1, no next.
	binary.LittleEndian.PutUint32(c.data[base:], uint32(extCapIDDVSEC)|1<<16)
	// DVSEC header1.
	binary.LittleEndian.PutUint32(c.data[base+4:], uint32(CXLVendorID)|uint32(dvsecLen)<<20)
	binary.LittleEndian.PutUint16(c.data[base+8:], DVSECCXLDevice)
	binary.LittleEndian.PutUint16(c.data[base+0xA:], uint16(caps))
	binary.LittleEndian.PutUint64(c.data[base+0xC:], hdmSize)
}

// DVSECInfo is the parsed CXL DVSEC.
type DVSECInfo struct {
	Caps    CapabilityBits
	HDMSize uint64
}

// FindCXLDVSEC walks the extended capability list looking for the CXL
// device DVSEC; ok is false for a non-CXL device.
func (c *ConfigSpace) FindCXLDVSEC() (DVSECInfo, bool) {
	base := cfgExtCapPtr
	hdr := binary.LittleEndian.Uint32(c.data[base:])
	if hdr&0xFFFF != extCapIDDVSEC {
		return DVSECInfo{}, false
	}
	h1 := binary.LittleEndian.Uint32(c.data[base+4:])
	if h1&0xFFFF != CXLVendorID {
		return DVSECInfo{}, false
	}
	if binary.LittleEndian.Uint16(c.data[base+8:]) != DVSECCXLDevice {
		return DVSECInfo{}, false
	}
	return DVSECInfo{
		Caps:    CapabilityBits(binary.LittleEndian.Uint16(c.data[base+0xA:])),
		HDMSize: binary.LittleEndian.Uint64(c.data[base+0xC:]),
	}, true
}
