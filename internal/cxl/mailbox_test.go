package cxl

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
)

func testMailbox(t *testing.T) (*Mailbox, *Type3Device) {
	t.Helper()
	dev := testType3(t)
	mb, err := NewMailbox(dev, "fw-0.9")
	if err != nil {
		t.Fatal(err)
	}
	return mb, dev
}

func TestMailboxIdentify(t *testing.T) {
	mb, dev := testMailbox(t)
	out, status := mb.Execute(OpIdentifyMemDevice, nil)
	if status != MboxSuccess {
		t.Fatalf("status = %v", status)
	}
	id, err := DecodeIdentity(out)
	if err != nil {
		t.Fatal(err)
	}
	if id.Vendor != 0x8086 || id.Device != 0x0D93 {
		t.Errorf("identity = %+v", id)
	}
	if id.TotalCap != uint64(dev.Media().Capacity().Bytes()) {
		t.Errorf("capacity = %d", id.TotalCap)
	}
	if !id.Persistent || id.LineSize != 64 || id.FirmwareRev != "fw-0.9" {
		t.Errorf("identity = %+v", id)
	}
	if _, err := DecodeIdentity(out[:10]); err == nil {
		t.Error("short identity accepted")
	}
}

func TestMailboxHealthReflectsBattery(t *testing.T) {
	mb, _ := testMailbox(t)
	out, status := mb.Execute(OpGetHealthInfo, nil)
	if status != MboxSuccess {
		t.Fatal(status)
	}
	h, err := DecodeHealth(out)
	if err != nil {
		t.Fatal(err)
	}
	if !h.MediaOK || !h.BatteryOK || h.PoisonedLines != 0 {
		t.Errorf("health = %+v", h)
	}
	if _, err := DecodeHealth(nil); err == nil {
		t.Error("short health accepted")
	}
}

func TestMailboxPartitionInfo(t *testing.T) {
	mb, dev := testMailbox(t)
	out, status := mb.Execute(OpGetPartitionInfo, nil)
	if status != MboxSuccess {
		t.Fatal(status)
	}
	pi, err := DecodePartitionInfo(out)
	if err != nil {
		t.Fatal(err)
	}
	// Battery-backed media: all persistent, no volatile partition.
	if pi.VolatileBytes != 0 || pi.PersistentBytes != uint64(dev.Media().Capacity().Bytes()) {
		t.Errorf("partition = %+v", pi)
	}
	if _, err := DecodePartitionInfo([]byte{1}); err == nil {
		t.Error("short partition accepted")
	}
}

func TestMailboxPoisonLifecycle(t *testing.T) {
	mb, dev := testMailbox(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	addr := make([]byte, 8)
	binary.LittleEndian.PutUint64(addr, 0x1000)
	if _, status := mb.Execute(OpInjectPoison, addr); status != MboxSuccess {
		t.Fatalf("inject = %v", status)
	}
	// Reads of the poisoned line fail through the CXL.mem path.
	resp := dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x1000})
	if resp.Opcode != RespErr {
		t.Error("poisoned line served data")
	}
	// Neighbouring lines unaffected.
	if resp := dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x1040}); resp.Opcode != RespMemData {
		t.Error("poison leaked to neighbour line")
	}
	// List reflects it.
	out, status := mb.Execute(OpGetPoisonList, nil)
	if status != MboxSuccess {
		t.Fatal(status)
	}
	list, err := DecodePoisonList(out)
	if err != nil || len(list) != 1 || list[0] != 0x1000 {
		t.Errorf("poison list = %v, %v", list, err)
	}
	// Health counts it.
	hb, _ := mb.Execute(OpGetHealthInfo, nil)
	h, _ := DecodeHealth(hb)
	if h.PoisonedLines != 1 {
		t.Errorf("health poisoned = %d", h.PoisonedLines)
	}
	// Clear restores access.
	if _, status := mb.Execute(OpClearPoison, addr); status != MboxSuccess {
		t.Fatal("clear failed")
	}
	if resp := dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x1000}); resp.Opcode != RespMemData {
		t.Error("cleared line still failing")
	}
}

func TestMailboxPoisonValidation(t *testing.T) {
	mb, _ := testMailbox(t)
	if _, status := mb.Execute(OpInjectPoison, []byte{1, 2}); status != MboxInvalidInput {
		t.Error("short payload accepted")
	}
	addr := make([]byte, 8)
	binary.LittleEndian.PutUint64(addr, 0x1001) // unaligned
	if _, status := mb.Execute(OpInjectPoison, addr); status != MboxInvalidInput {
		t.Error("unaligned DPA accepted")
	}
	binary.LittleEndian.PutUint64(addr, 1<<40) // beyond media
	if _, status := mb.Execute(OpInjectPoison, addr); status != MboxInvalidInput {
		t.Error("out-of-media DPA accepted")
	}
	if _, status := mb.Execute(MailboxOpcode(0x9999), nil); status != MboxUnsupported {
		t.Error("unknown opcode not rejected")
	}
	if MboxSuccess.String() == "" || MailboxStatus(77).String() == "" {
		t.Error("status strings")
	}
	if _, err := DecodePoisonList([]byte{1}); err == nil {
		t.Error("short poison list accepted")
	}
	if _, err := DecodePoisonList([]byte{2, 0, 0, 0, 1, 2, 3}); err == nil {
		t.Error("truncated poison list accepted")
	}
	if _, err := NewMailbox(nil, ""); err == nil {
		t.Error("nil device accepted")
	}
}

func TestMailboxSanitize(t *testing.T) {
	mb, dev := testMailbox(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	line[0] = 0xEE
	if resp := dev.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0x400, Data: line}); resp.Opcode != RespCmp {
		t.Fatal("seed write failed")
	}
	addr := make([]byte, 8)
	binary.LittleEndian.PutUint64(addr, 0x2000)
	if _, status := mb.Execute(OpInjectPoison, addr); status != MboxSuccess {
		t.Fatal("inject failed")
	}
	if _, status := mb.Execute(OpSanitize, nil); status != MboxSuccess {
		t.Fatal("sanitize failed")
	}
	resp := dev.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x400})
	if resp.Opcode != RespMemData || resp.Data[0] != 0 {
		t.Error("sanitize left data behind")
	}
	// Poison list cleared too.
	out, _ := mb.Execute(OpGetPoisonList, nil)
	list, _ := DecodePoisonList(out)
	if len(list) != 0 {
		t.Error("sanitize left poison entries")
	}
}

func TestLinkRetryRecoversTransientCorruption(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	// Corrupt the first two flits only; the LRSM retransmits.
	var n atomic.Int64
	rp.SetFault(func(f Flit) Flit {
		if n.Add(1) <= 2 {
			return f.Corrupt(100)
		}
		return f
	})
	var in, out [LineSize]byte
	in[0] = 0x5A
	if err := rp.WriteLine(0, &in); err != nil {
		t.Fatalf("write with transient corruption: %v", err)
	}
	if err := rp.ReadLine(0, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Error("data corrupted despite retry")
	}
	if rp.Stats().Retries != 2 {
		t.Errorf("retries = %d, want 2", rp.Stats().Retries)
	}
}

func TestLinkRetryGivesUpOnPersistentFault(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	rp.SetFault(func(f Flit) Flit { return f.Corrupt(7) }) // always bad
	var line [LineSize]byte
	err := rp.WriteLine(0, &line)
	if err == nil {
		t.Fatal("persistent corruption not detected")
	}
	pe, ok := err.(*PortError)
	if !ok || pe.Why == "" {
		t.Errorf("err = %v, want PortError(uncorrectable)", err)
	}
	if rp.Stats().Retries < maxLinkRetries {
		t.Errorf("retries = %d, want >= %d", rp.Stats().Retries, maxLinkRetries)
	}
}

// TestDecodeListLengthOverflow feeds the list decoders hostile counts
// whose byte-length products wrap a 32-bit int: the length check must
// reject them instead of over-allocating and indexing past the buffer.
func TestDecodeListLengthOverflow(t *testing.T) {
	// 24*178956971 ≡ 8 (mod 2^32): a 12-byte payload would pass a
	// 32-bit check.
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b, 178956971)
	if _, err := DecodeDCDExtentList(b); err == nil {
		t.Error("overflowing DCD extent count accepted")
	}
	// 8*536870912 ≡ 0 (mod 2^32): a 4-byte poison payload would pass.
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, 536870912)
	if _, err := DecodePoisonList(p); err == nil {
		t.Error("overflowing poison count accepted")
	}
}
