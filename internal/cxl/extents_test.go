package cxl

import (
	"testing"

	"cxlpmem/internal/units"
)

func newAlloc(t *testing.T, cap units.Size) *ExtentAllocator {
	t.Helper()
	a, err := NewExtentAllocator(cap)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestExtentAllocatorValidation(t *testing.T) {
	if _, err := NewExtentAllocator(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewExtentAllocator(units.CacheLine + 1); err == nil {
		t.Error("unaligned capacity accepted")
	}
	a := newAlloc(t, units.MiB)
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := a.Alloc(-64); err == nil {
		t.Error("negative alloc accepted")
	}
	if _, err := a.Alloc(33); err == nil {
		t.Error("unaligned alloc accepted")
	}
	if _, err := a.Alloc(2 * units.MiB); err == nil {
		t.Error("over-capacity alloc accepted")
	}
	if a.Remaining() != units.MiB {
		t.Errorf("failed allocs changed Remaining to %v", a.Remaining())
	}
}

func TestExtentAllocatorFirstFitAndFragmentation(t *testing.T) {
	a := newAlloc(t, 1024*units.CacheLine)
	line := uint64(units.CacheLine)
	// Carve four extents, free the 2nd and 4th: free list holds two
	// fragments plus the tail.
	var exts []Extent
	for i := 0; i < 4; i++ {
		e, err := a.Alloc(100 * units.CacheLine)
		if err != nil {
			t.Fatal(err)
		}
		if e.Base != uint64(i)*100*line {
			t.Errorf("extent %d at %#x, want first-fit order", i, e.Base)
		}
		exts = append(exts, e)
	}
	if err := a.Free(exts[1]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(exts[3]); err != nil {
		t.Fatal(err)
	}
	// A request larger than any fragment but smaller than the total
	// free space must fail (contiguous-only)...
	if free := a.Remaining(); free != (1024-200)*units.CacheLine {
		t.Fatalf("remaining = %v", free)
	}
	// ...while fragment-sized requests land in the lowest hole first.
	e, err := a.Alloc(100 * units.CacheLine)
	if err != nil {
		t.Fatal(err)
	}
	if e.Base != exts[1].Base {
		t.Errorf("first-fit chose %#x, want lowest hole %#x", e.Base, exts[1].Base)
	}
	// AllocAny walks the fragments: freeing extent 0 leaves hole 0 and
	// hole 3 (+tail, which coalesced with hole 3's right edge).
	if err := a.Free(exts[0]); err != nil {
		t.Fatal(err)
	}
	got, ok := a.AllocAny(1024 * units.CacheLine)
	if !ok || got.Base != 0 || got.Size != 100*line {
		t.Errorf("AllocAny = %v,%v; want first fragment [0+100 lines)", got, ok)
	}
}

func TestExtentAllocatorCoalescing(t *testing.T) {
	a := newAlloc(t, units.MiB)
	left, err := a.Alloc(256 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := a.Alloc(256 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	right, err := a.Alloc(256 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	// Free left and right: two separate fragments + the tail.
	if err := a.Free(left); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(right); err != nil {
		t.Fatal(err)
	}
	if got := len(a.FreeExtents()); got != 2 {
		t.Fatalf("free list has %d extents, want 2 (left, right+tail)", got)
	}
	// Freeing the middle merges everything back into one extent.
	if err := a.Free(mid); err != nil {
		t.Fatal(err)
	}
	free := a.FreeExtents()
	if len(free) != 1 || free[0].Base != 0 || free[0].Size != uint64(units.MiB) {
		t.Errorf("free list = %v, want one full extent", free)
	}
	if a.Remaining() != units.MiB {
		t.Errorf("remaining = %v after full release", a.Remaining())
	}
}

func TestExtentAllocatorDoubleRelease(t *testing.T) {
	a := newAlloc(t, units.MiB)
	e, err := a.Alloc(128 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(e); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(e); err == nil {
		t.Error("double release accepted")
	}
	// Partially overlapping the free list is refused too.
	if err := a.Free(Extent{Base: e.Base + uint64(64*units.KiB), Size: uint64(128 * units.KiB)}); err == nil {
		t.Error("overlapping release accepted")
	}
	// Escaping the address space is refused.
	if err := a.Free(Extent{Base: uint64(units.MiB), Size: 64}); err == nil {
		t.Error("out-of-space release accepted")
	}
	if err := a.Free(Extent{Base: 0, Size: 0}); err == nil {
		t.Error("zero-size release accepted")
	}
	if a.Remaining() != units.MiB {
		t.Errorf("remaining = %v, want full capacity", a.Remaining())
	}
}

func TestExtentAllocatorAllocAnyExhaustion(t *testing.T) {
	a := newAlloc(t, 4*units.KiB)
	var got []Extent
	for {
		e, ok := a.AllocAny(units.KiB)
		if !ok {
			break
		}
		got = append(got, e)
	}
	if len(got) != 4 {
		t.Fatalf("AllocAny yielded %d chunks, want 4", len(got))
	}
	if a.Remaining() != 0 {
		t.Errorf("remaining = %v after exhaustion", a.Remaining())
	}
	if _, ok := a.AllocAny(64); ok {
		t.Error("AllocAny succeeded on empty space")
	}
	for _, e := range got {
		if err := a.Free(e); err != nil {
			t.Fatal(err)
		}
	}
	if free := a.FreeExtents(); len(free) != 1 || free[0].Size != uint64(4*units.KiB) {
		t.Errorf("free list = %v, want one coalesced extent", free)
	}
}
