package cxl

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// concurrencyPort builds a trained port over a Type-3 device with one
// identity-mapped decoder of the given size.
func concurrencyPort(t *testing.T, size uint64) (*RootPort, *Type3Device) {
	t.Helper()
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "conc-dram", Rate: 3200, Channels: 1,
		CapacityPerChannel: units.Size(size),
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewType3("conc-dev", 0x8086, 0x0001, media)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: size}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	return rp, dev
}

// TestConcurrentMixedTrafficNoDuplicateTags drives many goroutines of
// mixed line and burst traffic through one port and asserts the
// multi-queue tag discipline: with fewer transactions than the tag
// space holds, no two transactions may ever receive the same tag, and
// the per-VC issue counters must account for every transaction.
func TestConcurrentMixedTrafficNoDuplicateTags(t *testing.T) {
	const (
		workers     = 8
		rounds      = 60
		regionBytes = 16 << 10 // per-worker region
	)
	rp, _ := concurrencyPort(t, workers*regionBytes)

	var tagMu sync.Mutex
	tags := make(map[uint16]int)
	rp.SetFlitTrace(func(f Flit) {
		// Submissions travel either as full request flits (writes, burst
		// headers) or packed four-per-flit SQ entries (reads); both carry
		// the wire tag.
		switch f.raw[0] {
		case flitKindReq:
			var req MemReq
			if DecodeReqInto(&req, &f) != nil {
				return
			}
			tagMu.Lock()
			tags[req.Tag]++
			tagMu.Unlock()
		case flitKindSQ:
			var sqes [SQEntriesPerFlit]SQE
			n, err := DecodeSQInto(&sqes, &f)
			if err != nil {
				return
			}
			tagMu.Lock()
			for i := 0; i < n; i++ {
				tags[sqes[i].Tag]++
			}
			tagMu.Unlock()
		}
	})

	var issued atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * regionBytes)
			burst := make([]byte, 4096)
			var line [LineSize]byte
			for i := 0; i < rounds; i++ {
				for j := range burst {
					burst[j] = byte(w ^ i ^ j)
				}
				if err := rp.WriteBurst(base, burst); err != nil {
					errs[w] = err
					return
				}
				got := make([]byte, len(burst))
				if err := rp.ReadBurst(base, got); err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(burst, got) {
					errs[w] = &PortError{Port: "conc", Op: "verify", Addr: base, Why: "burst read-back mismatch (lost update)"}
					return
				}
				lineAddr := base + 8192
				for j := range line {
					line[j] = byte(w + i + j)
				}
				if err := rp.WriteLine(lineAddr, &line); err != nil {
					errs[w] = err
					return
				}
				var back [LineSize]byte
				if err := rp.ReadLine(lineAddr, &back); err != nil {
					errs[w] = err
					return
				}
				if back != line {
					errs[w] = &PortError{Port: "conc", Op: "verify", Addr: lineAddr, Why: "line read-back mismatch (lost update)"}
					return
				}
				issued.Add(4)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Tag uniqueness: every issued transaction carries a distinct
	// (VC, sequence) pair until a VC's sequence wraps at 2^13; the
	// test issues far fewer.
	tagMu.Lock()
	defer tagMu.Unlock()
	for tag, n := range tags {
		if n != 1 {
			t.Errorf("tag %#x issued %d times (duplicate in-flight tag)", tag, n)
		}
	}
	if int64(len(tags)) != issued.Load() {
		t.Errorf("traced %d distinct request tags, want %d", len(tags), issued.Load())
	}
	var vcIssued int64
	for _, vc := range rp.Stats().VCs {
		vcIssued += vc.Issued
	}
	if vcIssued != issued.Load() {
		t.Errorf("per-VC issue counters sum to %d, want %d", vcIssued, issued.Load())
	}
}

// TestConcurrentTrafficWithFaultInjection runs the same mixed workload
// under deterministic fault injection: every 17th flit on the wire is
// corrupted once. Each corruption must cost exactly one link-level
// retransmission (never a failed transaction: retransmits are 17 moves
// apart, so a retried flit is never corrupted twice in a row), the
// port-level retry counter must equal the number of injected faults,
// and the per-VC retry counters must sum to it.
func TestConcurrentTrafficWithFaultInjection(t *testing.T) {
	const (
		workers     = 8
		rounds      = 40
		regionBytes = 8 << 10
	)
	rp, _ := concurrencyPort(t, workers*regionBytes)

	var moves, injected atomic.Int64
	rp.SetFault(func(f Flit) Flit {
		if moves.Add(1)%17 == 0 {
			injected.Add(1)
			return f.Corrupt(5)
		}
		return f
	})

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * regionBytes)
			burst := make([]byte, 2048)
			var line [LineSize]byte
			for i := 0; i < rounds; i++ {
				for j := range burst {
					burst[j] = byte(w*31 + i + j)
				}
				if err := rp.WriteBurst(base, burst); err != nil {
					errs[w] = err
					return
				}
				got := make([]byte, len(burst))
				if err := rp.ReadBurst(base, got); err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(burst, got) {
					errs[w] = &PortError{Port: "conc", Op: "verify", Addr: base, Why: "lost update under fault injection"}
					return
				}
				line[0] = byte(i)
				if err := rp.WriteLine(base+4096, &line); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got, want := rp.Stats().Retries, injected.Load(); got != want {
		t.Errorf("Retries() = %d, want %d (one retransmission per injected fault)", got, want)
	}
	var vcRetries int64
	for _, vc := range rp.Stats().VCs {
		vcRetries += vc.Retries
	}
	if vcRetries != rp.Stats().Retries {
		t.Errorf("per-VC retry counters sum to %d, want %d", vcRetries, rp.Stats().Retries)
	}
}

// TestHookSwapDuringTraffic swaps the trace and fault hooks while
// traffic is in flight: the snapshot pattern must keep every
// transaction on a consistent hook pair (the race detector guards the
// rest).
func TestHookSwapDuringTraffic(t *testing.T) {
	rp, _ := concurrencyPort(t, 1<<20)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var trafficErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := rp.WriteBurst(uint64(i%16)*4096, buf); err != nil {
				trafficErr = err
				return
			}
		}
	}()
	var traced atomic.Int64
	for i := 0; i < 200; i++ {
		rp.SetFlitTrace(func(Flit) { traced.Add(1) })
		rp.SetFault(func(f Flit) Flit { return f })
		rp.SetFlitTrace(nil)
		rp.SetFault(nil)
	}
	close(stop)
	wg.Wait()
	if trafficErr != nil {
		t.Fatalf("traffic failed during hook swaps: %v", trafficErr)
	}
}

// TestConcurrentPartitions drives every partition of one MLD from its
// own goroutine through its own port: per-partition traffic must
// proceed independently (no cross-partition interference, correct
// per-partition byte accounting).
func TestConcurrentPartitions(t *testing.T) {
	const parts = 4
	const partSize = 4 << 20
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "mld-dram", Rate: 3200, Channels: 1,
		CapacityPerChannel: parts * partSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	mld, err := NewMLD("mld", media)
	if err != nil {
		t.Fatal(err)
	}
	ports := make([]*RootPort, parts)
	lds := make([]*LogicalDevice, parts)
	for i := 0; i < parts; i++ {
		ld, err := mld.Carve("ld", partSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := ld.ProgramDecoder(&HDMDecoder{Base: 0, Size: partSize}); err != nil {
			t.Fatal(err)
		}
		lds[i] = ld
		ports[i] = trainedPort(t, ld)
	}
	var wg sync.WaitGroup
	errs := make([]error, parts)
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for j := range buf {
				buf[j] = byte(i)
			}
			got := make([]byte, 4096)
			for r := 0; r < 50; r++ {
				addr := uint64(r%4) * 4096
				if err := ports[i].WriteBurst(addr, buf); err != nil {
					errs[i] = err
					return
				}
				if err := ports[i].ReadBurst(addr, got); err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(buf, got) {
					errs[i] = &PortError{Port: "part", Op: "verify", Addr: addr, Why: "cross-partition interference"}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
	}
	for i, ld := range lds {
		wrote := ld.Media().Stats().BytesWrite.Load()
		if wrote != 50*4096 {
			t.Errorf("partition %d wrote %d bytes, want %d", i, wrote, 50*4096)
		}
	}
}

// TestSwitchRebindDuringTraffic races the switch control plane
// (Bind/Unbind/Rebind/EndpointFor/Bindings on spare vPPBs) against
// CXL.mem traffic flowing through root ports whose endpoints were
// resolved through the same switch. The routing snapshot must keep
// lookups wait-free and consistent while bindings churn; the race
// detector gates the whole interleaving on CI.
func TestSwitchRebindDuringTraffic(t *testing.T) {
	const hosts = 2
	const spares = 2
	const partSize = 1 << 20
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "sw-dram", Rate: 3200, Channels: 1,
		CapacityPerChannel: (hosts + spares) * partSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	mld, err := NewMLD("sw-mld", media)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch("sw0")
	carve := func(name string) *LogicalDevice {
		ld, err := mld.Carve(name, partSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := ld.ProgramDecoder(&HDMDecoder{Base: 0, Size: partSize}); err != nil {
			t.Fatal(err)
		}
		return ld
	}
	ports := make([]*RootPort, hosts)
	for i := 0; i < hosts; i++ {
		ld := carve("traffic-ld")
		dsp := fmt.Sprintf("dsp-traffic%d", i)
		if err := sw.AddDownstream(dsp, ld); err != nil {
			t.Fatal(err)
		}
		vppb := fmt.Sprintf("host%d", i)
		if err := sw.Bind(vppb, dsp); err != nil {
			t.Fatal(err)
		}
		ep, ok := sw.EndpointFor(vppb)
		if !ok {
			t.Fatal("no endpoint after bind")
		}
		ports[i] = trainedPort(t, ep)
	}
	for i := 0; i < spares; i++ {
		if err := sw.AddDownstream(fmt.Sprintf("dsp-spare%d", i), carve("spare-ld")); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var churnErr atomic.Value
	trafficErrs := make([]error, hosts)

	var traffic sync.WaitGroup
	for i := 0; i < hosts; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			buf := make([]byte, 4096)
			for j := range buf {
				buf[j] = byte(i + 1)
			}
			got := make([]byte, 4096)
			for r := 0; !stop.Load(); r++ {
				addr := uint64(r%4) * 4096
				if err := ports[i].WriteBurst(addr, buf); err != nil {
					trafficErrs[i] = err
					return
				}
				if err := ports[i].ReadBurst(addr, got); err != nil {
					trafficErrs[i] = err
					return
				}
				if !bytes.Equal(buf, got) {
					trafficErrs[i] = &PortError{Port: "switch", Op: "verify", Addr: addr, Why: "data changed under rebind churn"}
					return
				}
			}
		}(i)
	}

	// Control-plane churn: each churner walks its spare vPPB across the
	// spare downstream ports; a lookup goroutine hammers EndpointFor on
	// the vPPBs carrying live traffic the whole time.
	var churn sync.WaitGroup
	for c := 0; c < spares; c++ {
		churn.Add(1)
		go func(c int) {
			defer churn.Done()
			vppb := fmt.Sprintf("spare%d", c)
			dsps := []string{"dsp-spare0", "dsp-spare1"}
			for r := 0; r < 300; r++ {
				if err := sw.Bind(vppb, dsps[c]); err != nil {
					continue // the other churner holds the port right now
				}
				// Rebind may fail (target occupied); the binding must
				// survive either way so Unbind always succeeds.
				_ = sw.Rebind(vppb, dsps[1-c])
				if err := sw.Unbind(vppb); err != nil {
					churnErr.Store(err)
					return
				}
			}
		}(c)
	}
	churn.Add(1)
	go func() {
		defer churn.Done()
		for r := 0; r < 3000; r++ {
			for i := 0; i < hosts; i++ {
				if _, ok := sw.EndpointFor(fmt.Sprintf("host%d", i)); !ok {
					churnErr.Store(fmt.Errorf("traffic vPPB host%d lost its binding", i))
					return
				}
			}
			sw.EndpointFor("spare0")
			sw.Bindings()
		}
	}()

	churn.Wait()
	stop.Store(true)
	traffic.Wait()

	for i, err := range trafficErrs {
		if err != nil {
			t.Fatalf("host %d traffic failed: %v", i, err)
		}
	}
	if err := churnErr.Load(); err != nil {
		t.Fatalf("control-plane churn failed: %v", err)
	}
}
