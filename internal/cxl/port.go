package cxl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/interconnect"
)

// LinkState tracks root-port link training.
type LinkState int

const (
	// LinkDown — no endpoint attached or training failed.
	LinkDown LinkState = iota
	// LinkUp — training completed, transactions may flow.
	LinkUp
)

func (s LinkState) String() string {
	if s == LinkUp {
		return "up"
	}
	return "down"
}

// RootPort is a host-side CXL port: the CPU's view of one PCIe/CXL slot.
// It owns the physical link, performs link training against an attached
// endpoint, and carries CXL.mem traffic to it. Every request/response
// genuinely round-trips through the flit codec so protocol tests observe
// real wire behaviour; the steady-state data path allocates nothing.
type RootPort struct {
	name string
	link *interconnect.Link

	endpoint Endpoint
	state    LinkState
	tag      atomic.Uint32

	// FlitTrace, when non-nil, receives every flit the port moves
	// (fault injection and protocol tests).
	FlitTrace func(Flit)
	// Fault, when non-nil, may corrupt a flit in flight (fault
	// injection). The link-level retry state machine detects the CRC
	// failure and retransmits, as CXL's LRSM does.
	Fault func(Flit) Flit

	retries atomic.Int64
}

// maxLinkRetries bounds retransmission before the port reports an
// uncorrectable link error.
const maxLinkRetries = 3

// maxBurstBytes is the payload of a maximal burst (4 KiB).
const maxBurstBytes = MaxBurstLines * LineSize

// burstBufPool recycles burst staging buffers (the receive side of the
// modelled wire) so the bulk path stays allocation-free in steady state.
var burstBufPool = sync.Pool{New: func() any { return new([maxBurstBytes]byte) }}

// Retries reports how many link-level retransmissions occurred.
func (rp *RootPort) Retries() int64 { return rp.retries.Load() }

// NewRootPort builds a root port over the given physical link.
func NewRootPort(name string, link *interconnect.Link) *RootPort {
	return &RootPort{name: name, link: link}
}

// Name returns the port name.
func (rp *RootPort) Name() string { return rp.name }

// Link returns the physical link.
func (rp *RootPort) Link() *interconnect.Link { return rp.link }

// State returns the link state.
func (rp *RootPort) State() LinkState { return rp.state }

// Endpoint returns the attached endpoint, or nil.
func (rp *RootPort) Endpoint() Endpoint { return rp.endpoint }

// Attach trains the link against ep. Training succeeds only if the
// endpoint's config space carries a valid CXL DVSEC (alternate-protocol
// negotiation: a plain PCIe card would not present one).
func (rp *RootPort) Attach(ep Endpoint) error {
	if rp.endpoint != nil {
		return fmt.Errorf("cxl: %s: port already has endpoint %s", rp.name, rp.endpoint.Name())
	}
	if ep == nil {
		return fmt.Errorf("cxl: %s: nil endpoint", rp.name)
	}
	dvsec, ok := ep.Config().FindCXLDVSEC()
	if !ok {
		return fmt.Errorf("cxl: %s: endpoint %s has no CXL DVSEC; link training failed", rp.name, ep.Name())
	}
	if dvsec.Caps&CapIO == 0 {
		return fmt.Errorf("cxl: %s: endpoint %s does not advertise CXL.io", rp.name, ep.Name())
	}
	rp.endpoint = ep
	rp.state = LinkUp
	return nil
}

// Detach brings the link down and releases the endpoint.
func (rp *RootPort) Detach() {
	rp.endpoint = nil
	rp.state = LinkDown
}

// PortError reports a transaction-level failure at a port.
type PortError struct {
	Port string
	Op   string
	Addr uint64
	Why  string
}

func (e *PortError) Error() string {
	return fmt.Sprintf("cxl: %s: %s @%#x: %s", e.Port, e.Op, e.Addr, e.Why)
}

// moveFlit pushes one already-encoded flit through the modelled wire:
// fault injection and tracing. The receiver's CRC check happens at
// decode; the caller owns the retry loop.
func (rp *RootPort) moveFlit(f *Flit) {
	if rp.Fault != nil {
		*f = rp.Fault(*f)
	}
	if rp.FlitTrace != nil {
		rp.FlitTrace(*f)
	}
}

// transact moves one request through the flit codec to the endpoint and
// decodes the response: one protected request flit out (sendHeader),
// the endpoint's HandleMem, one protected response flit back
// (recvResp, which also enforces tag matching). The fast path performs
// zero heap allocations: flits live on the stack and decode happens in
// place.
func (rp *RootPort) transact(req *MemReq) (MemResp, error) {
	if rp.state != LinkUp || rp.endpoint == nil {
		return MemResp{}, &PortError{Port: rp.name, Op: req.Opcode.String(), Addr: req.Addr, Why: "link down"}
	}
	req.Tag = uint16(rp.tag.Add(1))
	var decoded MemReq
	if err := rp.sendHeader(req, &decoded); err != nil {
		return MemResp{}, err
	}
	resp := rp.endpoint.HandleMem(decoded)
	var out MemResp
	if err := rp.recvResp(req.Opcode, req.Addr, req.Tag, &resp, &out); err != nil {
		return MemResp{}, err
	}
	return out, nil
}

// ReadLine fetches the 64-byte line at hpa.
func (rp *RootPort) ReadLine(hpa uint64, out *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return &PortError{Port: rp.name, Op: "MemRd", Addr: hpa, Why: "unaligned"}
	}
	req := MemReq{Opcode: OpMemRd, Addr: hpa}
	resp, err := rp.transact(&req)
	if err != nil {
		return err
	}
	if resp.Opcode != RespMemData {
		return &PortError{Port: rp.name, Op: "MemRd", Addr: hpa, Why: "response " + resp.Opcode.String()}
	}
	*out = resp.Data
	return nil
}

// WriteLine stores a full 64-byte line at hpa.
func (rp *RootPort) WriteLine(hpa uint64, data *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return &PortError{Port: rp.name, Op: "MemWr", Addr: hpa, Why: "unaligned"}
	}
	req := MemReq{Opcode: OpMemWr, Addr: hpa, Data: *data}
	resp, err := rp.transact(&req)
	if err != nil {
		return err
	}
	if resp.Opcode != RespCmp {
		return &PortError{Port: rp.name, Op: "MemWr", Addr: hpa, Why: "response " + resp.Opcode.String()}
	}
	return nil
}

// --- Burst transactions --------------------------------------------------
//
// A burst moves up to MaxBurstLines cache lines under one header flit,
// mirroring CXL's all-data-flit streaming: header, N data beats, one
// completion. Every beat still crosses the modelled wire individually —
// fault injection, tracing and CRC/retry fire per flit — but the
// endpoint services the whole burst with a single HDM access, so bulk
// transfers cost O(bytes) instead of O(lines × codec round trips).

// sendHeader pushes one request flit (line transaction or burst
// header) over the wire with link-level retry — a flit corrupted in
// flight fails its CRC at the receiver, which NAKs, and the sender
// retransmits from its retry buffer — and returns the decoded form the
// device sees.
func (rp *RootPort) sendHeader(req *MemReq, decoded *MemReq) error {
	var f Flit
	var err error
	for attempt := 0; ; attempt++ {
		EncodeReqInto(&f, req)
		rp.moveFlit(&f)
		if err = DecodeReqInto(decoded, &f); err == nil {
			return nil
		}
		if attempt >= maxLinkRetries {
			return &PortError{Port: rp.name, Op: req.Opcode.String(), Addr: req.Addr, Why: "uncorrectable link error: " + err.Error()}
		}
		rp.retries.Add(1)
	}
}

// moveData pushes one burst data beat (src line seq) over the wire with
// retry and lands it in dst. f is caller-owned scratch, reused across
// the beats of a burst so the wire loop does not re-zero a flit per
// line.
func (rp *RootPort) moveData(f *Flit, op MemOpcode, addr uint64, tag uint16, seq uint32, src, dst *[LineSize]byte) error {
	for attempt := 0; ; attempt++ {
		EncodeDataInto(f, tag, seq, src)
		rp.moveFlit(f)
		gotTag, gotSeq, err := DecodeDataInto(dst, f)
		if err == nil {
			if gotTag != tag || gotSeq != seq {
				return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: fmt.Sprintf("data flit tag/seq mismatch: sent %d/%d got %d/%d", tag, seq, gotTag, gotSeq)}
			}
			return nil
		}
		if attempt >= maxLinkRetries {
			return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: "uncorrectable link error on data flit: " + err.Error()}
		}
		rp.retries.Add(1)
	}
}

// recvResp pushes one completion/response flit back over the wire with
// the same retry protection and enforces tag matching.
func (rp *RootPort) recvResp(op MemOpcode, addr uint64, tag uint16, resp *MemResp, out *MemResp) error {
	var f Flit
	var err error
	for attempt := 0; ; attempt++ {
		EncodeRespInto(&f, resp)
		rp.moveFlit(&f)
		if err = DecodeRespInto(out, &f); err == nil {
			break
		}
		if attempt >= maxLinkRetries {
			return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: "uncorrectable link error: " + err.Error()}
		}
		rp.retries.Add(1)
	}
	if out.Tag != tag {
		return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: fmt.Sprintf("tag mismatch: sent %d got %d", tag, out.Tag)}
	}
	return nil
}

// handleBurst dispatches a decoded burst to the endpoint: natively when
// it implements BurstHandler, otherwise line by line through HandleMem.
// The fallback preserves the native path's no-partial-effects contract:
// a write burst first probes every target line with MemRd (validating
// decode and poison) and only then writes, so a burst failing on any
// line leaves the media untouched either way.
func (rp *RootPort) handleBurst(req MemReq, payload []byte) MemResp {
	if bh, ok := rp.endpoint.(BurstHandler); ok {
		return bh.HandleMemBurst(req, payload)
	}
	lines := int(req.Lines)
	if req.Opcode == OpMemWrBurst {
		for i := 0; i < lines; i++ {
			probe := MemReq{Opcode: OpMemRd, Tag: req.Tag, Addr: req.Addr + uint64(i*LineSize)}
			if resp := rp.endpoint.HandleMem(probe); resp.Opcode != RespMemData {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
		}
	}
	for i := 0; i < lines; i++ {
		var lr MemReq
		lr.Tag = req.Tag
		lr.Addr = req.Addr + uint64(i*LineSize)
		if req.Opcode == OpMemWrBurst {
			lr.Opcode = OpMemWr
			copy(lr.Data[:], payload[i*LineSize:(i+1)*LineSize])
			if resp := rp.endpoint.HandleMem(lr); resp.Opcode != RespCmp {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
		} else {
			lr.Opcode = OpMemRd
			resp := rp.endpoint.HandleMem(lr)
			if resp.Opcode != RespMemData {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
			copy(payload[i*LineSize:(i+1)*LineSize], resp.Data[:])
		}
	}
	if req.Opcode == OpMemWrBurst {
		return MemResp{Tag: req.Tag, Opcode: RespCmp}
	}
	return MemResp{Tag: req.Tag, Opcode: RespMemData}
}

// WriteBurst stores p at the line-aligned HPA hpa using burst
// transactions; len(p) must be a multiple of LineSize.
func (rp *RootPort) WriteBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return &PortError{Port: rp.name, Op: "MemWrBurst", Addr: hpa, Why: "unaligned burst"}
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxBurstBytes {
			n = maxBurstBytes
		}
		if err := rp.writeBurstChunk(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	return nil
}

func (rp *RootPort) writeBurstChunk(hpa uint64, p []byte) error {
	if rp.state != LinkUp || rp.endpoint == nil {
		return &PortError{Port: rp.name, Op: "MemWrBurst", Addr: hpa, Why: "link down"}
	}
	lines := len(p) / LineSize
	req := MemReq{Opcode: OpMemWrBurst, Addr: hpa, Lines: uint16(lines), Tag: uint16(rp.tag.Add(1))}
	var decoded MemReq
	if err := rp.sendHeader(&req, &decoded); err != nil {
		return err
	}
	buf := burstBufPool.Get().(*[maxBurstBytes]byte)
	var f Flit
	for i := 0; i < lines; i++ {
		src := (*[LineSize]byte)(p[i*LineSize:])
		dst := (*[LineSize]byte)(buf[i*LineSize:])
		if err := rp.moveData(&f, OpMemWrBurst, hpa, req.Tag, uint32(i), src, dst); err != nil {
			burstBufPool.Put(buf)
			return err
		}
	}
	resp := rp.handleBurst(decoded, buf[:len(p)])
	burstBufPool.Put(buf)
	var out MemResp
	if err := rp.recvResp(OpMemWrBurst, hpa, req.Tag, &resp, &out); err != nil {
		return err
	}
	if out.Opcode != RespCmp {
		return &PortError{Port: rp.name, Op: "MemWrBurst", Addr: hpa, Why: "response " + out.Opcode.String()}
	}
	return nil
}

// ReadBurst fetches len(p) bytes from the line-aligned HPA hpa using
// burst transactions; len(p) must be a multiple of LineSize.
func (rp *RootPort) ReadBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return &PortError{Port: rp.name, Op: "MemRdBurst", Addr: hpa, Why: "unaligned burst"}
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxBurstBytes {
			n = maxBurstBytes
		}
		if err := rp.readBurstChunk(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	return nil
}

func (rp *RootPort) readBurstChunk(hpa uint64, p []byte) error {
	if rp.state != LinkUp || rp.endpoint == nil {
		return &PortError{Port: rp.name, Op: "MemRdBurst", Addr: hpa, Why: "link down"}
	}
	lines := len(p) / LineSize
	req := MemReq{Opcode: OpMemRdBurst, Addr: hpa, Lines: uint16(lines), Tag: uint16(rp.tag.Add(1))}
	var decoded MemReq
	if err := rp.sendHeader(&req, &decoded); err != nil {
		return err
	}
	buf := burstBufPool.Get().(*[maxBurstBytes]byte)
	resp := rp.handleBurst(decoded, buf[:len(p)])
	var out MemResp
	if err := rp.recvResp(OpMemRdBurst, hpa, req.Tag, &resp, &out); err != nil {
		burstBufPool.Put(buf)
		return err
	}
	if out.Opcode != RespMemData {
		burstBufPool.Put(buf)
		return &PortError{Port: rp.name, Op: "MemRdBurst", Addr: hpa, Why: "response " + out.Opcode.String()}
	}
	var f Flit
	for i := 0; i < lines; i++ {
		src := (*[LineSize]byte)(buf[i*LineSize:])
		dst := (*[LineSize]byte)(p[i*LineSize:])
		if err := rp.moveData(&f, OpMemRdBurst, hpa, req.Tag, uint32(i), src, dst); err != nil {
			burstBufPool.Put(buf)
			return err
		}
	}
	burstBufPool.Put(buf)
	return nil
}

// ReadAt copies len(p) bytes from HPA off. Unaligned heads/tails are
// handled with full-line reads; the line-aligned interior streams
// through the burst path, so bulk transfers cost O(bytes) instead of
// O(lines × codec round trips).
func (rp *RootPort) ReadAt(p []byte, off int64) error {
	hpa := uint64(off)
	// Unaligned head: one full-line read, copy the covered part.
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		var line [LineSize]byte
		if err := rp.ReadLine(hpa-uint64(lo), &line); err != nil {
			return err
		}
		copy(p[:n], line[lo:lo+n])
		p = p[n:]
		hpa += uint64(n)
	}
	// Line-aligned interior: burst.
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if n == LineSize {
			var line [LineSize]byte
			if err := rp.ReadLine(hpa, &line); err != nil {
				return err
			}
			copy(p[:LineSize], line[:])
		} else if err := rp.ReadBurst(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Partial tail.
	if len(p) > 0 {
		var line [LineSize]byte
		if err := rp.ReadLine(hpa, &line); err != nil {
			return err
		}
		copy(p, line[:len(p)])
	}
	return nil
}

// writePartial issues one MemWrPtl for the sub-line [lo, lo+n) of the
// line at base.
func (rp *RootPort) writePartial(base uint64, lo int, p []byte) error {
	var req MemReq
	req.Opcode = OpMemWrPtl
	req.Addr = base
	copy(req.Data[lo:lo+len(p)], p)
	for i := lo; i < lo+len(p); i++ {
		req.Mask |= 1 << uint(i)
	}
	resp, err := rp.transact(&req)
	if err != nil {
		return err
	}
	if resp.Opcode != RespCmp {
		return &PortError{Port: rp.name, Op: "MemWrPtl", Addr: base, Why: "response " + resp.Opcode.String()}
	}
	return nil
}

// WriteAt stores p at HPA off. Full interior lines stream through the
// burst path; unaligned head/tail lines use MemWrPtl with a byte mask,
// exactly as a write-combining host interface would.
func (rp *RootPort) WriteAt(p []byte, off int64) error {
	hpa := uint64(off)
	// Unaligned head: partial write under a mask.
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		if err := rp.writePartial(hpa-uint64(lo), lo, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Line-aligned interior: burst.
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if n == LineSize {
			var line [LineSize]byte
			copy(line[:], p[:LineSize])
			if err := rp.WriteLine(hpa, &line); err != nil {
				return err
			}
		} else if err := rp.WriteBurst(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Partial tail.
	if len(p) > 0 {
		if err := rp.writePartial(hpa, 0, p); err != nil {
			return err
		}
	}
	return nil
}
