package cxl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/telemetry"
)

// LinkState tracks root-port link training.
type LinkState int

const (
	// LinkDown — no endpoint attached or training failed.
	LinkDown LinkState = iota
	// LinkUp — training completed, transactions may flow.
	LinkUp
	// Retraining — the link dropped out of L0 and is renegotiating (a
	// link flap). The endpoint is still attached; new transactions park
	// until the retrain completes (bounded by PortOptions.RetrainTimeout)
	// and then replay, instead of failing.
	Retraining
)

func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case Retraining:
		return "retraining"
	default:
		return "down"
	}
}

// Multi-queue issue model. The port exposes NumVCs virtual channels,
// mirroring the per-QoS-class request queues of a real CXL host bridge.
// Each VC owns an SQ/CQ ring pair (see ring.go) and a slice of the tag
// space: the VC index in the high bits, the ring position in the low
// bits. Submissions are dispatched by address in vcStride-line runs
// (ringFor), so a burst of neighbouring submissions lands on one ring —
// one doorbell, one batch — while sustained load still spreads over all
// channels. Two in-flight transactions always differ in VC bits or
// sequence bits.
const (
	// NumVCs is the number of virtual channels per port (power of two).
	NumVCs = 8
	// vcTagBits is the per-VC sequence width inside the 16-bit tag; the
	// top bits carry the VC index.
	vcTagBits = 13
	vcSeqMask = 1<<vcTagBits - 1
)

// VCStat is a snapshot of one virtual channel's counters.
type VCStat struct {
	Issued  int64
	Retries int64
}

// PortStats is one atomic-snapshot view of a port's ring and link
// counters — the successor of the Retries()/VCStats() pair, extended
// with the ring-path counters.
type PortStats struct {
	// Issued counts descriptors submitted across all VCs.
	Issued int64
	// Flushed counts descriptors claimed by doorbell flushes.
	Flushed int64
	// Retries counts link-level retransmissions across all VCs.
	Retries int64
	// Doorbells counts flush claims (each moves a whole batch in one VC
	// acquisition); Issued/Doorbells is the realised batch depth.
	Doorbells int64
	// Harvested counts completions drained through Harvest.
	Harvested int64
	// CQOverflows counts live completion-queue entries dropped because
	// the CQ filled faster than Harvest drained it.
	CQOverflows int64
	// Timeouts counts expired bounded waits: descriptor deadlines
	// (WaitTimeout) and retrains that exceeded RetrainTimeout.
	Timeouts int64
	// Retrains counts LinkUp→Retraining transitions (link flaps).
	Retrains int64
	// VCs holds the per-virtual-channel issue/retry split.
	VCs [NumVCs]VCStat
}

// portHooks is the immutable snapshot of the port's observation and
// fault-injection hooks. The hot path loads it once per transaction, so
// hooks can be swapped at runtime while traffic is in flight: every
// transaction sees either the old pair or the new pair, never a torn
// mix.
type portHooks struct {
	trace func(Flit)
	fault func(Flit) Flit
	// rec, when non-nil, is the flight recorder that force-captures
	// CRC-failed flits regardless of sampling (see telemetry.go). It is
	// set only on the tap-built hook variants, never by SetFlitTrace.
	rec *telemetry.FlightRecorder
}

// portSession is the immutable snapshot of link training state: which
// endpoint is attached and whether the link is up. Attach/Detach
// publish a fresh snapshot; the data path reads it lock-free. ras, when
// non-nil, points at the attached endpoint's media counters so link
// CRC retries and exhausted-retry failures are attributed to the device
// they occurred against — the health thresholds' retry-storm input.
// queue caches the endpoint's QueueHandler (resolved once at training
// time) so flushes do not pay a per-batch type assertion.
type portSession struct {
	state    LinkState
	endpoint Endpoint
	ras      *memdev.Stats
	queue    QueueHandler
}

// retry charges one link-level retransmission to the issuing VC's ring
// and to the attached device's RAS counters.
func (s *portSession) retry(r *vcRing) {
	r.retries.Add(1)
	if s.ras != nil {
		s.ras.LinkRetries.Add(1)
	}
}

// uncorrectable charges an exhausted retry budget to the device.
func (s *portSession) uncorrectable() {
	if s.ras != nil {
		s.ras.Uncorrectable.Add(1)
	}
}

// RootPort is a host-side CXL port: the CPU's view of one PCIe/CXL slot.
// It owns the physical link, performs link training against an attached
// endpoint, and carries CXL.mem traffic to it over per-VC
// submission/completion rings (ring.go) — the synchronous methods are
// submit+flush+wait over the same rings the async Submit* path uses, so
// there is exactly one data path. Every request/response genuinely
// round-trips through the flit codec so protocol tests observe real
// wire behaviour; the steady-state data path allocates nothing and is
// safe for concurrent use by many goroutines.
//
// RootPort implements MemIO (memio.go).
type RootPort struct {
	name string
	link *interconnect.Link

	// mu serialises the cold path only: Attach/Detach, hook swaps, and
	// telemetry attachment.
	mu    sync.Mutex
	sess  atomic.Pointer[portSession]
	hooks atomic.Pointer[portHooks]
	// tap is the telemetry snapshot (nil when telemetry is off); tapCfg
	// is its cold-path wiring, guarded by mu. See telemetry.go.
	tap    atomic.Pointer[portTap]
	tapCfg *tapConfig

	// cfg is the resolved PortOptions snapshot; the data path only loads
	// it on retry/park paths, never on a clean transaction.
	cfg atomic.Pointer[PortOptions]

	doorbells atomic.Int64
	harvested atomic.Int64
	timeouts  atomic.Int64
	retrains  atomic.Int64
	rings     [NumVCs]vcRing
}

// maxLinkRetries is the default retransmission budget before the port
// reports an uncorrectable link error (PortOptions.MaxLinkRetries).
const maxLinkRetries = 3

// defaultRetrainTimeout bounds how long a transaction parks waiting for
// a retraining link before failing with ErrTimeout.
const defaultRetrainTimeout = 2 * time.Second

// PortOptions tunes the port's link-recovery behaviour. The zero value
// resolves to today's defaults: a budget of maxLinkRetries immediate
// retransmissions (no backoff) and a 2 s retrain deadline.
type PortOptions struct {
	// MaxLinkRetries is the per-flit retransmission budget before the
	// transaction fails with ErrUncorrectable (0 takes the default, 3;
	// negative means no retries).
	MaxLinkRetries int
	// RetryBackoff is the base delay before the first retransmission;
	// each further retry doubles it (bounded exponential backoff with
	// deterministic jitter). Zero preserves immediate retransmit.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff growth (0 with a nonzero
	// RetryBackoff takes 8× the base).
	RetryBackoffMax time.Duration
	// RetrainTimeout bounds how long transactions park on a Retraining
	// link before failing with ErrTimeout (0 takes 2 s).
	RetrainTimeout time.Duration
}

// resolve fills defaults into a copy of o.
func (o PortOptions) resolve() PortOptions {
	if o.MaxLinkRetries == 0 {
		o.MaxLinkRetries = maxLinkRetries
	} else if o.MaxLinkRetries < 0 {
		o.MaxLinkRetries = 0
	}
	if o.RetryBackoff > 0 && o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 8 * o.RetryBackoff
	}
	if o.RetrainTimeout <= 0 {
		o.RetrainTimeout = defaultRetrainTimeout
	}
	return o
}

// SetOptions publishes new link-recovery options. Safe while traffic is
// in flight: each retry loop reads the snapshot current when it entered
// its error path.
func (rp *RootPort) SetOptions(o PortOptions) {
	r := o.resolve()
	rp.cfg.Store(&r)
}

// Options returns the resolved options in effect.
func (rp *RootPort) Options() PortOptions { return *rp.cfg.Load() }

// backoff sleeps the bounded-exponential retry delay for the given
// attempt. The jitter (±25%) is a pure function of (addr, attempt), so
// a replayed fault schedule waits the identical curve. With no backoff
// configured this is a single field load.
func (rp *RootPort) backoff(cfg *PortOptions, attempt int, addr uint64) {
	if cfg.RetryBackoff <= 0 {
		return
	}
	d := cfg.RetryBackoff << uint(attempt)
	if d <= 0 || d > cfg.RetryBackoffMax {
		d = cfg.RetryBackoffMax
	}
	// Deterministic jitter: hash the (addr, attempt) pair into [-25%, +25%).
	h := addr*0x9e3779b97f4a7c15 + uint64(attempt)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	jitter := int64(d) / 4
	if jitter > 0 {
		d += time.Duration(int64(h%uint64(2*jitter)) - jitter)
	}
	time.Sleep(d)
}

// maxBurstBytes is the payload of a maximal burst (4 KiB).
const maxBurstBytes = MaxBurstLines * LineSize

// burstBufPool recycles burst staging buffers (the receive side of the
// modelled wire) so the bulk path stays allocation-free in steady state.
var burstBufPool = sync.Pool{New: func() any { return new([maxBurstBytes]byte) }}

// NewRootPort builds a root port over the given physical link.
func NewRootPort(name string, link *interconnect.Link) *RootPort {
	rp := &RootPort{name: name, link: link}
	cfg := PortOptions{}.resolve()
	rp.cfg.Store(&cfg)
	for i := range rp.rings {
		rp.rings[i].init(rp, i)
	}
	return rp
}

// Stats returns one consistent snapshot of the port's ring and link
// counters.
func (rp *RootPort) Stats() PortStats {
	var st PortStats
	st.Doorbells = rp.doorbells.Load()
	st.Harvested = rp.harvested.Load()
	st.Timeouts = rp.timeouts.Load()
	st.Retrains = rp.retrains.Load()
	for i := range rp.rings {
		r := &rp.rings[i]
		issued := int64(r.tail.Load())
		retries := r.retries.Load()
		st.VCs[i] = VCStat{Issued: issued, Retries: retries}
		st.Issued += issued
		st.Flushed += int64(r.flushHead.Load())
		st.Retries += retries
		st.CQOverflows += r.overflows.Load()
	}
	return st
}

// Name returns the port name.
func (rp *RootPort) Name() string { return rp.name }

// Link returns the physical link.
func (rp *RootPort) Link() *interconnect.Link { return rp.link }

// State returns the link state.
func (rp *RootPort) State() LinkState {
	if s := rp.sess.Load(); s != nil {
		return s.state
	}
	return LinkDown
}

// Endpoint returns the attached endpoint, or nil.
func (rp *RootPort) Endpoint() Endpoint {
	if s := rp.sess.Load(); s != nil {
		return s.endpoint
	}
	return nil
}

// setHooks publishes a new hook snapshot derived from the current one:
// read-merge-store under mu so concurrent setters never lose each
// other's hook, while in-flight transactions keep the snapshot they
// loaded at issue time.
func (rp *RootPort) setHooks(mutate func(*portHooks)) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	var h portHooks
	if cur := rp.hooks.Load(); cur != nil {
		h = *cur
	}
	mutate(&h)
	rp.hooks.Store(&h)
	// Hook swaps must propagate into the prebuilt telemetry variants so
	// sampled transactions keep chaining the user's current trace.
	rp.rebuildTapLocked()
}

// SetFlitTrace installs (or, with nil, removes) the hook that receives
// every flit the port moves (fault injection and protocol tests). Safe
// to call while traffic is in flight: transactions already issued keep
// the hook snapshot they started with.
func (rp *RootPort) SetFlitTrace(f func(Flit)) {
	rp.setHooks(func(h *portHooks) { h.trace = f })
}

// SetFault installs (or, with nil, removes) the hook that may corrupt a
// flit in flight (fault injection). The link-level retry state machine
// detects the CRC failure and retransmits, as CXL's LRSM does. Safe to
// swap at runtime, like SetFlitTrace.
func (rp *RootPort) SetFault(f func(Flit) Flit) {
	rp.setHooks(func(h *portHooks) { h.fault = f })
}

// Attach trains the link against ep. Training succeeds only if the
// endpoint's config space carries a valid CXL DVSEC (alternate-protocol
// negotiation: a plain PCIe card would not present one).
func (rp *RootPort) Attach(ep Endpoint) error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if s := rp.sess.Load(); s != nil && s.endpoint != nil {
		return fmt.Errorf("cxl: %s: port already has endpoint %s", rp.name, s.endpoint.Name())
	}
	if ep == nil {
		return fmt.Errorf("cxl: %s: nil endpoint", rp.name)
	}
	dvsec, ok := ep.Config().FindCXLDVSEC()
	if !ok {
		return fmt.Errorf("cxl: %s: endpoint %s has no CXL DVSEC; link training failed", rp.name, ep.Name())
	}
	if dvsec.Caps&CapIO == 0 {
		return fmt.Errorf("cxl: %s: endpoint %s does not advertise CXL.io", rp.name, ep.Name())
	}
	sess := &portSession{state: LinkUp, endpoint: ep}
	// Resolve the retry-attribution sink once, at training time: link
	// errors on this port are charged to the media behind the endpoint.
	if md, ok := ep.(interface{ Media() memdev.Device }); ok {
		if media := md.Media(); media != nil {
			sess.ras = media.Stats()
		}
	}
	if qh, ok := ep.(QueueHandler); ok {
		sess.queue = qh
	}
	rp.sess.Store(sess)
	return nil
}

// Detach brings the link down and releases the endpoint. Transactions
// already in flight complete against the endpoint they started with;
// descriptors still queued on the rings are drained and completed with
// ErrLinkDown (posted to the CQs), so no Wait or Harvest consumer ever
// blocks on a surprise-removed port.
func (rp *RootPort) Detach() {
	rp.mu.Lock()
	rp.sess.Store(&portSession{state: LinkDown})
	rp.mu.Unlock()
	rp.drainRings()
}

// drainRings flushes every VC so descriptors published before the link
// went down complete (with ErrLinkDown, now that the session is down)
// instead of sitting unflushed forever.
func (rp *RootPort) drainRings() {
	for i := range rp.rings {
		if rp.rings[i].pending() {
			rp.flushVC(&rp.rings[i])
		}
	}
}

// StartRetrain takes a trained link out of L0 into Retraining (a link
// flap): the endpoint stays attached, new transactions park until
// CompleteRetrain. Errors if the link is not up.
func (rp *RootPort) StartRetrain() error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	s := rp.sess.Load()
	if s == nil || s.state != LinkUp || s.endpoint == nil {
		return portErr(rp.name, "Retrain", 0, ErrLinkDown, "link not up")
	}
	next := *s
	next.state = Retraining
	rp.sess.Store(&next)
	rp.retrains.Add(1)
	return nil
}

// CompleteRetrain finishes a retrain: back to LinkUp on success, or
// LinkDown (draining queued descriptors, like Detach) on failure. A
// no-op unless the link is Retraining.
func (rp *RootPort) CompleteRetrain(up bool) {
	rp.mu.Lock()
	s := rp.sess.Load()
	if s == nil || s.state != Retraining {
		rp.mu.Unlock()
		return
	}
	if up {
		next := *s
		next.state = LinkUp
		rp.sess.Store(&next)
		rp.mu.Unlock()
		return
	}
	rp.sess.Store(&portSession{state: LinkDown})
	rp.mu.Unlock()
	rp.drainRings()
}

// awaitRetrain parks until a Retraining link settles: the LinkUp
// session to replay against, ErrLinkDown if training failed, or
// ErrTimeout after RetrainTimeout (the flap never ended).
func (rp *RootPort) awaitRetrain() (*portSession, error) {
	deadline := time.Now().Add(rp.cfg.Load().RetrainTimeout)
	for {
		s := rp.sess.Load()
		if s == nil || s.state == LinkDown || s.endpoint == nil {
			return nil, ErrLinkDown
		}
		if s.state == LinkUp {
			return s, nil
		}
		if time.Now().After(deadline) {
			rp.timeouts.Add(1)
			return nil, ErrTimeout
		}
		time.Sleep(5 * time.Microsecond)
	}
}

// session returns the hot-path link snapshot, or an error when the link
// is down. A Retraining link parks (bounded) and replays.
func (rp *RootPort) session(op string, addr uint64) (*portSession, error) {
	s := rp.sess.Load()
	if s != nil && s.state == Retraining {
		s2, err := rp.awaitRetrain()
		if err != nil {
			return nil, portErr(rp.name, op, addr, err, err.Error())
		}
		return s2, nil
	}
	if s == nil || s.state != LinkUp || s.endpoint == nil {
		return nil, portErr(rp.name, op, addr, ErrLinkDown, "link down")
	}
	return s, nil
}

// ringSession is the flush-path variant of session: the caller builds
// per-descriptor errors itself, so only the sentinel is needed.
func (rp *RootPort) ringSession() (*portSession, error) {
	s := rp.sess.Load()
	if s != nil && s.state == Retraining {
		return rp.awaitRetrain()
	}
	if s == nil || s.state != LinkUp || s.endpoint == nil {
		return nil, ErrLinkDown
	}
	return s, nil
}

// ringFor selects the VC ring for a submission by address: runs of
// vcStride consecutive lines share a VC, so neighbouring submissions
// land on one ring (one doorbell, device-side run coalescing) while
// sustained traffic still spreads across all NumVCs — the address-
// interleaved channel selection real memory controllers use, and it
// costs no shared-counter RMW on the submit path.
func (rp *RootPort) ringFor(hpa uint64) *vcRing {
	return &rp.rings[(hpa/uint64(LineSize*vcStride))&(NumVCs-1)]
}

// syncTransact is the synchronous submit+flush+wait path with the
// flush claim fused into the submit: when this descriptor is the next
// to flush, its one-entry span is claimed *before* the publish store,
// so no concurrent flusher can ever observe the descriptor — it is
// processed on this stack and the slot freed with a single release
// store (done and consumed fused; the submitter is also the waiter, so
// nobody else reads the token). When earlier descriptors are queued,
// it degrades to the generic publish + flush + wait shape.
func (rp *RootPort) syncTransact(kind uint8, op MemOpcode, addr, mask uint64, out *[LineSize]byte, data *[LineSize]byte, p []byte) error {
	r := rp.ringFor(addr)
	for {
		t := r.tail.Load()
		slot := &r.slots[t&ringMask]
		seq := slot.seq.Load()
		if seq != t {
			if seq < t {
				// Ring full: drain (waiters consume their slots) and retry.
				rp.flushVC(r)
				runtime.Gosched()
			}
			continue
		}
		if !r.tail.CompareAndSwap(t, t+1) {
			continue
		}
		d := &slot.desc
		if r.flushHead.CompareAndSwap(t, t+1) {
			// Fused: the slot is never published, so only the fields the
			// wire movers read need to be filled.
			d.op, d.addr, d.mask, d.out, d.p = op, addr, mask, out, p
			if data != nil {
				d.data = *data
			}
			rp.doorbells.Add(1)
			var err error
			s, serr := rp.ringSession()
			hk, hist, t0 := rp.tapPick(t, rp.hooks.Load(), kind, op, false)
			switch {
			case serr != nil:
				err = portErr(rp.name, op.String(), addr, serr, serr.Error())
			case kind == descBurst:
				err = rp.ringBurst(s, hk, r, d, r.tagAt(t))
			default:
				err = rp.processSingle(r, slot, t, s, hk, r.tagAt(t))
			}
			slot.seq.Store(t + RingSlots)
			if hist != nil {
				hist.RecordSince(t0)
			}
			return err
		}
		d.kind, d.noCQ, d.op, d.addr, d.mask, d.out, d.p = kind, true, op, addr, mask, out, p
		if data != nil {
			d.data = *data
		}
		slot.comp.pos, slot.comp.tag, slot.comp.err = t, r.tagAt(t), nil
		slot.seq.Store(t + 1)
		rp.flushVC(r)
		return slot.comp.Wait()
	}
}

// moveFlit pushes one already-encoded flit through the modelled wire:
// fault injection and tracing, using the hook snapshot the transaction
// was issued with. The receiver's CRC check happens at decode; the
// caller owns the retry loop.
func (rp *RootPort) moveFlit(h *portHooks, f *Flit) {
	if h == nil {
		return
	}
	if h.fault != nil {
		*f = h.fault(*f)
	}
	if h.trace != nil {
		h.trace(*f)
	}
}

// --- MemIO: submission path ----------------------------------------------

// SubmitRead enqueues a line read at hpa into out without ringing the
// doorbell; the returned token completes after a Flush (or its Wait,
// which flushes on demand). out must stay valid until the completion is
// consumed.
func (rp *RootPort) SubmitRead(hpa uint64, out *[LineSize]byte) (*Completion, error) {
	if !lineAligned(hpa) {
		return nil, portErr(rp.name, "MemRd", hpa, ErrUnaligned, "unaligned")
	}
	r := rp.ringFor(hpa)
	c, err := r.submit(descLine, false, OpMemRd, hpa, 0, out, nil, nil)
	if err != nil {
		rp.flushVC(r)
		if c, err = r.submit(descLine, false, OpMemRd, hpa, 0, out, nil, nil); err != nil {
			return nil, portErr(rp.name, "MemRd", hpa, ErrRingFull, "submission ring full")
		}
	}
	return c, nil
}

// SubmitWrite enqueues a line write at hpa without ringing the
// doorbell. data is staged into the descriptor at submit time, so the
// caller's buffer may be reused immediately.
func (rp *RootPort) SubmitWrite(hpa uint64, data *[LineSize]byte) (*Completion, error) {
	if !lineAligned(hpa) {
		return nil, portErr(rp.name, "MemWr", hpa, ErrUnaligned, "unaligned")
	}
	r := rp.ringFor(hpa)
	c, err := r.submit(descLine, false, OpMemWr, hpa, 0, nil, data, nil)
	if err != nil {
		rp.flushVC(r)
		if c, err = r.submit(descLine, false, OpMemWr, hpa, 0, nil, data, nil); err != nil {
			return nil, portErr(rp.name, "MemWr", hpa, ErrRingFull, "submission ring full")
		}
	}
	return c, nil
}

// Flush rings the doorbell on every VC with queued submissions: each
// ring's batch crosses the link in one VC acquisition.
func (rp *RootPort) Flush() {
	for i := range rp.rings {
		if rp.rings[i].pending() {
			rp.flushVC(&rp.rings[i])
		}
	}
}

// Harvest drains up to len(dst) completions from the port's CQs into
// the caller-owned slice, consuming them. Completions already consumed
// via Wait never surface here.
func (rp *RootPort) Harvest(dst []Completed) int {
	n := 0
	for i := range rp.rings {
		if rp.rings[i].cqN.Load() == 0 {
			continue
		}
		n += rp.rings[i].harvest(dst[n:])
		if n == len(dst) {
			break
		}
	}
	if n > 0 {
		rp.harvested.Add(int64(n))
	}
	return n
}

// --- MemIO: synchronous path (submit+flush+wait over the same rings) -----

// ReadLine fetches the 64-byte line at hpa.
func (rp *RootPort) ReadLine(hpa uint64, out *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return portErr(rp.name, "MemRd", hpa, ErrUnaligned, "unaligned")
	}
	return rp.syncTransact(descLine, OpMemRd, hpa, 0, out, nil, nil)
}

// WriteLine stores a full 64-byte line at hpa.
func (rp *RootPort) WriteLine(hpa uint64, data *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return portErr(rp.name, "MemWr", hpa, ErrUnaligned, "unaligned")
	}
	return rp.syncTransact(descLine, OpMemWr, hpa, 0, nil, data, nil)
}

// writePartial issues one MemWrPtl for the sub-line [lo, lo+n) of the
// line at base.
func (rp *RootPort) writePartial(base uint64, lo int, p []byte) error {
	var data [LineSize]byte
	copy(data[lo:lo+len(p)], p)
	var mask uint64
	for i := lo; i < lo+len(p); i++ {
		mask |= 1 << uint(i)
	}
	return rp.syncTransact(descLine, OpMemWrPtl, base, mask, nil, &data, nil)
}

// --- Burst transactions --------------------------------------------------
//
// A burst moves up to MaxBurstLines cache lines under one header flit,
// mirroring CXL's all-data-flit streaming: header, N data beats, one
// completion. Every beat still crosses the modelled wire individually —
// fault injection, tracing and CRC/retry fire per flit — but the
// endpoint services the whole burst with a single HDM access, so bulk
// transfers cost O(bytes) instead of O(lines × codec round trips).
// Bursts ride the rings as single descriptors (descBurst), so they
// interleave with line submissions in descriptor order.
//
// Addressing semantics follow the endpoint's HDM decoder, as on real
// hardware. Through a plain decoder a burst covers the contiguous HPA
// span [hpa, hpa+len). Through an *interleaved* decoder it covers the
// next len/LineSize lines *owned by that target* starting at hpa —
// the device never sees other targets' granules, so Lines counts its
// own (see Type3Device.decodeSpan). A host talking to one leg of an
// interleave set must therefore be interleave-aware: use
// InterleaveSet, which performs the granule fan-out and hands each
// port exactly its owned lines, rather than issuing HPA-contiguous
// bursts at an interleaved window directly.

// sendHeader pushes one burst header flit over the wire with link-level
// retry — a flit corrupted in flight fails its CRC at the receiver,
// which NAKs, and the sender retransmits from its retry buffer — and
// returns the decoded form the device sees. Retries are charged to the
// issuing VC's ring.
func (rp *RootPort) sendHeader(s *portSession, h *portHooks, r *vcRing, req *MemReq, decoded *MemReq) error {
	var f Flit
	var err error
	for attempt := 0; ; attempt++ {
		EncodeReqInto(&f, req)
		rp.moveFlit(h, &f)
		if err = DecodeReqInto(decoded, &f); err == nil {
			return nil
		}
		h.flitErr(&f)
		cfg := rp.cfg.Load()
		if attempt >= cfg.MaxLinkRetries {
			s.uncorrectable()
			return portErr(rp.name, req.Opcode.String(), req.Addr, ErrUncorrectable, "uncorrectable link error: "+err.Error())
		}
		s.retry(r)
		rp.backoff(cfg, attempt, req.Addr)
	}
}

// moveData pushes one burst data beat (src line seq) over the wire with
// retry and lands it in dst. f is caller-owned scratch, reused across
// the beats of a burst so the wire loop does not re-zero a flit per
// line.
func (rp *RootPort) moveData(s *portSession, h *portHooks, r *vcRing, f *Flit, op MemOpcode, addr uint64, tag uint16, seq uint32, src, dst *[LineSize]byte) error {
	for attempt := 0; ; attempt++ {
		EncodeDataInto(f, tag, seq, src)
		rp.moveFlit(h, f)
		gotTag, gotSeq, err := DecodeDataInto(dst, f)
		if err == nil && gotTag == tag && gotSeq == seq {
			return nil
		}
		if err == nil {
			// A valid flit with the wrong tag/seq is a reordered delivery:
			// the sequence check NAKs it and the sender retransmits, same
			// as a CRC failure.
			err = portErr(rp.name, op.String(), addr, ErrTagMismatch, fmt.Sprintf("data flit tag/seq mismatch: sent %d/%d got %d/%d", tag, seq, gotTag, gotSeq))
		}
		h.flitErr(f)
		cfg := rp.cfg.Load()
		if attempt >= cfg.MaxLinkRetries {
			s.uncorrectable()
			return portErr(rp.name, op.String(), addr, ErrUncorrectable, "uncorrectable link error on data flit: "+err.Error())
		}
		s.retry(r)
		rp.backoff(cfg, attempt, addr)
	}
}

// recvResp pushes one completion/response flit back over the wire with
// the same retry protection and enforces tag matching.
func (rp *RootPort) recvResp(s *portSession, h *portHooks, r *vcRing, op MemOpcode, addr uint64, tag uint16, resp *MemResp, out *MemResp) error {
	var f Flit
	var err error
	for attempt := 0; ; attempt++ {
		EncodeRespInto(&f, resp)
		rp.moveFlit(h, &f)
		if err = DecodeRespInto(out, &f); err == nil {
			if out.Tag == tag {
				return nil
			}
			// Reordered response: NAK and retransmit, like a CRC failure.
			err = portErr(rp.name, op.String(), addr, ErrTagMismatch, fmt.Sprintf("tag mismatch: sent %d got %d", tag, out.Tag))
		}
		h.flitErr(&f)
		cfg := rp.cfg.Load()
		if attempt >= cfg.MaxLinkRetries {
			s.uncorrectable()
			return portErr(rp.name, op.String(), addr, ErrUncorrectable, "uncorrectable link error: "+err.Error())
		}
		s.retry(r)
		rp.backoff(cfg, attempt, addr)
	}
}

// handleBurst dispatches a decoded burst to the endpoint: natively when
// it implements BurstHandler, otherwise line by line through HandleMem.
// The fallback preserves the native path's no-partial-effects contract:
// a write burst first probes every target line with MemRd (validating
// decode and poison) and only then writes, so a burst failing on any
// line leaves the media untouched either way.
func (rp *RootPort) handleBurst(ep Endpoint, req MemReq, payload []byte) MemResp {
	if bh, ok := ep.(BurstHandler); ok {
		return bh.HandleMemBurst(req, payload)
	}
	lines := int(req.Lines)
	if req.Opcode == OpMemWrBurst {
		for i := 0; i < lines; i++ {
			probe := MemReq{Opcode: OpMemRd, Tag: req.Tag, Addr: req.Addr + uint64(i*LineSize)}
			if resp := ep.HandleMem(probe); resp.Opcode != RespMemData {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
		}
	}
	for i := 0; i < lines; i++ {
		var lr MemReq
		lr.Tag = req.Tag
		lr.Addr = req.Addr + uint64(i*LineSize)
		if req.Opcode == OpMemWrBurst {
			lr.Opcode = OpMemWr
			copy(lr.Data[:], payload[i*LineSize:(i+1)*LineSize])
			if resp := ep.HandleMem(lr); resp.Opcode != RespCmp {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
		} else {
			lr.Opcode = OpMemRd
			resp := ep.HandleMem(lr)
			if resp.Opcode != RespMemData {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
			copy(payload[i*LineSize:(i+1)*LineSize], resp.Data[:])
		}
	}
	if req.Opcode == OpMemWrBurst {
		return MemResp{Tag: req.Tag, Opcode: RespCmp}
	}
	return MemResp{Tag: req.Tag, Opcode: RespMemData}
}

// WriteBurst stores p at the line-aligned HPA hpa using burst
// transactions; len(p) must be a multiple of LineSize.
func (rp *RootPort) WriteBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return portErr(rp.name, "MemWrBurst", hpa, ErrUnaligned, "unaligned burst")
	}
	if len(p) == 0 {
		return nil
	}
	return rp.syncTransact(descBurst, OpMemWrBurst, hpa, 0, nil, nil, p)
}

// ReadBurst fetches len(p) bytes from the line-aligned HPA hpa using
// burst transactions; len(p) must be a multiple of LineSize.
func (rp *RootPort) ReadBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return portErr(rp.name, "MemRdBurst", hpa, ErrUnaligned, "unaligned burst")
	}
	if len(p) == 0 {
		return nil
	}
	return rp.syncTransact(descBurst, OpMemRdBurst, hpa, 0, nil, nil, p)
}

// writeBurstChunk moves one ≤maxBurstBytes write burst chunk for a ring
// burst descriptor: header, data beats, device, completion.
func (rp *RootPort) writeBurstChunk(s *portSession, h *portHooks, r *vcRing, tag uint16, hpa uint64, p []byte) error {
	lines := len(p) / LineSize
	req := MemReq{Opcode: OpMemWrBurst, Addr: hpa, Lines: uint16(lines), Tag: tag}
	var decoded MemReq
	if err := rp.sendHeader(s, h, r, &req, &decoded); err != nil {
		return err
	}
	buf := burstBufPool.Get().(*[maxBurstBytes]byte)
	var f Flit
	for i := 0; i < lines; i++ {
		src := (*[LineSize]byte)(p[i*LineSize:])
		dst := (*[LineSize]byte)(buf[i*LineSize:])
		if err := rp.moveData(s, h, r, &f, OpMemWrBurst, hpa, req.Tag, uint32(i), src, dst); err != nil {
			burstBufPool.Put(buf)
			return err
		}
	}
	resp := rp.handleBurst(s.endpoint, decoded, buf[:len(p)])
	burstBufPool.Put(buf)
	var out MemResp
	if err := rp.recvResp(s, h, r, OpMemWrBurst, hpa, req.Tag, &resp, &out); err != nil {
		return err
	}
	if out.Opcode != RespCmp {
		return portErr(rp.name, "MemWrBurst", hpa, ErrBadResponse, "response "+out.Opcode.String())
	}
	return nil
}

// readBurstChunk moves one ≤maxBurstBytes read burst chunk for a ring
// burst descriptor.
func (rp *RootPort) readBurstChunk(s *portSession, h *portHooks, r *vcRing, tag uint16, hpa uint64, p []byte) error {
	lines := len(p) / LineSize
	req := MemReq{Opcode: OpMemRdBurst, Addr: hpa, Lines: uint16(lines), Tag: tag}
	var decoded MemReq
	if err := rp.sendHeader(s, h, r, &req, &decoded); err != nil {
		return err
	}
	buf := burstBufPool.Get().(*[maxBurstBytes]byte)
	resp := rp.handleBurst(s.endpoint, decoded, buf[:len(p)])
	var out MemResp
	if err := rp.recvResp(s, h, r, OpMemRdBurst, hpa, req.Tag, &resp, &out); err != nil {
		burstBufPool.Put(buf)
		return err
	}
	if out.Opcode != RespMemData {
		burstBufPool.Put(buf)
		return portErr(rp.name, "MemRdBurst", hpa, ErrBadResponse, "response "+out.Opcode.String())
	}
	var f Flit
	for i := 0; i < lines; i++ {
		src := (*[LineSize]byte)(buf[i*LineSize:])
		dst := (*[LineSize]byte)(p[i*LineSize:])
		if err := rp.moveData(s, h, r, &f, OpMemRdBurst, hpa, req.Tag, uint32(i), src, dst); err != nil {
			burstBufPool.Put(buf)
			return err
		}
	}
	burstBufPool.Put(buf)
	return nil
}

// ReadAt copies len(p) bytes from HPA off. Unaligned heads/tails are
// handled with full-line reads; the line-aligned interior streams
// through the burst path, so bulk transfers cost O(bytes) instead of
// O(lines × codec round trips).
func (rp *RootPort) ReadAt(p []byte, off int64) error {
	hpa := uint64(off)
	// Unaligned head: one full-line read, copy the covered part.
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		var line [LineSize]byte
		if err := rp.ReadLine(hpa-uint64(lo), &line); err != nil {
			return err
		}
		copy(p[:n], line[lo:lo+n])
		p = p[n:]
		hpa += uint64(n)
	}
	// Line-aligned interior: burst.
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if n == LineSize {
			var line [LineSize]byte
			if err := rp.ReadLine(hpa, &line); err != nil {
				return err
			}
			copy(p[:LineSize], line[:])
		} else if err := rp.ReadBurst(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Partial tail.
	if len(p) > 0 {
		var line [LineSize]byte
		if err := rp.ReadLine(hpa, &line); err != nil {
			return err
		}
		copy(p, line[:len(p)])
	}
	return nil
}

// WriteAt stores p at HPA off. Full interior lines stream through the
// burst path; unaligned head/tail lines use MemWrPtl with a byte mask,
// exactly as a write-combining host interface would.
func (rp *RootPort) WriteAt(p []byte, off int64) error {
	hpa := uint64(off)
	// Unaligned head: partial write under a mask.
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		if err := rp.writePartial(hpa-uint64(lo), lo, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Line-aligned interior: burst.
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if n == LineSize {
			var line [LineSize]byte
			copy(line[:], p[:LineSize])
			if err := rp.WriteLine(hpa, &line); err != nil {
				return err
			}
		} else if err := rp.WriteBurst(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Partial tail.
	if len(p) > 0 {
		if err := rp.writePartial(hpa, 0, p); err != nil {
			return err
		}
	}
	return nil
}
