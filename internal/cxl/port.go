package cxl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
)

// LinkState tracks root-port link training.
type LinkState int

const (
	// LinkDown — no endpoint attached or training failed.
	LinkDown LinkState = iota
	// LinkUp — training completed, transactions may flow.
	LinkUp
)

func (s LinkState) String() string {
	if s == LinkUp {
		return "up"
	}
	return "down"
}

// Multi-queue issue model. The port exposes NumVCs virtual channels,
// mirroring the per-QoS-class request queues of a real CXL host bridge:
// every transaction is dispatched round-robin onto one VC, which owns a
// slice of the tag space (the VC index in the high bits, a per-VC
// sequence in the low bits) and its own retry state. Concurrent
// ReadLine/WriteLine/ReadBurst/WriteBurst calls from many goroutines
// therefore never contend on a shared sequence counter and can never
// observe each other's tags: two in-flight transactions always differ
// in VC bits or in sequence bits.
const (
	// NumVCs is the number of virtual channels per port (power of two).
	NumVCs = 8
	// vcTagBits is the per-VC sequence width inside the 16-bit tag; the
	// top bits carry the VC index.
	vcTagBits = 13
	vcSeqMask = 1<<vcTagBits - 1
)

// virtualChannel is one issue queue: a private tag sequence plus a
// retry counter. The sequence doubles as the issue counter (one tag
// per transaction). Padded to a cache line so adjacent VCs do not
// false-share under parallel load.
type virtualChannel struct {
	seq     atomic.Uint32
	retries atomic.Int64
	_       [48]byte
}

// VCStat is a snapshot of one virtual channel's counters.
type VCStat struct {
	Issued  int64
	Retries int64
}

// portHooks is the immutable snapshot of the port's observation and
// fault-injection hooks. The hot path loads it once per transaction, so
// hooks can be swapped at runtime while traffic is in flight: every
// transaction sees either the old pair or the new pair, never a torn
// mix.
type portHooks struct {
	trace func(Flit)
	fault func(Flit) Flit
}

// portSession is the immutable snapshot of link training state: which
// endpoint is attached and whether the link is up. Attach/Detach
// publish a fresh snapshot; the data path reads it lock-free. ras, when
// non-nil, points at the attached endpoint's media counters so link
// CRC retries and exhausted-retry failures are attributed to the device
// they occurred against — the health thresholds' retry-storm input.
type portSession struct {
	state    LinkState
	endpoint Endpoint
	ras      *memdev.Stats
}

// retry charges one link-level retransmission to the issuing VC and to
// the attached device's RAS counters.
func (s *portSession) retry(vc *virtualChannel) {
	vc.retries.Add(1)
	if s.ras != nil {
		s.ras.LinkRetries.Add(1)
	}
}

// uncorrectable charges an exhausted retry budget to the device.
func (s *portSession) uncorrectable() {
	if s.ras != nil {
		s.ras.Uncorrectable.Add(1)
	}
}

// RootPort is a host-side CXL port: the CPU's view of one PCIe/CXL slot.
// It owns the physical link, performs link training against an attached
// endpoint, and carries CXL.mem traffic to it. Every request/response
// genuinely round-trips through the flit codec so protocol tests observe
// real wire behaviour; the steady-state data path allocates nothing and
// is safe for concurrent use by many goroutines (see the multi-queue
// issue model above).
type RootPort struct {
	name string
	link *interconnect.Link

	// mu serialises the cold path only: Attach/Detach and hook swaps.
	mu    sync.Mutex
	sess  atomic.Pointer[portSession]
	hooks atomic.Pointer[portHooks]

	// rr dispatches transactions round-robin over the VCs.
	rr  atomic.Uint32
	vcs [NumVCs]virtualChannel
}

// maxLinkRetries bounds retransmission before the port reports an
// uncorrectable link error.
const maxLinkRetries = 3

// maxBurstBytes is the payload of a maximal burst (4 KiB).
const maxBurstBytes = MaxBurstLines * LineSize

// burstBufPool recycles burst staging buffers (the receive side of the
// modelled wire) so the bulk path stays allocation-free in steady state.
var burstBufPool = sync.Pool{New: func() any { return new([maxBurstBytes]byte) }}

// Retries reports how many link-level retransmissions occurred, summed
// over all virtual channels.
func (rp *RootPort) Retries() int64 {
	var n int64
	for i := range rp.vcs {
		n += rp.vcs[i].retries.Load()
	}
	return n
}

// VCStats snapshots the per-virtual-channel issue and retry counters.
// Issued counts modulo 2^32 (the sequence width).
func (rp *RootPort) VCStats() [NumVCs]VCStat {
	var out [NumVCs]VCStat
	for i := range rp.vcs {
		out[i] = VCStat{Issued: int64(rp.vcs[i].seq.Load()), Retries: rp.vcs[i].retries.Load()}
	}
	return out
}

// NewRootPort builds a root port over the given physical link.
func NewRootPort(name string, link *interconnect.Link) *RootPort {
	return &RootPort{name: name, link: link}
}

// Name returns the port name.
func (rp *RootPort) Name() string { return rp.name }

// Link returns the physical link.
func (rp *RootPort) Link() *interconnect.Link { return rp.link }

// State returns the link state.
func (rp *RootPort) State() LinkState {
	if s := rp.sess.Load(); s != nil {
		return s.state
	}
	return LinkDown
}

// Endpoint returns the attached endpoint, or nil.
func (rp *RootPort) Endpoint() Endpoint {
	if s := rp.sess.Load(); s != nil {
		return s.endpoint
	}
	return nil
}

// setHooks publishes a new hook snapshot derived from the current one:
// read-merge-store under mu so concurrent setters never lose each
// other's hook, while in-flight transactions keep the snapshot they
// loaded at issue time.
func (rp *RootPort) setHooks(mutate func(*portHooks)) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	var h portHooks
	if cur := rp.hooks.Load(); cur != nil {
		h = *cur
	}
	mutate(&h)
	rp.hooks.Store(&h)
}

// SetFlitTrace installs (or, with nil, removes) the hook that receives
// every flit the port moves (fault injection and protocol tests). Safe
// to call while traffic is in flight: transactions already issued keep
// the hook snapshot they started with.
func (rp *RootPort) SetFlitTrace(f func(Flit)) {
	rp.setHooks(func(h *portHooks) { h.trace = f })
}

// SetFault installs (or, with nil, removes) the hook that may corrupt a
// flit in flight (fault injection). The link-level retry state machine
// detects the CRC failure and retransmits, as CXL's LRSM does. Safe to
// swap at runtime, like SetFlitTrace.
func (rp *RootPort) SetFault(f func(Flit) Flit) {
	rp.setHooks(func(h *portHooks) { h.fault = f })
}

// Attach trains the link against ep. Training succeeds only if the
// endpoint's config space carries a valid CXL DVSEC (alternate-protocol
// negotiation: a plain PCIe card would not present one).
func (rp *RootPort) Attach(ep Endpoint) error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if s := rp.sess.Load(); s != nil && s.endpoint != nil {
		return fmt.Errorf("cxl: %s: port already has endpoint %s", rp.name, s.endpoint.Name())
	}
	if ep == nil {
		return fmt.Errorf("cxl: %s: nil endpoint", rp.name)
	}
	dvsec, ok := ep.Config().FindCXLDVSEC()
	if !ok {
		return fmt.Errorf("cxl: %s: endpoint %s has no CXL DVSEC; link training failed", rp.name, ep.Name())
	}
	if dvsec.Caps&CapIO == 0 {
		return fmt.Errorf("cxl: %s: endpoint %s does not advertise CXL.io", rp.name, ep.Name())
	}
	sess := &portSession{state: LinkUp, endpoint: ep}
	// Resolve the retry-attribution sink once, at training time: link
	// errors on this port are charged to the media behind the endpoint.
	if md, ok := ep.(interface{ Media() memdev.Device }); ok {
		if media := md.Media(); media != nil {
			sess.ras = media.Stats()
		}
	}
	rp.sess.Store(sess)
	return nil
}

// Detach brings the link down and releases the endpoint. Transactions
// already in flight complete against the endpoint they started with.
func (rp *RootPort) Detach() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.sess.Store(&portSession{state: LinkDown})
}

// session returns the hot-path link snapshot, or an error when the link
// is down.
func (rp *RootPort) session(op string, addr uint64) (*portSession, error) {
	s := rp.sess.Load()
	if s == nil || s.state != LinkUp || s.endpoint == nil {
		return nil, &PortError{Port: rp.name, Op: op, Addr: addr, Why: "link down"}
	}
	return s, nil
}

// issue dispatches one transaction onto a virtual channel: round-robin
// VC selection, then a tag from that VC's private sequence space.
func (rp *RootPort) issue() (*virtualChannel, uint16) {
	i := rp.rr.Add(1) & (NumVCs - 1)
	vc := &rp.vcs[i]
	return vc, uint16(i)<<vcTagBits | uint16(vc.seq.Add(1))&vcSeqMask
}

// PortError reports a transaction-level failure at a port.
type PortError struct {
	Port string
	Op   string
	Addr uint64
	Why  string
}

func (e *PortError) Error() string {
	return fmt.Sprintf("cxl: %s: %s @%#x: %s", e.Port, e.Op, e.Addr, e.Why)
}

// moveFlit pushes one already-encoded flit through the modelled wire:
// fault injection and tracing, using the hook snapshot the transaction
// was issued with. The receiver's CRC check happens at decode; the
// caller owns the retry loop.
func (rp *RootPort) moveFlit(h *portHooks, f *Flit) {
	if h == nil {
		return
	}
	if h.fault != nil {
		*f = h.fault(*f)
	}
	if h.trace != nil {
		h.trace(*f)
	}
}

// transact moves one request through the flit codec to the endpoint and
// decodes the response: one protected request flit out (sendHeader),
// the endpoint's HandleMem, one protected response flit back
// (recvResp, which also enforces tag matching). The fast path performs
// zero heap allocations: flits live on the stack and decode happens in
// place.
func (rp *RootPort) transact(req *MemReq) (MemResp, error) {
	s, err := rp.session(req.Opcode.String(), req.Addr)
	if err != nil {
		return MemResp{}, err
	}
	h := rp.hooks.Load()
	vc, tag := rp.issue()
	req.Tag = tag
	var decoded MemReq
	if err := rp.sendHeader(s, h, vc, req, &decoded); err != nil {
		return MemResp{}, err
	}
	resp := s.endpoint.HandleMem(decoded)
	var out MemResp
	if err := rp.recvResp(s, h, vc, req.Opcode, req.Addr, req.Tag, &resp, &out); err != nil {
		return MemResp{}, err
	}
	return out, nil
}

// ReadLine fetches the 64-byte line at hpa.
func (rp *RootPort) ReadLine(hpa uint64, out *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return &PortError{Port: rp.name, Op: "MemRd", Addr: hpa, Why: "unaligned"}
	}
	req := MemReq{Opcode: OpMemRd, Addr: hpa}
	resp, err := rp.transact(&req)
	if err != nil {
		return err
	}
	if resp.Opcode != RespMemData {
		return &PortError{Port: rp.name, Op: "MemRd", Addr: hpa, Why: "response " + resp.Opcode.String()}
	}
	*out = resp.Data
	return nil
}

// WriteLine stores a full 64-byte line at hpa.
func (rp *RootPort) WriteLine(hpa uint64, data *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return &PortError{Port: rp.name, Op: "MemWr", Addr: hpa, Why: "unaligned"}
	}
	req := MemReq{Opcode: OpMemWr, Addr: hpa, Data: *data}
	resp, err := rp.transact(&req)
	if err != nil {
		return err
	}
	if resp.Opcode != RespCmp {
		return &PortError{Port: rp.name, Op: "MemWr", Addr: hpa, Why: "response " + resp.Opcode.String()}
	}
	return nil
}

// --- Burst transactions --------------------------------------------------
//
// A burst moves up to MaxBurstLines cache lines under one header flit,
// mirroring CXL's all-data-flit streaming: header, N data beats, one
// completion. Every beat still crosses the modelled wire individually —
// fault injection, tracing and CRC/retry fire per flit — but the
// endpoint services the whole burst with a single HDM access, so bulk
// transfers cost O(bytes) instead of O(lines × codec round trips).
//
// Addressing semantics follow the endpoint's HDM decoder, as on real
// hardware. Through a plain decoder a burst covers the contiguous HPA
// span [hpa, hpa+len). Through an *interleaved* decoder it covers the
// next len/LineSize lines *owned by that target* starting at hpa —
// the device never sees other targets' granules, so Lines counts its
// own (see Type3Device.decodeSpan). A host talking to one leg of an
// interleave set must therefore be interleave-aware: use
// InterleaveSet, which performs the granule fan-out and hands each
// port exactly its owned lines, rather than issuing HPA-contiguous
// bursts at an interleaved window directly.

// sendHeader pushes one request flit (line transaction or burst
// header) over the wire with link-level retry — a flit corrupted in
// flight fails its CRC at the receiver, which NAKs, and the sender
// retransmits from its retry buffer — and returns the decoded form the
// device sees. Retries are charged to the issuing VC.
func (rp *RootPort) sendHeader(s *portSession, h *portHooks, vc *virtualChannel, req *MemReq, decoded *MemReq) error {
	var f Flit
	var err error
	for attempt := 0; ; attempt++ {
		EncodeReqInto(&f, req)
		rp.moveFlit(h, &f)
		if err = DecodeReqInto(decoded, &f); err == nil {
			return nil
		}
		if attempt >= maxLinkRetries {
			s.uncorrectable()
			return &PortError{Port: rp.name, Op: req.Opcode.String(), Addr: req.Addr, Why: "uncorrectable link error: " + err.Error()}
		}
		s.retry(vc)
	}
}

// moveData pushes one burst data beat (src line seq) over the wire with
// retry and lands it in dst. f is caller-owned scratch, reused across
// the beats of a burst so the wire loop does not re-zero a flit per
// line.
func (rp *RootPort) moveData(s *portSession, h *portHooks, vc *virtualChannel, f *Flit, op MemOpcode, addr uint64, tag uint16, seq uint32, src, dst *[LineSize]byte) error {
	for attempt := 0; ; attempt++ {
		EncodeDataInto(f, tag, seq, src)
		rp.moveFlit(h, f)
		gotTag, gotSeq, err := DecodeDataInto(dst, f)
		if err == nil {
			if gotTag != tag || gotSeq != seq {
				return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: fmt.Sprintf("data flit tag/seq mismatch: sent %d/%d got %d/%d", tag, seq, gotTag, gotSeq)}
			}
			return nil
		}
		if attempt >= maxLinkRetries {
			s.uncorrectable()
			return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: "uncorrectable link error on data flit: " + err.Error()}
		}
		s.retry(vc)
	}
}

// recvResp pushes one completion/response flit back over the wire with
// the same retry protection and enforces tag matching.
func (rp *RootPort) recvResp(s *portSession, h *portHooks, vc *virtualChannel, op MemOpcode, addr uint64, tag uint16, resp *MemResp, out *MemResp) error {
	var f Flit
	var err error
	for attempt := 0; ; attempt++ {
		EncodeRespInto(&f, resp)
		rp.moveFlit(h, &f)
		if err = DecodeRespInto(out, &f); err == nil {
			break
		}
		if attempt >= maxLinkRetries {
			s.uncorrectable()
			return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: "uncorrectable link error: " + err.Error()}
		}
		s.retry(vc)
	}
	if out.Tag != tag {
		return &PortError{Port: rp.name, Op: op.String(), Addr: addr, Why: fmt.Sprintf("tag mismatch: sent %d got %d", tag, out.Tag)}
	}
	return nil
}

// handleBurst dispatches a decoded burst to the endpoint: natively when
// it implements BurstHandler, otherwise line by line through HandleMem.
// The fallback preserves the native path's no-partial-effects contract:
// a write burst first probes every target line with MemRd (validating
// decode and poison) and only then writes, so a burst failing on any
// line leaves the media untouched either way.
func (rp *RootPort) handleBurst(ep Endpoint, req MemReq, payload []byte) MemResp {
	if bh, ok := ep.(BurstHandler); ok {
		return bh.HandleMemBurst(req, payload)
	}
	lines := int(req.Lines)
	if req.Opcode == OpMemWrBurst {
		for i := 0; i < lines; i++ {
			probe := MemReq{Opcode: OpMemRd, Tag: req.Tag, Addr: req.Addr + uint64(i*LineSize)}
			if resp := ep.HandleMem(probe); resp.Opcode != RespMemData {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
		}
	}
	for i := 0; i < lines; i++ {
		var lr MemReq
		lr.Tag = req.Tag
		lr.Addr = req.Addr + uint64(i*LineSize)
		if req.Opcode == OpMemWrBurst {
			lr.Opcode = OpMemWr
			copy(lr.Data[:], payload[i*LineSize:(i+1)*LineSize])
			if resp := ep.HandleMem(lr); resp.Opcode != RespCmp {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
		} else {
			lr.Opcode = OpMemRd
			resp := ep.HandleMem(lr)
			if resp.Opcode != RespMemData {
				return MemResp{Tag: req.Tag, Opcode: resp.Opcode}
			}
			copy(payload[i*LineSize:(i+1)*LineSize], resp.Data[:])
		}
	}
	if req.Opcode == OpMemWrBurst {
		return MemResp{Tag: req.Tag, Opcode: RespCmp}
	}
	return MemResp{Tag: req.Tag, Opcode: RespMemData}
}

// WriteBurst stores p at the line-aligned HPA hpa using burst
// transactions; len(p) must be a multiple of LineSize.
func (rp *RootPort) WriteBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return &PortError{Port: rp.name, Op: "MemWrBurst", Addr: hpa, Why: "unaligned burst"}
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxBurstBytes {
			n = maxBurstBytes
		}
		if err := rp.writeBurstChunk(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	return nil
}

func (rp *RootPort) writeBurstChunk(hpa uint64, p []byte) error {
	s, err := rp.session("MemWrBurst", hpa)
	if err != nil {
		return err
	}
	h := rp.hooks.Load()
	vc, tag := rp.issue()
	lines := len(p) / LineSize
	req := MemReq{Opcode: OpMemWrBurst, Addr: hpa, Lines: uint16(lines), Tag: tag}
	var decoded MemReq
	if err := rp.sendHeader(s, h, vc, &req, &decoded); err != nil {
		return err
	}
	buf := burstBufPool.Get().(*[maxBurstBytes]byte)
	var f Flit
	for i := 0; i < lines; i++ {
		src := (*[LineSize]byte)(p[i*LineSize:])
		dst := (*[LineSize]byte)(buf[i*LineSize:])
		if err := rp.moveData(s, h, vc, &f, OpMemWrBurst, hpa, req.Tag, uint32(i), src, dst); err != nil {
			burstBufPool.Put(buf)
			return err
		}
	}
	resp := rp.handleBurst(s.endpoint, decoded, buf[:len(p)])
	burstBufPool.Put(buf)
	var out MemResp
	if err := rp.recvResp(s, h, vc, OpMemWrBurst, hpa, req.Tag, &resp, &out); err != nil {
		return err
	}
	if out.Opcode != RespCmp {
		return &PortError{Port: rp.name, Op: "MemWrBurst", Addr: hpa, Why: "response " + out.Opcode.String()}
	}
	return nil
}

// ReadBurst fetches len(p) bytes from the line-aligned HPA hpa using
// burst transactions; len(p) must be a multiple of LineSize.
func (rp *RootPort) ReadBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return &PortError{Port: rp.name, Op: "MemRdBurst", Addr: hpa, Why: "unaligned burst"}
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxBurstBytes {
			n = maxBurstBytes
		}
		if err := rp.readBurstChunk(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	return nil
}

func (rp *RootPort) readBurstChunk(hpa uint64, p []byte) error {
	s, err := rp.session("MemRdBurst", hpa)
	if err != nil {
		return err
	}
	h := rp.hooks.Load()
	vc, tag := rp.issue()
	lines := len(p) / LineSize
	req := MemReq{Opcode: OpMemRdBurst, Addr: hpa, Lines: uint16(lines), Tag: tag}
	var decoded MemReq
	if err := rp.sendHeader(s, h, vc, &req, &decoded); err != nil {
		return err
	}
	buf := burstBufPool.Get().(*[maxBurstBytes]byte)
	resp := rp.handleBurst(s.endpoint, decoded, buf[:len(p)])
	var out MemResp
	if err := rp.recvResp(s, h, vc, OpMemRdBurst, hpa, req.Tag, &resp, &out); err != nil {
		burstBufPool.Put(buf)
		return err
	}
	if out.Opcode != RespMemData {
		burstBufPool.Put(buf)
		return &PortError{Port: rp.name, Op: "MemRdBurst", Addr: hpa, Why: "response " + out.Opcode.String()}
	}
	var f Flit
	for i := 0; i < lines; i++ {
		src := (*[LineSize]byte)(buf[i*LineSize:])
		dst := (*[LineSize]byte)(p[i*LineSize:])
		if err := rp.moveData(s, h, vc, &f, OpMemRdBurst, hpa, req.Tag, uint32(i), src, dst); err != nil {
			burstBufPool.Put(buf)
			return err
		}
	}
	burstBufPool.Put(buf)
	return nil
}

// ReadAt copies len(p) bytes from HPA off. Unaligned heads/tails are
// handled with full-line reads; the line-aligned interior streams
// through the burst path, so bulk transfers cost O(bytes) instead of
// O(lines × codec round trips).
func (rp *RootPort) ReadAt(p []byte, off int64) error {
	hpa := uint64(off)
	// Unaligned head: one full-line read, copy the covered part.
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		var line [LineSize]byte
		if err := rp.ReadLine(hpa-uint64(lo), &line); err != nil {
			return err
		}
		copy(p[:n], line[lo:lo+n])
		p = p[n:]
		hpa += uint64(n)
	}
	// Line-aligned interior: burst.
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if n == LineSize {
			var line [LineSize]byte
			if err := rp.ReadLine(hpa, &line); err != nil {
				return err
			}
			copy(p[:LineSize], line[:])
		} else if err := rp.ReadBurst(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Partial tail.
	if len(p) > 0 {
		var line [LineSize]byte
		if err := rp.ReadLine(hpa, &line); err != nil {
			return err
		}
		copy(p, line[:len(p)])
	}
	return nil
}

// writePartial issues one MemWrPtl for the sub-line [lo, lo+n) of the
// line at base.
func (rp *RootPort) writePartial(base uint64, lo int, p []byte) error {
	var req MemReq
	req.Opcode = OpMemWrPtl
	req.Addr = base
	copy(req.Data[lo:lo+len(p)], p)
	for i := lo; i < lo+len(p); i++ {
		req.Mask |= 1 << uint(i)
	}
	resp, err := rp.transact(&req)
	if err != nil {
		return err
	}
	if resp.Opcode != RespCmp {
		return &PortError{Port: rp.name, Op: "MemWrPtl", Addr: base, Why: "response " + resp.Opcode.String()}
	}
	return nil
}

// WriteAt stores p at HPA off. Full interior lines stream through the
// burst path; unaligned head/tail lines use MemWrPtl with a byte mask,
// exactly as a write-combining host interface would.
func (rp *RootPort) WriteAt(p []byte, off int64) error {
	hpa := uint64(off)
	// Unaligned head: partial write under a mask.
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		if err := rp.writePartial(hpa-uint64(lo), lo, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Line-aligned interior: burst.
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if n == LineSize {
			var line [LineSize]byte
			copy(line[:], p[:LineSize])
			if err := rp.WriteLine(hpa, &line); err != nil {
				return err
			}
		} else if err := rp.WriteBurst(hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	// Partial tail.
	if len(p) > 0 {
		if err := rp.writePartial(hpa, 0, p); err != nil {
			return err
		}
	}
	return nil
}
