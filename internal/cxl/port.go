package cxl

import (
	"fmt"
	"sync/atomic"

	"cxlpmem/internal/interconnect"
)

// LinkState tracks root-port link training.
type LinkState int

const (
	// LinkDown — no endpoint attached or training failed.
	LinkDown LinkState = iota
	// LinkUp — training completed, transactions may flow.
	LinkUp
)

func (s LinkState) String() string {
	if s == LinkUp {
		return "up"
	}
	return "down"
}

// RootPort is a host-side CXL port: the CPU's view of one PCIe/CXL slot.
// It owns the physical link, performs link training against an attached
// endpoint, and carries CXL.mem traffic to it. Every request/response
// genuinely round-trips through the flit codec so protocol tests observe
// real wire behaviour.
type RootPort struct {
	name string
	link *interconnect.Link

	endpoint Endpoint
	state    LinkState
	tag      atomic.Uint32

	// FlitTrace, when non-nil, receives every flit the port moves
	// (fault injection and protocol tests).
	FlitTrace func(Flit)
	// Fault, when non-nil, may corrupt a flit in flight (fault
	// injection). The link-level retry state machine detects the CRC
	// failure and retransmits, as CXL's LRSM does.
	Fault func(Flit) Flit

	retries atomic.Int64
}

// maxLinkRetries bounds retransmission before the port reports an
// uncorrectable link error.
const maxLinkRetries = 3

// Retries reports how many link-level retransmissions occurred.
func (rp *RootPort) Retries() int64 { return rp.retries.Load() }

// NewRootPort builds a root port over the given physical link.
func NewRootPort(name string, link *interconnect.Link) *RootPort {
	return &RootPort{name: name, link: link}
}

// Name returns the port name.
func (rp *RootPort) Name() string { return rp.name }

// Link returns the physical link.
func (rp *RootPort) Link() *interconnect.Link { return rp.link }

// State returns the link state.
func (rp *RootPort) State() LinkState { return rp.state }

// Endpoint returns the attached endpoint, or nil.
func (rp *RootPort) Endpoint() Endpoint { return rp.endpoint }

// Attach trains the link against ep. Training succeeds only if the
// endpoint's config space carries a valid CXL DVSEC (alternate-protocol
// negotiation: a plain PCIe card would not present one).
func (rp *RootPort) Attach(ep Endpoint) error {
	if rp.endpoint != nil {
		return fmt.Errorf("cxl: %s: port already has endpoint %s", rp.name, rp.endpoint.Name())
	}
	if ep == nil {
		return fmt.Errorf("cxl: %s: nil endpoint", rp.name)
	}
	dvsec, ok := ep.Config().FindCXLDVSEC()
	if !ok {
		return fmt.Errorf("cxl: %s: endpoint %s has no CXL DVSEC; link training failed", rp.name, ep.Name())
	}
	if dvsec.Caps&CapIO == 0 {
		return fmt.Errorf("cxl: %s: endpoint %s does not advertise CXL.io", rp.name, ep.Name())
	}
	rp.endpoint = ep
	rp.state = LinkUp
	return nil
}

// Detach brings the link down and releases the endpoint.
func (rp *RootPort) Detach() {
	rp.endpoint = nil
	rp.state = LinkDown
}

// PortError reports a transaction-level failure at a port.
type PortError struct {
	Port string
	Op   string
	Addr uint64
	Why  string
}

func (e *PortError) Error() string {
	return fmt.Sprintf("cxl: %s: %s @%#x: %s", e.Port, e.Op, e.Addr, e.Why)
}

// transact moves one request through the flit codec to the endpoint and
// decodes the response.
func (rp *RootPort) transact(req MemReq) (MemResp, error) {
	if rp.state != LinkUp || rp.endpoint == nil {
		return MemResp{}, &PortError{Port: rp.name, Op: req.Opcode.String(), Addr: req.Addr, Why: "link down"}
	}
	req.Tag = uint16(rp.tag.Add(1))

	// Request direction with link-level retry: a flit corrupted in
	// flight fails its CRC at the receiver, which NAKs; the sender
	// retransmits from its retry buffer.
	var decoded MemReq
	var err error
	for attempt := 0; ; attempt++ {
		f := EncodeReq(req)
		if rp.Fault != nil {
			f = rp.Fault(f)
		}
		if rp.FlitTrace != nil {
			rp.FlitTrace(f)
		}
		decoded, err = DecodeReq(f)
		if err == nil {
			break
		}
		if attempt >= maxLinkRetries {
			return MemResp{}, &PortError{Port: rp.name, Op: req.Opcode.String(), Addr: req.Addr, Why: "uncorrectable link error: " + err.Error()}
		}
		rp.retries.Add(1)
	}
	resp := rp.endpoint.HandleMem(decoded)

	// Response direction, same protection.
	var out MemResp
	for attempt := 0; ; attempt++ {
		rf := EncodeResp(resp)
		if rp.Fault != nil {
			rf = rp.Fault(rf)
		}
		if rp.FlitTrace != nil {
			rp.FlitTrace(rf)
		}
		out, err = DecodeResp(rf)
		if err == nil {
			break
		}
		if attempt >= maxLinkRetries {
			return MemResp{}, &PortError{Port: rp.name, Op: req.Opcode.String(), Addr: req.Addr, Why: "uncorrectable link error: " + err.Error()}
		}
		rp.retries.Add(1)
	}
	if out.Tag != req.Tag {
		return MemResp{}, &PortError{Port: rp.name, Op: req.Opcode.String(), Addr: req.Addr, Why: fmt.Sprintf("tag mismatch: sent %d got %d", req.Tag, out.Tag)}
	}
	return out, nil
}

// ReadLine fetches the 64-byte line at hpa.
func (rp *RootPort) ReadLine(hpa uint64, out *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return &PortError{Port: rp.name, Op: "MemRd", Addr: hpa, Why: "unaligned"}
	}
	resp, err := rp.transact(MemReq{Opcode: OpMemRd, Addr: hpa})
	if err != nil {
		return err
	}
	if resp.Opcode != RespMemData {
		return &PortError{Port: rp.name, Op: "MemRd", Addr: hpa, Why: "response " + resp.Opcode.String()}
	}
	*out = resp.Data
	return nil
}

// WriteLine stores a full 64-byte line at hpa.
func (rp *RootPort) WriteLine(hpa uint64, data *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return &PortError{Port: rp.name, Op: "MemWr", Addr: hpa, Why: "unaligned"}
	}
	resp, err := rp.transact(MemReq{Opcode: OpMemWr, Addr: hpa, Data: *data})
	if err != nil {
		return err
	}
	if resp.Opcode != RespCmp {
		return &PortError{Port: rp.name, Op: "MemWr", Addr: hpa, Why: "response " + resp.Opcode.String()}
	}
	return nil
}

// ReadAt copies len(p) bytes from HPA off, chunking into line requests.
// Unaligned heads/tails are handled with full-line reads.
func (rp *RootPort) ReadAt(p []byte, off int64) error {
	hpa := uint64(off)
	for len(p) > 0 {
		base := hpa &^ uint64(LineSize-1)
		lo := int(hpa - base)
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		var line [LineSize]byte
		if err := rp.ReadLine(base, &line); err != nil {
			return err
		}
		copy(p[:n], line[lo:lo+n])
		p = p[n:]
		hpa += uint64(n)
	}
	return nil
}

// WriteAt stores p at HPA off. Full interior lines use MemWr; unaligned
// head/tail lines use MemWrPtl with a byte mask, exactly as a write-
// combining host interface would.
func (rp *RootPort) WriteAt(p []byte, off int64) error {
	hpa := uint64(off)
	for len(p) > 0 {
		base := hpa &^ uint64(LineSize-1)
		lo := int(hpa - base)
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		if lo == 0 && n == LineSize {
			var line [LineSize]byte
			copy(line[:], p[:LineSize])
			if err := rp.WriteLine(base, &line); err != nil {
				return err
			}
		} else {
			var req MemReq
			req.Opcode = OpMemWrPtl
			req.Addr = base
			copy(req.Data[lo:lo+n], p[:n])
			for i := lo; i < lo+n; i++ {
				req.Mask |= 1 << uint(i)
			}
			resp, err := rp.transact(req)
			if err != nil {
				return err
			}
			if resp.Opcode != RespCmp {
				return &PortError{Port: rp.name, Op: "MemWrPtl", Addr: base, Why: "response " + resp.Opcode.String()}
			}
		}
		p = p[n:]
		hpa += uint64(n)
	}
	return nil
}
