package cxl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Host-side interleave sets. CXL scales bandwidth the way DRAM channels
// do: a host physical window is striped across N endpoints at granule
// boundaries, and N links move data in parallel. The HDM decoder model
// (hdm.go) has carried the geometry since the seed — ways, granule,
// target index — but until this layer existed the host could not exploit
// it: nothing split a burst across ports. An InterleaveSet is that
// missing host half. It owns one root port per interleave target,
// programs the matching per-target decoders at enumeration time, and
// fans every bulk transfer out into per-leg granule runs issued
// concurrently over the member ports.
//
// The wire semantics per leg are unchanged: each leg's traffic moves
// through its own RootPort — multi-VC tagging, per-flit CRC, LRSM
// retry, trace/fault hooks — so a fault injected on one link retries on
// that link alone and never perturbs the other legs. The endpoint
// services a leg burst with a single media access because consecutive
// target-owned lines of an interleaved window map to a contiguous DPA
// span (see Type3Device.decodeSpan).
//
// Steady state allocates nothing: leg fan-out reuses pooled call frames
// handed to persistent per-leg worker goroutines (a goroutine spawned
// per call would heap-allocate its closure), and gather/scatter staging
// comes from the same burst buffer pool the ports use.

// MaxInterleaveWays bounds the interleave width, matching CXL 2.0's
// 8-way root-complex interleave limit.
const MaxInterleaveWays = 8

// DefaultInterleaveGranule is the stripe unit when the caller does not
// choose one: 256 B, the typical CXL interleave granularity.
const DefaultInterleaveGranule = 256

// stripeJob is one leg's share of a striped transfer, handed to the
// leg's worker goroutine. Jobs live inside pooled stripeCall frames so
// the fan-out allocates nothing in steady state.
type stripeJob struct {
	set   *InterleaveSet
	wg    *sync.WaitGroup
	leg   int
	write bool
	// flush marks a doorbell job: instead of moving a span, the worker
	// rings the leg port's doorbell so all legs flush their rings in
	// parallel (InterleaveSet.Flush).
	flush bool
	hpa   uint64
	p     []byte
	err   error
}

// stripeCall is the reusable per-call frame: one job slot per possible
// leg plus the completion barrier.
type stripeCall struct {
	wg   sync.WaitGroup
	jobs [MaxInterleaveWays]stripeJob
}

var stripeCallPool = sync.Pool{New: func() any { return new(stripeCall) }}

// legWorker drains one leg's job channel for the lifetime of the set.
func legWorker(ch chan *stripeJob) {
	for j := range ch {
		runStripeJob(j)
	}
}

// runStripeJob executes one leg's share and signals the call barrier.
// It runs on the leg's persistent worker, or on a transient goroutine
// when the worker is mid-job (concurrent striped calls overflow rather
// than queue, so N callers drive a leg's port N-wide over its virtual
// channels instead of serialising behind one worker).
func runStripeJob(j *stripeJob) {
	if j.flush {
		j.set.legs()[j.leg].Flush()
		j.err = nil
	} else {
		j.err = j.set.runLeg(j.leg, j.write, j.hpa, j.p)
	}
	j.wg.Done()
}

// InterleaveSet is a striped CXL.mem data path over N root ports: one
// HPA window, interleaved at granule boundaries across the ports'
// endpoints, with bulk transfers split into per-leg sub-bursts issued
// concurrently. It exposes the same transfer surface as a single
// RootPort (ReadBurst/WriteBurst/ReadAt/WriteAt plus line ops routed to
// the owning leg), so callers swap one for the other.
type InterleaveSet struct {
	name    string
	ways    int // interleave width; fixed geometry for the set's lifetime
	base    uint64
	size    uint64 // ways × share
	share   uint64 // per-target bytes
	granule uint64
	// live is the published member-port slice, one entry per leg. It is
	// an immutable snapshot behind an atomic pointer so hot-add can swap
	// a replacement port into a leg while traffic is in flight; the
	// geometry (ways/granule/share) never changes with it.
	live atomic.Pointer[[]*RootPort]
	// epoch/inflight implement an RCU-style grace period: every transfer
	// registers on the current epoch's counter for its lifetime, and a
	// state change (publish evacuation, swap a port, retire spares)
	// flips the epoch and waits only for the old counter to drain. New
	// transfers land on the new counter, so the wait is bounded by the
	// transfers in flight at the flip — it never requires continuous
	// foreground traffic to quiesce.
	epoch    atomic.Uint64
	inflight [2]atomic.Int64
	// evacMu serialises the evacuation control plane (begin, migrate,
	// detach, reattach); evac is its published hot-path state, nil when
	// the set runs at full width.
	evacMu sync.Mutex
	evac   atomic.Pointer[evacuation]
	// workers feed legs 1..ways-1; leg 0 always runs on the caller's
	// goroutine, so a 1-way set degenerates to the plain port path with
	// no hand-off at all.
	workers []chan *stripeJob
}

// legs returns the current member ports (immutable snapshot).
func (s *InterleaveSet) legs() []*RootPort { return *s.live.Load() }

// InterleaveOptions tunes NewInterleaveSetOpts. Zero values select the
// defaults NewInterleaveSet uses.
type InterleaveOptions struct {
	// Base is the window's first HPA (DefaultCXLWindowBase if zero).
	Base uint64
	// Granule is the stripe unit (DefaultInterleaveGranule if zero).
	Granule uint64
	// Share caps the per-target bytes below the natural minimum-HDM
	// share, leaving the rest of each member device as headroom — the
	// spare capacity BeginEvacuation redistributes a dying leg onto.
	// Zero uses the full minimum HDM.
	Share uint64
}

// NewInterleaveSet builds and commits an interleave set: every port
// must be trained against a Type-3 (burst-capable) endpoint, and each
// endpoint is programmed with the per-target interleaved HDM decoder
// for the shared window at base. The window size is ways × share, where
// share is the smallest member HDM rounded down to a granule multiple.
// A granule of 0 selects DefaultInterleaveGranule; a base of 0 selects
// DefaultCXLWindowBase.
func NewInterleaveSet(name string, base, granule uint64, ports ...*RootPort) (*InterleaveSet, error) {
	return NewInterleaveSetOpts(name, InterleaveOptions{Base: base, Granule: granule}, ports...)
}

// NewInterleaveSetOpts is NewInterleaveSet with the full option set.
func NewInterleaveSetOpts(name string, opts InterleaveOptions, ports ...*RootPort) (*InterleaveSet, error) {
	base, granule := opts.Base, opts.Granule
	ways := len(ports)
	if ways < 1 || ways > MaxInterleaveWays {
		return nil, fmt.Errorf("cxl: %s: %d interleave ways outside 1..%d", name, ways, MaxInterleaveWays)
	}
	if granule == 0 {
		granule = DefaultInterleaveGranule
	}
	if granule%uint64(LineSize) != 0 {
		return nil, fmt.Errorf("cxl: %s: granule %d not a multiple of the %d-byte line", name, granule, LineSize)
	}
	if base == 0 {
		base = DefaultCXLWindowBase
	}
	if base%granule != 0 {
		return nil, fmt.Errorf("cxl: %s: base %#x not granule-aligned", name, base)
	}

	share := ^uint64(0)
	type programmer interface{ ProgramDecoder(*HDMDecoder) error }
	for i, rp := range ports {
		ep := rp.Endpoint()
		if ep == nil || rp.State() != LinkUp {
			return nil, fmt.Errorf("cxl: %s: leg %d (%s): link down", name, i, rp.Name())
		}
		dvsec, ok := ep.Config().FindCXLDVSEC()
		if !ok || dvsec.Caps&CapMem == 0 || dvsec.HDMSize == 0 {
			return nil, fmt.Errorf("cxl: %s: leg %d endpoint %s advertises no HDM", name, i, ep.Name())
		}
		if _, ok := ep.(BurstHandler); !ok {
			// Strided leg bursts need the endpoint's native burst path;
			// the port-level per-line fallback assumes HPA-contiguous
			// spans and would mis-address an interleaved window.
			return nil, fmt.Errorf("cxl: %s: leg %d endpoint %s cannot service bursts natively", name, i, ep.Name())
		}
		if _, ok := ep.(programmer); !ok {
			return nil, fmt.Errorf("cxl: %s: leg %d endpoint %s cannot program decoders", name, i, ep.Name())
		}
		if dvsec.HDMSize < share {
			share = dvsec.HDMSize
		}
	}
	share -= share % granule
	if opts.Share != 0 {
		want := opts.Share - opts.Share%granule
		if want == 0 {
			return nil, fmt.Errorf("cxl: %s: share %d smaller than one %d-byte granule", name, opts.Share, granule)
		}
		if want > share {
			return nil, fmt.Errorf("cxl: %s: share %d exceeds smallest member HDM (%d usable)", name, opts.Share, share)
		}
		share = want
	}
	if share == 0 {
		return nil, fmt.Errorf("cxl: %s: member HDM smaller than one %d-byte granule", name, granule)
	}

	s := &InterleaveSet{
		name:    name,
		ways:    ways,
		base:    base,
		size:    share * uint64(ways),
		share:   share,
		granule: granule,
	}
	members := append([]*RootPort(nil), ports...)
	s.live.Store(&members)
	for i, rp := range ports {
		dec := &HDMDecoder{
			Base:              base,
			Size:              s.size,
			InterleaveWays:    ways,
			InterleaveGranule: granule,
			TargetIndex:       i,
		}
		if err := rp.Endpoint().(programmer).ProgramDecoder(dec); err != nil {
			return nil, fmt.Errorf("cxl: %s: leg %d: %w", name, i, err)
		}
	}
	for leg := 1; leg < ways; leg++ {
		ch := make(chan *stripeJob)
		s.workers = append(s.workers, ch)
		go legWorker(ch)
	}
	// Backstop for abandoned sets (a topology torn down without Close):
	// parked workers reference only their channel, never s, so an
	// unreachable set finalises and the workers exit. Explicit Close
	// remains the deterministic path and clears the finalizer.
	if len(s.workers) > 0 {
		runtime.SetFinalizer(s, (*InterleaveSet).Close)
	}
	return s, nil
}

// Close stops the leg workers (idempotent). In-flight transfers finish
// — a worker drains its current job before seeing the closed channel —
// but transfers issued after Close panic.
func (s *InterleaveSet) Close() {
	runtime.SetFinalizer(s, nil)
	for _, ch := range s.workers {
		close(ch)
	}
	s.workers = nil
}

// Name identifies the set.
func (s *InterleaveSet) Name() string { return s.name }

// Ways returns the interleave width.
func (s *InterleaveSet) Ways() int { return s.ways }

// Share returns the per-target bytes of the striped window.
func (s *InterleaveSet) Share() uint64 { return s.share }

// Granule returns the stripe unit in bytes.
func (s *InterleaveSet) Granule() uint64 { return s.granule }

// Base returns the first HPA of the striped window.
func (s *InterleaveSet) Base() uint64 { return s.base }

// Size returns the window length in bytes (ways × per-target share).
func (s *InterleaveSet) Size() uint64 { return s.size }

// Ports lists the member root ports in target order.
func (s *InterleaveSet) Ports() []*RootPort {
	legs := s.legs()
	out := make([]*RootPort, len(legs))
	copy(out, legs)
	return out
}

// Route returns the member port owning the granule at hpa (port 0 for
// addresses outside the window — the port's own decode then reports the
// error).
func (s *InterleaveSet) Route(hpa uint64) *RootPort {
	legs := s.legs()
	if s.ways == 1 || hpa < s.base || hpa >= s.base+s.size {
		return legs[0]
	}
	return legs[((hpa-s.base)/s.granule)%uint64(s.ways)]
}

// ReadLine fetches one line through the owning leg.
func (s *InterleaveSet) ReadLine(hpa uint64, out *[LineSize]byte) error {
	defer s.exit(s.enter())
	if ev := s.evac.Load(); ev != nil && s.evacOwned(ev, hpa) {
		return s.evacSmall(ev, false, hpa, out[:])
	}
	return s.Route(hpa).ReadLine(hpa, out)
}

// WriteLine stores one line through the owning leg.
func (s *InterleaveSet) WriteLine(hpa uint64, data *[LineSize]byte) error {
	defer s.exit(s.enter())
	if ev := s.evac.Load(); ev != nil && s.evacOwned(ev, hpa) {
		return s.evacSmall(ev, true, hpa, data[:])
	}
	return s.Route(hpa).WriteLine(hpa, data)
}

// WriteBurst stores p at the line-aligned HPA hpa, striping the lines
// across the member ports; len(p) must be a multiple of LineSize and
// the span must stay inside the window.
func (s *InterleaveSet) WriteBurst(hpa uint64, p []byte) error {
	return s.do(true, hpa, p)
}

// ReadBurst fetches len(p) bytes from the line-aligned HPA hpa across
// the member ports; the same constraints as WriteBurst apply.
func (s *InterleaveSet) ReadBurst(hpa uint64, p []byte) error {
	return s.do(false, hpa, p)
}

// do validates the span, fans legs 1..n-1 out to their workers, runs
// leg 0 inline and gathers the first error. A failing leg aborts its
// own remaining chunks only; striped transfers are atomic per leg
// burst, not across legs (matching multi-channel memory semantics —
// see DESIGN.md §2d).
func (s *InterleaveSet) do(write bool, hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return portErr(s.name, s.op(write), hpa, ErrUnaligned, "unaligned burst")
	}
	if hpa < s.base || hpa+uint64(len(p)) > s.base+s.size {
		return portErr(s.name, s.op(write), hpa, ErrOutsideWindow, "outside interleave window")
	}
	if len(p) == 0 {
		return nil
	}
	defer s.exit(s.enter())
	ways := s.ways
	if ways == 1 {
		return s.runLeg(0, write, hpa, p)
	}
	c := stripeCallPool.Get().(*stripeCall)
	c.wg.Add(ways - 1)
	for leg := 1; leg < ways; leg++ {
		j := &c.jobs[leg]
		j.set, j.wg, j.leg, j.write, j.hpa, j.p, j.err = s, &c.wg, leg, write, hpa, p, nil
		select {
		case s.workers[leg-1] <- j:
		default:
			// Leg worker mid-job (a concurrent striped call): overflow
			// onto a transient goroutine so callers fan out over the
			// port's virtual channels instead of queueing. A lone
			// caller always finds its workers parked, keeping the
			// steady state allocation-free.
			go runStripeJob(j)
		}
	}
	err := s.runLeg(0, write, hpa, p)
	c.wg.Wait()
	for leg := 1; leg < ways; leg++ {
		if err == nil && c.jobs[leg].err != nil {
			err = c.jobs[leg].err
		}
		c.jobs[leg].set, c.jobs[leg].p = nil, nil
	}
	stripeCallPool.Put(c)
	return err
}

func (s *InterleaveSet) op(write bool) string {
	if write {
		return "MemWrBurst(striped)"
	}
	return "MemRdBurst(striped)"
}

// runLeg moves one leg's share of the span [hpa, hpa+len(p)): the
// intersection of the span with the granules owned by this target.
// Consecutive target-owned lines map to a contiguous DPA span at the
// endpoint, so the leg's lines travel as maximal strided bursts — one
// header and one media access per MaxBurstLines lines — never as
// per-line transactions.
func (s *InterleaveSet) runLeg(leg int, write bool, hpa uint64, p []byte) error {
	if ev := s.evac.Load(); ev != nil && leg == ev.leg {
		// The leg is mid-evacuation: its granules live on the old device,
		// the spare windows, or the reattached replacement, per-granule.
		return s.runLegEvac(ev, write, hpa, p)
	}
	rp := s.legs()[leg]
	g := s.granule
	stride := g * uint64(s.ways)
	off := hpa - s.base
	end := off + uint64(len(p))
	legOff := uint64(leg) * g

	// First owned granule intersecting the span.
	var k uint64
	if off > legOff {
		k = (off - legOff) / stride
		if k*stride+legOff+g <= off {
			k++
		}
	}

	if g >= uint64(maxBurstBytes) {
		// Wide granules: every owned piece is an HPA-contiguous slice
		// of the caller's buffer, so it bursts zero-copy straight from
		// there; the port chunks it into maximal bursts internally.
		for {
			gs := k*stride + legOff
			if gs >= end {
				return nil
			}
			lo, hi := gs, gs+g
			if lo < off {
				lo = off
			}
			if hi > end {
				hi = end
			}
			var err error
			if write {
				err = rp.WriteBurst(s.base+lo, p[lo-off:hi-off])
			} else {
				err = rp.ReadBurst(s.base+lo, p[lo-off:hi-off])
			}
			if err != nil {
				return err
			}
			k++
		}
	}

	// Narrow granules: gather owned pieces into pooled scratch and move
	// them as one strided burst per full chunk, amortising the header
	// and completion flits over MaxBurstLines data beats regardless of
	// granule size.
	buf := burstBufPool.Get().(*[maxBurstBytes]byte)
	fill := 0
	var chunkStart uint64 // window offset of the chunk's first line
	for {
		gs := k*stride + legOff
		if gs >= end {
			break
		}
		lo, hi := gs, gs+g
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		for lo < hi {
			if fill == 0 {
				chunkStart = lo
			}
			take := int(hi - lo)
			if take > maxBurstBytes-fill {
				take = maxBurstBytes - fill
			}
			if write {
				copy(buf[fill:fill+take], p[lo-off:])
			}
			fill += take
			lo += uint64(take)
			if fill == maxBurstBytes {
				if err := s.moveChunk(rp, leg, write, chunkStart, buf[:fill], p, off); err != nil {
					burstBufPool.Put(buf)
					return err
				}
				fill = 0
			}
		}
		k++
	}
	var err error
	if fill > 0 {
		err = s.moveChunk(rp, leg, write, chunkStart, buf[:fill], p, off)
	}
	burstBufPool.Put(buf)
	return err
}

// moveChunk flushes one gathered chunk over the leg's port: the chunk
// holds consecutive target-owned lines starting at window offset
// chunkStart. Reads scatter the returned lines back into the caller's
// buffer.
func (s *InterleaveSet) moveChunk(rp *RootPort, leg int, write bool, chunkStart uint64, chunk, p []byte, off uint64) error {
	if write {
		return rp.WriteBurst(s.base+chunkStart, chunk)
	}
	if err := rp.ReadBurst(s.base+chunkStart, chunk); err != nil {
		return err
	}
	s.scatter(leg, chunkStart, chunk, p, off)
	return nil
}

// scatter copies a just-read strided chunk into the caller's buffer:
// chunk holds the target-owned lines starting at window offset
// chunkStart, in HPA order.
func (s *InterleaveSet) scatter(leg int, chunkStart uint64, chunk, p []byte, off uint64) {
	g := s.granule
	stride := g * uint64(s.ways)
	legOff := uint64(leg) * g
	k := (chunkStart - legOff) / stride
	pos := chunkStart
	for len(chunk) > 0 {
		hi := k*stride + legOff + g
		n := int(hi - pos)
		if n > len(chunk) {
			n = len(chunk)
		}
		copy(p[pos-off:], chunk[:n])
		chunk = chunk[n:]
		k++
		pos = k*stride + legOff
	}
}

// ReadAt copies len(p) bytes from HPA off, mirroring RootPort.ReadAt:
// unaligned head and tail fragments go as line transactions through the
// owning leg, the line-aligned interior as striped bursts.
func (s *InterleaveSet) ReadAt(p []byte, off int64) error {
	hpa := uint64(off)
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		if err := s.smallAccess(false, hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if err := s.do(false, hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	if len(p) > 0 {
		return s.smallAccess(false, hpa, p)
	}
	return nil
}

// WriteAt stores p at HPA off: head/tail fragments become byte-masked
// partial writes on the owning leg, the interior striped bursts.
func (s *InterleaveSet) WriteAt(p []byte, off int64) error {
	hpa := uint64(off)
	if lo := int(hpa % uint64(LineSize)); lo != 0 {
		n := LineSize - lo
		if n > len(p) {
			n = len(p)
		}
		if err := s.smallAccess(true, hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	if n := len(p) &^ (LineSize - 1); n > 0 {
		if err := s.do(true, hpa, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		hpa += uint64(n)
	}
	if len(p) > 0 {
		return s.smallAccess(true, hpa, p)
	}
	return nil
}

// smallAccess moves a sub-line fragment through the owning leg,
// rerouting it per-granule when that leg is mid-evacuation. Fragments
// never cross a line (let alone a granule), so the start address alone
// picks the home.
func (s *InterleaveSet) smallAccess(write bool, hpa uint64, p []byte) error {
	defer s.exit(s.enter())
	if ev := s.evac.Load(); ev != nil && s.evacOwned(ev, hpa) {
		return s.evacSmall(ev, write, hpa, p)
	}
	rp := s.Route(hpa)
	if write {
		return rp.WriteAt(p, int64(hpa))
	}
	return rp.ReadAt(p, int64(hpa))
}

// SubmitRead enqueues a line read on the owning leg's ring without
// ringing its doorbell; the set's Flush (or the token's Wait) completes
// it. A granule mid-evacuation is serviced immediately through the
// reroute path and returns an already-completed token.
func (s *InterleaveSet) SubmitRead(hpa uint64, out *[LineSize]byte) (*Completion, error) {
	if !lineAligned(hpa) {
		return nil, portErr(s.name, "MemRd", hpa, ErrUnaligned, "unaligned")
	}
	defer s.exit(s.enter())
	if ev := s.evac.Load(); ev != nil && s.evacOwned(ev, hpa) {
		return immediateCompletion(OpMemRd, hpa, s.evacSmall(ev, false, hpa, out[:])), nil
	}
	return s.Route(hpa).SubmitRead(hpa, out)
}

// SubmitWrite enqueues a line write on the owning leg's ring without
// ringing its doorbell; evacuating granules complete immediately, like
// SubmitRead.
func (s *InterleaveSet) SubmitWrite(hpa uint64, data *[LineSize]byte) (*Completion, error) {
	if !lineAligned(hpa) {
		return nil, portErr(s.name, "MemWr", hpa, ErrUnaligned, "unaligned")
	}
	defer s.exit(s.enter())
	if ev := s.evac.Load(); ev != nil && s.evacOwned(ev, hpa) {
		return immediateCompletion(OpMemWr, hpa, s.evacSmall(ev, true, hpa, data[:])), nil
	}
	return s.Route(hpa).SubmitWrite(hpa, data)
}

// Flush rings every leg's doorbell in parallel over the persistent leg
// workers (leg 0 inline), so a batch submitted across the stripe
// crosses all member links concurrently.
func (s *InterleaveSet) Flush() {
	defer s.exit(s.enter())
	legs := s.legs()
	n := len(legs)
	if n == 1 {
		legs[0].Flush()
		return
	}
	c := stripeCallPool.Get().(*stripeCall)
	c.wg.Add(n - 1)
	for leg := 1; leg < n; leg++ {
		j := &c.jobs[leg]
		j.set, j.wg, j.leg, j.flush, j.err = s, &c.wg, leg, true, nil
		select {
		case s.workers[leg-1] <- j:
		default:
			go runStripeJob(j)
		}
	}
	legs[0].Flush()
	c.wg.Wait()
	for leg := 1; leg < n; leg++ {
		c.jobs[leg].set, c.jobs[leg].flush = nil, false
	}
	stripeCallPool.Put(c)
}

// Harvest drains completions from the member ports' CQs, in leg order.
func (s *InterleaveSet) Harvest(dst []Completed) int {
	defer s.exit(s.enter())
	n := 0
	for _, rp := range s.legs() {
		n += rp.Harvest(dst[n:])
		if n == len(dst) {
			break
		}
	}
	return n
}

func (s *InterleaveSet) String() string {
	return fmt.Sprintf("%s: %d-way@%dB stripe [%#x, %#x)", s.name, s.ways, s.granule, s.base, s.base+s.size)
}
