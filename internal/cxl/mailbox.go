package cxl

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Memory-device command interface (mailbox). CXL 2.0 Type-3 devices
// expose a command mailbox through which system software identifies the
// device, queries health, reads partition info and issues maintenance
// operations — this is what the Linux `cxl` tooling drives. We model
// the command set the paper's prototype would need: identification,
// health (including the battery state its persistence story rests on),
// partition info, poison-list management and sanitize.

// MailboxOpcode selects a device command.
type MailboxOpcode uint16

// Supported commands (a subset of the CXL 2.0 command set, with the
// spec's opcode numbers where we model the same operation).
const (
	// OpIdentifyMemDevice returns the device identity block (0x4000).
	OpIdentifyMemDevice MailboxOpcode = 0x4000
	// OpGetHealthInfo returns media health (0x4200).
	OpGetHealthInfo MailboxOpcode = 0x4200
	// OpGetPartitionInfo returns volatile/persistent split (0x4100).
	OpGetPartitionInfo MailboxOpcode = 0x4100
	// OpGetPoisonList returns the tracked poisoned lines (0x4300).
	OpGetPoisonList MailboxOpcode = 0x4300
	// OpInjectPoison marks a line poisoned (0x4301, debug capability).
	OpInjectPoison MailboxOpcode = 0x4301
	// OpClearPoison clears a poisoned line (0x4302).
	OpClearPoison MailboxOpcode = 0x4302
	// OpSanitize destroys all media content (0x4400).
	OpSanitize MailboxOpcode = 0x4400

	// Dynamic Capacity Device (DCD) command set (CXL 3.0 §8.2.9.8.9).
	// These round-trip the fabric manager's grant/release flow through
	// the device mailbox, exactly as the Linux DCD path would drive it.

	// OpGetDCDConfig returns the dynamic-capacity configuration (0x4800).
	OpGetDCDConfig MailboxOpcode = 0x4800
	// OpGetDCDExtentList returns the accepted extent list (0x4801).
	OpGetDCDExtentList MailboxOpcode = 0x4801
	// OpAddDCDResponse accepts or rejects an offered extent (0x4802).
	OpAddDCDResponse MailboxOpcode = 0x4802
	// OpReleaseDCD releases an accepted extent back to the fabric (0x4803).
	OpReleaseDCD MailboxOpcode = 0x4803
)

// MailboxStatus is the command return code.
type MailboxStatus uint16

const (
	// MboxSuccess — command completed.
	MboxSuccess MailboxStatus = 0
	// MboxUnsupported — opcode not implemented.
	MboxUnsupported MailboxStatus = 1
	// MboxInvalidInput — malformed payload.
	MboxInvalidInput MailboxStatus = 2
	// MboxInternalError — device-side failure.
	MboxInternalError MailboxStatus = 3
	// MboxTimeout — the command deadline expired before the device
	// answered (ExecuteTimeout). Host-side synthetic status: the device
	// may still be executing; its eventual result is discarded.
	MboxTimeout MailboxStatus = 0xFFFF
)

func (s MailboxStatus) String() string {
	switch s {
	case MboxSuccess:
		return "success"
	case MboxUnsupported:
		return "unsupported"
	case MboxInvalidInput:
		return "invalid-input"
	case MboxInternalError:
		return "internal-error"
	case MboxTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("MailboxStatus(%d)", uint16(s))
	}
}

// Identity is the OpIdentifyMemDevice response.
type Identity struct {
	Vendor      uint16
	Device      uint16
	TotalCap    uint64 // bytes
	Persistent  bool
	LineSize    uint32
	PoisonMax   uint32
	FirmwareRev string
}

// Health is the OpGetHealthInfo response.
type Health struct {
	// MediaOK is false after an unrecovered media fault.
	MediaOK bool
	// BatteryOK reports the backup power source (the paper's
	// persistence guarantee).
	BatteryOK bool
	// PoisonedLines currently tracked.
	PoisonedLines int
	// LifeUsedPercent is wear (always 0 for DRAM media).
	LifeUsedPercent int
}

// PartitionInfo is the OpGetPartitionInfo response. The paper's card is
// all-persistent (battery over the whole HDM).
type PartitionInfo struct {
	VolatileBytes   uint64
	PersistentBytes uint64
}

// DCDConfig is the OpGetDCDConfig response: the fixed device address
// space dynamic extents are granted within, and the grant granule.
type DCDConfig struct {
	// TotalCapacity is the DCD address-space size in bytes (the tenant
	// quota). Extents live at fixed DPAs inside it.
	TotalCapacity uint64
	// Granule is the extent allocation unit in bytes.
	Granule uint64
}

// DCDExtent names one dynamic-capacity extent in device address space.
// Tag is the fabric manager's identifier for the extent, echoed by the
// host in every response that refers to it.
type DCDExtent struct {
	Base uint64
	Size uint64
	Tag  uint64
}

// DCDBackend is the control plane behind the DCD command set — the
// fabric manager. The mailbox validates framing and forwards; the
// backend owns extent state.
type DCDBackend interface {
	// DCDConfig reports the device's dynamic-capacity configuration.
	DCDConfig() DCDConfig
	// DCDExtents lists the currently accepted (and revoked-but-
	// unacknowledged) extents.
	DCDExtents() []DCDExtent
	// AddCapacityResponse completes a pending grant: the host accepts
	// or rejects the offered extent.
	AddCapacityResponse(ext DCDExtent, accept bool) error
	// ReleaseCapacity returns an accepted extent to the fabric.
	ReleaseCapacity(ext DCDExtent) error
}

// Mailbox is the command engine attached to a Type-3 device.
type Mailbox struct {
	dev *Type3Device

	mu     sync.Mutex
	poison map[uint64]bool // line-aligned DPAs
	fwRev  string
	dcd    DCDBackend
	// npoison mirrors len(poison) so IsPoisoned — which runs on every
	// HDM access — can skip the lock while the list is empty.
	npoison atomic.Int64
	// fault, when set, intercepts commands before execution: it may
	// stall (sleep, then pass through) or answer in the device's stead
	// (garbled response). Fault injection for the command plane, the
	// mailbox twin of RootPort.SetFault.
	fault atomic.Pointer[func(MailboxOpcode) (MailboxStatus, bool)]
}

// poisonListMax bounds the tracked poison list, as real devices do.
const poisonListMax = 256

// NewMailbox attaches a command mailbox to a Type-3 device.
func NewMailbox(dev *Type3Device, firmwareRev string) (*Mailbox, error) {
	if dev == nil {
		return nil, fmt.Errorf("cxl: mailbox: nil device")
	}
	if firmwareRev == "" {
		firmwareRev = "sim-1.0"
	}
	m := &Mailbox{dev: dev, poison: make(map[uint64]bool), fwRev: firmwareRev}
	dev.SetPoisonChecker(m.IsPoisoned)
	dev.SetPoisonSpanChecker(m.HasPoisonIn)
	return m, nil
}

// SetDCD installs the dynamic-capacity backend (the fabric manager).
// With no backend installed, DCD opcodes return MboxUnsupported — a
// statically carved device.
func (m *Mailbox) SetDCD(b DCDBackend) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dcd = b
}

// SetFault installs (or, with nil, removes) the command-plane fault
// hook. It runs outside the mailbox lock, so a stalling hook blocks
// only the stalled command, not poison checks on the data path. When
// the hook returns intercepted=true, its status is the command's
// result and the device never executes.
func (m *Mailbox) SetFault(f func(MailboxOpcode) (MailboxStatus, bool)) {
	if f == nil {
		m.fault.Store(nil)
		return
	}
	m.fault.Store(&f)
}

// ExecuteTimeout is Execute with a command deadline: if the device does
// not answer within d, it returns MboxTimeout, charges the device's
// CommandTimeouts RAS counter, and discards the eventual result. The
// command itself keeps running to completion device-side (a stalled
// mailbox is stalled, not dead), so state-changing commands may still
// take effect after a timeout — exactly the ambiguity a real fabric
// manager faces. A non-positive d degenerates to Execute.
func (m *Mailbox) ExecuteTimeout(op MailboxOpcode, in []byte, d time.Duration) ([]byte, MailboxStatus) {
	if d <= 0 {
		return m.Execute(op, in)
	}
	type result struct {
		out    []byte
		status MailboxStatus
	}
	ch := make(chan result, 1)
	go func() {
		out, st := m.Execute(op, in)
		ch <- result{out, st}
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.out, r.status
	case <-t.C:
		m.dev.media.Stats().CommandTimeouts.Add(1)
		return nil, MboxTimeout
	}
}

// Execute runs one command. in is the opcode-specific payload; out is
// the opcode-specific response encoding.
func (m *Mailbox) Execute(op MailboxOpcode, in []byte) (out []byte, status MailboxStatus) {
	if f := m.fault.Load(); f != nil {
		if st, intercepted := (*f)(op); intercepted {
			return nil, st
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch op {
	case OpGetDCDConfig, OpGetDCDExtentList, OpAddDCDResponse, OpReleaseDCD:
		return m.executeDCD(op, in)
	case OpIdentifyMemDevice:
		return m.identify(), MboxSuccess
	case OpGetHealthInfo:
		return m.health(), MboxSuccess
	case OpGetPartitionInfo:
		return m.partition(), MboxSuccess
	case OpGetPoisonList:
		return m.poisonList(), MboxSuccess
	case OpInjectPoison, OpClearPoison:
		if len(in) != 8 {
			return nil, MboxInvalidInput
		}
		dpa := binary.LittleEndian.Uint64(in)
		if !lineAligned(dpa) || dpa >= uint64(m.dev.media.Capacity().Bytes()) {
			return nil, MboxInvalidInput
		}
		if op == OpInjectPoison {
			if len(m.poison) >= poisonListMax {
				return nil, MboxInternalError
			}
			m.poison[dpa] = true
		} else {
			delete(m.poison, dpa)
		}
		m.npoison.Store(int64(len(m.poison)))
		return nil, MboxSuccess
	case OpSanitize:
		// Sanitize wipes the media regardless of battery: an explicit
		// secure-erase, modelled by zero-filling every touched page.
		if err := m.sanitize(); err != nil {
			return nil, MboxInternalError
		}
		m.poison = make(map[uint64]bool)
		m.npoison.Store(0)
		return nil, MboxSuccess
	default:
		return nil, MboxUnsupported
	}
}

func (m *Mailbox) identify() []byte {
	id := Identity{
		Vendor:      m.dev.cfg.VendorID(),
		Device:      m.dev.cfg.DeviceID(),
		TotalCap:    uint64(m.dev.media.Capacity().Bytes()),
		Persistent:  m.dev.media.Persistent(),
		LineSize:    uint32(LineSize),
		PoisonMax:   poisonListMax,
		FirmwareRev: m.fwRev,
	}
	return encodeIdentity(id)
}

func (m *Mailbox) health() []byte {
	h := Health{
		MediaOK:   true,
		BatteryOK: m.dev.media.Persistent(),
	}
	h.PoisonedLines = len(m.poison)
	out := make([]byte, 16)
	if h.MediaOK {
		out[0] = 1
	}
	if h.BatteryOK {
		out[1] = 1
	}
	binary.LittleEndian.PutUint32(out[4:], uint32(h.PoisonedLines))
	binary.LittleEndian.PutUint32(out[8:], uint32(h.LifeUsedPercent))
	return out
}

func (m *Mailbox) partition() []byte {
	out := make([]byte, 16)
	cap := uint64(m.dev.media.Capacity().Bytes())
	if m.dev.media.Persistent() {
		binary.LittleEndian.PutUint64(out[8:], cap)
	} else {
		binary.LittleEndian.PutUint64(out[0:], cap)
	}
	return out
}

func (m *Mailbox) poisonList() []byte {
	out := make([]byte, 4+8*len(m.poison))
	binary.LittleEndian.PutUint32(out, uint32(len(m.poison)))
	i := 0
	// Deterministic order for tests: ascending.
	lines := make([]uint64, 0, len(m.poison))
	for dpa := range m.poison {
		lines = append(lines, dpa)
	}
	for a := range lines {
		for b := a + 1; b < len(lines); b++ {
			if lines[b] < lines[a] {
				lines[a], lines[b] = lines[b], lines[a]
			}
		}
	}
	for _, dpa := range lines {
		binary.LittleEndian.PutUint64(out[4+8*i:], dpa)
		i++
	}
	return out
}

func (m *Mailbox) sanitize() error {
	// Zero the full media range in page-sized strides; the sparse
	// store drops to zeros either way, but writing through the Device
	// interface keeps stats and subclasses honest.
	const stride = 1 << 20
	zero := make([]byte, stride)
	cap := m.dev.media.Capacity().Bytes()
	for off := int64(0); off < cap; off += stride {
		n := stride
		if off+int64(n) > cap {
			n = int(cap - off)
		}
		if err := m.dev.media.WriteAt(zero[:n], off); err != nil {
			return err
		}
	}
	return nil
}

// HasPoisonIn reports whether any line of [dpa, dpa+n) is on the
// poison list — the span-granular RAS hook burst transactions consult.
// The empty-list fast path is a single lock-free load.
func (m *Mailbox) HasPoisonIn(dpa, n uint64) bool {
	if m.npoison.Load() == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for line := dpa &^ uint64(LineSize-1); line < dpa+n; line += uint64(LineSize) {
		if m.poison[line] {
			return true
		}
	}
	return false
}

// IsPoisoned reports whether a line-aligned DPA is on the poison list.
// The empty-list fast path is lock-free: this hook runs on every HDM
// access the device services.
func (m *Mailbox) IsPoisoned(dpa uint64) bool {
	if m.npoison.Load() == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.poison[dpa&^uint64(LineSize-1)]
}

func encodeIdentity(id Identity) []byte {
	fw := []byte(id.FirmwareRev)
	if len(fw) > 16 {
		fw = fw[:16]
	}
	out := make([]byte, 40)
	binary.LittleEndian.PutUint16(out[0:], id.Vendor)
	binary.LittleEndian.PutUint16(out[2:], id.Device)
	binary.LittleEndian.PutUint64(out[4:], id.TotalCap)
	if id.Persistent {
		out[12] = 1
	}
	binary.LittleEndian.PutUint32(out[16:], id.LineSize)
	binary.LittleEndian.PutUint32(out[20:], id.PoisonMax)
	copy(out[24:], fw)
	return out
}

// DecodeIdentity parses an OpIdentifyMemDevice response.
func DecodeIdentity(b []byte) (Identity, error) {
	if len(b) != 40 {
		return Identity{}, fmt.Errorf("cxl: identity payload %d bytes, want 40", len(b))
	}
	id := Identity{
		Vendor:     binary.LittleEndian.Uint16(b[0:]),
		Device:     binary.LittleEndian.Uint16(b[2:]),
		TotalCap:   binary.LittleEndian.Uint64(b[4:]),
		Persistent: b[12] == 1,
		LineSize:   binary.LittleEndian.Uint32(b[16:]),
		PoisonMax:  binary.LittleEndian.Uint32(b[20:]),
	}
	id.FirmwareRev = trimNulStr(b[24:40])
	return id, nil
}

// DecodeHealth parses an OpGetHealthInfo response.
func DecodeHealth(b []byte) (Health, error) {
	if len(b) != 16 {
		return Health{}, fmt.Errorf("cxl: health payload %d bytes, want 16", len(b))
	}
	return Health{
		MediaOK:         b[0] == 1,
		BatteryOK:       b[1] == 1,
		PoisonedLines:   int(binary.LittleEndian.Uint32(b[4:])),
		LifeUsedPercent: int(binary.LittleEndian.Uint32(b[8:])),
	}, nil
}

// DecodePartitionInfo parses an OpGetPartitionInfo response.
func DecodePartitionInfo(b []byte) (PartitionInfo, error) {
	if len(b) != 16 {
		return PartitionInfo{}, fmt.Errorf("cxl: partition payload %d bytes, want 16", len(b))
	}
	return PartitionInfo{
		VolatileBytes:   binary.LittleEndian.Uint64(b[0:]),
		PersistentBytes: binary.LittleEndian.Uint64(b[8:]),
	}, nil
}

// DecodePoisonList parses an OpGetPoisonList response.
func DecodePoisonList(b []byte) ([]uint64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("cxl: poison payload too short")
	}
	n := binary.LittleEndian.Uint32(b)
	// int64 math for the same overflow reason as DecodeDCDExtentList.
	if int64(len(b)) != 4+8*int64(n) {
		return nil, fmt.Errorf("cxl: poison payload length mismatch")
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[4+8*i:])
	}
	return out, nil
}

// executeDCD services the dynamic-capacity opcodes; caller holds m.mu.
// The mailbox validates framing only — extent state lives in the
// backend, whose errors surface as MboxInvalidInput (the host referred
// to an extent the fabric does not recognise in that state).
func (m *Mailbox) executeDCD(op MailboxOpcode, in []byte) ([]byte, MailboxStatus) {
	if m.dcd == nil {
		return nil, MboxUnsupported
	}
	switch op {
	case OpGetDCDConfig:
		return EncodeDCDConfig(m.dcd.DCDConfig()), MboxSuccess
	case OpGetDCDExtentList:
		return EncodeDCDExtentList(m.dcd.DCDExtents()), MboxSuccess
	case OpAddDCDResponse:
		ext, accept, err := DecodeDCDResponse(in)
		if err != nil {
			return nil, MboxInvalidInput
		}
		if err := m.dcd.AddCapacityResponse(ext, accept); err != nil {
			return nil, MboxInvalidInput
		}
		return nil, MboxSuccess
	case OpReleaseDCD:
		ext, err := DecodeDCDExtent(in)
		if err != nil {
			return nil, MboxInvalidInput
		}
		if err := m.dcd.ReleaseCapacity(ext); err != nil {
			return nil, MboxInvalidInput
		}
		return nil, MboxSuccess
	}
	return nil, MboxUnsupported
}

// EncodeDCDConfig encodes an OpGetDCDConfig response.
func EncodeDCDConfig(c DCDConfig) []byte {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out[0:], c.TotalCapacity)
	binary.LittleEndian.PutUint64(out[8:], c.Granule)
	return out
}

// DecodeDCDConfig parses an OpGetDCDConfig response.
func DecodeDCDConfig(b []byte) (DCDConfig, error) {
	if len(b) != 16 {
		return DCDConfig{}, fmt.Errorf("cxl: dcd config payload %d bytes, want 16", len(b))
	}
	return DCDConfig{
		TotalCapacity: binary.LittleEndian.Uint64(b[0:]),
		Granule:       binary.LittleEndian.Uint64(b[8:]),
	}, nil
}

// EncodeDCDExtent encodes one extent (the OpReleaseDCD payload).
func EncodeDCDExtent(e DCDExtent) []byte {
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out[0:], e.Base)
	binary.LittleEndian.PutUint64(out[8:], e.Size)
	binary.LittleEndian.PutUint64(out[16:], e.Tag)
	return out
}

// DecodeDCDExtent parses one extent.
func DecodeDCDExtent(b []byte) (DCDExtent, error) {
	if len(b) != 24 {
		return DCDExtent{}, fmt.Errorf("cxl: dcd extent payload %d bytes, want 24", len(b))
	}
	return DCDExtent{
		Base: binary.LittleEndian.Uint64(b[0:]),
		Size: binary.LittleEndian.Uint64(b[8:]),
		Tag:  binary.LittleEndian.Uint64(b[16:]),
	}, nil
}

// EncodeDCDResponse encodes an OpAddDCDResponse payload: the offered
// extent plus the host's accept/reject decision.
func EncodeDCDResponse(e DCDExtent, accept bool) []byte {
	out := make([]byte, 25)
	copy(out, EncodeDCDExtent(e))
	if accept {
		out[24] = 1
	}
	return out
}

// DecodeDCDResponse parses an OpAddDCDResponse payload.
func DecodeDCDResponse(b []byte) (DCDExtent, bool, error) {
	if len(b) != 25 {
		return DCDExtent{}, false, fmt.Errorf("cxl: dcd response payload %d bytes, want 25", len(b))
	}
	ext, err := DecodeDCDExtent(b[:24])
	if err != nil {
		return DCDExtent{}, false, err
	}
	return ext, b[24] == 1, nil
}

// EncodeDCDExtentList encodes an OpGetDCDExtentList response.
func EncodeDCDExtentList(exts []DCDExtent) []byte {
	out := make([]byte, 4+24*len(exts))
	binary.LittleEndian.PutUint32(out, uint32(len(exts)))
	for i, e := range exts {
		copy(out[4+24*i:], EncodeDCDExtent(e))
	}
	return out
}

// DecodeDCDExtentList parses an OpGetDCDExtentList response.
func DecodeDCDExtentList(b []byte) ([]DCDExtent, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("cxl: dcd extent list too short")
	}
	n := binary.LittleEndian.Uint32(b)
	// Compare in int64: 24*n overflows uint32 for hostile counts, which
	// would let a short payload pass and the loop below index past it.
	if int64(len(b)) != 4+24*int64(n) {
		return nil, fmt.Errorf("cxl: dcd extent list length mismatch")
	}
	out := make([]DCDExtent, n)
	for i := range out {
		e, err := DecodeDCDExtent(b[4+24*i : 4+24*(i+1)])
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func trimNulStr(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
