package cxl

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory-device command interface (mailbox). CXL 2.0 Type-3 devices
// expose a command mailbox through which system software identifies the
// device, queries health, reads partition info and issues maintenance
// operations — this is what the Linux `cxl` tooling drives. We model
// the command set the paper's prototype would need: identification,
// health (including the battery state its persistence story rests on),
// partition info, poison-list management and sanitize.

// MailboxOpcode selects a device command.
type MailboxOpcode uint16

// Supported commands (a subset of the CXL 2.0 command set, with the
// spec's opcode numbers where we model the same operation).
const (
	// OpIdentifyMemDevice returns the device identity block (0x4000).
	OpIdentifyMemDevice MailboxOpcode = 0x4000
	// OpGetHealthInfo returns media health (0x4200).
	OpGetHealthInfo MailboxOpcode = 0x4200
	// OpGetPartitionInfo returns volatile/persistent split (0x4100).
	OpGetPartitionInfo MailboxOpcode = 0x4100
	// OpGetPoisonList returns the tracked poisoned lines (0x4300).
	OpGetPoisonList MailboxOpcode = 0x4300
	// OpInjectPoison marks a line poisoned (0x4301, debug capability).
	OpInjectPoison MailboxOpcode = 0x4301
	// OpClearPoison clears a poisoned line (0x4302).
	OpClearPoison MailboxOpcode = 0x4302
	// OpSanitize destroys all media content (0x4400).
	OpSanitize MailboxOpcode = 0x4400
)

// MailboxStatus is the command return code.
type MailboxStatus uint16

const (
	// MboxSuccess — command completed.
	MboxSuccess MailboxStatus = 0
	// MboxUnsupported — opcode not implemented.
	MboxUnsupported MailboxStatus = 1
	// MboxInvalidInput — malformed payload.
	MboxInvalidInput MailboxStatus = 2
	// MboxInternalError — device-side failure.
	MboxInternalError MailboxStatus = 3
)

func (s MailboxStatus) String() string {
	switch s {
	case MboxSuccess:
		return "success"
	case MboxUnsupported:
		return "unsupported"
	case MboxInvalidInput:
		return "invalid-input"
	case MboxInternalError:
		return "internal-error"
	default:
		return fmt.Sprintf("MailboxStatus(%d)", uint16(s))
	}
}

// Identity is the OpIdentifyMemDevice response.
type Identity struct {
	Vendor      uint16
	Device      uint16
	TotalCap    uint64 // bytes
	Persistent  bool
	LineSize    uint32
	PoisonMax   uint32
	FirmwareRev string
}

// Health is the OpGetHealthInfo response.
type Health struct {
	// MediaOK is false after an unrecovered media fault.
	MediaOK bool
	// BatteryOK reports the backup power source (the paper's
	// persistence guarantee).
	BatteryOK bool
	// PoisonedLines currently tracked.
	PoisonedLines int
	// LifeUsedPercent is wear (always 0 for DRAM media).
	LifeUsedPercent int
}

// PartitionInfo is the OpGetPartitionInfo response. The paper's card is
// all-persistent (battery over the whole HDM).
type PartitionInfo struct {
	VolatileBytes   uint64
	PersistentBytes uint64
}

// Mailbox is the command engine attached to a Type-3 device.
type Mailbox struct {
	dev *Type3Device

	mu     sync.Mutex
	poison map[uint64]bool // line-aligned DPAs
	fwRev  string
	// npoison mirrors len(poison) so IsPoisoned — which runs on every
	// HDM access — can skip the lock while the list is empty.
	npoison atomic.Int64
}

// poisonListMax bounds the tracked poison list, as real devices do.
const poisonListMax = 256

// NewMailbox attaches a command mailbox to a Type-3 device.
func NewMailbox(dev *Type3Device, firmwareRev string) (*Mailbox, error) {
	if dev == nil {
		return nil, fmt.Errorf("cxl: mailbox: nil device")
	}
	if firmwareRev == "" {
		firmwareRev = "sim-1.0"
	}
	m := &Mailbox{dev: dev, poison: make(map[uint64]bool), fwRev: firmwareRev}
	dev.SetPoisonChecker(m.IsPoisoned)
	dev.SetPoisonSpanChecker(m.HasPoisonIn)
	return m, nil
}

// Execute runs one command. in is the opcode-specific payload; out is
// the opcode-specific response encoding.
func (m *Mailbox) Execute(op MailboxOpcode, in []byte) (out []byte, status MailboxStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch op {
	case OpIdentifyMemDevice:
		return m.identify(), MboxSuccess
	case OpGetHealthInfo:
		return m.health(), MboxSuccess
	case OpGetPartitionInfo:
		return m.partition(), MboxSuccess
	case OpGetPoisonList:
		return m.poisonList(), MboxSuccess
	case OpInjectPoison, OpClearPoison:
		if len(in) != 8 {
			return nil, MboxInvalidInput
		}
		dpa := binary.LittleEndian.Uint64(in)
		if !lineAligned(dpa) || dpa >= uint64(m.dev.media.Capacity().Bytes()) {
			return nil, MboxInvalidInput
		}
		if op == OpInjectPoison {
			if len(m.poison) >= poisonListMax {
				return nil, MboxInternalError
			}
			m.poison[dpa] = true
		} else {
			delete(m.poison, dpa)
		}
		m.npoison.Store(int64(len(m.poison)))
		return nil, MboxSuccess
	case OpSanitize:
		// Sanitize wipes the media regardless of battery: an explicit
		// secure-erase, modelled by zero-filling every touched page.
		if err := m.sanitize(); err != nil {
			return nil, MboxInternalError
		}
		m.poison = make(map[uint64]bool)
		m.npoison.Store(0)
		return nil, MboxSuccess
	default:
		return nil, MboxUnsupported
	}
}

func (m *Mailbox) identify() []byte {
	id := Identity{
		Vendor:      m.dev.cfg.VendorID(),
		Device:      m.dev.cfg.DeviceID(),
		TotalCap:    uint64(m.dev.media.Capacity().Bytes()),
		Persistent:  m.dev.media.Persistent(),
		LineSize:    uint32(LineSize),
		PoisonMax:   poisonListMax,
		FirmwareRev: m.fwRev,
	}
	return encodeIdentity(id)
}

func (m *Mailbox) health() []byte {
	h := Health{
		MediaOK:   true,
		BatteryOK: m.dev.media.Persistent(),
	}
	h.PoisonedLines = len(m.poison)
	out := make([]byte, 16)
	if h.MediaOK {
		out[0] = 1
	}
	if h.BatteryOK {
		out[1] = 1
	}
	binary.LittleEndian.PutUint32(out[4:], uint32(h.PoisonedLines))
	binary.LittleEndian.PutUint32(out[8:], uint32(h.LifeUsedPercent))
	return out
}

func (m *Mailbox) partition() []byte {
	out := make([]byte, 16)
	cap := uint64(m.dev.media.Capacity().Bytes())
	if m.dev.media.Persistent() {
		binary.LittleEndian.PutUint64(out[8:], cap)
	} else {
		binary.LittleEndian.PutUint64(out[0:], cap)
	}
	return out
}

func (m *Mailbox) poisonList() []byte {
	out := make([]byte, 4+8*len(m.poison))
	binary.LittleEndian.PutUint32(out, uint32(len(m.poison)))
	i := 0
	// Deterministic order for tests: ascending.
	lines := make([]uint64, 0, len(m.poison))
	for dpa := range m.poison {
		lines = append(lines, dpa)
	}
	for a := range lines {
		for b := a + 1; b < len(lines); b++ {
			if lines[b] < lines[a] {
				lines[a], lines[b] = lines[b], lines[a]
			}
		}
	}
	for _, dpa := range lines {
		binary.LittleEndian.PutUint64(out[4+8*i:], dpa)
		i++
	}
	return out
}

func (m *Mailbox) sanitize() error {
	// Zero the full media range in page-sized strides; the sparse
	// store drops to zeros either way, but writing through the Device
	// interface keeps stats and subclasses honest.
	const stride = 1 << 20
	zero := make([]byte, stride)
	cap := m.dev.media.Capacity().Bytes()
	for off := int64(0); off < cap; off += stride {
		n := stride
		if off+int64(n) > cap {
			n = int(cap - off)
		}
		if err := m.dev.media.WriteAt(zero[:n], off); err != nil {
			return err
		}
	}
	return nil
}

// HasPoisonIn reports whether any line of [dpa, dpa+n) is on the
// poison list — the span-granular RAS hook burst transactions consult.
// The empty-list fast path is a single lock-free load.
func (m *Mailbox) HasPoisonIn(dpa, n uint64) bool {
	if m.npoison.Load() == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for line := dpa &^ uint64(LineSize-1); line < dpa+n; line += uint64(LineSize) {
		if m.poison[line] {
			return true
		}
	}
	return false
}

// IsPoisoned reports whether a line-aligned DPA is on the poison list.
// The empty-list fast path is lock-free: this hook runs on every HDM
// access the device services.
func (m *Mailbox) IsPoisoned(dpa uint64) bool {
	if m.npoison.Load() == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.poison[dpa&^uint64(LineSize-1)]
}

func encodeIdentity(id Identity) []byte {
	fw := []byte(id.FirmwareRev)
	if len(fw) > 16 {
		fw = fw[:16]
	}
	out := make([]byte, 40)
	binary.LittleEndian.PutUint16(out[0:], id.Vendor)
	binary.LittleEndian.PutUint16(out[2:], id.Device)
	binary.LittleEndian.PutUint64(out[4:], id.TotalCap)
	if id.Persistent {
		out[12] = 1
	}
	binary.LittleEndian.PutUint32(out[16:], id.LineSize)
	binary.LittleEndian.PutUint32(out[20:], id.PoisonMax)
	copy(out[24:], fw)
	return out
}

// DecodeIdentity parses an OpIdentifyMemDevice response.
func DecodeIdentity(b []byte) (Identity, error) {
	if len(b) != 40 {
		return Identity{}, fmt.Errorf("cxl: identity payload %d bytes, want 40", len(b))
	}
	id := Identity{
		Vendor:     binary.LittleEndian.Uint16(b[0:]),
		Device:     binary.LittleEndian.Uint16(b[2:]),
		TotalCap:   binary.LittleEndian.Uint64(b[4:]),
		Persistent: b[12] == 1,
		LineSize:   binary.LittleEndian.Uint32(b[16:]),
		PoisonMax:  binary.LittleEndian.Uint32(b[20:]),
	}
	id.FirmwareRev = trimNulStr(b[24:40])
	return id, nil
}

// DecodeHealth parses an OpGetHealthInfo response.
func DecodeHealth(b []byte) (Health, error) {
	if len(b) != 16 {
		return Health{}, fmt.Errorf("cxl: health payload %d bytes, want 16", len(b))
	}
	return Health{
		MediaOK:         b[0] == 1,
		BatteryOK:       b[1] == 1,
		PoisonedLines:   int(binary.LittleEndian.Uint32(b[4:])),
		LifeUsedPercent: int(binary.LittleEndian.Uint32(b[8:])),
	}, nil
}

// DecodePartitionInfo parses an OpGetPartitionInfo response.
func DecodePartitionInfo(b []byte) (PartitionInfo, error) {
	if len(b) != 16 {
		return PartitionInfo{}, fmt.Errorf("cxl: partition payload %d bytes, want 16", len(b))
	}
	return PartitionInfo{
		VolatileBytes:   binary.LittleEndian.Uint64(b[0:]),
		PersistentBytes: binary.LittleEndian.Uint64(b[8:]),
	}, nil
}

// DecodePoisonList parses an OpGetPoisonList response.
func DecodePoisonList(b []byte) ([]uint64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("cxl: poison payload too short")
	}
	n := binary.LittleEndian.Uint32(b)
	if len(b) != int(4+8*n) {
		return nil, fmt.Errorf("cxl: poison payload length mismatch")
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[4+8*i:])
	}
	return out, nil
}

func trimNulStr(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
