package cxl

import (
	"cxlpmem/internal/memdev"
)

// MemIO is the package's one public I/O surface: every fabric data path
// — a single root port, an interleave set striping over several, a
// direct-attached device, a window-translated view — presents the same
// shape, so consumers (core mounts, the tiering daemon, cluster hosts,
// the coherency cache) program against the interface and never against
// a concrete type.
//
// Address shapes are uniform across implementations:
//
//   - Line, burst and submit entry points take a host physical address
//     as uint64, line-aligned for line ops and line-granular for bursts.
//   - ReadAt/WriteAt take an arbitrary byte offset as int64 and handle
//     unaligned heads/tails internally.
//
// Every failure is a *PortError wrapping one of the package sentinels
// (errors.go), so callers classify with errors.Is.
//
// The synchronous methods are implemented as submit+flush+wait over the
// same rings the asynchronous path uses. The asynchronous contract:
// Submit* enqueues a descriptor and returns a pooled completion token
// without moving data; Flush rings the doorbell, moving every queued
// descriptor across the link in batched back-to-back flits; each
// completion is then consumed exactly once — Wait the token, or drain
// it through Harvest into a caller-owned slice. Both directions are
// allocation-free in steady state.
type MemIO interface {
	// ReadLine fetches the 64-byte line at the line-aligned HPA.
	ReadLine(hpa uint64, out *[LineSize]byte) error
	// WriteLine stores a full 64-byte line at the line-aligned HPA.
	WriteLine(hpa uint64, data *[LineSize]byte) error
	// ReadBurst fetches len(p) bytes (line-granular) starting at hpa.
	ReadBurst(hpa uint64, p []byte) error
	// WriteBurst stores len(p) bytes (line-granular) starting at hpa.
	WriteBurst(hpa uint64, p []byte) error
	// ReadAt copies len(p) bytes from byte offset off.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at byte offset off.
	WriteAt(p []byte, off int64) error
	// SubmitRead enqueues a line read; out must stay valid until the
	// completion is consumed.
	SubmitRead(hpa uint64, out *[LineSize]byte) (*Completion, error)
	// SubmitWrite enqueues a line write; data is staged at submit time.
	SubmitWrite(hpa uint64, data *[LineSize]byte) (*Completion, error)
	// Flush rings the doorbell: queued submissions cross the link in
	// batched flits, one VC acquisition per ring.
	Flush()
	// Harvest drains up to len(dst) completions into dst, returning the
	// count. Completions consumed via Wait never surface here.
	Harvest(dst []Completed) int
}

// Compile-time interface checks: every data path presents MemIO.
var (
	_ MemIO = (*RootPort)(nil)
	_ MemIO = (*InterleaveSet)(nil)
	_ MemIO = (*deviceIO)(nil)
	_ MemIO = (*windowIO)(nil)
)

// NewDeviceIO adapts a raw media device to MemIO — the data path for
// direct-attached (non-CXL) tiers, so consumers drive DRAM and fabric
// memory through one interface. Submissions complete at submit time
// (there is no link to batch over); Flush is a no-op and Harvest always
// returns 0 because every token is handed back already completed.
func NewDeviceIO(dev memdev.Device) MemIO { return &deviceIO{dev: dev} }

type deviceIO struct {
	dev memdev.Device
}

func (d *deviceIO) ReadLine(hpa uint64, out *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return portErr(d.dev.Name(), "MemRd", hpa, ErrUnaligned, "unaligned")
	}
	return d.dev.ReadAt(out[:], int64(hpa))
}

func (d *deviceIO) WriteLine(hpa uint64, data *[LineSize]byte) error {
	if !lineAligned(hpa) {
		return portErr(d.dev.Name(), "MemWr", hpa, ErrUnaligned, "unaligned")
	}
	return d.dev.WriteAt(data[:], int64(hpa))
}

func (d *deviceIO) ReadBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return portErr(d.dev.Name(), "MemRdBurst", hpa, ErrUnaligned, "unaligned burst")
	}
	return d.dev.ReadAt(p, int64(hpa))
}

func (d *deviceIO) WriteBurst(hpa uint64, p []byte) error {
	if !lineAligned(hpa) || len(p)%LineSize != 0 {
		return portErr(d.dev.Name(), "MemWrBurst", hpa, ErrUnaligned, "unaligned burst")
	}
	return d.dev.WriteAt(p, int64(hpa))
}

func (d *deviceIO) ReadAt(p []byte, off int64) error  { return d.dev.ReadAt(p, off) }
func (d *deviceIO) WriteAt(p []byte, off int64) error { return d.dev.WriteAt(p, off) }

func (d *deviceIO) SubmitRead(hpa uint64, out *[LineSize]byte) (*Completion, error) {
	return immediateCompletion(OpMemRd, hpa, d.ReadLine(hpa, out)), nil
}

func (d *deviceIO) SubmitWrite(hpa uint64, data *[LineSize]byte) (*Completion, error) {
	return immediateCompletion(OpMemWr, hpa, d.WriteLine(hpa, data)), nil
}

func (d *deviceIO) Flush() {}

func (d *deviceIO) Harvest(dst []Completed) int { return 0 }

// NewWindowIO presents a base-translated view of another MemIO: every
// HPA/offset the caller passes is shifted by base before reaching the
// inner path. Consumers that think in window-relative addresses (core
// mounts, the coherency cache, per-tier views) compose this over a port
// or interleave set instead of carrying the base themselves.
func NewWindowIO(inner MemIO, base uint64) MemIO {
	if base == 0 {
		return inner
	}
	return &windowIO{inner: inner, base: base}
}

type windowIO struct {
	inner MemIO
	base  uint64
}

func (w *windowIO) ReadLine(hpa uint64, out *[LineSize]byte) error {
	return w.inner.ReadLine(w.base+hpa, out)
}

func (w *windowIO) WriteLine(hpa uint64, data *[LineSize]byte) error {
	return w.inner.WriteLine(w.base+hpa, data)
}

func (w *windowIO) ReadBurst(hpa uint64, p []byte) error {
	return w.inner.ReadBurst(w.base+hpa, p)
}

func (w *windowIO) WriteBurst(hpa uint64, p []byte) error {
	return w.inner.WriteBurst(w.base+hpa, p)
}

func (w *windowIO) ReadAt(p []byte, off int64) error {
	return w.inner.ReadAt(p, off+int64(w.base))
}

func (w *windowIO) WriteAt(p []byte, off int64) error {
	return w.inner.WriteAt(p, off+int64(w.base))
}

func (w *windowIO) SubmitRead(hpa uint64, out *[LineSize]byte) (*Completion, error) {
	return w.inner.SubmitRead(w.base+hpa, out)
}

func (w *windowIO) SubmitWrite(hpa uint64, data *[LineSize]byte) (*Completion, error) {
	return w.inner.SubmitWrite(w.base+hpa, data)
}

func (w *windowIO) Flush() { w.inner.Flush() }

func (w *windowIO) Harvest(dst []Completed) int { return w.inner.Harvest(dst) }
