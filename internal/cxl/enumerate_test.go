package cxl

import (
	"strings"
	"testing"

	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/units"
)

func TestEnumerateSingleDevice(t *testing.T) {
	dev := testType3(t) // 16 MiB media
	rp := trainedPort(t, dev)
	h, err := Enumerate(0, rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Windows) != 1 {
		t.Fatalf("windows = %d, want 1", len(h.Windows))
	}
	w := h.Windows[0]
	if w.Base != DefaultCXLWindowBase {
		t.Errorf("base = %#x, want %#x", w.Base, DefaultCXLWindowBase)
	}
	if w.Size != uint64(16*units.MiB) {
		t.Errorf("size = %d", w.Size)
	}
	if w.Endpoint != Endpoint(dev) || w.Port != rp {
		t.Error("window wiring mismatch")
	}
	// Decoder is programmed: access through the port works end-to-end.
	var in, out [LineSize]byte
	in[7] = 0x77
	if err := rp.WriteLine(w.Base+64, &in); err != nil {
		t.Fatal(err)
	}
	if err := rp.ReadLine(w.Base+64, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Error("post-enumeration access mismatch")
	}
}

func TestEnumerateMultipleDevices(t *testing.T) {
	devA := testType3(t)
	devBMedia := testMedia(t, "m2")
	devB, err := NewType3("cxl-mem1", 0x8086, 0x0D94, devBMedia)
	if err != nil {
		t.Fatal(err)
	}
	rpA := trainedPort(t, devA)
	linkB, _ := interconnect.NewPCIe("pcieB", interconnect.KindPCIe5, 16, 0)
	rpB := NewRootPort("rp1", linkB)
	if err := rpB.Attach(devB); err != nil {
		t.Fatal(err)
	}
	h, err := Enumerate(0, rpA, rpB)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(h.Windows))
	}
	// Windows must not overlap and are GiB-aligned apart.
	w0, w1 := h.Windows[0], h.Windows[1]
	if w1.Base < w0.Base+w0.Size {
		t.Error("windows overlap")
	}
	if w1.Base%(1<<30) != 0 {
		t.Errorf("second window base %#x not GiB aligned", w1.Base)
	}
	if got := h.TotalHDM(); got != 32*units.MiB {
		t.Errorf("TotalHDM = %v", got)
	}
	if _, ok := h.WindowFor(w1.Base + 5); !ok {
		t.Error("WindowFor missed")
	}
	if _, ok := h.WindowFor(0x1); ok {
		t.Error("WindowFor matched unmapped address")
	}
}

func TestEnumerateSkipsType1AndEmptyPorts(t *testing.T) {
	accel := NewType1("accel", 0x8086, 0x0001)
	linkA, _ := interconnect.NewPCIe("pa", interconnect.KindPCIe5, 8, 0)
	rpA := NewRootPort("rpA", linkA)
	if err := rpA.Attach(accel); err != nil {
		t.Fatal(err)
	}
	linkB, _ := interconnect.NewPCIe("pb", interconnect.KindPCIe5, 16, 0)
	rpEmpty := NewRootPort("rpB", linkB)
	h, err := Enumerate(0, rpA, rpEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Windows) != 0 {
		t.Errorf("windows = %d, want 0", len(h.Windows))
	}
	desc := h.Describe()
	if !strings.Contains(desc, "accel") || !strings.Contains(desc, "empty") {
		t.Errorf("Describe missing entries:\n%s", desc)
	}
}

func TestEnumerateCustomBase(t *testing.T) {
	dev := testType3(t)
	rp := trainedPort(t, dev)
	h, err := Enumerate(0x40_0000_0000, rp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Windows[0].Base != 0x40_0000_0000 {
		t.Errorf("base = %#x", h.Windows[0].Base)
	}
}

func TestMemWindowString(t *testing.T) {
	dev := testType3(t)
	rp := trainedPort(t, dev)
	h, err := Enumerate(0, rp)
	if err != nil {
		t.Fatal(err)
	}
	if s := h.Windows[0].String(); !strings.Contains(s, "cxl-mem0") {
		t.Errorf("window string = %q", s)
	}
}
