package cxl

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"testing"
)

// ringPort builds a trained port over a 16 MiB Type-3 device with one
// window at base 0 — the ring tests' fixture.
func ringPort(t *testing.T) *RootPort {
	t.Helper()
	rp, _ := burstPort(t, 1<<24)
	return rp
}

// vcBlock returns the base HPA of the n-th vcStride-line block, i.e.
// the n-th consecutive address window mapped to VC n&(NumVCs-1).
func vcBlock(n int) uint64 { return uint64(n) * uint64(vcStride*LineSize) }

// drain harvests until want completions arrive, failing the test if the
// ring goes quiet first.
func drain(t *testing.T, rp *RootPort, want int) []Completed {
	t.Helper()
	out := make([]Completed, 0, want)
	buf := make([]Completed, want)
	for spins := 0; len(out) < want; spins++ {
		n := rp.Harvest(buf[:want-len(out)])
		out = append(out, buf[:n]...)
		if n == 0 {
			rp.Flush()
			if spins > 1000 {
				t.Fatalf("harvested %d of %d completions, ring quiet", len(out), want)
			}
		}
	}
	return out
}

// TestRingTagWraparound drives one VC through several full ring laps
// and checks that no wire tag ever repeats while descriptors from
// different laps could be confused: RingSlots ≪ 2^vcTagBits, so tags
// stay unique across many consecutive laps, and the VC bits are stable.
func TestRingTagWraparound(t *testing.T) {
	rp := ringPort(t)
	base := vcBlock(0) // every address below stays on VC 0
	seen := make(map[uint16]int)
	var line [LineSize]byte
	total := 3 * RingSlots // three full laps
	for i := 0; i < total; i += 16 {
		tags := make([]uint16, 0, 16)
		for j := 0; j < 16; j++ {
			c, err := rp.SubmitWrite(base+uint64((j%vcStride)*LineSize), &line)
			if err != nil {
				t.Fatal(err)
			}
			tags = append(tags, c.Tag())
		}
		rp.Flush()
		for _, got := range drain(t, rp, 16) {
			if got.Err != nil {
				t.Fatalf("completion error: %v", got.Err)
			}
		}
		for _, tag := range tags {
			if tag>>vcTagBits != 0 {
				t.Fatalf("tag %#x not on VC 0", tag)
			}
			if prev, dup := seen[tag]; dup {
				t.Fatalf("tag %#x reused (first at batch %d, again at %d)", tag, prev, i)
			}
			seen[tag] = i
		}
	}
	if len(seen) != total {
		t.Fatalf("saw %d distinct tags, want %d", len(seen), total)
	}
}

// TestRingOutOfOrderDelivery submits descriptors across several VCs in
// an interleaved order, consumes one mid-batch token via Wait, and
// checks Harvest delivers exactly the others — in whatever order the
// rings drain, which differs from submission order.
func TestRingOutOfOrderDelivery(t *testing.T) {
	rp := ringPort(t)
	var line [LineSize]byte
	// Submission order: VC 3, 1, 2, 0 — harvest drains rings 0..7 in
	// index order, so delivery cannot match submission order.
	order := []int{3, 1, 2, 0}
	want := make(map[uint16]bool)
	var tokens []*Completion
	var submitted []uint16
	for _, vc := range order {
		for j := 0; j < 4; j++ {
			c, err := rp.SubmitWrite(vcBlock(vc)+uint64(j*LineSize), &line)
			if err != nil {
				t.Fatal(err)
			}
			tokens = append(tokens, c)
			submitted = append(submitted, c.Tag())
			want[c.Tag()] = true
		}
	}
	rp.Flush()
	// Consume one mid-batch token directly: it must never surface in
	// Harvest afterwards.
	waited := tokens[5]
	if err := waited.Wait(); err != nil {
		t.Fatal(err)
	}
	delete(want, waited.Tag())
	got := drain(t, rp, len(want))
	inOrder := true
	for i, c := range got {
		if c.Err != nil {
			t.Fatalf("completion %#x: %v", c.Tag, c.Err)
		}
		if !want[c.Tag] {
			t.Fatalf("unexpected or duplicate tag %#x (waited tag %#x)", c.Tag, waited.Tag())
		}
		delete(want, c.Tag)
		if c.Tag != submitted[i] {
			inOrder = false
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d completions never delivered", len(want))
	}
	if inOrder {
		t.Fatal("delivery order matched submission order exactly; expected out-of-order delivery across VCs")
	}
	if n := rp.Harvest(make([]Completed, 4)); n != 0 {
		t.Fatalf("harvest after drain returned %d stale completions", n)
	}
}

// reqFlitTag extracts the wire tag of a payload-carrying request flit.
func reqFlitTag(f *Flit) (uint16, bool) {
	if f.raw[0] != flitKindReq {
		return 0, false
	}
	return uint16(binary.LittleEndian.Uint64(f.raw[0:8]) >> 16), true
}

// TestRingFaultRetriesOnlyFailedDescriptor injects a one-shot CRC fault
// into the request flit of descriptor k in a flushed write batch: only
// that flit is retransmitted (one link retry total) and every
// descriptor still completes cleanly.
func TestRingFaultRetriesOnlyFailedDescriptor(t *testing.T) {
	rp := ringPort(t)
	const batch = 8
	var tokens []*Completion
	var lines [batch][LineSize]byte
	for j := range lines {
		for b := range lines[j] {
			lines[j][b] = byte(17*j + b)
		}
	}
	for j := 0; j < batch; j++ {
		c, err := rp.SubmitWrite(vcBlock(0)+uint64(j*LineSize), &lines[j])
		if err != nil {
			t.Fatal(err)
		}
		tokens = append(tokens, c)
	}
	k := tokens[3].Tag()
	faults := 0
	rp.SetFault(func(f Flit) Flit {
		if tag, ok := reqFlitTag(&f); ok && tag == k && faults == 0 {
			faults++
			f.raw[flitHeaderSize] ^= 0xFF // corrupt payload: CRC check fails
		}
		return f
	})
	rp.Flush()
	rp.SetFault(nil)
	for _, c := range drain(t, rp, batch) {
		if c.Err != nil {
			t.Fatalf("tag %#x failed despite per-flit retry: %v", c.Tag, c.Err)
		}
	}
	if got := rp.Stats().Retries; got != 1 {
		t.Fatalf("retries = %d, want exactly 1 (only descriptor k's flit resent)", got)
	}
	// The retried write and its neighbours all landed.
	for j := 0; j < batch; j++ {
		var got [LineSize]byte
		if err := rp.ReadLine(vcBlock(0)+uint64(j*LineSize), &got); err != nil {
			t.Fatal(err)
		}
		if got != lines[j] {
			t.Fatalf("line %d payload corrupted by neighbour's fault", j)
		}
	}
}

// TestRingPersistentFaultFailsOnlyDescriptorK keeps corrupting
// descriptor k's request flit past the retry budget: k completes with
// ErrUncorrectable, the other descriptors in the same batch succeed.
func TestRingPersistentFaultFailsOnlyDescriptorK(t *testing.T) {
	rp := ringPort(t)
	const batch = 6
	var line [LineSize]byte
	var tokens []*Completion
	for j := 0; j < batch; j++ {
		c, err := rp.SubmitWrite(vcBlock(0)+uint64(j*LineSize), &line)
		if err != nil {
			t.Fatal(err)
		}
		tokens = append(tokens, c)
	}
	k := tokens[2].Tag()
	rp.SetFault(func(f Flit) Flit {
		if tag, ok := reqFlitTag(&f); ok && tag == k {
			f.raw[flitHeaderSize] ^= 0xFF
		}
		return f
	})
	rp.Flush()
	rp.SetFault(nil)
	failed := 0
	for _, c := range drain(t, rp, batch) {
		if c.Tag == k {
			failed++
			if !errors.Is(c.Err, ErrUncorrectable) {
				t.Fatalf("descriptor k error = %v, want ErrUncorrectable", c.Err)
			}
			continue
		}
		if c.Err != nil {
			t.Fatalf("descriptor %#x failed alongside k: %v", c.Tag, c.Err)
		}
	}
	if failed != 1 {
		t.Fatalf("descriptor k surfaced %d times, want 1", failed)
	}
}

// TestRingFullBackpressure fills one VC without consuming anything:
// Submit* reports ErrRingFull (wrapped, errors.Is-able) once every slot
// is done-but-unconsumed, and a single Harvest unblocks the ring.
func TestRingFullBackpressure(t *testing.T) {
	rp := ringPort(t)
	var line [LineSize]byte
	for j := 0; j < RingSlots; j++ {
		if _, err := rp.SubmitWrite(vcBlock(0)+uint64((j%vcStride)*LineSize), &line); err != nil {
			t.Fatalf("submit %d: %v", j, err)
		}
	}
	// Slot 0's completion is still unconsumed after the internal flush,
	// so the next submission on this VC must report a full ring.
	if _, err := rp.SubmitWrite(vcBlock(0), &line); !errors.Is(err, ErrRingFull) {
		t.Fatalf("submit on full ring: err = %v, want ErrRingFull", err)
	}
	if n := rp.Harvest(make([]Completed, 1)); n != 1 {
		t.Fatalf("harvest freed %d slots, want 1", n)
	}
	if _, err := rp.SubmitWrite(vcBlock(0), &line); err != nil {
		t.Fatalf("submit after harvest: %v", err)
	}
	rp.Flush()
	drain(t, rp, RingSlots)
}

// TestRingConcurrentSubmittersOneVC hammers a single VC from several
// goroutines — submitters using both consumption styles (Wait and
// Flush+Harvest) — under -race. Every submission must complete, the
// ring must keep cycling across many laps, and the data must land.
func TestRingConcurrentSubmittersOneVC(t *testing.T) {
	rp := ringPort(t)
	const (
		workers = 4
		iters   = 200
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	var harvested sync.WaitGroup
	stop := make(chan struct{})
	harvested.Add(1)
	go func() {
		defer harvested.Done()
		buf := make([]Completed, RingSlots)
		for {
			select {
			case <-stop:
				// Final sweep so Wait-less completions all drain.
				rp.Flush()
				rp.Harvest(buf)
				return
			default:
				rp.Harvest(buf)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var line [LineSize]byte
			line[0] = byte(w + 1)
			addr := vcBlock(0) + uint64(w*LineSize) // distinct line, same VC
			for i := 0; i < iters; i++ {
				var c *Completion
				var err error
				for {
					c, err = rp.SubmitWrite(addr, &line)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrRingFull) {
						errCh <- err
						return
					}
					runtime.Gosched() // backpressure: let the harvester drain
				}
				if w%2 == 0 {
					// Wait-style consumer.
					if err := c.Wait(); err != nil {
						errCh <- err
						return
					}
				} else {
					// Doorbell-style: flush and let the harvester drain.
					rp.Flush()
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(stop)
	harvested.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		var got [LineSize]byte
		if err := rp.ReadLine(vcBlock(0)+uint64(w*LineSize), &got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(w+1) {
			t.Fatalf("worker %d line = %#x, want %#x", w, got[0], w+1)
		}
	}
	// The ring still cycles: one more full lap on the same VC.
	var line [LineSize]byte
	for j := 0; j < RingSlots; j++ {
		if _, err := rp.SubmitWrite(vcBlock(0)+uint64((j%vcStride)*LineSize), &line); err != nil {
			t.Fatal(err)
		}
	}
	rp.Flush()
	drain(t, rp, RingSlots)
}

// TestRingZeroAllocSteadyState guards the rings' 0 allocs/op claim on
// submit, flush, harvest and the ring-backed synchronous path.
func TestRingZeroAllocSteadyState(t *testing.T) {
	rp := ringPort(t)
	var line [LineSize]byte
	done := make([]Completed, 16)
	// Warm the pools (flit scratch, immediate tokens) outside the
	// measured window.
	for j := 0; j < 16; j++ {
		if _, err := rp.SubmitWrite(vcBlock(0)+uint64(j*LineSize), &line); err != nil {
			t.Fatal(err)
		}
	}
	rp.Flush()
	drain(t, rp, 16)
	if avg := testing.AllocsPerRun(100, func() {
		for j := 0; j < 16; j++ {
			if _, err := rp.SubmitWrite(vcBlock(0)+uint64(j*LineSize), &line); err != nil {
				t.Fatal(err)
			}
		}
		rp.Flush()
		for got := 0; got < 16; {
			got += rp.Harvest(done[got:])
		}
	}); avg != 0 {
		t.Fatalf("submit/flush/harvest allocates %.1f per cycle, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := rp.WriteLine(vcBlock(0), &line); err != nil {
			t.Fatal(err)
		}
		if err := rp.ReadLine(vcBlock(0), &line); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("sync line path allocates %.1f per pair, want 0", avg)
	}
}

// TestPortStatsSnapshot checks the folded PortStats accessor against
// known traffic.
func TestPortStatsSnapshot(t *testing.T) {
	rp := ringPort(t)
	var line [LineSize]byte
	const ops = 24
	for j := 0; j < ops; j++ {
		if _, err := rp.SubmitWrite(vcBlock(j%2)+uint64(j/2*LineSize), &line); err != nil {
			t.Fatal(err)
		}
	}
	rp.Flush()
	drain(t, rp, ops)
	st := rp.Stats()
	if st.Issued != ops {
		t.Errorf("Issued = %d, want %d", st.Issued, ops)
	}
	if st.Flushed != ops {
		t.Errorf("Flushed = %d, want %d", st.Flushed, ops)
	}
	if st.Harvested != ops {
		t.Errorf("Harvested = %d, want %d", st.Harvested, ops)
	}
	if st.Doorbells == 0 || st.Doorbells > ops {
		t.Errorf("Doorbells = %d, want in [1, %d]", st.Doorbells, ops)
	}
	var vcIssued int64
	for _, vc := range st.VCs {
		vcIssued += vc.Issued
	}
	if vcIssued != st.Issued {
		t.Errorf("per-VC issued sums to %d, total says %d", vcIssued, st.Issued)
	}
	var vcRetries int64
	for _, vc := range st.VCs {
		vcRetries += vc.Retries
	}
	if vcRetries != st.Retries {
		t.Errorf("per-VC retries sum to %d, total says %d", vcRetries, st.Retries)
	}
}
