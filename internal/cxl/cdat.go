package cxl

import (
	"encoding/binary"
	"fmt"
)

// CDAT — the Coherent Device Attribute Table. Real CXL devices describe
// their memory's performance (latency, bandwidth per access class) and
// capacity attributes in a table the OS reads during enumeration to
// build HMAT entries and pick NUMA distances. We model the two record
// types the paper's device needs: DSMAS (Device Scoped Memory Affinity
// Structure — one memory range and its flags) and DSLBIS (Device Scoped
// Latency and Bandwidth Information Structure).

// CDAT record types.
const (
	// CDATDsmas describes one device memory range.
	CDATDsmas uint8 = 0
	// CDATDslbis describes latency/bandwidth of a range.
	CDATDslbis uint8 = 1
)

// DSLBIS data types.
const (
	// DSLBISReadLatency in nanoseconds.
	DSLBISReadLatency uint8 = 0
	// DSLBISWriteLatency in nanoseconds.
	DSLBISWriteLatency uint8 = 1
	// DSLBISReadBandwidth in MB/s.
	DSLBISReadBandwidth uint8 = 2
	// DSLBISWriteBandwidth in MB/s.
	DSLBISWriteBandwidth uint8 = 3
)

// DSMAS is one memory-range record.
type DSMAS struct {
	Handle      uint8
	NonVolatile bool
	DPABase     uint64
	DPALength   uint64
}

// DSLBIS is one latency/bandwidth record bound to a DSMAS handle.
type DSLBIS struct {
	Handle   uint8
	DataType uint8
	Value    uint64
}

// CDAT is a parsed table.
type CDAT struct {
	Ranges []DSMAS
	Perf   []DSLBIS
}

// BuildCDAT derives the table from a Type-3 device's media: one DSMAS
// covering the whole HDM and four DSLBIS records carrying the media's
// profile — exactly the numbers the analytic engine uses, so the OS
// view and the model can be cross-checked.
func BuildCDAT(dev *Type3Device) CDAT {
	p := dev.Media().Profile()
	return CDAT{
		Ranges: []DSMAS{{
			Handle:      0,
			NonVolatile: dev.Media().Persistent(),
			DPABase:     0,
			DPALength:   uint64(dev.Media().Capacity().Bytes()),
		}},
		Perf: []DSLBIS{
			{Handle: 0, DataType: DSLBISReadLatency, Value: uint64(p.IdleLatency.Ns())},
			{Handle: 0, DataType: DSLBISWriteLatency, Value: uint64(p.IdleLatency.Ns())},
			{Handle: 0, DataType: DSLBISReadBandwidth, Value: uint64(p.ReadPeak.MBps())},
			{Handle: 0, DataType: DSLBISWriteBandwidth, Value: uint64(p.WritePeak.MBps())},
		},
	}
}

// record wire format:
//
//	type u8 | flags u8 | length u16 | payload...
//
// DSMAS payload: handle u8, nv u8, pad u16, base u64, length u64 (20 B)
// DSLBIS payload: handle u8, dataType u8, pad u16, value u64 (12 B)
const cdatRecordHeader = 4

// Encode serialises the table.
func (c CDAT) Encode() []byte {
	var out []byte
	for _, r := range c.Ranges {
		rec := make([]byte, cdatRecordHeader+20)
		rec[0] = CDATDsmas
		binary.LittleEndian.PutUint16(rec[2:], uint16(len(rec)))
		rec[4] = r.Handle
		if r.NonVolatile {
			rec[5] = 1
		}
		binary.LittleEndian.PutUint64(rec[8:], r.DPABase)
		binary.LittleEndian.PutUint64(rec[16:], r.DPALength)
		out = append(out, rec...)
	}
	for _, p := range c.Perf {
		rec := make([]byte, cdatRecordHeader+12)
		rec[0] = CDATDslbis
		binary.LittleEndian.PutUint16(rec[2:], uint16(len(rec)))
		rec[4] = p.Handle
		rec[5] = p.DataType
		binary.LittleEndian.PutUint64(rec[8:], p.Value)
		out = append(out, rec...)
	}
	return out
}

// DecodeCDAT parses a serialised table.
func DecodeCDAT(b []byte) (CDAT, error) {
	var c CDAT
	for len(b) > 0 {
		if len(b) < cdatRecordHeader {
			return CDAT{}, fmt.Errorf("cxl: cdat: truncated record header")
		}
		typ := b[0]
		length := int(binary.LittleEndian.Uint16(b[2:]))
		if length < cdatRecordHeader || length > len(b) {
			return CDAT{}, fmt.Errorf("cxl: cdat: bad record length %d", length)
		}
		payload := b[cdatRecordHeader:length]
		switch typ {
		case CDATDsmas:
			if len(payload) != 20 {
				return CDAT{}, fmt.Errorf("cxl: cdat: DSMAS payload %d bytes", len(payload))
			}
			c.Ranges = append(c.Ranges, DSMAS{
				Handle:      payload[0],
				NonVolatile: payload[1] == 1,
				DPABase:     binary.LittleEndian.Uint64(payload[4:]),
				DPALength:   binary.LittleEndian.Uint64(payload[12:]),
			})
		case CDATDslbis:
			if len(payload) != 12 {
				return CDAT{}, fmt.Errorf("cxl: cdat: DSLBIS payload %d bytes", len(payload))
			}
			c.Perf = append(c.Perf, DSLBIS{
				Handle:   payload[0],
				DataType: payload[1],
				Value:    binary.LittleEndian.Uint64(payload[4:]),
			})
		default:
			return CDAT{}, fmt.Errorf("cxl: cdat: unknown record type %d", typ)
		}
		b = b[length:]
	}
	return c, nil
}

// Lookup returns the DSLBIS value for a handle/dataType pair.
func (c CDAT) Lookup(handle, dataType uint8) (uint64, bool) {
	for _, p := range c.Perf {
		if p.Handle == handle && p.DataType == dataType {
			return p.Value, true
		}
	}
	return 0, false
}
