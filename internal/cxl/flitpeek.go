package cxl

import "encoding/binary"

// Raw flit inspection and mutation, for fault injectors outside this
// package (internal/chaos). These read and write the wire image without
// validating it — a corrupted flit is exactly the point — mirroring
// what flitRecordOf does for the flight recorder.

// PeekKind returns the flit's kind byte as encoded on the wire.
func (f *Flit) PeekKind() uint8 { return f.raw[0] }

// PeekOp returns the flit's opcode byte as encoded on the wire.
func (f *Flit) PeekOp() uint8 { return f.raw[1] }

// PeekTag returns the flit's tag field as encoded on the wire.
func (f *Flit) PeekTag() uint16 { return binary.LittleEndian.Uint16(f.raw[2:4]) }

// PeekAddr returns the flit's address field as encoded on the wire.
// Data flits carry payload there; the value is only meaningful for
// request/response kinds, which is fine for address-range fault
// predicates (a data flit simply never matches a narrow range).
func (f *Flit) PeekAddr() uint64 { return binary.LittleEndian.Uint64(f.raw[8:16]) }

// FlipBit inverts one bit of the wire image (bit i of the raw flit,
// modulo its size) — the single-event-upset fault. The receiver's CRC
// check catches it and the LRSM retransmits.
func (f *Flit) FlipBit(i uint) {
	n := i % uint(len(f.raw)*8)
	f.raw[n/8] ^= 1 << (n % 8)
}

// Erase zeroes the wire image — the lost-flit fault. Decode fails at
// the receiver (bad kind/CRC), driving the same retry path as a
// corruption but with nothing recoverable in flight.
func (f *Flit) Erase() {
	f.raw = [flitRawSize]byte{}
}
