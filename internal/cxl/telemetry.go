package cxl

import (
	"encoding/binary"
	"strconv"
	"time"

	"cxlpmem/internal/telemetry"
)

// Telemetry attachment for the port data path.
//
// The design constraint is the CI-gated overhead budget: tier-1 benches
// with telemetry enabled must stay within 3% of disabled. Per-flit
// bookkeeping cannot meet that (a 4 KiB burst moves ~66 flits), so the
// port taps per *transaction*: a per-VC counter picks every N-th
// doorbell claim, and only that sampled transaction pays the clock
// reads and rides hooks whose trace chains into the flight recorder.
// Unsampled transactions see hooks identical to the user's own — their
// only extra cost is one atomic pointer load and one counter add —
// except that CRC-failed flits are force-recorded regardless of
// sampling (flitErr below), so the flight recorder never misses the
// wire history that health events are made of. With telemetry disabled
// the data path pays a single nil pointer load.
//
// The sampled/unsampled hook variants are prebuilt off the hot path:
// EnableTelemetry and every SetFlitTrace/SetFault swap rebuild them
// under rp.mu, and the data path picks one with no allocation.

// DefaultSampleN is the default transaction sampling rate (1-in-N).
const DefaultSampleN = 64

// TelemetryOptions configures a port's telemetry attachment.
type TelemetryOptions struct {
	// SampleN samples every N-th transaction per VC (rounded up to a
	// power of two; 0 takes DefaultSampleN). 1 samples everything.
	SampleN int
	// RecorderSlots is the flight-recorder ring depth (0 takes
	// telemetry.DefaultRecorderSlots).
	RecorderSlots int
}

// tapConfig is the per-port telemetry wiring that survives hook swaps:
// the sampling mask, the flight recorder, and the latency histograms.
type tapConfig struct {
	mask     uint64
	rec      *telemetry.FlightRecorder
	latRead  *telemetry.Histogram
	latWrite *telemetry.Histogram
	latBurst *telemetry.Histogram
	latFlush *telemetry.Histogram
}

// portTap is the hot-path telemetry snapshot: the config plus the two
// prebuilt hook variants. Published atomically beside rp.hooks; the
// data path loads it once per transaction.
type portTap struct {
	tapConfig
	sampled   *portHooks
	unsampled *portHooks
}

// histFor picks the latency histogram for a transaction shape.
func (t *portTap) histFor(kind uint8, op MemOpcode) *telemetry.Histogram {
	if kind == descBurst {
		return t.latBurst
	}
	if op == OpMemRd {
		return t.latRead
	}
	return t.latWrite
}

// flitRecordOf peeks the flit header without validating it — kind and
// opcode bytes, tag, and address straight from the wire image. Cheap
// enough for the recording path; a corrupted flit yields a garbled
// record, which is exactly what should land in a flight recorder.
func flitRecordOf(f *Flit, errFlag bool) telemetry.FlitRecord {
	return telemetry.FlitRecord{
		Kind: f.raw[0],
		Op:   f.raw[1],
		Tag:  binary.LittleEndian.Uint16(f.raw[2:4]),
		Addr: binary.LittleEndian.Uint64(f.raw[8:16]),
		Err:  errFlag,
	}
}

// flitErr force-records a CRC-failed flit, regardless of sampling. The
// retry loops call it on every failed decode; with telemetry off (nil
// hooks or no recorder) it is a nil check.
func (h *portHooks) flitErr(f *Flit) {
	if h != nil && h.rec != nil {
		h.rec.Record(flitRecordOf(f, true))
	}
}

// rebuildTapLocked derives the sampled/unsampled hook variants from the
// current user hooks and publishes them. Callers hold rp.mu.
func (rp *RootPort) rebuildTapLocked() {
	cfg := rp.tapCfg
	if cfg == nil {
		rp.tap.Store(nil)
		return
	}
	var base portHooks
	if cur := rp.hooks.Load(); cur != nil {
		base = *cur
	}
	unsampled := base
	unsampled.rec = cfg.rec
	sampled := unsampled
	rec := cfg.rec
	if user := base.trace; user != nil {
		sampled.trace = func(f Flit) {
			user(f)
			rec.Record(flitRecordOf(&f, false))
		}
	} else {
		sampled.trace = func(f Flit) { rec.Record(flitRecordOf(&f, false)) }
	}
	rp.tap.Store(&portTap{tapConfig: *cfg, sampled: &sampled, unsampled: &unsampled})
}

// tapPick selects the hook variant for one transaction and, when the
// transaction is sampled, returns the histogram to record into and the
// start time. The sampling clock is the transaction's already-claimed
// ring position — monotonically increasing per VC — so the unsampled
// fast path costs one atomic pointer load and a mask test, no extra
// atomic traffic.
func (rp *RootPort) tapPick(pos uint64, hk *portHooks, kind uint8, op MemOpcode, flush bool) (*portHooks, *telemetry.Histogram, time.Time) {
	tap := rp.tap.Load()
	if tap == nil {
		return hk, nil, time.Time{}
	}
	if (pos+1)&tap.mask != 0 {
		// Phase-shifted so position 0 — the first transaction after
		// enable — is not unconditionally sampled at any rate.
		return tap.unsampled, nil, time.Time{}
	}
	if flush {
		return tap.sampled, tap.latFlush, time.Now()
	}
	return tap.sampled, tap.histFor(kind, op), time.Now()
}

// EnableTelemetry attaches the port to a registry: latency histograms
// (cxl_port_latency_ns, op=read|write|burst|flush), a collector for the
// ring/link counters (cxl_port_*_total and per-VC cxl_vc_*_total), and
// a flight recorder fed from the trace hook slot per the sampling
// policy above. Returns the recorder (also reachable via
// FlightRecorder). Call once per port per registry — registration is
// append-only.
func (rp *RootPort) EnableTelemetry(reg *telemetry.Registry, opts TelemetryOptions) *telemetry.FlightRecorder {
	n := uint64(DefaultSampleN)
	if opts.SampleN > 0 {
		n = uint64(opts.SampleN)
	}
	pow := uint64(1)
	for pow < n {
		pow <<= 1
	}
	port := telemetry.Labels("port", rp.name)
	cfg := &tapConfig{
		mask:     pow - 1,
		rec:      telemetry.NewFlightRecorder(opts.RecorderSlots),
		latRead:  reg.NewHistogram("cxl_port_latency_ns", telemetry.Labels("port", rp.name, "op", "read")),
		latWrite: reg.NewHistogram("cxl_port_latency_ns", telemetry.Labels("port", rp.name, "op", "write")),
		latBurst: reg.NewHistogram("cxl_port_latency_ns", telemetry.Labels("port", rp.name, "op", "burst")),
		latFlush: reg.NewHistogram("cxl_port_latency_ns", telemetry.Labels("port", rp.name, "op", "flush")),
	}
	var vcLabels [NumVCs]string
	for i := range vcLabels {
		vcLabels[i] = telemetry.Labels("port", rp.name, "vc", strconv.Itoa(i))
	}
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		st := rp.Stats()
		e.Counter("cxl_port_issued_total", port, st.Issued)
		e.Counter("cxl_port_flushed_total", port, st.Flushed)
		e.Counter("cxl_port_retries_total", port, st.Retries)
		e.Counter("cxl_port_doorbells_total", port, st.Doorbells)
		e.Counter("cxl_port_harvested_total", port, st.Harvested)
		e.Counter("cxl_port_cq_overflows_total", port, st.CQOverflows)
		e.Counter("cxl_port_timeouts_total", port, st.Timeouts)
		e.Counter("cxl_port_retrains_total", port, st.Retrains)
		for i := range st.VCs {
			e.Counter("cxl_vc_issued_total", vcLabels[i], st.VCs[i].Issued)
			e.Counter("cxl_vc_retries_total", vcLabels[i], st.VCs[i].Retries)
		}
	})
	rp.mu.Lock()
	rp.tapCfg = cfg
	rp.rebuildTapLocked()
	rp.mu.Unlock()
	return cfg.rec
}

// DisableTelemetry detaches the data path from the telemetry plane (the
// registry keeps the registered metrics; they simply stop moving).
func (rp *RootPort) DisableTelemetry() {
	rp.mu.Lock()
	rp.tapCfg = nil
	rp.tap.Store(nil)
	rp.mu.Unlock()
}

// FlightRecorder returns the port's flight recorder, or nil when
// telemetry is not enabled.
func (rp *RootPort) FlightRecorder() *telemetry.FlightRecorder {
	if t := rp.tap.Load(); t != nil {
		return t.rec
	}
	return nil
}

// EnableTelemetry enables telemetry on every leg port of the set with
// the same options, so a striped data path is observed end to end
// (each leg keeps its own histograms, counters and flight recorder,
// labelled by port name).
func (s *InterleaveSet) EnableTelemetry(reg *telemetry.Registry, opts TelemetryOptions) {
	for _, rp := range s.Ports() {
		rp.EnableTelemetry(reg, opts)
	}
}

// RegisterDeviceMetrics exposes a Type-3 endpoint's transaction
// counters through the registry.
func RegisterDeviceMetrics(reg *telemetry.Registry, d *Type3Device) {
	labels := telemetry.Labels("dev", d.Name())
	st := d.Stats()
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		e.Counter("cxl_dev_reads_total", labels, st.Reads.Load())
		e.Counter("cxl_dev_writes_total", labels, st.Writes.Load())
		e.Counter("cxl_dev_partial_writes_total", labels, st.PartialWrites.Load())
		e.Counter("cxl_dev_invalidates_total", labels, st.Invalidates.Load())
		e.Counter("cxl_dev_errors_total", labels, st.Errors.Load())
		e.Counter("cxl_dev_read_bursts_total", labels, st.ReadBursts.Load())
		e.Counter("cxl_dev_write_bursts_total", labels, st.WriteBursts.Load())
		e.Counter("cxl_dev_burst_lines_total", labels, st.BurstLines.Load())
		e.Counter("cxl_dev_line_fallbacks_total", labels, st.LineFallbacks.Load())
	})
}

// RecordSnoops wires a switch's back-invalidate channel into a flight
// recorder: every BISnp/BIRsp flit crossing the switch is captured
// unconditionally (snoops are rare and diagnostic gold, so they are
// never sampled away).
func RecordSnoops(sw *Switch, rec *telemetry.FlightRecorder) {
	sw.SetSnoopTrace(func(f Flit) { rec.Record(flitRecordOf(&f, false)) })
}
