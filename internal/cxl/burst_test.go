package cxl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// burstPort builds a trained port over a 16 MiB Type-3 device with one
// window at base 0.
func burstPort(t *testing.T, size uint64) (*RootPort, *Type3Device) {
	t.Helper()
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: size}); err != nil {
		t.Fatal(err)
	}
	return trainedPort(t, dev), dev
}

func TestBurstRoundTrip(t *testing.T) {
	rp, dev := burstPort(t, 1<<20)
	for _, lines := range []int{1, 3, MaxBurstLines, MaxBurstLines + 17} {
		n := lines * LineSize
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(i*7 + lines)
		}
		if err := rp.WriteBurst(4096, in); err != nil {
			t.Fatalf("WriteBurst(%d lines): %v", lines, err)
		}
		out := make([]byte, n)
		if err := rp.ReadBurst(4096, out); err != nil {
			t.Fatalf("ReadBurst(%d lines): %v", lines, err)
		}
		if !bytes.Equal(in, out) {
			t.Errorf("%d-line burst round trip mismatch", lines)
		}
	}
	if dev.Stats().WriteBursts.Load() == 0 || dev.Stats().ReadBursts.Load() == 0 {
		t.Error("burst transactions not counted")
	}
	// 1 + 3 + 64 + 81 lines in each direction.
	if got := dev.Stats().BurstLines.Load(); got != 2*(1+3+MaxBurstLines+MaxBurstLines+17) {
		t.Errorf("burst lines = %d", got)
	}
}

func TestBurstRejectsUnaligned(t *testing.T) {
	rp, _ := burstPort(t, 1<<20)
	buf := make([]byte, LineSize)
	if err := rp.WriteBurst(3, buf); err == nil {
		t.Error("unaligned burst address accepted")
	}
	if err := rp.ReadBurst(0, make([]byte, LineSize+1)); err == nil {
		t.Error("non-line-multiple burst length accepted")
	}
}

func TestBurstFlitCounts(t *testing.T) {
	rp, _ := burstPort(t, 1<<20)
	var flits int
	rp.SetFlitTrace(func(Flit) { flits++ })
	const lines = 8
	buf := make([]byte, lines*LineSize)
	if err := rp.WriteBurst(0, buf); err != nil {
		t.Fatal(err)
	}
	// Header + lines data beats + completion.
	if flits != lines+2 {
		t.Errorf("write burst traced %d flits, want %d", flits, lines+2)
	}
	flits = 0
	if err := rp.ReadBurst(0, buf); err != nil {
		t.Fatal(err)
	}
	if flits != lines+2 {
		t.Errorf("read burst traced %d flits, want %d", flits, lines+2)
	}
}

func TestBurstRetryRecoversTransientDataCorruption(t *testing.T) {
	rp, _ := burstPort(t, 1<<20)
	// Corrupt the third flit once (a data beat of the write burst).
	n := 0
	rp.SetFault(func(f Flit) Flit {
		n++
		if n == 3 {
			return f.Corrupt(200)
		}
		return f
	})
	in := make([]byte, 4*LineSize)
	for i := range in {
		in[i] = byte(i)
	}
	if err := rp.WriteBurst(0, in); err != nil {
		t.Fatalf("burst with transient data corruption: %v", err)
	}
	rp.SetFault(nil)
	out := make([]byte, len(in))
	if err := rp.ReadBurst(0, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("data corrupted despite retry")
	}
	if rp.Stats().Retries != 1 {
		t.Errorf("retries = %d, want 1", rp.Stats().Retries)
	}
}

func TestBurstRetryExhaustionOnDataFlit(t *testing.T) {
	rp, _ := burstPort(t, 1<<20)
	// Corrupt every data flit; headers pass. The data-beat LRSM must
	// give up after maxLinkRetries.
	rp.SetFault(func(f Flit) Flit {
		if f.raw[0] == flitKindData {
			return f.Corrupt(50)
		}
		return f
	})
	err := rp.WriteBurst(0, make([]byte, 2*LineSize))
	if err == nil {
		t.Fatal("persistent data-flit corruption not detected")
	}
	pe, ok := err.(*PortError)
	if !ok || !strings.Contains(pe.Why, "data flit") {
		t.Errorf("err = %v, want PortError on data flit", err)
	}
	if rp.Stats().Retries < maxLinkRetries {
		t.Errorf("retries = %d, want >= %d", rp.Stats().Retries, maxLinkRetries)
	}
}

func TestBurstSpanningWindowEnd(t *testing.T) {
	rp, dev := burstPort(t, 1<<20) // window [0, 1 MiB)
	buf := make([]byte, 4*LineSize)
	start := uint64(1<<20) - 2*uint64(LineSize)
	if err := rp.WriteBurst(start, buf); err == nil {
		t.Error("write burst spanning window end accepted")
	}
	if err := rp.ReadBurst(start, buf); err == nil {
		t.Error("read burst spanning window end accepted")
	}
	if dev.Stats().Errors.Load() == 0 {
		t.Error("device did not count the out-of-window burst")
	}
	// A burst spanning the window end must not partially commit: the
	// in-window tail lines stay untouched.
	probe := make([]byte, 2*LineSize)
	ones := bytes.Repeat([]byte{0xFF}, len(buf))
	if err := rp.WriteBurst(start, ones); err == nil {
		t.Fatal("second spanning burst accepted")
	}
	if err := rp.ReadBurst(start, probe); err != nil {
		t.Fatal(err)
	}
	for i, b := range probe {
		if b != 0 {
			t.Fatalf("byte %d of failed burst reached media", i)
		}
	}
}

func TestBurstAcrossTwoWindows(t *testing.T) {
	// Two adjacent HPA windows onto disjoint halves of the media: a
	// burst crossing the seam cannot use the contiguous fast path and
	// must fall back to per-line decode — transparently.
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 1 << 20, Size: 1 << 20, DPABase: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	in := make([]byte, 8*LineSize)
	for i := range in {
		in[i] = byte(255 - i)
	}
	start := uint64(1<<20) - 4*uint64(LineSize)
	if err := rp.WriteBurst(start, in); err != nil {
		t.Fatalf("seam-crossing burst: %v", err)
	}
	out := make([]byte, len(in))
	if err := rp.ReadBurst(start, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("seam-crossing burst round trip mismatch")
	}
}

func TestBurstPoisonedLineFailsWhole(t *testing.T) {
	rp, dev := burstPort(t, 1<<20)
	dev.SetPoisonChecker(func(dpa uint64) bool { return dpa == 2*uint64(LineSize) })
	buf := make([]byte, 4*LineSize)
	if err := rp.ReadBurst(0, buf); err == nil {
		t.Error("burst over poisoned line accepted")
	}
	// Bursts clear of the poisoned line still work.
	if err := rp.ReadBurst(4*uint64(LineSize), buf); err != nil {
		t.Errorf("burst beside poisoned line failed: %v", err)
	}
}

// lineOnlyEndpoint hides Type3Device's BurstHandler implementation so
// the port's per-line fallback is exercised.
type lineOnlyEndpoint struct {
	dev *Type3Device
}

func (e *lineOnlyEndpoint) Name() string               { return e.dev.Name() }
func (e *lineOnlyEndpoint) DeviceType() DeviceType     { return e.dev.DeviceType() }
func (e *lineOnlyEndpoint) Config() *ConfigSpace       { return e.dev.Config() }
func (e *lineOnlyEndpoint) HandleMem(r MemReq) MemResp { return e.dev.HandleMem(r) }

func TestBurstFallbackForLineOnlyEndpoint(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, &lineOnlyEndpoint{dev: dev})
	in := make([]byte, 4*LineSize)
	for i := range in {
		in[i] = byte(i * 3)
	}
	if err := rp.WriteBurst(0, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := rp.ReadBurst(0, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("fallback burst round trip mismatch")
	}
	// The fallback hits HandleMem per line: 4 probe reads + 4 writes
	// for the write burst, then 4 reads for the read burst.
	if dev.Stats().Writes.Load() != 4 || dev.Stats().Reads.Load() != 8 {
		t.Errorf("fallback stats = %d writes %d reads, want 4/8",
			dev.Stats().Writes.Load(), dev.Stats().Reads.Load())
	}
}

// TestBurstFallbackNoPartialEffects checks the per-line fallback keeps
// the native path's contract: a write burst spanning the window end
// must leave the in-window lines untouched.
func TestBurstFallbackNoPartialEffects(t *testing.T) {
	dev := testType3(t)
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, &lineOnlyEndpoint{dev: dev})
	start := uint64(1<<20) - 2*uint64(LineSize)
	ones := bytes.Repeat([]byte{0xFF}, 4*LineSize)
	if err := rp.WriteBurst(start, ones); err == nil {
		t.Fatal("fallback burst spanning window end accepted")
	}
	probe := make([]byte, 2*LineSize)
	if err := rp.ReadBurst(start, probe); err != nil {
		t.Fatal(err)
	}
	for i, b := range probe {
		if b != 0 {
			t.Fatalf("byte %d of failed fallback burst reached media", i)
		}
	}
}

// TestSetPoisonCheckerInvalidatesSpanHook guards hook consistency: a
// custom per-line checker installed after the mailbox must govern
// bursts too — the mailbox's span hook may not linger and mask it.
func TestSetPoisonCheckerInvalidatesSpanHook(t *testing.T) {
	rp, dev := burstPort(t, 1<<20)
	if _, err := NewMailbox(dev, "fw"); err != nil {
		t.Fatal(err)
	}
	dev.SetPoisonChecker(func(dpa uint64) bool { return dpa == 0 })
	buf := make([]byte, 4*LineSize)
	if err := rp.ReadBurst(0, buf); err == nil {
		t.Error("contiguous burst ignored the custom per-line checker")
	}
	var line [LineSize]byte
	if err := rp.ReadLine(0, &line); err == nil {
		t.Error("line read ignored the custom per-line checker")
	}
}

// TestReadWriteAtEdgeCases drives rp.ReadAt/WriteAt over randomized
// unaligned spans and checks every byte against a reference image —
// head/tail MemWrPtl masking, single-line interiors, burst interiors
// and line-boundary crossings all at once.
func TestReadWriteAtEdgeCases(t *testing.T) {
	rp, dev := burstPort(t, 1<<20)
	const arena = 16 << 10
	ref := make([]byte, arena)
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		off := rng.Intn(arena - 1)
		n := 1 + rng.Intn(arena-off-1)
		if n > 10*LineSize {
			n = 1 + rng.Intn(10*LineSize)
		}
		span := make([]byte, n)
		rng.Read(span)
		copy(ref[off:off+n], span)
		if err := rp.WriteAt(span, int64(off)); err != nil {
			t.Fatalf("WriteAt(%d, %d): %v", off, n, err)
		}
	}
	got := make([]byte, arena)
	if err := rp.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("first mismatch at byte %d: got %#x want %#x", i, got[i], ref[i])
			}
		}
	}
	if dev.Stats().PartialWrites.Load() == 0 {
		t.Error("no MemWrPtl issued for unaligned edges")
	}
	// Unaligned reads over the same image.
	for iter := 0; iter < 100; iter++ {
		off := rng.Intn(arena - 1)
		n := 1 + rng.Intn(arena-off-1)
		if n > 6*LineSize {
			n = 1 + rng.Intn(6*LineSize)
		}
		out := make([]byte, n)
		if err := rp.ReadAt(out, int64(off)); err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
		}
		if !bytes.Equal(out, ref[off:off+n]) {
			t.Fatalf("ReadAt(%d, %d) mismatch", off, n)
		}
	}
}

// TestWrPtlMaskCorrectness checks the byte mask directly: a partial
// write must touch exactly the masked bytes.
func TestWrPtlMaskCorrectness(t *testing.T) {
	rp, _ := burstPort(t, 1<<20)
	base := make([]byte, LineSize)
	for i := range base {
		base[i] = 0xEE
	}
	if err := rp.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	// Sub-line write [5, 9).
	if err := rp.WriteAt([]byte{1, 2, 3, 4}, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, LineSize)
	if err := rp.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, LineSize)
	copy(want, base)
	copy(want[5:9], []byte{1, 2, 3, 4})
	if !bytes.Equal(got, want) {
		t.Errorf("mask write result:\n got %v\nwant %v", got[:16], want[:16])
	}
}

// TestZeroAllocSteadyState is the allocation-regression guard: the
// line and burst data paths must not allocate per operation.
func TestZeroAllocSteadyState(t *testing.T) {
	rp, _ := burstPort(t, 1<<20)
	var line [LineSize]byte
	buf := make([]byte, 8*LineSize)
	// Warm up: materialise sparse-store pages and pool buffers.
	if err := rp.WriteBurst(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := rp.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(){
		"WriteLine":  func() { _ = rp.WriteLine(0, &line) },
		"ReadLine":   func() { _ = rp.ReadLine(0, &line) },
		"WriteBurst": func() { _ = rp.WriteBurst(0, buf) },
		"ReadBurst":  func() { _ = rp.ReadBurst(0, buf) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestBurstAgreesWithLineDecodeOnOverlap guards decoder-selection
// consistency: when an interleaved decoder and a plain decoder overlap
// the same HPA range, bursts must resolve addresses through the same
// decoder per-line transactions use (first match in programming
// order), falling back to per-line decode rather than fast-pathing
// through the wrong window.
func TestBurstAgreesWithLineDecodeOnOverlap(t *testing.T) {
	dev := testType3(t)
	// Interleaved decoder programmed first: this device owns the even
	// 256 B granules of [0, 1 MiB).
	if err := dev.ProgramDecoder(&HDMDecoder{
		Base: 0, Size: 1 << 20, InterleaveWays: 2, InterleaveGranule: 256, TargetIndex: 0,
	}); err != nil {
		t.Fatal(err)
	}
	// Overlapping plain decoder onto a different DPA range.
	if err := dev.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20, DPABase: 2 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, dev)
	in := make([]byte, 4*LineSize) // within one owned granule
	for i := range in {
		in[i] = byte(i + 1)
	}
	if err := rp.WriteBurst(0, in); err != nil {
		t.Fatal(err)
	}
	// Per-line reads must observe exactly what the burst wrote.
	for i := 0; i < 4; i++ {
		var line [LineSize]byte
		if err := rp.ReadLine(uint64(i*LineSize), &line); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line[:], in[i*LineSize:(i+1)*LineSize]) {
			t.Fatalf("line %d: burst and line transactions disagree on the target DPA", i)
		}
	}
}

// TestBurstMailboxPoison covers the span-granular RAS path: poison
// injected through the device mailbox must fail bursts over the
// poisoned span (contiguous fast path included) and clear cleanly.
func TestBurstMailboxPoison(t *testing.T) {
	rp, dev := burstPort(t, 1<<20)
	mb, err := NewMailbox(dev, "test-fw")
	if err != nil {
		t.Fatal(err)
	}
	var addr [8]byte
	poisonDPA := uint64(5 * LineSize)
	for i := 0; i < 8; i++ {
		addr[i] = byte(poisonDPA >> (8 * i))
	}
	if _, status := mb.Execute(OpInjectPoison, addr[:]); status != MboxSuccess {
		t.Fatalf("inject poison: %v", status)
	}
	buf := make([]byte, 8*LineSize)
	if err := rp.ReadBurst(0, buf); err == nil {
		t.Error("burst over mailbox-poisoned line accepted")
	}
	if err := rp.ReadBurst(8*uint64(LineSize), buf); err != nil {
		t.Errorf("burst clear of poison failed: %v", err)
	}
	if _, status := mb.Execute(OpClearPoison, addr[:]); status != MboxSuccess {
		t.Fatalf("clear poison: %v", status)
	}
	if err := rp.ReadBurst(0, buf); err != nil {
		t.Errorf("burst after poison clear failed: %v", err)
	}
}
