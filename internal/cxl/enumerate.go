package cxl

import (
	"fmt"

	"cxlpmem/internal/units"
)

// Enumeration: the boot-time walk that discovers CXL endpoints behind
// root ports, verifies their DVSECs, carves HPA windows out of the
// system's CXL fixed memory window, and programs the devices' HDM
// decoders. The result is what the OS would surface as CXL NUMA nodes
// ("the FPGA device is duly enumerated as a CXL endpoint within the host
// system", §2.2).

// DefaultCXLWindowBase is the first host physical address handed to CXL
// memory; chosen above any plausible DRAM so windows never collide with
// system memory.
const DefaultCXLWindowBase uint64 = 0x10_0000_0000 // 64 GiB

// MemWindow records one enumerated HPA range backed by a Type-3 (or
// Type-2) endpoint.
type MemWindow struct {
	// Port is the root port the window is reached through.
	Port *RootPort
	// Endpoint owning the HDM.
	Endpoint Endpoint
	// Base and Size delimit the HPA range.
	Base uint64
	Size uint64
}

// Contains reports whether hpa falls in the window.
func (w MemWindow) Contains(hpa uint64) bool {
	return hpa >= w.Base && hpa < w.Base+w.Size
}

func (w MemWindow) String() string {
	return fmt.Sprintf("[%#x, %#x) -> %s via %s", w.Base, w.Base+w.Size, w.Endpoint.Name(), w.Port.Name())
}

// Hierarchy is the result of enumeration.
type Hierarchy struct {
	Ports   []*RootPort
	Windows []MemWindow
}

// Enumerate walks the given root ports. For every trained endpoint that
// advertises CXL.mem it allocates an HPA window at and after base
// (DefaultCXLWindowBase if base is zero) and programs a single full-range
// HDM decoder. Endpoints without CXL.mem (Type 1) are listed but receive
// no window.
func Enumerate(base uint64, ports ...*RootPort) (*Hierarchy, error) {
	if base == 0 {
		base = DefaultCXLWindowBase
	}
	h := &Hierarchy{Ports: ports}
	next := base
	for _, rp := range ports {
		ep := rp.Endpoint()
		if ep == nil || rp.State() != LinkUp {
			continue
		}
		dvsec, ok := ep.Config().FindCXLDVSEC()
		if !ok {
			return nil, fmt.Errorf("cxl: enumerate: %s trained but has no DVSEC", ep.Name())
		}
		if dvsec.Caps&CapMem == 0 {
			continue // Type 1: no HDM to map.
		}
		if dvsec.HDMSize == 0 {
			return nil, fmt.Errorf("cxl: enumerate: %s advertises CXL.mem with zero HDM", ep.Name())
		}
		type3, ok := ep.(interface{ ProgramDecoder(*HDMDecoder) error })
		if !ok {
			return nil, fmt.Errorf("cxl: enumerate: %s advertises CXL.mem but cannot program decoders", ep.Name())
		}
		dec := &HDMDecoder{Base: next, Size: dvsec.HDMSize}
		if err := type3.ProgramDecoder(dec); err != nil {
			return nil, fmt.Errorf("cxl: enumerate: %s: %w", ep.Name(), err)
		}
		h.Windows = append(h.Windows, MemWindow{Port: rp, Endpoint: ep, Base: next, Size: dvsec.HDMSize})
		next += alignUp(dvsec.HDMSize, 1<<30) // 1 GiB window alignment
	}
	return h, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// WindowFor returns the window containing hpa.
func (h *Hierarchy) WindowFor(hpa uint64) (MemWindow, bool) {
	for _, w := range h.Windows {
		if w.Contains(hpa) {
			return w, true
		}
	}
	return MemWindow{}, false
}

// TotalHDM sums the enumerated HDM capacity.
func (h *Hierarchy) TotalHDM() units.Size {
	var total uint64
	for _, w := range h.Windows {
		total += w.Size
	}
	return units.Size(total)
}

// Describe renders a `cxl list`-style summary.
func (h *Hierarchy) Describe() string {
	s := fmt.Sprintf("CXL hierarchy: %d port(s), %d memory window(s), %s HDM total\n",
		len(h.Ports), len(h.Windows), h.TotalHDM())
	for _, rp := range h.Ports {
		ep := rp.Endpoint()
		if ep == nil {
			s += fmt.Sprintf("  %s: link %s, empty\n", rp.Name(), rp.State())
			continue
		}
		dvsec, _ := ep.Config().FindCXLDVSEC()
		s += fmt.Sprintf("  %s: link %s, %s %s (vendor %#04x device %#04x, caps %s)\n",
			rp.Name(), rp.State(), ep.Name(), ep.DeviceType(),
			ep.Config().VendorID(), ep.Config().DeviceID(), dvsec.Caps)
	}
	for _, w := range h.Windows {
		s += "  window " + w.String() + "\n"
	}
	return s
}
