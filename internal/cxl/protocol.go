// Package cxl implements the Compute Express Link substrate the paper's
// prototype is built on: the CXL.mem transaction layer that carries
// MemRd/MemWr requests from the CPU host to host-managed device memory
// (HDM), the CXL.io path used for configuration and enumeration, the HDM
// address decoder, Type 1/2/3 endpoint classes (CXL 1.1/2.0, §1.3), and a
// CXL 2.0 switch with device-level memory pooling.
//
// The layering mirrors the paper's §2.2 description of the FPGA
// prototype: a link layer ("R-Tile Hard IP", modelled in internal/fpga)
// establishes the connection, the CXL.mem transaction layer "adeptly
// handles incoming CXL.mem requests originating from the CPU host" and
// generates HDM requests toward an HDM subsystem, and the CXL.io
// transaction layer processes configuration and memory-space requests.
package cxl

import (
	"encoding/binary"
	"fmt"

	"cxlpmem/internal/units"
)

// LineSize is the CXL.mem transfer granule: one 64-byte cache line per
// request/data message.
const LineSize = int(units.CacheLine)

// MemOpcode enumerates the master-to-subordinate (M2S) request opcodes we
// model from the CXL.mem protocol.
type MemOpcode uint8

const (
	// OpMemInv invalidates device-tracked coherency state. In the
	// prototype's Type-3 flow it is a metadata-only round trip.
	OpMemInv MemOpcode = iota
	// OpMemRd requests a full line of data.
	OpMemRd
	// OpMemWr writes a full 64-byte line.
	OpMemWr
	// OpMemWrPtl writes a partial line under a byte mask.
	OpMemWrPtl
)

func (o MemOpcode) String() string {
	switch o {
	case OpMemInv:
		return "MemInv"
	case OpMemRd:
		return "MemRd"
	case OpMemWr:
		return "MemWr"
	case OpMemWrPtl:
		return "MemWrPtl"
	default:
		return fmt.Sprintf("MemOpcode(%d)", uint8(o))
	}
}

// RespOpcode enumerates subordinate-to-master (S2M) responses: no-data
// responses (NDR) and data responses (DRS).
type RespOpcode uint8

const (
	// RespCmp completes a write or invalidate (NDR).
	RespCmp RespOpcode = iota
	// RespMemData carries a full line back to the host (DRS).
	RespMemData
	// RespErr reports an access outside any HDM range or a device
	// fault. Poison in real CXL; a typed error here.
	RespErr
)

func (o RespOpcode) String() string {
	switch o {
	case RespCmp:
		return "Cmp"
	case RespMemData:
		return "MemData"
	case RespErr:
		return "Err"
	default:
		return fmt.Sprintf("RespOpcode(%d)", uint8(o))
	}
}

// MemReq is one M2S CXL.mem request. Addr is a host physical address
// (HPA), line-aligned for full-line ops.
type MemReq struct {
	Opcode MemOpcode
	Addr   uint64
	Tag    uint16
	// Data carries the payload for MemWr/MemWrPtl.
	Data [LineSize]byte
	// Mask selects valid bytes for MemWrPtl (bit i covers Data[i]).
	Mask uint64
}

// MemResp is one S2M response.
type MemResp struct {
	Opcode RespOpcode
	Tag    uint16
	Data   [LineSize]byte
}

// FlitSize is the CXL 1.1/2.0 flit size in bytes: 64 bytes of slots plus
// 2 bytes of CRC and 2 bytes of protocol ID.
const FlitSize = 68

// Flit is the wire representation of a single request or response. The
// encoding is a faithful-to-the-shape simplification: a 16-byte header
// slot followed by the 64-byte... the payload shares the remaining slots,
// so a full-line message occupies two flits on a real link; the codec
// packs header and payload into one Flit-sized buffer plus an overflow
// region and accounts for the true wire cost via WireFlits.
type Flit struct {
	raw []byte
}

// Flit header layout (byte offsets in raw):
//
//	0     kind: 0 = request, 1 = response
//	1     opcode
//	2:4   tag (little endian)
//	4:12  address (requests) / zero (responses)
//	12:20 mask (MemWrPtl) / zero
//	20:84 data payload
//	84:88 CRC32-style checksum (sum-based, detects corruption in tests)
const flitHeaderSize = 20
const flitRawSize = flitHeaderSize + LineSize + 4

const (
	flitKindReq  = 0
	flitKindResp = 1
)

func flitChecksum(b []byte) uint32 {
	// FNV-1a over the body; cheap and deterministic.
	var h uint32 = 2166136261
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// EncodeReq serialises a request.
func EncodeReq(r MemReq) Flit {
	raw := make([]byte, flitRawSize)
	raw[0] = flitKindReq
	raw[1] = byte(r.Opcode)
	binary.LittleEndian.PutUint16(raw[2:4], r.Tag)
	binary.LittleEndian.PutUint64(raw[4:12], r.Addr)
	binary.LittleEndian.PutUint64(raw[12:20], r.Mask)
	copy(raw[flitHeaderSize:flitHeaderSize+LineSize], r.Data[:])
	binary.LittleEndian.PutUint32(raw[flitHeaderSize+LineSize:], flitChecksum(raw[:flitHeaderSize+LineSize]))
	return Flit{raw: raw}
}

// EncodeResp serialises a response.
func EncodeResp(r MemResp) Flit {
	raw := make([]byte, flitRawSize)
	raw[0] = flitKindResp
	raw[1] = byte(r.Opcode)
	binary.LittleEndian.PutUint16(raw[2:4], r.Tag)
	copy(raw[flitHeaderSize:flitHeaderSize+LineSize], r.Data[:])
	binary.LittleEndian.PutUint32(raw[flitHeaderSize+LineSize:], flitChecksum(raw[:flitHeaderSize+LineSize]))
	return Flit{raw: raw}
}

// ErrFlit reports a malformed or corrupted flit.
type ErrFlit struct{ Reason string }

func (e *ErrFlit) Error() string { return "cxl: bad flit: " + e.Reason }

func (f Flit) check() error {
	if len(f.raw) != flitRawSize {
		return &ErrFlit{Reason: fmt.Sprintf("size %d, want %d", len(f.raw), flitRawSize)}
	}
	want := binary.LittleEndian.Uint32(f.raw[flitHeaderSize+LineSize:])
	if got := flitChecksum(f.raw[:flitHeaderSize+LineSize]); got != want {
		return &ErrFlit{Reason: "checksum mismatch"}
	}
	return nil
}

// DecodeReq parses a request flit.
func DecodeReq(f Flit) (MemReq, error) {
	if err := f.check(); err != nil {
		return MemReq{}, err
	}
	if f.raw[0] != flitKindReq {
		return MemReq{}, &ErrFlit{Reason: "not a request flit"}
	}
	var r MemReq
	r.Opcode = MemOpcode(f.raw[1])
	if r.Opcode > OpMemWrPtl {
		return MemReq{}, &ErrFlit{Reason: fmt.Sprintf("unknown opcode %d", f.raw[1])}
	}
	r.Tag = binary.LittleEndian.Uint16(f.raw[2:4])
	r.Addr = binary.LittleEndian.Uint64(f.raw[4:12])
	r.Mask = binary.LittleEndian.Uint64(f.raw[12:20])
	copy(r.Data[:], f.raw[flitHeaderSize:flitHeaderSize+LineSize])
	return r, nil
}

// DecodeResp parses a response flit.
func DecodeResp(f Flit) (MemResp, error) {
	if err := f.check(); err != nil {
		return MemResp{}, err
	}
	if f.raw[0] != flitKindResp {
		return MemResp{}, &ErrFlit{Reason: "not a response flit"}
	}
	var r MemResp
	r.Opcode = RespOpcode(f.raw[1])
	if r.Opcode > RespErr {
		return MemResp{}, &ErrFlit{Reason: fmt.Sprintf("unknown response opcode %d", f.raw[1])}
	}
	r.Tag = binary.LittleEndian.Uint16(f.raw[2:4])
	copy(r.Data[:], f.raw[flitHeaderSize:flitHeaderSize+LineSize])
	return r, nil
}

// Corrupt flips one payload bit; used by fault-injection tests.
func (f Flit) Corrupt(bit int) Flit {
	out := make([]byte, len(f.raw))
	copy(out, f.raw)
	idx := flitHeaderSize + (bit/8)%LineSize
	out[idx] ^= 1 << (bit % 8)
	return Flit{raw: out}
}

// WireFlits returns how many 68-byte flits a message of the given opcode
// occupies on the link: header-only messages take one flit, full-line
// data messages take the header flit plus a data flit.
func WireFlits(hasData bool) int {
	if hasData {
		return 2
	}
	return 1
}

// WireBytes returns the wire cost in bytes of one request/response pair
// moving a full line in the given direction. Reads cost a 1-flit request
// and a 2-flit data response; writes cost a 2-flit request and a 1-flit
// completion. This 3×68/64 ≈ 3.19 bytes-per-payload-byte round-trip
// framing is what derates the Gen5 raw 64 GB/s toward the effective caps
// used by the performance model.
func WireBytes(op MemOpcode) int {
	switch op {
	case OpMemRd:
		return FlitSize * (WireFlits(false) + WireFlits(true))
	case OpMemWr, OpMemWrPtl:
		return FlitSize * (WireFlits(true) + WireFlits(false))
	default:
		return FlitSize * 2
	}
}

// ProtocolEfficiency is the payload fraction of wire traffic for a
// full-line transfer (64 payload bytes over three 68-byte flits per
// round trip, in the bottleneck direction two flits carry it): the
// useful-byte fraction of the data-direction traffic.
func ProtocolEfficiency() float64 {
	return float64(LineSize) / float64(2*FlitSize)
}
