// Package cxl implements the Compute Express Link substrate the paper's
// prototype is built on: the CXL.mem transaction layer that carries
// MemRd/MemWr requests from the CPU host to host-managed device memory
// (HDM), the CXL.io path used for configuration and enumeration, the HDM
// address decoder, Type 1/2/3 endpoint classes (CXL 1.1/2.0, §1.3), and a
// CXL 2.0 switch with device-level memory pooling.
//
// The layering mirrors the paper's §2.2 description of the FPGA
// prototype: a link layer ("R-Tile Hard IP", modelled in internal/fpga)
// establishes the connection, the CXL.mem transaction layer "adeptly
// handles incoming CXL.mem requests originating from the CPU host" and
// generates HDM requests toward an HDM subsystem, and the CXL.io
// transaction layer processes configuration and memory-space requests.
package cxl

import (
	"encoding/binary"
	"fmt"

	"cxlpmem/internal/units"
)

// LineSize is the CXL.mem transfer granule: one 64-byte cache line per
// request/data message.
const LineSize = int(units.CacheLine)

// MemOpcode enumerates the master-to-subordinate (M2S) request opcodes we
// model from the CXL.mem protocol.
type MemOpcode uint8

const (
	// OpMemInv invalidates device-tracked coherency state. In the
	// prototype's Type-3 flow it is a metadata-only round trip.
	OpMemInv MemOpcode = iota
	// OpMemRd requests a full line of data.
	OpMemRd
	// OpMemWr writes a full 64-byte line.
	OpMemWr
	// OpMemWrPtl writes a partial line under a byte mask.
	OpMemWrPtl
	// OpMemRdBurst requests Lines back-to-back cache lines starting at
	// Addr: one header flit out, a response header plus Lines all-data
	// flits back (CXL's streaming all-data-flit mode).
	OpMemRdBurst
	// OpMemWrBurst writes Lines back-to-back cache lines starting at
	// Addr: a header flit followed by Lines all-data flits, completed by
	// a single Cmp.
	OpMemWrBurst
)

func (o MemOpcode) String() string {
	switch o {
	case OpMemInv:
		return "MemInv"
	case OpMemRd:
		return "MemRd"
	case OpMemWr:
		return "MemWr"
	case OpMemWrPtl:
		return "MemWrPtl"
	case OpMemRdBurst:
		return "MemRdBurst"
	case OpMemWrBurst:
		return "MemWrBurst"
	default:
		return fmt.Sprintf("MemOpcode(%d)", uint8(o))
	}
}

// RespOpcode enumerates subordinate-to-master (S2M) responses: no-data
// responses (NDR) and data responses (DRS).
type RespOpcode uint8

const (
	// RespCmp completes a write or invalidate (NDR).
	RespCmp RespOpcode = iota
	// RespMemData carries a full line back to the host (DRS).
	RespMemData
	// RespErr reports an access outside any HDM range or a device
	// fault. Poison in real CXL; a typed error here.
	RespErr
)

func (o RespOpcode) String() string {
	switch o {
	case RespCmp:
		return "Cmp"
	case RespMemData:
		return "MemData"
	case RespErr:
		return "Err"
	default:
		return fmt.Sprintf("RespOpcode(%d)", uint8(o))
	}
}

// MaxBurstLines caps how many data flits one burst header may carry:
// 64 lines = 4 KiB, the sweet spot between header amortisation and the
// link-layer retry buffer a real LRSM would need to hold.
const MaxBurstLines = 64

// MemReq is one M2S CXL.mem request. Addr is a host physical address
// (HPA), line-aligned for full-line ops.
type MemReq struct {
	Opcode MemOpcode
	Addr   uint64
	Tag    uint16
	// Lines is the data-flit count for OpMemRdBurst/OpMemWrBurst
	// (1..MaxBurstLines); zero for single-line opcodes.
	Lines uint16
	// Data carries the payload for MemWr/MemWrPtl. Burst payloads travel
	// in dedicated data flits, not in the header.
	Data [LineSize]byte
	// Mask selects valid bytes for MemWrPtl (bit i covers Data[i]).
	Mask uint64
}

// MemResp is one S2M response.
type MemResp struct {
	Opcode RespOpcode
	Tag    uint16
	Data   [LineSize]byte
}

// FlitSize is the CXL 1.1/2.0 flit size in bytes: 64 bytes of slots plus
// 2 bytes of CRC and 2 bytes of protocol ID.
const FlitSize = 68

// Flit header layout (byte offsets in raw):
//
// The header is three full 64-bit words so encode and decode move whole
// aligned words (partial stores into a word the checksum immediately
// reloads would stall on store forwarding):
//
//	0     kind: 0 = request, 1 = response, 2 = burst data
//	1     opcode
//	2:4   tag (little endian)
//	4:6   burst line count (MemRdBurst/MemWrBurst) / zero
//	6:8   reserved
//	8:16  address (requests) / sequence number (data flits) / zero
//	16:24 mask (MemWrPtl) / zero
//	24:88 data payload
//	88:92 checksum (word-folded, detects corruption in tests)
const flitHeaderSize = 24
const flitBodySize = flitHeaderSize + LineSize
const flitRawSize = flitBodySize + 4

const (
	flitKindReq   = 0
	flitKindResp  = 1
	flitKindData  = 2
	flitKindBISnp = 3
	flitKindBIRsp = 4
	// flitKindSQ packs up to 4 header-only submission entries (MemRd /
	// MemInv descriptors: opcode, tag, address) into one flit's payload
	// slots — the ring data path's slot packing (CXL flits genuinely
	// carry multiple slots; see ring.go).
	flitKindSQ = 5
	// flitKindCQ packs up to 4 completion entries (status, tag,
	// address) into one flit — the completion-queue return path.
	flitKindCQ = 6
)

// Flit is the wire representation of a single request, response or burst
// data beat. It is a fixed-size value type: the hot path encodes into a
// caller-held Flit and never touches the heap. The encoding is a
// faithful-to-the-shape simplification: a header slot followed by the
// 64-byte payload; a full-line message occupies two flits on a real
// link, which the WireFlits/WireBytes accounting preserves.
type Flit struct {
	_   [0]uint64 // force 8-byte alignment for the word-wise checksum
	raw [flitRawSize]byte
}

// flitChecksum hashes the 88-byte flit body 8 bytes at a time
// (binary.LittleEndian.Uint64 loads): four independent rotate-xor lanes
// stride across the 11 body words so the accumulation is GF(2)-linear —
// any single-bit corruption flips at least one state bit, exactly the
// guarantee a CRC gives — while keeping the dependency chains short
// enough that a flit costs single-digit nanoseconds to seal or check.
// A multiplicative avalanche (splitmix64 finalizer) then folds the
// combined state to the stored 32 bits. This is the burst path's inner
// loop: every data beat is sealed once and checked once.
func flitChecksum(b *[flitRawSize]byte) uint32 {
	const rot = 13
	h0 := uint64(0x9E3779B97F4A7C15)
	h1 := uint64(0xC2B2AE3D27D4EB4F)
	h2 := uint64(0x165667B19E3779F9)
	h3 := uint64(0x27D4EB2F165667C5)
	h0 = (h0<<rot | h0>>(64-rot)) ^ binary.LittleEndian.Uint64(b[0:])
	h1 = (h1<<rot | h1>>(64-rot)) ^ binary.LittleEndian.Uint64(b[8:])
	h2 = (h2<<rot | h2>>(64-rot)) ^ binary.LittleEndian.Uint64(b[16:])
	h3 = (h3<<rot | h3>>(64-rot)) ^ binary.LittleEndian.Uint64(b[24:])
	h0 = (h0<<rot | h0>>(64-rot)) ^ binary.LittleEndian.Uint64(b[32:])
	h1 = (h1<<rot | h1>>(64-rot)) ^ binary.LittleEndian.Uint64(b[40:])
	h2 = (h2<<rot | h2>>(64-rot)) ^ binary.LittleEndian.Uint64(b[48:])
	h3 = (h3<<rot | h3>>(64-rot)) ^ binary.LittleEndian.Uint64(b[56:])
	h0 = (h0<<rot | h0>>(64-rot)) ^ binary.LittleEndian.Uint64(b[64:])
	h1 = (h1<<rot | h1>>(64-rot)) ^ binary.LittleEndian.Uint64(b[72:])
	h2 = (h2<<rot | h2>>(64-rot)) ^ binary.LittleEndian.Uint64(b[80:])
	h := h0 ^ (h1<<17 | h1>>47) ^ (h2<<31 | h2>>33) ^ (h3<<47 | h3>>17)
	h ^= h >> 33
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return uint32(h ^ h>>32)
}

func (f *Flit) seal() {
	binary.LittleEndian.PutUint32(f.raw[flitBodySize:], flitChecksum(&f.raw))
}

// EncodeReqInto serialises a request into a caller-held flit buffer
// without allocating.
func EncodeReqInto(f *Flit, r *MemReq) {
	binary.LittleEndian.PutUint64(f.raw[0:8],
		flitKindReq|uint64(r.Opcode)<<8|uint64(r.Tag)<<16|uint64(r.Lines)<<32)
	binary.LittleEndian.PutUint64(f.raw[8:16], r.Addr)
	binary.LittleEndian.PutUint64(f.raw[16:24], r.Mask)
	copy(f.raw[flitHeaderSize:flitHeaderSize+LineSize], r.Data[:])
	f.seal()
}

// EncodeReqFieldsInto serialises a single-line request held as loose
// fields (the ring descriptor's layout), so the ring's write path moves
// the payload onto the wire without staging an intermediate MemReq.
// Wire format matches EncodeReqInto with Lines=0.
func EncodeReqFieldsInto(f *Flit, op MemOpcode, tag uint16, addr, mask uint64, data *[LineSize]byte) {
	binary.LittleEndian.PutUint64(f.raw[0:8],
		flitKindReq|uint64(op)<<8|uint64(tag)<<16)
	binary.LittleEndian.PutUint64(f.raw[8:16], addr)
	binary.LittleEndian.PutUint64(f.raw[16:24], mask)
	copy(f.raw[flitHeaderSize:flitHeaderSize+LineSize], data[:])
	f.seal()
}

// EncodeReq serialises a request.
func EncodeReq(r MemReq) Flit {
	var f Flit
	EncodeReqInto(&f, &r)
	return f
}

// EncodeRespInto serialises a response into a caller-held flit buffer
// without allocating.
func EncodeRespInto(f *Flit, r *MemResp) {
	binary.LittleEndian.PutUint64(f.raw[0:8],
		flitKindResp|uint64(r.Opcode)<<8|uint64(r.Tag)<<16)
	binary.LittleEndian.PutUint64(f.raw[8:16], 0)
	binary.LittleEndian.PutUint64(f.raw[16:24], 0)
	copy(f.raw[flitHeaderSize:flitHeaderSize+LineSize], r.Data[:])
	f.seal()
}

// EncodeResp serialises a response.
func EncodeResp(r MemResp) Flit {
	var f Flit
	EncodeRespInto(&f, &r)
	return f
}

// EncodeDataInto serialises one burst data beat: tag matches the burst
// header, seq is the line index within the burst.
func EncodeDataInto(f *Flit, tag uint16, seq uint32, payload *[LineSize]byte) {
	binary.LittleEndian.PutUint64(f.raw[0:8], flitKindData|uint64(tag)<<16)
	binary.LittleEndian.PutUint64(f.raw[8:16], uint64(seq))
	binary.LittleEndian.PutUint64(f.raw[16:24], 0)
	copy(f.raw[flitHeaderSize:flitHeaderSize+LineSize], payload[:])
	f.seal()
}

// ErrFlit reports a malformed or corrupted flit.
type ErrFlit struct{ Reason string }

func (e *ErrFlit) Error() string { return "cxl: bad flit: " + e.Reason }

var errChecksum = &ErrFlit{Reason: "checksum mismatch"}

func (f *Flit) check() error {
	want := binary.LittleEndian.Uint32(f.raw[flitBodySize:])
	if got := flitChecksum(&f.raw); got != want {
		return errChecksum
	}
	return nil
}

// DecodeReqInto parses a request flit into r without allocating.
func DecodeReqInto(r *MemReq, f *Flit) error {
	if err := f.check(); err != nil {
		return err
	}
	if f.raw[0] != flitKindReq {
		return &ErrFlit{Reason: "not a request flit"}
	}
	w0 := binary.LittleEndian.Uint64(f.raw[0:8])
	r.Opcode = MemOpcode(w0 >> 8)
	if r.Opcode > OpMemWrBurst {
		return &ErrFlit{Reason: fmt.Sprintf("unknown opcode %d", f.raw[1])}
	}
	r.Tag = uint16(w0 >> 16)
	r.Lines = uint16(w0 >> 32)
	r.Addr = binary.LittleEndian.Uint64(f.raw[8:16])
	r.Mask = binary.LittleEndian.Uint64(f.raw[16:24])
	copy(r.Data[:], f.raw[flitHeaderSize:flitHeaderSize+LineSize])
	return nil
}

// DecodeReq parses a request flit.
func DecodeReq(f Flit) (MemReq, error) {
	var r MemReq
	if err := DecodeReqInto(&r, &f); err != nil {
		return MemReq{}, err
	}
	return r, nil
}

// DecodeRespInto parses a response flit into r without allocating.
func DecodeRespInto(r *MemResp, f *Flit) error {
	if err := f.check(); err != nil {
		return err
	}
	if f.raw[0] != flitKindResp {
		return &ErrFlit{Reason: "not a response flit"}
	}
	w0 := binary.LittleEndian.Uint64(f.raw[0:8])
	r.Opcode = RespOpcode(w0 >> 8)
	if r.Opcode > RespErr {
		return &ErrFlit{Reason: fmt.Sprintf("unknown response opcode %d", f.raw[1])}
	}
	r.Tag = uint16(w0 >> 16)
	copy(r.Data[:], f.raw[flitHeaderSize:flitHeaderSize+LineSize])
	return nil
}

// DecodeResp parses a response flit.
func DecodeResp(f Flit) (MemResp, error) {
	var r MemResp
	if err := DecodeRespInto(&r, &f); err != nil {
		return MemResp{}, err
	}
	return r, nil
}

// DecodeDataInto parses a burst data beat into out, returning the tag
// and sequence number carried in its header.
func DecodeDataInto(out *[LineSize]byte, f *Flit) (tag uint16, seq uint32, err error) {
	if err := f.check(); err != nil {
		return 0, 0, err
	}
	if f.raw[0] != flitKindData {
		return 0, 0, &ErrFlit{Reason: "not a data flit"}
	}
	tag = uint16(binary.LittleEndian.Uint64(f.raw[0:8]) >> 16)
	seq = uint32(binary.LittleEndian.Uint64(f.raw[8:16]))
	copy(out[:], f.raw[flitHeaderSize:flitHeaderSize+LineSize])
	return tag, seq, nil
}

// Corrupt flips one payload bit; used by fault-injection tests.
func (f Flit) Corrupt(bit int) Flit {
	idx := flitHeaderSize + (bit/8)%LineSize
	f.raw[idx] ^= 1 << (bit % 8)
	return f
}

// WireFlits returns how many 68-byte flits a message of the given opcode
// occupies on the link: header-only messages take one flit, full-line
// data messages take the header flit plus a data flit.
func WireFlits(hasData bool) int {
	if hasData {
		return 2
	}
	return 1
}

// WireBytes returns the wire cost in bytes of one request/response pair
// moving a full line in the given direction. Reads cost a 1-flit request
// and a 2-flit data response; writes cost a 2-flit request and a 1-flit
// completion. This 3×68/64 ≈ 3.19 bytes-per-payload-byte round-trip
// framing is what derates the Gen5 raw 64 GB/s toward the effective caps
// used by the performance model.
func WireBytes(op MemOpcode) int {
	switch op {
	case OpMemRd:
		return FlitSize * (WireFlits(false) + WireFlits(true))
	case OpMemWr, OpMemWrPtl:
		return FlitSize * (WireFlits(true) + WireFlits(false))
	default:
		return FlitSize * 2
	}
}

// BurstWireBytes returns the round-trip wire cost of one burst of the
// given line count: a header flit, lines all-data flits, and a
// completion/response header — (2+lines)×68 in either direction.
func BurstWireBytes(lines int) int {
	return FlitSize * (2 + lines)
}

// ProtocolEfficiency is the payload fraction of wire traffic for a
// full-line transfer (64 payload bytes over three 68-byte flits per
// round trip, in the bottleneck direction two flits carry it): the
// useful-byte fraction of the data-direction traffic.
func ProtocolEfficiency() float64 {
	return float64(LineSize) / float64(2*FlitSize)
}

// BurstProtocolEfficiency is the payload fraction of round-trip wire
// traffic for an n-line burst: n×64 useful bytes over (2+n) flits. At
// MaxBurstLines this approaches LineSize/FlitSize ≈ 0.94, the all-data-
// flit streaming efficiency §2.2 argues the CXL standard permits.
func BurstProtocolEfficiency(lines int) float64 {
	if lines < 1 {
		lines = 1
	}
	return float64(lines*LineSize) / float64(BurstWireBytes(lines))
}

// --- Back-invalidate channel (CXL 3.0) -----------------------------------
//
// CXL 3.0 adds a subordinate-to-master Back-Invalidate Snoop channel
// (S2M BISnp) and its master-to-subordinate response (M2S BIRsp): a
// Type-3 device that tracks coherency state — a snoop-filter directory
// over shared HDM — can recall a line from the host that caches it
// before granting a conflicting access to another host. Dirty data does
// NOT ride in the response: as on real hardware, the snooped host
// writes the line back through its normal CXL.mem write path and the
// BIRsp carries only the resulting state, which is why BIRsp is a
// header-only message.

// BISnpOpcode enumerates the snoop flavours the directory issues.
type BISnpOpcode uint8

const (
	// SnpData asks the owner to write back any dirty copy and
	// downgrade to Shared (another host wants to read).
	SnpData BISnpOpcode = iota
	// SnpInv asks the host to write back any dirty copy and drop the
	// line entirely (another host wants exclusive ownership).
	SnpInv
)

func (o BISnpOpcode) String() string {
	switch o {
	case SnpData:
		return "BISnpData"
	case SnpInv:
		return "BISnpInv"
	default:
		return fmt.Sprintf("BISnpOpcode(%d)", uint8(o))
	}
}

// BISnp is one S2M back-invalidate snoop. Addr is the device-relative
// byte address of the 64-byte line (every host maps the shared segment
// at a different HPA; the device's directory speaks DPA).
type BISnp struct {
	Opcode BISnpOpcode
	Addr   uint64
	Tag    uint16
}

// BIRspOpcode enumerates the host's snoop responses.
type BIRspOpcode uint8

const (
	// RspIHit — the host held the line and has invalidated it (any
	// dirty data was written back before this response was sent).
	RspIHit BIRspOpcode = iota
	// RspSHit — the host held the line and retains a Shared copy
	// (SnpData downgrade; dirty data written back first).
	RspSHit
	// RspMiss — the host no longer holds the line. If the directory
	// still records it as a holder, a victim write-back is in flight
	// and the directory must wait for the matching release before
	// granting the conflicting access.
	RspMiss
	// RspRetry — the host could not service the snoop (its dirty
	// write-back failed); its cached state is UNCHANGED and the
	// directory must abort the conflicting grant rather than assume
	// the line was surrendered (CXL's BI conflict/retry flow).
	RspRetry
)

func (o BIRspOpcode) String() string {
	switch o {
	case RspIHit:
		return "BIRspIHit"
	case RspSHit:
		return "BIRspSHit"
	case RspMiss:
		return "BIRspMiss"
	case RspRetry:
		return "BIRspRetry"
	default:
		return fmt.Sprintf("BIRspOpcode(%d)", uint8(o))
	}
}

// BIRsp is one M2S back-invalidate response.
type BIRsp struct {
	Opcode BIRspOpcode
	Tag    uint16
	// Dirty reports that the host wrote modified data back before
	// responding (directory bookkeeping / statistics).
	Dirty bool
}

// EncodeBISnpInto serialises a snoop into a caller-held flit without
// allocating.
func EncodeBISnpInto(f *Flit, s *BISnp) {
	binary.LittleEndian.PutUint64(f.raw[0:8],
		flitKindBISnp|uint64(s.Opcode)<<8|uint64(s.Tag)<<16)
	binary.LittleEndian.PutUint64(f.raw[8:16], s.Addr)
	binary.LittleEndian.PutUint64(f.raw[16:24], 0)
	clearFlitPayload(f)
	f.seal()
}

// DecodeBISnpInto parses a snoop flit into s without allocating.
func DecodeBISnpInto(s *BISnp, f *Flit) error {
	if err := f.check(); err != nil {
		return err
	}
	if f.raw[0] != flitKindBISnp {
		return &ErrFlit{Reason: "not a BISnp flit"}
	}
	w0 := binary.LittleEndian.Uint64(f.raw[0:8])
	s.Opcode = BISnpOpcode(w0 >> 8)
	if s.Opcode > SnpInv {
		return &ErrFlit{Reason: fmt.Sprintf("unknown BISnp opcode %d", f.raw[1])}
	}
	s.Tag = uint16(w0 >> 16)
	s.Addr = binary.LittleEndian.Uint64(f.raw[8:16])
	return nil
}

// EncodeBIRspInto serialises a snoop response into a caller-held flit
// without allocating.
func EncodeBIRspInto(f *Flit, r *BIRsp) {
	var dirty uint64
	if r.Dirty {
		dirty = 1
	}
	binary.LittleEndian.PutUint64(f.raw[0:8],
		flitKindBIRsp|uint64(r.Opcode)<<8|uint64(r.Tag)<<16|dirty<<32)
	binary.LittleEndian.PutUint64(f.raw[8:16], 0)
	binary.LittleEndian.PutUint64(f.raw[16:24], 0)
	clearFlitPayload(f)
	f.seal()
}

// DecodeBIRspInto parses a snoop-response flit into r without
// allocating.
func DecodeBIRspInto(r *BIRsp, f *Flit) error {
	if err := f.check(); err != nil {
		return err
	}
	if f.raw[0] != flitKindBIRsp {
		return &ErrFlit{Reason: "not a BIRsp flit"}
	}
	w0 := binary.LittleEndian.Uint64(f.raw[0:8])
	r.Opcode = BIRspOpcode(w0 >> 8)
	if r.Opcode > RspRetry {
		return &ErrFlit{Reason: fmt.Sprintf("unknown BIRsp opcode %d", f.raw[1])}
	}
	r.Tag = uint16(w0 >> 16)
	r.Dirty = w0>>32&1 == 1
	return nil
}

// --- Packed submission/completion flits (ring data path) -----------------
//
// The ring path amortises header traffic the way CXL's multi-slot flits
// do: data-less messages are 16-byte slot entries, four to a flit. A
// MemRd or MemInv submission carries only opcode+tag+address, so four
// descriptors ride one CRC-protected flit out; a completion carries
// only status+tag+address, so four completions ride one flit back.
// Data-bearing messages (MemWr submissions, MemRd data returns) still
// occupy a full flit each — payload bytes cannot pack.

// SQEntriesPerFlit / CQEntriesPerFlit is the slot-packing factor: four
// 16-byte entries in the 64-byte payload region.
const (
	SQEntriesPerFlit = 4
	CQEntriesPerFlit = 4
)

// SQE is one packed submission entry: a header-only descriptor.
type SQE struct {
	Op   MemOpcode
	Tag  uint16
	Addr uint64
}

// CQE is one packed completion entry.
type CQE struct {
	Status RespOpcode
	Tag    uint16
	Addr   uint64
}

// Packed entry layout (16 bytes, little endian):
//
//	0    opcode / status
//	1    reserved
//	2:4  tag
//	4:8  reserved
//	8:16 address

// EncodeSQInto serialises 1..4 submission entries into a caller-held
// flit without allocating. The entry count travels in the header's
// Lines slot.
func EncodeSQInto(f *Flit, entries []SQE) {
	n := len(entries)
	binary.LittleEndian.PutUint64(f.raw[0:8], flitKindSQ|uint64(n)<<32)
	binary.LittleEndian.PutUint64(f.raw[8:16], 0)
	binary.LittleEndian.PutUint64(f.raw[16:24], 0)
	clearFlitPayload(f)
	for i := 0; i < n; i++ {
		off := flitHeaderSize + i*16
		binary.LittleEndian.PutUint64(f.raw[off:off+8],
			uint64(entries[i].Op)|uint64(entries[i].Tag)<<16)
		binary.LittleEndian.PutUint64(f.raw[off+8:off+16], entries[i].Addr)
	}
	f.seal()
}

// DecodeSQInto parses a packed submission flit into dst, returning the
// entry count.
func DecodeSQInto(dst *[SQEntriesPerFlit]SQE, f *Flit) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	if f.raw[0] != flitKindSQ {
		return 0, &ErrFlit{Reason: "not a packed submission flit"}
	}
	n := int(binary.LittleEndian.Uint64(f.raw[0:8]) >> 32 & 0xffff)
	if n < 1 || n > SQEntriesPerFlit {
		return 0, &ErrFlit{Reason: fmt.Sprintf("submission flit carries %d entries", n)}
	}
	for i := 0; i < n; i++ {
		off := flitHeaderSize + i*16
		w := binary.LittleEndian.Uint64(f.raw[off : off+8])
		dst[i].Op = MemOpcode(w)
		if dst[i].Op > OpMemWrBurst {
			return 0, &ErrFlit{Reason: fmt.Sprintf("unknown opcode %d in submission entry %d", uint8(w), i)}
		}
		dst[i].Tag = uint16(w >> 16)
		dst[i].Addr = binary.LittleEndian.Uint64(f.raw[off+8 : off+16])
	}
	return n, nil
}

// EncodeCQInto serialises 1..4 completion entries into a caller-held
// flit without allocating.
func EncodeCQInto(f *Flit, entries []CQE) {
	n := len(entries)
	binary.LittleEndian.PutUint64(f.raw[0:8], flitKindCQ|uint64(n)<<32)
	binary.LittleEndian.PutUint64(f.raw[8:16], 0)
	binary.LittleEndian.PutUint64(f.raw[16:24], 0)
	clearFlitPayload(f)
	for i := 0; i < n; i++ {
		off := flitHeaderSize + i*16
		binary.LittleEndian.PutUint64(f.raw[off:off+8],
			uint64(entries[i].Status)|uint64(entries[i].Tag)<<16)
		binary.LittleEndian.PutUint64(f.raw[off+8:off+16], entries[i].Addr)
	}
	f.seal()
}

// DecodeCQInto parses a packed completion flit into dst, returning the
// entry count.
func DecodeCQInto(dst *[CQEntriesPerFlit]CQE, f *Flit) (int, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	if f.raw[0] != flitKindCQ {
		return 0, &ErrFlit{Reason: "not a packed completion flit"}
	}
	n := int(binary.LittleEndian.Uint64(f.raw[0:8]) >> 32 & 0xffff)
	if n < 1 || n > CQEntriesPerFlit {
		return 0, &ErrFlit{Reason: fmt.Sprintf("completion flit carries %d entries", n)}
	}
	for i := 0; i < n; i++ {
		off := flitHeaderSize + i*16
		w := binary.LittleEndian.Uint64(f.raw[off : off+8])
		dst[i].Status = RespOpcode(w)
		if dst[i].Status > RespErr {
			return 0, &ErrFlit{Reason: fmt.Sprintf("unknown status %d in completion entry %d", uint8(w), i)}
		}
		dst[i].Tag = uint16(w >> 16)
		dst[i].Addr = binary.LittleEndian.Uint64(f.raw[off+8 : off+16])
	}
	return n, nil
}

// clearFlitPayload zeroes the 64-byte payload slot of a header-only
// message so stale bytes from a reused flit never leak onto the wire.
func clearFlitPayload(f *Flit) {
	for i := flitHeaderSize; i < flitBodySize; i += 8 {
		binary.LittleEndian.PutUint64(f.raw[i:], 0)
	}
}

// Bytes returns the raw wire form of the flit (header, payload and
// checksum). The slice aliases the flit's storage.
func (f *Flit) Bytes() []byte { return f.raw[:] }

// FlitFromBytes reconstructs a flit from raw wire bytes, as a receiver
// deserialising from a physical link would. Short input leaves the
// remainder zero; excess input is truncated. The checksum is NOT
// validated here — decode does that, exactly as for a flit that
// crossed the modelled wire.
func FlitFromBytes(b []byte) Flit {
	var f Flit
	copy(f.raw[:], b)
	return f
}
