package cxl

import (
	"errors"
	"testing"

	"cxlpmem/internal/telemetry"
)

// telemetryPort builds a trained port with telemetry attached, sampling
// every transaction so the tests observe deterministic capture.
func telemetryPort(t *testing.T) (*RootPort, *telemetry.Registry, *telemetry.FlightRecorder) {
	t.Helper()
	rp, _ := burstPort(t, 1<<24)
	reg := telemetry.NewRegistry()
	rec := rp.EnableTelemetry(reg, TelemetryOptions{SampleN: 1, RecorderSlots: 256})
	return rp, reg, rec
}

// gatherValue finds a sample by name+labels and returns its value.
func gatherValue(t *testing.T, reg *telemetry.Registry, name, labels string) float64 {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name == name && s.Labels == labels {
			return s.Value
		}
	}
	t.Fatalf("sample %s%s not gathered", name, labels)
	return 0
}

// TestPortTelemetryCapture drives sampled traffic and checks the flight
// recorder saw the wire and the latency histograms moved.
func TestPortTelemetryCapture(t *testing.T) {
	rp, reg, rec := telemetryPort(t)
	var line [LineSize]byte
	line[0] = 0xAB
	if err := rp.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	var out [LineSize]byte
	if err := rp.ReadLine(0, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAB {
		t.Fatalf("read back %#x", out[0])
	}
	if rec.Recorded() == 0 {
		t.Fatal("sampled traffic recorded no flits")
	}
	dump := rec.Dump()
	kinds := map[uint8]bool{}
	for _, r := range dump {
		if r.Err {
			t.Fatalf("clean traffic recorded an error flit: %+v", r)
		}
		kinds[r.Kind] = true
	}
	// A write + read round trip crosses SQ/CQ (or request) and data
	// flits; at minimum two distinct kinds must appear.
	if len(kinds) < 2 {
		t.Fatalf("dump kinds = %v, want >= 2 distinct", kinds)
	}

	// Latency histograms must have samples for read and write.
	for _, op := range []string{"read", "write"} {
		found := false
		for _, s := range reg.Gather() {
			if s.Name == "cxl_port_latency_ns" && s.Labels == telemetry.Labels("port", rp.Name(), "op", op) {
				found = true
				if s.Hist.Count == 0 {
					t.Errorf("op=%s histogram empty", op)
				}
			}
		}
		if !found {
			t.Errorf("op=%s histogram not gathered", op)
		}
	}

	// The collector view must agree with PortStats.
	st := rp.Stats()
	if got := gatherValue(t, reg, "cxl_port_issued_total", telemetry.Labels("port", rp.Name())); int64(got) != st.Issued {
		t.Errorf("collector issued %v, Stats %d", got, st.Issued)
	}
}

// TestPortTelemetryForcedErrorCapture corrupts flits and checks
// CRC-failed wire images are force-recorded even when the transactions
// are never sampled.
func TestPortTelemetryForcedErrorCapture(t *testing.T) {
	rp, _ := burstPort(t, 1<<24)
	reg := telemetry.NewRegistry()
	// Sample (effectively) never: only forced error records may appear.
	rec := rp.EnableTelemetry(reg, TelemetryOptions{SampleN: 1 << 30, RecorderSlots: 256})
	n := 0
	rp.SetFault(func(f Flit) Flit {
		n++
		if n%3 == 0 {
			f.raw[20] ^= 0xFF
		}
		return f
	})
	var line [LineSize]byte
	for i := 0; i < 8; i++ {
		if err := rp.WriteLine(uint64(i*LineSize), &line); err != nil {
			t.Fatal(err)
		}
	}
	if rp.Stats().Retries == 0 {
		t.Fatal("fault injection produced no retries")
	}
	dump := rec.Dump()
	if len(dump) == 0 {
		t.Fatal("no forced error records in flight recorder")
	}
	for _, r := range dump {
		if !r.Err {
			t.Fatalf("unsampled traffic leaked a clean record: %+v", r)
		}
	}
}

// TestPortTelemetryHookChaining checks that a user trace installed
// after telemetry still fires on sampled transactions (the tap chains
// it) and survives a swap.
func TestPortTelemetryHookChaining(t *testing.T) {
	rp, _, rec := telemetryPort(t)
	traced := 0
	rp.SetFlitTrace(func(Flit) { traced++ })
	var line [LineSize]byte
	if err := rp.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	if traced == 0 {
		t.Fatal("user trace not chained through telemetry tap")
	}
	before := rec.Recorded()
	if before == 0 {
		t.Fatal("recorder not fed alongside user trace")
	}
	rp.SetFlitTrace(nil)
	if err := rp.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() == before {
		t.Fatal("recorder stopped after trace removal")
	}
	rp.DisableTelemetry()
	after := rec.Recorded()
	if err := rp.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() != after {
		t.Fatal("recorder still fed after DisableTelemetry")
	}
	if rp.FlightRecorder() != nil {
		t.Fatal("FlightRecorder non-nil after disable")
	}
}

// TestPortTelemetryBurst checks burst traffic lands in the burst
// histogram and its flits reach the recorder.
func TestPortTelemetryBurst(t *testing.T) {
	rp, reg, rec := telemetryPort(t)
	p := make([]byte, 8*LineSize)
	if err := rp.WriteBurst(0, p); err != nil {
		t.Fatal(err)
	}
	if err := rp.ReadBurst(0, p); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range reg.Gather() {
		if s.Name == "cxl_port_latency_ns" && s.Labels == telemetry.Labels("port", rp.Name(), "op", "burst") {
			found = s.Hist.Count >= 2
		}
	}
	if !found {
		t.Fatal("burst histogram missing or empty")
	}
	sawData := false
	for _, r := range rec.Dump() {
		if r.Kind == flitKindData {
			sawData = true
		}
	}
	if !sawData {
		t.Fatal("burst data flits not recorded")
	}
}

// TestDeviceMetrics checks the Type-3 counter collector.
func TestDeviceMetrics(t *testing.T) {
	rp, dev := burstPort(t, 1<<24)
	reg := telemetry.NewRegistry()
	RegisterDeviceMetrics(reg, dev)
	var line [LineSize]byte
	if err := rp.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	if err := rp.ReadLine(0, &line); err != nil {
		t.Fatal(err)
	}
	labels := telemetry.Labels("dev", dev.Name())
	if got := gatherValue(t, reg, "cxl_dev_reads_total", labels); got < 1 {
		t.Errorf("dev reads = %v, want >= 1", got)
	}
	if got := gatherValue(t, reg, "cxl_dev_writes_total", labels); got < 1 {
		t.Errorf("dev writes = %v, want >= 1", got)
	}
}

// TestSwitchSnoopTrace checks the always-on BISnp/BIRsp capture.
func TestSwitchSnoopTrace(t *testing.T) {
	sw := NewSwitch("sw0")
	dev := testType3(t)
	if err := sw.AddDownstream("dsp0", dev); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bind("vppb0", "dsp0"); err != nil {
		t.Fatal(err)
	}
	if err := sw.RegisterSnooper("vppb0", snooperFunc(func(s BISnp) BIRsp {
		return BIRsp{Tag: s.Tag, Opcode: RspIHit}
	})); err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewFlightRecorder(64)
	RecordSnoops(sw, rec)
	if _, err := sw.Snoop("vppb0", BISnp{Tag: 7, Addr: 4096}); err != nil {
		t.Fatal(err)
	}
	dump := rec.Dump()
	var snp, rsp bool
	for _, r := range dump {
		switch r.Kind {
		case flitKindBISnp:
			snp = true
			if r.Addr != 4096 || r.Tag != 7 {
				t.Errorf("BISnp record %+v", r)
			}
		case flitKindBIRsp:
			rsp = true
		}
	}
	if !snp || !rsp {
		t.Fatalf("snoop capture incomplete: snp=%v rsp=%v (%d records)", snp, rsp, len(dump))
	}
	sw.SetSnoopTrace(nil)
	if _, err := sw.Snoop("vppb0", BISnp{Tag: 8, Addr: 8192}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Recorded(); got != uint64(len(dump)) {
		t.Fatalf("trace still firing after removal: %d records", got)
	}
}

// snooperFunc adapts a function to the Snooper interface.
type snooperFunc func(BISnp) BIRsp

func (f snooperFunc) HandleBISnp(s BISnp) BIRsp { return f(s) }

// TestTelemetryUncorrectable checks the exhausted-retry path still
// reports the error and leaves forced records behind.
func TestTelemetryUncorrectable(t *testing.T) {
	rp, _ := burstPort(t, 1<<24)
	reg := telemetry.NewRegistry()
	rec := rp.EnableTelemetry(reg, TelemetryOptions{SampleN: 1 << 30, RecorderSlots: 64})
	rp.SetFault(func(f Flit) Flit {
		f.raw[20] ^= 0xFF // corrupt every flit: retries exhaust
		return f
	})
	var line [LineSize]byte
	err := rp.WriteLine(0, &line)
	if err == nil {
		t.Fatal("want uncorrectable error")
	}
	var pe *PortError
	if !errors.As(err, &pe) {
		t.Fatalf("error type %T", err)
	}
	// maxLinkRetries+1 attempts, every one force-recorded.
	if got := rec.Recorded(); got < maxLinkRetries+1 {
		t.Fatalf("recorded %d error flits, want >= %d", got, maxLinkRetries+1)
	}
}
