package cxl

import (
	"bytes"
	"testing"

	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/units"
)

func TestSwitchBindUnbind(t *testing.T) {
	sw := NewSwitch("sw0")
	if sw.Name() != "sw0" {
		t.Error("name")
	}
	dev := testType3(t)
	if err := sw.AddDownstream("dsp0", dev); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddDownstream("dsp0", dev); err == nil {
		t.Error("duplicate downstream accepted")
	}
	if err := sw.AddDownstream("dsp1", nil); err == nil {
		t.Error("nil endpoint accepted")
	}
	if err := sw.Bind("host0", "dsp0"); err != nil {
		t.Fatal(err)
	}
	ep, ok := sw.EndpointFor("host0")
	if !ok || ep != Endpoint(dev) {
		t.Error("EndpointFor after bind")
	}
	// Exclusive binding.
	if err := sw.Bind("host1", "dsp0"); err == nil {
		t.Error("double-bound one downstream device")
	}
	if err := sw.Bind("host0", "dsp0"); err == nil {
		t.Error("rebound an occupied vPPB")
	}
	if err := sw.Bind("host1", "nope"); err == nil {
		t.Error("bound to missing downstream")
	}
	if got := sw.Bindings(); len(got) != 1 || got["host0"] != "dsp0" {
		t.Errorf("bindings = %v", got)
	}
	if err := sw.Unbind("host0"); err != nil {
		t.Fatal(err)
	}
	if err := sw.Unbind("host0"); err == nil {
		t.Error("double unbind accepted")
	}
	if _, ok := sw.EndpointFor("host0"); ok {
		t.Error("endpoint visible after unbind")
	}
	// After unbind, another host can claim the device (pooling).
	if err := sw.Bind("host1", "dsp0"); err != nil {
		t.Errorf("rebind after release failed: %v", err)
	}
}

func TestMLDPartitioning(t *testing.T) {
	media := testMedia(t, "pool") // 16 MiB
	mld, err := NewMLD("mld0", media)
	if err != nil {
		t.Fatal(err)
	}
	if mld.Name() != "mld0" {
		t.Error("name")
	}
	if _, err := NewMLD("x", nil); err == nil {
		t.Error("nil media accepted")
	}
	ldA, err := mld.Carve("ld-hostA", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	ldB, err := mld.Carve("ld-hostB", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if mld.Remaining() != 0 {
		t.Errorf("remaining = %v, want 0", mld.Remaining())
	}
	if _, err := mld.Carve("ld-c", units.MiB); err == nil {
		t.Error("carved past capacity")
	}
	if _, err := mld.Carve("ld-d", 33); err == nil {
		t.Error("accepted unaligned partition size")
	}
	baseA, sizeA := ldA.Partition()
	baseB, _ := ldB.Partition()
	if baseA != 0 || sizeA != uint64(8*units.MiB) || baseB != uint64(8*units.MiB) {
		t.Errorf("partitions: A=%d+%d B=%d", baseA, sizeA, baseB)
	}
}

func TestMLDPartitionsAreIsolated(t *testing.T) {
	media := testMedia(t, "pool")
	mld, err := NewMLD("mld0", media)
	if err != nil {
		t.Fatal(err)
	}
	ldA, err := mld.Carve("ldA", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	ldB, err := mld.Carve("ldB", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := ldA.ProgramDecoder(&HDMDecoder{Base: 0x1000_0000, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := ldB.ProgramDecoder(&HDMDecoder{Base: 0x1000_0000, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	line[0] = 0xA1
	if resp := ldA.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0x1000_0000, Data: line}); resp.Opcode != RespCmp {
		t.Fatal("write to A failed")
	}
	// Same HPA through B must see B's partition (zeros), not A's data.
	resp := ldB.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x1000_0000})
	if resp.Opcode != RespMemData {
		t.Fatal("read from B failed")
	}
	if resp.Data[0] != 0 {
		t.Error("partition isolation violated: B sees A's write")
	}
	// And the same HPA through A still sees the data.
	resp = ldA.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x1000_0000})
	if resp.Data[0] != 0xA1 {
		t.Error("A lost its own write")
	}
}

func TestPooledDevicesThroughSwitchEndToEnd(t *testing.T) {
	// Two hosts, one switch, one MLD carved in two: each host
	// enumerates its own logical device and gets a disjoint window.
	media := testMedia(t, "pool")
	mld, err := NewMLD("mld0", media)
	if err != nil {
		t.Fatal(err)
	}
	ldA, err := mld.Carve("ldA", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	ldB, err := mld.Carve("ldB", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch("sw0")
	if err := sw.AddDownstream("d0", ldA); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddDownstream("d1", ldB); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bind("hostA", "d0"); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bind("hostB", "d1"); err != nil {
		t.Fatal(err)
	}

	for _, host := range []string{"hostA", "hostB"} {
		ep, ok := sw.EndpointFor(host)
		if !ok {
			t.Fatalf("%s: no endpoint", host)
		}
		link, _ := interconnect.NewPCIe("l-"+host, interconnect.KindPCIe5, 16, 0)
		rp := NewRootPort("rp-"+host, link)
		if err := rp.Attach(ep); err != nil {
			t.Fatal(err)
		}
		h, err := Enumerate(0, rp)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Windows) != 1 {
			t.Fatalf("%s: windows = %d", host, len(h.Windows))
		}
		payload := []byte(host + " private data")
		if err := rp.WriteAt(payload, int64(h.Windows[0].Base)); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, len(payload))
		if err := rp.ReadAt(out, int64(h.Windows[0].Base)); err != nil {
			t.Fatal(err)
		}
		if string(out) != string(payload) {
			t.Errorf("%s: round trip = %q", host, out)
		}
	}
	// Isolation: hostB's window starts with its own data, not hostA's.
	epB, _ := sw.EndpointFor("hostB")
	resp := epB.HandleMem(MemReq{Opcode: OpMemRd, Addr: DefaultCXLWindowBase})
	if got := string(resp.Data[:5]); got != "hostB" {
		t.Errorf("hostB window begins %q, want its own data", got)
	}
}

// TestLogicalDeviceBursts checks CXL 2.0 pooling composes with the
// burst path: a carved MLD partition services multi-line bursts through
// its partition view — one media span access per burst, confined to the
// partition.
func TestLogicalDeviceBursts(t *testing.T) {
	mld, err := NewMLD("pool-mld", testMedia(t, "mld-media"))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := mld.Carve("ld0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, ld)
	in := make([]byte, 6*LineSize)
	for i := range in {
		in[i] = byte(i + 9)
	}
	if err := rp.WriteBurst(128, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := rp.ReadBurst(128, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("burst through MLD partition mismatched")
	}
	// One span write + one span read against the partition view.
	reads, writes, br, bw := ld.view.Stats().Snapshot()
	if reads != 1 || writes != 1 {
		t.Errorf("partition view saw %d reads %d writes, want 1/1", reads, writes)
	}
	if br != int64(len(in)) || bw != int64(len(in)) {
		t.Errorf("partition view moved %d/%d bytes, want %d", br, bw, len(in))
	}
	// A burst escaping the partition is refused.
	if err := rp.WriteBurst(1<<20-uint64(LineSize), in); err == nil {
		t.Error("burst past partition end accepted")
	}
}
