package cxl

import (
	"bytes"
	"testing"

	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/units"
)

func TestSwitchBindUnbind(t *testing.T) {
	sw := NewSwitch("sw0")
	if sw.Name() != "sw0" {
		t.Error("name")
	}
	dev := testType3(t)
	if err := sw.AddDownstream("dsp0", dev); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddDownstream("dsp0", dev); err == nil {
		t.Error("duplicate downstream accepted")
	}
	if err := sw.AddDownstream("dsp1", nil); err == nil {
		t.Error("nil endpoint accepted")
	}
	if err := sw.Bind("host0", "dsp0"); err != nil {
		t.Fatal(err)
	}
	ep, ok := sw.EndpointFor("host0")
	if !ok || ep != Endpoint(dev) {
		t.Error("EndpointFor after bind")
	}
	// Exclusive binding.
	if err := sw.Bind("host1", "dsp0"); err == nil {
		t.Error("double-bound one downstream device")
	}
	if err := sw.Bind("host0", "dsp0"); err == nil {
		t.Error("rebound an occupied vPPB")
	}
	if err := sw.Bind("host1", "nope"); err == nil {
		t.Error("bound to missing downstream")
	}
	if got := sw.Bindings(); len(got) != 1 || got["host0"] != "dsp0" {
		t.Errorf("bindings = %v", got)
	}
	if err := sw.Unbind("host0"); err != nil {
		t.Fatal(err)
	}
	if err := sw.Unbind("host0"); err == nil {
		t.Error("double unbind accepted")
	}
	if _, ok := sw.EndpointFor("host0"); ok {
		t.Error("endpoint visible after unbind")
	}
	// After unbind, another host can claim the device (pooling).
	if err := sw.Bind("host1", "dsp0"); err != nil {
		t.Errorf("rebind after release failed: %v", err)
	}
}

func TestMLDPartitioning(t *testing.T) {
	media := testMedia(t, "pool") // 16 MiB
	mld, err := NewMLD("mld0", media)
	if err != nil {
		t.Fatal(err)
	}
	if mld.Name() != "mld0" {
		t.Error("name")
	}
	if _, err := NewMLD("x", nil); err == nil {
		t.Error("nil media accepted")
	}
	initial := mld.Remaining()
	if initial != 16*units.MiB {
		t.Fatalf("initial remaining = %v, want media capacity", initial)
	}
	// Remaining() invariant: failed carves reserve nothing.
	if _, err := mld.Carve("ld-huge", 32*units.MiB); err == nil {
		t.Error("carved past capacity")
	}
	if mld.Remaining() != initial {
		t.Errorf("failed carve leaked: remaining = %v, want %v", mld.Remaining(), initial)
	}
	ldA, err := mld.Carve("ld-hostA", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if mld.Remaining() != initial-8*units.MiB {
		t.Errorf("remaining = %v after one carve", mld.Remaining())
	}
	ldB, err := mld.Carve("ld-hostB", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if mld.Remaining() != 0 {
		t.Errorf("remaining = %v, want 0", mld.Remaining())
	}
	if _, err := mld.Carve("ld-c", units.MiB); err == nil {
		t.Error("carved past capacity")
	}
	if _, err := mld.Carve("ld-d", 33); err == nil {
		t.Error("accepted unaligned partition size")
	}
	if mld.Remaining() != 0 {
		t.Errorf("failed carves leaked: remaining = %v, want 0", mld.Remaining())
	}
	baseA, sizeA := ldA.Partition()
	baseB, _ := ldB.Partition()
	if baseA != 0 || sizeA != uint64(8*units.MiB) || baseB != uint64(8*units.MiB) {
		t.Errorf("partitions: A=%d+%d B=%d", baseA, sizeA, baseB)
	}
	// Release/re-carve: returning both partitions restores the full
	// pool (coalesced), and the bytes are immediately re-carvable.
	if err := mld.Release(ldA); err != nil {
		t.Fatal(err)
	}
	if err := mld.Release(ldA); err == nil {
		t.Error("double release accepted")
	}
	if mld.Remaining() != 8*units.MiB {
		t.Errorf("remaining = %v after releasing A", mld.Remaining())
	}
	if err := mld.Release(ldB); err != nil {
		t.Fatal(err)
	}
	if mld.Remaining() != initial {
		t.Errorf("remaining = %v after full release, want %v", mld.Remaining(), initial)
	}
	if free := mld.FreeExtents(); len(free) != 1 {
		t.Errorf("free list = %v, want one coalesced extent", free)
	}
	ldC, err := mld.Carve("ld-recarve", 16*units.MiB)
	if err != nil {
		t.Fatalf("re-carve of released capacity failed: %v", err)
	}
	if base, size := ldC.Partition(); base != 0 || size != uint64(16*units.MiB) {
		t.Errorf("re-carve at [%#x+%#x), want the full pool", base, size)
	}
}

// TestMLDReleasedPartitionRefusesAccess checks the torn-down data
// path: a released logical device fails CXL.mem transactions instead
// of touching pool bytes that may already belong to someone else.
func TestMLDReleasedPartitionRefusesAccess(t *testing.T) {
	mld, err := NewMLD("mld0", testMedia(t, "pool"))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := mld.Carve("ld0", units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	if resp := ld.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0, Data: line}); resp.Opcode != RespCmp {
		t.Fatal("write before release failed")
	}
	if err := mld.Release(ld); err != nil {
		t.Fatal(err)
	}
	if resp := ld.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0}); resp.Opcode != RespErr {
		t.Error("read through released partition succeeded")
	}
	if resp := ld.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0, Data: line}); resp.Opcode != RespErr {
		t.Error("write through released partition succeeded")
	}
}

// TestMLDRawExtents covers the raw extent interface the fabric manager
// drives: alloc, fragmented AllocAny, release-with-coalescing, double
// release, and the Remaining() invariant across a mixed sequence.
func TestMLDRawExtents(t *testing.T) {
	mld, err := NewMLD("mld0", testMedia(t, "pool")) // 16 MiB
	if err != nil {
		t.Fatal(err)
	}
	initial := mld.Remaining()
	a, err := mld.AllocExtent(4 * units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mld.AllocExtent(4 * units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mld.AllocExtent(16 * units.MiB); err == nil {
		t.Error("over-capacity extent accepted")
	}
	if err := mld.ReleaseExtent(a); err != nil {
		t.Fatal(err)
	}
	if err := mld.ReleaseExtent(a); err == nil {
		t.Error("double extent release accepted")
	}
	// A partition and a raw extent draw from the same free space.
	ld, err := mld.Carve("ld0", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mld.Remaining(), initial-12*units.MiB; got != want {
		t.Errorf("remaining = %v, want %v", got, want)
	}
	if err := mld.Release(ld); err != nil {
		t.Fatal(err)
	}
	if err := mld.ReleaseExtent(b); err != nil {
		t.Fatal(err)
	}
	if mld.Remaining() != initial {
		t.Errorf("remaining = %v after full release, want %v", mld.Remaining(), initial)
	}
}

// TestSwitchRebind checks the control-plane rebind contract: atomic
// move, no intermediate unbound state visible, rollback on a bad
// target.
func TestSwitchRebind(t *testing.T) {
	sw := NewSwitch("sw0")
	devA := testType3(t)
	devB := testType3(t)
	if err := sw.AddDownstream("d0", devA); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddDownstream("d1", devB); err != nil {
		t.Fatal(err)
	}
	if err := sw.Rebind("host0", "d1"); err == nil {
		t.Error("rebound an unbound vPPB")
	}
	if err := sw.Bind("host0", "d0"); err != nil {
		t.Fatal(err)
	}
	if err := sw.Rebind("host0", "d1"); err != nil {
		t.Fatal(err)
	}
	if ep, ok := sw.EndpointFor("host0"); !ok || ep != Endpoint(devB) {
		t.Error("rebind did not route to the new endpoint")
	}
	// d0 is free again.
	if err := sw.Bind("host1", "d0"); err != nil {
		t.Errorf("old downstream not released by rebind: %v", err)
	}
	// A failed rebind (occupied target) leaves the old binding intact.
	if err := sw.Rebind("host0", "d0"); err == nil {
		t.Error("rebound onto an occupied downstream")
	}
	if ep, ok := sw.EndpointFor("host0"); !ok || ep != Endpoint(devB) {
		t.Error("failed rebind lost the original binding")
	}
	// Rebind to the current port is a no-op.
	if err := sw.Rebind("host0", "d1"); err != nil {
		t.Errorf("self-rebind: %v", err)
	}
	// RemoveDownstream refuses bound ports, accepts free ones.
	if err := sw.RemoveDownstream("d1"); err == nil {
		t.Error("removed a bound downstream")
	}
	if err := sw.Unbind("host1"); err != nil {
		t.Fatal(err)
	}
	if err := sw.RemoveDownstream("d0"); err != nil {
		t.Errorf("remove free downstream: %v", err)
	}
}

func TestMLDPartitionsAreIsolated(t *testing.T) {
	media := testMedia(t, "pool")
	mld, err := NewMLD("mld0", media)
	if err != nil {
		t.Fatal(err)
	}
	ldA, err := mld.Carve("ldA", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	ldB, err := mld.Carve("ldB", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := ldA.ProgramDecoder(&HDMDecoder{Base: 0x1000_0000, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := ldB.ProgramDecoder(&HDMDecoder{Base: 0x1000_0000, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	var line [LineSize]byte
	line[0] = 0xA1
	if resp := ldA.HandleMem(MemReq{Opcode: OpMemWr, Addr: 0x1000_0000, Data: line}); resp.Opcode != RespCmp {
		t.Fatal("write to A failed")
	}
	// Same HPA through B must see B's partition (zeros), not A's data.
	resp := ldB.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x1000_0000})
	if resp.Opcode != RespMemData {
		t.Fatal("read from B failed")
	}
	if resp.Data[0] != 0 {
		t.Error("partition isolation violated: B sees A's write")
	}
	// And the same HPA through A still sees the data.
	resp = ldA.HandleMem(MemReq{Opcode: OpMemRd, Addr: 0x1000_0000})
	if resp.Data[0] != 0xA1 {
		t.Error("A lost its own write")
	}
}

func TestPooledDevicesThroughSwitchEndToEnd(t *testing.T) {
	// Two hosts, one switch, one MLD carved in two: each host
	// enumerates its own logical device and gets a disjoint window.
	media := testMedia(t, "pool")
	mld, err := NewMLD("mld0", media)
	if err != nil {
		t.Fatal(err)
	}
	ldA, err := mld.Carve("ldA", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	ldB, err := mld.Carve("ldB", 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch("sw0")
	if err := sw.AddDownstream("d0", ldA); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddDownstream("d1", ldB); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bind("hostA", "d0"); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bind("hostB", "d1"); err != nil {
		t.Fatal(err)
	}

	for _, host := range []string{"hostA", "hostB"} {
		ep, ok := sw.EndpointFor(host)
		if !ok {
			t.Fatalf("%s: no endpoint", host)
		}
		link, _ := interconnect.NewPCIe("l-"+host, interconnect.KindPCIe5, 16, 0)
		rp := NewRootPort("rp-"+host, link)
		if err := rp.Attach(ep); err != nil {
			t.Fatal(err)
		}
		h, err := Enumerate(0, rp)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Windows) != 1 {
			t.Fatalf("%s: windows = %d", host, len(h.Windows))
		}
		payload := []byte(host + " private data")
		if err := rp.WriteAt(payload, int64(h.Windows[0].Base)); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, len(payload))
		if err := rp.ReadAt(out, int64(h.Windows[0].Base)); err != nil {
			t.Fatal(err)
		}
		if string(out) != string(payload) {
			t.Errorf("%s: round trip = %q", host, out)
		}
	}
	// Isolation: hostB's window starts with its own data, not hostA's.
	epB, _ := sw.EndpointFor("hostB")
	resp := epB.HandleMem(MemReq{Opcode: OpMemRd, Addr: DefaultCXLWindowBase})
	if got := string(resp.Data[:5]); got != "hostB" {
		t.Errorf("hostB window begins %q, want its own data", got)
	}
}

// TestLogicalDeviceBursts checks CXL 2.0 pooling composes with the
// burst path: a carved MLD partition services multi-line bursts through
// its partition view — one media span access per burst, confined to the
// partition.
func TestLogicalDeviceBursts(t *testing.T) {
	mld, err := NewMLD("pool-mld", testMedia(t, "mld-media"))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := mld.Carve("ld0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.ProgramDecoder(&HDMDecoder{Base: 0, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	rp := trainedPort(t, ld)
	in := make([]byte, 6*LineSize)
	for i := range in {
		in[i] = byte(i + 9)
	}
	if err := rp.WriteBurst(128, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := rp.ReadBurst(128, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("burst through MLD partition mismatched")
	}
	// One span write + one span read against the partition view.
	reads, writes, br, bw := ld.view.Stats().Snapshot()
	if reads != 1 || writes != 1 {
		t.Errorf("partition view saw %d reads %d writes, want 1/1", reads, writes)
	}
	if br != int64(len(in)) || bw != int64(len(in)) {
		t.Errorf("partition view moved %d/%d bytes, want %d", br, bw, len(in))
	}
	// A burst escaping the partition is refused.
	if err := rp.WriteBurst(1<<20-uint64(LineSize), in); err == nil {
		t.Error("burst past partition end accepted")
	}
}
