// Package pmemfs provides the DAX-style namespaces the paper's harness
// addresses pools through: /mnt/pmem0 and /mnt/pmem1 back onto the two
// socket DRAMs (the "emulated remote socket" PMem of §3.1), /mnt/pmem2
// backs onto the CXL-attached memory (Figures 2 and 9).
//
// A Mount exposes a byte-addressable region of a device through an
// Accessor — for CXL mounts the accessor routes every access through the
// root port and the CXL.mem protocol, exactly as a DAX mapping of an HDM
// window would; bulk file I/O rides the port's burst transactions, so a
// pool-sized read is a stream of multi-line bursts rather than one codec
// round trip per cache line. Files are simple extents; like a real DAX
// filesystem the data path is load/store, and the (tiny) metadata path
// is assumed durable out of band.
package pmemfs

import (
	"fmt"
	"sort"
	"sync"
)

// Accessor is the raw byte path to a mount's media.
type Accessor interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
}

// Mount is one pmem namespace (e.g. "/mnt/pmem2").
type Mount struct {
	name       string
	acc        Accessor
	size       int64
	persistent bool

	mu     sync.Mutex
	files  map[string]*File
	cursor int64
}

// NewMount builds a namespace of the given size over acc. persistent
// records whether the media survives power loss (false for the
// DRAM-emulated pmem0/pmem1, true for the battery-backed CXL mount).
func NewMount(name string, acc Accessor, size int64, persistent bool) (*Mount, error) {
	if acc == nil {
		return nil, fmt.Errorf("pmemfs: %s: nil accessor", name)
	}
	if size <= 0 {
		return nil, fmt.Errorf("pmemfs: %s: non-positive size %d", name, size)
	}
	return &Mount{
		name:       name,
		acc:        acc,
		size:       size,
		persistent: persistent,
		files:      make(map[string]*File),
	}, nil
}

// Name returns the mount point.
func (m *Mount) Name() string { return m.name }

// Persistent reports media durability.
func (m *Mount) Persistent() bool { return m.persistent }

// Size returns the namespace capacity.
func (m *Mount) Size() int64 { return m.size }

// Free returns the unallocated bytes.
func (m *Mount) Free() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.size - m.cursor
}

// Create allocates a new fixed-size file.
func (m *Mount) Create(name string, size int64) (*File, error) {
	if size <= 0 {
		return nil, fmt.Errorf("pmemfs: %s/%s: non-positive size", m.name, name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		return nil, fmt.Errorf("pmemfs: %s/%s: exists", m.name, name)
	}
	// 4 KiB extent alignment.
	base := (m.cursor + 4095) &^ 4095
	if base+size > m.size {
		return nil, fmt.Errorf("pmemfs: %s/%s: no space (%d needed, %d free)", m.name, name, size, m.size-base)
	}
	f := &File{mount: m, name: name, base: base, size: size}
	m.files[name] = f
	m.cursor = base + size
	return f, nil
}

// Open returns an existing file.
func (m *Mount) Open(name string) (*File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("pmemfs: %s/%s: no such file", m.name, name)
	}
	return f, nil
}

// Remove deletes a file. Its extent is not reclaimed (append-only extent
// allocation, like a freshly provisioned namespace).
func (m *Mount) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("pmemfs: %s/%s: no such file", m.name, name)
	}
	delete(m.files, name)
	return nil
}

// List returns the file names in order.
func (m *Mount) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for n := range m.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// File is one extent-backed file.
type File struct {
	mount *Mount
	name  string
	base  int64
	size  int64
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size.
func (f *File) Size() int64 { return f.size }

// Persistent reports whether the backing media is durable.
func (f *File) Persistent() bool { return f.mount.persistent }

// Path returns the full path (mount + name).
func (f *File) Path() string { return f.mount.name + "/" + f.name }

func (f *File) check(off int64, n int) error {
	if off < 0 || off+int64(n) > f.size {
		return fmt.Errorf("pmemfs: %s: access [%d,%d) outside file size %d", f.Path(), off, off+int64(n), f.size)
	}
	return nil
}

// ReadAt reads from the file through the mount's accessor.
func (f *File) ReadAt(p []byte, off int64) error {
	if err := f.check(off, len(p)); err != nil {
		return err
	}
	return f.mount.acc.ReadAt(p, f.base+off)
}

// WriteAt writes to the file through the mount's accessor.
func (f *File) WriteAt(p []byte, off int64) error {
	if err := f.check(off, len(p)); err != nil {
		return err
	}
	return f.mount.acc.WriteAt(p, f.base+off)
}

// Registry maps mount points to mounts, the machine-level /mnt table.
type Registry struct {
	mu     sync.Mutex
	mounts map[string]*Mount
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{mounts: make(map[string]*Mount)}
}

// Add registers a mount.
func (r *Registry) Add(m *Mount) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.mounts[m.Name()]; ok {
		return fmt.Errorf("pmemfs: %s already mounted", m.Name())
	}
	r.mounts[m.Name()] = m
	return nil
}

// Mount resolves a mount point.
func (r *Registry) Mount(name string) (*Mount, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.mounts[name]
	if !ok {
		return nil, fmt.Errorf("pmemfs: %s not mounted", name)
	}
	return m, nil
}

// Mounts lists mount points in order.
func (r *Registry) Mounts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.mounts))
	for n := range r.mounts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
