package pmemfs

import (
	"bytes"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func dramMount(t *testing.T) *Mount {
	t.Helper()
	dev, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "ddr5", Rate: 4800, Channels: 1, CapacityPerChannel: 16 * units.MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMount("/mnt/pmem0", dev, dev.Capacity().Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMountCreateOpenReadWrite(t *testing.T) {
	m := dramMount(t)
	f, err := m.Create("pool.obj", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1<<20 || f.Name() != "pool.obj" {
		t.Error("file attributes")
	}
	if f.Path() != "/mnt/pmem0/pool.obj" {
		t.Errorf("path = %q", f.Path())
	}
	payload := []byte("pmem pool bytes")
	if err := f.WriteAt(payload, 512); err != nil {
		t.Fatal(err)
	}
	f2, err := m.Open("pool.obj")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(payload))
	if err := f2.ReadAt(out, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, out) {
		t.Error("round trip mismatch")
	}
}

func TestMountValidation(t *testing.T) {
	if _, err := NewMount("/mnt/x", nil, 100, false); err == nil {
		t.Error("nil accessor accepted")
	}
	dev, _ := memdev.NewDRAM(memdev.DRAMConfig{Name: "d", Rate: 2666, Channels: 1, CapacityPerChannel: units.MiB})
	if _, err := NewMount("/mnt/x", dev, 0, false); err == nil {
		t.Error("zero size accepted")
	}
	m := dramMount(t)
	if _, err := m.Create("f", 0); err == nil {
		t.Error("zero-size file accepted")
	}
	if _, err := m.Create("f", 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("f", 1024); err == nil {
		t.Error("duplicate file accepted")
	}
	if _, err := m.Open("missing"); err == nil {
		t.Error("open of missing file accepted")
	}
	if _, err := m.Create("huge", m.Size()*2); err == nil {
		t.Error("oversized file accepted")
	}
}

func TestFileBoundsChecked(t *testing.T) {
	m := dramMount(t)
	f, err := m.Create("f", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(make([]byte, 8), 4092); err == nil {
		t.Error("write past file end accepted")
	}
	if err := f.ReadAt(make([]byte, 8), -1); err == nil {
		t.Error("negative offset accepted")
	}
	// Two files never alias.
	g, err := m.Create("g", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt([]byte{0xAB}, 0); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 1)
	if err := g.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if out[0] == 0xAB {
		t.Error("files alias the same extent")
	}
}

func TestRemoveAndList(t *testing.T) {
	m := dramMount(t)
	if _, err := m.Create("b", 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("a", 1024); err != nil {
		t.Fatal(err)
	}
	got := m.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List = %v", got)
	}
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("a"); err == nil {
		t.Error("double remove accepted")
	}
	if got := m.List(); len(got) != 1 || got[0] != "b" {
		t.Errorf("List after remove = %v", got)
	}
	if m.Free() <= 0 {
		t.Error("Free() should be positive")
	}
}

func TestCXLBackedMountRoutesThroughProtocol(t *testing.T) {
	// A /mnt/pmem2 mount whose accessor is the CXL root port: every
	// file access becomes CXL.mem flits against the FPGA HDM.
	card, err := fpga.New(fpga.Options{ChannelCapacity: 8 * units.MiB})
	if err != nil {
		t.Fatal(err)
	}
	rp := cxl.NewRootPort("rp0", card.Link())
	if err := rp.Attach(card); err != nil {
		t.Fatal(err)
	}
	h, err := cxl.Enumerate(0, rp)
	if err != nil {
		t.Fatal(err)
	}
	w := h.Windows[0]
	m, err := NewMount("/mnt/pmem2", &windowAccessor{rp: rp, base: int64(w.Base)}, int64(w.Size), true)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Persistent() {
		t.Error("CXL mount should be persistent")
	}
	f, err := m.Create("pool.obj", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("through the CXL fabric")
	if err := f.WriteAt(payload, 100); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(payload))
	if err := f.ReadAt(out, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Error("round trip mismatch")
	}
	// The endpoint really saw CXL.mem transactions.
	if card.Stats().Writes.Load() == 0 && card.Stats().PartialWrites.Load() == 0 {
		t.Error("no CXL.mem writes recorded at the endpoint")
	}
	if card.Stats().Reads.Load() == 0 {
		t.Error("no CXL.mem reads recorded at the endpoint")
	}
}

// windowAccessor adapts a root port + HPA window to the Accessor shape.
// The production version lives in internal/core; this local copy keeps
// the package test self-contained.
type windowAccessor struct {
	rp   *cxl.RootPort
	base int64
}

func (a *windowAccessor) ReadAt(p []byte, off int64) error  { return a.rp.ReadAt(p, a.base+off) }
func (a *windowAccessor) WriteAt(p []byte, off int64) error { return a.rp.WriteAt(p, a.base+off) }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	m := dramMount(t)
	if err := r.Add(m); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(m); err == nil {
		t.Error("duplicate mount accepted")
	}
	got, err := r.Mount("/mnt/pmem0")
	if err != nil || got != m {
		t.Errorf("Mount = %v, %v", got, err)
	}
	if _, err := r.Mount("/mnt/none"); err == nil {
		t.Error("missing mount accepted")
	}
	if l := r.Mounts(); len(l) != 1 || l[0] != "/mnt/pmem0" {
		t.Errorf("Mounts = %v", l)
	}
}

func TestExtentAlignment(t *testing.T) {
	m := dramMount(t)
	if _, err := m.Create("a", 100); err != nil {
		t.Fatal(err)
	}
	b, err := m.Create("b", 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.base%4096 != 0 {
		t.Errorf("second extent base %d not 4KiB aligned", b.base)
	}
}
