package topology

import (
	"fmt"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// Calibration anchors. Every constant here is chosen so the generated
// curves reproduce the paper's §4 relationships; provenance for each is
// noted inline. We do not claim the authors' absolute numbers — the
// shapes and ratios are the reproduction target (see DESIGN.md §4).
const (
	// SPR per-core MLP: deep load queues and a large LLC sustain ~12
	// outstanding lines; at 95 ns local latency that is ~8 GB/s per
	// core, saturating the single-DIMM DDR5 socket around 3-4 threads
	// as the paper's Class 1.a curves do.
	sprMLP = 12
	// Xeon Gold 5215 (Cascade Lake) sustains fewer outstanding misses;
	// 5 lines at 220 ns remote latency is ~1.45 GB/s per core — below
	// the prototype's ~1.75, reproducing the §4 Class 2.a "slight
	// advantage ... for accessing CXL memory" at low thread counts.
	xeonGoldMLP = 5

	// Single-DIMM DDR5-4800 sustained STREAM efficiency. 38.4 GB/s
	// theoretical × 0.62 ≈ 23.8 GB/s, which after the ~12% PMDK
	// App-Direct overhead lands in the paper's 20-22 GB/s Class 1.a
	// saturation band.
	sprDIMMEfficiency = 0.62

	// SPR UPI: sustained remote STREAM cap ~17.5 GB/s and +110 ns,
	// giving the −30% Class 1.b remote-socket degradation.
	sprUPIGBps      = 17.5
	sprUPILatencyNs = 110

	// Xeon Gold UPI (10.4 GT/s generation): a sustained ~6 GB/s
	// remote STREAM cap and +130 ns puts remote DDR4 CC-NUMA within
	// the paper's 2-5 GB/s gap of the CXL DDR4 figures (§4 Class 2.a).
	xeonGoldUPIGBps      = 6.0
	xeonGoldUPILatencyNs = 130

	// CXL IP slice throughput: the prototype is implementation-bound
	// well below both the Gen5 link and the 2-channel DDR4 media
	// (§2.2 "subject to current implementation constraints"). One
	// slice sustains ~8.3 GB/s: App-Direct CXL then lands near 7.3
	// GB/s — the paper's ~50% drop from remote-socket DDR5 PMem, with
	// the 2-3 GB/s fabric loss vs raw DDR4 visible in the numbers.
	cxlIPSliceGBps = 8.3
)

// SPRModel is the Setup #1 processor (§2.1: "two Intel 4th generation
// Xeon (Sapphire Rapids) processors with a base frequency of 2.1GHz and
// 48 cores each ... BIOS was updated to support only 10 cores per
// socket").
var SPRModel = CPUModel{
	Name:           "Xeon Sapphire Rapids",
	BaseGHz:        2.1,
	CoresPerSocket: 10,
	HyperThreading: true,
	MLP:            sprMLP,
	LLCMiB:         105,
}

// XeonGoldModel is the Setup #2 processor (§2.1: "two Intel Xeon Gold
// 5215 processors with a base frequency of 2.5GHz and 10 cores each").
var XeonGoldModel = CPUModel{
	Name:           "Xeon Gold 5215",
	BaseGHz:        2.5,
	CoresPerSocket: 10,
	HyperThreading: true,
	MLP:            xeonGoldMLP,
	LLCMiB:         14,
}

// Setup1Options tweaks the Setup #1 builder for ablations.
type Setup1Options struct {
	// FPGA overrides the prototype configuration (zero value =
	// paper's card).
	FPGA fpga.Options
	// IPSlices scales the CXL IP throughput (default 1 slice).
	IPSlices int
	// InterleaveWays stripes the CXL window across this many identical
	// prototype cards, each on its own root port (default 1 — the
	// paper's single card). This is the §6 bandwidth-scaling lever:
	// the node's device cap and fabric cap both multiply by the way
	// count, and node 2's data path becomes a cxl.InterleaveSet.
	InterleaveWays int
	// InterleaveGranule is the stripe unit in bytes
	// (cxl.DefaultInterleaveGranule if zero).
	InterleaveGranule uint64
	// InterleaveShare caps the striped per-card bytes below each card's
	// full HDM, leaving headroom the RAS plane uses as spare capacity
	// when it evacuates a degraded leg (zero = full HDM, no headroom).
	InterleaveShare uint64
}

// Setup1 builds the paper's Setup #1 (Figure 2): two SPR sockets, one
// 64 GB DDR5-4800 DIMM each, and the CXL FPGA prototype attached to
// socket0's root complex. The prototype is built, trained and enumerated
// exactly as the real card would be; node 2 is its HDM window.
func Setup1(opts Setup1Options) (*Machine, *fpga.Prototype, error) {
	m := &Machine{Name: "setup1-spr-cxl"}
	m.Sockets = []*Socket{
		newSocket(0, SPRModel, 0),
		newSocket(1, SPRModel, 10),
	}
	m.UPI = interconnect.NewUPI("upi0", units.GBps(sprUPIGBps), units.Nanoseconds(sprUPILatencyNs))

	for sock := 0; sock < 2; sock++ {
		d, err := memdev.NewDRAM(memdev.DRAMConfig{
			Name:               fmt.Sprintf("ddr5-socket%d", sock),
			Rate:               4800,
			Channels:           1,
			CapacityPerChannel: 64 * units.GiB,
			IdleLatency:        units.Nanoseconds(95),
			Efficiency:         sprDIMMEfficiency,
		})
		if err != nil {
			return nil, nil, err
		}
		m.Nodes = append(m.Nodes, &Node{
			ID:         NodeID(sock),
			Kind:       NodeDRAM,
			Device:     d,
			HomeSocket: SocketID(sock),
		})
	}

	slices := opts.IPSlices
	if slices == 0 {
		slices = 1
	}
	if slices < 0 {
		return nil, nil, fmt.Errorf("topology: setup1: negative IP slices")
	}
	ways := opts.InterleaveWays
	if ways == 0 {
		ways = 1
	}
	if ways < 0 || ways > cxl.MaxInterleaveWays {
		return nil, nil, fmt.Errorf("topology: setup1: %d interleave ways outside 1..%d", ways, cxl.MaxInterleaveWays)
	}

	// One prototype card per interleave leg, each on its own root port.
	cards := make([]*fpga.Prototype, ways)
	ports := make([]*cxl.RootPort, ways)
	for i := range cards {
		legOpts := opts.FPGA
		if ways > 1 {
			name := opts.FPGA.Name
			if name == "" {
				name = "agilex7-cxl"
			}
			legOpts.Name = fmt.Sprintf("%s-leg%d", name, i)
		}
		card, err := fpga.New(legOpts)
		if err != nil {
			return nil, nil, err
		}
		cards[i] = card
		ports[i] = cxl.NewRootPort(fmt.Sprintf("rp%d", i), card.Link())
		if err := ports[i].Attach(card); err != nil {
			return nil, nil, err
		}
	}

	node := &Node{
		ID:           2,
		Kind:         NodeCXL,
		Device:       cards[0].Media(),
		HomeSocket:   -1,
		AttachSocket: 0,
		IPCap:        units.GBps(cxlIPSliceGBps * float64(slices)),
		Port:         ports[0],
		Ports:        ports,
	}
	if ways == 1 {
		// The paper's configuration: enumerate the single card.
		h, err := cxl.Enumerate(0, ports[0])
		if err != nil {
			return nil, nil, err
		}
		if len(h.Windows) != 1 {
			return nil, nil, fmt.Errorf("topology: setup1: enumerated %d windows, want 1", len(h.Windows))
		}
		node.Window = h.Windows[0]
	} else {
		// Striped configuration: the interleave set programs the
		// per-target decoders itself, standing in for enumeration.
		stripe, err := cxl.NewInterleaveSetOpts("cxl-stripe", cxl.InterleaveOptions{
			Base:    cxl.DefaultCXLWindowBase,
			Granule: opts.InterleaveGranule,
			Share:   opts.InterleaveShare,
		}, ports...)
		if err != nil {
			return nil, nil, err
		}
		node.InterleaveWays = ways
		node.Stripe = stripe
		node.Window = cxl.MemWindow{Port: ports[0], Endpoint: cards[0], Base: stripe.Base(), Size: stripe.Size()}
		node.Fabric, err = interconnect.NewStriped("cxl-stripe-fabric", ways, ports[0].Link())
		if err != nil {
			return nil, nil, err
		}
	}
	m.Nodes = append(m.Nodes, node)
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, cards[0], nil
}

// Setup2 builds the paper's Setup #2 (Figure 3): two Xeon Gold 5215
// sockets, six 16 GB DDR4-2666 channels each, no CXL attachment.
func Setup2() (*Machine, error) {
	m := &Machine{Name: "setup2-xeongold-ddr4"}
	m.Sockets = []*Socket{
		newSocket(0, XeonGoldModel, 0),
		newSocket(1, XeonGoldModel, 10),
	}
	m.UPI = interconnect.NewUPI("upi0", units.GBps(xeonGoldUPIGBps), units.Nanoseconds(xeonGoldUPILatencyNs))
	for sock := 0; sock < 2; sock++ {
		d, err := memdev.NewDRAM(memdev.DRAMConfig{
			Name:               fmt.Sprintf("ddr4-socket%d", sock),
			Rate:               2666,
			Channels:           6,
			CapacityPerChannel: 16 * units.GiB,
			IdleLatency:        units.Nanoseconds(90),
			Efficiency:         sprDIMMEfficiency,
		})
		if err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, &Node{
			ID:         NodeID(sock),
			Kind:       NodeDRAM,
			Device:     d,
			HomeSocket: SocketID(sock),
		})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// DCPMMReference builds the platform class the published Optane numbers
// come from (§1.4): one socket with DRAM on node 0 and a DIMM-attached
// DCPMM module on node 1. Used by the DCPMM comparison table.
func DCPMMReference() (*Machine, error) {
	m := &Machine{Name: "dcpmm-reference"}
	model := XeonGoldModel // Cascade Lake was DCPMM's host generation.
	m.Sockets = []*Socket{newSocket(0, model, 0)}
	dram, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               "ddr4-socket0",
		Rate:               2666,
		Channels:           6,
		CapacityPerChannel: 16 * units.GiB,
		IdleLatency:        units.Nanoseconds(90),
		Efficiency:         sprDIMMEfficiency,
	})
	if err != nil {
		return nil, err
	}
	m.Nodes = append(m.Nodes, &Node{ID: 0, Kind: NodeDRAM, Device: dram, HomeSocket: 0})
	pm, err := memdev.NewDCPMM(memdev.DCPMMConfig{Name: "optane-dcpmm", Modules: 1, Capacity: 128 * units.GiB})
	if err != nil {
		return nil, err
	}
	m.Nodes = append(m.Nodes, &Node{ID: 1, Kind: NodePMem, Device: pm, HomeSocket: 0})
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
