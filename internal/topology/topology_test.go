package topology

import (
	"strings"
	"testing"

	"cxlpmem/internal/fpga"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func setup1(t *testing.T) (*Machine, *fpga.Prototype) {
	t.Helper()
	m, card, err := Setup1(Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, card
}

func TestSetup1Shape(t *testing.T) {
	m, card := setup1(t)
	if len(m.Sockets) != 2 {
		t.Fatalf("sockets = %d", len(m.Sockets))
	}
	if len(m.Cores()) != 20 {
		t.Errorf("cores = %d, want 20 (paper: 10 per socket after BIOS limit)", len(m.Cores()))
	}
	if len(m.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3 (two DDR5 + CXL)", len(m.Nodes))
	}
	n0, err := m.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if n0.Kind != NodeDRAM || n0.Device.Capacity() != 64*units.GiB {
		t.Errorf("node0 = %v", n0)
	}
	n2, err := m.Node(2)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Kind != NodeCXL {
		t.Errorf("node2 kind = %v", n2.Kind)
	}
	if n2.Device.Capacity() != 16*units.GiB {
		t.Errorf("CXL capacity = %v, want 16GiB", n2.Device.Capacity())
	}
	if !n2.Persistent() {
		t.Error("CXL node must be persistent (battery-backed)")
	}
	if n0.Persistent() {
		t.Error("DDR5 node must be volatile")
	}
	if card.Options().Rate != 1333 {
		t.Error("prototype should default to the paper card")
	}
	if n2.Window.Size != uint64(16*units.GiB) {
		t.Errorf("window size = %d", n2.Window.Size)
	}
}

func TestSetup1Paths(t *testing.T) {
	m, _ := setup1(t)
	c0, err := m.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	c10, err := m.Core(10)
	if err != nil {
		t.Fatal(err)
	}
	// Local DRAM: empty path.
	p, err := m.Path(c0, 0)
	if err != nil || len(p.Links) != 0 {
		t.Errorf("core0->node0 path = %v, %v; want local", p, err)
	}
	// Remote socket: UPI.
	p, err = m.Path(c0, 1)
	if err != nil || len(p.Links) != 1 || p.Links[0] != m.UPI {
		t.Errorf("core0->node1 path = %v, %v; want UPI", p, err)
	}
	// CXL from attach socket: just the PCIe link.
	p, err = m.Path(c0, 2)
	if err != nil || len(p.Links) != 1 || p.Links[0].Kind.String() != "PCIe5" {
		t.Errorf("core0->node2 path = %v, %v; want CXL link", p, err)
	}
	// CXL from the far socket: UPI then PCIe.
	p, err = m.Path(c10, 2)
	if err != nil || len(p.Links) != 2 {
		t.Errorf("core10->node2 path = %v, %v; want UPI+CXL", p, err)
	}
	if _, err := m.Path(c0, 9); err == nil {
		t.Error("path to missing node accepted")
	}
}

func TestSetup1Latencies(t *testing.T) {
	m, _ := setup1(t)
	c0, _ := m.Core(0)
	c10, _ := m.Core(10)
	local, err := m.AccessLatency(c0, 0)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := m.AccessLatency(c0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cxlLat, err := m.AccessLatency(c0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cxlFar, err := m.AccessLatency(c10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if local.Ns() != 95 {
		t.Errorf("local = %v, want 95ns", local)
	}
	if remote.Ns() != 205 {
		t.Errorf("remote = %v, want 205ns (95+110 UPI)", remote)
	}
	// CXL is substantially further than the remote socket.
	if cxlLat <= remote {
		t.Errorf("CXL latency %v should exceed remote-socket %v", cxlLat, remote)
	}
	if cxlFar <= cxlLat {
		t.Errorf("far-socket CXL %v should exceed near-socket CXL %v", cxlFar, cxlLat)
	}
}

func TestSetup1CXLDeviceCap(t *testing.T) {
	m, _ := setup1(t)
	n2, _ := m.Node(2)
	// IP-slice bound: well under the 2-channel DDR4 media peak,
	// reproducing the implementation-constrained prototype.
	got := n2.EffectiveCap(0.5).GBps()
	if got < 8 || got > 9 {
		t.Errorf("CXL effective cap = %v GB/s, want ~8.3", got)
	}
	media := n2.Device.Profile().StreamPeak(0.5).GBps()
	if media <= got {
		t.Errorf("media peak %v should exceed IP cap %v", media, got)
	}
	// Ablation: 2 slices double the cap.
	m2, _, err := Setup1(Setup1Options{IPSlices: 2})
	if err != nil {
		t.Fatal(err)
	}
	n2b, _ := m2.Node(2)
	if got2 := n2b.EffectiveCap(0.5).GBps(); got2 < 1.9*got {
		t.Errorf("2 slices cap = %v, want ~2x %v", got2, got)
	}
	if _, _, err := Setup1(Setup1Options{IPSlices: -1}); err == nil {
		t.Error("negative slices accepted")
	}
}

func TestSetup2Shape(t *testing.T) {
	m, err := Setup2()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cores()) != 20 || len(m.Nodes) != 2 {
		t.Errorf("cores = %d nodes = %d", len(m.Cores()), len(m.Nodes))
	}
	n0, _ := m.Node(0)
	if got := n0.Device.Capacity(); got != 96*units.GiB {
		t.Errorf("node0 capacity = %v, want 96GiB (6x16)", got)
	}
	// Setup2 remote cap is far below Setup1's: the older UPI.
	m1, _ := setup1(t)
	if m.UPI.EffectiveCap() >= m1.UPI.EffectiveCap() {
		t.Error("Xeon Gold UPI should be slower than SPR UPI")
	}
	if m.Sockets[0].Model.MLP >= m1.Sockets[0].Model.MLP {
		t.Error("Xeon Gold MLP should be below SPR MLP (paper: larger SPR caches)")
	}
}

func TestDCPMMReference(t *testing.T) {
	m, err := DCPMMReference()
	if err != nil {
		t.Fatal(err)
	}
	n1, err := m.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	if n1.Kind != NodePMem || !n1.Persistent() {
		t.Errorf("node1 = %v, want persistent pmem", n1)
	}
	if got := n1.Device.Profile().Kind; got != memdev.KindDCPMM {
		t.Errorf("media kind = %v", got)
	}
	// DIMM-attached: local path from socket0.
	c0, _ := m.Core(0)
	p, err := m.Path(c0, 1)
	if err != nil || len(p.Links) != 0 {
		t.Errorf("path = %v, %v; want local DIMM", p, err)
	}
}

func TestValidateCatchesBrokenMachines(t *testing.T) {
	// Core IDs not contiguous.
	m := &Machine{Name: "broken"}
	m.Sockets = []*Socket{{ID: 0, Model: SPRModel, Cores: []Core{{ID: 5, Socket: 0}}}}
	if err := m.Validate(); err == nil {
		t.Error("non-contiguous core IDs accepted")
	}
	// Wrong socket back-reference.
	m.Sockets = []*Socket{{ID: 0, Model: SPRModel, Cores: []Core{{ID: 0, Socket: 3}}}}
	if err := m.Validate(); err == nil {
		t.Error("wrong socket reference accepted")
	}
	// Empty socket.
	m.Sockets = []*Socket{{ID: 0, Model: SPRModel}}
	if err := m.Validate(); err == nil {
		t.Error("empty socket accepted")
	}
	// Duplicate node IDs.
	good, _ := Setup2()
	good.Nodes = append(good.Nodes, good.Nodes[0])
	if err := good.Validate(); err == nil {
		t.Error("duplicate node accepted")
	}
	// Unreachable node: remote DRAM with no UPI.
	m2, _ := Setup2()
	m2.UPI = nil
	if err := m2.Validate(); err == nil {
		t.Error("unreachable node accepted")
	}
}

func TestCoreAndSocketLookup(t *testing.T) {
	m, _ := setup1(t)
	if _, err := m.Core(99); err == nil {
		t.Error("missing core accepted")
	}
	if _, err := m.Socket(9); err == nil {
		t.Error("missing socket accepted")
	}
	s1, err := m.Socket(1)
	if err != nil || len(s1.Cores) != 10 {
		t.Errorf("socket1 = %v, %v", s1, err)
	}
	on := m.CoresOn(1)
	if len(on) != 10 || on[0].ID != 10 {
		t.Errorf("CoresOn(1) = %v", on)
	}
	if m.CoresOn(7) != nil {
		t.Error("CoresOn missing socket should be nil")
	}
}

func TestDescribe(t *testing.T) {
	m, _ := setup1(t)
	d := m.Describe()
	for _, want := range []string{"socket0", "cores 0-9", "cores 10-19", "node2", "cxl", "upi"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	if NodeDRAM.String() != "dram" || NodeCXL.String() != "cxl" || NodePMem.String() != "pmem" {
		t.Error("NodeKind strings")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown NodeKind string empty")
	}
}

// TestSetup1Interleaved checks the striped Setup #1 variant: N cards on
// N root ports behind one interleaved node, with the device and fabric
// caps scaling by the way count and the striped data path carrying real
// traffic end to end.
func TestSetup1Interleaved(t *testing.T) {
	single, _, err := Setup1(Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, card, err := Setup1(Setup1Options{
		FPGA:           fpga.Options{ChannelCapacity: 8 * units.MiB},
		InterleaveWays: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if card == nil {
		t.Fatal("no leg-0 card returned")
	}
	n2, err := m.Node(2)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Stripe != nil {
		t.Cleanup(n2.Stripe.Close)
	}
	if n2.InterleaveWays != 4 || n2.Stripe == nil || len(n2.Ports) != 4 {
		t.Fatalf("striped node shape: ways=%d stripe=%v ports=%d", n2.InterleaveWays, n2.Stripe, len(n2.Ports))
	}
	if n2.Window.Size != n2.Stripe.Size() || n2.Window.Base != n2.Stripe.Base() {
		t.Error("node window disagrees with the stripe geometry")
	}

	// Device-side cap scales by the way count.
	s2, err := m.Node(2)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := single.Node(2)
	if got, want := s2.EffectiveCap(0.5).GBps(), 4*base.EffectiveCap(0.5).GBps(); got < want*0.99 || got > want*1.01 {
		t.Errorf("striped EffectiveCap = %.2f GB/s, want %.2f", got, want)
	}

	// The path traverses the aggregate striped fabric with 4x the
	// member cap and unchanged latency.
	c0, err := m.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Path(c0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Links) != 1 || p.Links[0] != n2.Fabric {
		t.Fatalf("striped path = %v, want the aggregate fabric link", p)
	}
	member := n2.Ports[0].Link()
	if got, want := p.Links[0].EffectiveCap().GBps(), 4*member.EffectiveCap().GBps(); got < want*0.99 || got > want*1.01 {
		t.Errorf("striped fabric cap = %.2f GB/s, want %.2f", got, want)
	}
	if p.Latency() != member.Latency {
		t.Errorf("striped fabric latency = %v, want one member traversal %v", p.Latency(), member.Latency)
	}

	// Real traffic round-trips through the striped window.
	in := make([]byte, 64<<10)
	for i := range in {
		in[i] = byte(i * 13)
	}
	if err := n2.Stripe.WriteBurst(n2.Window.Base, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := n2.Stripe.ReadBurst(n2.Window.Base, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("striped round trip mismatch at byte %d", i)
		}
	}
}
