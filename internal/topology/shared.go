package topology

import (
	"fmt"

	"cxlpmem/internal/coherency"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/units"
)

// Shared-HDM builders. Paper §2.2: "the same far memory segment can be
// made available to two distinct NUMA nodes", with coherency left to
// the applications. SetupShared builds that configuration for N hosts
// over one prototype card behind a CXL switch — and, with Coherent set,
// upgrades it to the CXL 3.0 scenario the paper could not run: the
// device owns a per-line MESI directory and recalls lines over the
// back-invalidate channel, so the hosts' caches stay coherent with no
// application discipline at all.

// SharedOptions configures SetupShared.
type SharedOptions struct {
	// Hosts is the number of NUMA nodes sharing the segment (default
	// 2, the paper's configuration; up to coherency.MaxCoherentHosts).
	Hosts int
	// SegmentSize is the shared payload size (default 1 MiB). Must be
	// a multiple of the 64-byte line.
	SegmentSize units.Size
	// Coherent builds the directory-based back-invalidate engine
	// instead of the paper's application-level (Peterson) discipline.
	// Required for Hosts > 2: Peterson's algorithm is two-host only.
	Coherent bool
	// CacheLines is each host's coherent-cache capacity in 64-byte
	// lines (default 256; Coherent only).
	CacheLines int
	// FPGA overrides the prototype card configuration.
	FPGA fpga.Options
}

// SharedHost is one NUMA node's attachment to the shared segment.
type SharedHost struct {
	// Index is the host ID (0..Hosts-1).
	Index int
	// VPPB is the host's virtual bridge name at the switch.
	VPPB string
	// Port is the host's trained root port.
	Port *cxl.RootPort
	// WindowBase is the HPA where this host's decoder maps the shared
	// device memory.
	WindowBase uint64
	// Accessor is the raw window data path (reads/writes at segment-
	// relative offsets).
	Accessor coherency.Accessor
	// Cache is the host's hardware-coherent cached view (Coherent
	// setups only).
	Cache *coherency.CoherentCache
	// Peterson is the host's application-coherency view (two-host
	// non-coherent setups only).
	Peterson *coherency.Host
}

// SharedHDM is the assembled shared-segment fabric.
type SharedHDM struct {
	// Card is the Type-3 prototype whose HDM all hosts share.
	Card *fpga.Prototype
	// Switch routes the hosts' bindings and, in coherent setups, the
	// back-invalidate snoops.
	Switch *cxl.Switch
	// Segment describes the shared region (segment-relative).
	Segment coherency.Segment
	// Directory is the device-owned MESI directory (Coherent only).
	Directory *coherency.Directory
	// Hosts lists the per-node attachments.
	Hosts []*SharedHost
}

// sharedWindowStride separates the per-host HPA windows; each host's
// decoder maps its window onto the same DPA range (the shared media).
const sharedWindowStride = uint64(0x10_0000_0000)

// SetupShared builds the paper's shared-HDM configuration for N hosts:
// one prototype card, one decoder + root port per host (each node's
// window aliases the same device memory), all bound through a switch.
// With Coherent set it additionally stands up the back-invalidate
// engine: a device-side directory, a write-back CoherentCache per host,
// and snoop routing through the switch.
func SetupShared(opts SharedOptions) (*SharedHDM, error) {
	hosts := opts.Hosts
	if hosts == 0 {
		hosts = 2
	}
	if hosts < 2 || hosts > coherency.MaxCoherentHosts {
		return nil, fmt.Errorf("topology: shared: %d hosts outside 2..%d", hosts, coherency.MaxCoherentHosts)
	}
	if !opts.Coherent && hosts != 2 {
		return nil, fmt.Errorf("topology: shared: application-level (Peterson) coherency is two-host only; set Coherent for %d hosts", hosts)
	}
	segSize := opts.SegmentSize
	if segSize == 0 {
		segSize = units.MiB
	}
	if segSize <= 0 || segSize%units.CacheLine != 0 {
		return nil, fmt.Errorf("topology: shared: segment size %d not a positive multiple of %d", segSize, units.CacheLine)
	}
	cacheLines := opts.CacheLines
	if cacheLines == 0 {
		cacheLines = 256
	}

	card, err := fpga.New(opts.FPGA)
	if err != nil {
		return nil, err
	}
	// Window size covers the payload plus the Peterson control block;
	// round to a 4 KiB page as an enumerator would.
	winSize := (uint64(segSize) + 64 + 4095) &^ 4095
	if winSize > uint64(card.HDM().Capacity().Bytes()) {
		return nil, fmt.Errorf("topology: shared: segment %v exceeds card HDM %v", segSize, card.HDM().Capacity())
	}
	if winSize > sharedWindowStride {
		return nil, fmt.Errorf("topology: shared: segment %v exceeds the %v per-host window stride", segSize, units.Size(sharedWindowStride))
	}

	sw := cxl.NewSwitch("shared-hdm")
	if err := sw.AddDownstream("gfam", card); err != nil {
		return nil, err
	}

	s := &SharedHDM{
		Card:    card,
		Switch:  sw,
		Segment: coherency.Segment{Base: 0, Size: int64(segSize)},
	}
	vppbs := make([]string, hosts)
	for i := 0; i < hosts; i++ {
		base := sharedWindowStride * uint64(i+1)
		if err := card.ProgramDecoder(&cxl.HDMDecoder{Base: base, Size: winSize}); err != nil {
			return nil, err
		}
		vppb := fmt.Sprintf("host%d", i)
		if err := sw.BindShared(vppb, "gfam"); err != nil {
			return nil, err
		}
		ep, ok := sw.EndpointFor(vppb)
		if !ok {
			return nil, fmt.Errorf("topology: shared: vPPB %s lost its binding", vppb)
		}
		rp := cxl.NewRootPort(fmt.Sprintf("rp-node%d", i), card.Link())
		if err := rp.Attach(ep); err != nil {
			return nil, err
		}
		vppbs[i] = vppb
		s.Hosts = append(s.Hosts, &SharedHost{
			Index:      i,
			VPPB:       vppb,
			Port:       rp,
			WindowBase: base,
			Accessor:   coherency.NewMemIOAccessor(rp, base),
		})
	}

	if opts.Coherent {
		dir, err := coherency.NewDirectory(s.Segment, sw, vppbs)
		if err != nil {
			return nil, err
		}
		s.Directory = dir
		for _, h := range s.Hosts {
			cache, err := coherency.NewCoherentCache(h.Index, dir, h.Accessor, s.Segment, cacheLines)
			if err != nil {
				return nil, err
			}
			if err := sw.RegisterSnooper(h.VPPB, cache); err != nil {
				return nil, err
			}
			h.Cache = cache
		}
		return s, nil
	}

	// Paper configuration: two hosts, Peterson's algorithm over device
	// words, explicit flush/invalidate.
	h0, h1, err := coherency.NewPair(s.Hosts[0].Accessor, s.Hosts[1].Accessor, s.Segment)
	if err != nil {
		return nil, err
	}
	s.Hosts[0].Peterson, s.Hosts[1].Peterson = h0, h1
	return s, nil
}
