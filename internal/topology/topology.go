// Package topology describes the machines the paper experiments on:
// sockets, cores, NUMA memory nodes, and the fabrics joining them. Two
// builders reproduce the paper's setups (§2.1): Setup #1 is the dual
// Sapphire Rapids node with one DDR5-4800 DIMM per socket and the CXL
// FPGA prototype; Setup #2 is the dual Xeon Gold 5215 reference node
// with six DDR4-2666 channels per socket. A third builder provides the
// Optane DCPMM reference platform the paper compares against.
package topology

import (
	"fmt"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// CoreID identifies a core machine-wide (0..n-1, socket-major, matching
// the paper's "cores 0-9" / "cores 10-19" numbering).
type CoreID int

// SocketID identifies a CPU socket.
type SocketID int

// NodeID identifies a NUMA memory node. The paper's annotations map
// directly: 0 = socket0 memory, 1 = socket1 memory, 2 = CXL memory.
type NodeID int

// CPUModel carries the microarchitectural parameters the performance
// model needs.
type CPUModel struct {
	// Name of the processor.
	Name string
	// BaseGHz is the base clock.
	BaseGHz float64
	// CoresPerSocket is the enabled core count (the paper's BIOS
	// limits the SPR sockets to 10 cores each).
	CoresPerSocket int
	// HyperThreading reports SMT availability (both setups have it;
	// STREAM runs one thread per physical core).
	HyperThreading bool
	// MLP is the per-core memory-level parallelism: sustained
	// outstanding 64-byte misses. Together with access latency it sets
	// per-thread bandwidth via Little's law. Sapphire Rapids' larger
	// caches and deeper queues give it a higher MLP than Xeon Gold,
	// which is exactly the §4 Class 2.a observation ("larger caches in
	// Setup #1 ... as opposed to Setup #2").
	MLP int
	// LLCMiB is the last-level cache per socket.
	LLCMiB int
}

// Core is one physical core.
type Core struct {
	ID     CoreID
	Socket SocketID
}

// Socket is one CPU package.
type Socket struct {
	ID    SocketID
	Model CPUModel
	Cores []Core
}

// NodeKind classifies NUMA nodes.
type NodeKind int

const (
	// NodeDRAM is socket-attached conventional memory.
	NodeDRAM NodeKind = iota
	// NodeCXL is memory behind a CXL endpoint.
	NodeCXL
	// NodePMem is DIMM-attached persistent memory (DCPMM reference).
	NodePMem
)

func (k NodeKind) String() string {
	switch k {
	case NodeDRAM:
		return "dram"
	case NodeCXL:
		return "cxl"
	case NodePMem:
		return "pmem"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one NUMA memory node.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Device is the backing media.
	Device memdev.Device
	// HomeSocket is the socket the node hangs off (-1 for a CXL node
	// reachable through the root complex; we attach the slot to
	// AttachSocket).
	HomeSocket SocketID
	// IPCap, when non-zero, is an additional device-side throughput
	// bound below the media peak — the prototype's CXL IP slice
	// throughput (§2.2: "scaling the resources allocated to the CXL IP
	// by increasing the number of slices is a viable strategy").
	IPCap units.Bandwidth
	// AttachSocket is the socket whose root complex owns the CXL slot
	// (CXL nodes only).
	AttachSocket SocketID
	// Port and Window are the enumerated CXL plumbing (CXL nodes only).
	Port   *cxl.RootPort
	Window cxl.MemWindow
	// InterleaveWays, when > 1, marks a striped CXL node: the window is
	// interleaved across this many identical device+port legs. Device
	// and IPCap then describe ONE leg; EffectiveCap scales them by the
	// way count, exactly as the striped data path multiplies measured
	// bandwidth.
	InterleaveWays int
	// Stripe is the striped data path of an interleaved node (the
	// real-transfer counterpart of the modelled scaling).
	Stripe *cxl.InterleaveSet
	// Ports lists every leg's root port for interleaved nodes
	// (Port == Ports[0]).
	Ports []*cxl.RootPort
	// Fabric, when set, replaces Port.Link() in paths: the aggregate
	// striped link of an interleaved node (interconnect.NewStriped).
	Fabric *interconnect.Link
}

// EffectiveCap is the device-side throughput bound for a traffic mix
// with the given read fraction: one leg's media rate clamped by its CXL
// IP cap, multiplied by the interleave width — N devices serve an
// N-way-striped window in parallel. Fabric caps are applied separately
// per path by the performance engine.
func (n *Node) EffectiveCap(readFrac float64) units.Bandwidth {
	cap := n.Device.Profile().StreamPeak(readFrac)
	if n.IPCap > 0 && n.IPCap < cap {
		cap = n.IPCap
	}
	if n.InterleaveWays > 1 {
		cap = units.Bandwidth(float64(cap) * float64(n.InterleaveWays))
	}
	return cap
}

// DataPath returns the node's memory data path as a cxl.MemIO in
// node-relative address space (offset 0 is the node's first byte): the
// striped interleave set for a multi-leg CXL node, the window-translated
// root port for a single-leg one, and a direct device adapter for
// DRAM/PMem nodes (immediate completions, no link traversal). Consumers
// program against the interface, never against the concrete plumbing.
func (n *Node) DataPath() cxl.MemIO {
	switch {
	case n.Stripe != nil:
		return cxl.NewWindowIO(n.Stripe, n.Window.Base)
	case n.Port != nil:
		return cxl.NewWindowIO(n.Port, n.Window.Base)
	default:
		return cxl.NewDeviceIO(n.Device)
	}
}

// Persistent reports whether the node's media survives power cycles.
func (n *Node) Persistent() bool { return n.Device.Persistent() }

func (n *Node) String() string {
	return fmt.Sprintf("node%d(%s, %s, %s)", n.ID, n.Kind, n.Device.Name(), n.Device.Capacity())
}

// Machine is a complete host.
type Machine struct {
	Name    string
	Sockets []*Socket
	Nodes   []*Node
	// UPI is the inter-socket link (nil for single-socket machines).
	UPI *interconnect.Link
}

// Core resolves a core by ID.
func (m *Machine) Core(id CoreID) (Core, error) {
	for _, s := range m.Sockets {
		for _, c := range s.Cores {
			if c.ID == id {
				return c, nil
			}
		}
	}
	return Core{}, fmt.Errorf("topology: %s: no core %d", m.Name, id)
}

// Cores lists every core, socket-major.
func (m *Machine) Cores() []Core {
	var out []Core
	for _, s := range m.Sockets {
		out = append(out, s.Cores...)
	}
	return out
}

// CoresOn lists the cores of one socket.
func (m *Machine) CoresOn(id SocketID) []Core {
	for _, s := range m.Sockets {
		if s.ID == id {
			out := make([]Core, len(s.Cores))
			copy(out, s.Cores)
			return out
		}
	}
	return nil
}

// Socket resolves a socket by ID.
func (m *Machine) Socket(id SocketID) (*Socket, error) {
	for _, s := range m.Sockets {
		if s.ID == id {
			return s, nil
		}
	}
	return nil, fmt.Errorf("topology: %s: no socket %d", m.Name, id)
}

// Node resolves a NUMA node by ID.
func (m *Machine) Node(id NodeID) (*Node, error) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, nil
		}
	}
	return nil, fmt.Errorf("topology: %s: no node %d", m.Name, id)
}

// Path returns the fabric traversal from a core to a node: empty for
// socket-local DRAM/PMem, UPI for the alternate socket, the CXL link
// (plus UPI when the core sits on the other socket) for CXL nodes.
func (m *Machine) Path(c Core, id NodeID) (interconnect.Path, error) {
	n, err := m.Node(id)
	if err != nil {
		return interconnect.Path{}, err
	}
	switch n.Kind {
	case NodeDRAM, NodePMem:
		if n.HomeSocket == c.Socket {
			return interconnect.Path{}, nil
		}
		if m.UPI == nil {
			return interconnect.Path{}, fmt.Errorf("topology: %s: core %d cannot reach node %d without UPI", m.Name, c.ID, id)
		}
		return interconnect.Path{Links: []*interconnect.Link{m.UPI}}, nil
	case NodeCXL:
		if n.Port == nil {
			return interconnect.Path{}, fmt.Errorf("topology: %s: CXL node %d has no port", m.Name, id)
		}
		link := n.Port.Link()
		if n.Fabric != nil {
			link = n.Fabric // striped node: legs traverse in parallel
		}
		if c.Socket == n.AttachSocket {
			return interconnect.Path{Links: []*interconnect.Link{link}}, nil
		}
		if m.UPI == nil {
			return interconnect.Path{}, fmt.Errorf("topology: %s: core %d cannot reach CXL node %d without UPI", m.Name, c.ID, id)
		}
		return interconnect.Path{Links: []*interconnect.Link{m.UPI, link}}, nil
	default:
		return interconnect.Path{}, fmt.Errorf("topology: %s: node %d has unknown kind", m.Name, id)
	}
}

// AccessLatency is the unloaded latency from a core to a node: media
// idle latency plus the path's fabric latency.
func (m *Machine) AccessLatency(c Core, id NodeID) (units.Latency, error) {
	n, err := m.Node(id)
	if err != nil {
		return 0, err
	}
	p, err := m.Path(c, id)
	if err != nil {
		return 0, err
	}
	return n.Device.Profile().IdleLatency + p.Latency(), nil
}

// Validate checks structural invariants: contiguous socket-major core
// IDs, unique node IDs, devices present, reachable nodes.
func (m *Machine) Validate() error {
	next := CoreID(0)
	for _, s := range m.Sockets {
		if len(s.Cores) == 0 {
			return fmt.Errorf("topology: %s: socket %d has no cores", m.Name, s.ID)
		}
		for _, c := range s.Cores {
			if c.ID != next {
				return fmt.Errorf("topology: %s: core IDs not socket-major contiguous at %d", m.Name, c.ID)
			}
			if c.Socket != s.ID {
				return fmt.Errorf("topology: %s: core %d claims socket %d inside socket %d", m.Name, c.ID, c.Socket, s.ID)
			}
			next++
		}
	}
	seen := map[NodeID]bool{}
	for _, n := range m.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("topology: %s: duplicate node %d", m.Name, n.ID)
		}
		seen[n.ID] = true
		if n.Device == nil {
			return fmt.Errorf("topology: %s: node %d has no device", m.Name, n.ID)
		}
		for _, c := range m.Cores() {
			if _, err := m.Path(c, n.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// Describe renders the machine in the style of the paper's Figures 2/3.
func (m *Machine) Describe() string {
	s := m.Name + "\n"
	for _, sk := range m.Sockets {
		first := sk.Cores[0].ID
		last := sk.Cores[len(sk.Cores)-1].ID
		s += fmt.Sprintf("  socket%d: %s, cores %d-%d\n", sk.ID, sk.Model.Name, first, last)
	}
	for _, n := range m.Nodes {
		s += "  " + n.String()
		if n.Kind == NodeCXL && n.Port != nil {
			s += fmt.Sprintf(" via %s", n.Port.Link().Name)
		}
		s += "\n"
	}
	if m.UPI != nil {
		s += fmt.Sprintf("  upi: %s\n", m.UPI)
	}
	return s
}

func newSocket(id SocketID, model CPUModel, firstCore CoreID) *Socket {
	s := &Socket{ID: id, Model: model}
	for i := 0; i < model.CoresPerSocket; i++ {
		s.Cores = append(s.Cores, Core{ID: firstCore + CoreID(i), Socket: id})
	}
	return s
}
