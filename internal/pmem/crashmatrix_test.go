package pmem

import (
	"bytes"
	"testing"
)

// Crash-recovery matrix: a deterministic workload opens a transaction
// on EVERY undo-log lane, interleaves their log appends, and commits
// them one by one; the matrix then replays that exact workload with
// power failing after every single media write — every log append, log
// count bump, data persist and commit-point write across all TxLanes
// lanes is a crash point. This supersedes the old single-point
// multi-lane tests (one hand-picked crash before any commit / between
// two commits): every window those tests sampled is now swept
// exhaustively, lane by lane.
//
// Invariants asserted after each recovery:
//   - atomicity: every object reads entirely old or entirely new —
//     never a mixture, whatever lane its transaction was on;
//   - determinism: a transaction whose commit completed before the cut
//     MUST read new, one whose commit had not begun MUST read old;
//   - allocator consistency: the heap walk (Check) succeeds and its
//     block/byte accounting matches the no-crash control run — the
//     crash window cannot leak or corrupt allocator state;
//   - liveness: the recovered pool still allocates, frees and commits.

const (
	matrixObjSize = 128
	matrixOld     = 0xA5
)

// matrixWorkload drives the deterministic multi-lane transaction
// pattern against p. Returns the per-transaction media-write counts:
// start[i] = r.writes before tx i's Commit is invoked, done[i] =
// r.writes after it returned.
func matrixWorkload(t *testing.T, p *Pool, r *memRegion, oids []OID) (start, done []int) {
	t.Helper()
	txs := make([]*Tx, TxLanes)
	for i := range txs {
		var err error
		if txs[i], err = p.Begin(); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave the log appends: lane 0's first entry, lane 1's first
	// entry, ..., lane 0's second entry, ... — so a cut lands between
	// appends of DIFFERENT lanes, not only between transactions.
	for half := 0; half < 2; half++ {
		for i, tx := range txs {
			if err := tx.AddRange(oids[i], uint64(half)*64, 64); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range txs {
		v, err := p.View(oids[i], matrixObjSize)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			v[j] = byte(0x10 + i) // new pattern, distinct per lane
		}
	}
	start = make([]int, TxLanes)
	done = make([]int, TxLanes)
	for i, tx := range txs {
		start[i] = r.writes
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		done[i] = r.writes
	}
	return start, done
}

// matrixSetup creates a pool with TxLanes seeded objects.
func matrixSetup(t *testing.T) (*Pool, *memRegion, []OID) {
	t.Helper()
	r := newMemRegion(testPoolSize, true)
	p, err := Create(r, "matrix")
	if err != nil {
		t.Fatal(err)
	}
	oids := make([]OID, TxLanes)
	for i := range oids {
		if oids[i], err = p.Alloc(matrixObjSize); err != nil {
			t.Fatal(err)
		}
		v, err := p.View(oids[i], matrixObjSize)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			v[j] = matrixOld
		}
		if err := p.Persist(oids[i], matrixObjSize); err != nil {
			t.Fatal(err)
		}
	}
	return p, r, oids
}

func TestCrashRecoveryMatrixAllLanes(t *testing.T) {
	// Control run: no crash. Records the workload's total write count,
	// the per-commit write boundaries and the healthy heap accounting.
	ctrlPool, ctrlRegion, ctrlOids := matrixSetup(t)
	preTxWrites := ctrlRegion.writes
	start, done := matrixWorkload(t, ctrlPool, ctrlRegion, ctrlOids)
	total := ctrlRegion.writes - preTxWrites
	if total < 4*TxLanes {
		t.Fatalf("workload performed only %d writes across %d lanes; protocol too thin to sweep", total, TxLanes)
	}
	ctrlReport, err := ctrlPool.Check()
	if err != nil {
		t.Fatal(err)
	}
	for i := range start {
		start[i] -= preTxWrites
		done[i] -= preTxWrites
	}

	old := bytes.Repeat([]byte{matrixOld}, matrixObjSize)
	for cut := 0; cut <= total; cut++ {
		p, r, oids := matrixSetup(t)
		r.cutoff = r.writes + cut
		runMatrixUntilPowerFails(p, oids)
		// Power restored.
		r.cutoff = -1
		p.SimulateCrash()

		p2, err := Open(r, "matrix")
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		for i, oid := range oids {
			got := make([]byte, matrixObjSize)
			if err := r.ReadAt(got, int64(oid.Off)); err != nil {
				t.Fatal(err)
			}
			new_ := bytes.Repeat([]byte{byte(0x10 + i)}, matrixObjSize)
			isOld, isNew := bytes.Equal(got, old), bytes.Equal(got, new_)
			if !isOld && !isNew {
				t.Fatalf("cut=%d lane %d: torn object %x", cut, i, got[:8])
			}
			if cut >= done[i] && !isNew {
				t.Errorf("cut=%d lane %d: commit completed at write %d but object rolled back", cut, i, done[i])
			}
			if cut <= start[i] && !isOld {
				t.Errorf("cut=%d lane %d: commit began at write %d but object moved forward", cut, i, start[i])
			}
		}
		// Allocator invariants: the walk succeeds and matches the
		// control accounting exactly — the crash could not have leaked
		// or merged blocks (allocations all predate the tx phase).
		rep, err := p2.Check()
		if err != nil {
			t.Fatalf("cut=%d: heap corrupt after recovery: %v", cut, err)
		}
		if rep != ctrlReport {
			t.Errorf("cut=%d: heap accounting %+v, want %+v", cut, rep, ctrlReport)
		}
		// Liveness: the recovered pool still serves the full alloc/tx
		// cycle.
		oid, err := p2.Alloc(64)
		if err != nil {
			t.Fatalf("cut=%d: alloc after recovery: %v", cut, err)
		}
		if err := p2.Update(oid, 0, 8, func(b []byte) error { b[0] = 1; return nil }); err != nil {
			t.Fatalf("cut=%d: tx after recovery: %v", cut, err)
		}
		if err := p2.Free(oid); err != nil {
			t.Fatalf("cut=%d: free after recovery: %v", cut, err)
		}
	}
}

// runMatrixUntilPowerFails replays the deterministic workload,
// tolerating the errors that a power cut mid-protocol surfaces (writes
// are silently dropped by the region, so most of the time everything
// "succeeds" — the damage is only visible at recovery).
func runMatrixUntilPowerFails(p *Pool, oids []OID) {
	txs := make([]*Tx, 0, TxLanes)
	for range oids {
		tx, err := p.Begin()
		if err != nil {
			return
		}
		txs = append(txs, tx)
	}
	for half := 0; half < 2; half++ {
		for i, tx := range txs {
			if err := tx.AddRange(oids[i], uint64(half)*64, 64); err != nil {
				return
			}
		}
	}
	for i := range txs {
		v, err := p.View(oids[i], matrixObjSize)
		if err != nil {
			return
		}
		for j := range v {
			v[j] = byte(0x10 + i)
		}
	}
	for _, tx := range txs {
		_ = tx.Commit()
	}
}

// TestCrashMatrixLaneIndependence is the matrix's spot check in prose
// form: with the cut placed exactly between two commits, the committed
// lane must read new while every uncommitted lane reads old — the
// boundary case the old hand-written tests covered, now derived from
// the recorded commit boundaries instead of guessed.
func TestCrashMatrixLaneIndependence(t *testing.T) {
	ctrlPool, ctrlRegion, ctrlOids := matrixSetup(t)
	pre := ctrlRegion.writes
	_, done := matrixWorkload(t, ctrlPool, ctrlRegion, ctrlOids)
	cut := done[TxLanes/2] - pre // just after the middle lane's commit

	p, r, oids := matrixSetup(t)
	r.cutoff = r.writes + cut
	runMatrixUntilPowerFails(p, oids)
	r.cutoff = -1
	p.SimulateCrash()
	p2, err := Open(r, "matrix")
	if err != nil {
		t.Fatal(err)
	}
	for i, oid := range oids {
		got := make([]byte, matrixObjSize)
		if err := r.ReadAt(got, int64(oid.Off)); err != nil {
			t.Fatal(err)
		}
		want := byte(matrixOld)
		if i <= TxLanes/2 {
			want = byte(0x10 + i)
		}
		if got[0] != want || got[matrixObjSize-1] != want {
			t.Errorf("lane %d after boundary crash: %#x, want %#x", i, got[0], want)
		}
	}
	if _, err := p2.Check(); err != nil {
		t.Fatal(err)
	}
}
