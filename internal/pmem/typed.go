package pmem

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Typed views over pool objects. STREAM-PMem allocates its three arrays
// as pmemobj objects and then operates on them as plain double arrays
// (Listing 2); Float64s provides the same zero-copy access in Go.
//
// The unsafe reinterpretation is confined to this file. It is sound
// because Alloc returns 64-byte-aligned offsets inside a heap-allocated
// []byte whose base is at least 8-byte aligned, the view slice is never
// reallocated while the pool is open, and the element count is bounds-
// checked against the object size first.

// Float64s returns the object's bytes as a []float64 of n elements.
// The slice aliases pool memory: stores are volatile until Persist.
func (p *Pool) Float64s(oid OID, n int) ([]float64, error) {
	if n <= 0 {
		return nil, &PoolError{Op: "float64s", Layout: p.layout, Why: "non-positive length"}
	}
	b, err := p.View(oid, uint64(n)*8)
	if err != nil {
		return nil, err
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		// Cannot happen with 64-byte aligned allocations; checked for
		// safety so the unsafe cast below is provably aligned.
		return nil, &PoolError{Op: "float64s", Layout: p.layout, Why: "object not 8-byte aligned"}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
}

// AllocFloat64s allocates a persistent array of n doubles, returning
// the OID and the mapped slice — the POBJ_ALLOC call of Listing 2.
func (p *Pool) AllocFloat64s(n int) (OID, []float64, error) {
	if n <= 0 {
		return OID{}, nil, &PoolError{Op: "alloc-float64s", Layout: p.layout, Why: "non-positive length"}
	}
	oid, err := p.Alloc(uint64(n) * 8)
	if err != nil {
		return OID{}, nil, err
	}
	s, err := p.Float64s(oid, n)
	if err != nil {
		return OID{}, nil, err
	}
	return oid, s, nil
}

// PersistFloat64s flushes elements [lo, hi) of a float64 object.
func (p *Pool) PersistFloat64s(oid OID, lo, hi int) error {
	if lo < 0 || hi < lo {
		return &PoolError{Op: "persist-float64s", Layout: p.layout, Why: "bad range"}
	}
	if lo == hi {
		return nil
	}
	sub := OID{PoolID: oid.PoolID, Off: oid.Off + uint64(lo)*8}
	return p.Persist(sub, uint64(hi-lo)*8)
}

// SetUint64 transactionally stores v into the 8 bytes at oid+off.
// Useful for persistent counters and progress markers.
func (p *Pool) SetUint64(oid OID, off uint64, v uint64) error {
	return p.Update(oid, off, 8, func(b []byte) error {
		binary.LittleEndian.PutUint64(b, v)
		return nil
	})
}

// GetUint64 reads the 8 bytes at oid+off.
func (p *Pool) GetUint64(oid OID, off uint64) (uint64, error) {
	b, err := p.View(oid, off+8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[off : off+8]), nil
}

// SetFloat64 transactionally stores v into the 8 bytes at oid+off.
func (p *Pool) SetFloat64(oid OID, off uint64, v float64) error {
	return p.SetUint64(oid, off, math.Float64bits(v))
}

// GetFloat64 reads a float64 at oid+off.
func (p *Pool) GetFloat64(oid OID, off uint64) (float64, error) {
	u, err := p.GetUint64(oid, off)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}
