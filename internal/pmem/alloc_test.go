package pmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndZeroing(t *testing.T) {
	p, _ := createPool(t)
	for _, n := range []uint64{1, 7, 64, 100, 4096} {
		oid, err := p.Alloc(n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		if oid.Off%64 != 0 {
			t.Errorf("Alloc(%d) offset %#x not 64-byte aligned", n, oid.Off)
		}
		v, err := p.View(oid, n)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range v {
			if b != 0 {
				t.Fatalf("Alloc(%d) byte %d = %#x, want 0", n, i, b)
			}
		}
	}
}

func TestAllocSizeTracking(t *testing.T) {
	p, _ := createPool(t)
	oid, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.AllocSize(oid)
	if err != nil || n != 100 {
		t.Errorf("AllocSize = %d, %v; want 100", n, err)
	}
	if err := p.Free(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AllocSize(oid); err == nil {
		t.Error("AllocSize of freed object accepted")
	}
}

func TestAllocDistinctNonOverlapping(t *testing.T) {
	p, _ := createPool(t)
	type ext struct{ lo, hi uint64 }
	var exts []ext
	for i := 0; i < 50; i++ {
		n := uint64(i*13%257 + 1)
		oid, err := p.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		exts = append(exts, ext{oid.Off, oid.Off + n})
	}
	for i := range exts {
		for j := i + 1; j < len(exts); j++ {
			a, b := exts[i], exts[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("allocations overlap: [%#x,%#x) and [%#x,%#x)", a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	p, _ := createPool(t)
	oid, err := p.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Free(oid); err != nil {
		t.Fatal(err)
	}
	// Double free rejected (checked before the block is reused).
	if err := p.Free(oid); err == nil {
		t.Error("double free accepted")
	}
	// Freed space is reusable.
	oid2, err := p.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if oid2.Off != oid.Off {
		t.Errorf("first-fit should reuse the freed block: got %#x, had %#x", oid2.Off, oid.Off)
	}
	// Free of a non-block offset rejected.
	if err := p.Free(OID{PoolID: p.PoolID(), Off: oid.Off + 64}); err == nil {
		t.Error("free of interior pointer accepted")
	}
}

func TestForwardCoalescing(t *testing.T) {
	p, _ := createPool(t)
	a, _ := p.Alloc(1024)
	b, _ := p.Alloc(1024)
	// Freeing b then a merges a with b's block, so a 2KiB allocation
	// fits where the two 1KiB ones were.
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	big, err := p.Alloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	if big.Off != a.Off {
		t.Errorf("coalesced block not reused: got %#x, want %#x", big.Off, a.Off)
	}
}

func TestOutOfSpace(t *testing.T) {
	p, _ := createPool(t)
	if _, err := p.Alloc(uint64(testPoolSize)); err == nil {
		t.Error("oversized alloc accepted")
	}
	// Fill the heap with big chunks until exhaustion, then verify the
	// error and that a small allocation still works after freeing.
	var last OID
	for {
		oid, err := p.Alloc(512 << 10)
		if err != nil {
			break
		}
		last = oid
	}
	if _, err := p.Alloc(512 << 10); err == nil {
		t.Error("alloc after exhaustion succeeded")
	}
	if err := p.Free(last); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(1024); err != nil {
		t.Errorf("alloc after free failed: %v", err)
	}
	if _, err := p.Alloc(0); err == nil {
		t.Error("zero-size alloc accepted")
	}
}

func TestHeapSurvivesReopen(t *testing.T) {
	p, r := createPool(t)
	var oids []OID
	for i := 0; i < 10; i++ {
		oid, err := p.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := p.View(oid, 256)
		v[0] = byte(i + 1)
		if err := p.Persist(oid, 256); err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := p.Free(oids[3]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	// Live objects keep their data.
	for i, oid := range oids {
		if i == 3 {
			continue
		}
		v, err := p2.View(oid, 256)
		if err != nil {
			t.Fatal(err)
		}
		if v[0] != byte(i+1) {
			t.Errorf("object %d byte = %d, want %d", i, v[0], i+1)
		}
	}
	// The freed slot is free again after rebuild: allocating reuses it.
	oid, err := p2.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if oid.Off != oids[3].Off {
		t.Errorf("rebuilt free list did not expose the freed block: got %#x, want %#x", oid.Off, oids[3].Off)
	}
}

func TestCheckReport(t *testing.T) {
	p, _ := createPool(t)
	r0, err := p.Check()
	if err != nil {
		t.Fatal(err)
	}
	if r0.AllocatedBlocks != 0 || r0.FreeBlocks != 1 {
		t.Errorf("fresh pool check = %+v", r0)
	}
	a, _ := p.Alloc(128)
	_, _ = p.Alloc(128)
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	r1, err := p.Check()
	if err != nil {
		t.Fatal(err)
	}
	if r1.AllocatedBlocks != 1 {
		t.Errorf("allocated blocks = %d, want 1", r1.AllocatedBlocks)
	}
	if r1.FreeBytes == 0 || r1.Blocks < 3 {
		t.Errorf("check = %+v", r1)
	}
	// Corruption is detected.
	p.view[p.heapOff] = 0xFF
	if _, err := p.Check(); err == nil {
		t.Error("corrupt heap passed check")
	}
}

// Property: any interleaving of allocs and frees leaves the heap walk
// consistent (Check passes) and live objects' extents disjoint.
func TestHeapConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := createPoolQuick()
		type obj struct {
			oid OID
			n   uint64
		}
		var live []obj
		for step := 0; step < 120; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				if err := p.Free(live[i].oid); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			n := uint64(rng.Intn(2000) + 1)
			oid, err := p.Alloc(n)
			if err != nil {
				continue // heap full is fine
			}
			live = append(live, obj{oid, n})
		}
		if _, err := p.Check(); err != nil {
			return false
		}
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.oid.Off < b.oid.Off+b.n && b.oid.Off < a.oid.Off+a.n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func createPoolQuick() (*Pool, *memRegion) {
	r := newMemRegion(1<<20, true)
	p, err := Create(r, "quick")
	if err != nil {
		panic(err)
	}
	return p, r
}
