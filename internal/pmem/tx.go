package pmem

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Undo-log transactions, the pmemobj_tx machinery STREAM-PMem relies on
// for transactional integrity (§1.4: the transaction "ensures that
// either all of the modifications are successfully applied or none of
// them take effect").
//
// Protocol (all log writes go straight to the media, never only to the
// view, so the log itself is crash-safe):
//
//  1. AddRange snapshots the current media content of a range into the
//     log and persists the entry before the caller mutates the view.
//  2. The caller mutates the mapped view freely.
//  3. Commit persists every added range view→media, then — and only
//     then — invalidates the log in a single atomic-width write.
//  4. Recovery (pool Open) finds a valid, non-empty log and applies the
//     snapshots back onto the media: the transaction never happened.
//
// Concurrency. The log region [logOff, logOff+logSize) is carved into
// TxLanes equal lanes, one per in-flight transaction — the multi-lane
// analogue of PMDK's per-thread transaction scopes. Begin claims a free
// lane (blocking when all are busy), AddRange/Commit/Abort touch only
// that lane, and recovery walks every lane: any subset of transactions
// torn by a crash rolls back independently. Transactions on disjoint
// objects therefore run and commit fully in parallel; single-writer
// semantics per object remain the caller's contract (two goroutines
// must not transact over the same object concurrently).
//
// Lane layout inside [laneBase, laneBase+laneSize):
//
//	0:4   state: 0 = idle, 1 = active
//	4:8   entry count (u32)
//	8:    entries
//
// entry: [off u64][len u64][crc u32][pad u32][data ...] padded to 8.
const (
	logState = 0
	logCount = 4
	// laneHeaderSize is the per-lane control block; entries follow.
	laneHeaderSize = 8

	logIdle   uint32 = 0
	logActive uint32 = 1

	entryHeaderSize = 24
)

// TxError is a transaction failure.
type TxError struct {
	Op  string
	Why string
}

func (e *TxError) Error() string { return fmt.Sprintf("pmem: tx %s: %s", e.Op, e.Why) }

// Tx is an open transaction bound to one undo-log lane. A Tx is owned
// by the goroutine that began it; its methods must not be called
// concurrently (PMDK scopes transactions per-thread the same way).
type Tx struct {
	p      *Pool
	lane   uint64 // lane index in [0, TxLanes)
	cursor uint64 // next free byte in the lane, relative to lane base
	count  uint32 // entries written
	ranges []txRange
	done   bool
}

type txRange struct {
	off uint64
	n   uint64
}

// laneSize is the per-lane byte budget.
func (p *Pool) laneSize() uint64 { return p.logSize / TxLanes }

// TxSnapshotLimit reports the largest single range one AddRange call
// can snapshot in this pool (the lane budget minus lane and entry
// headers). Callers that persist large state blobs transactionally
// should validate against it at setup time rather than discover a
// full lane at Save time.
func (p *Pool) TxSnapshotLimit() uint64 {
	return (p.laneSize() - laneHeaderSize - entryHeaderSize) &^ 7
}

// laneBase is the absolute offset of a lane's control block.
func (p *Pool) laneBase(lane uint64) uint64 { return p.logOff + lane*p.laneSize() }

// Begin opens a transaction (TX_BEGIN), claiming a free undo-log lane.
// When all TxLanes lanes carry in-flight transactions, Begin blocks
// until one commits or aborts.
func (p *Pool) Begin() (*Tx, error) {
	p.stateMu.RLock()
	err := p.checkLive("tx-begin")
	p.stateMu.RUnlock()
	if err != nil {
		return nil, err
	}
	if p.lanesLost.Load() >= TxLanes {
		return nil, &TxError{Op: "begin", Why: "all undo-log lanes lost to I/O failures; reopen the pool to recover"}
	}
	lane := <-p.lanes
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("tx-begin"); err != nil {
		p.lanes <- lane
		return nil, err
	}
	tx := &Tx{p: p, lane: lane, cursor: laneHeaderSize}
	// Mark the lane active on media before any entry lands.
	if err := p.laneWrite32(lane, logState, logActive); err != nil {
		p.lanes <- lane
		return nil, err
	}
	if err := p.laneWrite32(lane, logCount, 0); err != nil {
		p.lanes <- lane
		return nil, err
	}
	p.activeTx.Add(1)
	return tx, nil
}

// release returns the transaction's lane to the free list; called once
// per Tx, when it finishes cleanly or the pool is dead.
func (tx *Tx) release() {
	tx.done = true
	tx.p.activeTx.Add(-1)
	tx.p.lanes <- tx.lane
}

// abandon retires the transaction WITHOUT recycling its lane: after an
// I/O failure mid-Abort the lane's on-media undo entries are the only
// copy of the pre-transaction state, so the lane must stay out of
// circulation (a new transaction claiming it would overwrite them)
// until recovery at the next Open replays it. Each abandonment
// permanently costs one lane; Begin reports when none remain.
func (tx *Tx) abandon() {
	tx.done = true
	tx.p.activeTx.Add(-1)
	tx.p.lanesLost.Add(1)
}

// AddRange snapshots [oid.Off+off, +n) so it can be rolled back
// (pmemobj_tx_add_range). Must be called before mutating the range.
func (tx *Tx) AddRange(oid OID, off, n uint64) error {
	p := tx.p
	if tx.done {
		return &TxError{Op: "add-range", Why: "transaction finished"}
	}
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("tx-add"); err != nil {
		return err
	}
	if n == 0 {
		return &TxError{Op: "add-range", Why: "zero length"}
	}
	if err := p.checkOID("tx-add", oid, off+n); err != nil {
		return err
	}
	start := oid.Off + off
	padded := alignUp64(n, 8)
	need := entryHeaderSize + padded
	if tx.cursor+need > p.laneSize() {
		return &TxError{Op: "add-range", Why: "undo log lane full"}
	}
	// Snapshot MEDIA content (the pre-transaction persistent state),
	// not the view: rollback must restore what recovery would see.
	snap := make([]byte, padded)
	if err := p.region.ReadAt(snap[:n], int64(start)); err != nil {
		return err
	}
	entry := make([]byte, entryHeaderSize+len(snap))
	binary.LittleEndian.PutUint64(entry[0:], start)
	binary.LittleEndian.PutUint64(entry[8:], n)
	binary.LittleEndian.PutUint32(entry[16:], crc32.Checksum(snap[:n], crcTable))
	copy(entry[entryHeaderSize:], snap)
	if err := p.region.WriteAt(entry, int64(p.laneBase(tx.lane)+tx.cursor)); err != nil {
		return err
	}
	// Entry persisted; only then bump the count (the recovery fence).
	tx.cursor += need
	tx.count++
	if err := p.laneWrite32(tx.lane, logCount, tx.count); err != nil {
		return err
	}
	tx.ranges = append(tx.ranges, txRange{off: start, n: n})
	p.stats.Persists.Add(1)
	p.stats.PersistBytes.Add(int64(len(entry)))
	return nil
}

// Commit persists every added range and retires the lane (TX_COMMIT).
// On an I/O failure before the commit point the transaction stays
// open — nothing committed, the lane still leased — and the caller's
// recovery path is Abort, which rolls the media and view back.
func (tx *Tx) Commit() error {
	p := tx.p
	if tx.done {
		return &TxError{Op: "commit", Why: "transaction finished"}
	}
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("tx-commit"); err != nil {
		// The pool is gone (closed or crashed): this transaction can
		// never proceed, so its lane must not stay leased — a leaked
		// lane would eventually deadlock Begin. Recovery at the next
		// Open rolls the lane back.
		tx.release()
		return err
	}
	for _, r := range tx.ranges {
		if err := p.persistRaw(int64(r.off), int64(r.n)); err != nil {
			return err
		}
	}
	p.Drain()
	// The commit point: a single 4-byte state write. Before it,
	// recovery rolls this lane back; after it, the new data is the
	// truth.
	if err := p.laneWrite32(tx.lane, logState, logIdle); err != nil {
		return err
	}
	if err := p.laneWrite32(tx.lane, logCount, 0); err != nil {
		return err
	}
	tx.release()
	p.stats.TxCommits.Add(1)
	return nil
}

// Abort rolls the added ranges back on media and in the view
// (TX_ABORT).
func (tx *Tx) Abort() error {
	p := tx.p
	if tx.done {
		return &TxError{Op: "abort", Why: "transaction finished"}
	}
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("tx-abort"); err != nil {
		// See Commit: a dead pool means the lane lease must be
		// returned here, not leaked.
		tx.release()
		return err
	}
	if err := p.replayLane(tx.lane, p.region.ReadAt); err != nil {
		tx.abandon()
		return err
	}
	// Refresh the view from the restored media.
	for _, r := range tx.ranges {
		if err := p.region.ReadAt(p.view[r.off:r.off+r.n], int64(r.off)); err != nil {
			tx.abandon()
			return err
		}
	}
	if err := p.clearLane(tx.lane); err != nil {
		tx.abandon()
		return err
	}
	tx.release()
	p.stats.TxAborts.Add(1)
	return nil
}

// laneWrite32 writes one lane control word straight to media.
func (p *Pool) laneWrite32(lane, off uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return p.region.WriteAt(b[:], int64(p.laneBase(lane)+off))
}

// clearLane marks one lane idle on media.
func (p *Pool) clearLane(lane uint64) error {
	if err := p.laneWrite32(lane, logState, logIdle); err != nil {
		return err
	}
	return p.laneWrite32(lane, logCount, 0)
}

// clearLog marks every lane idle on media (pool creation / recovery).
func (p *Pool) clearLog() error {
	for lane := uint64(0); lane < TxLanes; lane++ {
		if err := p.clearLane(lane); err != nil {
			return err
		}
	}
	return nil
}

// replayLane walks one undo-log lane through readAt — the media for
// Abort, the in-memory view for crash recovery at Open — validating
// each entry's bounds and CRC, and writes every snapshot back onto the
// media (and the view, when one is mapped). One implementation of the
// entry format serves both rollback paths.
func (p *Pool) replayLane(lane uint64, readAt func(b []byte, off int64) error) error {
	base := p.laneBase(lane)
	var cnt [4]byte
	if err := readAt(cnt[:], int64(base+logCount)); err != nil {
		return err
	}
	count := binary.LittleEndian.Uint32(cnt[:])
	cursor := uint64(laneHeaderSize)
	for i := uint32(0); i < count; i++ {
		if cursor+entryHeaderSize > p.laneSize() {
			return &TxError{Op: "recover", Why: fmt.Sprintf("lane %d entry %d malformed", lane, i)}
		}
		hdr := make([]byte, entryHeaderSize)
		if err := readAt(hdr, int64(base+cursor)); err != nil {
			return err
		}
		off := binary.LittleEndian.Uint64(hdr[0:])
		n := binary.LittleEndian.Uint64(hdr[8:])
		wantCRC := binary.LittleEndian.Uint32(hdr[16:])
		padded := alignUp64(n, 8)
		if off+n > uint64(p.size) || cursor+entryHeaderSize+padded > p.laneSize() {
			return &TxError{Op: "recover", Why: fmt.Sprintf("lane %d entry %d malformed", lane, i)}
		}
		data := make([]byte, padded)
		if err := readAt(data, int64(base+cursor+entryHeaderSize)); err != nil {
			return err
		}
		if crc32.Checksum(data[:n], crcTable) != wantCRC {
			return &TxError{Op: "recover", Why: fmt.Sprintf("lane %d entry %d checksum mismatch", lane, i)}
		}
		if err := p.region.WriteAt(data[:n], int64(off)); err != nil {
			return err
		}
		if p.view != nil {
			copy(p.view[off:off+n], data[:n])
		}
		cursor += entryHeaderSize + padded
	}
	return nil
}

// recoverLogFromView runs at Open, after the pool image has been read
// into the view with a single media scan: every lane left active by a
// crash is parsed out of the in-memory image (identical to what a media
// read would return, since log writes always go straight to the media)
// and its snapshots are applied to both the media and the view.
// Transaction ranges live in the heap and the log in its own region, so
// an entry's data and its restore target never overlap.
func (p *Pool) recoverLogFromView() error {
	viewRead := func(b []byte, off int64) error {
		copy(b, p.view[off:])
		return nil
	}
	for lane := uint64(0); lane < TxLanes; lane++ {
		base := p.laneBase(lane)
		laneHdr := p.view[base : base+laneHeaderSize]
		if binary.LittleEndian.Uint32(laneHdr[logState:]) != logActive {
			continue
		}
		if err := p.replayLane(lane, viewRead); err != nil {
			return err
		}
		if err := p.clearLane(lane); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(laneHdr[logState:], logIdle)
		binary.LittleEndian.PutUint32(laneHdr[logCount:], 0)
	}
	return nil
}

// Update runs fn inside a transaction over the given range: the range
// is snapshotted, fn mutates the returned view slice, and the change
// commits atomically. Any error aborts. This is the TX_BEGIN/TX_ADD/
// TX_END convenience macro. Updates over disjoint objects may run
// concurrently from many goroutines.
func (p *Pool) Update(oid OID, off, n uint64, fn func(view []byte) error) error {
	tx, err := p.Begin()
	if err != nil {
		return err
	}
	if err := tx.AddRange(oid, off, n); err != nil {
		abortErr := tx.Abort()
		if abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	view, err := p.View(oid, off+n)
	if err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	if err := fn(view[off : off+n]); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	return tx.Commit()
}
