package pmem

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Undo-log transactions, the pmemobj_tx machinery STREAM-PMem relies on
// for transactional integrity (§1.4: the transaction "ensures that
// either all of the modifications are successfully applied or none of
// them take effect").
//
// Protocol (all log writes go straight to the media, never only to the
// view, so the log itself is crash-safe):
//
//  1. AddRange snapshots the current media content of a range into the
//     log and persists the entry before the caller mutates the view.
//  2. The caller mutates the mapped view freely.
//  3. Commit persists every added range view→media, then — and only
//     then — invalidates the log in a single atomic-width write.
//  4. Recovery (pool Open) finds a valid, non-empty log and applies the
//     snapshots back onto the media: the transaction never happened.
//
// Log layout inside [logOff, logOff+logSize):
//
//	0:4   state: 0 = idle, 1 = active
//	4:8   entry count (u32)
//	8:    entries
//
// entry: [off u64][len u64][crc u32][pad u32][data ...] padded to 8.
const (
	logState   = 0
	logCount   = 4
	logEntries = 8

	logIdle   uint32 = 0
	logActive uint32 = 1

	entryHeaderSize = 24
)

// TxError is a transaction failure.
type TxError struct {
	Op  string
	Why string
}

func (e *TxError) Error() string { return fmt.Sprintf("pmem: tx %s: %s", e.Op, e.Why) }

// Tx is an open transaction. A pool admits one transaction at a time
// (PMDK scopes them per-thread; the paper's workloads are one tx at a
// time per pool).
type Tx struct {
	p      *Pool
	cursor uint64 // next free byte in the log, relative to logOff
	count  uint32 // entries written
	ranges []txRange
	done   bool
}

type txRange struct {
	off uint64
	n   uint64
}

// Begin opens a transaction (TX_BEGIN).
func (p *Pool) Begin() (*Tx, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkLive("tx-begin"); err != nil {
		return nil, err
	}
	if p.tx != nil {
		return nil, &TxError{Op: "begin", Why: "transaction already in flight"}
	}
	tx := &Tx{p: p, cursor: logEntries}
	// Mark the log active on media before any entry lands.
	if err := p.logWrite32(logState, logActive); err != nil {
		return nil, err
	}
	if err := p.logWrite32(logCount, 0); err != nil {
		return nil, err
	}
	p.tx = tx
	return tx, nil
}

// AddRange snapshots [oid.Off+off, +n) so it can be rolled back
// (pmemobj_tx_add_range). Must be called before mutating the range.
func (tx *Tx) AddRange(oid OID, off, n uint64) error {
	p := tx.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if tx.done {
		return &TxError{Op: "add-range", Why: "transaction finished"}
	}
	if err := p.checkLive("tx-add"); err != nil {
		return err
	}
	if n == 0 {
		return &TxError{Op: "add-range", Why: "zero length"}
	}
	if err := p.checkOID("tx-add", oid, off+n); err != nil {
		return err
	}
	start := oid.Off + off
	padded := alignUp64(n, 8)
	need := entryHeaderSize + padded
	if tx.cursor+need > p.logSize {
		return &TxError{Op: "add-range", Why: "undo log full"}
	}
	// Snapshot MEDIA content (the pre-transaction persistent state),
	// not the view: rollback must restore what recovery would see.
	snap := make([]byte, padded)
	if err := p.region.ReadAt(snap[:n], int64(start)); err != nil {
		return err
	}
	entry := make([]byte, entryHeaderSize+len(snap))
	binary.LittleEndian.PutUint64(entry[0:], start)
	binary.LittleEndian.PutUint64(entry[8:], n)
	binary.LittleEndian.PutUint32(entry[16:], crc32.Checksum(snap[:n], crcTable))
	copy(entry[entryHeaderSize:], snap)
	if err := p.region.WriteAt(entry, int64(p.logOff+tx.cursor)); err != nil {
		return err
	}
	// Entry persisted; only then bump the count (the recovery fence).
	tx.cursor += need
	tx.count++
	if err := p.logWrite32(logCount, tx.count); err != nil {
		return err
	}
	tx.ranges = append(tx.ranges, txRange{off: start, n: n})
	p.stats.Persists.Add(1)
	p.stats.PersistBytes.Add(int64(len(entry)))
	return nil
}

// Commit persists every added range and retires the log (TX_COMMIT).
func (tx *Tx) Commit() error {
	p := tx.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if tx.done {
		return &TxError{Op: "commit", Why: "transaction finished"}
	}
	if err := p.checkLive("tx-commit"); err != nil {
		return err
	}
	for _, r := range tx.ranges {
		if err := p.persistRaw(int64(r.off), int64(r.n)); err != nil {
			return err
		}
	}
	p.Drain()
	// The commit point: a single 4-byte state write. Before it,
	// recovery rolls back; after it, the new data is the truth.
	if err := p.logWrite32(logState, logIdle); err != nil {
		return err
	}
	if err := p.logWrite32(logCount, 0); err != nil {
		return err
	}
	tx.done = true
	p.tx = nil
	p.stats.TxCommits.Add(1)
	return nil
}

// Abort rolls the added ranges back on media and in the view
// (TX_ABORT).
func (tx *Tx) Abort() error {
	p := tx.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if tx.done {
		return &TxError{Op: "abort", Why: "transaction finished"}
	}
	if err := p.checkLive("tx-abort"); err != nil {
		return err
	}
	if err := p.applyLog(); err != nil {
		return err
	}
	// Refresh the view from the restored media.
	for _, r := range tx.ranges {
		if err := p.region.ReadAt(p.view[r.off:r.off+r.n], int64(r.off)); err != nil {
			return err
		}
	}
	if err := p.clearLog(); err != nil {
		return err
	}
	tx.done = true
	p.tx = nil
	p.stats.TxAborts.Add(1)
	return nil
}

// logWrite32 writes one log control word straight to media.
func (p *Pool) logWrite32(off uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return p.region.WriteAt(b[:], int64(p.logOff+off))
}

func (p *Pool) logRead32(off uint64) (uint32, error) {
	var b [4]byte
	if err := p.region.ReadAt(b[:], int64(p.logOff+off)); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// clearLog marks the log idle on media.
func (p *Pool) clearLog() error {
	if err := p.logWrite32(logState, logIdle); err != nil {
		return err
	}
	return p.logWrite32(logCount, 0)
}

// replayLog walks the undo log through readAt — the media for Abort,
// the in-memory view for crash recovery at Open — validating each
// entry's bounds and CRC, and writes every snapshot back onto the
// media (and the view, when one is mapped). One implementation of the
// entry format serves both rollback paths.
func (p *Pool) replayLog(readAt func(b []byte, off int64) error) error {
	var cnt [4]byte
	if err := readAt(cnt[:], int64(p.logOff+logCount)); err != nil {
		return err
	}
	count := binary.LittleEndian.Uint32(cnt[:])
	cursor := uint64(logEntries)
	for i := uint32(0); i < count; i++ {
		if cursor+entryHeaderSize > p.logSize {
			return &TxError{Op: "recover", Why: fmt.Sprintf("log entry %d malformed", i)}
		}
		hdr := make([]byte, entryHeaderSize)
		if err := readAt(hdr, int64(p.logOff+cursor)); err != nil {
			return err
		}
		off := binary.LittleEndian.Uint64(hdr[0:])
		n := binary.LittleEndian.Uint64(hdr[8:])
		wantCRC := binary.LittleEndian.Uint32(hdr[16:])
		padded := alignUp64(n, 8)
		if off+n > uint64(p.size) || cursor+entryHeaderSize+padded > p.logSize {
			return &TxError{Op: "recover", Why: fmt.Sprintf("log entry %d malformed", i)}
		}
		data := make([]byte, padded)
		if err := readAt(data, int64(p.logOff+cursor+entryHeaderSize)); err != nil {
			return err
		}
		if crc32.Checksum(data[:n], crcTable) != wantCRC {
			return &TxError{Op: "recover", Why: fmt.Sprintf("log entry %d checksum mismatch", i)}
		}
		if err := p.region.WriteAt(data[:n], int64(off)); err != nil {
			return err
		}
		if p.view != nil {
			copy(p.view[off:off+n], data[:n])
		}
		cursor += entryHeaderSize + padded
	}
	return nil
}

// applyLog replays undo entries from the media onto the media
// (rollback during Abort).
func (p *Pool) applyLog() error {
	return p.replayLog(p.region.ReadAt)
}

// recoverLogFromView runs at Open, after the pool image has been read
// into the view with a single media scan: a log left active by a crash
// is parsed out of the in-memory image (identical to what a media read
// would return, since log writes always go straight to the media) and
// its snapshots are applied to both the media and the view. Transaction
// ranges live in the heap and the log in its own region, so an entry's
// data and its restore target never overlap.
func (p *Pool) recoverLogFromView() error {
	log := p.view[p.logOff : p.logOff+p.logSize]
	if binary.LittleEndian.Uint32(log[logState:]) != logActive {
		return nil
	}
	viewRead := func(b []byte, off int64) error {
		copy(b, p.view[off:])
		return nil
	}
	if err := p.replayLog(viewRead); err != nil {
		return err
	}
	if err := p.clearLog(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(log[logState:], logIdle)
	binary.LittleEndian.PutUint32(log[logCount:], 0)
	return nil
}

// Update runs fn inside a transaction over the given range: the range
// is snapshotted, fn mutates the returned view slice, and the change
// commits atomically. Any error aborts. This is the TX_BEGIN/TX_ADD/
// TX_END convenience macro.
func (p *Pool) Update(oid OID, off, n uint64, fn func(view []byte) error) error {
	tx, err := p.Begin()
	if err != nil {
		return err
	}
	if err := tx.AddRange(oid, off, n); err != nil {
		abortErr := tx.Abort()
		if abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	view, err := p.View(oid, off+n)
	if err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	if err := fn(view[off : off+n]); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	return tx.Commit()
}
