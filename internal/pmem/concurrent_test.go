package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentTxDisjointObjects exercises the multi-lane transaction
// machinery: many goroutines each own one object and run transactional
// updates over it in parallel. Every committed value must be durable on
// media (no lost updates), and the commit counter must account for
// every transaction.
func TestConcurrentTxDisjointObjects(t *testing.T) {
	p, r := createPool(t)
	const (
		workers = 2 * TxLanes // oversubscribe the lanes so Begin blocks
		rounds  = 25
		objSize = 256
	)
	oids := make([]OID, workers)
	for i := range oids {
		var err error
		if oids[i], err = p.Alloc(objSize); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := p.Update(oids[w], 0, objSize, func(v []byte) error {
					binary.LittleEndian.PutUint64(v, uint64(w)<<32|uint64(i))
					for j := 8; j < len(v); j++ {
						v[j] = byte(w + i)
					}
					return nil
				})
				if err != nil {
					errs[w] = fmt.Errorf("worker %d round %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Stats().TxCommits.Load(); got != workers*rounds {
		t.Errorf("TxCommits = %d, want %d", got, workers*rounds)
	}
	// Every object's final value must have reached the media, not just
	// the view: read through the region directly.
	for w, oid := range oids {
		buf := make([]byte, objSize)
		if err := r.ReadAt(buf, int64(oid.Off)); err != nil {
			t.Fatal(err)
		}
		want := uint64(w)<<32 | uint64(rounds-1)
		if got := binary.LittleEndian.Uint64(buf); got != want {
			t.Errorf("worker %d: media value %#x, want %#x (lost update)", w, got, want)
		}
		for j := 8; j < objSize; j++ {
			if buf[j] != byte(w+rounds-1) {
				t.Fatalf("worker %d: media byte %d = %#x, want %#x", w, j, buf[j], byte(w+rounds-1))
			}
		}
	}
}

// TestConcurrentAllocFree hammers the allocator from many goroutines;
// the per-pool allocator lock must keep the heap walkable and the
// alloc/free counters exact.
func TestConcurrentAllocFree(t *testing.T) {
	p, _ := createPool(t)
	const workers, rounds = 8, 40
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				oid, err := p.Alloc(64 + uint64(w)*32)
				if err != nil {
					errs[w] = err
					return
				}
				if err := p.Free(oid); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Stats().Allocs.Load(); got != workers*rounds {
		t.Errorf("Allocs = %d, want %d", got, workers*rounds)
	}
	if _, err := p.Check(); err != nil {
		t.Errorf("heap corrupt after concurrent alloc/free: %v", err)
	}
}

// The single-point multi-lane crash tests that used to live here
// (TestMultiLaneCrashRecovery, TestCommittedLaneSurvivesCrashNextToTornLane)
// are superseded by the exhaustive sweep in crashmatrix_test.go, which
// places a crash after EVERY media write of an all-lanes workload and
// derives the committed/uncommitted expectations from recorded commit
// boundaries instead of hand-picking two windows.

// TestCrashReleasesLanes guards the lane lease protocol: transactions
// stranded by a crash must hand their lanes back when their
// Commit/Abort fails, or a later Begin would block forever on the
// empty lane channel.
func TestCrashReleasesLanes(t *testing.T) {
	p, _ := createPool(t)
	txs := make([]*Tx, TxLanes)
	for i := range txs {
		var err error
		if txs[i], err = p.Begin(); err != nil {
			t.Fatal(err)
		}
	}
	p.SimulateCrash()
	for _, tx := range txs {
		if err := tx.Commit(); err == nil {
			t.Fatal("commit on crashed pool succeeded")
		}
	}
	if got := len(p.lanes); got != TxLanes {
		t.Errorf("free lanes after crash = %d, want %d (lane lease leaked)", got, TxLanes)
	}
	if got := p.activeTx.Load(); got != 0 {
		t.Errorf("activeTx after crash = %d, want 0", got)
	}
}

// failingRegion wraps a Region and starts failing writes on demand —
// an I/O fault mid-operation, not a power loss.
type failingRegion struct {
	Region
	fail atomic.Bool
}

func (r *failingRegion) WriteAt(p []byte, off int64) error {
	if r.fail.Load() {
		return errors.New("media I/O failure")
	}
	return r.Region.WriteAt(p, off)
}

// TestAbortIOFailureRetiresLane: when Abort itself hits an I/O error,
// the lane's undo entries are the only copy of the pre-transaction
// state — the lane must be retired (never reissued), the transaction
// must count as finished, and the pool must keep working on the
// remaining lanes.
func TestAbortIOFailureRetiresLane(t *testing.T) {
	inner := newMemRegion(testPoolSize, true)
	fr := &failingRegion{Region: inner}
	p, err := Create(fr, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRange(oid, 0, 64); err != nil {
		t.Fatal(err)
	}
	fr.fail.Store(true)
	if err := tx.Abort(); err == nil {
		t.Fatal("abort with failing media succeeded")
	}
	fr.fail.Store(false)
	if !tx.done {
		t.Error("failed abort left the transaction open")
	}
	if got := p.lanesLost.Load(); got != 1 {
		t.Errorf("lanesLost = %d, want 1", got)
	}
	if got := len(p.lanes); got != TxLanes-1 {
		t.Errorf("free lanes = %d, want %d (retired lane must not recirculate)", got, TxLanes-1)
	}
	// The pool still serves transactions on the remaining lanes.
	if err := p.Update(oid, 0, 64, func(v []byte) error { v[0] = 7; return nil }); err != nil {
		t.Fatal(err)
	}
}
