package pmem

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

// memRegion is an in-memory Region for unit tests. cutoff, when >= 0,
// drops every write after the first cutoff writes — simulating power
// loss at an arbitrary persistence boundary.
type memRegion struct {
	mu         sync.Mutex
	data       []byte
	persistent bool
	writes     int
	cutoff     int
}

func newMemRegion(size int, persistent bool) *memRegion {
	return &memRegion{data: make([]byte, size), persistent: persistent, cutoff: -1}
}

func (r *memRegion) ReadAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("memRegion: read out of range")
	}
	copy(p, r.data[off:])
	return nil
}

func (r *memRegion) WriteAt(p []byte, off int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(r.data)) {
		return errors.New("memRegion: write out of range")
	}
	r.writes++
	if r.cutoff >= 0 && r.writes > r.cutoff {
		return nil // power was already lost; the store never reached media
	}
	copy(r.data[off:], p)
	return nil
}

func (r *memRegion) Size() int64      { return int64(len(r.data)) }
func (r *memRegion) Persistent() bool { return r.persistent }
func (r *memRegion) PowerCycle() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.persistent {
		for i := range r.data {
			r.data[i] = 0
		}
	}
}

const testPoolSize = 4 << 20

func createPool(t *testing.T) (*Pool, *memRegion) {
	t.Helper()
	r := newMemRegion(testPoolSize, true)
	p, err := Create(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestCreateOpenRoundTrip(t *testing.T) {
	p, r := createPool(t)
	if p.Layout() != "stream-arrays" || p.Size() != testPoolSize || !p.Persistent() {
		t.Error("pool attributes mismatch")
	}
	id := p.PoolID()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	if p2.PoolID() != id {
		t.Error("pool identity changed across reopen")
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(nil, "x"); err == nil {
		t.Error("nil region accepted")
	}
	if _, err := Create(newMemRegion(1024, true), "x"); err == nil {
		t.Error("tiny region accepted")
	}
	if _, err := Create(newMemRegion(testPoolSize, true), ""); err == nil {
		t.Error("empty layout accepted")
	}
	if _, err := Create(newMemRegion(testPoolSize, true), strings.Repeat("x", 65)); err == nil {
		t.Error("oversized layout accepted")
	}
	// Double create on the same region refuses.
	r := newMemRegion(testPoolSize, true)
	if _, err := Create(r, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(r, "a"); err == nil {
		t.Error("create over existing pool accepted")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, "x"); err == nil {
		t.Error("nil region accepted")
	}
	// No pool present.
	if _, err := Open(newMemRegion(testPoolSize, true), "x"); err == nil {
		t.Error("open of empty region accepted")
	}
	// Layout mismatch.
	_, r := createPool(t)
	if _, err := Open(r, "wrong-layout"); err == nil {
		t.Error("layout mismatch accepted")
	}
	// Header corruption is detected by checksum.
	r.data[hdrPoolID] ^= 0xFF
	if _, err := Open(r, "stream-arrays"); err == nil {
		t.Error("corrupted header accepted")
	}
}

func TestCreateOrOpen(t *testing.T) {
	r := newMemRegion(testPoolSize, true)
	p, err := CreateOrOpen(r, "layout")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := p.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(oid, 128)
	copy(v, "hello")
	if err := p.Persist(oid, 128); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := CreateOrOpen(r, "layout")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p2.View(oid, 128)
	if err != nil {
		t.Fatal(err)
	}
	if string(v2[:5]) != "hello" {
		t.Error("CreateOrOpen did not reopen the existing pool")
	}
	// Layout mismatch surfaces the open error.
	if _, err := CreateOrOpen(r, "other"); err == nil {
		t.Error("CreateOrOpen with wrong layout accepted")
	}
}

func TestPersistControlsDurability(t *testing.T) {
	p, r := createPool(t)
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(oid, 64)
	copy(v, "persisted")
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	oid2, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := p.View(oid2, 64)
	copy(v2, "volatile!")
	// No persist for oid2: its content must be lost after a crash.
	p.SimulateCrash()
	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.View(oid, 64)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:9]) != "persisted" {
		t.Errorf("persisted data lost: %q", got[:9])
	}
	got2, err := p2.View(oid2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2[:9]) == "volatile!" {
		t.Error("unpersisted store survived the crash")
	}
}

func TestVolatileMediaLosesEverything(t *testing.T) {
	// The paper's pmem0/pmem1 are DRAM-emulated: a power cycle wipes
	// them, unlike the battery-backed CXL mount.
	r := newMemRegion(testPoolSize, false)
	p, err := Create(r, "dram-emulated")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}
	p.SimulateCrash()
	if _, err := Open(r, "dram-emulated"); err == nil {
		t.Error("pool on volatile media survived power loss")
	}
}

func TestCrashedPoolRejectsUse(t *testing.T) {
	p, _ := createPool(t)
	oid, _ := p.Alloc(64)
	p.SimulateCrash()
	if _, err := p.Alloc(8); err == nil {
		t.Error("alloc on crashed pool accepted")
	}
	if _, err := p.View(oid, 8); err == nil {
		t.Error("view on crashed pool accepted")
	}
	if err := p.Persist(oid, 8); err == nil {
		t.Error("persist on crashed pool accepted")
	}
}

func TestClosedPoolRejectsUse(t *testing.T) {
	p, _ := createPool(t)
	oid, _ := p.Alloc(64)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil {
		t.Error("double close accepted")
	}
	if _, err := p.View(oid, 8); err == nil {
		t.Error("view on closed pool accepted")
	}
}

func TestRootObject(t *testing.T) {
	p, r := createPool(t)
	root, err := p.Root(256)
	if err != nil {
		t.Fatal(err)
	}
	if root.IsNull() {
		t.Fatal("null root")
	}
	// Same OID on repeat calls.
	again, err := p.Root(256)
	if err != nil || again != root {
		t.Errorf("second Root = %v, %v; want %v", again, err, root)
	}
	// Size mismatch rejected.
	if _, err := p.Root(512); err == nil {
		t.Error("root size mismatch accepted")
	}
	if _, err := p.Root(0); err == nil {
		t.Error("zero-size root accepted")
	}
	// Root persists across reopen (header is durable).
	v, _ := p.View(root, 256)
	copy(v, "root-data")
	if err := p.Persist(root, 256); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	root2, err := p2.Root(256)
	if err != nil || root2 != root {
		t.Fatalf("root after reopen = %v, %v", root2, err)
	}
	v2, _ := p2.View(root2, 256)
	if string(v2[:9]) != "root-data" {
		t.Error("root data lost")
	}
	// Root cannot be freed.
	if err := p2.Free(root2); err == nil {
		t.Error("freed the root object")
	}
}

func TestViewValidation(t *testing.T) {
	p, _ := createPool(t)
	oid, _ := p.Alloc(64)
	if _, err := p.View(OID{PoolID: 999, Off: oid.Off}, 8); err == nil {
		t.Error("foreign pool OID accepted")
	}
	if _, err := p.View(OID{PoolID: p.PoolID(), Off: 0}, 8); err == nil {
		t.Error("null OID accepted")
	}
	if _, err := p.View(oid, uint64(testPoolSize)); err == nil {
		t.Error("view past pool end accepted")
	}
}

func TestStatsCount(t *testing.T) {
	p, _ := createPool(t)
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	base := p.Stats().Persists.Load()
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if got := p.Stats().Persists.Load(); got != base+1 {
		t.Errorf("persists = %d, want %d", got, base+1)
	}
	if p.Stats().Drains.Load() == 0 {
		t.Error("drains not counted")
	}
	if p.Stats().Allocs.Load() == 0 {
		t.Error("allocs not counted")
	}
	if err := p.Free(oid); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Frees.Load() != 1 {
		t.Error("frees not counted")
	}
}

func TestPoolErrorString(t *testing.T) {
	e := &PoolError{Op: "open", Layout: "x", Why: "boom"}
	if !strings.Contains(e.Error(), "open") || !strings.Contains(e.Error(), "boom") {
		t.Errorf("error = %q", e.Error())
	}
	if (OID{}).String() == "" || !(OID{}).IsNull() {
		t.Error("OID basics")
	}
}

func TestViewAliasesPoolMemory(t *testing.T) {
	p, _ := createPool(t)
	oid, _ := p.Alloc(128)
	a, _ := p.View(oid, 128)
	b, _ := p.View(oid, 128)
	copy(a, "aliased")
	if !bytes.Equal(a[:7], b[:7]) {
		t.Error("two views of one object do not alias")
	}
}
