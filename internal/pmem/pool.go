// Package pmem is the Go equivalent of PMDK's libpmemobj, the library
// STREAM-PMem is written against (paper §3.1, Listings 1-2): pools
// created/opened by layout name, object allocation with OIDs, direct
// load/store access to a mapped view, explicit persist/drain ordering,
// and undo-log transactions that guarantee "either all of the
// modifications are successfully applied or none of them take effect"
// (§1.4).
//
// Persistence model. A pool lives on a Region (a pmemfs file over a
// device, possibly reached through the CXL protocol). Open maps the pool
// into a volatile view — the analogue of the CPU-cache/DRAM image of a
// DAX mapping. Stores hit the view; Persist flushes ranges to the region
// (clwb), Drain orders them (sfence). SimulateCrash throws the view away
// and, when the media is volatile, the region too — which is exactly the
// difference between the paper's DRAM-emulated PMem and the
// battery-backed CXL module.
//
// Concurrency model (see DESIGN.md §Concurrency). The pool is safe for
// concurrent use by many goroutines: the allocator is serialised behind
// its own lock, the undo log is carved into TxLanes independent lanes so
// up to TxLanes transactions run and commit concurrently, and lifecycle
// (Close/SimulateCrash) excludes in-flight operations through a
// read-write state lock. Callers keep single-writer semantics per
// object: two goroutines may run transactions on disjoint objects in
// parallel, but one object has at most one writer at a time, exactly as
// PMDK scopes transactions per thread.
package pmem

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// Region is the byte store a pool sits on (pmemfs.File satisfies this).
// Implementations must be safe for concurrent use.
type Region interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
	Persistent() bool
}

// Pool geometry.
const (
	// Magic identifies a pool ("pmemobj_create" writes PMDK's; ours).
	Magic = "GOPMEMOBJ\x01"
	// Version of the on-media format. Version 2 splits the undo log
	// into TxLanes independent lanes.
	Version = 2
	// headerSize reserves the first block for the pool header.
	headerSize = 512
	// DefaultLogSize is the undo-log region size, shared by all lanes.
	// Grown from the v1 format's 256 KiB when the log was carved into
	// lanes (while keeping 1 MiB regions poolable), so one transaction
	// still snapshots up to DefaultLogSize/TxLanes = 96 KiB; v1
	// allowed ~256 KiB for its single transaction, and callers with
	// larger transactional state must check TxSnapshotLimit at setup
	// time, as solver.NewESRState does.
	DefaultLogSize = 768 << 10
	// TxLanes is the number of independent undo-log lanes and therefore
	// the number of transactions that may be in flight concurrently.
	TxLanes = 8
	// MinPoolSize is the smallest usable pool.
	MinPoolSize = headerSize + DefaultLogSize + heapAlign + blockHeaderSize + 64
	// MaxLayoutName bounds the layout string (PMDK: 1024; we use 64).
	MaxLayoutName = 64
)

// header field offsets.
const (
	hdrMagic    = 0   // 10 bytes
	hdrVersion  = 12  // u32
	hdrLayout   = 16  // 64 bytes
	hdrPoolSize = 80  // u64
	hdrLogOff   = 88  // u64
	hdrLogSize  = 96  // u64
	hdrHeapOff  = 104 // u64
	hdrRootOff  = 112 // u64
	hdrRootSize = 120 // u64
	hdrPoolID   = 128 // u64
	hdrCRC      = 136 // u32 over [0, hdrCRC)
)

// OID names a persistent object: an offset inside a specific pool,
// mirroring PMDK's PMEMoid {pool_uuid_lo, off}.
type OID struct {
	PoolID uint64
	Off    uint64
}

// IsNull reports the null OID.
func (o OID) IsNull() bool { return o.Off == 0 }

func (o OID) String() string { return fmt.Sprintf("oid{%#x+%#x}", o.PoolID, o.Off) }

// Stats counts persistence primitives, the analogue of counting
// clwb/sfence instructions.
type Stats struct {
	Persists     atomic.Int64
	PersistBytes atomic.Int64
	Drains       atomic.Int64
	TxCommits    atomic.Int64
	TxAborts     atomic.Int64
	Allocs       atomic.Int64
	Frees        atomic.Int64
}

// Pool is an open persistent object pool, safe for concurrent use (see
// the package comment for the concurrency model).
type Pool struct {
	region Region
	layout string
	poolID uint64
	size   int64

	// Geometry, immutable after Create/Open.
	logOff, logSize uint64
	heapOff         uint64

	// stateMu guards lifecycle (closed/crashed, the view mapping).
	// Every data-path operation holds it for read; Close and
	// SimulateCrash hold it for write, excluding all traffic.
	stateMu sync.RWMutex
	view    []byte
	closed  bool
	crashed bool

	// heapMu serialises the allocator and the header fields it owns
	// (rootOff/rootSize). Always acquired after stateMu.
	heapMu            sync.Mutex
	heap              *heap
	rootOff, rootSize uint64

	// lanes hands out free undo-log lanes; Begin blocks when all
	// TxLanes are in flight. activeTx counts open transactions so
	// Close can refuse while one is live. lanesLost counts lanes
	// permanently retired after I/O failures mid-Abort (their undo
	// entries must survive for recovery, so they are never reissued).
	lanes     chan uint64
	activeTx  atomic.Int32
	lanesLost atomic.Int32

	stats Stats
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PoolError is a structured pool failure.
type PoolError struct {
	Op     string
	Layout string
	Why    string
}

func (e *PoolError) Error() string {
	return fmt.Sprintf("pmem: %s(%q): %s", e.Op, e.Layout, e.Why)
}

// fillLanes populates the lane free list; called once at Create/Open.
func (p *Pool) fillLanes() {
	p.lanes = make(chan uint64, TxLanes)
	for i := uint64(0); i < TxLanes; i++ {
		p.lanes <- i
	}
}

// Create initialises a new pool with the given layout name on region,
// the equivalent of pmemobj_create (Listing 2 line 10).
func Create(region Region, layout string) (*Pool, error) {
	if region == nil {
		return nil, &PoolError{Op: "create", Layout: layout, Why: "nil region"}
	}
	if len(layout) == 0 || len(layout) > MaxLayoutName {
		return nil, &PoolError{Op: "create", Layout: layout, Why: "layout name length outside 1..64"}
	}
	size := region.Size()
	if size < MinPoolSize {
		return nil, &PoolError{Op: "create", Layout: layout, Why: fmt.Sprintf("region %d bytes below minimum %d", size, MinPoolSize)}
	}
	// Refuse to clobber an existing pool.
	probe := make([]byte, len(Magic))
	if err := region.ReadAt(probe, 0); err != nil {
		return nil, err
	}
	if string(probe) == Magic {
		return nil, &PoolError{Op: "create", Layout: layout, Why: "region already contains a pool"}
	}

	p := &Pool{
		region:  region,
		view:    make([]byte, size),
		layout:  layout,
		size:    size,
		logOff:  headerSize,
		logSize: DefaultLogSize,
	}
	p.heapOff = alignUp64(p.logOff+p.logSize, heapAlign)
	p.poolID = poolIDFor(layout, size)
	p.heap = newHeap(p, p.heapOff, uint64(size))
	if err := p.heap.format(); err != nil {
		return nil, err
	}
	if err := p.clearLog(); err != nil {
		return nil, err
	}
	p.writeHeader()
	if err := p.persistRaw(0, headerSize); err != nil {
		return nil, err
	}
	p.fillLanes()
	return p, nil
}

// Open maps an existing pool, validating magic, version, layout and
// header checksum, then runs undo-log recovery — the pmemobj_open path
// of Listing 2 line 12.
func Open(region Region, layout string) (*Pool, error) {
	if region == nil {
		return nil, &PoolError{Op: "open", Layout: layout, Why: "nil region"}
	}
	size := region.Size()
	if size < MinPoolSize {
		return nil, &PoolError{Op: "open", Layout: layout, Why: "region too small"}
	}
	hdr := make([]byte, headerSize)
	if err := region.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	if string(hdr[hdrMagic:hdrMagic+len(Magic)]) != Magic {
		return nil, &PoolError{Op: "open", Layout: layout, Why: "no pool present (bad magic)"}
	}
	if v := binary.LittleEndian.Uint32(hdr[hdrVersion:]); v != Version {
		return nil, &PoolError{Op: "open", Layout: layout, Why: fmt.Sprintf("version %d unsupported", v)}
	}
	if got := binary.LittleEndian.Uint32(hdr[hdrCRC:]); got != crc32.Checksum(hdr[:hdrCRC], crcTable) {
		return nil, &PoolError{Op: "open", Layout: layout, Why: "header checksum mismatch"}
	}
	stored := trimNul(hdr[hdrLayout : hdrLayout+MaxLayoutName])
	if stored != layout {
		return nil, &PoolError{Op: "open", Layout: layout, Why: fmt.Sprintf("layout mismatch: pool has %q", stored)}
	}
	if ps := binary.LittleEndian.Uint64(hdr[hdrPoolSize:]); ps != uint64(size) {
		return nil, &PoolError{Op: "open", Layout: layout, Why: "pool size mismatch"}
	}

	p := &Pool{
		region:   region,
		layout:   layout,
		size:     size,
		logOff:   binary.LittleEndian.Uint64(hdr[hdrLogOff:]),
		logSize:  binary.LittleEndian.Uint64(hdr[hdrLogSize:]),
		heapOff:  binary.LittleEndian.Uint64(hdr[hdrHeapOff:]),
		rootOff:  binary.LittleEndian.Uint64(hdr[hdrRootOff:]),
		rootSize: binary.LittleEndian.Uint64(hdr[hdrRootSize:]),
		poolID:   binary.LittleEndian.Uint64(hdr[hdrPoolID:]),
	}
	if p.logSize < TxLanes*laneHeaderSize || p.logSize%TxLanes != 0 {
		return nil, &PoolError{Op: "open", Layout: layout, Why: "undo log size not divisible into lanes"}
	}
	// Map the view with a single media scan (over a CXL region this is
	// the dominant open cost — one burst-path read of the whole pool),
	// then run undo-log recovery from the in-memory image: the log
	// region in the view is exactly what a pre-view media read would
	// have returned, and rollback writes restore both the media and the
	// view, so a torn transaction is rolled back on media before the
	// pool is usable — the same guarantee the old read-log-then-reread-
	// everything sequence gave, at half the media traffic.
	p.view = make([]byte, size)
	if err := region.ReadAt(p.view, 0); err != nil {
		return nil, err
	}
	if err := p.recoverLogFromView(); err != nil {
		return nil, err
	}
	p.heap = newHeap(p, p.heapOff, uint64(size))
	if err := p.heap.rebuild(); err != nil {
		return nil, err
	}
	p.fillLanes()
	return p, nil
}

// CreateOrOpen opens an existing pool or creates a fresh one — the
// idiom of Listing 2 lines 10-12.
func CreateOrOpen(region Region, layout string) (*Pool, error) {
	p, err := Create(region, layout)
	if err == nil {
		return p, nil
	}
	if pe, ok := err.(*PoolError); ok && pe.Why == "region already contains a pool" {
		return Open(region, layout)
	}
	return nil, err
}

// writeHeader renders the header into the view; callers hold heapMu (or
// are in single-threaded setup) since rootOff/rootSize live there.
func (p *Pool) writeHeader() {
	hdr := p.view[:headerSize]
	for i := range hdr {
		hdr[i] = 0
	}
	copy(hdr[hdrMagic:], Magic)
	binary.LittleEndian.PutUint32(hdr[hdrVersion:], Version)
	copy(hdr[hdrLayout:hdrLayout+MaxLayoutName], p.layout)
	binary.LittleEndian.PutUint64(hdr[hdrPoolSize:], uint64(p.size))
	binary.LittleEndian.PutUint64(hdr[hdrLogOff:], p.logOff)
	binary.LittleEndian.PutUint64(hdr[hdrLogSize:], p.logSize)
	binary.LittleEndian.PutUint64(hdr[hdrHeapOff:], p.heapOff)
	binary.LittleEndian.PutUint64(hdr[hdrRootOff:], p.rootOff)
	binary.LittleEndian.PutUint64(hdr[hdrRootSize:], p.rootSize)
	binary.LittleEndian.PutUint64(hdr[hdrPoolID:], p.poolID)
	binary.LittleEndian.PutUint32(hdr[hdrCRC:], crc32.Checksum(hdr[:hdrCRC], crcTable))
}

// Layout returns the pool's layout name.
func (p *Pool) Layout() string { return p.layout }

// PoolID returns the pool identity used in OIDs.
func (p *Pool) PoolID() uint64 { return p.poolID }

// Size returns the pool size in bytes.
func (p *Pool) Size() int64 { return p.size }

// Persistent reports whether the backing media is durable.
func (p *Pool) Persistent() bool { return p.region.Persistent() }

// Stats exposes persistence counters.
func (p *Pool) Stats() *Stats { return &p.stats }

// checkLive reports lifecycle failures; callers hold stateMu (read or
// write).
func (p *Pool) checkLive(op string) error {
	if p.closed {
		return &PoolError{Op: op, Layout: p.layout, Why: "pool closed"}
	}
	if p.crashed {
		return &PoolError{Op: op, Layout: p.layout, Why: "pool crashed; reopen to recover"}
	}
	return nil
}

// checkOID validates an OID against the immutable pool geometry.
func (p *Pool) checkOID(op string, oid OID, n uint64) error {
	if oid.PoolID != p.poolID {
		return &PoolError{Op: op, Layout: p.layout, Why: fmt.Sprintf("%v belongs to another pool", oid)}
	}
	if oid.Off < p.heapOff+blockHeaderSize || oid.Off+n > uint64(p.size) {
		return &PoolError{Op: op, Layout: p.layout, Why: fmt.Sprintf("%v+%d outside heap", oid, n)}
	}
	return nil
}

// View returns the mapped bytes of an object: direct load/store access,
// the pmemobj_direct analogue. The slice aliases pool memory; writes to
// it are volatile until persisted. Concurrent writers of one object
// must coordinate among themselves (single-writer per object).
func (p *Pool) View(oid OID, n uint64) ([]byte, error) {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("view"); err != nil {
		return nil, err
	}
	if err := p.checkOID("view", oid, n); err != nil {
		return nil, err
	}
	return p.view[oid.Off : oid.Off+n : oid.Off+n], nil
}

// Persist flushes [oid, oid+n) from the view to the media — clwb over
// the range. It does not imply ordering; call Drain for the fence.
func (p *Pool) Persist(oid OID, n uint64) error {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("persist"); err != nil {
		return err
	}
	if err := p.checkOID("persist", oid, n); err != nil {
		return err
	}
	return p.persistRaw(int64(oid.Off), int64(n))
}

// persistRaw flushes a raw pool range; callers hold stateMu for read
// (so the view cannot vanish mid-flush) or are in single-threaded
// setup. Disjoint ranges flush concurrently.
func (p *Pool) persistRaw(off, n int64) error {
	if err := p.region.WriteAt(p.view[off:off+n], off); err != nil {
		return err
	}
	p.stats.Persists.Add(1)
	p.stats.PersistBytes.Add(n)
	return nil
}

// Drain is the store fence pairing with Persist. The simulated media
// completes writes synchronously, so Drain only counts — but callers
// must still place it correctly: the crash tests validate persist
// ordering through the log protocol, as on real hardware.
func (p *Pool) Drain() {
	p.stats.Drains.Add(1)
}

// Root returns the root object, allocating it with the given size on
// first use (pmemobj_root). The size must match on subsequent calls.
func (p *Pool) Root(size uint64) (OID, error) {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("root"); err != nil {
		return OID{}, err
	}
	if size == 0 {
		return OID{}, &PoolError{Op: "root", Layout: p.layout, Why: "zero size"}
	}
	p.heapMu.Lock()
	defer p.heapMu.Unlock()
	if p.rootOff != 0 {
		if size != p.rootSize {
			return OID{}, &PoolError{Op: "root", Layout: p.layout, Why: fmt.Sprintf("root exists with size %d, requested %d", p.rootSize, size)}
		}
		return OID{PoolID: p.poolID, Off: p.rootOff}, nil
	}
	off, err := p.heap.alloc(size)
	if err != nil {
		return OID{}, err
	}
	p.rootOff, p.rootSize = off, size
	p.writeHeader()
	if err := p.persistRaw(0, headerSize); err != nil {
		return OID{}, err
	}
	p.stats.Allocs.Add(1)
	return OID{PoolID: p.poolID, Off: off}, nil
}

// Alloc allocates a zeroed object of n bytes (POBJ_ALLOC, Listing 2
// line 7). The data offset is 64-byte aligned, so Float64s views are
// always correctly aligned.
func (p *Pool) Alloc(n uint64) (OID, error) {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("alloc"); err != nil {
		return OID{}, err
	}
	if n == 0 {
		return OID{}, &PoolError{Op: "alloc", Layout: p.layout, Why: "zero size"}
	}
	p.heapMu.Lock()
	defer p.heapMu.Unlock()
	off, err := p.heap.alloc(n)
	if err != nil {
		return OID{}, err
	}
	p.stats.Allocs.Add(1)
	return OID{PoolID: p.poolID, Off: off}, nil
}

// Free releases an object.
func (p *Pool) Free(oid OID) error {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("free"); err != nil {
		return err
	}
	if err := p.checkOID("free", oid, 0); err != nil {
		return err
	}
	p.heapMu.Lock()
	defer p.heapMu.Unlock()
	if oid.Off == p.rootOff {
		return &PoolError{Op: "free", Layout: p.layout, Why: "cannot free the root object"}
	}
	if err := p.heap.free(oid.Off); err != nil {
		return err
	}
	p.stats.Frees.Add(1)
	return nil
}

// AllocSize returns the usable size of an allocated object.
func (p *Pool) AllocSize(oid OID) (uint64, error) {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("allocsize"); err != nil {
		return 0, err
	}
	if err := p.checkOID("allocsize", oid, 0); err != nil {
		return 0, err
	}
	p.heapMu.Lock()
	defer p.heapMu.Unlock()
	return p.heap.userSize(oid.Off)
}

// Close flushes the header and detaches the view. Objects not persisted
// are lost, as with a real mapping.
func (p *Pool) Close() error {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	if p.closed {
		return &PoolError{Op: "close", Layout: p.layout, Why: "already closed"}
	}
	if p.activeTx.Load() != 0 && !p.crashed {
		return &PoolError{Op: "close", Layout: p.layout, Why: "transaction in flight"}
	}
	p.closed = true
	p.view = nil
	return nil
}

// SimulateCrash models a power failure: the view (CPU caches + DRAM
// image) vanishes, and volatile media loses the region too. The pool
// becomes unusable; Open the region again to run recovery. The
// PowerCycler interface lets device-backed regions participate.
func (p *Pool) SimulateCrash() {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	p.crashed = true
	p.view = nil
	if pc, ok := p.region.(PowerCycler); ok {
		pc.PowerCycle()
	}
}

// PowerCycler is implemented by regions whose media can lose power
// (pmemfs files over memdev devices forward to Device.PowerCycle).
type PowerCycler interface {
	PowerCycle()
}

func alignUp64(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

func trimNul(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// poolIDFor derives a stable pool identity.
func poolIDFor(layout string, size int64) uint64 {
	h := crc32.Checksum([]byte(layout), crcTable)
	h2 := crc32.Checksum([]byte(fmt.Sprint(size)), crcTable)
	id := uint64(h)<<32 | uint64(h2)
	if id == 0 {
		id = 1
	}
	return id
}
