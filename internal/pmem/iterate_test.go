package pmem

import "testing"

func TestObjectsWalk(t *testing.T) {
	p, _ := createPool(t)
	objs, err := p.Objects()
	if err != nil || len(objs) != 0 {
		t.Fatalf("fresh pool objects = %v, %v", objs, err)
	}
	root, err := p.Root(128)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	objs, err = p.Objects()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("objects = %d, want 3", len(objs))
	}
	// Ascending address order; root is flagged.
	rootsSeen := 0
	for i, o := range objs {
		if i > 0 && o.OID.Off <= objs[i-1].OID.Off {
			t.Error("objects not in address order")
		}
		if o.IsRoot {
			rootsSeen++
			if o.OID != root || o.Size != 128 {
				t.Errorf("root info = %+v", o)
			}
		}
	}
	if rootsSeen != 1 {
		t.Errorf("roots flagged = %d", rootsSeen)
	}
	// Free removes from the walk.
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	objs, err = p.Objects()
	if err != nil || len(objs) != 2 {
		t.Fatalf("after free: %d objects, %v", len(objs), err)
	}
	total, err := p.LiveBytes()
	if err != nil || total != 128+200 {
		t.Errorf("LiveBytes = %d, %v; want 328", total, err)
	}
	_ = b
}

func TestFirstNext(t *testing.T) {
	p, _ := createPool(t)
	if _, ok, err := p.First(); ok || err != nil {
		t.Error("First on empty pool")
	}
	a, _ := p.Alloc(64)
	b, _ := p.Alloc(64)
	c, _ := p.Alloc(64)
	first, ok, err := p.First()
	if err != nil || !ok || first.OID != a {
		t.Fatalf("First = %+v, %v, %v", first, ok, err)
	}
	second, ok, err := p.Next(a)
	if err != nil || !ok || second.OID != b {
		t.Fatalf("Next(a) = %+v", second)
	}
	third, ok, err := p.Next(b)
	if err != nil || !ok || third.OID != c {
		t.Fatalf("Next(b) = %+v", third)
	}
	if _, ok, _ := p.Next(c); ok {
		t.Error("Next past last object")
	}
	if _, ok, _ := p.Next(OID{PoolID: p.PoolID(), Off: 12345}); ok {
		t.Error("Next of unknown OID")
	}
	// Closed pool refuses.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Objects(); err == nil {
		t.Error("Objects on closed pool accepted")
	}
}
