package pmem

import (
	"encoding/binary"
	"fmt"
)

// Persistent heap. Objects are carved from the region after the undo
// log, each preceded by a 64-byte block header so that data offsets are
// 64-byte aligned (cache-line alignment, and sufficient for Float64s
// views). The free list is volatile and rebuilt on open by walking the
// block chain; headers are persisted at every state change so the walk
// is always well-formed after a crash. A crash between header persist
// and caller visibility can at worst leak one block — the same failure
// window PMDK closes with its redo log and detects with pmempool check;
// our Check performs the equivalent leak scan.

const (
	// blockHeaderSize precedes every block; 64 keeps data aligned.
	blockHeaderSize = 64
	// heapAlign aligns the heap start.
	heapAlign = 64
	// minSplit is the smallest free remainder worth splitting off.
	minSplit = blockHeaderSize + 64

	blockMagic uint32 = 0xB10C_0DE5

	flagAllocated uint64 = 1 << 0
)

// block header layout (offsets within the 64-byte header):
//
//	0:4   magic
//	4:8   reserved
//	8:16  block size including header (u64)
//	16:24 flags (u64)
//	24:32 requested (user) size (u64)
const (
	bhMagic = 0
	bhSize  = 8
	bhFlags = 16
	bhUser  = 24
)

type heap struct {
	p     *Pool
	start uint64 // first block header offset
	end   uint64 // one past the heap

	freeIdx map[uint64]uint64 // header offset -> block size (volatile index)
}

func newHeap(p *Pool, heapOff, poolSize uint64) *heap {
	return &heap{p: p, start: heapOff, end: poolSize, freeIdx: make(map[uint64]uint64)}
}

// format writes a single free block covering the whole heap.
func (h *heap) format() error {
	if h.start+blockHeaderSize >= h.end {
		return &PoolError{Op: "format", Layout: h.p.layout, Why: "no room for heap"}
	}
	h.writeHeader(h.start, h.end-h.start, 0, 0)
	if err := h.p.persistRaw(int64(h.start), blockHeaderSize); err != nil {
		return err
	}
	h.freeIdx[h.start] = h.end - h.start
	return nil
}

// rebuild reconstructs the volatile free index by walking the chain.
func (h *heap) rebuild() error {
	h.freeIdx = make(map[uint64]uint64)
	off := h.start
	for off < h.end {
		magic, size, flags, _ := h.readHeader(off)
		if magic != blockMagic || size < blockHeaderSize || off+size > h.end {
			return &PoolError{Op: "rebuild", Layout: h.p.layout, Why: fmt.Sprintf("corrupt block header at %#x", off)}
		}
		if flags&flagAllocated == 0 {
			h.freeIdx[off] = size
		}
		off += size
	}
	if off != h.end {
		return &PoolError{Op: "rebuild", Layout: h.p.layout, Why: "heap walk overran the pool"}
	}
	return nil
}

func (h *heap) writeHeader(off, size, flags, user uint64) {
	b := h.p.view[off : off+blockHeaderSize]
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint32(b[bhMagic:], blockMagic)
	binary.LittleEndian.PutUint64(b[bhSize:], size)
	binary.LittleEndian.PutUint64(b[bhFlags:], flags)
	binary.LittleEndian.PutUint64(b[bhUser:], user)
}

func (h *heap) readHeader(off uint64) (magic uint32, size, flags, user uint64) {
	b := h.p.view[off : off+blockHeaderSize]
	return binary.LittleEndian.Uint32(b[bhMagic:]),
		binary.LittleEndian.Uint64(b[bhSize:]),
		binary.LittleEndian.Uint64(b[bhFlags:]),
		binary.LittleEndian.Uint64(b[bhUser:])
}

// alloc returns the data offset of a zeroed n-byte object.
func (h *heap) alloc(n uint64) (uint64, error) {
	need := alignUp64(n, 64) + blockHeaderSize
	// First fit over the volatile index; deterministic order matters
	// for reproducibility, so scan ascending.
	var best uint64
	found := false
	for off := range h.freeIdx {
		if h.freeIdx[off] >= need && (!found || off < best) {
			best = off
			found = true
		}
	}
	if !found {
		return 0, &PoolError{Op: "alloc", Layout: h.p.layout, Why: fmt.Sprintf("out of space for %d bytes", n)}
	}
	size := h.freeIdx[best]
	delete(h.freeIdx, best)
	remainder := size - need
	if remainder >= minSplit {
		// Split: write the tail free block first, then shrink this
		// block — ordering keeps the walk consistent at any crash
		// point (a crash after the first persist shows a shrunken
		// chain only once both headers agree; until then the old
		// header still covers the full extent).
		tail := best + need
		h.writeHeader(tail, remainder, 0, 0)
		if err := h.p.persistRaw(int64(tail), blockHeaderSize); err != nil {
			return 0, err
		}
		h.freeIdx[tail] = remainder
		size = need
	}
	h.writeHeader(best, size, flagAllocated, n)
	if err := h.p.persistRaw(int64(best), blockHeaderSize); err != nil {
		return 0, err
	}
	// Zero the object (allocations observe zeroed memory, as with
	// POBJ_ALLOC + pmemobj_zalloc semantics we adopt).
	data := best + blockHeaderSize
	for i := data; i < best+size; i++ {
		h.p.view[i] = 0
	}
	if err := h.p.persistRaw(int64(data), int64(size-blockHeaderSize)); err != nil {
		return 0, err
	}
	return data, nil
}

// free releases the block whose data starts at dataOff, coalescing with
// the following block when free.
func (h *heap) free(dataOff uint64) error {
	off := dataOff - blockHeaderSize
	magic, size, flags, _ := h.readHeader(off)
	if magic != blockMagic {
		return &PoolError{Op: "free", Layout: h.p.layout, Why: fmt.Sprintf("no block at %#x", dataOff)}
	}
	if flags&flagAllocated == 0 {
		return &PoolError{Op: "free", Layout: h.p.layout, Why: fmt.Sprintf("double free at %#x", dataOff)}
	}
	// Forward coalesce.
	next := off + size
	if next < h.end {
		nm, nsize, nflags, _ := h.readHeader(next)
		if nm == blockMagic && nflags&flagAllocated == 0 {
			delete(h.freeIdx, next)
			size += nsize
		}
	}
	h.writeHeader(off, size, 0, 0)
	if err := h.p.persistRaw(int64(off), blockHeaderSize); err != nil {
		return err
	}
	h.freeIdx[off] = size
	return nil
}

// userSize returns the requested size of an allocated block.
func (h *heap) userSize(dataOff uint64) (uint64, error) {
	off := dataOff - blockHeaderSize
	magic, _, flags, user := h.readHeader(off)
	if magic != blockMagic || flags&flagAllocated == 0 {
		return 0, &PoolError{Op: "allocsize", Layout: h.p.layout, Why: fmt.Sprintf("no allocated block at %#x", dataOff)}
	}
	return user, nil
}

// CheckReport is the result of a heap consistency scan.
type CheckReport struct {
	// Blocks walked in total.
	Blocks int
	// AllocatedBlocks currently live.
	AllocatedBlocks int
	// FreeBlocks on the free chain.
	FreeBlocks int
	// FreeBytes available (including headers of free blocks).
	FreeBytes uint64
	// Corrupt headers encountered (the walk stops at the first).
	Corrupt bool
}

// Check walks the heap like `pmempool check`, validating every header
// and summarising occupancy. It never mutates the pool.
func (p *Pool) Check() (CheckReport, error) {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("check"); err != nil {
		return CheckReport{}, err
	}
	p.heapMu.Lock()
	defer p.heapMu.Unlock()
	var r CheckReport
	off := p.heapOff
	for off < uint64(p.size) {
		magic, size, flags, _ := p.heap.readHeader(off)
		if magic != blockMagic || size < blockHeaderSize || off+size > uint64(p.size) {
			r.Corrupt = true
			return r, &PoolError{Op: "check", Layout: p.layout, Why: fmt.Sprintf("corrupt header at %#x", off)}
		}
		r.Blocks++
		if flags&flagAllocated != 0 {
			r.AllocatedBlocks++
		} else {
			r.FreeBlocks++
			r.FreeBytes += size
		}
		off += size
	}
	return r, nil
}
