package pmem

// Object iteration, the pmemobj_first/pmemobj_next analogue: walking
// every live allocation of a pool. PMDK exposes this for garbage
// inspection and leak hunting; our pmemcli and the checkpoint layer use
// it the same way.

// ObjectInfo describes one live allocation.
type ObjectInfo struct {
	// OID of the object.
	OID OID
	// Size requested at allocation time.
	Size uint64
	// IsRoot marks the pool's root object.
	IsRoot bool
}

// Objects returns every live allocation in ascending address order.
func (p *Pool) Objects() ([]ObjectInfo, error) {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	if err := p.checkLive("objects"); err != nil {
		return nil, err
	}
	p.heapMu.Lock()
	defer p.heapMu.Unlock()
	var out []ObjectInfo
	off := p.heapOff
	for off < uint64(p.size) {
		magic, size, flags, user := p.heap.readHeader(off)
		if magic != blockMagic || size < blockHeaderSize || off+size > uint64(p.size) {
			return nil, &PoolError{Op: "objects", Layout: p.layout, Why: "corrupt heap during walk"}
		}
		if flags&flagAllocated != 0 {
			data := off + blockHeaderSize
			out = append(out, ObjectInfo{
				OID:    OID{PoolID: p.poolID, Off: data},
				Size:   user,
				IsRoot: data == p.rootOff,
			})
		}
		off += size
	}
	return out, nil
}

// First returns the first live object, or ok=false for an empty pool.
func (p *Pool) First() (ObjectInfo, bool, error) {
	objs, err := p.Objects()
	if err != nil || len(objs) == 0 {
		return ObjectInfo{}, false, err
	}
	return objs[0], true, nil
}

// Next returns the live object following oid in address order.
func (p *Pool) Next(oid OID) (ObjectInfo, bool, error) {
	objs, err := p.Objects()
	if err != nil {
		return ObjectInfo{}, false, err
	}
	for i, o := range objs {
		if o.OID == oid && i+1 < len(objs) {
			return objs[i+1], true, nil
		}
	}
	return ObjectInfo{}, false, nil
}

// LiveBytes sums the user sizes of all live objects.
func (p *Pool) LiveBytes() (uint64, error) {
	objs, err := p.Objects()
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, o := range objs {
		total += o.Size
	}
	return total, nil
}
