package pmem

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTxCommitDurable(t *testing.T) {
	p, r := createPool(t)
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(oid, 64)
	copy(v, "old-value")
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}

	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRange(oid, 0, 64); err != nil {
		t.Fatal(err)
	}
	copy(v, "new-value")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	p.SimulateCrash()
	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := p2.View(oid, 64)
	if string(got[:9]) != "new-value" {
		t.Errorf("after commit+crash = %q, want new-value", got[:9])
	}
}

func TestTxCrashBeforeCommitRollsBack(t *testing.T) {
	p, r := createPool(t)
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(oid, 64)
	copy(v, "old-value")
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}

	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRange(oid, 0, 64); err != nil {
		t.Fatal(err)
	}
	copy(v, "torn-write")
	// Even persist the torn data — recovery must still undo it.
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}
	p.SimulateCrash() // no commit

	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := p2.View(oid, 64)
	if string(got[:9]) != "old-value" {
		t.Errorf("after crash without commit = %q, want old-value (rollback)", got[:9])
	}
}

func TestTxAbortRestoresViewAndMedia(t *testing.T) {
	p, _ := createPool(t)
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(oid, 64)
	copy(v, "original")
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRange(oid, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(v, "mutated!")
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// The view itself is restored, not only the media.
	if string(v[:8]) != "original" {
		t.Errorf("view after abort = %q", v[:8])
	}
	if p.Stats().TxAborts.Load() != 1 {
		t.Error("abort not counted")
	}
}

func TestTxLanesAndFinishedTxRejected(t *testing.T) {
	p, _ := createPool(t)
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Up to TxLanes transactions may be in flight concurrently, each on
	// its own undo-log lane.
	others := make([]*Tx, 0, TxLanes-1)
	for i := 1; i < TxLanes; i++ {
		tx2, err := p.Begin()
		if err != nil {
			t.Fatalf("concurrent transaction %d rejected: %v", i, err)
		}
		others = append(others, tx2)
	}
	seen := map[uint64]bool{tx.lane: true}
	for _, tx2 := range others {
		if seen[tx2.lane] {
			t.Fatalf("lane %d handed out twice", tx2.lane)
		}
		seen[tx2.lane] = true
	}
	for _, tx2 := range others {
		if err := tx2.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Finished transactions reject further use.
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	if err := tx.Abort(); err == nil {
		t.Error("abort after commit accepted")
	}
	oid, _ := p.Alloc(8)
	if err := tx.AddRange(oid, 0, 8); err == nil {
		t.Error("AddRange after commit accepted")
	}
	// A new transaction can start now.
	tx2, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestTxAddRangeValidation(t *testing.T) {
	p, _ := createPool(t)
	oid, _ := p.Alloc(64)
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRange(oid, 0, 0); err == nil {
		t.Error("zero-length range accepted")
	}
	if err := tx.AddRange(OID{PoolID: 42, Off: oid.Off}, 0, 8); err == nil {
		t.Error("foreign OID accepted")
	}
	if err := tx.AddRange(oid, 0, uint64(testPoolSize)); err == nil {
		t.Error("out-of-heap range accepted")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxLogFull(t *testing.T) {
	p, _ := createPool(t)
	oid, err := p.Alloc(DefaultLogSize)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// One giant range exceeding the log must be rejected cleanly.
	if err := tx.AddRange(oid, 0, DefaultLogSize); err == nil {
		t.Error("log overflow accepted")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseWithOpenTxRejected(t *testing.T) {
	p, _ := createPool(t)
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil {
		t.Error("close with open transaction accepted")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateHelper(t *testing.T) {
	p, r := createPool(t)
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Update(oid, 8, 8, func(b []byte) error {
		binary.LittleEndian.PutUint64(b, 0xFEEDFACE)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	p.SimulateCrash()
	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.GetUint64(oid, 8)
	if err != nil || got != 0xFEEDFACE {
		t.Errorf("after Update+crash = %#x, %v", got, err)
	}
	// fn error aborts cleanly and leaves the pool usable.
	sentinel := &TxError{Op: "user", Why: "boom"}
	if err := p2.Update(oid, 8, 8, func(b []byte) error { return sentinel }); err != sentinel {
		t.Errorf("Update error = %v, want sentinel", err)
	}
	if got, _ := p2.GetUint64(oid, 8); got != 0xFEEDFACE {
		t.Error("aborted Update changed data")
	}
	if _, err := p2.Begin(); err != nil {
		t.Errorf("pool unusable after aborted Update: %v", err)
	}
}

func TestTypedAccessors(t *testing.T) {
	p, r := createPool(t)
	oid, fs, err := p.AllocFloat64s(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 100 {
		t.Fatalf("len = %d", len(fs))
	}
	for i := range fs {
		fs[i] = float64(i) * 1.5
	}
	if err := p.PersistFloat64s(oid, 0, 100); err != nil {
		t.Fatal(err)
	}
	p.SimulateCrash()
	p2, err := Open(r, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := p2.Float64s(oid, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fs2 {
		if v != float64(i)*1.5 {
			t.Fatalf("fs[%d] = %v, want %v", i, v, float64(i)*1.5)
		}
	}
	// Validation.
	if _, err := p2.Float64s(oid, 0); err == nil {
		t.Error("zero-length Float64s accepted")
	}
	if _, _, err := p2.AllocFloat64s(-1); err == nil {
		t.Error("negative AllocFloat64s accepted")
	}
	if err := p2.PersistFloat64s(oid, 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if err := p2.PersistFloat64s(oid, 5, 5); err != nil {
		t.Error("empty range should be a no-op")
	}
	// Scalar helpers.
	if err := p2.SetFloat64(oid, 0, 3.25); err != nil {
		t.Fatal(err)
	}
	got, err := p2.GetFloat64(oid, 0)
	if err != nil || got != 3.25 {
		t.Errorf("GetFloat64 = %v, %v", got, err)
	}
}

// Property: whatever write count the power fails at, reopening the pool
// shows either the complete old value or the complete new value of a
// transactionally updated range — never a mixture. This sweeps the
// crash point across every media write the protocol performs.
func TestTxAtomicityAcrossAllCrashPoints(t *testing.T) {
	old := bytes.Repeat([]byte{0xAA}, 64)
	new_ := bytes.Repeat([]byte{0x55}, 64)

	// First, count the total writes of a full run.
	total := func() int {
		r := newMemRegion(testPoolSize, true)
		p, err := Create(r, "atomic")
		if err != nil {
			t.Fatal(err)
		}
		oid, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := p.View(oid, 64)
		copy(v, old)
		if err := p.Persist(oid, 64); err != nil {
			t.Fatal(err)
		}
		start := r.writes
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.AddRange(oid, 0, 64); err != nil {
			t.Fatal(err)
		}
		copy(v, new_)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return r.writes - start
	}()
	if total < 4 {
		t.Fatalf("transaction performed only %d writes; protocol too thin to test", total)
	}

	for cut := 0; cut <= total; cut++ {
		r := newMemRegion(testPoolSize, true)
		p, err := Create(r, "atomic")
		if err != nil {
			t.Fatal(err)
		}
		oid, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := p.View(oid, 64)
		copy(v, old)
		if err := p.Persist(oid, 64); err != nil {
			t.Fatal(err)
		}
		r.cutoff = r.writes + cut // power fails after `cut` more writes
		tx, err := p.Begin()
		if err == nil {
			if err := tx.AddRange(oid, 0, 64); err == nil {
				copy(v, new_)
				_ = tx.Commit() // may "succeed" while writes are dropped
			}
		}
		// Power is restored: lift the cutoff and recover.
		r.cutoff = -1
		p.SimulateCrash()
		p2, err := Open(r, "atomic")
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		got, err := p2.View(oid, 64)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !bytes.Equal(got, old) && !bytes.Equal(got, new_) {
			t.Fatalf("cut=%d: torn state %x", cut, got[:8])
		}
	}
}

// Property: random transactional updates on random offsets maintain
// atomicity under immediate-crash recovery.
func TestTxAtomicityProperty(t *testing.T) {
	f := func(seedByte uint8, commit bool) bool {
		r := newMemRegion(1<<20, true)
		p, err := Create(r, "prop")
		if err != nil {
			return false
		}
		oid, err := p.Alloc(4096)
		if err != nil {
			return false
		}
		v, _ := p.View(oid, 4096)
		for i := range v {
			v[i] = seedByte
		}
		if err := p.Persist(oid, 4096); err != nil {
			return false
		}
		tx, err := p.Begin()
		if err != nil {
			return false
		}
		off := uint64(seedByte) * 7 % 3000
		if err := tx.AddRange(oid, off, 512); err != nil {
			return false
		}
		for i := off; i < off+512; i++ {
			v[i] = ^seedByte
		}
		if commit {
			if err := tx.Commit(); err != nil {
				return false
			}
		}
		p.SimulateCrash()
		p2, err := Open(r, "prop")
		if err != nil {
			return false
		}
		got, err := p2.View(oid, 4096)
		if err != nil {
			return false
		}
		want := seedByte
		if commit {
			want = ^seedByte
		}
		for i := off; i < off+512; i++ {
			if got[i] != want {
				return false
			}
		}
		// Bytes outside the range are untouched.
		for i := uint64(0); i < off; i++ {
			if got[i] != seedByte {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// countingRegion wraps a Region and counts bytes read through it. The
// counter is atomic: regions are shared by concurrent transactions, so
// a plain int64 here would trip the race job.
type countingRegion struct {
	inner     Region
	bytesRead atomic.Int64
}

func (c *countingRegion) ReadAt(p []byte, off int64) error {
	c.bytesRead.Add(int64(len(p)))
	return c.inner.ReadAt(p, off)
}
func (c *countingRegion) WriteAt(p []byte, off int64) error { return c.inner.WriteAt(p, off) }
func (c *countingRegion) Size() int64                       { return c.inner.Size() }
func (c *countingRegion) Persistent() bool                  { return c.inner.Persistent() }

// TestOpenSingleMediaScan guards the Open fast path: even when undo-log
// recovery runs, the media is scanned exactly once (header probe plus
// one full view load) — the log is recovered from the in-memory view,
// not from a second media pass.
func TestOpenSingleMediaScan(t *testing.T) {
	p, r := createPool(t)
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := p.View(oid, 64)
	copy(v, "old-value")
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRange(oid, 0, 64); err != nil {
		t.Fatal(err)
	}
	copy(v, "torn-data")
	if err := p.Persist(oid, 64); err != nil {
		t.Fatal(err)
	}
	p.SimulateCrash()

	cr := &countingRegion{inner: r}
	p2, err := Open(cr, "stream-arrays")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := p2.View(oid, 64)
	if string(got[:9]) != "old-value" {
		t.Errorf("recovery result = %q, want old-value", got[:9])
	}
	if max := int64(testPoolSize) + headerSize; cr.bytesRead.Load() > max {
		t.Errorf("Open read %d bytes, want <= %d (single media scan)", cr.bytesRead.Load(), max)
	}
}
