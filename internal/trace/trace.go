// Package trace records device access streams. The paper's §1.3 lists
// "efficient data placement and movement strategies" as the key
// software challenge for CXL-based disaggregated memory; placement
// decisions need access telemetry, and this package provides it: a
// transparent memdev.Device wrapper that logs every access, plus the
// locality and reuse analyses a placement policy (such as
// internal/tiering) would consume, and a replayer that drives a
// recorded workload against any other device.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// Op is an access type.
type Op uint8

const (
	// OpRead is a ReadAt.
	OpRead Op = iota
	// OpWrite is a WriteAt.
	OpWrite
)

func (o Op) String() string {
	if o == OpWrite {
		return "W"
	}
	return "R"
}

// Event is one recorded access.
type Event struct {
	Seq int64
	Op  Op
	Off int64
	Len int
}

// stream is the shared bounded event log behind both recorder flavours
// (the memdev.Device wrapper below and the cxl.MemIO wrapper in
// memio.go).
type stream struct {
	mu     sync.Mutex
	events []Event
	seq    int64
	limit  int
}

func (s *stream) log(op Op, off int64, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= s.limit {
		// Ring behaviour: drop the oldest half to keep recording.
		copy(s.events, s.events[len(s.events)/2:])
		s.events = s.events[:len(s.events)-len(s.events)/2]
	}
	s.events = append(s.events, Event{Seq: s.seq, Op: op, Off: off, Len: n})
	s.seq++
}

// Events returns a copy of the recorded stream.
func (s *stream) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Reset clears the stream.
func (s *stream) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = s.events[:0]
}

// Recorder wraps a device and logs accesses. It implements
// memdev.Device so it can stand anywhere a device does (a pmemfs mount
// accessor, a tier, a pool region).
type Recorder struct {
	inner memdev.Device
	stream
}

// NewRecorder wraps dev, keeping at most limit events (0 = 1<<20).
func NewRecorder(dev memdev.Device, limit int) (*Recorder, error) {
	if dev == nil {
		return nil, fmt.Errorf("trace: nil device")
	}
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{inner: dev, stream: stream{limit: limit}}, nil
}

// Name implements memdev.Device.
func (r *Recorder) Name() string { return r.inner.Name() + "+trace" }

// Capacity implements memdev.Device.
func (r *Recorder) Capacity() units.Size { return r.inner.Capacity() }

// Persistent implements memdev.Device.
func (r *Recorder) Persistent() bool { return r.inner.Persistent() }

// Profile implements memdev.Device.
func (r *Recorder) Profile() memdev.Profile { return r.inner.Profile() }

// Stats implements memdev.Device.
func (r *Recorder) Stats() *memdev.Stats { return r.inner.Stats() }

// PowerCycle implements memdev.Device.
func (r *Recorder) PowerCycle() { r.inner.PowerCycle() }

// ReadAt implements memdev.Device, recording the access.
func (r *Recorder) ReadAt(p []byte, off int64) error {
	if err := r.inner.ReadAt(p, off); err != nil {
		return err
	}
	r.log(OpRead, off, len(p))
	return nil
}

// WriteAt implements memdev.Device, recording the access.
func (r *Recorder) WriteAt(p []byte, off int64) error {
	if err := r.inner.WriteAt(p, off); err != nil {
		return err
	}
	r.log(OpWrite, off, len(p))
	return nil
}

// Analysis summarises a trace for placement decisions.
type Analysis struct {
	Events     int
	Reads      int
	Writes     int
	BytesRead  int64
	BytesWrite int64
	// ReadFraction of the traffic mix (for perf.Mix).
	ReadFraction float64
	// UniquePages touched at the given page granule.
	UniquePages int
	// HottestPages lists up to N (page, accesses) pairs, hottest first.
	HottestPages []PageHeat
	// SequentialFraction of accesses whose offset immediately follows
	// the previous access (streaming detection).
	SequentialFraction float64
}

// PageHeat is one page's access count.
type PageHeat struct {
	Page     int64
	Accesses int
}

// Analyze folds a trace at the given page granule, reporting the top N
// hottest pages.
func Analyze(events []Event, pageSize int64, topN int) (Analysis, error) {
	if pageSize <= 0 {
		return Analysis{}, fmt.Errorf("trace: page size must be positive")
	}
	var a Analysis
	heat := map[int64]int{}
	var lastEnd int64 = -1
	sequential := 0
	for _, e := range events {
		a.Events++
		switch e.Op {
		case OpWrite:
			a.Writes++
			a.BytesWrite += int64(e.Len)
		default:
			a.Reads++
			a.BytesRead += int64(e.Len)
		}
		for pg := e.Off / pageSize; pg <= (e.Off+int64(e.Len)-1)/pageSize; pg++ {
			heat[pg]++
		}
		if e.Off == lastEnd {
			sequential++
		}
		lastEnd = e.Off + int64(e.Len)
	}
	a.UniquePages = len(heat)
	if total := a.BytesRead + a.BytesWrite; total > 0 {
		a.ReadFraction = float64(a.BytesRead) / float64(total)
	}
	if a.Events > 1 {
		a.SequentialFraction = float64(sequential) / float64(a.Events-1)
	}
	pages := make([]PageHeat, 0, len(heat))
	for pg, n := range heat {
		pages = append(pages, PageHeat{Page: pg, Accesses: n})
	}
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].Accesses != pages[j].Accesses {
			return pages[i].Accesses > pages[j].Accesses
		}
		return pages[i].Page < pages[j].Page
	})
	if topN > 0 && len(pages) > topN {
		pages = pages[:topN]
	}
	a.HottestPages = pages
	return a, nil
}

// Replay drives a recorded stream against another device, re-performing
// every access (reads discard data, writes store a deterministic fill).
// It returns the total bytes moved.
func Replay(events []Event, dst memdev.Device) (int64, error) {
	if dst == nil {
		return 0, fmt.Errorf("trace: nil destination")
	}
	var moved int64
	buf := make([]byte, 0, 4096)
	for _, e := range events {
		if cap(buf) < e.Len {
			buf = make([]byte, e.Len)
		}
		b := buf[:e.Len]
		switch e.Op {
		case OpWrite:
			for i := range b {
				b[i] = byte(e.Seq)
			}
			if err := dst.WriteAt(b, e.Off); err != nil {
				return moved, err
			}
		default:
			if err := dst.ReadAt(b, e.Off); err != nil {
				return moved, err
			}
		}
		moved += int64(e.Len)
	}
	return moved, nil
}
