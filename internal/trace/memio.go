package trace

import (
	"fmt"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/telemetry"
)

// IORecorder wraps a cxl.MemIO and logs every access that crosses it,
// so traces capture the ring path the fabric actually drives (line and
// burst flits, submit/flush batches) rather than a flat byte device.
// Asynchronous submissions are logged at submit time — that is when the
// descriptor enters the ring.
type IORecorder struct {
	inner cxl.MemIO
	stream
}

var _ cxl.MemIO = (*IORecorder)(nil)

// NewIORecorder wraps io, keeping at most limit events (0 = 1<<20).
func NewIORecorder(io cxl.MemIO, limit int) (*IORecorder, error) {
	if io == nil {
		return nil, fmt.Errorf("trace: nil MemIO")
	}
	if limit <= 0 {
		limit = 1 << 20
	}
	return &IORecorder{inner: io, stream: stream{limit: limit}}, nil
}

// ReadLine implements cxl.MemIO, recording the access.
func (r *IORecorder) ReadLine(hpa uint64, out *[cxl.LineSize]byte) error {
	if err := r.inner.ReadLine(hpa, out); err != nil {
		return err
	}
	r.log(OpRead, int64(hpa), cxl.LineSize)
	return nil
}

// WriteLine implements cxl.MemIO, recording the access.
func (r *IORecorder) WriteLine(hpa uint64, data *[cxl.LineSize]byte) error {
	if err := r.inner.WriteLine(hpa, data); err != nil {
		return err
	}
	r.log(OpWrite, int64(hpa), cxl.LineSize)
	return nil
}

// ReadBurst implements cxl.MemIO, recording the access.
func (r *IORecorder) ReadBurst(hpa uint64, p []byte) error {
	if err := r.inner.ReadBurst(hpa, p); err != nil {
		return err
	}
	r.log(OpRead, int64(hpa), len(p))
	return nil
}

// WriteBurst implements cxl.MemIO, recording the access.
func (r *IORecorder) WriteBurst(hpa uint64, p []byte) error {
	if err := r.inner.WriteBurst(hpa, p); err != nil {
		return err
	}
	r.log(OpWrite, int64(hpa), len(p))
	return nil
}

// ReadAt implements cxl.MemIO, recording the access.
func (r *IORecorder) ReadAt(p []byte, off int64) error {
	if err := r.inner.ReadAt(p, off); err != nil {
		return err
	}
	r.log(OpRead, off, len(p))
	return nil
}

// WriteAt implements cxl.MemIO, recording the access.
func (r *IORecorder) WriteAt(p []byte, off int64) error {
	if err := r.inner.WriteAt(p, off); err != nil {
		return err
	}
	r.log(OpWrite, off, len(p))
	return nil
}

// SubmitRead implements cxl.MemIO, recording at submit time.
func (r *IORecorder) SubmitRead(hpa uint64, out *[cxl.LineSize]byte) (*cxl.Completion, error) {
	c, err := r.inner.SubmitRead(hpa, out)
	if err != nil {
		return c, err
	}
	r.log(OpRead, int64(hpa), cxl.LineSize)
	return c, nil
}

// SubmitWrite implements cxl.MemIO, recording at submit time.
func (r *IORecorder) SubmitWrite(hpa uint64, data *[cxl.LineSize]byte) (*cxl.Completion, error) {
	c, err := r.inner.SubmitWrite(hpa, data)
	if err != nil {
		return c, err
	}
	r.log(OpWrite, int64(hpa), cxl.LineSize)
	return c, nil
}

// Flush implements cxl.MemIO.
func (r *IORecorder) Flush() { r.inner.Flush() }

// Harvest implements cxl.MemIO.
func (r *IORecorder) Harvest(dst []cxl.Completed) int { return r.inner.Harvest(dst) }

// RegisterMetrics exposes the recorder's locality and reuse summary as
// live telemetry gauges instead of a one-off Analyze report: each
// gather re-folds the retained window at the given page granule
// (0 = 4 KiB). Gauges, not counters — the window is bounded, so the
// figures describe the recent stream, not all time. Available on both
// recorder flavours.
func (s *stream) RegisterMetrics(reg *telemetry.Registry, name string, pageSize int64) {
	if pageSize <= 0 {
		pageSize = 4096
	}
	labels := telemetry.Labels("trace", name)
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		a, err := Analyze(s.Events(), pageSize, 1)
		if err != nil {
			return
		}
		e.Gauge("trace_recorded_events", labels, float64(a.Events))
		e.Gauge("trace_read_bytes", labels, float64(a.BytesRead))
		e.Gauge("trace_write_bytes", labels, float64(a.BytesWrite))
		e.Gauge("trace_read_fraction", labels, a.ReadFraction)
		e.Gauge("trace_sequential_fraction", labels, a.SequentialFraction)
		e.Gauge("trace_unique_pages", labels, float64(a.UniquePages))
		if len(a.HottestPages) > 0 {
			e.Gauge("trace_hottest_page_accesses", labels, float64(a.HottestPages[0].Accesses))
		}
	})
}

// ReplayIO drives a recorded stream against a MemIO data path,
// re-performing every access through the rings (reads discard data,
// writes store a deterministic fill). It returns the total bytes moved.
func ReplayIO(events []Event, dst cxl.MemIO) (int64, error) {
	if dst == nil {
		return 0, fmt.Errorf("trace: nil destination")
	}
	var moved int64
	buf := make([]byte, 0, 4096)
	for _, e := range events {
		if cap(buf) < e.Len {
			buf = make([]byte, e.Len)
		}
		b := buf[:e.Len]
		switch e.Op {
		case OpWrite:
			for i := range b {
				b[i] = byte(e.Seq)
			}
			if err := dst.WriteAt(b, e.Off); err != nil {
				return moved, err
			}
		default:
			if err := dst.ReadAt(b, e.Off); err != nil {
				return moved, err
			}
		}
		moved += int64(e.Len)
	}
	return moved, nil
}
