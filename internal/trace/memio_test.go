package trace

import (
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/telemetry"
)

func ioRecorder(t *testing.T) *IORecorder {
	t.Helper()
	r, err := NewIORecorder(cxl.NewDeviceIO(device(t)), 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIORecorderCapture(t *testing.T) {
	r := ioRecorder(t)

	var line [cxl.LineSize]byte
	for i := range line {
		line[i] = byte(i)
	}
	if err := r.WriteLine(4096, &line); err != nil {
		t.Fatal(err)
	}
	var got [cxl.LineSize]byte
	if err := r.ReadLine(4096, &got); err != nil {
		t.Fatal(err)
	}
	if got != line {
		t.Fatal("line did not round-trip through the recorder")
	}

	burst := make([]byte, 4*cxl.LineSize)
	if err := r.WriteBurst(8192, burst); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadBurst(8192, burst); err != nil {
		t.Fatal(err)
	}

	c, err := r.SubmitWrite(16384, &line)
	if err != nil {
		t.Fatal(err)
	}
	r.Flush()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	events := r.Events()
	want := []struct {
		op  Op
		off int64
		n   int
	}{
		{OpWrite, 4096, cxl.LineSize},
		{OpRead, 4096, cxl.LineSize},
		{OpWrite, 8192, 4 * cxl.LineSize},
		{OpRead, 8192, 4 * cxl.LineSize},
		{OpWrite, 16384, cxl.LineSize},
	}
	if len(events) != len(want) {
		t.Fatalf("recorded %d events, want %d", len(events), len(want))
	}
	for i, w := range want {
		e := events[i]
		if e.Op != w.op || e.Off != w.off || e.Len != w.n {
			t.Fatalf("event %d = %v %d+%d, want %v %d+%d", i, e.Op, e.Off, e.Len, w.op, w.off, w.n)
		}
	}
}

func TestIORecorderErrorNotLogged(t *testing.T) {
	r := ioRecorder(t)
	var line [cxl.LineSize]byte
	if err := r.WriteLine(7, &line); err == nil {
		t.Fatal("unaligned line write should fail")
	}
	if n := len(r.Events()); n != 0 {
		t.Fatalf("failed access was logged: %d events", n)
	}
}

func TestIORecorderMetrics(t *testing.T) {
	r := ioRecorder(t)
	reg := telemetry.NewRegistry()
	r.RegisterMetrics(reg, "t0", 0)

	var line [cxl.LineSize]byte
	for i := 0; i < 8; i++ {
		if err := r.WriteLine(uint64(i*cxl.LineSize), &line); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 24; i++ {
		if err := r.ReadLine(uint64((i%8)*cxl.LineSize), &line); err != nil {
			t.Fatal(err)
		}
	}

	got := map[string]float64{}
	for _, s := range reg.Gather() {
		if s.Kind == telemetry.KindGauge {
			got[s.Name] = s.Value
		}
	}
	if got["trace_recorded_events"] != 32 {
		t.Fatalf("trace_recorded_events = %v, want 32", got["trace_recorded_events"])
	}
	if got["trace_read_fraction"] != 0.75 {
		t.Fatalf("trace_read_fraction = %v, want 0.75", got["trace_read_fraction"])
	}
	// 8 distinct lines all inside one 4 KiB page.
	if got["trace_unique_pages"] != 1 {
		t.Fatalf("trace_unique_pages = %v, want 1", got["trace_unique_pages"])
	}
	if got["trace_hottest_page_accesses"] != 32 {
		t.Fatalf("trace_hottest_page_accesses = %v, want 32", got["trace_hottest_page_accesses"])
	}
}

func TestReplayIO(t *testing.T) {
	r := ioRecorder(t)
	var line [cxl.LineSize]byte
	if err := r.WriteLine(0, &line); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*cxl.LineSize)
	if err := r.ReadBurst(0, buf); err != nil {
		t.Fatal(err)
	}

	dst := cxl.NewDeviceIO(device(t))
	moved, err := ReplayIO(r.Events(), dst)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cxl.LineSize + 2*cxl.LineSize); moved != want {
		t.Fatalf("moved %d bytes, want %d", moved, want)
	}
}
