package trace

import (
	"testing"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

func device(t *testing.T) memdev.Device {
	t.Helper()
	d, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name: "traced", Rate: 4800, Channels: 1, CapacityPerChannel: 16 * units.MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func recorder(t *testing.T) *Recorder {
	t.Helper()
	r, err := NewRecorder(device(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecorderTransparency(t *testing.T) {
	r := recorder(t)
	in := []byte("traced payload")
	if err := r.WriteAt(in, 4096); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := r.ReadAt(out, 4096); err != nil {
		t.Fatal(err)
	}
	if string(out) != string(in) {
		t.Error("data corrupted by recorder")
	}
	if r.Name() != "traced+trace" || r.Capacity() != 16*units.MiB || r.Persistent() {
		t.Error("device attributes not forwarded")
	}
	if r.Profile().Kind != memdev.KindDRAM {
		t.Error("profile not forwarded")
	}
	ev := r.Events()
	if len(ev) != 2 || ev[0].Op != OpWrite || ev[1].Op != OpRead {
		t.Fatalf("events = %v", ev)
	}
	if ev[0].Off != 4096 || ev[0].Len != len(in) || ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Errorf("event fields = %+v", ev[0])
	}
	// Failed accesses are not recorded.
	if err := r.ReadAt(make([]byte, 8), -5); err == nil {
		t.Fatal("bad access succeeded")
	}
	if len(r.Events()) != 2 {
		t.Error("failed access recorded")
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset did not clear")
	}
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Error("op strings")
	}
	if _, err := NewRecorder(nil, 0); err == nil {
		t.Error("nil device accepted")
	}
}

func TestRecorderRingLimit(t *testing.T) {
	r, err := NewRecorder(device(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	for i := 0; i < 20; i++ {
		if err := r.WriteAt(buf, int64(i)*64); err != nil {
			t.Fatal(err)
		}
	}
	ev := r.Events()
	if len(ev) > 8 {
		t.Errorf("events = %d, want <= 8", len(ev))
	}
	// The newest events survive.
	last := ev[len(ev)-1]
	if last.Off != 19*64 {
		t.Errorf("newest event off = %d", last.Off)
	}
}

func TestAnalyze(t *testing.T) {
	r := recorder(t)
	buf := make([]byte, 64)
	// Hot page 0: 10 accesses; page 5: 2; sequential run at the end.
	for i := 0; i < 10; i++ {
		if err := r.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.WriteAt(buf, 5*4096); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteAt(buf, 5*4096+64); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(r.Events(), 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != 12 || a.Reads != 10 || a.Writes != 2 {
		t.Errorf("counts = %+v", a)
	}
	if a.BytesRead != 640 || a.BytesWrite != 128 {
		t.Errorf("bytes = %d/%d", a.BytesRead, a.BytesWrite)
	}
	if a.ReadFraction < 0.82 || a.ReadFraction > 0.84 {
		t.Errorf("read fraction = %v", a.ReadFraction)
	}
	if a.UniquePages != 2 {
		t.Errorf("unique pages = %d", a.UniquePages)
	}
	if len(a.HottestPages) != 2 || a.HottestPages[0].Page != 0 || a.HottestPages[0].Accesses != 10 {
		t.Errorf("hottest = %v", a.HottestPages)
	}
	// One strictly sequential pair (the two writes), plus the repeated
	// reads at offset 0 are not sequential.
	if a.SequentialFraction <= 0 || a.SequentialFraction > 0.2 {
		t.Errorf("sequential fraction = %v", a.SequentialFraction)
	}
	if _, err := Analyze(nil, 0, 1); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestReplay(t *testing.T) {
	r := recorder(t)
	buf := make([]byte, 128)
	for i := 0; i < 5; i++ {
		if err := r.WriteAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
		if err := r.ReadAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	dst := device(t)
	moved, err := Replay(r.Events(), dst)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 10*128 {
		t.Errorf("moved = %d", moved)
	}
	reads, writes, _, _ := dst.Stats().Snapshot()
	if reads != 5 || writes != 5 {
		t.Errorf("replayed ops = %d reads, %d writes", reads, writes)
	}
	if _, err := Replay(nil, nil); err == nil {
		t.Error("nil destination accepted")
	}
	// Replay onto a too-small device fails cleanly.
	small, err := memdev.NewDRAM(memdev.DRAMConfig{Name: "s", Rate: 1333, Channels: 1, CapacityPerChannel: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(r.Events(), small); err == nil {
		t.Error("replay past capacity accepted")
	}
}

func TestRecorderFeedsTieringDecisions(t *testing.T) {
	// Integration: the recorder's analysis identifies the same hot
	// pages a placement policy needs.
	r := recorder(t)
	buf := make([]byte, 64)
	hot := int64(3)
	for i := 0; i < 100; i++ {
		if err := r.ReadAt(buf, hot*2048*1024); err != nil { // 2MiB pages
			t.Fatal(err)
		}
	}
	for pg := int64(0); pg < 8; pg++ {
		if err := r.ReadAt(buf, pg*2048*1024); err != nil {
			t.Fatal(err)
		}
	}
	a, err := Analyze(r.Events(), 2048*1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.HottestPages[0].Page != hot {
		t.Errorf("hottest page = %d, want %d", a.HottestPages[0].Page, hot)
	}
}
