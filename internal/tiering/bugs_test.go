package tiering

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"cxlpmem/internal/cxl"
)

// errInjected is the fault the failing MemIO wrapper returns.
var errInjected = errors.New("injected media fault")

// faultIO wraps a tier's data path and fails exactly one byte-path
// operation: the failAt'th ReadAt/WriteAt counted across every wrapped
// tier (the counter is shared, and atomic because pipeCopy's reader and
// writer run concurrently). Every other operation — including the
// rollback writes a failed swap issues — succeeds.
type faultIO struct {
	cxl.MemIO
	ops    *atomic.Int64
	failAt int64
}

func (f *faultIO) ReadAt(p []byte, off int64) error {
	if f.ops.Add(1) == f.failAt {
		return errInjected
	}
	return f.MemIO.ReadAt(p, off)
}

func (f *faultIO) WriteAt(p []byte, off int64) error {
	if f.ops.Add(1) == f.failAt {
		return errInjected
	}
	return f.MemIO.WriteAt(p, off)
}

func pagePattern(seed byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = seed + byte(i%251)
	}
	return p
}

// TestSwapFailureAtomicity is the torn-swap regression test: before the
// fix, any failure after pipeCopy started streaming B into A's old slot
// returned with A's slot holding partial B while the maps still claimed
// A lived there — page A silently corrupted. With rollback, a failed
// swap leaves both pages byte-exact and in their original tiers, at
// every possible failure point.
func TestSwapFailureAtomicity(t *testing.T) {
	patA, patB := pagePattern(0xA0), pagePattern(0xB0)
	failures := 0
	for failAt := int64(1); ; failAt++ {
		mgr, _ := hierarchy(t, 1, 1, 1)
		a, err := mgr.Alloc() // cold start: tier 2
		if err != nil {
			t.Fatal(err)
		}
		b, err := mgr.Alloc() // tier 1
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Write(a, patA, 0); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Write(b, patB, 0); err != nil {
			t.Fatal(err)
		}
		// Arm the fault after setup so only the swap's own traffic
		// counts toward the failure point.
		var ops atomic.Int64
		var armed []*faultIO
		for _, tr := range mgr.Tiers() {
			f := &faultIO{MemIO: tr.IO, ops: &ops, failAt: failAt}
			tr.IO = f
			armed = append(armed, f)
		}
		err = mgr.Swap(a, b)
		// Disarm so verification reads cannot trip the injector.
		for _, f := range armed {
			f.failAt = 0
		}
		if err == nil {
			// The swap needed fewer operations than failAt: the sweep
			// has covered every failure point.
			if failures == 0 {
				t.Fatal("fault sweep never injected a failure")
			}
			got := make([]byte, PageSize)
			if err := mgr.Read(a, got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, patA) {
				t.Error("page A content lost across successful swap")
			}
			if ta, _ := mgr.TierOf(a); ta != 1 {
				t.Errorf("page A on tier %d after swap, want 1", ta)
			}
			t.Logf("swap atomicity verified across %d injected failure points", failures)
			return
		}
		failures++
		if !errors.Is(err, errInjected) {
			t.Fatalf("failAt=%d: swap error %v does not wrap the injected fault", failAt, err)
		}
		// Both pages must be byte-exact and in their original tiers.
		for _, c := range []struct {
			id   PageID
			pat  []byte
			tier int
		}{{a, patA, 2}, {b, patB, 1}} {
			if tier, err := mgr.TierOf(c.id); err != nil || tier != c.tier {
				t.Fatalf("failAt=%d: page %d on tier %d (%v), want %d", failAt, c.id, tier, err, c.tier)
			}
			got := make([]byte, PageSize)
			if err := mgr.Read(c.id, got, 0); err != nil {
				t.Fatalf("failAt=%d: reading page %d: %v", failAt, c.id, err)
			}
			if !bytes.Equal(got, c.pat) {
				t.Fatalf("failAt=%d: page %d torn after failed swap (first diff at %d)",
					failAt, c.id, firstDiff(got, c.pat))
			}
		}
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestScrubOnFree is the stale-data-leak regression test: before the
// fix, Free returned the slot to the free list unscrubbed, so the next
// Alloc handed out a page that read the previous owner's bytes.
func TestScrubOnFree(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	secret := pagePattern(0x5E)
	if err := mgr.Write(id, secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Free(id); err != nil {
		t.Fatal(err)
	}
	// Cold start reuses the same far-tier slot.
	id2, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := mgr.Read(id2, got, 0); err != nil {
		t.Fatal(err)
	}
	if i := firstDiff(got, make([]byte, PageSize)); i != -1 {
		t.Errorf("freshly allocated page leaks previous owner's bytes (offset %d = %#x)", i, got[i])
	}
}

// TestScrubOnMigrationVacatedSlot covers the lazy half of the scrub
// guarantee: a slot vacated by a migration still holds the page's bytes
// (marked dirty instead of eagerly zeroed) and must be scrubbed when
// Alloc hands it to a new owner.
func TestScrubOnMigrationVacatedSlot(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	id, err := mgr.Alloc() // tier 2
	if err != nil {
		t.Fatal(err)
	}
	secret := pagePattern(0x71)
	if err := mgr.Write(id, secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := mgr.MoveTo(id, 1); err != nil {
		t.Fatal(err)
	}
	// The vacated tier-2 slot is the only free far slot; cold start
	// hands it to the next page.
	id2, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := mgr.TierOf(id2); tier != 2 {
		t.Fatalf("new page on tier %d, want the vacated far slot", tier)
	}
	got := make([]byte, PageSize)
	if err := mgr.Read(id2, got, 0); err != nil {
		t.Fatal(err)
	}
	if i := firstDiff(got, make([]byte, PageSize)); i != -1 {
		t.Errorf("migration-vacated slot leaks moved page's bytes (offset %d = %#x)", i, got[i])
	}
	// The moved page itself is intact.
	if err := mgr.Read(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("migrated page content lost")
	}
}

// TestConcurrentAccessDuringRebalance is the lock-across-I/O regression
// test, meaningful under -race: foreground Read/Write on every page
// proceeds while Rebalance migrates 2 MiB pages underneath. Before the
// per-page locking split this serialized everything behind one mutex
// (and the race is on the placement fields the old code read unlocked).
func TestConcurrentAccessDuringRebalance(t *testing.T) {
	mgr, _ := hierarchy(t, 2, 2, 2)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(w+i)%len(ids)]
				off := int64((i % 32) * 64)
				if i%2 == 0 {
					if err := mgr.Write(id, buf, off); err != nil {
						t.Errorf("worker %d: write: %v", w, err)
						return
					}
				} else {
					if err := mgr.Read(id, buf, off); err != nil {
						t.Errorf("worker %d: read: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	// Migrate continuously under the foreground traffic: shuffle heat
	// so every Rebalance moves pages.
	buf := make([]byte, 8)
	for round := 0; round < 6; round++ {
		hot := ids[round%len(ids)]
		for i := 0; i < 20; i++ {
			if err := mgr.Read(hot, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := mgr.Rebalance(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Placement is still consistent: every page accounted for exactly
	// once across the tiers.
	st := mgr.Stats()
	total := 0
	for _, n := range st.PagesPerTier {
		total += n
	}
	if total != len(ids) {
		t.Errorf("pages per tier %v sum to %d, want %d", st.PagesPerTier, total, len(ids))
	}
}

// TestFreeScrubFailureKeepsSlotDirty: when the scrub on Free itself
// fails, the slot must come back dirty so Alloc re-scrubs it — the
// error is reported but capacity is not leaked.
func TestFreeScrubFailureKeepsSlotDirty(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	secret := pagePattern(0x33)
	if err := mgr.Write(id, secret, 0); err != nil {
		t.Fatal(err)
	}
	// Fail the first scrub write, then heal.
	var ops atomic.Int64
	far := mgr.Tiers()[2]
	far.IO = &faultIO{MemIO: far.IO, ops: &ops, failAt: 1}
	if err := mgr.Free(id); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("Free error = %v, want injected scrub failure", err)
	}
	id2, err := mgr.Alloc() // re-scrubs the dirty slot (fault is one-shot)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := mgr.Read(id2, got, 0); err != nil {
		t.Fatal(err)
	}
	if i := firstDiff(got, make([]byte, PageSize)); i != -1 {
		t.Errorf("slot leaked bytes after failed scrub on Free (offset %d)", i)
	}
}

// TestMoveToFailureLeavesSourceIntact: a failed migration must leave
// the page readable in its original slot and return the partially
// written destination slot to the free list dirty.
func TestMoveToFailureLeavesSourceIntact(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	id, err := mgr.Alloc() // tier 2
	if err != nil {
		t.Fatal(err)
	}
	pat := pagePattern(0x44)
	if err := mgr.Write(id, pat, 0); err != nil {
		t.Fatal(err)
	}
	var ops atomic.Int64
	mid := mgr.Tiers()[1]
	mid.IO = &faultIO{MemIO: mid.IO, ops: &ops, failAt: 3} // mid-pipe write
	if err := mgr.MoveTo(id, 1); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("MoveTo error = %v, want injected fault", err)
	}
	if tier, _ := mgr.TierOf(id); tier != 2 {
		t.Fatalf("page on tier %d after failed move, want 2", tier)
	}
	got := make([]byte, PageSize)
	if err := mgr.Read(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Error("source page torn after failed migration")
	}
	// The reserved destination slot went back dirty: a later successful
	// move plus alloc of the vacated slot still scrubs clean (exercised
	// in TestScrubOnMigrationVacatedSlot; here just confirm capacity is
	// not leaked).
	if err := mgr.MoveTo(id, 1); err != nil {
		t.Fatalf("retry after failed move: %v", err)
	}
}

// TestFreeDoubleFree guards the freed flag: a second Free and accesses
// after Free fail cleanly.
func TestFreeDoubleFree(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Free(id); err == nil {
		t.Error("double free accepted")
	}
	if err := mgr.Read(id, make([]byte, 8), 0); err == nil {
		t.Error("read after free accepted")
	}
	if err := mgr.MoveTo(id, 0); err == nil {
		t.Error("move after free accepted")
	}
}
