//go:build !race

package tiering

// raceEnabled reports whether the race detector is active. The
// allocation guard skips under it: sync.Pool deliberately drops a
// fraction of Puts when race-instrumented, so the pooled migration
// scratch shows spurious allocations there.
const raceEnabled = false
