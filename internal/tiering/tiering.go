// Package tiering implements the paper's second future-work item (§6):
// "Hybrid Architectures: Combining different memory technologies, such
// as DDR, PMem, and CXL memory, in a hybrid memory architecture could
// offer a balanced solution that leverages the strengths of each
// technology."
//
// A Manager owns a set of fixed-size pages whose backing tier is chosen
// by access frequency: hot pages are promoted toward the fastest tier
// with free capacity, cold pages demoted toward the slowest. Promotion
// and demotion physically move the page contents between devices (real
// data movement, as everywhere in this repository) and the modelled
// cost of every migration is accounted.
//
// The Manager is the mechanism half; the policy half is the Daemon
// (daemon.go), which watches device-side hotness counters
// (memdev.Stats heat windows) and runs budgeted, hysteresis-guarded
// promotion/demotion epochs in the background. New allocations land in
// the far tier by default (cold start) and earn their way up.
//
// Concurrency model: foreground Read/Write on disjoint pages proceed
// fully in parallel — the manager mutex guards only the placement maps
// and is never held across device I/O. Each page carries its own
// read-write placement lock (read-held across foreground I/O,
// write-held across migration of that one page), so a 2 MiB migration
// stalls accesses to the page being moved and nothing else. Migrations
// themselves are serialized by a dedicated lock so budget accounting
// and free-slot reservations stay simple. Lock order: page lock before
// manager lock; the manager lock is never held while taking a page
// lock or issuing I/O.
package tiering

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// PageSize is the migration granule (2 MiB, a huge page).
const PageSize = 2 << 20

// migrateChunk is the double-buffering granule for page moves: while
// chunk k drains into the destination tier, chunk k+1 is already being
// fetched from the source, so a cross-tier move costs roughly
// max(read, write) instead of read+write.
const migrateChunk = 256 << 10

// ErrTierFull reports a targeted move whose destination tier has no
// free slot; the caller (the daemon's epoch planner) demotes or swaps
// to make room instead.
var ErrTierFull = errors.New("tiering: destination tier full")

// Tier is one memory technology in the hybrid hierarchy, fastest first.
type Tier struct {
	// Name of the tier ("ddr5", "cxl", "dcpmm").
	Name string
	// Node backing the tier.
	Node *topology.Node
	// Capacity in pages granted to the manager.
	CapacityPages int
	// IO is the tier's data path. Left nil, NewManager resolves it from
	// the node (Node.DataPath()): the striped or window-translated
	// CXL.mem path for CXL tiers, the raw device for direct-attached
	// ones. Tests may inject a custom MemIO.
	IO cxl.MemIO

	used map[PageID]int64 // page -> tier-relative offset
	free []int64          // free tier-relative offsets
	// dirty marks free slots still holding a vacated page's bytes (a
	// migration moved the page away, or a scrub failed). Alloc zeroes a
	// dirty slot before handing it to a new owner, upholding the
	// repo-wide scrub-on-free guarantee without paying a 2 MiB zero on
	// every migration.
	dirty map[int64]bool
	// heat observes device-side hotness for this tier's slab (slot
	// offsets map 1:1 onto device addresses in every supported data
	// path). Set by EnableDeviceHeat; nil until then.
	heat *memdev.Heat
}

// PageID names a managed page.
type PageID int

// pageState tracks placement and heat of one page.
type pageState struct {
	// mu is the placement lock: read-held across foreground I/O,
	// write-held across migration or free of this page. tier, off and
	// freed are guarded by it.
	mu    sync.RWMutex
	tier  int   // index into tiers
	off   int64 // tier-relative slot offset
	freed bool

	// accesses counts manager-path accesses since the last epoch (or
	// Rebalance); atomic so the foreground path never write-locks.
	accesses atomic.Uint64

	// Daemon-owned policy state, touched only from the (single)
	// daemon's epoch runner: exponentially decayed heat and epochs
	// since the page last moved.
	heat      float64
	residency uint64
}

// AllocPolicy selects where new pages land.
type AllocPolicy int

const (
	// AllocColdStart places new pages on the slowest tier with room:
	// cold-start placement (memtier's cold-start feature) — pages earn
	// their way up through observed heat.
	AllocColdStart AllocPolicy = iota
	// AllocFastFirst places new pages on the fastest tier with room
	// (first-touch placement, the historical default).
	AllocFastFirst
)

// Manager places pages across tiers.
type Manager struct {
	// mu guards the placement maps (pages, every tier's used/free/
	// dirty), the id counter and the migration stats. Never held
	// across device I/O.
	mu    sync.RWMutex
	tiers []*Tier
	pages map[PageID]*pageState
	next  PageID

	// migMu serializes migrations (MoveTo, swaps, Rebalance, daemon
	// epochs) against each other; foreground I/O never takes it.
	migMu sync.Mutex

	policy AllocPolicy

	// stats, guarded by mu.
	promotions    int
	demotions     int
	bytesMigrated int64
}

// NewManager builds a hierarchy from fastest to slowest tier. Each
// tier's device must hold CapacityPages × PageSize bytes.
func NewManager(tiers ...*Tier) (*Manager, error) {
	if len(tiers) < 2 {
		return nil, fmt.Errorf("tiering: need at least two tiers, got %d", len(tiers))
	}
	for i, t := range tiers {
		if t.Node == nil || t.CapacityPages <= 0 {
			return nil, fmt.Errorf("tiering: tier %d (%s) invalid", i, t.Name)
		}
		need := int64(t.CapacityPages) * PageSize
		if need > t.Node.Device.Capacity().Bytes() {
			return nil, fmt.Errorf("tiering: tier %s wants %d bytes, device has %v", t.Name, need, t.Node.Device.Capacity())
		}
		if t.IO == nil {
			t.IO = t.Node.DataPath()
		}
		t.used = make(map[PageID]int64)
		t.free = t.free[:0]
		for p := t.CapacityPages - 1; p >= 0; p-- {
			t.free = append(t.free, int64(p)*PageSize)
		}
		t.dirty = make(map[int64]bool)
	}
	return &Manager{tiers: tiers, pages: make(map[PageID]*pageState)}, nil
}

// Tiers lists the hierarchy.
func (m *Manager) Tiers() []*Tier { return m.tiers }

// SetAllocPolicy selects the placement of future allocations.
func (m *Manager) SetAllocPolicy(p AllocPolicy) {
	m.mu.Lock()
	m.policy = p
	m.mu.Unlock()
}

// EnableDeviceHeat attaches windowed hotness counters to every tier's
// backing device at PageSize granularity, so heat is observed at the
// device — counting every access path that reaches the media, not just
// Manager.Read/Write. Idempotent; the Daemon calls it on construction.
func (m *Manager) EnableDeviceHeat() error {
	for _, t := range m.tiers {
		h, err := t.Node.Device.Stats().EnableHeat(t.Node.Device.Capacity(), PageSize)
		if err != nil {
			return fmt.Errorf("tiering: tier %s: %w", t.Name, err)
		}
		t.heat = h
	}
	return nil
}

// zeroChunk is the shared scrub source: always-zero bytes written over
// a slot being scrubbed. Read-only after init.
var zeroChunk = make([]byte, migrateChunk)

// zeroSlot scrubs one page-sized slot through the tier's data path.
func zeroSlot(io cxl.MemIO, off int64) error {
	for o := int64(0); o < PageSize; o += migrateChunk {
		if err := io.WriteAt(zeroChunk, off+o); err != nil {
			return err
		}
	}
	return nil
}

// popFreeLocked takes a slot off a tier's free list, reporting whether
// it still holds stale bytes. Caller holds m.mu.
func popFreeLocked(t *Tier) (off int64, dirty bool) {
	off = t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	dirty = t.dirty[off]
	delete(t.dirty, off)
	return off, dirty
}

// allocOrder returns tier indices in placement-preference order.
func (m *Manager) allocOrderLocked() []int {
	order := make([]int, len(m.tiers))
	for i := range order {
		if m.policy == AllocColdStart {
			order[i] = len(m.tiers) - 1 - i
		} else {
			order[i] = i
		}
	}
	return order
}

// Alloc places a new page according to the allocation policy: on the
// slowest tier with room under the default cold-start policy (the page
// earns promotion through observed heat), or on the fastest with room
// under AllocFastFirst. The slot is guaranteed to read as zeros.
func (m *Manager) Alloc() (PageID, error) {
	m.mu.Lock()
	for _, ti := range m.allocOrderLocked() {
		t := m.tiers[ti]
		if len(t.free) == 0 {
			continue
		}
		off, dirty := popFreeLocked(t)
		id := m.next
		m.next++
		st := &pageState{tier: ti, off: off}
		// Hold the page's placement lock across the scrub so a daemon
		// epoch cannot migrate the page mid-zero.
		st.mu.Lock()
		t.used[id] = off
		m.pages[id] = st
		m.mu.Unlock()
		if dirty {
			if err := zeroSlot(t.IO, off); err != nil {
				// Undo the allocation; the slot stays dirty.
				st.freed = true
				st.mu.Unlock()
				m.mu.Lock()
				delete(m.pages, id)
				delete(t.used, id)
				t.free = append(t.free, off)
				t.dirty[off] = true
				m.mu.Unlock()
				return 0, fmt.Errorf("tiering: scrubbing slot for new page: %w", err)
			}
		}
		st.mu.Unlock()
		return id, nil
	}
	m.mu.Unlock()
	return 0, fmt.Errorf("tiering: all tiers full")
}

// Free releases a page. The vacated slot is scrubbed before it becomes
// allocatable again, so a later Alloc can never leak the previous
// owner's bytes (the repo-wide scrub-on-free guarantee). If the scrub
// itself fails the slot is returned to the free list dirty — Alloc
// re-scrubs it before reuse — and the error is reported.
func (m *Manager) Free(id PageID) error {
	m.mu.RLock()
	st := m.pages[id]
	m.mu.RUnlock()
	if st == nil {
		return fmt.Errorf("tiering: no page %d", id)
	}
	st.mu.Lock()
	if st.freed {
		st.mu.Unlock()
		return fmt.Errorf("tiering: no page %d", id)
	}
	st.freed = true
	t := m.tiers[st.tier]
	off := st.off
	m.mu.Lock()
	delete(m.pages, id)
	delete(t.used, id)
	m.mu.Unlock()
	st.mu.Unlock()
	// Scrub outside every lock — the slot is unreachable (not in used,
	// not yet in free), so nothing can race the zeroing.
	scrubErr := zeroSlot(t.IO, off)
	m.mu.Lock()
	t.free = append(t.free, off)
	if scrubErr != nil {
		t.dirty[off] = true
	}
	m.mu.Unlock()
	if scrubErr != nil {
		return fmt.Errorf("tiering: scrub on free of page %d: %w", id, scrubErr)
	}
	return nil
}

// lookup fetches a page's state without holding any lock afterwards.
func (m *Manager) lookup(id PageID) (*pageState, error) {
	m.mu.RLock()
	st := m.pages[id]
	m.mu.RUnlock()
	if st == nil {
		return nil, fmt.Errorf("tiering: no page %d", id)
	}
	return st, nil
}

// Read copies from a page, counting the access. Disjoint pages are
// read in parallel; only a migration of this very page blocks it.
func (m *Manager) Read(id PageID, p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > PageSize {
		return fmt.Errorf("tiering: access outside page")
	}
	st, err := m.lookup(id)
	if err != nil {
		return err
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.freed {
		return fmt.Errorf("tiering: no page %d", id)
	}
	st.accesses.Add(1)
	return m.tiers[st.tier].IO.ReadAt(p, st.off+off)
}

// Write copies into a page, counting the access. Disjoint pages are
// written in parallel; only a migration of this very page blocks it.
func (m *Manager) Write(id PageID, p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > PageSize {
		return fmt.Errorf("tiering: access outside page")
	}
	st, err := m.lookup(id)
	if err != nil {
		return err
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.freed {
		return fmt.Errorf("tiering: no page %d", id)
	}
	st.accesses.Add(1)
	return m.tiers[st.tier].IO.WriteAt(p, st.off+off)
}

// TierOf reports a page's current tier index (0 = fastest).
func (m *Manager) TierOf(id PageID) (int, error) {
	st, err := m.lookup(id)
	if err != nil {
		return 0, err
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.freed {
		return 0, fmt.Errorf("tiering: no page %d", id)
	}
	return st.tier, nil
}

// Heat reports a page's manager-path access count since the last
// epoch or Rebalance.
func (m *Manager) Heat(id PageID) (uint64, error) {
	st, err := m.lookup(id)
	if err != nil {
		return 0, err
	}
	return st.accesses.Load(), nil
}

// pagePool recycles migration staging buffers: a Rebalance over a hot
// working set moves many pages back to back, and a fresh 2 MiB
// allocation per move (two per swap) is pure GC pressure — the buffers
// never outlive the copy.
var pagePool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// pipeCopy moves n bytes from src to dst through two migrateChunk-sized
// halves of buf, double-buffered: the unbuffered handoff makes the
// reader block until the writer has accepted chunk k, so the reader
// refills a half only after its previous occupant has fully drained —
// read of chunk k+1 overlaps write of chunk k, with no shared-buffer
// race. The writer keeps draining after a failure so the reader never
// blocks on a dead consumer; the first error from either side wins.
func pipeCopy(src cxl.MemIO, srcOff int64, dst cxl.MemIO, dstOff int64, n int64, buf []byte) error {
	type chunk struct {
		b   []byte
		off int64
	}
	ch := make(chan chunk)
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := range ch {
			if werr == nil {
				werr = dst.WriteAt(c.b, dstOff+c.off)
			}
		}
	}()
	var rerr error
	for off := int64(0); off < n; off += migrateChunk {
		end := off + migrateChunk
		if end > n {
			end = n
		}
		b := buf[:end-off]
		if (off/migrateChunk)%2 == 1 {
			b = buf[migrateChunk : migrateChunk+(end-off)]
		}
		if rerr = src.ReadAt(b, srcOff+off); rerr != nil {
			break
		}
		ch <- chunk{b: b, off: off}
	}
	close(ch)
	wg.Wait()
	if rerr != nil {
		return rerr
	}
	return werr
}

// MoveTo migrates a page to the given tier (a targeted promotion or
// demotion — the daemon's per-epoch move primitive). Returns
// ErrTierFull when the destination has no free slot. Foreground I/O on
// other pages proceeds during the copy; access to the moving page
// blocks for its duration.
func (m *Manager) MoveTo(id PageID, dst int) error {
	m.migMu.Lock()
	defer m.migMu.Unlock()
	return m.moveTo(id, dst)
}

// moveTo is MoveTo under an already-held migMu.
func (m *Manager) moveTo(id PageID, dst int) error {
	if dst < 0 || dst >= len(m.tiers) {
		return fmt.Errorf("tiering: no tier %d", dst)
	}
	st, err := m.lookup(id)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.freed {
		return fmt.Errorf("tiering: no page %d", id)
	}
	if st.tier == dst {
		return nil
	}
	src, dstT := m.tiers[st.tier], m.tiers[dst]
	srcOff := st.off
	m.mu.Lock()
	if len(dstT.free) == 0 {
		m.mu.Unlock()
		return ErrTierFull
	}
	dstOff, _ := popFreeLocked(dstT) // fully overwritten below
	m.mu.Unlock()
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	copyErr := pipeCopy(src.IO, srcOff, dstT.IO, dstOff, PageSize, (*bufp)[:2*migrateChunk])
	m.mu.Lock()
	if copyErr != nil {
		// The slot may hold a partial copy: back to the free list dirty.
		dstT.free = append(dstT.free, dstOff)
		dstT.dirty[dstOff] = true
		m.mu.Unlock()
		return copyErr
	}
	dstT.used[id] = dstOff
	delete(src.used, id)
	src.free = append(src.free, srcOff)
	src.dirty[srcOff] = true // vacated slot still holds the page's bytes
	if dst < st.tier {
		m.promotions++
	} else {
		m.demotions++
	}
	m.bytesMigrated += 2 * PageSize
	m.mu.Unlock()
	st.tier, st.off = dst, dstOff
	return nil
}

// Swap exchanges two pages' backing slots (and contents) across tiers.
func (m *Manager) Swap(idA, idB PageID) error {
	m.migMu.Lock()
	defer m.migMu.Unlock()
	return m.swap(idA, idB)
}

// swap exchanges two pages' backing slots (and contents) across tiers:
// page A is staged whole, then B streams into A's old slot through the
// double-buffered pipe (read of B's chunk k+1 overlapping the write of
// chunk k into tier A), and finally the staged A drains into B's slot.
//
// Failure atomicity: the staged copy of A is the undo log. If the pipe
// of B into A's slot fails mid-stream, A's slot holds partial B — the
// staged A is written back and both pages are exactly as before. If
// the final drain of A into B's slot fails, B's slot may hold partial
// A while A's old slot holds a complete B — B is restored from that
// intact copy, then A from the stage. Only if a restore write itself
// also fails is the page left torn, and every error is reported.
//
// Caller holds migMu.
func (m *Manager) swap(idA, idB PageID) error {
	stA, err := m.lookup(idA)
	if err != nil {
		return err
	}
	stB, err := m.lookup(idB)
	if err != nil {
		return err
	}
	if stA == stB {
		return nil
	}
	// Lock both placement locks in id order (stable: ids never swap
	// their states) so concurrent swaps cannot deadlock.
	first, second := stA, stB
	if idB < idA {
		first, second = stB, stA
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	if stA.freed {
		return fmt.Errorf("tiering: no page %d", idA)
	}
	if stB.freed {
		return fmt.Errorf("tiering: no page %d", idB)
	}
	tA, tB := m.tiers[stA.tier], m.tiers[stB.tier]
	offA, offB := stA.off, stB.off
	bufAp := pagePool.Get().(*[]byte)
	chunkp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufAp)
	defer pagePool.Put(chunkp)
	bufA := *bufAp
	if err := tA.IO.ReadAt(bufA, offA); err != nil {
		return err
	}
	if err := pipeCopy(tB.IO, offB, tA.IO, offA, PageSize, (*chunkp)[:2*migrateChunk]); err != nil {
		// A's slot holds partial B; restore A from the stage.
		if rerr := tA.IO.WriteAt(bufA, offA); rerr != nil {
			return errors.Join(err, fmt.Errorf("tiering: restoring page %d after failed swap: %w", idA, rerr))
		}
		return err
	}
	if err := tB.IO.WriteAt(bufA, offB); err != nil {
		// B's slot may hold partial A; the only intact B now lives in
		// A's old slot. Copy it home, then restore A from the stage.
		restore := pipeCopy(tA.IO, offA, tB.IO, offB, PageSize, (*chunkp)[:2*migrateChunk])
		if restore != nil {
			restore = fmt.Errorf("tiering: restoring page %d after failed swap: %w", idB, restore)
		}
		var restoreA error
		if rerr := tA.IO.WriteAt(bufA, offA); rerr != nil {
			restoreA = fmt.Errorf("tiering: restoring page %d after failed swap: %w", idA, rerr)
		}
		return errors.Join(err, restore, restoreA)
	}
	m.mu.Lock()
	delete(tA.used, idA)
	delete(tB.used, idB)
	tA.used[idB] = offA
	tB.used[idA] = offB
	// A swap always moves one page up and one down.
	m.promotions++
	m.demotions++
	m.bytesMigrated += 4 * PageSize
	m.mu.Unlock()
	stA.tier, stB.tier = stB.tier, stA.tier
	stA.off, stB.off = offB, offA
	return nil
}

// entry pairs a page with its state for planning walks.
type entry struct {
	id PageID
	st *pageState
}

// snapshotLocked lists pages deterministically; caller holds m.mu (any
// mode).
func (m *Manager) snapshotLocked() []entry {
	all := make([]entry, 0, len(m.pages))
	for id, st := range m.pages {
		all = append(all, entry{id, st})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	return all
}

// Rebalance sorts pages by heat and packs the hottest into the fastest
// tiers, migrating as needed, then resets the heat counters (a
// one-shot, full-pack epoch — the Daemon's budgeted epochs are the
// continuous version). Returns the number of migrations. Foreground
// I/O may proceed concurrently; pages allocated or freed mid-plan are
// tolerated (freed pages are skipped, new pages wait for the next
// epoch).
func (m *Manager) Rebalance() (int, error) {
	m.migMu.Lock()
	defer m.migMu.Unlock()
	m.mu.RLock()
	all := m.snapshotLocked()
	m.mu.RUnlock()
	type ranked struct {
		entry
		heat uint64
	}
	rank := make([]ranked, 0, len(all))
	for _, e := range all {
		rank = append(rank, ranked{e, e.st.accesses.Load()})
	}
	// Hottest first; stable tie-break by id for determinism.
	sort.Slice(rank, func(a, b int) bool {
		if rank[a].heat != rank[b].heat {
			return rank[a].heat > rank[b].heat
		}
		return rank[a].id < rank[b].id
	})
	// Desired layout: fill tier 0 with the hottest, then tier 1, ...
	want := make(map[PageID]int, len(rank))
	ti, left := 0, m.tiers[0].CapacityPages
	for _, e := range rank {
		for left == 0 {
			ti++
			if ti >= len(m.tiers) {
				return 0, fmt.Errorf("tiering: pages exceed total capacity")
			}
			left = m.tiers[ti].CapacityPages
		}
		want[e.id] = ti
		left--
	}
	// tierOf reads current placement without racing migrations (migMu
	// is held, so only foreground state like freed can change).
	tierOf := func(st *pageState) (int, bool) {
		st.mu.RLock()
		defer st.mu.RUnlock()
		return st.tier, !st.freed
	}
	// Route pages to their desired tiers. Plain migrations need a free
	// slot at the destination; when every tier is exactly full the
	// desired layout is a permutation and cycles are broken by
	// swapping a misplaced page with a misplaced occupant of its
	// desired tier (each swap fixes at least one page, so the loop
	// terminates).
	migrations := 0
	for {
		progress := false
		done := true
		for _, e := range rank {
			cur, live := tierOf(e.st)
			if !live || want[e.id] == cur {
				continue
			}
			done = false
			if err := m.moveTo(e.id, want[e.id]); err == nil {
				migrations++
				progress = true
			} else if !errors.Is(err, ErrTierFull) {
				return migrations, err
			}
		}
		if done {
			break
		}
		if progress {
			continue
		}
		// No free slots anywhere along the desired routes: swap.
		swapped := false
		for _, e := range rank {
			cur, live := tierOf(e.st)
			if !live || want[e.id] == cur {
				continue
			}
			for _, f := range rank {
				fcur, flive := tierOf(f.st)
				if !flive || f.id == e.id || fcur != want[e.id] || want[f.id] == fcur {
					continue
				}
				if err := m.swap(e.id, f.id); err != nil {
					return migrations, err
				}
				migrations += 2
				swapped = true
				break
			}
			if swapped {
				break
			}
		}
		if !swapped {
			return migrations, fmt.Errorf("tiering: rebalance stuck (capacity mismatch)")
		}
	}
	for _, e := range all {
		e.st.accesses.Store(0)
	}
	return migrations, nil
}

// Stats summarises migration activity.
type Stats struct {
	Promotions    int
	Demotions     int
	BytesMigrated int64
	PagesPerTier  []int
}

// Stats returns a snapshot.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Stats{
		Promotions:    m.promotions,
		Demotions:     m.demotions,
		BytesMigrated: m.bytesMigrated,
	}
	for _, t := range m.tiers {
		s.PagesPerTier = append(s.PagesPerTier, len(t.used))
	}
	return s
}

// AvgAccessLatency models the average unloaded access latency across the
// current placement for a given access distribution: pages' heat (from
// the counters accumulated since the last Rebalance) weights each
// tier's latency from core c. This is the figure of merit the hybrid
// architecture optimises.
func (m *Manager) AvgAccessLatency(machine *topology.Machine, c topology.Core) (units.Latency, error) {
	m.mu.RLock()
	all := m.snapshotLocked()
	m.mu.RUnlock()
	var weighted, total float64
	for _, e := range all {
		e.st.mu.RLock()
		tier, freed := e.st.tier, e.st.freed
		e.st.mu.RUnlock()
		if freed {
			continue
		}
		lat, err := machine.AccessLatency(c, m.tiers[tier].Node.ID)
		if err != nil {
			return 0, err
		}
		w := float64(e.st.accesses.Load())
		if w == 0 {
			w = 0.01 // cold pages still count slightly
		}
		weighted += w * lat.Ns()
		total += w
	}
	if total == 0 {
		return 0, fmt.Errorf("tiering: no pages")
	}
	return units.Nanoseconds(weighted / total), nil
}

// NewDDR5CXLDCPMMHierarchy is a convenience builder: the three-tier
// hybrid the paper's future work sketches, assembled from a Setup #1
// machine plus a DCPMM module as the cold tier.
func NewDDR5CXLDCPMMHierarchy(m *topology.Machine, fastPages, midPages, coldPages int) (*Manager, *topology.Machine, error) {
	n0, err := m.Node(0)
	if err != nil {
		return nil, nil, err
	}
	n2, err := m.Node(2)
	if err != nil {
		return nil, nil, err
	}
	pm, err := memdev.NewDCPMM(memdev.DCPMMConfig{Name: "cold-dcpmm", Modules: 1, Capacity: 128 * units.GiB})
	if err != nil {
		return nil, nil, err
	}
	coldNode := &topology.Node{ID: 3, Kind: topology.NodePMem, Device: pm, HomeSocket: 0}
	hybrid := &topology.Machine{
		Name:    m.Name + "+dcpmm",
		Sockets: m.Sockets,
		Nodes:   append(append([]*topology.Node{}, m.Nodes...), coldNode),
		UPI:     m.UPI,
	}
	if err := hybrid.Validate(); err != nil {
		return nil, nil, err
	}
	mgr, err := NewManager(
		&Tier{Name: "ddr5", Node: n0, CapacityPages: fastPages},
		&Tier{Name: "cxl", Node: n2, CapacityPages: midPages},
		&Tier{Name: "dcpmm", Node: coldNode, CapacityPages: coldPages},
	)
	if err != nil {
		return nil, nil, err
	}
	return mgr, hybrid, nil
}
