// Package tiering implements the paper's second future-work item (§6):
// "Hybrid Architectures: Combining different memory technologies, such
// as DDR, PMem, and CXL memory, in a hybrid memory architecture could
// offer a balanced solution that leverages the strengths of each
// technology."
//
// A Manager owns a set of fixed-size pages whose backing tier is chosen
// by access frequency: hot pages are promoted toward the fastest tier
// with free capacity, cold pages demoted toward the slowest. Promotion
// and demotion physically move the page contents between devices (real
// data movement, as everywhere in this repository) and the modelled
// cost of every migration is accounted.
package tiering

import (
	"fmt"
	"sort"
	"sync"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// PageSize is the migration granule (2 MiB, a huge page).
const PageSize = 2 << 20

// migrateChunk is the double-buffering granule for page moves: while
// chunk k drains into the destination tier, chunk k+1 is already being
// fetched from the source, so a cross-tier move costs roughly
// max(read, write) instead of read+write.
const migrateChunk = 256 << 10

// Tier is one memory technology in the hybrid hierarchy, fastest first.
type Tier struct {
	// Name of the tier ("ddr5", "cxl", "dcpmm").
	Name string
	// Node backing the tier.
	Node *topology.Node
	// Capacity in pages granted to the manager.
	CapacityPages int
	// IO is the tier's data path. Left nil, NewManager resolves it from
	// the node (Node.DataPath()): the striped or window-translated
	// CXL.mem path for CXL tiers, the raw device for direct-attached
	// ones. Tests may inject a custom MemIO.
	IO cxl.MemIO

	used map[PageID]int64 // page -> tier-relative offset
	free []int64          // free tier-relative offsets
}

// PageID names a managed page.
type PageID int

// pageState tracks placement and heat.
type pageState struct {
	tier     int // index into tiers
	accesses uint64
}

// Manager places pages across tiers.
type Manager struct {
	mu    sync.Mutex
	tiers []*Tier
	pages map[PageID]*pageState
	next  PageID

	// stats
	promotions    int
	demotions     int
	bytesMigrated int64
}

// NewManager builds a hierarchy from fastest to slowest tier. Each
// tier's device must hold CapacityPages × PageSize bytes.
func NewManager(tiers ...*Tier) (*Manager, error) {
	if len(tiers) < 2 {
		return nil, fmt.Errorf("tiering: need at least two tiers, got %d", len(tiers))
	}
	for i, t := range tiers {
		if t.Node == nil || t.CapacityPages <= 0 {
			return nil, fmt.Errorf("tiering: tier %d (%s) invalid", i, t.Name)
		}
		need := int64(t.CapacityPages) * PageSize
		if need > t.Node.Device.Capacity().Bytes() {
			return nil, fmt.Errorf("tiering: tier %s wants %d bytes, device has %v", t.Name, need, t.Node.Device.Capacity())
		}
		if t.IO == nil {
			t.IO = t.Node.DataPath()
		}
		t.used = make(map[PageID]int64)
		t.free = t.free[:0]
		for p := t.CapacityPages - 1; p >= 0; p-- {
			t.free = append(t.free, int64(p)*PageSize)
		}
	}
	return &Manager{tiers: tiers, pages: make(map[PageID]*pageState)}, nil
}

// Tiers lists the hierarchy.
func (m *Manager) Tiers() []*Tier { return m.tiers }

// Alloc places a new page on the fastest tier with room, falling
// through to slower tiers (first-touch placement).
func (m *Manager) Alloc() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, t := range m.tiers {
		if len(t.free) > 0 {
			off := t.free[len(t.free)-1]
			t.free = t.free[:len(t.free)-1]
			id := m.next
			m.next++
			t.used[id] = off
			m.pages[id] = &pageState{tier: i}
			return id, nil
		}
	}
	return 0, fmt.Errorf("tiering: all tiers full")
}

// Free releases a page.
func (m *Manager) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("tiering: no page %d", id)
	}
	t := m.tiers[st.tier]
	t.free = append(t.free, t.used[id])
	delete(t.used, id)
	delete(m.pages, id)
	return nil
}

// locate returns the tier and offset of a page.
func (m *Manager) locate(id PageID) (*Tier, int64, *pageState, error) {
	st, ok := m.pages[id]
	if !ok {
		return nil, 0, nil, fmt.Errorf("tiering: no page %d", id)
	}
	t := m.tiers[st.tier]
	return t, t.used[id], st, nil
}

// Read copies from a page, counting the access.
func (m *Manager) Read(id PageID, p []byte, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > PageSize {
		return fmt.Errorf("tiering: access outside page")
	}
	t, base, st, err := m.locate(id)
	if err != nil {
		return err
	}
	st.accesses++
	return t.IO.ReadAt(p, base+off)
}

// Write copies into a page, counting the access.
func (m *Manager) Write(id PageID, p []byte, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > PageSize {
		return fmt.Errorf("tiering: access outside page")
	}
	t, base, st, err := m.locate(id)
	if err != nil {
		return err
	}
	st.accesses++
	return t.IO.WriteAt(p, base+off)
}

// TierOf reports a page's current tier index (0 = fastest).
func (m *Manager) TierOf(id PageID) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.pages[id]
	if !ok {
		return 0, fmt.Errorf("tiering: no page %d", id)
	}
	return st.tier, nil
}

// Heat reports a page's access count since the last Rebalance.
func (m *Manager) Heat(id PageID) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.pages[id]
	if !ok {
		return 0, fmt.Errorf("tiering: no page %d", id)
	}
	return st.accesses, nil
}

// pagePool recycles migration staging buffers: a Rebalance over a hot
// working set moves many pages back to back, and a fresh 2 MiB
// allocation per move (two per swap) is pure GC pressure — the buffers
// never outlive the copy.
var pagePool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// pipeCopy moves n bytes from src to dst through two migrateChunk-sized
// halves of buf, double-buffered: the unbuffered handoff makes the
// reader block until the writer has accepted chunk k, so the reader
// refills a half only after its previous occupant has fully drained —
// read of chunk k+1 overlaps write of chunk k, with no shared-buffer
// race. The writer keeps draining after a failure so the reader never
// blocks on a dead consumer; the first error from either side wins.
func pipeCopy(src cxl.MemIO, srcOff int64, dst cxl.MemIO, dstOff int64, n int64, buf []byte) error {
	type chunk struct {
		b   []byte
		off int64
	}
	ch := make(chan chunk)
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := range ch {
			if werr == nil {
				werr = dst.WriteAt(c.b, dstOff+c.off)
			}
		}
	}()
	var rerr error
	for off := int64(0); off < n; off += migrateChunk {
		end := off + migrateChunk
		if end > n {
			end = n
		}
		b := buf[:end-off]
		if (off/migrateChunk)%2 == 1 {
			b = buf[migrateChunk : migrateChunk+(end-off)]
		}
		if rerr = src.ReadAt(b, srcOff+off); rerr != nil {
			break
		}
		ch <- chunk{b: b, off: off}
	}
	close(ch)
	wg.Wait()
	if rerr != nil {
		return rerr
	}
	return werr
}

// migrate physically moves a page between tiers. Caller holds the lock
// and has verified a free slot exists on dst.
func (m *Manager) migrate(id PageID, st *pageState, dst int) error {
	src := m.tiers[st.tier]
	dstT := m.tiers[dst]
	srcOff := src.used[id]
	dstOff := dstT.free[len(dstT.free)-1]
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	if err := pipeCopy(src.IO, srcOff, dstT.IO, dstOff, PageSize, (*bufp)[:2*migrateChunk]); err != nil {
		return err
	}
	dstT.free = dstT.free[:len(dstT.free)-1]
	dstT.used[id] = dstOff
	src.free = append(src.free, srcOff)
	delete(src.used, id)
	if dst < st.tier {
		m.promotions++
	} else {
		m.demotions++
	}
	m.bytesMigrated += 2 * PageSize
	st.tier = dst
	return nil
}

// Rebalance sorts pages by heat and packs the hottest into the fastest
// tiers, migrating as needed, then resets the heat counters (an epoch-
// based kernel-style tiering daemon). Returns the number of migrations.
func (m *Manager) Rebalance() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	type entry struct {
		id PageID
		st *pageState
	}
	all := make([]entry, 0, len(m.pages))
	for id, st := range m.pages {
		all = append(all, entry{id, st})
	}
	// Hottest first; stable tie-break by id for determinism.
	sort.Slice(all, func(a, b int) bool {
		if all[a].st.accesses != all[b].st.accesses {
			return all[a].st.accesses > all[b].st.accesses
		}
		return all[a].id < all[b].id
	})
	// Desired layout: fill tier 0 with the hottest, then tier 1, ...
	want := make(map[PageID]int, len(all))
	ti, left := 0, m.tiers[0].CapacityPages
	for _, e := range all {
		for left == 0 {
			ti++
			if ti >= len(m.tiers) {
				return 0, fmt.Errorf("tiering: pages exceed total capacity")
			}
			left = m.tiers[ti].CapacityPages
		}
		want[e.id] = ti
		left--
	}
	// Route pages to their desired tiers. Plain migrations need a free
	// slot at the destination; when every tier is exactly full the
	// desired layout is a permutation and cycles are broken by
	// swapping a misplaced page with a misplaced occupant of its
	// desired tier (each swap fixes at least one page, so the loop
	// terminates).
	migrations := 0
	for {
		progress := false
		done := true
		for _, e := range all {
			if want[e.id] == e.st.tier {
				continue
			}
			done = false
			if len(m.tiers[want[e.id]].free) > 0 {
				if err := m.migrate(e.id, e.st, want[e.id]); err != nil {
					return migrations, err
				}
				migrations++
				progress = true
			}
		}
		if done {
			break
		}
		if progress {
			continue
		}
		// No free slots anywhere along the desired routes: swap.
		swapped := false
		for _, e := range all {
			if want[e.id] == e.st.tier {
				continue
			}
			for _, f := range all {
				if f.id == e.id || f.st.tier != want[e.id] || want[f.id] == f.st.tier {
					continue
				}
				if err := m.swap(e.id, e.st, f.id, f.st); err != nil {
					return migrations, err
				}
				migrations += 2
				swapped = true
				break
			}
			if swapped {
				break
			}
		}
		if !swapped {
			return migrations, fmt.Errorf("tiering: rebalance stuck (capacity mismatch)")
		}
	}
	for _, e := range all {
		e.st.accesses = 0
	}
	return migrations, nil
}

// swap exchanges two pages' backing slots (and contents) across tiers:
// page A is staged whole, then B streams into A's old slot through the
// double-buffered pipe (read of B's chunk k+1 overlapping the write of
// chunk k into tier A), and finally the staged A drains into B's slot.
// Caller holds the lock.
func (m *Manager) swap(idA PageID, stA *pageState, idB PageID, stB *pageState) error {
	tA, tB := m.tiers[stA.tier], m.tiers[stB.tier]
	offA, offB := tA.used[idA], tB.used[idB]
	bufAp := pagePool.Get().(*[]byte)
	chunkp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufAp)
	defer pagePool.Put(chunkp)
	bufA := *bufAp
	if err := tA.IO.ReadAt(bufA, offA); err != nil {
		return err
	}
	if err := pipeCopy(tB.IO, offB, tA.IO, offA, PageSize, (*chunkp)[:2*migrateChunk]); err != nil {
		return err
	}
	if err := tB.IO.WriteAt(bufA, offB); err != nil {
		return err
	}
	delete(tA.used, idA)
	delete(tB.used, idB)
	tA.used[idB] = offA
	tB.used[idA] = offB
	stA.tier, stB.tier = stB.tier, stA.tier
	// A swap always moves one page up and one down.
	m.promotions++
	m.demotions++
	m.bytesMigrated += 4 * PageSize
	return nil
}

// Stats summarises migration activity.
type Stats struct {
	Promotions    int
	Demotions     int
	BytesMigrated int64
	PagesPerTier  []int
}

// Stats returns a snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Promotions:    m.promotions,
		Demotions:     m.demotions,
		BytesMigrated: m.bytesMigrated,
	}
	for _, t := range m.tiers {
		s.PagesPerTier = append(s.PagesPerTier, len(t.used))
	}
	return s
}

// AvgAccessLatency models the average unloaded access latency across the
// current placement for a given access distribution: pages' heat (from
// the counters accumulated since the last Rebalance) weights each
// tier's latency from core c. This is the figure of merit the hybrid
// architecture optimises.
func (m *Manager) AvgAccessLatency(machine *topology.Machine, c topology.Core) (units.Latency, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var weighted, total float64
	for _, st := range m.pages {
		lat, err := machine.AccessLatency(c, m.tiers[st.tier].Node.ID)
		if err != nil {
			return 0, err
		}
		w := float64(st.accesses)
		if w == 0 {
			w = 0.01 // cold pages still count slightly
		}
		weighted += w * lat.Ns()
		total += w
	}
	if total == 0 {
		return 0, fmt.Errorf("tiering: no pages")
	}
	return units.Nanoseconds(weighted / total), nil
}

// NewDDR5CXLDCPMMHierarchy is a convenience builder: the three-tier
// hybrid the paper's future work sketches, assembled from a Setup #1
// machine plus a DCPMM module as the cold tier.
func NewDDR5CXLDCPMMHierarchy(m *topology.Machine, fastPages, midPages, coldPages int) (*Manager, *topology.Machine, error) {
	n0, err := m.Node(0)
	if err != nil {
		return nil, nil, err
	}
	n2, err := m.Node(2)
	if err != nil {
		return nil, nil, err
	}
	pm, err := memdev.NewDCPMM(memdev.DCPMMConfig{Name: "cold-dcpmm", Modules: 1, Capacity: 128 * units.GiB})
	if err != nil {
		return nil, nil, err
	}
	coldNode := &topology.Node{ID: 3, Kind: topology.NodePMem, Device: pm, HomeSocket: 0}
	hybrid := &topology.Machine{
		Name:    m.Name + "+dcpmm",
		Sockets: m.Sockets,
		Nodes:   append(append([]*topology.Node{}, m.Nodes...), coldNode),
		UPI:     m.UPI,
	}
	if err := hybrid.Validate(); err != nil {
		return nil, nil, err
	}
	mgr, err := NewManager(
		&Tier{Name: "ddr5", Node: n0, CapacityPages: fastPages},
		&Tier{Name: "cxl", Node: n2, CapacityPages: midPages},
		&Tier{Name: "dcpmm", Node: coldNode, CapacityPages: coldPages},
	)
	if err != nil {
		return nil, nil, err
	}
	return mgr, hybrid, nil
}
