package tiering

import (
	"bytes"
	"runtime"
	"testing"
	"testing/quick"

	"cxlpmem/internal/topology"
)

func hierarchy(t *testing.T, fast, mid, cold int) (*Manager, *topology.Machine) {
	t.Helper()
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, hybrid, err := NewDDR5CXLDCPMMHierarchy(m, fast, mid, cold)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, hybrid
}

func TestHierarchyBuilder(t *testing.T) {
	mgr, hybrid := hierarchy(t, 2, 4, 8)
	if len(mgr.Tiers()) != 3 {
		t.Fatalf("tiers = %d", len(mgr.Tiers()))
	}
	names := []string{"ddr5", "cxl", "dcpmm"}
	for i, tr := range mgr.Tiers() {
		if tr.Name != names[i] {
			t.Errorf("tier %d = %s, want %s", i, tr.Name, names[i])
		}
	}
	if len(hybrid.Nodes) != 4 {
		t.Errorf("hybrid machine nodes = %d, want 4", len(hybrid.Nodes))
	}
	// Latency ordering across the hybrid: ddr5 < cxl < dcpmm? DCPMM is
	// DIMM-attached (305ns idle) vs CXL 345ns — CXL is actually the
	// slower latency tier but the faster bandwidth tier; verify both
	// latencies exceed local DDR5.
	c0, err := hybrid.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	l0, _ := hybrid.AccessLatency(c0, 0)
	l2, _ := hybrid.AccessLatency(c0, 2)
	l3, _ := hybrid.AccessLatency(c0, 3)
	if !(l0 < l2 && l0 < l3) {
		t.Errorf("latency ordering: ddr5 %v, cxl %v, dcpmm %v", l0, l2, l3)
	}
}

func TestAllocColdStartPlacement(t *testing.T) {
	mgr, _ := hierarchy(t, 2, 2, 2)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Cold start: new pages land in the far tier first and earn their
	// way up — the slowest tier fills before anything touches a faster
	// one.
	want := []int{2, 2, 1, 1, 0, 0}
	for i, id := range ids {
		tier, err := mgr.TierOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if tier != want[i] {
			t.Errorf("page %d on tier %d, want %d", id, tier, want[i])
		}
	}
	if _, err := mgr.Alloc(); err == nil {
		t.Error("alloc past total capacity accepted")
	}
	// Freeing reopens capacity on the page's tier.
	if err := mgr.Free(ids[0]); err != nil {
		t.Fatal(err)
	}
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := mgr.TierOf(id); tier != 2 {
		t.Errorf("freed far slot not reused: tier %d", tier)
	}
	if err := mgr.Free(99); err == nil {
		t.Error("free of unknown page accepted")
	}
}

func TestAllocFastFirstPolicy(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	mgr.SetAllocPolicy(AllocFastFirst)
	want := []int{0, 1, 2}
	for i := 0; i < 3; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if tier, _ := mgr.TierOf(id); tier != want[i] {
			t.Errorf("page %d on tier %d, want %d", id, tier, want[i])
		}
	}
}

func TestReadWriteAndHeat(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("tiered page data")
	if err := mgr.Write(id, in, 100); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := mgr.Read(id, out, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("round trip mismatch")
	}
	heat, err := mgr.Heat(id)
	if err != nil || heat != 2 {
		t.Errorf("heat = %d, %v; want 2", heat, err)
	}
	if err := mgr.Read(id, out, PageSize-8); err == nil {
		t.Error("out-of-page read accepted")
	}
	if err := mgr.Write(id, out, -1); err == nil {
		t.Error("negative write accepted")
	}
	if _, err := mgr.Heat(42); err == nil {
		t.Error("heat of unknown page accepted")
	}
}

func TestRebalancePromotesHotDemotesCold(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	a, _ := mgr.Alloc() // cold start: lands tier 2
	b, _ := mgr.Alloc() // tier 1
	c, _ := mgr.Alloc() // tier 0
	// Make a (far-resident) hot, c cold, b warm; write distinct content
	// to verify migration moves the bytes.
	if err := mgr.Write(a, []byte("hot-data"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 30; i++ {
		if err := mgr.Read(a, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := mgr.Read(b, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	// c untouched.
	n, err := mgr.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no migrations happened")
	}
	ta, _ := mgr.TierOf(a)
	tb, _ := mgr.TierOf(b)
	tc, _ := mgr.TierOf(c)
	if ta != 0 {
		t.Errorf("hot page on tier %d, want 0", ta)
	}
	if tb != 1 {
		t.Errorf("warm page on tier %d, want 1", tb)
	}
	if tc != 2 {
		t.Errorf("cold page on tier %d, want 2", tc)
	}
	// Heat resets after rebalance (checked before any further access).
	if h, _ := mgr.Heat(a); h != 0 {
		t.Errorf("heat after rebalance = %d", h)
	}
	// Content followed the page.
	if err := mgr.Read(a, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hot-data" {
		t.Errorf("migrated content = %q", buf)
	}
	st := mgr.Stats()
	if st.Promotions == 0 || st.Demotions == 0 || st.BytesMigrated == 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.PagesPerTier) != 3 || st.PagesPerTier[0] != 1 {
		t.Errorf("pages per tier = %v", st.PagesPerTier)
	}
}

func TestRebalanceReducesAvgLatency(t *testing.T) {
	mgr, hybrid := hierarchy(t, 2, 2, 2)
	c0, err := hybrid.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	// Fill all six pages; make the two dcpmm-resident ones (cold-start
	// places the first allocations there) hottest.
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	buf := make([]byte, 8)
	for _, id := range ids[:2] { // the cold-tier pages
		for i := 0; i < 50; i++ {
			if err := mgr.Read(id, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// Re-apply the same access pattern to the (now fast-resident)
	// hot pages and re-measure.
	for _, id := range ids[:2] {
		for i := 0; i < 50; i++ {
			if err := mgr.Read(id, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	after, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("rebalance did not reduce avg latency: %v -> %v", before, after)
	}
}

func TestManagerValidation(t *testing.T) {
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		t.Fatal(err)
	}
	n0, _ := m.Node(0)
	if _, err := NewManager(&Tier{Name: "one", Node: n0, CapacityPages: 1}); err == nil {
		t.Error("single tier accepted")
	}
	if _, err := NewManager(
		&Tier{Name: "a", Node: n0, CapacityPages: 1},
		&Tier{Name: "b", Node: nil, CapacityPages: 1},
	); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewManager(
		&Tier{Name: "a", Node: n0, CapacityPages: 1},
		&Tier{Name: "b", Node: n0, CapacityPages: 1 << 30},
	); err == nil {
		t.Error("capacity beyond device accepted")
	}
}

// Property: after any access pattern and a rebalance, the heat ordering
// is respected — no page on a slower tier was hotter than a page on a
// faster tier at rebalance time.
func TestRebalanceOrderingProperty(t *testing.T) {
	f := func(pattern []uint8) bool {
		mgr, _ := hierarchyQuick()
		var ids []PageID
		for i := 0; i < 6; i++ {
			id, err := mgr.Alloc()
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		buf := make([]byte, 8)
		heats := make(map[PageID]int)
		for _, b := range pattern {
			id := ids[int(b)%len(ids)]
			if err := mgr.Read(id, buf, 0); err != nil {
				return false
			}
			heats[id]++
		}
		if _, err := mgr.Rebalance(); err != nil {
			return false
		}
		// Check: for every pair, hotter page is on a tier <= cooler's.
		for _, a := range ids {
			for _, b := range ids {
				ta, _ := mgr.TierOf(a)
				tb, _ := mgr.TierOf(b)
				if heats[a] > heats[b] && ta > tb {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func hierarchyQuick() (*Manager, *topology.Machine) {
	m, _, err := topology.Setup1(topology.Setup1Options{})
	if err != nil {
		panic(err)
	}
	mgr, hybrid, err := NewDDR5CXLDCPMMHierarchy(m, 2, 2, 2)
	if err != nil {
		panic(err)
	}
	return mgr, hybrid
}

// TestMigrationUsesPooledScratch guards the migration staging buffers:
// after warm-up, ping-ponging a page between tiers must not allocate a
// fresh 2 MiB buffer per move (the pool absorbs them), and the byte
// accounting must stay exact for both migrate and swap.
func TestMigrationUsesPooledScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector")
	}
	mgr, _ := hierarchy(t, 1, 2, 2)
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: materialise the media pages on both sides and seed the
	// scratch pool (the swap path below needs two pooled buffers).
	if err := mgr.MoveTo(id, 1); err != nil {
		t.Fatal(err)
	}
	if err := mgr.MoveTo(id, 0); err != nil {
		t.Fatal(err)
	}
	id2, err := mgr.Alloc() // cold start: lands tier 2
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Swap(id, id2); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Swap(id, id2); err != nil {
		t.Fatal(err)
	}
	before := mgr.bytesMigrated
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	const moves = 8
	for i := 0; i < moves; i++ {
		cur, err := mgr.TierOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.MoveTo(id, 1-cur); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&ms1)
	if got := mgr.bytesMigrated - before; got != moves*2*PageSize {
		t.Errorf("bytesMigrated advanced by %d, want %d", got, moves*2*PageSize)
	}
	// 8 moves stage 16 MiB through scratch; pooled staging must keep
	// total allocation far below one page-sized buffer per move.
	if grown := ms1.TotalAlloc - ms0.TotalAlloc; grown > PageSize {
		t.Errorf("%d bytes allocated across %d migrations, want < one page", grown, moves)
	}
	// The swap path shares the pool and keeps its 4-page accounting.
	t1, _ := mgr.TierOf(id)
	t2, _ := mgr.TierOf(id2)
	if t1 == t2 {
		t.Fatal("test setup: pages landed on the same tier")
	}
	before = mgr.bytesMigrated
	if err := mgr.Swap(id, id2); err != nil {
		t.Fatal(err)
	}
	if got := mgr.bytesMigrated - before; got != 4*PageSize {
		t.Errorf("swap advanced bytesMigrated by %d, want %d", got, 4*PageSize)
	}
}
