package tiering

import (
	"strconv"

	"cxlpmem/internal/telemetry"
)

// RegisterMetrics exposes the tiering manager's migration counters and
// per-tier occupancy through the registry. The gather takes the
// manager's mutex (Stats) — exposition is a cold path.
func (m *Manager) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		st := m.Stats()
		e.Counter("tiering_promotions_total", "", int64(st.Promotions))
		e.Counter("tiering_demotions_total", "", int64(st.Demotions))
		e.Counter("tiering_migrated_bytes_total", "", st.BytesMigrated)
		for i, pages := range st.PagesPerTier {
			e.Gauge("tiering_tier_pages", telemetry.Labels("tier", strconv.Itoa(i)), float64(pages))
		}
	})
}
