package tiering

import (
	"strconv"
	"time"

	"cxlpmem/internal/telemetry"
)

// RegisterMetrics exposes the tiering manager's migration counters and
// per-tier occupancy through the registry. The gather takes the
// manager's mutex (Stats) — exposition is a cold path.
func (m *Manager) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		st := m.Stats()
		e.Counter("tiering_promotions_total", "", int64(st.Promotions))
		e.Counter("tiering_demotions_total", "", int64(st.Demotions))
		e.Counter("tiering_migrated_bytes_total", "", st.BytesMigrated)
		for i, pages := range st.PagesPerTier {
			e.Gauge("tiering_tier_pages", telemetry.Labels("tier", strconv.Itoa(i)), float64(pages))
		}
	})
}

// RegisterMetrics exposes the policy daemon's epoch activity: cumulative
// promotion/demotion/deferral rates, the last epoch's scan size, and an
// epoch-latency histogram fed as epochs complete.
func (d *Daemon) RegisterMetrics(reg *telemetry.Registry) {
	hist := reg.NewHistogram("tiering_daemon_epoch_ns", "")
	d.mu.Lock()
	d.epochDur = func(dur time.Duration) { hist.Record(dur.Nanoseconds()) }
	d.mu.Unlock()
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		d.mu.Lock()
		promoted, demoted, deferred := d.promoted, d.demoted, d.deferred
		last := d.last
		d.mu.Unlock()
		e.Counter("tiering_daemon_promotions_total", "", int64(promoted))
		e.Counter("tiering_daemon_demotions_total", "", int64(demoted))
		e.Counter("tiering_daemon_deferred_total", "", int64(deferred))
		e.Counter("tiering_daemon_epochs_total", "", int64(last.Epoch))
		e.Gauge("tiering_daemon_scanned_pages", "", float64(last.Pages))
		e.Gauge("tiering_daemon_last_budget_used", "", float64(last.BudgetUsed))
	})
}
