package tiering

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DaemonConfig tunes the policy daemon. Zero values take the defaults
// noted per field.
type DaemonConfig struct {
	// Interval between background epochs when the daemon runs via
	// Start. Default 10ms. Tests drive epochs manually with RunEpoch
	// and never wait on the clock.
	Interval time.Duration
	// PromoteWatermark is the decayed-heat level at or above which a
	// page is a promotion candidate. Default 8.
	PromoteWatermark float64
	// DemoteWatermark is the decayed-heat level at or below which a
	// page is a demotion candidate. Must be below PromoteWatermark —
	// the gap is the hysteresis band where pages stay put, so a page
	// oscillating around a single threshold cannot ping-pong between
	// tiers. Default 1.
	DemoteWatermark float64
	// BudgetPages caps pages moved per epoch (a plain migration costs
	// 1, a swap 2), bounding how much migration bandwidth the daemon
	// steals from foreground traffic. Default 8.
	BudgetPages int
	// MinResidency is how many full epochs a page must sit in its tier
	// before it may move again — the second anti-ping-pong guard, and
	// the window in which a freshly moved page re-earns its heat.
	// Default 1.
	MinResidency uint64
	// Decay is the per-epoch multiplier on accumulated heat before the
	// epoch's fresh counts are added (exponentially weighted moving
	// sum). Default 0.5: a page's influence halves every epoch it
	// stays idle.
	Decay float64
}

func (c DaemonConfig) withDefaults() DaemonConfig {
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.PromoteWatermark == 0 {
		c.PromoteWatermark = 8
	}
	if c.DemoteWatermark == 0 {
		c.DemoteWatermark = 1
	}
	if c.BudgetPages == 0 {
		c.BudgetPages = 8
	}
	if c.MinResidency == 0 {
		c.MinResidency = 1
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	return c
}

// EpochStats reports one policy epoch.
type EpochStats struct {
	// Epoch is the 1-based epoch number.
	Epoch uint64
	// Promoted and Demoted count pages moved up / down this epoch
	// (each side of a swap counts once).
	Promoted int
	Demoted  int
	// BudgetUsed is the migration budget consumed (migration 1,
	// swap 2); never exceeds DaemonConfig.BudgetPages.
	BudgetUsed int
	// Deferred counts eligible moves skipped because the budget ran
	// out — they retry next epoch.
	Deferred int
	// Pages is the number of live pages scanned.
	Pages int
	// Duration is the epoch's wall time (scan + migrations).
	Duration time.Duration
}

// Daemon is the memtier-style policy engine: it watches device-side
// hotness windows (memdev heat counters, advanced once per epoch) plus
// the manager's own access counts, maintains a decayed heat score per
// page, and promotes hot pages up / demotes cold pages down one tier
// level per epoch within a migration budget. Promotion and demotion
// use distinct watermarks (hysteresis) and a minimum residency, so a
// page hovering near a threshold settles instead of ping-ponging.
//
// The daemon is the only migrator while it runs; foreground Alloc,
// Free, Read and Write proceed concurrently under the manager's
// per-page locking.
type Daemon struct {
	m   *Manager
	cfg DaemonConfig

	// epoch state, guarded by mu (RunEpoch is also called directly by
	// tests and fabricctl, potentially next to a started daemon).
	mu     sync.Mutex
	epochs uint64
	last   EpochStats

	// cumulative counters for telemetry, guarded by mu.
	promoted, demoted, deferred uint64

	// epochDur feeds the tiering_daemon_epoch_seconds histogram when
	// metrics are registered; nil otherwise.
	epochDur func(time.Duration)

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewDaemon builds a policy daemon over a manager, enabling device-side
// heat windows on every tier (page-granular). The daemon does not run
// until Start.
func NewDaemon(m *Manager, cfg DaemonConfig) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.DemoteWatermark >= cfg.PromoteWatermark {
		return nil, fmt.Errorf("tiering: demote watermark %.3g must be below promote watermark %.3g (hysteresis band)",
			cfg.DemoteWatermark, cfg.PromoteWatermark)
	}
	if cfg.BudgetPages < 0 {
		return nil, fmt.Errorf("tiering: negative migration budget")
	}
	if err := m.EnableDeviceHeat(); err != nil {
		return nil, err
	}
	return &Daemon{
		m:    m,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Config returns the daemon's effective (defaulted) configuration.
func (d *Daemon) Config() DaemonConfig { return d.cfg }

// Start launches the background epoch loop. Safe to call once; use
// Close to stop it.
func (d *Daemon) Start() {
	d.startOnce.Do(func() {
		go func() {
			defer close(d.done)
			tick := time.NewTicker(d.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-tick.C:
					d.RunEpoch()
				}
			}
		}()
	})
}

// Close stops the epoch loop and waits for the in-flight epoch (if
// any) to finish. Pages stay where the last epoch left them. Safe to
// call multiple times, and before Start.
func (d *Daemon) Close() {
	d.closeOnce.Do(func() { close(d.stop) })
	d.startOnce.Do(func() { close(d.done) }) // never started: nothing to wait for
	<-d.done
}

// LastEpoch returns the most recent epoch's stats.
func (d *Daemon) LastEpoch() EpochStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// candidate is one page under policy consideration this epoch.
type candidate struct {
	id   PageID
	st   *pageState
	tier int
	heat float64
}

// RunEpoch executes one policy epoch synchronously: advance the device
// heat windows, refresh every page's decayed heat score, then demote
// cold pages and promote hot ones — one tier level each — within the
// migration budget. Demotions run first so they open fast-tier slots
// for this epoch's promotions; a promotion into a still-full tier
// swaps with a demotion-eligible occupant (budget 2) or waits.
func (d *Daemon) RunEpoch() EpochStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := time.Now()
	d.epochs++
	stats := EpochStats{Epoch: d.epochs}

	// Retire the device-side windows: EpochCount now reports last
	// window's per-slot access counts.
	for _, t := range d.m.tiers {
		if t.heat != nil {
			t.heat.AdvanceEpoch()
		}
	}

	// Refresh heat scores. Device counters see every access path that
	// reaches the media — including the manager's own Read/Write, so
	// the two observations overlap: take the max, not the sum. A page
	// that moved last epoch (residency 0) uses only the manager count:
	// the migration itself touched its old and new slots at device
	// level, and those copies must not read as application heat.
	d.m.mu.RLock()
	all := d.m.snapshotLocked()
	d.m.mu.RUnlock()
	cands := make([]candidate, 0, len(all))
	for _, e := range all {
		fresh := e.st.accesses.Swap(0)
		e.st.mu.RLock()
		tier, off, freed := e.st.tier, e.st.off, e.st.freed
		e.st.mu.RUnlock()
		if freed {
			continue
		}
		count := float64(fresh)
		if t := d.m.tiers[tier]; t.heat != nil && e.st.residency > 0 {
			if dev := float64(t.heat.EpochCount(off)); dev > count {
				count = dev
			}
		}
		e.st.heat = e.st.heat*d.cfg.Decay + count
		e.st.residency++
		cands = append(cands, candidate{e.id, e.st, tier, e.st.heat})
	}
	stats.Pages = len(cands)

	// Partition: hot pages below the top tier promote, cold pages
	// above the bottom tier demote; the band between the watermarks —
	// and anything inside its minimum residency — stays put.
	movable := func(c candidate) bool { return c.st.residency > d.cfg.MinResidency }
	var promos, demos []candidate
	for _, c := range cands {
		switch {
		case !movable(c):
		case c.tier > 0 && c.heat >= d.cfg.PromoteWatermark:
			promos = append(promos, c)
		case c.tier < len(d.m.tiers)-1 && c.heat <= d.cfg.DemoteWatermark:
			demos = append(demos, c)
		}
	}
	// Hottest promotions and coldest demotions first; ties by id for
	// determinism.
	sort.Slice(promos, func(a, b int) bool {
		if promos[a].heat != promos[b].heat {
			return promos[a].heat > promos[b].heat
		}
		return promos[a].id < promos[b].id
	})
	sort.Slice(demos, func(a, b int) bool {
		if demos[a].heat != demos[b].heat {
			return demos[a].heat < demos[b].heat
		}
		return demos[a].id < demos[b].id
	})

	budget := d.cfg.BudgetPages
	moved := func(c candidate) { c.st.residency = 0 }

	// Demotions first: they are what frees fast-tier room.
	demoted := make(map[PageID]bool)
	for _, c := range demos {
		if budget < 1 {
			stats.Deferred++
			continue
		}
		if err := d.m.MoveTo(c.id, c.tier+1); err != nil {
			continue // tier full or page freed mid-epoch: retry next time
		}
		budget--
		stats.Demoted++
		demoted[c.id] = true
		moved(c)
	}
	// Promotions, hottest first, one level up.
	for _, c := range promos {
		if budget < 1 {
			stats.Deferred++
			continue
		}
		err := d.m.MoveTo(c.id, c.tier-1)
		if err == nil {
			budget--
			stats.Promoted++
			moved(c)
			continue
		}
		if err != ErrTierFull {
			continue // freed mid-epoch
		}
		// Target tier full: swap with its coldest demotion-eligible
		// occupant, if the budget has room for both halves.
		if budget < 2 {
			stats.Deferred++
			continue
		}
		victim, ok := d.coldestEligible(cands, c.tier-1, demoted)
		if !ok {
			stats.Deferred++
			continue
		}
		if err := d.m.Swap(c.id, victim.id); err != nil {
			continue
		}
		budget -= 2
		stats.Promoted++
		stats.Demoted++
		moved(c)
		moved(victim)
	}
	stats.BudgetUsed = d.cfg.BudgetPages - budget
	stats.Duration = time.Since(start)

	d.last = stats
	d.promoted += uint64(stats.Promoted)
	d.demoted += uint64(stats.Demoted)
	d.deferred += uint64(stats.Deferred)
	if d.epochDur != nil {
		d.epochDur(stats.Duration)
	}
	return stats
}

// coldestEligible picks the coldest movable page currently on the given
// tier whose heat sits at or below the demote watermark — a swap victim
// that would have been demoted anyway had a slot been free below.
func (d *Daemon) coldestEligible(cands []candidate, tier int, taken map[PageID]bool) (candidate, bool) {
	best := candidate{}
	found := false
	for _, c := range cands {
		if taken[c.id] || c.st.residency <= d.cfg.MinResidency {
			continue
		}
		// Placement may have changed this epoch; re-read it.
		c.st.mu.RLock()
		cur, freed := c.st.tier, c.st.freed
		c.st.mu.RUnlock()
		if freed || cur != tier || c.heat > d.cfg.DemoteWatermark {
			continue
		}
		if !found || c.heat < best.heat || (c.heat == best.heat && c.id < best.id) {
			best, found = c, true
		}
	}
	return best, found
}
