package tiering

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cxlpmem/internal/telemetry"
)

func testDaemon(t *testing.T, mgr *Manager, cfg DaemonConfig) *Daemon {
	t.Helper()
	d, err := NewDaemon(mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestDaemonConfigValidation(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	if _, err := NewDaemon(mgr, DaemonConfig{PromoteWatermark: 2, DemoteWatermark: 5}); err == nil {
		t.Error("inverted watermarks accepted")
	}
	if _, err := NewDaemon(mgr, DaemonConfig{BudgetPages: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	d := testDaemon(t, mgr, DaemonConfig{})
	cfg := d.Config()
	if cfg.PromoteWatermark <= cfg.DemoteWatermark {
		t.Errorf("defaulted config lost the hysteresis band: %+v", cfg)
	}
}

// TestDaemonColdStartEarnsWayUp: a page allocated cold (far tier) and
// then accessed heavily climbs exactly one tier level per eligible
// epoch — far, mid, fast — never skipping a level, and settles on the
// fast tier.
func TestDaemonColdStartEarnsWayUp(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 2)
	d := testDaemon(t, mgr, DaemonConfig{})
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := mgr.TierOf(id); tier != 2 {
		t.Fatalf("cold-start page on tier %d, want 2", tier)
	}
	buf := make([]byte, 64)
	var trajectory []int
	for epoch := 0; epoch < 8; epoch++ {
		for i := 0; i < 20; i++ {
			if err := mgr.Read(id, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		d.RunEpoch()
		tier, err := mgr.TierOf(id)
		if err != nil {
			t.Fatal(err)
		}
		trajectory = append(trajectory, tier)
	}
	t.Logf("tier trajectory: %v", trajectory)
	for i := 1; i < len(trajectory); i++ {
		if trajectory[i] > trajectory[i-1] {
			t.Fatalf("hot page demoted mid-climb: %v", trajectory)
		}
		if trajectory[i-1]-trajectory[i] > 1 {
			t.Fatalf("page skipped a tier level: %v", trajectory)
		}
	}
	if trajectory[len(trajectory)-1] != 0 {
		t.Errorf("hot page never earned the fast tier: %v", trajectory)
	}
	sawMid := false
	for _, tier := range trajectory {
		if tier == 1 {
			sawMid = true
		}
	}
	if !sawMid {
		t.Errorf("page never passed through the mid tier: %v", trajectory)
	}
}

// TestDaemonHysteresisNoPingPong: a page whose heat settles inside the
// band between the demote and promote watermarks stays put — the
// two-watermark hysteresis is what prevents a page oscillating around
// a single threshold from ping-ponging between tiers.
func TestDaemonHysteresisNoPingPong(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	d := testDaemon(t, mgr, DaemonConfig{PromoteWatermark: 8, DemoteWatermark: 1, Decay: 0.5})
	far, _ := mgr.Alloc()  // tier 2: never accessed, already at the bottom
	mid, _ := mgr.Alloc()  // tier 1: the in-band page under test
	fast, _ := mgr.Alloc() // tier 0: kept hot so it never demotes
	buf := make([]byte, 64)
	for epoch := 0; epoch < 10; epoch++ {
		// Steady 3 accesses/epoch: decayed heat converges to 6 —
		// above demote (1), below promote (8).
		for i := 0; i < 3; i++ {
			if err := mgr.Read(mid, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 40; i++ {
			if err := mgr.Read(fast, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		d.RunEpoch()
		if tier, _ := mgr.TierOf(mid); tier != 1 {
			t.Fatalf("epoch %d: in-band page moved to tier %d", epoch, tier)
		}
	}
	if tier, _ := mgr.TierOf(far); tier != 2 {
		t.Errorf("idle far page moved to tier %d", tier)
	}
	st := mgr.Stats()
	if st.Promotions != 0 || st.Demotions != 0 {
		t.Errorf("in-band workload caused %d promotions, %d demotions (ping-pong)", st.Promotions, st.Demotions)
	}
}

// TestDaemonBudgetCap: the per-epoch migration budget bounds how many
// pages move, with the overflow deferred to later epochs.
func TestDaemonBudgetCap(t *testing.T) {
	mgr, _ := hierarchy(t, 8, 8, 8)
	mgr.SetAllocPolicy(AllocFastFirst)
	d := testDaemon(t, mgr, DaemonConfig{BudgetPages: 3})
	for i := 0; i < 8; i++ { // 8 idle pages on the fast tier
		if _, err := mgr.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	totalDemoted := 0
	firstMoving := 0
	for epoch := 1; epoch <= 8; epoch++ {
		st := d.RunEpoch()
		if st.BudgetUsed > 3 {
			t.Fatalf("epoch %d used budget %d, cap 3", epoch, st.BudgetUsed)
		}
		if st.Demoted > 0 && firstMoving == 0 {
			firstMoving = epoch
			if st.Demoted != 3 {
				t.Errorf("first moving epoch demoted %d, want the full budget 3", st.Demoted)
			}
			if st.Deferred == 0 {
				t.Error("budget overflow not reported as deferred")
			}
		}
		totalDemoted += st.Demoted
	}
	if totalDemoted < 8 {
		t.Errorf("only %d demotions across 8 epochs; deferral never caught up", totalDemoted)
	}
	if mgr.Stats().PagesPerTier[0] != 0 {
		t.Errorf("idle pages left on fast tier: %v", mgr.Stats().PagesPerTier)
	}
}

// TestDaemonCloseNoGoroutineLeak: Start spins up the epoch loop, Close
// stops it and waits; the goroutine count settles back. Close is
// idempotent and safe before Start.
func TestDaemonCloseNoGoroutineLeak(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 1)
	if _, err := mgr.Alloc(); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	d, err := NewDaemon(mgr, DaemonConfig{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	time.Sleep(10 * time.Millisecond) // let a few epochs run
	d.Close()
	d.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
	if d.LastEpoch().Epoch == 0 {
		t.Error("started daemon never ran an epoch")
	}
	// Close before Start never hangs.
	d2, err := NewDaemon(mgr, DaemonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d2.Close()
}

// TestDaemonZipfianConvergence is the acceptance test: on a zipfian
// workload whose hot set fits the fast tier, the daemon converges from
// cold start (every page far) to ≥90% of hot-set accesses served from
// the fast tier within a bounded number of epochs, and the converged
// placement's modelled average access latency beats static far
// placement.
func TestDaemonZipfianConvergence(t *testing.T) {
	const (
		nPages    = 16
		hotSet    = 4 // == fast-tier capacity
		samples   = 2000
		maxEpochs = 12
	)
	mgr, hybrid := hierarchy(t, hotSet, 8, nPages)
	d := testDaemon(t, mgr, DaemonConfig{})
	c0, err := hybrid.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < nPages; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if tier, _ := mgr.TierOf(id); tier != 2 {
			t.Fatalf("cold start: page %d on tier %d", id, tier)
		}
	}
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 2, nPages-1)
	buf := make([]byte, 64)
	applyEpoch := func() []int {
		counts := make([]int, nPages)
		for i := 0; i < samples; i++ {
			p := int(zipf.Uint64())
			counts[p]++
			if err := mgr.Read(ids[p], buf, int64((i%64)*64)); err != nil {
				t.Fatal(err)
			}
		}
		return counts
	}

	// Static far placement baseline.
	applyEpoch()
	static, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		t.Fatal(err)
	}

	converged := -1
	for epoch := 1; epoch <= maxEpochs; epoch++ {
		counts := applyEpoch()
		d.RunEpoch()
		// Fraction of hot-set accesses the fast tier would now serve.
		hot, fast := 0, 0
		for p := 0; p < hotSet; p++ {
			hot += counts[p]
			if tier, _ := mgr.TierOf(ids[p]); tier == 0 {
				fast += counts[p]
			}
		}
		if frac := float64(fast) / float64(hot); frac >= 0.9 {
			converged = epoch
			t.Logf("epoch %d: %.0f%% of hot-set accesses on fast tier", epoch, 100*frac)
			break
		}
	}
	if converged < 0 {
		t.Fatalf("daemon did not converge within %d epochs: placement %v", maxEpochs, mgr.Stats().PagesPerTier)
	}
	// Converged placement strictly beats static far placement.
	applyEpoch()
	tiered, err := mgr.AvgAccessLatency(hybrid, c0)
	if err != nil {
		t.Fatal(err)
	}
	if tiered >= static {
		t.Errorf("converged latency %v not better than static far %v", tiered, static)
	}
	t.Logf("avg access latency: static far %v -> daemon %v (converged epoch %d)", static, tiered, converged)
}

// TestDaemonConcurrentForeground: the daemon's background epochs run
// against live foreground Read/Write traffic (the -race half of the
// battery).
func TestDaemonConcurrentForeground(t *testing.T) {
	mgr, _ := hierarchy(t, 2, 2, 4)
	d, err := NewDaemon(mgr, DaemonConfig{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 8; i++ {
		id, err := mgr.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	d.Start()
	done := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			buf := make([]byte, 64)
			for i := 0; i < 3000; i++ {
				id := ids[(w*3+i)%len(ids)]
				var err error
				if i%2 == 0 {
					err = mgr.Write(id, buf, int64((i%16)*64))
				} else {
					err = mgr.Read(id, buf, int64((i%16)*64))
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 2; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	total := 0
	for _, n := range mgr.Stats().PagesPerTier {
		total += n
	}
	if total != len(ids) {
		t.Errorf("pages per tier %v sum to %d, want %d", mgr.Stats().PagesPerTier, total, len(ids))
	}
}

func TestDaemonTelemetry(t *testing.T) {
	mgr, _ := hierarchy(t, 1, 1, 2)
	d := testDaemon(t, mgr, DaemonConfig{})
	reg := telemetry.NewRegistry()
	mgr.RegisterMetrics(reg)
	d.RegisterMetrics(reg)
	id, err := mgr.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 20; i++ {
			if err := mgr.Read(id, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		d.RunEpoch()
	}
	found := map[string]bool{}
	for _, s := range reg.Gather() {
		found[s.Name] = true
		switch s.Name {
		case "tiering_daemon_epochs_total":
			if s.Value != 4 {
				t.Errorf("epochs_total = %v, want 4", s.Value)
			}
		case "tiering_daemon_promotions_total":
			if s.Value < 1 {
				t.Errorf("promotions_total = %v, want >= 1", s.Value)
			}
		case "tiering_daemon_epoch_ns":
			if s.Hist == nil || s.Hist.Count != 4 {
				t.Errorf("epoch latency histogram missing samples: %+v", s.Hist)
			}
		}
	}
	for _, name := range []string{
		"tiering_daemon_epochs_total", "tiering_daemon_promotions_total",
		"tiering_daemon_demotions_total", "tiering_daemon_deferred_total",
		"tiering_daemon_epoch_ns", "tiering_daemon_scanned_pages",
		"tiering_promotions_total", "tiering_tier_pages",
	} {
		if !found[name] {
			t.Errorf("metric %s not exposed", name)
		}
	}
}
