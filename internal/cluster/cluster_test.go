package cluster

import (
	"strings"
	"testing"

	"cxlpmem/internal/pmem"
	"cxlpmem/internal/units"
)

func testCluster(t *testing.T, hosts int) *Cluster {
	t.Helper()
	c, err := New(hosts, 64*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterAssembly(t *testing.T) {
	c := testCluster(t, 4)
	if len(c.Hosts) != 4 {
		t.Fatalf("hosts = %d", len(c.Hosts))
	}
	if c.TotalPooled() != 256*units.MiB {
		t.Errorf("pooled = %v", c.TotalPooled())
	}
	if c.MLD.Remaining() != 0 {
		t.Errorf("remaining = %v", c.MLD.Remaining())
	}
	// Every host has a trained port and a distinct partition.
	seen := map[uint64]bool{}
	for _, h := range c.Hosts {
		if h.Port.State().String() != "up" {
			t.Errorf("host %d link down", h.Index)
		}
		base, _ := h.LD.Partition()
		if seen[base] {
			t.Errorf("partition base %#x reused", base)
		}
		seen[base] = true
	}
	d := c.Describe()
	if !strings.Contains(d, "host3") || !strings.Contains(d, "appliance") {
		t.Errorf("describe:\n%s", d)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(0, units.MiB); err == nil {
		t.Error("0 hosts accepted")
	}
	if _, err := New(17, units.MiB); err == nil {
		t.Error("17 hosts accepted")
	}
	if _, err := New(2, 33); err == nil {
		t.Error("unaligned capacity accepted")
	}
}

func TestHostsAreIsolated(t *testing.T) {
	c := testCluster(t, 2)
	h0, h1 := c.Hosts[0], c.Hosts[1]
	payload := []byte("host0 private")
	if err := h0.Port.WriteAt(payload, int64(h0.Window.Base)); err != nil {
		t.Fatal(err)
	}
	probe := make([]byte, len(payload))
	if err := h1.Port.ReadAt(probe, int64(h1.Window.Base)); err != nil {
		t.Fatal(err)
	}
	if string(probe) == string(payload) {
		t.Error("host1 sees host0's partition")
	}
	back := make([]byte, len(payload))
	if err := h0.Port.ReadAt(back, int64(h0.Window.Base)); err != nil {
		t.Fatal(err)
	}
	if string(back) != string(payload) {
		t.Error("host0 lost its own data")
	}
}

func TestPersistentPoolOnPooledMemory(t *testing.T) {
	// The disaggregated use case end to end: a pmemobj pool on a
	// pooled partition survives the host's power loss (the appliance
	// is battery-backed once for everyone, §1.4).
	c := testCluster(t, 2)
	h := c.Hosts[1]
	region := &windowRegion{h: h}
	pool, err := pmem.Create(region, "pooled")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := pool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.SetUint64(oid, 0, 777); err != nil {
		t.Fatal(err)
	}
	pool.SimulateCrash()
	re, err := pmem.Open(region, "pooled")
	if err != nil {
		t.Fatal(err)
	}
	v, err := re.GetUint64(oid, 0)
	if err != nil || v != 777 {
		t.Errorf("recovered = %d, %v", v, err)
	}
}

// windowRegion adapts a host's pooled window to pmem.Region.
type windowRegion struct {
	h *Node
}

func (r *windowRegion) ReadAt(p []byte, off int64) error {
	return r.h.Port.ReadAt(p, int64(r.h.Window.Base)+off)
}
func (r *windowRegion) WriteAt(p []byte, off int64) error {
	return r.h.Port.WriteAt(p, int64(r.h.Window.Base)+off)
}
func (r *windowRegion) Size() int64      { return int64(r.h.Window.Size) }
func (r *windowRegion) Persistent() bool { return r.h.LD.Media().Persistent() }

func TestScalabilityShape(t *testing.T) {
	c := testCluster(t, 4)
	pts, err := c.Scalability(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Aggregate grows (or holds) with host count; per-host never grows.
	for i := 1; i < len(pts); i++ {
		if pts[i].Aggregate < pts[i-1].Aggregate-units.GBps(0.01) {
			t.Errorf("aggregate shrank at k=%d: %v -> %v", i+1, pts[i-1].Aggregate, pts[i].Aggregate)
		}
		if pts[i].PerHost > pts[i-1].PerHost+units.GBps(0.01) {
			t.Errorf("per-host grew at k=%d", i+1)
		}
	}
	// The appliance pipeline caps the aggregate.
	last := pts[len(pts)-1]
	if last.Aggregate.GBps() > ApplianceIPCapGBps*1.1 {
		t.Errorf("aggregate %.1f exceeds appliance cap", last.Aggregate.GBps())
	}
	// With 4 hosts the pipeline is contended: per-host well below solo.
	if last.PerHost >= pts[0].PerHost {
		t.Error("no contention visible at 4 hosts")
	}
}

func TestRunParallelMeasuredVsAnalytical(t *testing.T) {
	c := testCluster(t, 4)
	const perHost = 4 << 20 // 4 MiB each, enough bursts to be stable
	pt, err := c.RunParallel(4, perHost, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Hosts != 4 || len(pt.PerHost) != 4 {
		t.Fatalf("point shape: %+v", pt)
	}
	if pt.Elapsed <= 0 || pt.Aggregate <= 0 {
		t.Fatalf("no throughput measured: %+v", pt)
	}
	var sum units.Bandwidth
	for i, bw := range pt.PerHost {
		if bw <= 0 {
			t.Errorf("host %d achieved no throughput", i)
		}
		sum += bw
	}
	// The switch arbitrates round-robin and the partitions are
	// symmetric, so no host may starve: each host must achieve at
	// least a small fraction of the mean (loose bound — single-core CI
	// runners schedule goroutines unevenly).
	mean := sum / units.Bandwidth(len(pt.PerHost))
	for i, bw := range pt.PerHost {
		if bw < mean/20 {
			t.Errorf("host %d starved: %v vs mean %v", i, bw, mean)
		}
	}
	// The analytical model must be populated from the same cluster and
	// agree with Scalability.
	pts, err := c.Scalability(10)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Analytical != pts[3].Aggregate {
		t.Errorf("analytical aggregate %v, want %v", pt.Analytical, pts[3].Aggregate)
	}
	// Data integrity: every partition saw exactly the written bytes
	// (half the moved bytes are writes).
	for i := 0; i < 4; i++ {
		wrote := c.Hosts[i].LD.Media().Stats().BytesWrite.Load()
		if wrote != perHost/2 {
			t.Errorf("host %d media writes = %d, want %d", i, wrote, perHost/2)
		}
	}
}

func TestRunParallelValidation(t *testing.T) {
	c := testCluster(t, 2)
	if _, err := c.RunParallel(3, 1<<20, 10); err == nil {
		t.Error("host count beyond cluster accepted")
	}
	if _, err := c.RunParallel(1, 100, 10); err == nil {
		t.Error("non-burst-multiple byte count accepted")
	}
}

func TestRunParallelSweep(t *testing.T) {
	c := testCluster(t, 2)
	pts, err := c.RunParallelSweep(1<<20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Aggregate <= 0 || pt.Analytical <= 0 {
			t.Errorf("empty sweep point: %+v", pt)
		}
	}
}
