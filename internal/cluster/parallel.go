package cluster

import (
	"fmt"
	"sync"
	"time"

	"cxlpmem/internal/units"
)

// RunParallel complements the analytical Scalability model with a real
// concurrent execution: instead of computing how the appliance pipeline
// would be shared, it drives k hosts from k goroutines, each streaming
// CXL.mem bursts through its own trained root port, the shared switch
// and its MLD partition, and measures the throughput each host actually
// achieved. This is the paper's future-work scenario (§6) run on the
// simulator itself — many hosts genuinely hammering one pooled
// appliance at once — and it exists both as an experiment and as a
// stress test: the whole data path (port VCs, flit codec, switch
// routing, partition windows, sharded media store) runs under real
// goroutine concurrency, so the race detector sees the traffic the
// analytical model only predicts.

// ParallelPoint is one measured row of the parallel scale-out run.
type ParallelPoint struct {
	// Hosts driven concurrently.
	Hosts int
	// BytesPerHost moved by each host (half written, half read back).
	BytesPerHost units.Size
	// Elapsed wall-clock time for the slowest host.
	Elapsed time.Duration
	// PerHost is each host's achieved throughput (bytes moved over the
	// host's own elapsed time).
	PerHost []units.Bandwidth
	// Aggregate is total bytes over the wall-clock elapsed time.
	Aggregate units.Bandwidth
	// Analytical is the aggregate the analytical Scalability model
	// predicts for the same host count (modelled hardware GB/s — a
	// different unit than the simulator's wall-clock throughput, but
	// the shapes must agree: fairness across hosts and saturation with
	// k).
	Analytical units.Bandwidth
}

// burstBytes is the transfer unit of the parallel driver: one maximal
// CXL.mem burst (64 lines).
const burstBytes = 64 * 64

// RunParallel drives the first k hosts concurrently, each moving
// bytesPerHost bytes through the real switch/MLD path (alternating
// maximal write and read bursts over the host's partition window), and
// reports the achieved throughput next to the analytical model's
// prediction for the same k (computed with threadsPerHost streaming
// threads). Every byte flows through the full port data path: flit
// encode/decode, CRC, VC tagging, the switch binding and the partition
// window check.
func (c *Cluster) RunParallel(k int, bytesPerHost units.Size, threadsPerHost int) (*ParallelPoint, error) {
	if k < 1 || k > len(c.Hosts) {
		return nil, fmt.Errorf("cluster: parallel host count %d outside 1..%d", k, len(c.Hosts))
	}
	if bytesPerHost < burstBytes || bytesPerHost%burstBytes != 0 {
		return nil, fmt.Errorf("cluster: bytes per host %d not a positive multiple of %d", bytesPerHost, burstBytes)
	}
	pts, err := c.scalabilityCached(threadsPerHost)
	if err != nil {
		return nil, err
	}

	pt := &ParallelPoint{
		Hosts:        k,
		BytesPerHost: bytesPerHost,
		PerHost:      make([]units.Bandwidth, k),
		Analytical:   pts[k-1].Aggregate,
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < k; i++ {
		h := c.Hosts[i]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, burstBytes)
			for j := range buf {
				buf[j] = byte(i + j)
			}
			// Cycle through the first MiB of the partition window (or
			// the whole window when smaller) so the run measures the
			// wire, not first-touch page materialisation.
			span := h.Window.Size &^ (burstBytes - 1)
			if span > 1<<20 {
				span = 1 << 20
			}
			t0 := time.Now()
			var moved units.Size
			for off := uint64(0); moved < bytesPerHost; off = (off + burstBytes) % span {
				addr := h.Window.Base + off
				var werr error
				if moved%(2*burstBytes) == 0 {
					werr = h.IO.WriteBurst(addr, buf)
				} else {
					werr = h.IO.ReadBurst(addr, buf)
				}
				if werr != nil {
					errs[i] = werr
					return
				}
				moved += burstBytes
			}
			pt.PerHost[i] = units.RateOf(bytesPerHost, time.Since(t0))
		}(i)
	}
	wg.Wait()
	pt.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	pt.Aggregate = units.RateOf(units.Size(k)*bytesPerHost, pt.Elapsed)
	return pt, nil
}

// scalabilityCached memoises the analytical model: RunParallel (and
// the benchmarks timing it) needs one row of the table per call, and
// the fabric is immutable after New, so the sweep is computed once per
// thread count.
func (c *Cluster) scalabilityCached(threadsPerHost int) ([]ScalePoint, error) {
	c.scaleMu.Lock()
	defer c.scaleMu.Unlock()
	if pts, ok := c.scaleCache[threadsPerHost]; ok {
		return pts, nil
	}
	pts, err := c.Scalability(threadsPerHost)
	if err != nil {
		return nil, err
	}
	if c.scaleCache == nil {
		c.scaleCache = make(map[int][]ScalePoint)
	}
	c.scaleCache[threadsPerHost] = pts
	return pts, nil
}

// RunParallelSweep measures ParallelPoints for every host count
// 1..len(Hosts), the measured counterpart of Scalability's table.
func (c *Cluster) RunParallelSweep(bytesPerHost units.Size, threadsPerHost int) ([]*ParallelPoint, error) {
	out := make([]*ParallelPoint, 0, len(c.Hosts))
	for k := 1; k <= len(c.Hosts); k++ {
		pt, err := c.RunParallel(k, bytesPerHost, threadsPerHost)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
