package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/units"
)

func injectTenantPoison(t *testing.T, e *Elastic, host int, lines int) uint64 {
	t.Helper()
	exts, err := e.Fabric.Extents(e.Hosts[host].Tenant.Name())
	if err != nil || len(exts) == 0 {
		t.Fatalf("host %d extents: %v", host, err)
	}
	mbox := e.Hosts[host].Tenant.Mailbox()
	for i := 0; i < lines; i++ {
		var dpa [8]byte
		binary.LittleEndian.PutUint64(dpa[:], exts[0].DPA+uint64(i)*4096)
		if _, status := mbox.Execute(cxl.OpInjectPoison, dpa[:]); status != cxl.MboxSuccess {
			t.Fatalf("inject poison %d: %v", i, status)
		}
	}
	return exts[0].DPA
}

// TestEnableRASPatrolDegradesPoisonedTenant wires the plane over a live
// elastic pool and proves the division of labour the registration
// encodes: tenant windows are scrubbed through their root ports, latent
// poison patrol finds counts as correctable on that tenant alone, and
// the threshold policy degrades exactly the poisoned device.
func TestEnableRASPatrolDegradesPoisonedTenant(t *testing.T) {
	e := testElastic(t, 2)
	p, err := e.EnableRAS(ras.Thresholds{MaxCorrectable: 2, MaxUncorrectable: 1}, ras.ScrubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	devs := p.Devices()
	if len(devs) != 3 { // pool:appliance + 2 tenants
		t.Fatalf("registered devices = %v, want 3", devs)
	}
	for _, name := range devs {
		if _, err := p.ScrubPass(name); err != nil {
			t.Fatalf("baseline scrub %s: %v", name, err)
		}
	}
	if bad := p.EvaluateAll(); len(bad) != 0 {
		t.Fatalf("healthy pool evaluated to %v", bad)
	}

	injectTenantPoison(t, e, 0, 2)
	if _, err := p.ScrubPass("tenant:host0"); err != nil {
		t.Fatal(err)
	}
	bad := p.EvaluateAll()
	if len(bad) != 1 || bad[0] != "tenant:host0" {
		t.Fatalf("degraded set = %v, want [tenant:host0]", bad)
	}
	h := p.Health("tenant:host0")
	if h.State != ras.Degraded || h.PoisonedLines != 2 || h.Counters.Correctable != 2 {
		t.Errorf("host0 health = %+v, want degraded with 2 correctable poisoned lines", h)
	}
	if st := p.Health("tenant:host1").State; st != ras.Healthy {
		t.Errorf("unpoisoned sibling state = %v", st)
	}
	if st := p.Health("pool:appliance").State; st != ras.Healthy {
		t.Errorf("appliance state = %v", st)
	}

	// Unregister drops the device from patrol and the listing.
	p.Unregister("tenant:host1")
	if devs := p.Devices(); len(devs) != 2 {
		t.Errorf("devices after unregister = %v", devs)
	}
}

// TestEvacuatePoolWithPlane drains the primary pool onto a hot-added
// spare while the plane tracks it through Evacuating to Offline, and
// the tenant's bytes survive the move through its own port.
func TestEvacuatePoolWithPlane(t *testing.T) {
	e := testElastic(t, 2)
	p, err := e.EnableRAS(ras.DefaultThresholds, ras.ScrubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	primary := e.MLD.Name()

	// Without spare capacity the drain must fail cleanly and the plane
	// must roll the pool back to Healthy.
	if _, err := e.EvacuatePool(p, primary); err == nil {
		t.Fatal("evacuation without a spare pool succeeded")
	}
	if st := p.Health("pool:" + primary).State; st != ras.Healthy {
		t.Errorf("pool state after aborted evacuation = %v", st)
	}

	mld, err := e.AddSparePool("spare", 2*e.TotalPooled())
	if err != nil {
		t.Fatal(err)
	}
	if mld == nil || len(e.Fabric.Pools()) != 2 {
		t.Fatalf("pools after AddSparePool = %v", e.Fabric.Pools())
	}

	// Seed a tenant extent with a pattern that must survive the move.
	h := e.Hosts[0]
	dpa := injectTenantPoison(t, e, 0, 0) // just resolves the first extent's DPA
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte(i*7 + 3)
	}
	if err := h.Port.WriteBurst(h.Window.Base+dpa, in); err != nil {
		t.Fatal(err)
	}

	moved, err := e.EvacuatePool(p, primary)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("evacuation moved no extents")
	}
	if st := p.Health("pool:" + primary).State; st != ras.Offline {
		t.Errorf("pool state after evacuation = %v, want offline", st)
	}
	if got := e.DegradedPools(p); len(got) != 1 || got[0] != primary {
		t.Errorf("DegradedPools = %v, want [%s]", got, primary)
	}

	out := make([]byte, len(in))
	if err := h.Port.ReadBurst(h.Window.Base+dpa, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("tenant data corrupted by pool evacuation")
	}

	// The drained pool's bytes are free again on the spare side: a
	// fresh grant still works.
	if _, err := e.Grow(1, units.MiB); err != nil {
		t.Errorf("grow after evacuation: %v", err)
	}
}
