package cluster

import (
	"fmt"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fabric"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// Per-host memory-type requests over the elastic pool: a host can ask
// that its capacity come only from certain media technologies
// ("dram,cxl" for latency-sensitive tenants, "cxl,pmem" for bulk
// tiers), the memtier-style container annotation mapped onto the
// fabric manager's grant machinery. The appliance's primary pool is
// DRAM; AddPMemPool provisions the persistent cold pool those masks
// steer bulk tenants onto.

// SetMemTypes installs a memory-type request for a host, parsed from a
// spec like "dram,cxl" or "cxl,pmem". The empty spec clears the
// restriction. Applies to future Grow grants (and evacuations); bytes
// the host already holds stay where they are.
func (e *Elastic) SetMemTypes(host int, spec string) error {
	if host < 0 || host >= len(e.Hosts) {
		return fmt.Errorf("cluster: no host %d", host)
	}
	mask, err := fabric.ParseMemTypes(spec)
	if err != nil {
		return err
	}
	return e.Fabric.SetMemTypes(e.Hosts[host].Tenant.Name(), mask)
}

// MemTypes reports a host's current memory-type request.
func (e *Elastic) MemTypes(host int) (string, error) {
	if host < 0 || host >= len(e.Hosts) {
		return "", fmt.Errorf("cluster: no host %d", host)
	}
	return e.Hosts[host].Tenant.MemTypes().String(), nil
}

// AddPMemPool provisions a DCPMM-backed appliance device of the given
// capacity and registers it with the fabric — the persistent cold pool
// "cxl,pmem"-masked hosts draw bulk capacity from. Returns the new MLD.
func (e *Elastic) AddPMemPool(name string, size units.Size) (*cxl.MLD, error) {
	media, err := memdev.NewDCPMM(memdev.DCPMMConfig{
		Name:     name + "-dcpmm",
		Modules:  1,
		Capacity: size,
	})
	if err != nil {
		return nil, err
	}
	mld, err := cxl.NewMLD(name, media)
	if err != nil {
		return nil, err
	}
	if err := e.Fabric.AddPool(mld); err != nil {
		return nil, err
	}
	return mld, nil
}
