package cluster

import (
	"testing"

	"cxlpmem/internal/units"
)

// TestElasticPerHostMemTypes: host 0 requests "dram,cxl" and keeps
// landing on the DRAM appliance pool; host 1 requests "cxl,pmem" and
// its growth lands on the DCPMM pool even while DRAM capacity remains.
func TestElasticPerHostMemTypes(t *testing.T) {
	e := testElastic(t, 2)
	if _, err := e.AddPMemPool("cold", 16*units.MiB); err != nil {
		t.Fatal(err)
	}
	if err := e.SetMemTypes(0, "dram,cxl"); err != nil {
		t.Fatal(err)
	}
	if err := e.SetMemTypes(1, "cxl,pmem"); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.MemTypes(1); got != "cxl,pmem" {
		t.Fatalf("host 1 mask = %q", got)
	}

	fastExts, err := e.Grow(0, units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range fastExts {
		if x.Pool != "appliance" {
			t.Errorf("dram,cxl host grew onto pool %s", x.Pool)
		}
	}
	coldExts, err := e.Grow(1, units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range coldExts {
		if x.Pool != "cold" {
			t.Errorf("cxl,pmem host grew onto pool %s, want the pmem pool", x.Pool)
		}
	}
	// The pmem-routed capacity is live through the host's port.
	h := e.Hosts[1]
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xC5
	}
	if err := h.Port.WriteBurst(h.Window.Base+coldExts[0].DPA, buf); err != nil {
		t.Fatalf("write to pmem-backed extent: %v", err)
	}
	got := make([]byte, 4096)
	if err := h.Port.ReadBurst(h.Window.Base+coldExts[0].DPA, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 0xC5 {
			t.Fatalf("pmem-backed extent readback mismatch at %d", i)
		}
	}

	if err := e.SetMemTypes(7, "dram"); err == nil {
		t.Error("mask on unknown host accepted")
	}
	if err := e.SetMemTypes(0, "floppy"); err == nil {
		t.Error("bogus memory type accepted")
	}
}
