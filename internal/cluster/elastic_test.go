package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cxlpmem/internal/chaos"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fabric"
	"cxlpmem/internal/units"
)

func testElastic(t *testing.T, hosts int) *Elastic {
	t.Helper()
	e, err := NewElastic(ElasticConfig{
		Hosts:   hosts,
		Pool:    16 * units.MiB,
		Quota:   8 * units.MiB,
		Initial: 2 * units.MiB,
		Granule: 256 * units.KiB,
		// Far above what the simulator moves: shares never bind unless
		// a test lowers them via the throttle.
		PipelineGBps: ApplianceIPCapGBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestElasticGrowShrink(t *testing.T) {
	e := testElastic(t, 2)
	if got := e.Capacity(0); got != 2*units.MiB {
		t.Fatalf("initial capacity = %v", got)
	}
	free := e.Fabric.Remaining()

	exts, err := e.Grow(0, units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) == 0 || e.Capacity(0) != 3*units.MiB {
		t.Fatalf("capacity after grow = %v", e.Capacity(0))
	}
	if e.Fabric.Remaining() != free-units.MiB {
		t.Errorf("pool remaining = %v", e.Fabric.Remaining())
	}
	// The grown extent is immediately usable through the port.
	h := e.Hosts[0]
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xE1
	}
	if err := h.Port.WriteBurst(h.Window.Base+exts[0].DPA, buf); err != nil {
		t.Fatalf("write to grown extent: %v", err)
	}

	released, err := e.Shrink(0, units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if released < units.MiB {
		t.Errorf("released %v, want ≥ 1 MiB", released)
	}
	if got := e.Capacity(0); got != 3*units.MiB-released {
		t.Errorf("capacity after shrink = %v, want %v", got, 3*units.MiB-released)
	}
	// Shrinking below zero is refused.
	if _, err := e.Shrink(0, 64*units.MiB); err == nil {
		t.Error("impossible shrink accepted")
	}
	// Growing past the quota is refused.
	if _, err := e.Grow(0, 32*units.MiB); err == nil {
		t.Error("grow past quota accepted")
	}
}

func TestElasticRebalance(t *testing.T) {
	e := testElastic(t, 4) // 4 hosts × 2 MiB initial, 16 MiB pool
	// Skew the pool: host0 gets 5 MiB, host1 1 MiB, others keep 2 MiB.
	targets := []units.Size{5 * units.MiB, units.MiB, 2 * units.MiB, 2 * units.MiB}
	if err := e.Rebalance(targets); err != nil {
		t.Fatal(err)
	}
	for i, want := range targets {
		if got := e.Capacity(i); got != want {
			t.Errorf("host%d capacity = %v, want %v", i, got, want)
		}
	}
	// Rebalance back to even; every byte must be accounted.
	even := []units.Size{4 * units.MiB, 4 * units.MiB, 4 * units.MiB, 4 * units.MiB}
	if err := e.Rebalance(even); err != nil {
		t.Fatal(err)
	}
	var total units.Size
	for i := range e.Hosts {
		total += e.Capacity(i)
	}
	if total != 16*units.MiB {
		t.Errorf("total active = %v, want the whole pool", total)
	}
	if e.Fabric.Remaining() != 0 {
		t.Errorf("pool remaining = %v, want 0", e.Fabric.Remaining())
	}
	// And the rebalanced capacity still carries traffic on every host.
	var wg sync.WaitGroup
	errs := make([]error, len(e.Hosts))
	for i := range e.Hosts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Drive(i, 256*units.KiB)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("host%d drive after rebalance: %v", i, err)
		}
	}
}

// TestElasticQoSShares drives two hosts concurrently with strongly
// skewed shares of a deliberately tiny pipeline budget and checks the
// throttle actually bent their achieved bandwidths: the favoured host
// must come out measurably ahead, and neither may exceed its
// allowance by more than scheduling noise.
func TestElasticQoSShares(t *testing.T) {
	e, err := NewElastic(ElasticConfig{
		Hosts:   2,
		Pool:    8 * units.MiB,
		Quota:   4 * units.MiB,
		Initial: 2 * units.MiB,
		Granule: 256 * units.KiB,
		// 4 MB/s total: far below what the simulator moves even under
		// the race detector, so pacing—not CPU—limits both hosts.
		PipelineGBps: 0.004,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Throttle.SetShare("host0", 0.75); err != nil {
		t.Fatal(err)
	}
	if err := e.Throttle.SetShare("host1", 0.25); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	rates := make([]units.Bandwidth, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rates[i], errs[i] = e.Drive(i, 512*units.KiB)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host%d: %v", i, err)
		}
	}
	// 3:1 shares should separate clearly; demand half the ideal ratio
	// to absorb scheduler noise.
	if rates[0] < rates[1]*3/2 {
		t.Errorf("favoured host not ahead: host0 %v vs host1 %v", rates[0], rates[1])
	}
	// Neither exceeds its allowance by more than 50% (one burst of
	// slack plus scheduler noise on a loaded CI box).
	for i, share := range []float64{0.75, 0.25} {
		allowed := 0.004e9 * share
		if got := rates[i].GBps() * 1e9; got > allowed*1.5 {
			t.Errorf("host%d achieved %.1f MB/s, allowance %.1f MB/s", i, got/1e6, allowed/1e6)
		}
	}
}

// TestElasticForcedReclaimEndToEnd exercises the elastic stack's
// unresponsive-tenant story: reclaim host1, its traffic poisons, its
// capacity lands on host0 after a rebalance.
func TestElasticForcedReclaimEndToEnd(t *testing.T) {
	e := testElastic(t, 2)
	h1 := e.Hosts[1]
	exts, err := e.Fabric.Extents(h1.Tenant.Name())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fabric.ForceReclaim(h1.Tenant.Name()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := h1.Port.ReadBurst(h1.Window.Base+exts[0].DPA, buf); err == nil {
		t.Error("read of reclaimed extent succeeded")
	}
	if _, err := e.Drive(1, 256*units.KiB); err == nil {
		t.Error("drive over reclaimed capacity succeeded")
	}
	// The freed bytes can move to host0 at once.
	grown, err := e.Grow(0, 2*units.MiB)
	if err != nil {
		t.Fatalf("grow after reclaim: %v", err)
	}
	if len(grown) == 0 || e.Capacity(0) != 4*units.MiB {
		t.Errorf("host0 capacity = %v after absorbing reclaim", e.Capacity(0))
	}
	// A Grow on the reclaimed host must answer only its own offers —
	// the queued forced-reclaim events survive for the agent below.
	if _, err := e.Grow(1, units.MiB); err != nil {
		t.Fatalf("grow with reclaim events queued: %v", err)
	}
	// host1 acknowledges and recovers.
	var acks []fabric.ExtentInfo
	for _, ev := range h1.Tenant.Events() {
		if ev.Type == fabric.EventForcedReclaim {
			acks = append(acks, ev.Extent)
		}
	}
	if len(acks) == 0 {
		t.Fatal("forced-reclaim events were discarded by Grow")
	}
	for _, a := range acks {
		if _, status := h1.Tenant.Mailbox().Execute(cxl.OpReleaseDCD, cxl.EncodeDCDExtent(a.DCD())); status != cxl.MboxSuccess {
			t.Fatalf("ack failed: %v", status)
		}
	}
	if _, err := e.Grow(1, units.MiB); err != nil {
		t.Fatalf("grow after acknowledged reclaim: %v", err)
	}
	if _, err := e.Drive(1, 256*units.KiB); err != nil {
		t.Errorf("drive after recovery: %v", err)
	}
}

// TestElasticCommandDeadline: an unresponsive tenant mailbox (chaos
// stall) cannot hang Grow past the configured command deadline — the
// operation fails with the timeout status and the device's RAS counter
// records the stuck command.
func TestElasticCommandDeadline(t *testing.T) {
	e := testElastic(t, 1)
	h := e.Hosts[0]
	eng, err := chaos.NewEngine(chaos.Plan{
		Seed: 11,
		Rules: []chaos.Rule{{
			Site: chaos.SiteFabric, Action: chaos.ActStall,
			Trigger: chaos.Trigger{Every: 1}, Delay: 500 * time.Millisecond,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachMailbox(h.Tenant.Name(), h.Tenant.Mailbox())
	defer eng.Disarm()

	e.SetCommandDeadline(5 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := e.Grow(0, units.MiB)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "timeout") {
			t.Fatalf("stalled grow: %v, want a timeout status", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("grow hung past the command deadline")
	}
	if eng.Fires() == 0 {
		t.Fatal("fabric stall rule never fired")
	}

	// With the fault exhausted/disarmed, capacity ops recover.
	eng.Disarm()
	e.SetCommandDeadline(time.Second)
	if _, err := e.Grow(0, units.MiB); err != nil {
		t.Fatalf("grow after disarm: %v", err)
	}
}
