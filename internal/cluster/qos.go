package cluster

import (
	"fmt"
	"sync"
	"time"

	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// QoS throttle. The appliance pipeline is a shared resource; without
// enforcement one aggressive tenant can starve the rest (the memtier
// problem: workloads drawing from a shared pool of memory controllers
// need their draw rebalanced on demand). The throttle meters each
// tenant's achieved bandwidth from its device's memdev.Stats counters
// — the same counters the data path already maintains, so metering
// adds nothing to the hot path — and paces tenants that run ahead of
// their share of the pipeline.

// Throttle enforces per-tenant bandwidth shares of a total budget.
// Safe for concurrent use: each tenant's pacing decision reads its own
// stats counters (atomics) plus the registry under a short lock; the
// sleep happens outside.
type Throttle struct {
	total units.Bandwidth

	mu      sync.Mutex
	tenants map[string]*tenantBudget
}

// tenantBudget tracks one tenant's share and metering epoch. Pacing is
// computed from bytes moved since the epoch start; SetShare rebases the
// epoch so a share change applies to future traffic, not retroactively.
type tenantBudget struct {
	share float64
	stats *memdev.Stats
	start time.Time
	base  int64
}

// NewThrottle builds a throttle over a total pipeline budget.
func NewThrottle(total units.Bandwidth) *Throttle {
	return &Throttle{total: total, tenants: make(map[string]*tenantBudget)}
}

// Total reports the pipeline budget being shared.
func (th *Throttle) Total() units.Bandwidth { return th.total }

// Register adds a tenant metered by the given stats with a fractional
// share of the total budget.
func (th *Throttle) Register(name string, stats *memdev.Stats, share float64) error {
	if stats == nil {
		return fmt.Errorf("cluster: qos: %s: nil stats", name)
	}
	if share <= 0 || share > 1 {
		return fmt.Errorf("cluster: qos: %s: share %v outside (0,1]", name, share)
	}
	th.mu.Lock()
	defer th.mu.Unlock()
	if _, ok := th.tenants[name]; ok {
		return fmt.Errorf("cluster: qos: %s already registered", name)
	}
	th.tenants[name] = &tenantBudget{
		share: share,
		stats: stats,
		start: time.Now(),
		base:  movedBytes(stats),
	}
	return nil
}

// SetShare changes a tenant's share and rebases its metering epoch, so
// the new share governs traffic from now on.
func (th *Throttle) SetShare(name string, share float64) error {
	if share <= 0 || share > 1 {
		return fmt.Errorf("cluster: qos: %s: share %v outside (0,1]", name, share)
	}
	th.mu.Lock()
	defer th.mu.Unlock()
	b, ok := th.tenants[name]
	if !ok {
		return fmt.Errorf("cluster: qos: no tenant %s", name)
	}
	b.share = share
	b.start = time.Now()
	b.base = movedBytes(b.stats)
	return nil
}

// Allowance reports a tenant's current bandwidth budget.
func (th *Throttle) Allowance(name string) (units.Bandwidth, error) {
	th.mu.Lock()
	defer th.mu.Unlock()
	b, ok := th.tenants[name]
	if !ok {
		return 0, fmt.Errorf("cluster: qos: no tenant %s", name)
	}
	return units.Bandwidth(float64(th.total) * b.share), nil
}

// Measured reports a tenant's achieved bandwidth since its epoch start.
func (th *Throttle) Measured(name string) (units.Bandwidth, error) {
	th.mu.Lock()
	b, ok := th.tenants[name]
	th.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("cluster: qos: no tenant %s", name)
	}
	elapsed := time.Since(b.start)
	if elapsed <= 0 {
		return 0, nil
	}
	return units.RateOf(units.Size(movedBytes(b.stats)-b.base), elapsed), nil
}

// Pace blocks the calling tenant until its achieved bandwidth is back
// inside its share of the budget, returning how long it slept. Call it
// before each transfer unit (e.g. each burst): a tenant within budget
// proceeds immediately; one running ahead sleeps exactly the deficit.
func (th *Throttle) Pace(name string) (time.Duration, error) {
	th.mu.Lock()
	b, ok := th.tenants[name]
	if !ok {
		th.mu.Unlock()
		return 0, fmt.Errorf("cluster: qos: no tenant %s", name)
	}
	allowed := float64(th.total) * b.share
	moved := float64(movedBytes(b.stats) - b.base)
	start := b.start
	th.mu.Unlock()
	if allowed <= 0 {
		return 0, fmt.Errorf("cluster: qos: %s has no allowance", name)
	}
	ideal := time.Duration(moved / allowed * float64(time.Second))
	sleep := ideal - time.Since(start)
	if sleep <= 0 {
		return 0, nil
	}
	time.Sleep(sleep)
	return sleep, nil
}

// movedBytes sums a device's read and write byte counters.
func movedBytes(s *memdev.Stats) int64 {
	return s.BytesRead.Load() + s.BytesWrite.Load()
}
