// Package cluster implements the paper's first future-work item (§6):
// "explore the scalability of CXL-enabled memory in larger HPC
// clusters, with more than one node accessing the CXL memory." It
// assembles k single-socket hosts behind a CXL 2.0 switch whose
// downstream is one memory appliance — a Multi-Logical Device carved
// into per-host partitions — and models the bandwidth each host sees as
// the appliance's shared pipeline saturates.
package cluster

import (
	"fmt"
	"sync"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/numa"
	"cxlpmem/internal/perf"
	"cxlpmem/internal/stream"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// ApplianceIPCapGBps is the shared device-pipeline throughput of the
// memory appliance, the same implementation bound as the paper's
// prototype card (one CXL IP slice worth per two channels; the
// appliance ships four slices).
const ApplianceIPCapGBps = 33.2

// Node is one compute host attached to the pool.
type Node struct {
	// Index of the host (0..k-1).
	Index int
	// Machine is the host topology: one SPR socket with local DDR5
	// (node 0) and its pooled CXL partition (node 1).
	Machine *topology.Machine
	// Engine models bandwidth on this host.
	Engine *perf.Engine
	// Port is the host's trained root port (link state and stats; data
	// traffic goes through IO).
	Port *cxl.RootPort
	// IO is the host's data path into the pool, in fabric HPA space.
	IO cxl.MemIO
	// Window is the enumerated HPA window of the host's partition.
	Window cxl.MemWindow
	// LD is the logical device carved for this host.
	LD *cxl.LogicalDevice
}

// Cluster is the assembled fabric.
type Cluster struct {
	Hosts  []*Node
	Switch *cxl.Switch
	MLD    *cxl.MLD
	// media is the appliance DRAM backing the MLD.
	media memdev.Device

	// scaleMu guards scaleCache, the memoised analytical Scalability
	// tables keyed by threadsPerHost (RunParallel consults the model
	// on every call; the fabric is immutable after New, so the table
	// never changes).
	scaleMu    sync.Mutex
	scaleCache map[int][]ScalePoint
}

// New assembles a cluster of k hosts, each receiving perHost bytes of
// pooled memory.
func New(k int, perHost units.Size) (*Cluster, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("cluster: host count %d outside 1..16", k)
	}
	if perHost <= 0 || perHost%units.CacheLine != 0 {
		return nil, fmt.Errorf("cluster: invalid per-host capacity %d", perHost)
	}
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               "appliance-ddr4",
		Rate:               3200,
		Channels:           4,
		CapacityPerChannel: units.Size(int64(perHost) * int64(k) / 4),
		IdleLatency:        units.Nanoseconds(105),
		BatteryBacked:      true,
	})
	if err != nil {
		return nil, err
	}
	mld, err := cxl.NewMLD("appliance", media)
	if err != nil {
		return nil, err
	}
	sw := cxl.NewSwitch("pool-switch")
	c := &Cluster{Switch: sw, MLD: mld, media: media}

	for i := 0; i < k; i++ {
		ld, err := mld.Carve(fmt.Sprintf("ld-host%d", i), perHost)
		if err != nil {
			return nil, err
		}
		dsp := fmt.Sprintf("dsp%d", i)
		if err := sw.AddDownstream(dsp, ld); err != nil {
			return nil, err
		}
		vppb := fmt.Sprintf("host%d", i)
		if err := sw.Bind(vppb, dsp); err != nil {
			return nil, err
		}
		ep, ok := sw.EndpointFor(vppb)
		if !ok {
			return nil, fmt.Errorf("cluster: vPPB %s lost its binding", vppb)
		}
		link, err := interconnect.NewPCIe(fmt.Sprintf("pcie-h%d", i), interconnect.KindPCIe5, 16, units.Nanoseconds(290))
		if err != nil {
			return nil, err
		}
		rp := cxl.NewRootPort(fmt.Sprintf("rp-h%d", i), link)
		if err := rp.Attach(ep); err != nil {
			return nil, err
		}
		h, err := cxl.Enumerate(0, rp)
		if err != nil {
			return nil, err
		}
		if len(h.Windows) != 1 {
			return nil, fmt.Errorf("cluster: host %d enumerated %d windows", i, len(h.Windows))
		}
		m, err := hostMachine(i, ld, rp, h.Windows[0])
		if err != nil {
			return nil, err
		}
		c.Hosts = append(c.Hosts, &Node{
			Index:   i,
			Machine: m,
			Engine:  perf.New(m),
			Port:    rp,
			IO:      rp,
			Window:  h.Windows[0],
			LD:      ld,
		})
	}
	return c, nil
}

// hostMachine builds one single-socket SPR host whose node 1 is the
// pooled partition.
func hostMachine(i int, ld *cxl.LogicalDevice, rp *cxl.RootPort, w cxl.MemWindow) (*topology.Machine, error) {
	m := &topology.Machine{Name: fmt.Sprintf("pool-host%d", i)}
	model := topology.SPRModel
	m.Sockets = []*topology.Socket{{ID: 0, Model: model}}
	for c := 0; c < model.CoresPerSocket; c++ {
		m.Sockets[0].Cores = append(m.Sockets[0].Cores, topology.Core{ID: topology.CoreID(c), Socket: 0})
	}
	local, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               fmt.Sprintf("ddr5-h%d", i),
		Rate:               4800,
		Channels:           1,
		CapacityPerChannel: 64 * units.GiB,
		IdleLatency:        units.Nanoseconds(95),
		Efficiency:         0.62,
	})
	if err != nil {
		return nil, err
	}
	m.Nodes = []*topology.Node{
		{ID: 0, Kind: topology.NodeDRAM, Device: local, HomeSocket: 0},
		{
			ID: 1, Kind: topology.NodeCXL, Device: ld.Media(),
			HomeSocket: -1, AttachSocket: 0,
			// Each host's port can use the full appliance pipeline
			// when alone; sharing is applied by the cluster model.
			IPCap: units.GBps(ApplianceIPCapGBps),
			Port:  rp, Window: w,
		},
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ScalePoint is one row of the scale-out experiment.
type ScalePoint struct {
	Hosts     int
	PerHost   units.Bandwidth
	Aggregate units.Bandwidth
}

// Scalability models 1..len(Hosts) hosts streaming Triad against their
// pooled partitions with threadsPerHost threads each. Every host's
// unconstrained rate comes from its own engine; the appliance pipeline
// is then shared — demand beyond ApplianceIPCapGBps is split evenly
// (the switch arbitrates round-robin between vPPBs).
func (c *Cluster) Scalability(threadsPerHost int) ([]ScalePoint, error) {
	var out []ScalePoint
	mix := stream.Triad.Mix()
	for k := 1; k <= len(c.Hosts); k++ {
		var solo float64
		for i := 0; i < k; i++ {
			h := c.Hosts[i]
			cores, err := numa.PlaceOnSocket(h.Machine, 0, threadsPerHost)
			if err != nil {
				return nil, err
			}
			r, err := h.Engine.StreamBandwidth(cores, 1, mix, perf.MemoryMode)
			if err != nil {
				return nil, err
			}
			solo += r.Total.GBps()
		}
		agg := solo
		if cap := ApplianceIPCapGBps * mix.Factor; agg > cap {
			agg = cap
		}
		out = append(out, ScalePoint{
			Hosts:     k,
			PerHost:   units.GBps(agg / float64(k)),
			Aggregate: units.GBps(agg),
		})
	}
	return out, nil
}

// TotalPooled reports the appliance capacity.
func (c *Cluster) TotalPooled() units.Size { return c.media.Capacity() }

// Describe renders the fabric.
func (c *Cluster) Describe() string {
	s := fmt.Sprintf("CXL memory pool: %d host(s), appliance %s (%s media), switch %s\n",
		len(c.Hosts), c.TotalPooled(), c.media.Name(), c.Switch.Name())
	for _, h := range c.Hosts {
		base, size := h.LD.Partition()
		s += fmt.Sprintf("  host%d: window [%#x,%#x) -> partition [%#x,%#x)\n",
			h.Index, h.Window.Base, h.Window.Base+h.Window.Size, base, base+size)
	}
	return s
}
