package cluster

import (
	"testing"

	"cxlpmem/internal/units"
)

// TestRunParallelCoherent drives the full stack: k cluster hosts over
// one shared MLD-backed segment, each through its own root port and
// coherent cache, the switch routing both the data and the snoops. The
// shared counter coming out exact IS the coherence proof — there is no
// application lock anywhere in the path.
func TestRunParallelCoherent(t *testing.T) {
	c, err := New(4, 2*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := c.AttachCoherent(64*units.KiB, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4} {
		pt, err := c.RunParallelCoherent(cs, k, 150)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if pt.Counter != uint64(k*150) {
			t.Errorf("k=%d: counter = %d, want %d", k, pt.Counter, k*150)
		}
		if k > 1 && pt.Snoops == 0 {
			t.Errorf("k=%d: contended run issued no snoops", k)
		}
		// Fresh segment per k would need re-attach; reset the counter
		// through host 0 instead.
		if err := cs.Caches[0].Store(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The shared partition must coexist with the per-host partitions:
	// the disjoint parallel driver still works on the same cluster.
	if _, err := c.RunParallel(2, 128*units.KiB, 2); err != nil {
		t.Fatal(err)
	}
}

func TestAttachCoherentValidation(t *testing.T) {
	c, err := New(2, units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachCoherent(100, 8); err == nil {
		t.Error("unaligned segment accepted")
	}
	cs, err := c.AttachCoherent(4*units.KiB, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunParallelCoherent(cs, 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := c.RunParallelCoherent(cs, 3, 10); err == nil {
		t.Error("k beyond hosts accepted")
	}
	if _, err := c.RunParallelCoherent(cs, 2, 0); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := c.RunParallelCoherent(nil, 2, 10); err == nil {
		t.Error("nil segment accepted")
	}
	// Accounting: the shared segment lives on its own G-FAM appliance —
	// the per-host appliance stays exactly carved (its invariant), and
	// the G-FAM pool is fully consumed by the shared LD.
	if got := c.MLD.Remaining(); got != 0 {
		t.Errorf("per-host appliance remaining = %v after AttachCoherent, want 0", got)
	}
	if got := cs.GFAM.Remaining(); got != 0 {
		t.Errorf("gfam remaining = %v, want 0", got)
	}
}
