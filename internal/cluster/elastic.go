package cluster

import (
	"fmt"
	"time"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fabric"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// Elastic is the dynamic-capacity counterpart of Cluster: k hosts
// behind one switch and one pooled appliance, but instead of a static
// per-host carve at construction, every host's share is a set of
// fabric-granted extents that can grow, shrink and move between hosts
// while traffic is in flight. The host-side capacity agent — the part
// a kernel's DCD driver would play — lives here too: Grow and Shrink
// drive the full round trip (fabric grant → add-capacity event →
// mailbox accept; release request → mailbox release).
type Elastic struct {
	Fabric   *fabric.Manager
	Switch   *cxl.Switch
	MLD      *cxl.MLD
	Hosts    []*ElasticHost
	Throttle *Throttle

	media memdev.Device
	// cmdDeadline bounds each host-agent mailbox round trip (0 = wait
	// forever, the historical behaviour). See SetCommandDeadline.
	cmdDeadline time.Duration
}

// SetCommandDeadline bounds every host-agent mailbox command (the
// accept/release round trips inside Grow and Shrink) to d. A tenant
// whose device stalls past the deadline surfaces cxl.MboxTimeout as an
// error — and the device's CommandTimeouts RAS counter records it —
// instead of hanging the capacity operation forever. Zero restores
// unbounded waits.
func (e *Elastic) SetCommandDeadline(d time.Duration) { e.cmdDeadline = d }

// execute runs one host-agent mailbox command under the configured
// deadline.
func (e *Elastic) execute(mb *cxl.Mailbox, op cxl.MailboxOpcode, in []byte) ([]byte, cxl.MailboxStatus) {
	if e.cmdDeadline > 0 {
		return mb.ExecuteTimeout(op, in, e.cmdDeadline)
	}
	return mb.Execute(op, in)
}

// ElasticHost is one tenant host: its root port trained against the
// tenant's DCD endpoint through the switch, and the enumerated
// quota-sized HPA window extents appear inside.
type ElasticHost struct {
	Index int
	// Port is the trained root port (link state and stats; data traffic
	// goes through IO).
	Port *cxl.RootPort
	// IO is the tenant's data path, in fabric HPA space.
	IO     cxl.MemIO
	Window cxl.MemWindow
	Tenant *fabric.Tenant
}

// ElasticConfig sizes an elastic cluster.
type ElasticConfig struct {
	// Hosts is the tenant count (1..16).
	Hosts int
	// Pool is the appliance capacity shared by all tenants.
	Pool units.Size
	// Quota is each tenant's fixed device address space; active
	// capacity can never exceed it.
	Quota units.Size
	// Initial capacity granted (and accepted) per tenant; may be 0.
	Initial units.Size
	// Granule is the fabric extent unit (fabric.DefaultGranule if 0).
	Granule units.Size
	// PipelineGBps is the QoS budget the throttle shares out. It is a
	// *simulator wall-clock* budget: set it below what the host can
	// move to make shares bind. Defaults to ApplianceIPCapGBps, the
	// modelled hardware pipeline — effectively unthrottled.
	PipelineGBps float64
}

// NewElastic assembles an elastic multi-tenant pool: appliance DRAM,
// MLD, switch, fabric manager, one tenant + trained root port per
// host, equal QoS shares, and the initial capacity granted through the
// real mailbox path.
func NewElastic(cfg ElasticConfig) (*Elastic, error) {
	if cfg.Hosts < 1 || cfg.Hosts > 16 {
		return nil, fmt.Errorf("cluster: elastic host count %d outside 1..16", cfg.Hosts)
	}
	if cfg.Pool <= 0 || cfg.Pool%(4*units.CacheLine) != 0 {
		return nil, fmt.Errorf("cluster: invalid pool capacity %d", cfg.Pool)
	}
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               "appliance-ddr4",
		Rate:               3200,
		Channels:           4,
		CapacityPerChannel: cfg.Pool / 4,
		IdleLatency:        units.Nanoseconds(105),
		BatteryBacked:      true,
	})
	if err != nil {
		return nil, err
	}
	mld, err := cxl.NewMLD("appliance", media)
	if err != nil {
		return nil, err
	}
	sw := cxl.NewSwitch("pool-switch")
	mgr, err := fabric.New(sw, mld, fabric.Config{Granule: cfg.Granule})
	if err != nil {
		return nil, err
	}
	pipeline := cfg.PipelineGBps
	if pipeline == 0 {
		pipeline = ApplianceIPCapGBps
	}
	e := &Elastic{
		Fabric:   mgr,
		Switch:   sw,
		MLD:      mld,
		Throttle: NewThrottle(units.GBps(pipeline)),
		media:    media,
	}
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("host%d", i)
		t, err := mgr.AddTenant(name, cfg.Quota)
		if err != nil {
			return nil, err
		}
		ep, ok := sw.EndpointFor(name)
		if !ok {
			return nil, fmt.Errorf("cluster: vPPB %s lost its binding", name)
		}
		link, err := interconnect.NewPCIe(fmt.Sprintf("pcie-h%d", i), interconnect.KindPCIe5, 16, units.Nanoseconds(290))
		if err != nil {
			return nil, err
		}
		rp := cxl.NewRootPort(fmt.Sprintf("rp-h%d", i), link)
		if err := rp.Attach(ep); err != nil {
			return nil, err
		}
		h, err := cxl.Enumerate(0, rp)
		if err != nil {
			return nil, err
		}
		if len(h.Windows) != 1 {
			return nil, fmt.Errorf("cluster: host %d enumerated %d windows", i, len(h.Windows))
		}
		if err := e.Throttle.Register(name, t.Device().Stats(), 1/float64(cfg.Hosts)); err != nil {
			return nil, err
		}
		e.Hosts = append(e.Hosts, &ElasticHost{Index: i, Port: rp, IO: rp, Window: h.Windows[0], Tenant: t})
	}
	if cfg.Initial > 0 {
		for i := range e.Hosts {
			if _, err := e.Grow(i, cfg.Initial); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// TotalPooled reports the appliance capacity.
func (e *Elastic) TotalPooled() units.Size { return e.media.Capacity() }

// Capacity reports a host's accepted capacity.
func (e *Elastic) Capacity(i int) units.Size { return e.Hosts[i].Tenant.Active() }

// host validates an index.
func (e *Elastic) host(i int) (*ElasticHost, error) {
	if i < 0 || i >= len(e.Hosts) {
		return nil, fmt.Errorf("cluster: host %d outside 0..%d", i, len(e.Hosts)-1)
	}
	return e.Hosts[i], nil
}

// Grow grants a host size bytes of pool capacity and plays the host
// agent: it drains the add-capacity events and accepts each offered
// extent through the tenant's mailbox, so the returned extents are
// active and immediately usable through the root port.
func (e *Elastic) Grow(i int, size units.Size) ([]fabric.ExtentInfo, error) {
	h, err := e.host(i)
	if err != nil {
		return nil, err
	}
	granted, err := e.Fabric.Grant(h.Tenant.Name(), size)
	if err != nil {
		return nil, err
	}
	// Answer exactly this grant's offers; unrelated queued events (a
	// pending release request, a reclaim notice) stay queued for
	// whoever handles them.
	mine := make(map[uint64]bool, len(granted))
	for _, g := range granted {
		mine[g.Tag] = true
	}
	offers := h.Tenant.TakeEvents(func(ev fabric.Event) bool {
		return ev.Type == fabric.EventAddCapacity && mine[ev.Extent.Tag]
	})
	for _, ev := range offers {
		_, status := e.execute(h.Tenant.Mailbox(), cxl.OpAddDCDResponse, cxl.EncodeDCDResponse(ev.Extent.DCD(), true))
		if status != cxl.MboxSuccess {
			return nil, fmt.Errorf("cluster: host %d: accepting %v: %v", i, ev.Extent, status)
		}
	}
	out := granted[:0]
	for _, g := range granted {
		g.State = fabric.ExtentActive
		out = append(out, g)
	}
	return out, nil
}

// Shrink asks the fabric for a polite release of at least size bytes
// and plays the host agent answering it: every requested extent is
// returned through the mailbox. Reports the bytes actually released
// (whole extents, so possibly more than size).
func (e *Elastic) Shrink(i int, size units.Size) (units.Size, error) {
	h, err := e.host(i)
	if err != nil {
		return 0, err
	}
	asked, err := e.Fabric.RequestRelease(h.Tenant.Name(), size)
	if err != nil {
		return 0, err
	}
	// Answer exactly this request's events — one per asked tag — and
	// leave stale or unrelated events queued.
	mine := make(map[uint64]bool, len(asked))
	for _, a := range asked {
		mine[a.Tag] = true
	}
	requests := h.Tenant.TakeEvents(func(ev fabric.Event) bool {
		if ev.Type != fabric.EventReleaseRequest || !mine[ev.Extent.Tag] {
			return false
		}
		delete(mine, ev.Extent.Tag)
		return true
	})
	var released units.Size
	for _, ev := range requests {
		_, status := e.execute(h.Tenant.Mailbox(), cxl.OpReleaseDCD, cxl.EncodeDCDExtent(ev.Extent.DCD()))
		if status != cxl.MboxSuccess {
			return released, fmt.Errorf("cluster: host %d: releasing %v: %v", i, ev.Extent, status)
		}
		released += units.Size(ev.Extent.Size)
	}
	return released, nil
}

// Rebalance moves the pool toward the target per-host capacities:
// hosts above target shrink first (freeing pool space), hosts below
// then grow into it. Targets round up to the fabric granule. Because
// shrink releases whole extents, a host may land slightly under its
// pre-rebalance capacity and be topped back up by the grow phase.
func (e *Elastic) Rebalance(target []units.Size) error {
	if len(target) != len(e.Hosts) {
		return fmt.Errorf("cluster: rebalance got %d targets for %d hosts", len(target), len(e.Hosts))
	}
	g := e.Fabric.Granule()
	want := make([]units.Size, len(target))
	for i, tgt := range target {
		if tgt < 0 {
			return fmt.Errorf("cluster: rebalance target %d negative", i)
		}
		want[i] = (tgt + g - 1) / g * g
	}
	for i := range e.Hosts {
		if have := e.Capacity(i); have > want[i] {
			if _, err := e.Shrink(i, have-want[i]); err != nil {
				return err
			}
		}
	}
	for i := range e.Hosts {
		if have := e.Capacity(i); have < want[i] {
			if _, err := e.Grow(i, want[i]-have); err != nil {
				return err
			}
		}
	}
	return nil
}

// elasticBurst is the transfer unit of Drive: one maximal CXL.mem
// burst (cxl.MaxBurstLines × cxl.LineSize; untyped so it composes
// with units.Size and uint64 alike).
const elasticBurst = 64 * 64

// Drive moves total bytes through a host's root port — alternating
// maximal write and read bursts striped across the host's active
// extents — pacing each burst with the QoS throttle. Returns the
// achieved throughput. It is the elastic counterpart of RunParallel's
// per-host loop and is safe to run for many hosts concurrently.
func (e *Elastic) Drive(i int, total units.Size) (units.Bandwidth, error) {
	h, err := e.host(i)
	if err != nil {
		return 0, err
	}
	if total < elasticBurst || total%elasticBurst != 0 {
		return 0, fmt.Errorf("cluster: drive %d bytes not a positive multiple of %d", total, elasticBurst)
	}
	exts, err := e.Fabric.Extents(h.Tenant.Name())
	if err != nil {
		return 0, err
	}
	// Usable extents: active and at least one burst long.
	spans := exts[:0]
	for _, x := range exts {
		if x.State == fabric.ExtentActive && x.Size >= elasticBurst {
			spans = append(spans, x)
		}
	}
	if len(spans) == 0 {
		return 0, fmt.Errorf("cluster: host %d has no active extent to drive", i)
	}
	name := h.Tenant.Name()
	buf := make([]byte, elasticBurst)
	for j := range buf {
		buf[j] = byte(i + j)
	}
	t0 := time.Now()
	var moved units.Size
	for n := 0; moved < total; n++ {
		x := spans[n%len(spans)]
		// Cycle within the extent (clipped to 1 MiB so the run measures
		// the wire, not first-touch page materialisation).
		span := x.Size &^ (elasticBurst - 1)
		if span > 1<<20 {
			span = 1 << 20
		}
		addr := h.Window.Base + x.DPA + uint64(n)*elasticBurst%span
		if _, err := e.Throttle.Pace(name); err != nil {
			return 0, err
		}
		if n%2 == 0 {
			err = h.IO.WriteBurst(addr, buf)
		} else {
			err = h.IO.ReadBurst(addr, buf)
		}
		if err != nil {
			return 0, err
		}
		moved += elasticBurst
	}
	return units.RateOf(total, time.Since(t0)), nil
}

// Describe renders the elastic fabric.
func (e *Elastic) Describe() string {
	s := fmt.Sprintf("elastic CXL pool: %d host(s), appliance %v, %v unallocated\n",
		len(e.Hosts), e.TotalPooled(), e.Fabric.Remaining())
	for _, h := range e.Hosts {
		s += fmt.Sprintf("  host%d: window [%#x,%#x), %v active\n",
			h.Index, h.Window.Base, h.Window.Base+h.Window.Size, h.Tenant.Active())
	}
	return s
}
