package cluster

import (
	"fmt"

	"cxlpmem/internal/coherency"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/telemetry"
)

// Telemetry wiring for the elastic pool: EnableTelemetry plugs every
// layer the cluster composes into one registry — per-port latency
// histograms, ring and link counters, fabric control-plane state, and
// flit capture (per-port flight recorders plus an always-on recorder on
// the switch's back-invalidate channel). The result is the fleet view
// `fabricctl top` and telemetry.Serve render.

// EnableTelemetry registers every host port and the fabric manager with
// reg and starts flit capture. Returns the snoop recorder watching the
// switch's back-invalidate channel; per-port recorders are reachable
// via each host's Port.FlightRecorder. Call once per registry.
func (e *Elastic) EnableTelemetry(reg *telemetry.Registry, opts cxl.TelemetryOptions) *telemetry.FlightRecorder {
	for _, h := range e.Hosts {
		h.Port.EnableTelemetry(reg, opts)
	}
	e.Fabric.RegisterMetrics(reg)
	snoops := telemetry.NewFlightRecorder(opts.RecorderSlots)
	cxl.RecordSnoops(e.Switch, snoops)
	return snoops
}

// AttachFlightRecorders hands each tenant port's flight recorder to the
// RAS plane (under the same "tenant:<name>" device names EnableRAS
// registers), so a Degraded or Evacuating transition automatically
// snapshots the wire history that led up to it into the health event.
// Ports without telemetry enabled are skipped.
func (e *Elastic) AttachFlightRecorders(p *ras.Plane) error {
	for _, h := range e.Hosts {
		rec := h.Port.FlightRecorder()
		if rec == nil {
			continue
		}
		if err := p.AttachFlightRecorder("tenant:"+h.Tenant.Name(), rec.Dump); err != nil {
			return fmt.Errorf("cluster: attaching recorder: %w", err)
		}
	}
	return nil
}

// RegisterCoherencyMetrics exposes a coherent segment's directory and
// per-host cache counters through the registry.
func (c *Cluster) RegisterCoherencyMetrics(reg *telemetry.Registry, cs *CoherentSegment) {
	coherency.RegisterDirectoryMetrics(reg, "hdm", cs.Directory)
	for i, cache := range cs.Caches {
		coherency.RegisterCacheMetrics(reg, fmt.Sprintf("host%d", i), cache)
	}
}
