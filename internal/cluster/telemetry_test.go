package cluster

import (
	"strings"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/telemetry"
	"cxlpmem/internal/units"
)

func TestElasticTelemetry(t *testing.T) {
	e := testElastic(t, 2)
	reg := telemetry.NewRegistry()
	e.EnableTelemetry(reg, cxl.TelemetryOptions{SampleN: 1})

	if _, err := e.Drive(0, 2*units.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Drive(1, units.MiB); err != nil {
		t.Fatal(err)
	}

	samples := reg.Gather()
	var burstHist, portIssued, fabricGranted, tenantWrites bool
	for _, s := range samples {
		switch {
		case s.Name == "cxl_port_latency_ns" && strings.Contains(s.Labels, `op="burst"`):
			if s.Hist != nil && s.Hist.Count > 0 {
				burstHist = true
			}
		case s.Name == "cxl_port_issued_total" && s.Value > 0:
			portIssued = true
		case s.Name == "fabric_granted_bytes_total" && s.Value > 0:
			fabricGranted = true
		case s.Name == "fabric_tenant_write_bytes_total" && s.Value > 0:
			tenantWrites = true
		}
	}
	if !burstHist {
		t.Error("no populated burst latency histogram after Drive")
	}
	if !portIssued {
		t.Error("cxl_port_issued_total never moved")
	}
	if !fabricGranted {
		t.Error("fabric_granted_bytes_total never moved")
	}
	if !tenantWrites {
		t.Error("fabric_tenant_write_bytes_total never moved")
	}
	for _, h := range e.Hosts {
		if rec := h.Port.FlightRecorder(); rec == nil || rec.Recorded() == 0 {
			t.Errorf("host %d flight recorder empty", h.Index)
		}
	}
}

func TestElasticFlightDumpOnDegrade(t *testing.T) {
	e := testElastic(t, 1)
	reg := telemetry.NewRegistry()
	e.EnableTelemetry(reg, cxl.TelemetryOptions{SampleN: 1, RecorderSlots: 512})

	plane, err := e.EnableRAS(ras.Thresholds{MaxCorrectable: 100}, ras.ScrubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AttachFlightRecorders(plane); err != nil {
		t.Fatal(err)
	}

	if _, err := e.Drive(0, units.MiB); err != nil {
		t.Fatal(err)
	}
	name := "tenant:" + e.Hosts[0].Tenant.Name()
	if err := plane.MarkEvacuating(name, "forced for dump test"); err != nil {
		t.Fatal(err)
	}

	var dumped []telemetry.FlitRecord
	for _, ev := range plane.Events() {
		if ev.Device == name && len(ev.Flits) > 0 {
			dumped = ev.Flits
		}
	}
	if len(dumped) == 0 {
		t.Fatal("health transition captured no flits")
	}
}
