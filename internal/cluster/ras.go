package cluster

import (
	"fmt"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/ras"
	"cxlpmem/internal/units"
)

// RAS wiring for the elastic pool: EnableRAS registers every pool
// device and every tenant window with a ras.Plane, so patrol scrub
// rides the real data paths (appliance media directly, tenant windows
// through their root ports) and link-retry storms are attributed to the
// tenant whose port saw them. Recovery composes the pieces the lower
// layers already provide: EvacuatePool re-homes extents onto spare
// pools while traffic continues, with the plane tracking the device
// through Degraded → Evacuating → Offline.

// EnableRAS builds a RAS control plane over the pool: one registration
// per fabric pool (scrubbed directly on the appliance media) and one
// per tenant window (scrubbed through the tenant's root port, so patrol
// exercises link, switch and DCD mapping — and retry storms land on the
// right tenant). Call Plane.Start for background patrol or drive
// ScrubStep/Evaluate from tests.
func (e *Elastic) EnableRAS(th ras.Thresholds, cfg ras.ScrubConfig) (*ras.Plane, error) {
	p := ras.NewPlane(th, cfg)
	for _, name := range e.Fabric.Pools() {
		media, ok := e.Fabric.PoolMedia(name)
		if !ok {
			return nil, fmt.Errorf("cluster: pool %s has no media", name)
		}
		if err := p.Register("pool:"+name, media, ras.DeviceOptions{}); err != nil {
			return nil, err
		}
	}
	for _, h := range e.Hosts {
		h := h
		dev := h.Tenant.Device()
		rl, _ := dev.(memdev.RangeLister)
		mbox := h.Tenant.Mailbox()
		opts := ras.DeviceOptions{
			Read: func(dpa uint64, buf []byte) error {
				// Pre-screen with the poison list the endpoint's burst
				// span-checker consults anyway: the patrol read is not a
				// consumer, so a latent fault it trips over must count as
				// correctable (via the Poisoned hook), not as a demand
				// uncorrectable on the tenant's counters.
				if mbox.HasPoisonIn(dpa, uint64(len(buf))) {
					return fmt.Errorf("cluster: patrol: poison in [%#x, %#x)", dpa, dpa+uint64(len(buf)))
				}
				return h.IO.ReadBurst(h.Window.Base+dpa, buf)
			},
			Probe: func(dpa uint64) error {
				var line [cxl.LineSize]byte
				return h.IO.ReadLine(h.Window.Base+dpa, &line)
			},
			Retries:  func() int64 { return h.Port.Stats().Retries },
			Poisoned: mbox.IsPoisoned,
		}
		if rl != nil {
			opts.Ranges = rl.Committed
		}
		if err := p.Register("tenant:"+h.Tenant.Name(), dev, opts); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// AddSparePool provisions a fresh battery-backed appliance device of
// the given capacity and registers it with the fabric as a grant and
// evacuation target. Returns the new MLD.
func (e *Elastic) AddSparePool(name string, size units.Size) (*cxl.MLD, error) {
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               name + "-ddr4",
		Rate:               3200,
		Channels:           4,
		CapacityPerChannel: size / 4,
		IdleLatency:        units.Nanoseconds(105),
		BatteryBacked:      true,
	})
	if err != nil {
		return nil, err
	}
	mld, err := cxl.NewMLD(name, media)
	if err != nil {
		return nil, err
	}
	if err := e.Fabric.AddPool(mld); err != nil {
		return nil, err
	}
	return mld, nil
}

// EvacuatePool drains the named pool onto the remaining healthy pools
// under traffic, driving the plane's state machine around the move:
// Evacuating while extents migrate, Offline once the pool is empty. A
// nil plane just performs the migration.
func (e *Elastic) EvacuatePool(p *ras.Plane, name string) (moved int, err error) {
	dev := "pool:" + name
	if p != nil {
		if h := p.Health(dev); h.State == ras.Healthy {
			// An operator-initiated drain of a healthy device: record the
			// degradation so the state history stays truthful.
			_ = p.MarkEvacuating(dev, "operator-initiated evacuation")
		} else {
			_ = p.MarkEvacuating(dev, "draining degraded pool")
		}
	}
	moved, err = e.Fabric.EvacuatePool(name)
	if p != nil {
		if err != nil {
			_ = p.MarkHealthy(dev, fmt.Sprintf("evacuation aborted: %v", err))
		} else {
			_ = p.MarkOffline(dev, fmt.Sprintf("evacuated %d extents", moved))
		}
	}
	return moved, err
}

// DegradedPools returns the pool devices the plane currently reports
// as not Healthy. Pools the plane was never told about (a spare added
// after EnableRAS, say) are skipped — Health would call any unknown
// name Offline.
func (e *Elastic) DegradedPools(p *ras.Plane) []string {
	known := make(map[string]bool)
	for _, name := range p.Devices() {
		known[name] = true
	}
	var out []string
	for _, name := range e.Fabric.Pools() {
		if !known["pool:"+name] {
			continue
		}
		if h := p.Health("pool:" + name); h.State != ras.Healthy {
			out = append(out, name)
		}
	}
	return out
}
