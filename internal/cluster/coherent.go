package cluster

import (
	"fmt"
	"sync"
	"time"

	"cxlpmem/internal/coherency"
	"cxlpmem/internal/cxl"
	"cxlpmem/internal/interconnect"
	"cxlpmem/internal/memdev"
	"cxlpmem/internal/units"
)

// Coherent shared segment over the pooled fabric. PR 2's RunParallel
// drives k hosts against DISJOINT MLD partitions; this file opens the
// scenario the repo previously could not express: k hosts hammering ONE
// shared segment with hardware coherence. The segment lives on a
// dedicated G-FAM-style appliance (the per-host appliance is carved
// exactly, Remaining() == 0 by invariant) attached to the SAME switch:
// every host reaches it through its own root port and a write-back
// CoherentCache, and the device-side directory back-invalidates over
// the switch before any conflicting grant.

// CoherentSegment is a shared, hardware-coherent region attached to
// every cluster host.
type CoherentSegment struct {
	// GFAM is the shared appliance; LD is the partition backing the
	// segment.
	GFAM *cxl.MLD
	LD   *cxl.LogicalDevice
	// Directory is the device-owned MESI directory.
	Directory *coherency.Directory
	// Caches holds one coherent cached view per cluster host.
	Caches []*coherency.CoherentCache
	// Ports holds the per-host root ports attached to the shared LD.
	Ports []*cxl.RootPort
	// Segment is the segment geometry (segment-relative).
	Segment coherency.Segment
}

// coherentWindowBase places the shared windows well clear of the
// enumerated per-host partition windows; coherentWindowStride
// separates the per-host windows (and caps the segment size — larger
// would make the windows overlap and alias across hosts).
const (
	coherentWindowBase   = uint64(0x40_0000_0000)
	coherentWindowStride = uint64(0x1_0000_0000)
)

// AttachCoherent stands up a shared segment of the given size and
// attaches every host to it coherently: a G-FAM appliance MLD joins
// the switch as a new downstream, the segment is carved from it, and
// each host gets a shared binding, a snooper registration, a root port
// with its own decoder window, and a CoherentCache of cacheLines
// lines — with the device-side directory arbitrating it all.
func (c *Cluster) AttachCoherent(size units.Size, cacheLines int) (*CoherentSegment, error) {
	if size <= 0 || size%units.CacheLine != 0 {
		return nil, fmt.Errorf("cluster: coherent segment size %d not a positive multiple of %d", size, units.CacheLine)
	}
	if uint64(size) > coherentWindowStride {
		return nil, fmt.Errorf("cluster: coherent segment %v exceeds the %v per-host window stride", size, units.Size(coherentWindowStride))
	}
	media, err := memdev.NewDRAM(memdev.DRAMConfig{
		Name:               "gfam-ddr4",
		Rate:               3200,
		Channels:           1,
		CapacityPerChannel: size,
		IdleLatency:        units.Nanoseconds(105),
		BatteryBacked:      true,
	})
	if err != nil {
		return nil, err
	}
	gfam, err := cxl.NewMLD("gfam", media)
	if err != nil {
		return nil, err
	}
	ld, err := gfam.Carve("ld-shared", size)
	if err != nil {
		return nil, err
	}
	const dsp = "dsp-shared"
	if err := c.Switch.AddDownstream(dsp, ld); err != nil {
		return nil, err
	}
	seg := coherency.Segment{Base: 0, Size: int64(size)}
	cs := &CoherentSegment{GFAM: gfam, LD: ld, Segment: seg}

	vppbs := make([]string, len(c.Hosts))
	accs := make([]coherency.Accessor, len(c.Hosts))
	for i := range c.Hosts {
		vppb := fmt.Sprintf("coh%d", i)
		if err := c.Switch.BindShared(vppb, dsp); err != nil {
			return nil, err
		}
		ep, ok := c.Switch.EndpointFor(vppb)
		if !ok {
			return nil, fmt.Errorf("cluster: vPPB %s lost its binding", vppb)
		}
		base := coherentWindowBase + uint64(i)*coherentWindowStride
		if err := ld.ProgramDecoder(&cxl.HDMDecoder{Base: base, Size: uint64(size)}); err != nil {
			return nil, err
		}
		link, err := interconnect.NewPCIe(fmt.Sprintf("pcie-coh%d", i), interconnect.KindPCIe5, 16, units.Nanoseconds(290))
		if err != nil {
			return nil, err
		}
		rp := cxl.NewRootPort(fmt.Sprintf("rp-coh%d", i), link)
		if err := rp.Attach(ep); err != nil {
			return nil, err
		}
		vppbs[i] = vppb
		accs[i] = coherency.NewMemIOAccessor(rp, base)
		cs.Ports = append(cs.Ports, rp)
	}

	dir, err := coherency.NewDirectory(seg, c.Switch, vppbs)
	if err != nil {
		return nil, err
	}
	cs.Directory = dir
	for i := range c.Hosts {
		cache, err := coherency.NewCoherentCache(i, dir, accs[i], seg, cacheLines)
		if err != nil {
			return nil, err
		}
		if err := c.Switch.RegisterSnooper(vppbs[i], cache); err != nil {
			return nil, err
		}
		cs.Caches = append(cs.Caches, cache)
	}
	return cs, nil
}

// CoherentPoint is one measured row of the coherent scale-out run.
type CoherentPoint struct {
	// Hosts driven concurrently.
	Hosts int
	// OpsPerHost performed by each host (fetch-adds on the shared
	// counter plus slot writes and remote-slot reads).
	OpsPerHost int
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// OpsPerSec is the aggregate coherent-operation rate.
	OpsPerSec float64
	// Counter is the final shared-counter value (must equal
	// Hosts×OpsPerHost — no lost updates).
	Counter uint64
	// Snoops and Writebacks snapshot the directory activity the run
	// generated.
	Snoops, Writebacks int64
}

// RunParallelCoherent drives the first k hosts concurrently over the
// shared coherent segment: every host fetch-adds one shared counter
// opsPerHost times, publishes a per-host progress slot and reads a
// neighbour's slot — classic true/false-sharing traffic with NO
// application-level locking or flushing. The directory's back-
// invalidate flow is what keeps the counter exact; the returned point
// carries the proof (Counter) and the snoop bill for it.
func (c *Cluster) RunParallelCoherent(cs *CoherentSegment, k, opsPerHost int) (*CoherentPoint, error) {
	if cs == nil || len(cs.Caches) != len(c.Hosts) {
		return nil, fmt.Errorf("cluster: coherent segment not attached to this cluster")
	}
	if k < 1 || k > len(c.Hosts) {
		return nil, fmt.Errorf("cluster: coherent host count %d outside 1..%d", k, len(c.Hosts))
	}
	if opsPerHost < 1 {
		return nil, fmt.Errorf("cluster: ops per host %d, want >= 1", opsPerHost)
	}
	// Layout: counter at 0; host i's progress slot at 64*(1+i) (one
	// line per slot — the neighbour reads make it genuine shared-read
	// traffic, the counter line is the contended one).
	if need := int64(64 * (1 + len(c.Hosts))); cs.Segment.Size < need {
		return nil, fmt.Errorf("cluster: coherent segment %d bytes, need >= %d", cs.Segment.Size, need)
	}
	snoops0 := cs.Directory.Stats().Snoops.Load()
	wbs0 := cs.Directory.Stats().Writebacks.Load()

	errs := make([]error, k)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cache := cs.Caches[i]
			slot := int64(64 * (1 + i))
			peer := int64(64 * (1 + (i+1)%k))
			for j := 0; j < opsPerHost; j++ {
				if _, err := cache.FetchAdd(0, 1); err != nil {
					errs[i] = err
					return
				}
				if err := cache.Store(slot, uint64(j+1)); err != nil {
					errs[i] = err
					return
				}
				if _, err := cache.Load(peer); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	counter, err := cs.Caches[0].Load(0)
	if err != nil {
		return nil, err
	}
	pt := &CoherentPoint{
		Hosts:      k,
		OpsPerHost: opsPerHost,
		Elapsed:    elapsed,
		OpsPerSec:  float64(3*k*opsPerHost) / elapsed.Seconds(),
		Counter:    counter,
		Snoops:     cs.Directory.Stats().Snoops.Load() - snoops0,
		Writebacks: cs.Directory.Stats().Writebacks.Load() - wbs0,
	}
	if counter != uint64(k*opsPerHost) {
		return pt, fmt.Errorf("cluster: coherent counter = %d, want %d (lost updates)", counter, k*opsPerHost)
	}
	return pt, nil
}
