// Package coherency provides application-level coherency for the
// prototype's shared-HDM configuration. Paper §2.2: "the same far
// memory segment can be made available to two distinct NUMA nodes ...
// However, due to the absence of a unified cache-coherent domain, the
// onus of maintaining coherency between the two NUMA nodes assigned to
// the shared far memory rests with the applications leveraging this
// configuration."
//
// A Host holds a write-back cached view of a shared segment. Because
// the fabric offers plain reads and writes but no cross-host atomics,
// mutual exclusion uses Peterson's algorithm over three flag words in
// device memory, with explicit flush (write-back) and invalidate
// operations around the critical section — exactly the discipline an
// application on the real prototype would need.
package coherency

import (
	"encoding/binary"
	"fmt"
	"runtime"
)

// Accessor is the raw path to the shared device memory (a CXL root
// port window or the media itself).
type Accessor interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
}

// Segment layout: a 64-byte control block, then the payload.
//
//	0:8   flag[0]
//	8:16  flag[1]
//	16:24 turn
//	24:32 generation counter (bumped on every release)
const (
	ctrlSize = 64
	offFlag0 = 0
	offFlag1 = 8
	offTurn  = 16
	offGen   = 24
)

// Segment describes one shared region.
type Segment struct {
	// Base is the offset of the control block in the accessor's
	// address space.
	Base int64
	// Size is the payload length.
	Size int64
}

// Host is one NUMA node's view of the shared segment.
type Host struct {
	id      int // 0 or 1
	acc     Accessor
	seg     Segment
	cache   []byte
	valid   bool
	holding bool
	gen     uint64
}

// NewPair returns the two hosts' views over the same segment through
// their respective accessors (which may be two different HPA windows
// of one device). It zeroes the control block.
func NewPair(acc0, acc1 Accessor, seg Segment) (*Host, *Host, error) {
	if seg.Size <= 0 {
		return nil, nil, fmt.Errorf("coherency: non-positive segment size")
	}
	if acc0 == nil || acc1 == nil {
		return nil, nil, fmt.Errorf("coherency: nil accessor")
	}
	zero := make([]byte, ctrlSize)
	if err := acc0.WriteAt(zero, seg.Base); err != nil {
		return nil, nil, err
	}
	h0 := &Host{id: 0, acc: acc0, seg: seg, cache: make([]byte, seg.Size)}
	h1 := &Host{id: 1, acc: acc1, seg: seg, cache: make([]byte, seg.Size)}
	return h0, h1, nil
}

func (h *Host) word(off int64) (uint64, error) {
	var b [8]byte
	if err := h.acc.ReadAt(b[:], h.seg.Base+off); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (h *Host) setWord(off int64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return h.acc.WriteAt(b[:], h.seg.Base+off)
}

// Acquire takes the segment lock (Peterson's algorithm over device
// words) and invalidates the local cache if another host has released
// the lock since our last acquire, so the next Read observes remote
// writes.
func (h *Host) Acquire() error {
	if h.holding {
		return fmt.Errorf("coherency: host %d already holds the lock", h.id)
	}
	my, other := int64(offFlag0), int64(offFlag1)
	if h.id == 1 {
		my, other = offFlag1, offFlag0
	}
	if err := h.setWord(my, 1); err != nil {
		return err
	}
	if err := h.setWord(offTurn, uint64(1-h.id)); err != nil {
		return err
	}
	for {
		of, err := h.word(other)
		if err != nil {
			return err
		}
		turn, err := h.word(offTurn)
		if err != nil {
			return err
		}
		if of == 0 || turn == uint64(h.id) {
			break
		}
		// Busy-waiting on device words must not starve the peer's
		// goroutine of a P: on a single-CPU runner (the race job pins
		// GOMAXPROCS in places) the contended path would otherwise spin
		// a full scheduler quantum per handover.
		runtime.Gosched()
	}
	gen, err := h.word(offGen)
	if err != nil {
		return err
	}
	if gen != h.gen {
		h.valid = false // someone committed since we last looked
		h.gen = gen
	}
	h.holding = true
	return nil
}

// Release writes the cache back to the device, bumps the generation
// and drops the lock.
func (h *Host) Release() error {
	if !h.holding {
		return fmt.Errorf("coherency: host %d does not hold the lock", h.id)
	}
	if err := h.Flush(); err != nil {
		return err
	}
	h.gen++
	if err := h.setWord(offGen, h.gen); err != nil {
		return err
	}
	my := int64(offFlag0)
	if h.id == 1 {
		my = offFlag1
	}
	if err := h.setWord(my, 0); err != nil {
		return err
	}
	h.holding = false
	return nil
}

// fill loads the payload into the cache.
func (h *Host) fill() error {
	if h.valid {
		return nil
	}
	if err := h.acc.ReadAt(h.cache, h.seg.Base+ctrlSize); err != nil {
		return err
	}
	h.valid = true
	return nil
}

// Read copies payload bytes [off, off+len(p)) into p through the cache.
func (h *Host) Read(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > h.seg.Size {
		return fmt.Errorf("coherency: read outside segment")
	}
	if err := h.fill(); err != nil {
		return err
	}
	copy(p, h.cache[off:])
	return nil
}

// Write stores p at payload offset off in the cache (write-back: the
// device sees it at Flush/Release).
func (h *Host) Write(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > h.seg.Size {
		return fmt.Errorf("coherency: write outside segment")
	}
	if err := h.fill(); err != nil {
		return err
	}
	copy(h.cache[off:], p)
	return nil
}

// Flush writes the cached payload back to the device (clwb-equivalent
// for the whole segment).
func (h *Host) Flush() error {
	if !h.valid {
		return nil
	}
	return h.acc.WriteAt(h.cache, h.seg.Base+ctrlSize)
}

// Invalidate drops the cache; the next Read refetches from the device.
func (h *Host) Invalidate() { h.valid = false }

// Holding reports lock ownership.
func (h *Host) Holding() bool { return h.holding }

// ID returns the host index (0 or 1).
func (h *Host) ID() int { return h.id }
