package coherency_test

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cxlpmem/internal/coherency"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// coherentSetup builds an N-host coherent shared-HDM fabric over one
// small prototype card — the single fixture both the Peterson suite
// and the back-invalidate engine suite build on.
func coherentSetup(t testing.TB, hosts, cacheLines int) *topology.SharedHDM {
	t.Helper()
	s, err := topology.SetupShared(topology.SharedOptions{
		Hosts:       hosts,
		SegmentSize: 64 * units.KiB,
		Coherent:    true,
		CacheLines:  cacheLines,
		FPGA:        fpga.Options{ChannelCapacity: 4 * units.MiB},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCoherentVisibilityNoFlush is the headline upgrade over the
// Peterson model: a write on one host is visible to a reader on
// another host with no Flush, no Invalidate and no lock — the
// directory recalls the dirty line over the back-invalidate channel.
func TestCoherentVisibilityNoFlush(t *testing.T) {
	s := coherentSetup(t, 2, 64)
	h0, h1 := s.Hosts[0].Cache, s.Hosts[1].Cache

	if err := h0.Write([]byte("shared state"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if err := h1.Read(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared state" {
		t.Fatalf("remote read = %q, want %q (write invisible without flush)", got, "shared state")
	}
	if s.Directory.Stats().Writebacks.Load() == 0 {
		t.Error("remote visibility came without a snoop write-back — the data bypassed the protocol")
	}

	// And the reverse direction: h1 overwrites, h0 observes.
	if err := h1.Write([]byte("reply!"), 0); err != nil {
		t.Fatal(err)
	}
	got = got[:6]
	if err := h0.Read(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "reply!" {
		t.Fatalf("read after remote overwrite = %q, want %q", got, "reply!")
	}
}

// TestCoherentStaleCopyInvalidated pins the MESI core: a host that
// cached a line BEFORE a remote write must not keep serving the stale
// copy afterwards.
func TestCoherentStaleCopyInvalidated(t *testing.T) {
	s := coherentSetup(t, 3, 64)
	h0, h1, h2 := s.Hosts[0].Cache, s.Hosts[1].Cache, s.Hosts[2].Cache

	if err := h0.Store(0, 1); err != nil {
		t.Fatal(err)
	}
	// h1 and h2 cache the line Shared.
	for _, h := range []*coherency.CoherentCache{h1, h2} {
		if v, err := h.Load(0); err != nil || v != 1 {
			t.Fatalf("host %d initial load = %d, %v", h.ID(), v, err)
		}
	}
	inv0 := s.Directory.Stats().Invalidations.Load()
	// h0's store must invalidate BOTH shared copies before completing.
	if err := h0.Store(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.Directory.Stats().Invalidations.Load() - inv0; got < 2 {
		t.Errorf("store over 2 sharers invalidated %d copies, want >= 2", got)
	}
	for _, h := range []*coherency.CoherentCache{h1, h2} {
		if v, err := h.Load(0); err != nil || v != 2 {
			t.Fatalf("host %d load after remote store = %d, %v; want 2", h.ID(), v, err)
		}
	}
}

// TestCoherentNoLostUpdates drives every host's FetchAdd at one shared
// counter from concurrent goroutines: MESI ownership must make the
// read-modify-write atomic with no application lock — the property the
// Peterson suite needed a full mutual-exclusion protocol for.
func TestCoherentNoLostUpdates(t *testing.T) {
	const perHost = 200
	for _, hosts := range []int{2, 4} {
		s := coherentSetup(t, hosts, 64)
		var wg sync.WaitGroup
		errs := make([]error, hosts)
		for i := 0; i < hosts; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < perHost; j++ {
					if _, err := s.Hosts[i].Cache.FetchAdd(0, 1); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.Hosts[0].Cache.Load(0)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(hosts*perHost) {
			t.Errorf("%d hosts: counter = %d, want %d (lost updates)", hosts, got, hosts*perHost)
		}
	}
}

// TestCoherentEvictionPressure forces the clock hand around a tiny
// cache: every line a host writes is evicted and written back long
// before a remote reader arrives, and a reader with the same tiny
// cache must still assemble the full pattern.
func TestCoherentEvictionPressure(t *testing.T) {
	s := coherentSetup(t, 2, 4) // 4 frames vs a 64-line working set
	h0, h1 := s.Hosts[0].Cache, s.Hosts[1].Cache

	pattern := make([]byte, 64*64)
	for i := range pattern {
		pattern[i] = byte(i*7 + 3)
	}
	if err := h0.Write(pattern, 0); err != nil {
		t.Fatal(err)
	}
	if h0.Stats().Evictions.Load() == 0 || h0.Stats().Writebacks.Load() == 0 {
		t.Error("a 64-line write through 4 frames must evict and write back")
	}
	got := make([]byte, len(pattern))
	if err := h1.Read(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern) {
		t.Error("pattern corrupted crossing the coherent caches under eviction pressure")
	}
}

// TestCoherentUnalignedSpans covers the partial-line head/tail paths
// of Read/Write across hosts.
func TestCoherentUnalignedSpans(t *testing.T) {
	s := coherentSetup(t, 3, 64)
	h0, h2 := s.Hosts[0].Cache, s.Hosts[2].Cache

	payload := make([]byte, 333)
	for i := range payload {
		payload[i] = byte(i ^ 0x5A)
	}
	if err := h0.Write(payload, 41); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := h2.Read(got, 41); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("unaligned span corrupted crossing hosts")
	}
	// Bytes around the span are untouched (zero media).
	var edge [1]byte
	if err := h2.Read(edge[:], 40); err != nil {
		t.Fatal(err)
	}
	if edge[0] != 0 {
		t.Errorf("byte before span = %#x, want 0", edge[0])
	}
}

// TestCoherentValidation covers constructor and access validation.
func TestCoherentValidation(t *testing.T) {
	if _, err := topology.SetupShared(topology.SharedOptions{Hosts: 1, Coherent: true}); err == nil {
		t.Error("1-host setup accepted")
	}
	if _, err := topology.SetupShared(topology.SharedOptions{Hosts: 3}); err == nil {
		t.Error("3-host Peterson setup accepted (two-host algorithm)")
	}
	if _, err := topology.SetupShared(topology.SharedOptions{Hosts: 2, SegmentSize: 100}); err == nil {
		t.Error("unaligned segment size accepted")
	}
	s := coherentSetup(t, 2, 8)
	h := s.Hosts[0].Cache
	if err := h.Write(make([]byte, 8), s.Segment.Size); err == nil {
		t.Error("out-of-segment write accepted")
	}
	if err := h.Read(make([]byte, 8), -1); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := h.Load(3); err == nil {
		t.Error("unaligned load accepted")
	}
	if _, err := h.FetchAdd(s.Segment.Size, 1); err == nil {
		t.Error("out-of-segment fetch-add accepted")
	}
	if _, err := coherency.NewCoherentCache(0, s.Directory, s.Hosts[0].Accessor, s.Segment, 0); err == nil {
		t.Error("zero-capacity cache accepted")
	}
	if _, err := coherency.NewCoherentCache(7, s.Directory, s.Hosts[0].Accessor, s.Segment, 4); err == nil {
		t.Error("host id outside directory accepted")
	}
}

// TestCoherentSameHostConcurrency drives several goroutines on ONE
// cache (plus a contending remote host) through the upgrade and fill
// paths: same-host operations on a line are serialised by the pending
// table, so concurrent upgrades must neither share a busy pin nor
// lose increments.
func TestCoherentSameHostConcurrency(t *testing.T) {
	s := coherentSetup(t, 2, 8)
	h0, h1 := s.Hosts[0].Cache, s.Hosts[1].Cache
	const goroutines, per = 4, 100
	var wg sync.WaitGroup
	errs := make([]error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := h0.FetchAdd(0, 1); err != nil {
					errs[g] = err
					return
				}
				// Force Shared→Exclusive churn on a second line: read
				// it (Shared), then write it (upgrade).
				if _, err := h0.Load(64); err != nil {
					errs[g] = err
					return
				}
				if err := h0.Store(64, uint64(j)); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < per; j++ {
			if _, err := h1.FetchAdd(0, 1); err != nil {
				errs[goroutines] = err
				return
			}
			if _, err := h1.Load(64); err != nil { // steals Shared, forcing h0 re-upgrades
				errs[goroutines] = err
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := h1.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64((goroutines + 1) * per); got != want {
		t.Errorf("counter = %d, want %d (lost updates under same-host concurrency)", got, want)
	}
}

// failingAccessor wraps an Accessor and fails writes on demand — the
// snooped host's write-back path breaking mid-protocol.
type failingAccessor struct {
	coherency.Accessor
	fail atomic.Bool
}

func (a *failingAccessor) WriteAt(p []byte, off int64) error {
	if a.fail.Load() {
		return errors.New("injected media write failure")
	}
	return a.Accessor.WriteAt(p, off)
}

// TestSnoopWritebackFailureAborts pins the RspRetry flow: when the
// owning host cannot write its dirty line back, the conflicting
// acquire must FAIL (no grant against stale media), the owner must
// keep its line and data, and the system must recover once the fault
// clears.
func TestSnoopWritebackFailureAborts(t *testing.T) {
	s := coherentSetup(t, 2, 16)
	h0 := s.Hosts[0].Cache
	// Host 1 gets a cache over a fault-injectable accessor, replacing
	// the fixture's snooper registration.
	facc := &failingAccessor{Accessor: s.Hosts[1].Accessor}
	h1, err := coherency.NewCoherentCache(1, s.Directory, facc, s.Segment, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Switch.RegisterSnooper(s.Hosts[1].VPPB, h1); err != nil {
		t.Fatal(err)
	}

	if err := h1.Store(0, 77); err != nil {
		t.Fatal(err)
	}
	facc.fail.Store(true)
	if err := h0.Store(0, 88); err == nil {
		t.Fatal("store succeeded while the owner's write-back path is down — grant against stale media")
	}
	// The owner's copy and ownership are intact: its own hit path still
	// serves the value.
	if v, err := h1.Load(0); err != nil || v != 77 {
		t.Fatalf("owner after deferred snoop: %d, %v; want 77", v, err)
	}
	facc.fail.Store(false)
	if err := h0.Store(0, 88); err != nil {
		t.Fatalf("store after fault cleared: %v", err)
	}
	if v, err := h1.Load(0); err != nil || v != 88 {
		t.Fatalf("owner after recovery: %d, %v; want 88", v, err)
	}
}

// TestPartialSnoopSweepCommitsInvalidations pins the abort
// bookkeeping: when an exclusive sweep fails partway, the holders that
// already surrendered must come off the directory record — otherwise
// the NEXT acquire on the line snoops a host that holds nothing and
// waits forever for its release.
func TestPartialSnoopSweepCommitsInvalidations(t *testing.T) {
	s := coherentSetup(t, 3, 16)
	h0, h1, h2 := s.Hosts[0].Cache, s.Hosts[1].Cache, s.Hosts[2].Cache
	if err := h0.Store(0, 5); err != nil {
		t.Fatal(err)
	}
	// h1 and h2 become sharers.
	for _, h := range []*coherency.CoherentCache{h1, h2} {
		if _, err := h.Load(0); err != nil {
			t.Fatal(err)
		}
	}
	// Break host 2's snoop routing: unbinding its vPPB deregisters the
	// snooper, so the sweep h1-then-h2 invalidates h1 and then errors.
	if err := s.Switch.Unbind(s.Hosts[2].VPPB); err != nil {
		t.Fatal(err)
	}
	if err := h0.Store(0, 6); err == nil {
		t.Fatal("exclusive sweep succeeded with a holder unreachable")
	}
	// Restore host 2 and retry: if h1's surrender was not recorded,
	// this acquire would snoop h1, get RspMiss, and hang forever.
	if err := s.Switch.BindShared(s.Hosts[2].VPPB, "gfam"); err != nil {
		t.Fatal(err)
	}
	if err := s.Switch.RegisterSnooper(s.Hosts[2].VPPB, h2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- h0.Store(0, 7)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("store after sweep recovery: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("store hung: aborted sweep left a stale holder record")
	}
	for _, h := range []*coherency.CoherentCache{h1, h2} {
		if v, err := h.Load(0); err != nil || v != 7 {
			t.Fatalf("host %d after recovery: %d, %v; want 7", h.ID(), v, err)
		}
	}
}

// TestCoherentHitZeroAlloc is the acceptance guard: cache hits must not
// touch the heap — the pooled line frames absorb all staging.
func TestCoherentHitZeroAlloc(t *testing.T) {
	s := coherentSetup(t, 2, 64)
	h := s.Hosts[0].Cache
	if err := h.Store(0, 42); err != nil {
		t.Fatal(err)
	}
	var buf [64]byte
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := h.Load(0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Load hit allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := h.Store(0, 7); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Store hit allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := h.Read(buf[:], 0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Read hit allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkCoherentHit measures the cache-hit fast path (the
// acceptance bound: <= 1/10 of the uncached shared-HDM read measured
// by BenchmarkSharedUncachedRead).
func BenchmarkCoherentHit(b *testing.B) {
	s := coherentSetup(b, 2, 64)
	h := s.Hosts[0].Cache
	if err := h.Store(0, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Load(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedUncachedRead is the comparison baseline: one 64-byte
// line read through the raw shared window (what every access costs
// without the coherent cache).
func BenchmarkSharedUncachedRead(b *testing.B) {
	s := coherentSetup(b, 2, 64)
	var line [64]byte
	base := s.Hosts[0].WindowBase
	rp := s.Hosts[0].Port
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rp.ReadLine(base, &line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoherentPingPong measures the full back-invalidate round
// trip: two hosts alternately writing one line, every write a snoop +
// write-back + invalidate + refill.
func BenchmarkCoherentPingPong(b *testing.B) {
	s := coherentSetup(b, 2, 64)
	h0, h1 := s.Hosts[0].Cache, s.Hosts[1].Cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h0.Store(0, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := h1.Store(0, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoherentFetchAdd measures the contended atomic
// read-modify-write from 4 hosts.
func BenchmarkCoherentFetchAdd(b *testing.B) {
	s := coherentSetup(b, 4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/4 + 1
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := s.Hosts[i].Cache.FetchAdd(0, 1); err != nil {
					b.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// BenchmarkCoherentSnoopStorm scales the worst case: N hosts all
// fetch-adding ONE line, every operation a full snoop + write-back +
// invalidate + refill of the same 64 bytes (the EXPERIMENTS.md §2e
// scaling table).
func BenchmarkCoherentSnoopStorm(b *testing.B) {
	for _, hosts := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "hosts=2", 4: "hosts=4", 8: "hosts=8"}[hosts], func(b *testing.B) {
			s := coherentSetup(b, hosts, 64)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/hosts + 1
			for i := 0; i < hosts; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						if _, err := s.Hosts[i].Cache.FetchAdd(0, 1); err != nil {
							b.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

// BenchmarkPetersonRoundTrip is the comparison baseline from the
// paper's model: one full application-coherency critical section
// (Acquire spin over device words, cached read+write, Flush + release
// write-backs) on an uncontended lock.
func BenchmarkPetersonRoundTrip(b *testing.B) {
	s, err := topology.SetupShared(topology.SharedOptions{
		Hosts:       2,
		SegmentSize: 4096,
		FPGA:        fpga.Options{ChannelCapacity: 4 * units.MiB},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Hosts[0].Peterson
	var word [8]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Acquire(); err != nil {
			b.Fatal(err)
		}
		if err := h.Read(word[:], 0); err != nil {
			b.Fatal(err)
		}
		word[0]++
		if err := h.Write(word[:], 0); err != nil {
			b.Fatal(err)
		}
		if err := h.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDirectorySweepRecallsAllCopies drives the RAS re-homing hook: a
// sweep must flush the dirty owner, invalidate every shared copy, and
// leave the directory empty so the segment's bytes can migrate.
func TestDirectorySweepRecallsAllCopies(t *testing.T) {
	s := coherentSetup(t, 3, 64)
	h0, h1, h2 := s.Hosts[0].Cache, s.Hosts[1].Cache, s.Hosts[2].Cache

	// Line 0: dirty exclusive at h0. Line 1: shared at h1 and h2.
	if err := h0.Store(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := h0.Store(64, 9); err != nil {
		t.Fatal(err)
	}
	for _, h := range []*coherency.CoherentCache{h1, h2} {
		if v, err := h.Load(64); err != nil || v != 9 {
			t.Fatalf("host %d priming load = %d, %v", h.ID(), v, err)
		}
	}

	wb0 := s.Directory.Stats().Writebacks.Load()
	recalled, err := s.Directory.SweepAll()
	if err != nil {
		t.Fatalf("SweepAll: %v", err)
	}
	if recalled < 2 {
		t.Fatalf("sweep recalled %d lines, want >= 2", recalled)
	}
	if s.Directory.Stats().Writebacks.Load() == wb0 {
		t.Error("sweep recalled a dirty owner without a write-back")
	}
	// Every entry settled invalid: an immediate second sweep finds
	// nothing cached.
	if again, err := s.Directory.SweepAll(); err != nil || again != 0 {
		t.Fatalf("second sweep recalled %d lines (%v), want 0", again, err)
	}
	// The swept data survived and the protocol still runs: re-faulting
	// hosts read the flushed values.
	if v, err := h2.Load(0); err != nil || v != 7 {
		t.Fatalf("post-sweep load = %d, %v; want 7", v, err)
	}
	if v, err := h0.Load(64); err != nil || v != 9 {
		t.Fatalf("post-sweep load = %d, %v; want 9", v, err)
	}
}

// TestWritebackAllFlushesDirtyLines: an explicit writeback pass (the
// hook RAS evacuation uses before sweeping a region) downgrades every
// Modified frame to Exclusive with its bytes on media, so a subsequent
// directory sweep recalls only clean copies.
func TestWritebackAllFlushesDirtyLines(t *testing.T) {
	s := coherentSetup(t, 2, 64)
	h0 := s.Hosts[0].Cache
	if h0.ID() != 0 {
		t.Fatalf("host 0 cache ID = %d", h0.ID())
	}
	if got, want := s.Directory.Lines(), uint64(1024); got != want { // 64 KiB segment

		t.Fatalf("directory tracks %d lines, want %d", got, want)
	}
	for i := 0; i < 4; i++ {
		if err := h0.Store(int64(i*64), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Directory.Stats().Writebacks.Load()
	wb := h0.Stats().Writebacks.Load()
	if err := h0.WritebackAll(); err != nil {
		t.Fatal(err)
	}
	if got := h0.Stats().Writebacks.Load(); got != wb+4 {
		t.Fatalf("writebacks after flush = %d, want %d", got, wb+4)
	}
	// The lines are clean now: a full sweep recalls them without any
	// further write-back traffic from the hosts.
	if _, err := s.Directory.SweepAll(); err != nil {
		t.Fatal(err)
	}
	if got := s.Directory.Stats().Writebacks.Load(); got != before {
		t.Fatalf("sweep of clean lines forced %d directory writebacks", got-before)
	}
	// And the flushed values are durable on media.
	if v, err := s.Hosts[1].Cache.Load(64); err != nil || v != 2 {
		t.Fatalf("Load after flush = %d, %v", v, err)
	}
}
