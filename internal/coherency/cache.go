package coherency

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"cxlpmem/internal/cxl"
)

// lineBytes is the coherence granule: one CXL.mem cache line.
const lineBytes = uint64(cxl.LineSize)

// NewMemIOAccessor adapts any cxl.MemIO data path to the Accessor
// interface at base-relative offsets. Line-aligned full-line transfers
// — the shape of every coherent-cache fill and write-back — take the
// CXL.mem line path (ReadLine/WriteLine); everything else falls back to
// the byte path. Every shared-HDM attachment (topology.SetupShared, the
// cluster's coherent segment) uses this one adapter.
func NewMemIOAccessor(io cxl.MemIO, base uint64) Accessor {
	return &memioAccessor{io: io, base: int64(base)}
}

// NewPortAccessor adapts a host's root port to the Accessor interface.
//
// Deprecated: a RootPort is a cxl.MemIO; use NewMemIOAccessor, which
// also accepts interleave sets and device adapters.
func NewPortAccessor(rp *cxl.RootPort, base uint64) Accessor {
	return NewMemIOAccessor(rp, base)
}

type memioAccessor struct {
	io   cxl.MemIO
	base int64
}

func (a *memioAccessor) ReadAt(p []byte, off int64) error {
	abs := a.base + off
	if len(p) == cxl.LineSize && abs%int64(cxl.LineSize) == 0 {
		return a.io.ReadLine(uint64(abs), (*[cxl.LineSize]byte)(p))
	}
	return a.io.ReadAt(p, abs)
}

func (a *memioAccessor) WriteAt(p []byte, off int64) error {
	abs := a.base + off
	if len(p) == cxl.LineSize && abs%int64(cxl.LineSize) == 0 {
		return a.io.WriteLine(uint64(abs), (*[cxl.LineSize]byte)(p))
	}
	return a.io.WriteAt(p, abs)
}

// victimPool recycles victim-line staging buffers so the miss path
// stays allocation-free in steady state (see fill).
var victimPool = sync.Pool{New: func() any { return new([cxl.LineSize]byte) }}

// Host-side cache states. The order matters: a state >= csExclusive
// permits silent stores (csExclusive upgrades to csModified without a
// directory round trip, real MESI's silent E→M transition).
const (
	csInvalid uint8 = iota
	csShared
	csExclusive
	csModified
)

// lineFrame is one pooled cache-line frame. Frames are allocated once
// at construction and recycled by clock eviction, so the hit path and
// the steady-state miss path never touch the heap.
type lineFrame struct {
	line  uint64
	state uint8
	// ref is the clock-eviction reference bit.
	ref bool
	// busy pins the frame while a miss fill or a Shared→Exclusive
	// upgrade is in flight: the clock hand skips it and same-host
	// operations on its line wait on the cache cond.
	busy bool
	data [cxl.LineSize]byte
}

// CacheStats counts coherent-cache activity.
type CacheStats struct {
	Hits       atomic.Int64
	Misses     atomic.Int64
	Evictions  atomic.Int64
	Writebacks atomic.Int64
	// Upgrades counts Shared→Exclusive promotions.
	Upgrades atomic.Int64
	// SnoopsServed counts BISnp messages handled; SnoopWritebacks the
	// subset that flushed dirty data.
	SnoopsServed    atomic.Int64
	SnoopWritebacks atomic.Int64
}

// CoherentCache is one host's write-back cached view of a shared
// segment under hardware (directory) coherence — the successor of the
// Peterson Host: loads and stores are transparent, with no Acquire/
// Release/Flush/Invalidate discipline. It implements cxl.Snooper so the
// switch can deliver the directory's back-invalidate snoops.
//
// Locking: mu guards the frame table and is the leaf lock of the whole
// engine. Operations NEVER hold mu while calling into the directory
// (miss fills and upgrades release it first), while snoop delivery
// takes only mu — so the directory's per-line serialisation can always
// reach a host, whatever its own operations are blocked on. See
// DESIGN.md §2e for the full ordering argument.
type CoherentCache struct {
	id  int
	dir *Directory
	acc Accessor
	seg Segment

	mu   sync.Mutex
	cond *sync.Cond
	// lines maps a segment line index to its frame.
	lines map[uint64]int32
	// pending maps line indices whose miss fill is in flight to the
	// claimed frame; same-host operations on those lines wait on cond
	// until the fill lands (snoops consult grantHeld instead).
	pending map[uint64]int32
	// evicting marks lines whose victim write-back + directory release
	// are in flight. Same-host operations on such a line wait until the
	// release lands: re-acquiring it earlier would let the stale
	// release erase the fresh grant afterwards (the directory cannot
	// tell the two apart). Remote snoops do NOT wait here: they answer
	// RspMiss and the directory waits for the release, which is
	// exactly the eviction-race protocol.
	evicting map[uint64]bool
	// grantHeld marks lines for which this host holds a settled but
	// not-yet-consumed directory grant (set inside the directory's
	// settle via grantSettled; consumed by the fill/upgrade that
	// requested it). It plays two roles:
	//
	//   - a snoop for an UNMAPPED line may wait only when grantHeld is
	//     set — the fill holding the grant completes without further
	//     directory traffic. A grant-less pending fill (stale-snapshot
	//     snoop) must be answered RspMiss: it is parked on the very
	//     in-flight slot the snooper holds, and waiting would deadlock;
	//   - a snoop for a MAPPED line clears the flag: a conflicting
	//     transaction serialized AFTER our settle has revoked or
	//     downgraded the grant before we consumed it. The upgrade path
	//     re-checks the flag after re-locking and retries from scratch
	//     when it is gone — without this, a revoked upgrade would
	//     promote itself to Exclusive while the directory records
	//     another owner.
	grantHeld map[uint64]bool
	frames    []lineFrame
	hand      int

	stats CacheStats
}

// NewCoherentCache builds host id's cached view of the shared segment
// reached through acc (the host's root-port window accessor; the
// segment payload starts at seg.Base in that address space). capLines
// is the cache capacity in 64-byte lines.
func NewCoherentCache(id int, dir *Directory, acc Accessor, seg Segment, capLines int) (*CoherentCache, error) {
	if dir == nil {
		return nil, fmt.Errorf("coherency: nil directory")
	}
	if acc == nil {
		return nil, fmt.Errorf("coherency: nil accessor")
	}
	if id < 0 || id >= dir.Hosts() {
		return nil, fmt.Errorf("coherency: host id %d outside directory's 0..%d", id, dir.Hosts()-1)
	}
	if capLines < 1 {
		return nil, fmt.Errorf("coherency: cache capacity %d lines, want >= 1", capLines)
	}
	if seg.Size != dir.seg.Size || seg.Base != dir.seg.Base {
		return nil, fmt.Errorf("coherency: cache segment %+v does not match directory segment %+v", seg, dir.seg)
	}
	c := &CoherentCache{
		id:        id,
		dir:       dir,
		acc:       acc,
		seg:       seg,
		lines:     make(map[uint64]int32, capLines),
		pending:   make(map[uint64]int32),
		evicting:  make(map[uint64]bool),
		grantHeld: make(map[uint64]bool),
		frames:    make([]lineFrame, capLines),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// ID returns the host index.
func (c *CoherentCache) ID() int { return c.id }

// grantSettled implements grantSink: the directory calls it inside its
// settle critical section, atomically with this host becoming a
// recorded holder of the line — so any snoop that observes the new
// record also observes grantHeld and waits for the install.
func (c *CoherentCache) grantSettled(line uint64) {
	c.mu.Lock()
	c.grantHeld[line] = true
	c.mu.Unlock()
}

// Stats exposes the cache counters.
func (c *CoherentCache) Stats() *CacheStats { return &c.stats }

// lineOff is the accessor-space byte offset of a segment line.
func (c *CoherentCache) lineOff(line uint64) int64 {
	return c.seg.Base + int64(line*lineBytes)
}

// victimLocked claims a frame by clock sweep, skipping busy frames and
// second-chancing referenced ones; callers hold c.mu. Blocks when every
// frame is pinned by an in-flight fill or upgrade.
func (c *CoherentCache) victimLocked() int32 {
	for {
		for scanned := 0; scanned < 2*len(c.frames); scanned++ {
			fr := &c.frames[c.hand]
			idx := int32(c.hand)
			c.hand = (c.hand + 1) % len(c.frames)
			if fr.busy {
				continue
			}
			if fr.state != csInvalid && fr.ref {
				fr.ref = false
				continue
			}
			return idx
		}
		c.cond.Wait()
	}
}

// acquireLine returns the frame holding the line, with c.mu HELD and
// the host's coherence state sufficient for the access (Shared for
// reads; Exclusive or Modified for writes — the caller marks the frame
// Modified after mutating it). On success the caller must unlock c.mu
// when done with the frame; on error the lock is already released. The
// hit path — the common case — takes the lock, one map probe, and
// returns: zero allocations, no directory traffic.
func (c *CoherentCache) acquireLine(line uint64, excl bool) (*lineFrame, error) {
	c.mu.Lock()
	for {
		if c.evicting[line] {
			// Our own victim release for this line is in flight: wait
			// for it to land before touching the line again (see the
			// evicting field).
			c.cond.Wait()
			continue
		}
		if idx, ok := c.lines[line]; ok {
			fr := &c.frames[idx]
			if !excl || fr.state >= csExclusive {
				fr.ref = true
				c.stats.Hits.Add(1)
				return fr, nil
			}
			// Shared copy, write intent: upgrade. The pending entry
			// serialises same-host operations on the line (a second
			// upgrader waits below instead of sharing the busy pin);
			// the busy bit pins the frame against eviction while we go
			// to the directory without the lock. Remote snoops are NOT
			// blocked: the line is still in the table, so HandleBISnp
			// acts on the frame directly.
			if _, ok := c.pending[line]; ok {
				c.cond.Wait()
				continue
			}
			c.pending[line] = idx
			fr.busy = true
			c.mu.Unlock()
			// The sink marks grantHeld inside the settle; any snoop of
			// this line processed after the settle clears it again
			// (revocation), so on re-lock the flag tells us whether the
			// grant is still ours to consume.
			err := c.dir.acquireExclusive(c.id, line, c)
			c.mu.Lock()
			fr.busy = false
			delete(c.pending, line)
			granted := c.grantHeld[line]
			delete(c.grantHeld, line)
			c.cond.Broadcast()
			if err != nil {
				c.mu.Unlock()
				return nil, err
			}
			if !granted {
				// A conflicting transaction serialized after our settle
				// and snooped the grant away (SnpInv revocation or
				// SnpData downgrade) before we could consume it. We hold
				// no exclusivity — start the whole operation over.
				continue
			}
			if i2, ok := c.lines[line]; ok {
				if i2 == idx && fr.state != csInvalid {
					// Grant intact and the copy untouched: we own it.
					fr.state = csExclusive
					fr.ref = true
					c.stats.Upgrades.Add(1)
					return fr, nil
				}
				continue // reinstalled in another frame meanwhile
			}
			// A concurrent remote exclusive won the line slot first and
			// its SnpInv dropped our copy BEFORE our acquire settled
			// (the grant itself is intact — a post-settle snoop would
			// have cleared it above); the directory records us as owner
			// but we hold no data. Refill with the grant in hand.
			if fr2, err := c.fill(line, excl, false); err != nil || fr2 != nil {
				return fr2, err
			}
			continue
		}
		if _, ok := c.pending[line]; ok {
			c.cond.Wait()
			continue
		}
		// Miss: acquire from the directory, then fill.
		if fr, err := c.fill(line, excl, true); err != nil || fr != nil {
			return fr, err
		}
	}
}

// fill runs the miss path for a line: claims a victim frame, evicts it
// (dirty write-back through this host's port, then a directory
// release), acquires the requested grant when acquire is true (the
// upgrade-race path arrives with the grant already held), fills the
// frame from the media and installs it. Called with c.mu held; the
// directory and media round trips run unlocked. Returns with c.mu held
// unless err != nil (then the lock is released). A nil frame with nil
// error means the line was installed by a concurrent same-host
// operation while this one waited for a free frame — the caller
// retries.
func (c *CoherentCache) fill(line uint64, excl, acquire bool) (*lineFrame, error) {
	// Register the pending entry BEFORE hunting for a frame: if this is
	// the upgrade-race refill (grant already held), the directory may
	// snoop us for this line at any moment, and victimLocked can drop
	// the lock while it waits — the line must stay discoverable (the
	// snoop then blocks until the install) or the handler would answer
	// RspMiss and the directory would wait for a release that never
	// comes. The placeholder index is updated once the frame is known.
	c.pending[line] = -1
	if !acquire {
		c.grantHeld[line] = true // upgrade-race refill: grant in hand
	}
	idx := c.victimLocked()
	if _, ok := c.lines[line]; ok {
		delete(c.pending, line)
		delete(c.grantHeld, line)
		c.cond.Broadcast()
		return nil, nil // installed while waiting for a frame
	}
	fr := &c.frames[idx]
	victim, vstate := fr.line, fr.state
	// The victim snapshot stages through a pooled buffer: a local array
	// would escape through the accessor interface and put an allocation
	// on every miss.
	vdata := victimPool.Get().(*[cxl.LineSize]byte)
	defer victimPool.Put(vdata)
	if vstate == csModified {
		*vdata = fr.data
	}
	if vstate != csInvalid {
		delete(c.lines, victim)
		// The victim's write-back + directory release run unlocked
		// below; same-host operations on it must wait for the release
		// to land (acquireLine's evicting check) or a stale release
		// could erase their fresh grant.
		c.evicting[victim] = true
		c.stats.Evictions.Add(1)
	}
	fr.state = csInvalid
	fr.busy = true
	c.pending[line] = idx
	c.stats.Misses.Add(1)
	c.mu.Unlock()

	granted, err := c.evictAndFill(fr, line, victim, vstate, vdata[:], excl, acquire)

	c.mu.Lock()
	delete(c.pending, line)
	delete(c.grantHeld, line)
	if vstate != csInvalid {
		delete(c.evicting, victim) // release landed inside evictAndFill
	}
	fr.busy = false
	c.cond.Broadcast()
	if err != nil {
		c.mu.Unlock()
		if granted {
			// We hold a grant for a line we could not fill: hand it
			// back, or the directory would wait forever for our release
			// the next time the line is snooped.
			_ = c.dir.Release(c.id, line)
		}
		return nil, err
	}
	fr.line = line
	if excl {
		fr.state = csExclusive
	} else {
		fr.state = csShared
	}
	fr.ref = true
	c.lines[line] = idx
	return fr, nil
}

// evictAndFill is the unlocked body of the miss path: victim
// write-back, victim release, grant acquisition, media fill. granted
// reports whether the caller holds a directory grant for line on
// return (the caller must release it if the fill failed).
func (c *CoherentCache) evictAndFill(fr *lineFrame, line, victim uint64, vstate uint8, vdata []byte, excl, acquire bool) (granted bool, err error) {
	granted = !acquire // the upgrade-race path arrives with the grant held
	if vstate == csModified {
		if werr := c.acc.WriteAt(vdata, c.lineOff(victim)); werr != nil {
			// The victim's bytes are lost to this error; release anyway
			// so the directory does not wait forever for a write-back
			// that will never land. The caller sees the error.
			_ = c.dir.Release(c.id, victim)
			return granted, werr
		}
		c.stats.Writebacks.Add(1)
	}
	if vstate != csInvalid {
		if rerr := c.dir.Release(c.id, victim); rerr != nil {
			return granted, rerr
		}
	}
	if acquire {
		// The sink flags grantHeld[line] inside the directory's settle,
		// atomically with this host becoming a recorded holder — a
		// snoop observing the new record is guaranteed to find the flag
		// and wait for the install instead of answering RspMiss.
		if excl {
			err = c.dir.acquireExclusive(c.id, line, c)
		} else {
			err = c.dir.acquireShared(c.id, line, c)
		}
		if err != nil {
			return false, err
		}
		granted = true
	}
	return granted, c.acc.ReadAt(fr.data[:], c.lineOff(line))
}

// checkRange validates a payload access.
func (c *CoherentCache) checkRange(n int, off int64) error {
	if off < 0 || off+int64(n) > c.seg.Size {
		return fmt.Errorf("coherency: host %d: access [%d,%d) outside segment of %d bytes", c.id, off, off+int64(n), c.seg.Size)
	}
	return nil
}

// Read copies payload bytes [off, off+len(p)) into p through the
// coherent cache. No prior Acquire or Invalidate is needed: remote
// writes are visible as soon as they complete, enforced by the
// directory.
func (c *CoherentCache) Read(p []byte, off int64) error {
	if err := c.checkRange(len(p), off); err != nil {
		return err
	}
	for len(p) > 0 {
		line := uint64(off) / lineBytes
		lo := int(uint64(off) % lineBytes)
		n := int(lineBytes) - lo
		if n > len(p) {
			n = len(p)
		}
		fr, err := c.acquireLine(line, false)
		if err != nil {
			return err
		}
		copy(p[:n], fr.data[lo:lo+n])
		c.mu.Unlock()
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// Write stores p at payload offset off through the coherent cache
// (write-back: the media sees it on eviction or when another host's
// access snoops it out).
func (c *CoherentCache) Write(p []byte, off int64) error {
	if err := c.checkRange(len(p), off); err != nil {
		return err
	}
	for len(p) > 0 {
		line := uint64(off) / lineBytes
		lo := int(uint64(off) % lineBytes)
		n := int(lineBytes) - lo
		if n > len(p) {
			n = len(p)
		}
		fr, err := c.acquireLine(line, true)
		if err != nil {
			return err
		}
		copy(fr.data[lo:lo+n], p[:n])
		fr.state = csModified
		c.mu.Unlock()
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// Load returns the 8-byte little-endian word at payload offset off
// (must be 8-byte aligned, so it sits within one line).
func (c *CoherentCache) Load(off int64) (uint64, error) {
	if off%8 != 0 {
		return 0, fmt.Errorf("coherency: host %d: unaligned load at %d", c.id, off)
	}
	if err := c.checkRange(8, off); err != nil {
		return 0, err
	}
	line := uint64(off) / lineBytes
	lo := uint64(off) % lineBytes
	fr, err := c.acquireLine(line, false)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(fr.data[lo:])
	c.mu.Unlock()
	return v, nil
}

// Store writes the 8-byte little-endian word at payload offset off.
func (c *CoherentCache) Store(off int64, v uint64) error {
	if off%8 != 0 {
		return fmt.Errorf("coherency: host %d: unaligned store at %d", c.id, off)
	}
	if err := c.checkRange(8, off); err != nil {
		return err
	}
	line := uint64(off) / lineBytes
	lo := uint64(off) % lineBytes
	fr, err := c.acquireLine(line, true)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(fr.data[lo:], v)
	fr.state = csModified
	c.mu.Unlock()
	return nil
}

// FetchAdd atomically adds delta to the word at payload offset off and
// returns the new value. Atomicity across hosts comes from MESI
// ownership: the read-modify-write runs under the cache lock with the
// line held Modified, and no other host can touch the line without a
// snoop, which needs that same lock — the software shape of a LOCK ADD
// holding the line in M state.
func (c *CoherentCache) FetchAdd(off int64, delta uint64) (uint64, error) {
	if off%8 != 0 {
		return 0, fmt.Errorf("coherency: host %d: unaligned fetch-add at %d", c.id, off)
	}
	if err := c.checkRange(8, off); err != nil {
		return 0, err
	}
	line := uint64(off) / lineBytes
	lo := uint64(off) % lineBytes
	fr, err := c.acquireLine(line, true)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(fr.data[lo:]) + delta
	binary.LittleEndian.PutUint64(fr.data[lo:], v)
	fr.state = csModified
	c.mu.Unlock()
	return v, nil
}

// WritebackAll flushes every dirty line to the media and downgrades it
// to Exclusive, releasing nothing. It is NOT part of the coherence
// contract (remote readers never need it) — it exists for orderly
// shutdown and for tests that inspect raw media.
func (c *CoherentCache) WritebackAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for idx := range c.frames {
		fr := &c.frames[idx]
		if fr.state != csModified {
			continue
		}
		if err := c.acc.WriteAt(fr.data[:], c.lineOff(fr.line)); err != nil {
			return err
		}
		fr.state = csExclusive
		c.stats.Writebacks.Add(1)
	}
	return nil
}

// HandleBISnp implements cxl.Snooper: the directory recalling a line.
// Dirty data is written back through this host's own port BEFORE the
// response is sent (the BIRsp carries state only, like real CXL 3.0).
// A line whose miss fill is still in flight blocks the snoop until the
// fill installs; a line this cache no longer holds answers RspMiss —
// if a victim write-back is in flight the directory waits for the
// matching Release, which this cache issues only after the write-back
// reached the media.
func (c *CoherentCache) HandleBISnp(req cxl.BISnp) cxl.BIRsp {
	c.stats.SnoopsServed.Add(1)
	rel := req.Addr - uint64(c.seg.Base)
	line := rel / lineBytes
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if idx, ok := c.lines[line]; ok {
			// This snoop was serialized after whatever transaction last
			// granted us the line: if an upgrade's settled grant is
			// still unconsumed, it is hereby revoked/downgraded — clear
			// the flag so the upgrade retries instead of assuming
			// exclusivity the directory no longer records (a mapped
			// line's grantHeld can only belong to an upgrade; fills run
			// only for unmapped lines).
			delete(c.grantHeld, line)
			fr := &c.frames[idx]
			dirty := fr.state == csModified
			if dirty {
				if err := c.acc.WriteAt(fr.data[:], c.lineOff(line)); err != nil {
					// The write-back failed: keep the line, keep the
					// data, and tell the directory to abort the
					// conflicting grant (RspRetry) — our record and our
					// cache stay consistent, and the requester sees the
					// conflict as an error instead of reading stale
					// media.
					return cxl.BIRsp{Opcode: cxl.RspRetry}
				}
				c.stats.SnoopWritebacks.Add(1)
			}
			if req.Opcode == cxl.SnpInv {
				delete(c.lines, line)
				fr.state = csInvalid
				c.cond.Broadcast()
				return cxl.BIRsp{Opcode: cxl.RspIHit, Dirty: dirty}
			}
			fr.state = csShared
			return cxl.BIRsp{Opcode: cxl.RspSHit, Dirty: dirty}
		}
		if c.grantHeld[line] {
			// Fill in flight WITH its directory grant: it completes
			// without further directory traffic — wait for the install,
			// then act on the fresh frame. A grant-less pending fill
			// (stale-snapshot snoop) must NOT be waited on: it is
			// parked on the in-flight slot our snooper holds; RspMiss
			// is the truthful answer — this host holds nothing.
			c.cond.Wait()
			continue
		}
		return cxl.BIRsp{Opcode: cxl.RspMiss}
	}
}
