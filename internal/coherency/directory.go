// Directory-based hardware coherence for shared HDM — the CXL 3.0
// successor of this package's Peterson discipline. The Type-3 device
// (or the MLD partition exposing the shared segment) owns a per-line
// MESI directory: every 64-byte line records which hosts cache it and
// in what state. Before a conflicting access is granted, the directory
// recalls the line from its current holders over the back-invalidate
// channel (cxl.BISnp/cxl.BIRsp), routed upstream through the switch —
// so applications get transparent load/store semantics with no explicit
// flush or invalidate, which is exactly what the paper's §2.2
// configuration lacks and CXL 3.0 adds.
package coherency

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cxlpmem/internal/cxl"
)

// MaxCoherentHosts bounds the directory's sharer bitmask width.
const MaxCoherentHosts = 16

// SnoopPort routes a back-invalidate snoop to the host behind a vPPB.
// *cxl.Switch implements it; the directory never talks to a host cache
// directly, so the snoop traffic is observable at the fabric like any
// other CXL message.
type SnoopPort interface {
	Snoop(vppb string, req cxl.BISnp) (cxl.BIRsp, error)
}

// DirStats counts directory activity.
type DirStats struct {
	// SharedGrants and ExclusiveGrants count successful acquires.
	SharedGrants    atomic.Int64
	ExclusiveGrants atomic.Int64
	// Snoops counts BISnp messages issued; Writebacks counts snoops
	// whose response reported dirty data written back.
	Snoops     atomic.Int64
	Writebacks atomic.Int64
	// Downgrades counts owners moved M/E -> S; Invalidations counts
	// copies dropped by SnpInv.
	Downgrades    atomic.Int64
	Invalidations atomic.Int64
	// MissWaits counts snoops that raced a victim eviction: the host
	// answered RspMiss and the directory waited for its release.
	MissWaits atomic.Int64
	// Releases counts voluntary releases (evictions).
	Releases atomic.Int64
	// SnoopTimeouts counts RspMiss waits that exceeded the snoop
	// deadline: the evicting host never released (dead or wedged).
	SnoopTimeouts atomic.Int64
	// ForcedInvalidations counts holders removed from the record
	// without a clean handshake — a dead sharer force-invalidated after
	// a snoop timeout or an unreachable snooper. The host's cached (and
	// possibly dirty) copy is sacrificed to keep the directory live.
	ForcedInvalidations atomic.Int64
}

// dirLine is one line's directory entry: a sharer bitmask plus the
// exclusive owner (-1 when none). A line is in exactly one of three
// directory states: invalid (no bits, no owner), shared (bits, no
// owner), exclusive (owner, no bits). The owner's host-side state may
// be Exclusive or Modified — the directory cannot tell (silent E→M
// upgrade, as in real MESI), so it always snoops before a conflicting
// grant.
type dirLine struct {
	sharers uint16
	owner   int8
}

// Directory is the device-side coherence engine for one shared
// segment.
type Directory struct {
	fabric SnoopPort
	// vppbs maps host IDs to the switch vPPBs their snoopers sit
	// behind.
	vppbs []string
	seg   Segment

	mu   sync.Mutex
	cond *sync.Cond
	// lines holds one entry per 64-byte line of the segment.
	lines []dirLine
	// inflight serialises transactions per line: at most one acquire
	// may be snooping/granting a given line at a time (the
	// inflight-snoop table). Releases never wait on it — that is the
	// deadlock-avoidance ordering, see DESIGN.md §2e.
	inflight map[uint64]bool

	stats DirStats
	tag   atomic.Uint32
	// snoopDelay, when set, runs before every snoop is issued — test
	// hook for widening the race windows linearizability tests probe.
	snoopDelay atomic.Pointer[func()]
	// snoopTimeoutNs bounds the RspMiss release wait; forceInv enables
	// force-invalidating unreachable holders. See SetRecovery.
	snoopTimeoutNs atomic.Int64
	forceInv       atomic.Bool
}

// SetRecovery configures the directory's dead-holder policy. timeout
// (when > 0) bounds how long a snoop waits for a RspMiss holder's
// release before force-removing it from the record; forceInvalidate
// additionally converts unreachable-snooper fabric errors (a mangled or
// lost BISnp, a detached host) into forced invalidations instead of
// failed grants. Both default off: an unconfigured directory waits
// forever and surfaces fabric errors, exactly as before. Forcing a
// holder out sacrifices that host's cached — possibly dirty — copy;
// the directory stays live and every other host keeps coherent
// semantics, which is the availability trade a dead sharer forces.
func (d *Directory) SetRecovery(timeout time.Duration, forceInvalidate bool) {
	d.snoopTimeoutNs.Store(int64(timeout))
	d.forceInv.Store(forceInvalidate)
}

// NewDirectory builds the directory for a segment shared by the hosts
// behind the given vPPBs (host ID i snoops through vppbs[i]).
func NewDirectory(seg Segment, fabric SnoopPort, vppbs []string) (*Directory, error) {
	if fabric == nil {
		return nil, fmt.Errorf("coherency: nil snoop fabric")
	}
	if len(vppbs) < 2 || len(vppbs) > MaxCoherentHosts {
		return nil, fmt.Errorf("coherency: %d hosts outside 2..%d", len(vppbs), MaxCoherentHosts)
	}
	if seg.Size <= 0 || seg.Size%int64(lineBytes) != 0 {
		return nil, fmt.Errorf("coherency: segment size %d not a positive multiple of %d", seg.Size, lineBytes)
	}
	d := &Directory{
		fabric:   fabric,
		vppbs:    append([]string(nil), vppbs...),
		seg:      seg,
		lines:    make([]dirLine, seg.Size/int64(lineBytes)),
		inflight: make(map[uint64]bool),
	}
	for i := range d.lines {
		d.lines[i].owner = -1
	}
	d.cond = sync.NewCond(&d.mu)
	return d, nil
}

// Hosts returns the number of hosts attached to the directory.
func (d *Directory) Hosts() int { return len(d.vppbs) }

// Lines returns the number of 64-byte lines the directory tracks.
func (d *Directory) Lines() uint64 { return uint64(len(d.lines)) }

// Stats exposes the directory counters.
func (d *Directory) Stats() *DirStats { return &d.stats }

// SetSnoopDelay installs (or with nil removes) a hook run before every
// snoop is issued. Tests inject random delays here to widen the windows
// between snoop, write-back and grant.
func (d *Directory) SetSnoopDelay(f func()) {
	if f == nil {
		d.snoopDelay.Store(nil)
		return
	}
	d.snoopDelay.Store(&f)
}

func (d *Directory) checkReq(host int, line uint64) error {
	if host < 0 || host >= len(d.vppbs) {
		return fmt.Errorf("coherency: directory: host %d outside 0..%d", host, len(d.vppbs)-1)
	}
	if line >= uint64(len(d.lines)) {
		return fmt.Errorf("coherency: directory: line %d outside segment (%d lines)", line, len(d.lines))
	}
	return nil
}

// grantSink is notified the moment an acquire settles, INSIDE the
// directory's critical section — atomically with the host becoming a
// recorded holder. The coherent cache uses it to flag its pending fill
// as grant-holding before any snoop can observe the new record;
// without that atomicity a snoop could land in the gap between the
// settle and the host noticing its own grant, answer RspMiss, and
// leave the snooper waiting for a release that never comes.
type grantSink interface {
	grantSettled(line uint64)
}

// claimLine blocks until no other transaction is in flight on the line,
// then marks it in flight and returns a snapshot of its state. Caller
// must pair with settleLine.
func (d *Directory) claimLine(line uint64) dirLine {
	d.mu.Lock()
	for d.inflight[line] {
		d.cond.Wait()
	}
	d.inflight[line] = true
	st := d.lines[line]
	d.mu.Unlock()
	return st
}

// settleLine publishes the grant and releases the in-flight slot. The
// sink, when non-nil, is notified under d.mu (it takes the host's
// cache lock; the d.mu -> cache-lock order is safe because no path
// acquires d.mu while holding a cache lock).
func (d *Directory) settleLine(line uint64, sink grantSink, mutate func(*dirLine)) {
	d.mu.Lock()
	mutate(&d.lines[line])
	if sink != nil {
		sink.grantSettled(line)
	}
	delete(d.inflight, line)
	d.cond.Broadcast()
	d.mu.Unlock()
}

// snoop routes one back-invalidate message to a host and interprets
// the response, returning the resulting state at the snooped host:
//
//   - RspIHit/RspSHit: the host acted (invalidated / downgraded),
//     writing any dirty copy back first;
//   - RspMiss: a victim eviction is in flight — the host removed the
//     line from its cache, is writing dirty data back through its own
//     port, and will call Release when the media is current. snoop
//     waits for that release before returning (the grant must not
//     read stale media), so a RspMiss return also means "host no
//     longer holds the line";
//   - RspRetry: the host could NOT surrender the line (its write-back
//     failed) and its state is unchanged — surfaced as an error so the
//     caller aborts the grant without touching this host's record.
func (d *Directory) snoop(host int, line uint64, op cxl.BISnpOpcode) (cxl.BIRsp, error) {
	if f := d.snoopDelay.Load(); f != nil {
		(*f)()
	}
	d.stats.Snoops.Add(1)
	rsp, err := d.fabric.Snoop(d.vppbs[host], cxl.BISnp{
		Opcode: op,
		Addr:   uint64(d.seg.Base) + line*lineBytes,
		Tag:    uint16(d.tag.Add(1)),
	})
	if err != nil {
		if d.forceInv.Load() {
			// The snooper is unreachable (lost/mangled BI flit, detached
			// host): treat the holder as surrendered so the grant can
			// proceed. Its cached copy — dirty data included — is lost;
			// the alternative is a directory wedged on a dead host.
			d.stats.ForcedInvalidations.Add(1)
			return cxl.BIRsp{Opcode: cxl.RspIHit}, nil
		}
		return rsp, err
	}
	if rsp.Dirty {
		d.stats.Writebacks.Add(1)
	}
	switch rsp.Opcode {
	case cxl.RspIHit:
		d.stats.Invalidations.Add(1)
	case cxl.RspSHit:
		d.stats.Downgrades.Add(1)
	case cxl.RspMiss:
		d.stats.MissWaits.Add(1)
		d.waitRelease(host, line)
	case cxl.RspRetry:
		return rsp, fmt.Errorf("coherency: host %d deferred %v of line %d (write-back failed); retry", host, op, line)
	}
	return rsp, nil
}

// waitRelease blocks until host is no longer a recorded holder of line
// (the RspMiss contract: a victim eviction's Release is coming). With a
// snoop timeout configured, a holder that never releases is forced off
// the record instead of wedging the directory — the dead-sharer
// recovery the chaos plane exercises.
func (d *Directory) waitRelease(host int, line uint64) {
	to := time.Duration(d.snoopTimeoutNs.Load())
	var deadline time.Time
	if to > 0 {
		deadline = time.Now().Add(to)
	}
	d.mu.Lock()
	for d.holdsLocked(host, line) {
		if to <= 0 {
			d.cond.Wait()
			continue
		}
		if time.Now().After(deadline) {
			l := &d.lines[line]
			if int(l.owner) == host {
				l.owner = -1
			}
			l.sharers &^= 1 << uint(host)
			d.stats.SnoopTimeouts.Add(1)
			d.stats.ForcedInvalidations.Add(1)
			d.cond.Broadcast()
			break
		}
		// sync.Cond has no timed wait: poll with a short sleep so the
		// deadline is honoured even if the release never broadcasts.
		d.mu.Unlock()
		time.Sleep(20 * time.Microsecond)
		d.mu.Lock()
	}
	d.mu.Unlock()
}

// holdsLocked reports whether the directory still records host as a
// holder of line; callers hold d.mu.
func (d *Directory) holdsLocked(host int, line uint64) bool {
	l := d.lines[line]
	return int(l.owner) == host || l.sharers&(1<<uint(host)) != 0
}

// AcquireShared grants host a Shared copy of the line, recalling any
// remote exclusive owner first (SnpData: write back if dirty, keep a
// Shared copy). On return the media holds the current data and the host
// may cache the line Shared.
func (d *Directory) AcquireShared(host int, line uint64) error {
	return d.acquireShared(host, line, nil)
}

func (d *Directory) acquireShared(host int, line uint64, sink grantSink) error {
	if err := d.checkReq(host, line); err != nil {
		return err
	}
	st := d.claimLine(line)
	downgraded, dropped := int8(-1), int8(-1)
	if st.owner >= 0 && int(st.owner) != host {
		rsp, err := d.snoop(int(st.owner), line, cxl.SnpData)
		if err != nil {
			// RspRetry or a fabric error: the owner's state is
			// unchanged, so the directory record stays as it was.
			d.settleLine(line, nil, func(*dirLine) {})
			return err
		}
		if rsp.Opcode == cxl.RspIHit {
			dropped = st.owner // owner chose to drop rather than keep Shared
		} else {
			downgraded = st.owner
		}
	}
	d.settleLine(line, sink, func(l *dirLine) {
		if int(l.owner) == int(downgraded) && downgraded >= 0 {
			// The former owner kept a Shared copy.
			l.owner = -1
			l.sharers |= 1 << uint(downgraded)
		}
		if int(l.owner) == int(dropped) && dropped >= 0 {
			// The former owner surrendered the line entirely.
			l.owner = -1
		}
		if int(l.owner) == host {
			// Re-acquiring a line we already own exclusively: keep it.
			return
		}
		l.sharers |= 1 << uint(host)
	})
	d.stats.SharedGrants.Add(1)
	return nil
}

// AcquireExclusive grants host exclusive ownership of the line,
// invalidating every remote copy first (SnpInv: write back if dirty,
// drop the line). On return the media holds the current data, no other
// host caches the line, and the host may cache it Exclusive/Modified.
//
// A sweep that fails partway (one holder's snoop errors or is
// deferred) aborts the grant but COMMITS the invalidations that did
// happen: hosts that already surrendered their copies must come off
// the record, or the next acquire on the line would snoop a host that
// holds nothing and wait forever for a release that cannot come.
func (d *Directory) AcquireExclusive(host int, line uint64) error {
	return d.acquireExclusive(host, line, nil)
}

func (d *Directory) acquireExclusive(host int, line uint64, sink grantSink) error {
	if err := d.checkReq(host, line); err != nil {
		return err
	}
	st := d.claimLine(line)
	var surrendered [MaxCoherentHosts]bool
	abort := func(err error) error {
		d.settleLine(line, nil, func(l *dirLine) {
			for h := 0; h < len(d.vppbs); h++ {
				if !surrendered[h] {
					continue
				}
				if int(l.owner) == h {
					l.owner = -1
				}
				l.sharers &^= 1 << uint(h)
			}
		})
		return err
	}
	if st.owner >= 0 && int(st.owner) != host {
		if _, err := d.snoop(int(st.owner), line, cxl.SnpInv); err != nil {
			return abort(err)
		}
		surrendered[st.owner] = true
	}
	for h := 0; h < len(d.vppbs); h++ {
		if h == host || st.sharers&(1<<uint(h)) == 0 {
			continue
		}
		if _, err := d.snoop(h, line, cxl.SnpInv); err != nil {
			return abort(err)
		}
		surrendered[h] = true
	}
	d.settleLine(line, sink, func(l *dirLine) {
		l.owner = int8(host)
		l.sharers = 0
	})
	d.stats.ExclusiveGrants.Add(1)
	return nil
}

// SweepRange recalls every cached copy of the lines in [lo, hi) —
// SnpInv to the exclusive owner or every sharer, flushing dirty data to
// the media — and settles the entries invalid. It is the re-homing hook
// the RAS plane drives before migrating a shared segment off a degraded
// device: after a sweep the media holds the only current copy, so the
// bytes can move and hosts re-fault their lines through the directory at
// the new home. Sweeping contends with concurrent acquires line by line
// (the in-flight table serialises them), so foreground coherent traffic
// keeps flowing during the walk.
//
// Returns the number of lines that had cached copies recalled. A failing
// snoop aborts the walk at that line but, like AcquireExclusive, commits
// the invalidations that did happen.
func (d *Directory) SweepRange(lo, hi uint64) (recalled int, err error) {
	if hi > uint64(len(d.lines)) {
		hi = uint64(len(d.lines))
	}
	for line := lo; line < hi; line++ {
		hit, err := d.sweepLine(line)
		if hit {
			recalled++
		}
		if err != nil {
			return recalled, err
		}
	}
	return recalled, nil
}

// SweepAll recalls every cached line of the segment.
func (d *Directory) SweepAll() (recalled int, err error) {
	return d.SweepRange(0, uint64(len(d.lines)))
}

// sweepLine invalidates all holders of one line and settles it invalid.
func (d *Directory) sweepLine(line uint64) (recalled bool, err error) {
	st := d.claimLine(line)
	if st.owner < 0 && st.sharers == 0 {
		d.settleLine(line, nil, func(*dirLine) {})
		return false, nil
	}
	var surrendered [MaxCoherentHosts]bool
	abort := func(err error) error {
		d.settleLine(line, nil, func(l *dirLine) {
			for h := 0; h < len(d.vppbs); h++ {
				if !surrendered[h] {
					continue
				}
				if int(l.owner) == h {
					l.owner = -1
				}
				l.sharers &^= 1 << uint(h)
			}
		})
		return err
	}
	if st.owner >= 0 {
		if _, err := d.snoop(int(st.owner), line, cxl.SnpInv); err != nil {
			return true, abort(err)
		}
		surrendered[st.owner] = true
	}
	for h := 0; h < len(d.vppbs); h++ {
		if st.sharers&(1<<uint(h)) == 0 {
			continue
		}
		if _, err := d.snoop(h, line, cxl.SnpInv); err != nil {
			return true, abort(err)
		}
		surrendered[h] = true
	}
	d.settleLine(line, nil, func(l *dirLine) {
		l.owner = -1
		l.sharers = 0
	})
	return true, nil
}

// Release drops host from the line's holder set — called by the host
// after a victim eviction, AFTER any dirty data reached the media
// through the host's own port. Release never waits on the in-flight
// table: an acquire that snooped the evicting host and got RspMiss is
// blocked waiting for exactly this state change (deadlock-avoidance
// ordering: acquires wait on releases, never the reverse).
func (d *Directory) Release(host int, line uint64) error {
	if err := d.checkReq(host, line); err != nil {
		return err
	}
	d.mu.Lock()
	l := &d.lines[line]
	if int(l.owner) == host {
		l.owner = -1
	}
	l.sharers &^= 1 << uint(host)
	d.cond.Broadcast()
	d.mu.Unlock()
	d.stats.Releases.Add(1)
	return nil
}
