package coherency

import (
	"cxlpmem/internal/telemetry"
)

// RegisterCacheMetrics exposes a coherent cache's counters through the
// registry, labelled by host (the cache's owner).
func RegisterCacheMetrics(reg *telemetry.Registry, host string, c *CoherentCache) {
	labels := telemetry.Labels("host", host)
	st := c.Stats()
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		e.Counter("coherency_cache_hits_total", labels, st.Hits.Load())
		e.Counter("coherency_cache_misses_total", labels, st.Misses.Load())
		e.Counter("coherency_cache_evictions_total", labels, st.Evictions.Load())
		e.Counter("coherency_cache_writebacks_total", labels, st.Writebacks.Load())
		e.Counter("coherency_cache_upgrades_total", labels, st.Upgrades.Load())
		e.Counter("coherency_snoops_served_total", labels, st.SnoopsServed.Load())
		e.Counter("coherency_snoop_writebacks_total", labels, st.SnoopWritebacks.Load())
	})
}

// RegisterDirectoryMetrics exposes the device-side directory's counters
// through the registry.
func RegisterDirectoryMetrics(reg *telemetry.Registry, name string, d *Directory) {
	labels := telemetry.Labels("dir", name)
	st := d.Stats()
	reg.RegisterCollector(func(e *telemetry.Emitter) {
		e.Counter("coherency_shared_grants_total", labels, st.SharedGrants.Load())
		e.Counter("coherency_exclusive_grants_total", labels, st.ExclusiveGrants.Load())
		e.Counter("coherency_snoops_total", labels, st.Snoops.Load())
		e.Counter("coherency_dir_writebacks_total", labels, st.Writebacks.Load())
		e.Counter("coherency_downgrades_total", labels, st.Downgrades.Load())
		e.Counter("coherency_invalidations_total", labels, st.Invalidations.Load())
		e.Counter("coherency_miss_waits_total", labels, st.MissWaits.Load())
		e.Counter("coherency_snoop_timeouts_total", labels, st.SnoopTimeouts.Load())
		e.Counter("coherency_forced_invalidations_total", labels, st.ForcedInvalidations.Load())
	})
}
