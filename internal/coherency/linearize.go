package coherency

import (
	"fmt"
	"math/bits"
	"sort"
)

// A Wing&Gong-style linearizability checker for register semantics —
// the proof harness behind the back-invalidate engine. Tests record
// per-host operation histories (reads and writes of one 8-byte shared
// word, with invocation/response timestamps) and the checker searches
// for a linearization: a total order of the operations that (a)
// respects real time — an operation that completed before another
// began must order first — and (b) satisfies register semantics —
// every read returns the most recently written value. Linearizability
// is composable per object, so a multi-word test checks each word's
// history independently.

// OpKind classifies a recorded operation.
type OpKind uint8

const (
	// OpRead is a Load: Value is what the host observed.
	OpRead OpKind = iota
	// OpWrite is a Store: Value is what the host wrote.
	OpWrite
)

func (k OpKind) String() string {
	if k == OpWrite {
		return "write"
	}
	return "read"
}

// Op is one recorded operation against a shared register.
type Op struct {
	// Host that issued the operation.
	Host int
	// Kind of access.
	Kind OpKind
	// Value written (OpWrite) or observed (OpRead).
	Value uint64
	// Invoke and Return are monotonic timestamps (nanoseconds) taken
	// immediately before and after the operation.
	Invoke int64
	Return int64
}

func (o Op) String() string {
	return fmt.Sprintf("host%d %s %d [%d,%d]", o.Host, o.Kind, o.Value, o.Invoke, o.Return)
}

// History is a merged multi-host operation record for ONE register.
type History []Op

// MaxHistoryOps bounds the checker's search state (one bit per
// operation in the memoisation mask).
const MaxHistoryOps = 64

// linState is a memoisation key: which operations are already
// linearised, and the register value they left behind.
type linState struct {
	done uint64
	val  uint64
}

// CheckLinearizable reports whether the history has a linearization
// under single-register semantics starting from init. On failure it
// returns the prefix-maximal set of operations that could be
// linearised, to aid debugging.
func CheckLinearizable(h History, init uint64) (bool, error) {
	n := len(h)
	if n == 0 {
		return true, nil
	}
	if n > MaxHistoryOps {
		return false, fmt.Errorf("coherency: history of %d ops exceeds checker limit %d", n, MaxHistoryOps)
	}
	for _, o := range h {
		if o.Return < o.Invoke {
			return false, fmt.Errorf("coherency: operation %v returns before it invokes", o)
		}
	}
	// Sorting by invocation makes the candidate scan below
	// deterministic; correctness does not depend on it.
	ops := append(History(nil), h...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	full := uint64(1)<<uint(n) - 1
	if n == MaxHistoryOps {
		full = ^uint64(0)
	}
	seen := make(map[linState]bool)
	var best uint64

	// Depth-first search over linearisation prefixes. At each step an
	// operation may go next iff every operation that RETURNED before it
	// was INVOKED has already been placed (the Wing&Gong minimality
	// rule), and its value is consistent with the register.
	var dfs func(done uint64, val uint64) bool
	dfs = func(done uint64, val uint64) bool {
		if done == full {
			return true
		}
		st := linState{done: done, val: val}
		if seen[st] {
			return false
		}
		seen[st] = true
		if bits.OnesCount64(done) > bits.OnesCount64(best) {
			best = done
		}
		// frontier: the earliest return among unplaced operations. Any
		// candidate must have invoked before it (<=: an op may
		// linearise first even if it returns exactly when another
		// starts).
		minRet := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if done&(1<<uint(i)) == 0 && ops[i].Return < minRet {
				minRet = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if done&bit != 0 || ops[i].Invoke > minRet {
				continue
			}
			o := ops[i]
			switch o.Kind {
			case OpRead:
				if o.Value != val {
					continue
				}
				if dfs(done|bit, val) {
					return true
				}
			case OpWrite:
				if dfs(done|bit, o.Value) {
					return true
				}
			}
		}
		return false
	}
	if dfs(0, init) {
		return true, nil
	}
	// Build a readable refusal: the ops beyond the deepest prefix.
	var stuck History
	for i := 0; i < n; i++ {
		if best&(1<<uint(i)) == 0 {
			stuck = append(stuck, ops[i])
		}
	}
	limit := stuck
	if len(limit) > 6 {
		limit = limit[:6]
	}
	return false, fmt.Errorf("coherency: history not linearizable; %d/%d ops placed, stuck at %v", bits.OnesCount64(best), n, limit)
}
