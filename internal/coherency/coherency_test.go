package coherency_test

import (
	"encoding/binary"
	"sync"
	"testing"

	"cxlpmem/internal/coherency"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/topology"
	"cxlpmem/internal/units"
)

// petersonSetup builds the paper's two-host shared-HDM configuration
// through the same topology fixture the coherent engine uses
// (topology.SetupShared with Coherent unset): one card, two HPA
// windows onto the same media, one root port per simulated NUMA node,
// Peterson's algorithm over device words.
func petersonSetup(t testing.TB) *topology.SharedHDM {
	t.Helper()
	s, err := topology.SetupShared(topology.SharedOptions{
		Hosts:       2,
		SegmentSize: 4096,
		FPGA:        fpga.Options{ChannelCapacity: 4 * units.MiB},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pair(t *testing.T) (*coherency.Host, *coherency.Host) {
	t.Helper()
	s := petersonSetup(t)
	return s.Hosts[0].Peterson, s.Hosts[1].Peterson
}

func TestValidation(t *testing.T) {
	s := petersonSetup(t)
	a0, a1 := s.Hosts[0].Accessor, s.Hosts[1].Accessor
	if _, _, err := coherency.NewPair(nil, a1, coherency.Segment{Size: 64}); err == nil {
		t.Error("nil accessor accepted")
	}
	if _, _, err := coherency.NewPair(a0, a1, coherency.Segment{Size: 0}); err == nil {
		t.Error("zero segment accepted")
	}
	h0, _ := pair(t)
	if err := h0.Read(make([]byte, 8), 4095); err == nil {
		t.Error("out-of-segment read accepted")
	}
	if err := h0.Write(make([]byte, 8), -1); err == nil {
		t.Error("negative write accepted")
	}
	if err := h0.Release(); err == nil {
		t.Error("release without acquire accepted")
	}
}

func TestWritesInvisibleUntilReleaseThenVisible(t *testing.T) {
	h0, h1 := pair(t)
	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	if !h0.Holding() || h0.ID() != 0 {
		t.Error("holding state")
	}
	if err := h0.Write([]byte("shared state"), 0); err != nil {
		t.Fatal(err)
	}
	// Before release, a reader that already cached the segment sees
	// stale zeros (no hardware coherency!).
	stale := make([]byte, 12)
	if err := h1.Read(stale, 0); err != nil {
		t.Fatal(err)
	}
	if string(stale) == "shared state" {
		t.Error("write leaked before write-back — the model is supposed to be incoherent")
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
	// A proper acquire invalidates and refetches.
	if err := h1.Acquire(); err != nil {
		t.Fatal(err)
	}
	fresh := make([]byte, 12)
	if err := h1.Read(fresh, 0); err != nil {
		t.Fatal(err)
	}
	if string(fresh) != "shared state" {
		t.Errorf("after acquire = %q", fresh)
	}
	if err := h1.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitInvalidate(t *testing.T) {
	h0, h1 := pair(t)
	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h0.Write([]byte{42}, 100); err != nil {
		t.Fatal(err)
	}
	if err := h0.Flush(); err != nil {
		t.Fatal(err)
	}
	// h1 cached earlier; manual invalidate forces a refetch even
	// without the lock protocol.
	probe := make([]byte, 1)
	_ = h1.Read(probe, 100) // warm (stale) cache
	h1.Invalidate()
	if err := h1.Read(probe, 100); err != nil {
		t.Fatal(err)
	}
	if probe[0] != 42 {
		t.Errorf("after invalidate = %d, want 42", probe[0])
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleAcquireRejected(t *testing.T) {
	h0, _ := pair(t)
	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h0.Acquire(); err == nil {
		t.Error("re-acquire accepted")
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	// Two "applications" on the two NUMA nodes increment one shared
	// counter under the Peterson lock; every increment must survive.
	h0, h1 := pair(t)
	const perHost = 50
	var wg sync.WaitGroup
	worker := func(h *coherency.Host) {
		defer wg.Done()
		for i := 0; i < perHost; i++ {
			if err := h.Acquire(); err != nil {
				t.Error(err)
				return
			}
			var b [8]byte
			if err := h.Read(b[:], 0); err != nil {
				t.Error(err)
				return
			}
			v := binary.LittleEndian.Uint64(b[:])
			binary.LittleEndian.PutUint64(b[:], v+1)
			if err := h.Write(b[:], 0); err != nil {
				t.Error(err)
				return
			}
			if err := h.Release(); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go worker(h0)
	go worker(h1)
	wg.Wait()

	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	if err := h0.Read(b[:], 0); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != 2*perHost {
		t.Errorf("counter = %d, want %d (lost updates)", got, 2*perHost)
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
}
