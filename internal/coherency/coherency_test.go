package coherency

import (
	"encoding/binary"
	"sync"
	"testing"

	"cxlpmem/internal/cxl"
	"cxlpmem/internal/fpga"
	"cxlpmem/internal/units"
)

// sharedDevice builds the paper's shared-HDM configuration: one FPGA
// card with two HPA windows onto the same media, one root port per
// simulated NUMA node.
func sharedDevice(t *testing.T) (Accessor, Accessor) {
	t.Helper()
	card, err := fpga.New(fpga.Options{ChannelCapacity: 4 * units.MiB})
	if err != nil {
		t.Fatal(err)
	}
	// Two windows over the same media (paper §2.2).
	const w0, w1 = 0x10_0000_0000, 0x20_0000_0000
	if err := card.ProgramDecoder(&cxl.HDMDecoder{Base: w0, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := card.ProgramDecoder(&cxl.HDMDecoder{Base: w1, Size: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	rp0 := cxl.NewRootPort("rp-node0", card.Link())
	if err := rp0.Attach(card); err != nil {
		t.Fatal(err)
	}
	link2, err := fpga.New(fpga.Options{Name: "dummy"}) // second physical port
	_ = link2
	if err != nil {
		t.Fatal(err)
	}
	rp1 := cxl.NewRootPort("rp-node1", card.Link())
	// A root port holds one endpoint; emulate the second NUMA node's
	// port by a fresh port over the same link and endpoint.
	if err := rp1.Attach(card); err != nil {
		t.Fatal(err)
	}
	return &portAccessor{rp: rp0, base: w0}, &portAccessor{rp: rp1, base: w1}
}

type portAccessor struct {
	rp   *cxl.RootPort
	base int64
}

func (a *portAccessor) ReadAt(p []byte, off int64) error  { return a.rp.ReadAt(p, a.base+off) }
func (a *portAccessor) WriteAt(p []byte, off int64) error { return a.rp.WriteAt(p, a.base+off) }

func pair(t *testing.T) (*Host, *Host) {
	t.Helper()
	a0, a1 := sharedDevice(t)
	h0, h1, err := NewPair(a0, a1, Segment{Base: 0, Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return h0, h1
}

func TestValidation(t *testing.T) {
	a0, a1 := sharedDevice(t)
	if _, _, err := NewPair(nil, a1, Segment{Size: 64}); err == nil {
		t.Error("nil accessor accepted")
	}
	if _, _, err := NewPair(a0, a1, Segment{Size: 0}); err == nil {
		t.Error("zero segment accepted")
	}
	h0, _ := pair(t)
	if err := h0.Read(make([]byte, 8), 4095); err == nil {
		t.Error("out-of-segment read accepted")
	}
	if err := h0.Write(make([]byte, 8), -1); err == nil {
		t.Error("negative write accepted")
	}
	if err := h0.Release(); err == nil {
		t.Error("release without acquire accepted")
	}
}

func TestWritesInvisibleUntilReleaseThenVisible(t *testing.T) {
	h0, h1 := pair(t)
	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	if !h0.Holding() || h0.ID() != 0 {
		t.Error("holding state")
	}
	if err := h0.Write([]byte("shared state"), 0); err != nil {
		t.Fatal(err)
	}
	// Before release, a reader that already cached the segment sees
	// stale zeros (no hardware coherency!).
	stale := make([]byte, 12)
	if err := h1.Read(stale, 0); err != nil {
		t.Fatal(err)
	}
	if string(stale) == "shared state" {
		t.Error("write leaked before write-back — the model is supposed to be incoherent")
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
	// A proper acquire invalidates and refetches.
	if err := h1.Acquire(); err != nil {
		t.Fatal(err)
	}
	fresh := make([]byte, 12)
	if err := h1.Read(fresh, 0); err != nil {
		t.Fatal(err)
	}
	if string(fresh) != "shared state" {
		t.Errorf("after acquire = %q", fresh)
	}
	if err := h1.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitInvalidate(t *testing.T) {
	h0, h1 := pair(t)
	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h0.Write([]byte{42}, 100); err != nil {
		t.Fatal(err)
	}
	if err := h0.Flush(); err != nil {
		t.Fatal(err)
	}
	// h1 cached earlier; manual invalidate forces a refetch even
	// without the lock protocol.
	probe := make([]byte, 1)
	_ = h1.Read(probe, 100) // warm (stale) cache
	h1.Invalidate()
	if err := h1.Read(probe, 100); err != nil {
		t.Fatal(err)
	}
	if probe[0] != 42 {
		t.Errorf("after invalidate = %d, want 42", probe[0])
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleAcquireRejected(t *testing.T) {
	h0, _ := pair(t)
	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h0.Acquire(); err == nil {
		t.Error("re-acquire accepted")
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	// Two "applications" on the two NUMA nodes increment one shared
	// counter under the Peterson lock; every increment must survive.
	h0, h1 := pair(t)
	const perHost = 50
	var wg sync.WaitGroup
	worker := func(h *Host) {
		defer wg.Done()
		for i := 0; i < perHost; i++ {
			if err := h.Acquire(); err != nil {
				t.Error(err)
				return
			}
			var b [8]byte
			if err := h.Read(b[:], 0); err != nil {
				t.Error(err)
				return
			}
			v := binary.LittleEndian.Uint64(b[:])
			binary.LittleEndian.PutUint64(b[:], v+1)
			if err := h.Write(b[:], 0); err != nil {
				t.Error(err)
				return
			}
			if err := h.Release(); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go worker(h0)
	go worker(h1)
	wg.Wait()

	if err := h0.Acquire(); err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	if err := h0.Read(b[:], 0); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != 2*perHost {
		t.Errorf("counter = %d, want %d (lost updates)", got, 2*perHost)
	}
	if err := h0.Release(); err != nil {
		t.Fatal(err)
	}
}
